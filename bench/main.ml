(* Benchmark harness.

   Two parts:
   1. The experiment tables — one per paper figure / analytical claim
      (E1..E12, see DESIGN.md §4 and EXPERIMENTS.md).  These are the
      "regenerate the evaluation" runs.
   2. Bechamel micro-benchmarks of the sequential substrate and one
      whole-cluster kernel per protocol, for raw-cost visibility.

   `bench/main.exe` runs both; pass `--quick` for reduced sizes and
   `--micro-only` / `--tables-only` to select one part. *)

open Bechamel
open Toolkit

(* ---------------- micro-benchmarks ---------------- *)

let btree_insert_bench n =
  Test.make ~name:(Fmt.str "blink.insert.%d" n)
    (Staged.stage (fun () ->
         let t = Dbtree_blink.Btree.create ~capacity:8 () in
         for i = 1 to n do
           Dbtree_blink.Btree.insert t (((i * 2654435761) land 0xFFFFFF) + 1) "v"
         done))

let bptree_insert_bench n =
  Test.make ~name:(Fmt.str "bptree.insert.%d" n)
    (Staged.stage (fun () ->
         let t = Dbtree_blink.Bptree.create ~capacity:8 () in
         for i = 1 to n do
           Dbtree_blink.Bptree.insert t (((i * 2654435761) land 0xFFFFFF) + 1) "v"
         done))

let btree_search_bench n =
  let t = Dbtree_blink.Btree.create ~capacity:8 () in
  for i = 1 to n do
    Dbtree_blink.Btree.insert t i "v"
  done;
  Test.make ~name:(Fmt.str "blink.search.%d" n)
    (Staged.stage (fun () ->
         for i = 1 to 1000 do
           ignore (Dbtree_blink.Btree.search t (((i * 7919) mod n) + 1))
         done))

let cluster_bench name discipline n =
  Test.make ~name:(Fmt.str "cluster.%s.%d" name n)
    (Staged.stage (fun () ->
         let cfg =
           Dbtree_core.Config.make ~procs:4 ~capacity:8 ~key_space:1_000_000
             ~discipline ~record_history:false ()
         in
         ignore (Dbtree_experiments.Common.run_fixed ~searches_per_proc:0 ~count:n cfg)))

let sim_bench n =
  Test.make ~name:(Fmt.str "sim.events.%d" n)
    (Staged.stage (fun () ->
         let sim = Dbtree_sim.Sim.create () in
         let rec chain k = if k > 0 then Dbtree_sim.Sim.schedule sim ~delay:1 (fun () -> chain (k - 1)) in
         chain n;
         Dbtree_sim.Sim.run sim))

let btree_bulk_load_bench n =
  let bindings = List.init n (fun i -> (i + 1, "v")) in
  Test.make ~name:(Fmt.str "blink.bulk_load.%d" n)
    (Staged.stage (fun () ->
         ignore (Dbtree_blink.Btree.of_sorted ~capacity:8 bindings)))

let btree_scan_bench n =
  let t = Dbtree_blink.Btree.create ~capacity:8 () in
  for i = 1 to n do
    Dbtree_blink.Btree.insert t i "v"
  done;
  Test.make ~name:(Fmt.str "blink.range.%d" n)
    (Staged.stage (fun () -> ignore (Dbtree_blink.Btree.range t ~lo:100 ~hi:1100)))

let lht_bench n =
  Test.make ~name:(Fmt.str "lht.insert.%d" n)
    (Staged.stage (fun () ->
         let t =
           Dbtree_lht.Lht.create
             { Dbtree_lht.Lht.default_config with record_history = false }
         in
         for i = 1 to n do
           ignore
             (Dbtree_lht.Lht.insert t ~origin:(i mod 4)
                (((i * 2654435761) land 0xFFFFFF) + 1)
                "v")
         done;
         Dbtree_lht.Lht.run t))

let micro_tests =
  Test.make_grouped ~name:"micro"
    [
      btree_insert_bench 10_000;
      bptree_insert_bench 10_000;
      btree_search_bench 10_000;
      btree_bulk_load_bench 10_000;
      btree_scan_bench 10_000;
      sim_bench 100_000;
      cluster_bench "semi" Dbtree_core.Config.Semi 2_000;
      cluster_bench "sync" Dbtree_core.Config.Sync 2_000;
      cluster_bench "eager" Dbtree_core.Config.Eager 2_000;
      lht_bench 2_000;
    ]

let run_micro () =
  let benchmark () =
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    Benchmark.all cfg Instance.[ monotonic_clock ] micro_tests
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  Fmt.pr "@.########## Bechamel micro-benchmarks ##########@.";
  let results = analyze (benchmark ()) in
  Fmt.pr "%-24s  %16s@." "benchmark" "time/run";
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        match Bechamel.Analyze.OLS.estimates ols with
        | Some (t :: _) -> (name, Some t) :: acc
        | Some [] | None -> (name, None) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, est) ->
      match est with
      | Some t -> Fmt.pr "%-24s  %13.0f ns@." name t
      | None -> Fmt.pr "%-24s  (no estimate)@." name)
    estimates;
  estimates

(* ---------------- JSON baseline (BENCH.json) ---------------- *)

(* Hand-rolled emitter: the repo deliberately has no JSON dependency, and
   the schema is flat — micro estimates plus the captured experiment
   tables (message counts etc.), so every PR can diff its perf trajectory
   mechanically. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""
let json_list f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let json_table tbl =
  let open Dbtree_experiments in
  Printf.sprintf "{\"title\":%s,\"columns\":%s,\"rows\":%s,\"notes\":%s}"
    (json_str (Table.title tbl))
    (json_list json_str (Table.columns tbl))
    (json_list (json_list json_str) (Table.rows tbl))
    (json_list json_str (Table.notes tbl))

let write_json ~file ~micro ~tables ~latency =
  let micro_fields =
    List.map
      (fun (name, est) ->
        match est with
        | Some ns -> Printf.sprintf "%s:%.1f" (json_str name) ns
        | None -> Printf.sprintf "%s:null" (json_str name))
      micro
  in
  let oc = open_out file in
  Printf.fprintf oc
    "{\"schema\":\"dbtree-bench/1\",\"micro\":{%s},\"tables\":%s,\"latency\":%s}\n"
    (String.concat "," micro_fields)
    (json_list json_table tables)
    latency;
  close_out oc;
  Fmt.pr "@.wrote %s (%d micro estimates, %d tables)@." file
    (List.length micro) (List.length tables)

(* ---------------- latency histograms ---------------- *)

(* A dedicated fixed-copies run per discipline; the per-kind completion
   latencies (and, under [Sync], the AAS hold times) come from the
   log-bucketed histograms the cluster records unconditionally. *)

let latency_runs ~quick =
  let open Dbtree_core in
  let count = if quick then 2_000 else 10_000 in
  List.map
    (fun disc ->
      let cfg =
        Config.make ~procs:4 ~capacity:8 ~seed:42 ~key_space:1_000_000
          ~discipline:disc ~record_history:false ()
      in
      let r = Dbtree_experiments.Common.run_fixed ~count cfg in
      let stats = Cluster.stats r.Dbtree_experiments.Common.cluster in
      (Config.discipline_name disc, Dbtree_sim.Stats.hists stats))
    [ Config.Semi; Config.Sync ]

let json_hist h =
  let open Dbtree_sim in
  Printf.sprintf
    "{\"count\":%d,\"mean\":%.1f,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d}"
    (Stats.hist_count h) (Stats.hist_mean h)
    (Stats.hist_percentile h 50.0)
    (Stats.hist_percentile h 90.0)
    (Stats.hist_percentile h 99.0)
    (Stats.hist_max h)

let json_latency runs =
  let run_fields (disc, hists) =
    let fields =
      List.map
        (fun (name, h) -> Printf.sprintf "%s:%s" (json_str name) (json_hist h))
        hists
    in
    Printf.sprintf "%s:{%s}" (json_str disc) (String.concat "," fields)
  in
  "{" ^ String.concat "," (List.map run_fields runs) ^ "}"

(* ---------------- entry point ---------------- *)

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let micro_only = List.mem "--micro-only" argv in
  let tables_only = List.mem "--tables-only" argv in
  let json_file =
    let rec find = function
      | "--json" :: file :: _ -> Some file
      | "--json" :: [] -> Some "BENCH.json"
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  if json_file <> None then Dbtree_experiments.Table.set_capture true;
  if not micro_only then
    Dbtree_experiments.Experiments.run_all ~quick ();
  let micro = if tables_only then [] else run_micro () in
  match json_file with
  | None -> ()
  | Some file ->
    let latency = json_latency (latency_runs ~quick) in
    write_json ~file ~micro ~tables:(Dbtree_experiments.Table.captured ())
      ~latency
