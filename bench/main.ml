(* Benchmark harness.

   Two parts:
   1. The experiment tables — one per paper figure / analytical claim
      (E1..E12, see DESIGN.md §4 and EXPERIMENTS.md).  These are the
      "regenerate the evaluation" runs.
   2. Bechamel micro-benchmarks of the sequential substrate and one
      whole-cluster kernel per protocol, for raw-cost visibility.

   `bench/main.exe` runs both; pass `--quick` for reduced sizes and
   `--micro-only` / `--tables-only` to select one part.  `--filter SUB`
   keeps only the micro benchmarks whose name contains SUB.  Each micro
   benchmark reports wall time and minor-heap words per run (the
   allocation column is what the zero-alloc event path is judged by). *)

open Bechamel
open Toolkit

(* ---------------- micro-benchmarks ---------------- *)

let btree_insert_bench n =
  Test.make ~name:(Fmt.str "blink.insert.%d" n)
    (Staged.stage (fun () ->
         let t = Dbtree_blink.Btree.create ~capacity:8 () in
         for i = 1 to n do
           Dbtree_blink.Btree.insert t (((i * 2654435761) land 0xFFFFFF) + 1) "v"
         done))

let bptree_insert_bench n =
  Test.make ~name:(Fmt.str "bptree.insert.%d" n)
    (Staged.stage (fun () ->
         let t = Dbtree_blink.Bptree.create ~capacity:8 () in
         for i = 1 to n do
           Dbtree_blink.Bptree.insert t (((i * 2654435761) land 0xFFFFFF) + 1) "v"
         done))

let btree_search_bench n =
  let t = Dbtree_blink.Btree.create ~capacity:8 () in
  for i = 1 to n do
    Dbtree_blink.Btree.insert t i "v"
  done;
  Test.make ~name:(Fmt.str "blink.search.%d" n)
    (Staged.stage (fun () ->
         for i = 1 to 1000 do
           ignore (Dbtree_blink.Btree.search t (((i * 7919) mod n) + 1))
         done))

let cluster_bench name discipline n =
  Test.make ~name:(Fmt.str "cluster.%s.%d" name n)
    (Staged.stage (fun () ->
         let cfg =
           Dbtree_core.Config.make ~procs:4 ~capacity:8 ~key_space:1_000_000
             ~discipline ~record_history:false ()
         in
         ignore (Dbtree_experiments.Common.run_fixed ~searches_per_proc:0 ~count:n cfg)))

let sim_bench n =
  (* Drives the typed-event interface — the engine's per-message hot path
     (Net schedules handler ids + ints there, not closures). *)
  Test.make ~name:(Fmt.str "sim.events.%d" n)
    (Staged.stage (fun () ->
         let sim = Dbtree_sim.Sim.create () in
         let null = Obj.repr 0 in
         let h = ref (-1) in
         h :=
           Dbtree_sim.Sim.register_handler sim (fun a _ _ _ ->
               if a > 0 then
                 Dbtree_sim.Sim.schedule_typed sim ~delay:1 ~h:!h ~a:(a - 1)
                   ~b:0 ~c:0 ~o:null);
         Dbtree_sim.Sim.schedule_typed sim ~delay:1 ~h:!h ~a:n ~b:0 ~c:0
           ~o:null;
         Dbtree_sim.Sim.run sim))

let btree_bulk_load_bench n =
  let bindings = List.init n (fun i -> (i + 1, "v")) in
  Test.make ~name:(Fmt.str "blink.bulk_load.%d" n)
    (Staged.stage (fun () ->
         ignore (Dbtree_blink.Btree.of_sorted ~capacity:8 bindings)))

let btree_scan_bench n =
  let t = Dbtree_blink.Btree.create ~capacity:8 () in
  for i = 1 to n do
    Dbtree_blink.Btree.insert t i "v"
  done;
  Test.make ~name:(Fmt.str "blink.range.%d" n)
    (Staged.stage (fun () -> ignore (Dbtree_blink.Btree.range t ~lo:100 ~hi:1100)))

let lht_bench n =
  Test.make ~name:(Fmt.str "lht.insert.%d" n)
    (Staged.stage (fun () ->
         let t =
           Dbtree_lht.Lht.create
             { Dbtree_lht.Lht.default_config with record_history = false }
         in
         for i = 1 to n do
           ignore
             (Dbtree_lht.Lht.insert t ~origin:(i mod 4)
                (((i * 2654435761) land 0xFFFFFF) + 1)
                "v")
         done;
         Dbtree_lht.Lht.run t))

(* Named flat list so `--filter` can select by substring before the
   bechamel grouping. *)
let micro_tests_all =
  [
    ("blink.insert", btree_insert_bench 10_000);
    ("bptree.insert", bptree_insert_bench 10_000);
    ("blink.search", btree_search_bench 10_000);
    ("blink.bulk_load", btree_bulk_load_bench 10_000);
    ("blink.range", btree_scan_bench 10_000);
    ("sim.events", sim_bench 100_000);
    ("cluster.semi", cluster_bench "semi" Dbtree_core.Config.Semi 2_000);
    ("cluster.sync", cluster_bench "sync" Dbtree_core.Config.Sync 2_000);
    ("cluster.eager", cluster_bench "eager" Dbtree_core.Config.Eager 2_000);
    ("lht.insert", lht_bench 2_000);
  ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let micro_tests ~filter =
  let keep (name, _) =
    match filter with None -> true | Some f -> contains name f
  in
  Test.make_grouped ~name:"micro"
    (List.map snd (List.filter keep micro_tests_all))

(* One benchmark pass measured under two instances: wall time and
   minor-heap words, both OLS-fitted against run count. *)
let run_micro ~filter () =
  let benchmark () =
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    Benchmark.all cfg
      Instance.[ monotonic_clock; minor_allocated ]
      (micro_tests ~filter)
  in
  let results = benchmark () in
  let analyze instance =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols instance results
  in
  let estimate_list tbl =
    Hashtbl.fold
      (fun name ols acc ->
        match Bechamel.Analyze.OLS.estimates ols with
        | Some (t :: _) -> (name, Some t) :: acc
        | Some [] | None -> (name, None) :: acc)
      tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Fmt.pr "@.########## Bechamel micro-benchmarks ##########@.";
  let times = estimate_list (analyze Instance.monotonic_clock) in
  let allocs = estimate_list (analyze Instance.minor_allocated) in
  let alloc_of name =
    match List.assoc_opt name allocs with Some a -> a | None -> None
  in
  Fmt.pr "%-24s  %16s  %16s@." "benchmark" "time/run" "minor words/run";
  List.iter
    (fun (name, est) ->
      match (est, alloc_of name) with
      | Some t, Some w -> Fmt.pr "%-24s  %13.0f ns  %14.0f w@." name t w
      | Some t, None -> Fmt.pr "%-24s  %13.0f ns  %16s@." name t "-"
      | None, _ -> Fmt.pr "%-24s  (no estimate)@." name)
    times;
  (times, allocs)

(* ---------------- JSON baseline (BENCH.json) ---------------- *)

(* Hand-rolled emitter: the repo deliberately has no JSON dependency, and
   the schema is flat — micro estimates plus the captured experiment
   tables (message counts etc.), so every PR can diff its perf trajectory
   mechanically. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""
let json_list f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let json_table tbl =
  let open Dbtree_experiments in
  Printf.sprintf "{\"title\":%s,\"columns\":%s,\"rows\":%s,\"notes\":%s}"
    (json_str (Table.title tbl))
    (json_list json_str (Table.columns tbl))
    (json_list (json_list json_str) (Table.rows tbl))
    (json_list json_str (Table.notes tbl))

let json_estimates xs =
  String.concat ","
    (List.map
       (fun (name, est) ->
         match est with
         | Some v -> Printf.sprintf "%s:%.1f" (json_str name) v
         | None -> Printf.sprintf "%s:null" (json_str name))
       xs)

let json_metrics xs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (name, v) -> Printf.sprintf "%s:%.2f" (json_str name) v)
         xs)
  ^ "}"

let write_json ~file ~micro ~alloc ~tables ~latency ~scale_quick ~scale ~phases
    =
  let oc = open_out file in
  Printf.fprintf oc
    "{\"schema\":\"dbtree-bench/2\",\"micro\":{%s},\"alloc\":{%s},\"tables\":%s,\"latency\":%s,\"scale_quick\":%s%s,\"phases\":%s}\n"
    (json_estimates micro) (json_estimates alloc)
    (json_list json_table tables)
    latency
    (json_metrics scale_quick)
    (match scale with
    | None -> ""
    | Some s -> Printf.sprintf ",\"scale\":%s" (json_metrics s))
    (json_metrics phases);
  close_out oc;
  Fmt.pr "@.wrote %s (%d micro estimates, %d tables, %d scale metrics)@." file
    (List.length micro) (List.length tables)
    (List.length scale_quick
    + match scale with None -> 0 | Some s -> List.length s)

(* ---------------- latency histograms ---------------- *)

(* A dedicated fixed-copies run per discipline; the per-kind completion
   latencies (and, under [Sync], the AAS hold times) come from the
   log-bucketed histograms the cluster records unconditionally. *)

let latency_runs ~quick =
  let open Dbtree_core in
  let count = if quick then 2_000 else 10_000 in
  List.map
    (fun disc ->
      let cfg =
        Config.make ~procs:4 ~capacity:8 ~seed:42 ~key_space:1_000_000
          ~discipline:disc ~record_history:false ()
      in
      let r = Dbtree_experiments.Common.run_fixed ~count cfg in
      let stats = Cluster.stats r.Dbtree_experiments.Common.cluster in
      (Config.discipline_name disc, Dbtree_sim.Stats.hists stats))
    [ Config.Semi; Config.Sync ]

let json_hist h =
  let open Dbtree_sim in
  Printf.sprintf
    "{\"count\":%d,\"mean\":%.1f,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d}"
    (Stats.hist_count h) (Stats.hist_mean h)
    (Stats.hist_percentile h 50.0)
    (Stats.hist_percentile h 90.0)
    (Stats.hist_percentile h 99.0)
    (Stats.hist_max h)

let json_latency runs =
  let run_fields (disc, hists) =
    let fields =
      List.map
        (fun (name, h) -> Printf.sprintf "%s:%s" (json_str name) (json_hist h))
        hists
    in
    Printf.sprintf "%s:{%s}" (json_str disc) (String.concat "," fields)
  in
  "{" ^ String.concat "," (List.map run_fields runs) ^ "}"

(* ---------------- entry point ---------------- *)

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let micro_only = List.mem "--micro-only" argv in
  let tables_only = List.mem "--tables-only" argv in
  let find_value flag =
    let rec find = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let filter = find_value "--filter" in
  let json_file =
    if List.mem "--json" argv then
      Some (Option.value (find_value "--json") ~default:"BENCH.json")
    else None
  in
  let json_file =
    (* `--json --filter x` would leave `--filter` as the file name *)
    match json_file with
    | Some f when String.length f > 1 && f.[0] = '-' -> Some "BENCH.json"
    | other -> other
  in
  if json_file <> None then Dbtree_experiments.Table.set_capture true;
  if not micro_only then
    Dbtree_experiments.Experiments.run_all ~quick ();
  let micro, alloc =
    if tables_only then ([], []) else run_micro ~filter ()
  in
  match json_file with
  | None -> ()
  | Some file ->
    let latency = json_latency (latency_runs ~quick) in
    (* scale_quick is always present (it is the CI gate's deterministic
       reference); the full million-op section only on a full run. *)
    let scale_quick = Dbtree_experiments.E17_scale.metrics ~quick:true () in
    let scale =
      if quick then None
      else Some (Dbtree_experiments.E17_scale.metrics ~quick:false ())
    in
    (* critical-path share per discipline (E19's traced runs) *)
    let phases = Dbtree_experiments.E19_telemetry.metrics ~quick () in
    write_json ~file ~micro ~alloc
      ~tables:(Dbtree_experiments.Table.captured ())
      ~latency ~scale_quick ~scale ~phases
