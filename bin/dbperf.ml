(* dbperf — whole-program hot-path cost analysis for this repository.

   Usage: dbperf [--format text|json|sarif] [--rules r1,r2] [--list-rules]
                 [--hot] [PATH...]

   Parses every .ml under the given paths (default: lib bin) in one
   pass, computes the hot set (the call-graph closure from every
   registered event handler, the observation-probe callback, the wheel
   drain, the telemetry/stats hooks, and dbperf-hot annotated
   bindings), and checks it stays allocation-free and monomorphic:
   hot-alloc, poly-compare, stray-annot.  [--hot] prints the hot-set
   audit view instead of running the rules.  Exit code: 0 clean,
   1 violations found, 2 parse/usage errors. *)

open Dbtree_lint
open Dbtree_flow

let () =
  let show_hot = ref false in
  Cli.run ~tool:"dbperf"
    ~registry:(List.map (fun (r : Perf.rule) -> (r.Perf.name, r.Perf.doc)) Perf.all_rules)
    ~extra_specs:
      [
        ("--hot", Arg.Set show_hot, " Print the hot-set audit view and exit");
      ]
    ~alt:(fun paths ->
      if not !show_hot then None
      else begin
        let prog, errors = Program.load paths in
        List.iter
          (fun (file, err) -> Fmt.epr "dbperf: cannot parse %s: %s@." file err)
          errors;
        Perf.pp_hot Fmt.stdout prog;
        Some (if errors <> [] then 2 else 0)
      end)
    ~analyze:(fun ~selected ~paths ->
      let rules =
        match selected with
        | None -> Perf.all_rules
        | Some names ->
          List.filter (fun (r : Perf.rule) -> List.mem r.Perf.name names)
            Perf.all_rules
      in
      let prog, errors = Program.load paths in
      let report = Perf.analyze ~rules prog in
      {
        Cli.o_violations = report.Perf.violations;
        o_suppressed = report.Perf.suppressed;
        o_files = report.Perf.files;
        o_errors = errors;
      })
    ()
