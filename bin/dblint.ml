(* dblint — protocol/determinism linter for this repository.

   Usage: dblint [--format text|json|sarif] [--rules r1,r2] [--list-rules]
                 [PATH...]

   Parses every .ml under the given paths (default: lib bin) with
   compiler-libs and enforces the simulator's machine-checkable
   invariants: seed-determinism, exhaustive Msg dispatch, interned stat
   counters, and .mli coverage.  Exit code: 0 clean, 1 violations found,
   2 parse/usage errors. *)

open Dbtree_lint

let usage =
  "dblint [--format text|json|sarif] [--rules NAMES] [--list-rules] [PATH...]"

let () =
  let format = ref `Text in
  let selected = ref None in
  let list_rules = ref false in
  let paths = ref [] in
  let set_format = function
    | "text" -> format := `Text
    | "json" -> format := `Json
    | "sarif" -> format := `Sarif
    | f -> raise (Arg.Bad (Fmt.str "unknown format %S (text|json|sarif)" f))
  in
  let set_rules names =
    selected :=
      Some
        (String.split_on_char ',' names
        |> List.map (fun name ->
               match Lint.find_rule (String.trim name) with
               | Some r -> r
               | None -> raise (Arg.Bad (Fmt.str "unknown rule %S" name))))
  in
  let spec =
    [
      ( "--format",
        Arg.String set_format,
        "FMT Report format: text (default), json or sarif" );
      ("--rules", Arg.String set_rules, "NAMES Comma-separated subset of rules to run");
      ("--list-rules", Arg.Set list_rules, " List the registered rules and exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun r -> Fmt.pr "%-20s %s@." r.Rule.name r.Rule.doc)
      Lint.all_rules;
    exit 0
  end;
  let paths = match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some p ->
    Fmt.epr "dblint: no such file or directory: %s@." p;
    exit 2
  | None -> ());
  let rules = Option.value !selected ~default:Lint.all_rules in
  let files = Lint.collect_files paths in
  let errors = ref 0 in
  let results =
    List.map
      (fun file ->
        try Lint.lint_file ~rules file
        with exn ->
          incr errors;
          Fmt.epr "dblint: cannot parse %s: %a@." file Fmt.exn exn;
          { Lint.violations = []; suppressed = 0 })
      files
  in
  let violations = List.concat_map (fun r -> r.Lint.violations) results in
  let suppressed =
    List.fold_left (fun acc r -> acc + r.Lint.suppressed) 0 results
  in
  (match !format with
  | `Text ->
    List.iter (Lint.pp_text Fmt.stdout) violations;
    Fmt.epr "dblint: %d file(s), %d violation(s), %d suppressed@."
      (List.length files) (List.length violations) suppressed
  | `Json ->
    Lint.pp_json Fmt.stdout ~files:(List.length files) ~suppressed violations
  | `Sarif ->
    Sarif.pp Fmt.stdout ~tool:"dblint"
      ~rules:(List.map (fun r -> (r.Rule.name, r.Rule.doc)) Lint.all_rules)
      violations);
  if !errors > 0 then exit 2 else if violations <> [] then exit 1 else exit 0
