(* dblint — protocol/determinism linter for this repository.

   Usage: dblint [--format text|json|sarif] [--rules r1,r2] [--list-rules]
                 [PATH...]

   Parses every .ml under the given paths (default: lib bin) with
   compiler-libs and enforces the simulator's machine-checkable
   invariants: seed-determinism, exhaustive Msg dispatch, interned stat
   counters, and .mli coverage.  Exit code: 0 clean, 1 violations found,
   2 parse/usage errors. *)

open Dbtree_lint

let () =
  Cli.run ~tool:"dblint"
    ~registry:(List.map (fun r -> (r.Rule.name, r.Rule.doc)) Lint.all_rules)
    ~analyze:(fun ~selected ~paths ->
      let rules =
        match selected with
        | None -> Lint.all_rules
        | Some names ->
          List.filter (fun r -> List.mem r.Rule.name names) Lint.all_rules
      in
      let files = Lint.collect_files paths in
      let errors = ref [] in
      let results =
        List.map
          (fun file ->
            try Lint.lint_file ~rules file
            with exn ->
              errors := (file, Printexc.to_string exn) :: !errors;
              { Lint.violations = []; suppressed = 0 })
          files
      in
      {
        Cli.o_violations = List.concat_map (fun r -> r.Lint.violations) results;
        o_suppressed =
          List.fold_left (fun acc r -> acc + r.Lint.suppressed) 0 results;
        o_files = List.length files;
        o_errors = List.rev !errors;
      })
    ()
