(* dbflow — whole-program protocol-flow analysis for this repository.

   Usage: dbflow [--format text|json|sarif] [--rules r1,r2] [--list-rules]
                 [PATH...]

   Parses every .ml under the given paths (default: lib bin) in one
   pass, builds the cross-module call and message-flow graph, and runs
   the graph-level rules: send/handle completeness, AAS discipline,
   ordering-class audit, counter lifecycle and span pairing.  Exit
   code: 0 clean, 1 violations found, 2 parse/usage errors. *)

open Dbtree_lint
open Dbtree_flow

let () =
  Cli.run ~tool:"dbflow"
    ~registry:(List.map (fun (r : Flow.rule) -> (r.Flow.name, r.Flow.doc)) Flow.all_rules)
    ~analyze:(fun ~selected ~paths ->
      let rules =
        match selected with
        | None -> Flow.all_rules
        | Some names ->
          List.filter (fun (r : Flow.rule) -> List.mem r.Flow.name names)
            Flow.all_rules
      in
      let prog, errors = Program.load paths in
      let report = Flow.analyze ~rules prog in
      {
        Cli.o_violations = report.Flow.violations;
        o_suppressed = report.Flow.suppressed;
        o_files = report.Flow.files;
        o_errors = errors;
      })
    ()
