(* dbflow — whole-program protocol-flow analysis for this repository.

   Usage: dbflow [--format text|json|sarif] [--rules r1,r2] [--list-rules]
                 [PATH...]

   Parses every .ml under the given paths (default: lib bin) in one
   pass, builds the cross-module call and message-flow graph, and runs
   the graph-level rules: send/handle completeness, AAS discipline,
   ordering-class audit, counter lifecycle and span pairing.  Exit
   code: 0 clean, 1 violations found, 2 parse/usage errors. *)

open Dbtree_lint
open Dbtree_flow

let usage =
  "dbflow [--format text|json|sarif] [--rules NAMES] [--list-rules] [PATH...]"

let () =
  let format = ref `Text in
  let selected = ref None in
  let list_rules = ref false in
  let paths = ref [] in
  let set_format = function
    | "text" -> format := `Text
    | "json" -> format := `Json
    | "sarif" -> format := `Sarif
    | f -> raise (Arg.Bad (Fmt.str "unknown format %S (text|json|sarif)" f))
  in
  let set_rules names =
    selected :=
      Some
        (String.split_on_char ',' names
        |> List.map (fun name ->
               match Flow.find_rule (String.trim name) with
               | Some r -> r
               | None -> raise (Arg.Bad (Fmt.str "unknown rule %S" name))))
  in
  let spec =
    [
      ( "--format",
        Arg.String set_format,
        "FMT Report format: text (default), json or sarif" );
      ("--rules", Arg.String set_rules, "NAMES Comma-separated subset of rules to run");
      ("--list-rules", Arg.Set list_rules, " List the registered rules and exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Flow.rule) -> Fmt.pr "%-20s %s@." r.Flow.name r.Flow.doc)
      Flow.all_rules;
    exit 0
  end;
  let paths = match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some p ->
    Fmt.epr "dbflow: no such file or directory: %s@." p;
    exit 2
  | None -> ());
  let rules = Option.value !selected ~default:Flow.all_rules in
  let prog, errors = Program.load paths in
  List.iter
    (fun (file, err) -> Fmt.epr "dbflow: cannot parse %s: %s@." file err)
    errors;
  let report = Flow.analyze ~rules prog in
  (match !format with
  | `Text ->
    List.iter (Lint.pp_text Fmt.stdout) report.Flow.violations;
    Fmt.epr "dbflow: %d file(s), %d violation(s), %d suppressed@."
      report.Flow.files
      (List.length report.Flow.violations)
      report.Flow.suppressed
  | `Json ->
    Lint.pp_json Fmt.stdout ~files:report.Flow.files
      ~suppressed:report.Flow.suppressed report.Flow.violations
  | `Sarif ->
    Sarif.pp Fmt.stdout ~tool:"dbflow"
      ~rules:(List.map (fun (r : Flow.rule) -> (r.Flow.name, r.Flow.doc)) Flow.all_rules)
      report.Flow.violations);
  if errors <> [] then exit 2
  else if report.Flow.violations <> [] then exit 1
  else exit 0
