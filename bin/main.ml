(* dbtree — command-line driver for the experiments and ad-hoc runs. *)
open Cmdliner

let quick_arg =
  let doc = "Run with reduced workload sizes (fast smoke pass)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

(* ------------------------------ list ------------------------------ *)

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun e ->
        Fmt.pr "%-4s %s@." e.Dbtree_experiments.Experiments.id
          e.Dbtree_experiments.Experiments.title)
      Dbtree_experiments.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ------------------------------ run ------------------------------- *)

let run_cmd =
  let doc = "Run one experiment by id (e1 .. e12)." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id.")
  in
  let trace_arg =
    let doc =
      "Record a causal event trace of every cluster the experiment builds \
       and write it to $(docv) as Chrome trace-event JSON (load it in \
       Perfetto or chrome://tracing)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run quick trace id =
    match Dbtree_experiments.Experiments.find (String.lowercase_ascii id) with
    | Some e ->
      Option.iter (fun _ -> Dbtree_obs.Obs.force_enable ()) trace;
      e.Dbtree_experiments.Experiments.run ~quick ();
      Option.iter
        (fun path ->
          let recorders = Dbtree_obs.Obs.registered () in
          Dbtree_obs.Export.write ~path recorders;
          let events =
            List.fold_left
              (fun acc o -> acc + Dbtree_obs.Obs.length o)
              0 recorders
          in
          Fmt.pr "trace: %d events from %d recorder(s) -> %s@." events
            (List.length recorders) path)
        trace;
      `Ok ()
    | None ->
      `Error (false, Fmt.str "unknown experiment %S; try `dbtree list'" id)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(ret (const run $ quick_arg $ trace_arg $ id_arg))

(* ------------------------------ all ------------------------------- *)

let all_cmd =
  let doc = "Run every experiment in order." in
  let run quick = Dbtree_experiments.Experiments.run_all ~quick () in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ quick_arg)

(* ------------------------------ demo ------------------------------ *)

let demo_cmd =
  let doc =
    "Ad-hoc cluster run: load keys into a dB-tree and print the verifier \
     report and statistics."
  in
  let procs_arg =
    Arg.(value & opt int 4 & info [ "procs"; "p" ] ~doc:"Processors.")
  in
  let count_arg =
    Arg.(value & opt int 1000 & info [ "keys"; "n" ] ~doc:"Keys to insert.")
  in
  let capacity_arg =
    Arg.(value & opt int 8 & info [ "capacity"; "c" ] ~doc:"Node capacity.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let dump_arg =
    Arg.(value & flag & info [ "dump" ] ~doc:"Print the distributed tree afterwards.")
  in
  let protocol_arg =
    let protocol_conv =
      Arg.enum
        [
          ("semi", `Semi); ("sync", `Sync); ("eager", `Eager);
          ("naive", `Naive); ("mobile", `Mobile); ("variable", `Variable);
        ]
    in
    Arg.(
      value
      & opt protocol_conv `Semi
      & info [ "protocol" ]
          ~doc:"Protocol: semi, sync, eager, naive, mobile, variable.")
  in
  let run procs count capacity seed protocol dump =
    let open Dbtree_core in
    let open Dbtree_experiments in
    let mk ?(discipline = Config.Semi) ?(balance_period = 0) () =
      Config.make ~procs ~capacity ~seed ~key_space:(max 100_000 (count * 20))
        ~discipline ~balance_period ()
    in
    let r =
      match protocol with
      | `Semi -> Common.run_fixed ~count (mk ())
      | `Sync -> Common.run_fixed ~count (mk ~discipline:Config.Sync ())
      | `Eager -> Common.run_fixed ~count (mk ~discipline:Config.Eager ())
      | `Naive ->
        Common.run_fixed ~count
          (Config.make ~procs ~capacity ~seed
             ~key_space:(max 100_000 (count * 20))
             ~discipline:Config.Naive ~replication:Config.All_procs ())
      | `Mobile -> snd (Common.run_mobile ~count (mk ~balance_period:200 ()))
      | `Variable -> snd (Common.run_variable ~count (mk ~balance_period:200 ()))
    in
    Fmt.pr "%a@." Verify.pp r.Common.report;
    Fmt.pr "ops completed: %d in %d ticks (%.2f ops/ktick)@."
      (Common.ops_completed r) r.Common.elapsed (Common.throughput r);
    Fmt.pr "splits: %d   remote messages: %d   bytes: %d@." r.Common.splits
      (Common.msgs r)
      (Cluster.Network.bytes_sent r.Common.cluster.Cluster.net);
    Fmt.pr "verified: %s@." (Common.verified r);
    if dump then Fmt.pr "@.%a" Debug.pp_cluster r.Common.cluster
  in
  Cmd.v (Cmd.info "demo" ~doc)
    Term.(
      const run $ procs_arg $ count_arg $ capacity_arg $ seed_arg
      $ protocol_arg $ dump_arg)

(* ----------------------------- metrics ---------------------------- *)

let metrics_cmd =
  let doc =
    "Run a small deterministic semi-lazy workload with the telemetry \
     plane on and print the scraped series: Prometheus text exposition \
     of the final scrape plus the SLO health summary, or the full \
     retained time series as JSON with $(b,--json)."
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Dump every retained point of every series as JSON.")
  in
  let run json =
    let open Dbtree_core in
    let open Dbtree_experiments in
    let cfg =
      Config.make ~procs:4 ~capacity:8 ~seed:42 ~key_space:100_000
        ~discipline:Config.Semi ~telemetry:true ~telemetry_every:256 ()
    in
    let r = Common.run_fixed ~count:400 cfg in
    let tm = Cluster.telemetry r.Common.cluster in
    let series = Telemetry.series tm in
    if json then print_string (Dbtree_obs.Series.to_json series)
    else begin
      Fmt.pr "%a" Dbtree_obs.Series.pp_prometheus series;
      Fmt.pr "# health (rule: fired / active ticks / peak)@.";
      Fmt.pr "%a" Dbtree_obs.Health.pp_summary (Telemetry.health tm)
    end
  in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const run $ json_arg)

(* --------------------------- trace-check -------------------------- *)

let trace_check_cmd =
  let doc =
    "Validate a trace file against the Chrome trace-event schema \
     (well-formed JSON, known phases, balanced async spans, resolved \
     flow bindings)."
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Trace JSON file.")
  in
  let run file =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Dbtree_obs.Export.validate s with
    | Ok events ->
      Fmt.pr "%s: ok (%d trace events)@." file events;
      `Ok ()
    | Error e -> `Error (false, Fmt.str "%s: %s" file e)
  in
  Cmd.v (Cmd.info "trace-check" ~doc) Term.(ret (const run $ file_arg))

let main =
  let doc = "Lazy updates for distributed search structures (dB-tree)" in
  Cmd.group
    (Cmd.info "dbtree" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; demo_cmd; metrics_cmd; trace_check_cmd ]

let () = exit (Cmd.eval main)
