(* dbrace — whole-program domain-safety analysis for this repository.

   Usage: dbrace [--format text|json|sarif] [--rules r1,r2] [--list-rules]
                 [--inventory] [PATH...]

   Parses every .ml under the given paths (default: lib bin) in one
   pass, inventories toplevel mutable state, computes the call-graph
   closure from every domain-worker entry point (functions handed to
   Par.map / Par.run_cells / Sim.register_handler), and checks the two
   sets only meet through Atomic operations or a justified annotation:
   par-shared-state, atomic-discipline, init-once.  [--inventory] prints
   the pass-1 audit view instead of running the rules.  Exit code:
   0 clean, 1 violations found, 2 parse/usage errors. *)

open Dbtree_lint
open Dbtree_flow

let usage =
  "dbrace [--format text|json|sarif] [--rules NAMES] [--list-rules] \
   [--inventory] [PATH...]"

let () =
  let format = ref `Text in
  let selected = ref None in
  let list_rules = ref false in
  let show_inventory = ref false in
  let paths = ref [] in
  let set_format = function
    | "text" -> format := `Text
    | "json" -> format := `Json
    | "sarif" -> format := `Sarif
    | f -> raise (Arg.Bad (Fmt.str "unknown format %S (text|json|sarif)" f))
  in
  let set_rules names =
    selected :=
      Some
        (String.split_on_char ',' names
        |> List.map (fun name ->
               match Race.find_rule (String.trim name) with
               | Some r -> r
               | None -> raise (Arg.Bad (Fmt.str "unknown rule %S" name))))
  in
  let spec =
    [
      ( "--format",
        Arg.String set_format,
        "FMT Report format: text (default), json or sarif" );
      ("--rules", Arg.String set_rules, "NAMES Comma-separated subset of rules to run");
      ("--list-rules", Arg.Set list_rules, " List the registered rules and exit");
      ( "--inventory",
        Arg.Set show_inventory,
        " Print the toplevel mutable-state inventory and exit" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Race.rule) -> Fmt.pr "%-20s %s@." r.Race.name r.Race.doc)
      Race.all_rules;
    exit 0
  end;
  let paths = match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some p ->
    Fmt.epr "dbrace: no such file or directory: %s@." p;
    exit 2
  | None -> ());
  let rules = Option.value !selected ~default:Race.all_rules in
  let prog, errors = Program.load paths in
  List.iter
    (fun (file, err) -> Fmt.epr "dbrace: cannot parse %s: %s@." file err)
    errors;
  if !show_inventory then begin
    Race.pp_inventory Fmt.stdout prog;
    exit (if errors <> [] then 2 else 0)
  end;
  let report = Race.analyze ~rules prog in
  (match !format with
  | `Text ->
    List.iter (Lint.pp_text Fmt.stdout) report.Race.violations;
    Fmt.epr "dbrace: %d file(s), %d violation(s), %d suppressed@."
      report.Race.files
      (List.length report.Race.violations)
      report.Race.suppressed
  | `Json ->
    Lint.pp_json Fmt.stdout ~files:report.Race.files
      ~suppressed:report.Race.suppressed report.Race.violations
  | `Sarif ->
    Sarif.pp Fmt.stdout ~tool:"dbrace"
      ~rules:(List.map (fun (r : Race.rule) -> (r.Race.name, r.Race.doc)) Race.all_rules)
      report.Race.violations);
  if errors <> [] then exit 2
  else if report.Race.violations <> [] then exit 1
  else exit 0
