(* dbrace — whole-program domain-safety analysis for this repository.

   Usage: dbrace [--format text|json|sarif] [--rules r1,r2] [--list-rules]
                 [--inventory] [PATH...]

   Parses every .ml under the given paths (default: lib bin) in one
   pass, inventories toplevel mutable state, computes the call-graph
   closure from every domain-worker entry point (functions handed to
   Par.map / Par.run_cells / Sim.register_handler), and checks the two
   sets only meet through Atomic operations or a justified annotation:
   par-shared-state, atomic-discipline, init-once.  [--inventory] prints
   the pass-1 audit view instead of running the rules.  Exit code:
   0 clean, 1 violations found, 2 parse/usage errors. *)

open Dbtree_lint
open Dbtree_flow

let () =
  let show_inventory = ref false in
  Cli.run ~tool:"dbrace"
    ~registry:(List.map (fun (r : Race.rule) -> (r.Race.name, r.Race.doc)) Race.all_rules)
    ~extra_specs:
      [
        ( "--inventory",
          Arg.Set show_inventory,
          " Print the toplevel mutable-state inventory and exit" );
      ]
    ~alt:(fun paths ->
      if not !show_inventory then None
      else begin
        let prog, errors = Program.load paths in
        List.iter
          (fun (file, err) -> Fmt.epr "dbrace: cannot parse %s: %s@." file err)
          errors;
        Race.pp_inventory Fmt.stdout prog;
        Some (if errors <> [] then 2 else 0)
      end)
    ~analyze:(fun ~selected ~paths ->
      let rules =
        match selected with
        | None -> Race.all_rules
        | Some names ->
          List.filter (fun (r : Race.rule) -> List.mem r.Race.name names)
            Race.all_rules
      in
      let prog, errors = Program.load paths in
      let report = Race.analyze ~rules prog in
      {
        Cli.o_violations = report.Race.violations;
        o_suppressed = report.Race.suppressed;
        o_files = report.Race.files;
        o_errors = errors;
      })
    ()
