(** dblint driver: parse [.ml] sources with compiler-libs, run the rule
    registry over each, filter through suppression comments, and render
    the surviving violations.

    The checks are purely syntactic (no typing pass), which keeps them
    fast and dependency-free; each rule compensates with path scoping
    (protocol modules, [lib/] only, allowlists) and the suppression
    escape hatch documented in {!Suppress}. *)

val all_rules : Rule.t list
(** The registry, in reporting order. *)

val rule_names : string list
(** Names of {!all_rules}, the vocabulary allow comments may use. *)

val find_rule : string -> Rule.t option

type file_result = {
  violations : Rule.violation list;  (** unsuppressed, in source order *)
  suppressed : int;  (** count silenced by allow comments *)
}

val lint_source : ?rules:Rule.t list -> file:string -> string -> file_result
(** Lint source text as if it lived at [file] (which scopes the rules:
    protocol basename, [lib/] membership, allowlists).  The [mli-coverage]
    rule consults the filesystem for a sibling [.mli].  An allow comment
    naming a rule outside {!rule_names} yields an [unknown-rule]
    violation (typos must not suppress silently).
    @raise Syntaxerr.Error on unparseable input. *)

val lint_file : ?rules:Rule.t list -> string -> file_result

val collect_files : string list -> string list
(** Expand files/directories into a deterministically ordered [.ml] list,
    skipping [_build] and dot-directories. *)

val pp_text : Format.formatter -> Rule.violation -> unit
(** [file:line:col: [rule] message] — one line per violation. *)

val pp_json :
  Format.formatter ->
  files:int ->
  suppressed:int ->
  Rule.violation list ->
  unit
(** Machine-readable report:
    [{"files":N,"suppressed":N,"violations":[...]}]. *)
