(** no-nondeterminism: forbid seed-uncontrolled randomness ([Random.*]),
    wall-clock reads ([Sys.time], [Unix.gettimeofday], [Unix.time]) and
    unspecified-order hash iteration ([Hashtbl.iter]/[Hashtbl.fold])
    everywhere except [lib/sim/rng.ml] and [bench/]. *)

val rule : Rule.t
