(* interned-stats: [Stats.counter] resolves a name to a handle with a hash
   lookup and possibly an allocation.  Doing that resolution with a
   computed name inside a function body re-interns on every call — the
   exact hot-path cost the PR 1 overhaul removed by hand (handles are now
   resolved once per cluster in [make_counters], and per-kind counters are
   pre-interned arrays).  A [Stats.counter] call is fine when partially
   applied (the [let c = Stats.counter stats in ...] intern-once idiom) or
   given a literal name at a creation site; a computed name is flagged so
   the resolution is hoisted — or consciously allowed. *)

let is_stats_counter (lid : Longident.t) =
  match Rule.strip_stdlib lid with
  | Longident.Ldot (l, "counter") -> (
    match Rule.lident_components l with
    | [] -> false
    | comps -> List.nth comps (List.length comps - 1) = "Stats")
  | _ -> false

let rec is_literal_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string _) -> true
  | Pexp_constraint (e, _) -> is_literal_name e
  | _ -> false

let check ctx structure =
  let acc = ref [] in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when is_stats_counter txt -> (
      (* First argument is the stats bag; the second, when present, is the
         counter name.  A 1-argument application is the partial-application
         intern idiom and passes. *)
      match args with
      | _ :: (_, name) :: _ when not (is_literal_name name) ->
        acc :=
          Rule.violation ctx ~rule:"interned-stats" ~loc:name.pexp_loc
            "computed counter name re-interns on every call: resolve the \
             handle once (Stats.counter at creation) and Stats.tick it, \
             or justify with a dblint allow comment"
          :: !acc
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  List.rev !acc

let rule =
  {
    Rule.name = "interned-stats";
    doc =
      "Stats.counter must take a literal name (or be partially applied): \
       computed names re-intern per call";
    check;
  }
