(** Reading and parsing [.ml] sources, shared by dblint (per-file rules)
    and dbflow (whole-program analysis) so the two tools agree on
    locations and encoding. *)

val read_file : string -> string
(** Whole file as a string, read in binary mode (byte offsets in
    [Location.t] then match the on-disk file exactly). *)

val parse : file:string -> string -> Parsetree.structure
(** Parse source text as if it lived at [file]; locations carry [file].
    @raise Syntaxerr.Error on unparseable input. *)
