(** exhaustive-dispatch: inside the protocol kernels
    ({!Rule.protocol_basenames}), flag unguarded wildcard ([_]) arms of any
    [match]/[function] that dispatches on [Msg] values — detected as a
    scrutinee mentioning [Msg], or any arm pattern naming a [Msg.]
    constructor.  Adding a [Msg.t] constructor must surface as a
    compile-time exhaustiveness error, not a run-time failure. *)

val rule : Rule.t
