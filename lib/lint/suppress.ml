type t = {
  file_rules : string list;
  line_rules : (int * string list) list;
  unknown : (int * string) list;
}

let is_rule_token tok =
  tok <> ""
  && String.exists (fun c -> c >= 'a' && c <= 'z') tok
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '-') tok

(* Rule names follow the marker, separated by spaces or commas; anything
   from the first non-rule-shaped token on (conventionally after [--]) is
   the justification and is ignored. *)
let rules_after line marker =
  match
    let mlen = String.length marker in
    let rec find i =
      if i + mlen > String.length line then None
      else if String.sub line i mlen = marker then Some (i + mlen)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some start ->
    let rest = String.sub line start (String.length line - start) in
    let tokens =
      String.split_on_char ' ' rest
      |> List.concat_map (String.split_on_char ',')
      |> List.filter (fun t -> t <> "")
    in
    let rec leading = function
      | tok :: rest when is_rule_token tok -> tok :: leading rest
      | _ -> []
    in
    Some (leading tokens)

let scan ?(tool = "dblint") ?known source =
  let lines = String.split_on_char '\n' source in
  let file_rules = ref [] and line_rules = ref [] and unknown = ref [] in
  let check_known lnum rules =
    match known with
    | None -> ()
    | Some names ->
      List.iter
        (fun r ->
          if not (List.mem r names) then unknown := (lnum, r) :: !unknown)
        rules
  in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      match rules_after line (tool ^ ": allow-file") with
      | Some rules ->
        check_known lnum rules;
        file_rules := rules @ !file_rules
      | None -> (
        match rules_after line (tool ^ ": allow") with
        | Some rules when rules <> [] ->
          check_known lnum rules;
          line_rules := (lnum, rules) :: !line_rules
        | Some _ | None -> ()))
    lines;
  {
    file_rules = !file_rules;
    line_rules = !line_rules;
    unknown = List.rev !unknown;
  }

(* A line-scoped allow covers its own line and the next one, so it works
   both as a trailing comment and as a comment of its own above the
   flagged expression. *)
let active t ~rule ~line =
  List.mem rule t.file_rules
  || List.exists
       (fun (l, rules) -> (l = line || l + 1 = line) && List.mem rule rules)
       t.line_rules

let unknown_rules t = t.unknown
