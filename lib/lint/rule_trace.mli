(** guarded-trace: flag trace [emit] / [emit_here] applications whose
    arguments build a string eagerly ([Fmt.str], [Printf.sprintf],
    [String.concat], [^]) — that work runs whether or not tracing is on,
    defeating the one-branch disabled path the typed recorder provides.
    Work deferred behind [lazy] or [fun] passes. *)

val rule : Rule.t
