(* mli-coverage: every library module carries an interface file.  The
   [.mli] is where replication invariants and protocol contracts are
   documented (see store.mli, msg.mli), and it keeps the linkable surface
   of each module deliberate — growth PRs refactor freely, and an absent
   interface lets incidental helpers become load-bearing exports.
   Executables ([bin/], [test/], [bench/]) are exempt: they export
   nothing. *)

let check ctx (_ : Parsetree.structure) =
  if
    ctx.Rule.in_lib
    && Filename.check_suffix ctx.Rule.file ".ml"
    && not (Sys.file_exists (Filename.chop_suffix ctx.Rule.file ".ml" ^ ".mli"))
  then
    [
      {
        Rule.rule = "mli-coverage";
        file = ctx.Rule.file;
        line = 1;
        col = 0;
        message =
          "library module has no interface file: add a sibling .mli \
           declaring (and documenting) the intended exports";
      };
    ]
  else []

let rule =
  {
    Rule.name = "mli-coverage";
    doc = "every module under lib/ has a sibling .mli";
    check;
  }
