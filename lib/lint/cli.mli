(** The shared checker driver: argument handling, rendering, and the
    0/1/2 exit contract for dblint/dbflow/dbrace/dbperf.

    Every checker exposes the same surface — positional paths
    (defaulting to [lib bin], missing paths exiting 2), [--format
    text|json|sarif], a [--rules] subset validated against the
    registry, and [--list-rules] — so the drivers reduce to a registry,
    an [analyze] callback, and optionally a few extra flags plus an
    alternate mode that takes over after path validation (dbrace's
    [--inventory], dbperf's [--hot]). *)

type format = Text | Json | Sarif

type outcome = {
  o_violations : Rule.violation list;
  o_suppressed : int;
  o_files : int;
  o_errors : (string * string) list;
      (** unparseable files as [(file, error)]: reported to stderr and
          forcing exit code 2 *)
}

val run :
  tool:string ->
  registry:(string * string) list ->
  ?extra_specs:(Arg.key * Arg.spec * Arg.doc) list ->
  ?alt:(string list -> int option) ->
  analyze:(selected:string list option -> paths:string list -> outcome) ->
  unit ->
  unit
(** [run ~tool ~registry ~analyze ()] parses the command line and does
    not return.  [registry] is the [(name, doc)] rule catalogue used by
    [--list-rules], [--rules] validation and the SARIF header.  [alt]
    is called with the validated paths before analysis; returning
    [Some code] exits with it (the alternate mode consumed the run).
    [analyze] receives the validated [--rules] subset (rule names) and
    paths, and its outcome is rendered in the selected format: exit 0
    clean, 1 violations, 2 parse/usage errors. *)
