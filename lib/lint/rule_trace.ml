(* guarded-trace: trace emission must be free when tracing is off.  The
   [Dbtree_obs.Obs] recorders store plain integers precisely so the
   disabled path is one branch — an [emit] / [emit_here] call whose
   arguments build a string eagerly ([Fmt.str], [Printf.sprintf],
   [String.concat], [^]) pays the formatting cost on every call whether
   or not anyone is listening.  Such work must be deferred behind
   [lazy]/[fun] (forced only by an enabled consumer) or moved off the
   emission site entirely. *)

let is_emit (lid : Longident.t) =
  match Rule.lident_components (Rule.strip_stdlib lid) with
  | [] -> false
  | comps -> (
    match List.nth comps (List.length comps - 1) with
    | "emit" | "emit_here" -> true
    | _ -> false)

(* String-building callees: [Fmt.str], [Printf.sprintf] (and friends),
   [String.concat], and the [^] operator. *)
let is_string_builder (lid : Longident.t) =
  match Rule.lident_components (Rule.strip_stdlib lid) with
  | [ "^" ] -> true
  | comps -> (
    match comps with
    | [ _ ] -> false
    | _ -> (
      let last = List.nth comps (List.length comps - 1) in
      let prev = List.nth comps (List.length comps - 2) in
      match (prev, last) with
      | "Fmt", ("str" | "str_like") -> true
      | ("Printf" | "Format"), ("sprintf" | "asprintf") -> true
      | "String", "concat" -> true
      | _ -> false))

(* Does [e] build a string eagerly?  [lazy] and [fun] bodies are deferred
   by construction, so the scan does not descend into them. *)
let builds_string_eagerly (e : Parsetree.expression) =
  let found = ref None in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_lazy _ | Pexp_fun _ | Pexp_function _ -> ()
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
      when is_string_builder txt ->
      if !found = None then found := Some e.pexp_loc
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let check ctx structure =
  let acc = ref [] in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when is_emit txt ->
      List.iter
        (fun ((_, arg) : Asttypes.arg_label * Parsetree.expression) ->
          match builds_string_eagerly arg with
          | Some loc ->
            acc :=
              Rule.violation ctx ~rule:"guarded-trace" ~loc
                "eager string building in a trace-emit argument runs even \
                 when tracing is off: defer it behind lazy/fun or move the \
                 formatting off the emission site"
              :: !acc
          | None -> ())
        args
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  List.rev !acc

let rule =
  {
    Rule.name = "guarded-trace";
    doc =
      "trace emit/emit_here arguments must not build strings eagerly: the \
       disabled path must stay one branch";
    check;
  }
