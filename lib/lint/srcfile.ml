let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Location.input_name := file;
  Parse.implementation lexbuf
