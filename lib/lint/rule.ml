type violation = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type ctx = {
  file : string;
  source : string;
  in_lib : bool;
  nondet_allowlisted : bool;
  protocol : bool;
}

type t = {
  name : string;
  doc : string;
  check : ctx -> Parsetree.structure -> violation list;
}

let protocol_basenames = [ "fixed.ml"; "variable.ml"; "mobile.ml"; "cluster.ml" ]

let path_components file =
  String.split_on_char '/' file
  |> List.concat_map (String.split_on_char '\\')
  |> List.filter (fun c -> c <> "" && c <> ".")

let make_ctx ~file ~source =
  let comps = path_components file in
  let base = Filename.basename file in
  {
    file;
    source;
    in_lib = List.mem "lib" comps;
    nondet_allowlisted = base = "rng.ml" || List.mem "bench" comps;
    protocol = List.mem base protocol_basenames;
  }

let violation ctx ~rule ~loc message =
  let pos = loc.Location.loc_start in
  {
    rule;
    file = ctx.file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message;
  }

(* [Longident] helpers shared by the AST-walking rules. *)

(* Normalise away an explicit [Stdlib.] qualifier so that
   [Stdlib.Hashtbl.iter] and [Hashtbl.iter] look the same. *)
let rec strip_stdlib (lid : Longident.t) : Longident.t =
  match lid with
  | Longident.Ldot (Longident.Lident "Stdlib", s) -> Longident.Lident s
  | Longident.Ldot (l, s) -> Longident.Ldot (strip_stdlib l, s)
  | Longident.Lident _ | Longident.Lapply _ -> lid

let rec lident_components (lid : Longident.t) =
  match lid with
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> lident_components l @ [ s ]
  | Longident.Lapply _ -> []

let mentions_module lid m = List.mem m (lident_components (strip_stdlib lid))
