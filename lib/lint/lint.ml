let all_rules =
  [
    Rule_nondet.rule; Rule_dispatch.rule; Rule_stats.rule; Rule_mli.rule;
    Rule_trace.rule;
  ]

let rule_names = List.map (fun r -> r.Rule.name) all_rules
let find_rule name = List.find_opt (fun r -> r.Rule.name = name) all_rules

type file_result = {
  violations : Rule.violation list;  (** unsuppressed, in source order *)
  suppressed : int;
}

let read_file = Srcfile.read_file
let parse = Srcfile.parse

let sort_violations vs =
  List.sort
    (fun (a : Rule.violation) b ->
      compare (a.line, a.col, a.rule) (b.line, b.col, b.rule))
    vs

(* A typoed rule name in an allow comment must not pass silently: the
   author believes something is suppressed that is not.  Reported as a
   violation of the pseudo-rule [unknown-rule] so it fails the gate. *)
let unknown_rule_violations ~file suppressions =
  List.map
    (fun (line, tok) ->
      {
        Rule.rule = "unknown-rule";
        file;
        line;
        col = 0;
        message =
          Fmt.str
            "allow comment names unknown rule %S (known: %s): fix the name \
             or the comment suppresses nothing"
            tok
            (String.concat ", " rule_names);
      })
    (Suppress.unknown_rules suppressions)

let lint_source ?(rules = all_rules) ~file source =
  let ctx = Rule.make_ctx ~file ~source in
  let structure = parse ~file source in
  let suppressions = Suppress.scan ~known:rule_names source in
  let all =
    List.concat_map (fun r -> r.Rule.check ctx structure) rules
    |> sort_violations
  in
  let suppressed, violations =
    List.partition
      (fun (v : Rule.violation) ->
        Suppress.active suppressions ~rule:v.rule ~line:v.line)
      all
  in
  let violations =
    sort_violations (unknown_rule_violations ~file suppressions @ violations)
  in
  { violations; suppressed = List.length suppressed }

let lint_file ?rules file = lint_source ?rules ~file (read_file file)

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)

let rec collect_path acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare (* Sys.readdir order is unspecified *)
    |> List.filter (fun name -> name <> "" && name.[0] <> '.' && name <> "_build")
    |> List.fold_left (fun acc name -> collect_path acc (Filename.concat path name)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let collect_files paths = List.rev (List.fold_left collect_path [] paths)

(* ------------------------------------------------------------------ *)
(* Reporters                                                           *)

let pp_text ppf (v : Rule.violation) =
  Fmt.pf ppf "%s:%d:%d: [%s] %s@." v.file v.line v.col v.rule v.message

let json_escape = Sarif.json_escape

let pp_json ppf ~files ~suppressed violations =
  let pp_violation ppf (v : Rule.violation) =
    Fmt.pf ppf
      {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
      (json_escape v.rule) (json_escape v.file) v.line v.col
      (json_escape v.message)
  in
  Fmt.pf ppf {|{"files":%d,"suppressed":%d,"violations":[%a]}@.|} files
    suppressed
    (Fmt.list ~sep:(Fmt.any ",") pp_violation)
    violations
