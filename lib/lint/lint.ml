let all_rules =
  [
    Rule_nondet.rule; Rule_dispatch.rule; Rule_stats.rule; Rule_mli.rule;
    Rule_trace.rule;
  ]

let find_rule name = List.find_opt (fun r -> r.Rule.name = name) all_rules

type file_result = {
  violations : Rule.violation list;  (** unsuppressed, in source order *)
  suppressed : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Location.input_name := file;
  Parse.implementation lexbuf

let lint_source ?(rules = all_rules) ~file source =
  let ctx = Rule.make_ctx ~file ~source in
  let structure = parse ~file source in
  let suppressions = Suppress.scan source in
  let all =
    List.concat_map (fun r -> r.Rule.check ctx structure) rules
    |> List.sort (fun (a : Rule.violation) b ->
           compare (a.line, a.col, a.rule) (b.line, b.col, b.rule))
  in
  let suppressed, violations =
    List.partition
      (fun (v : Rule.violation) ->
        Suppress.active suppressions ~rule:v.rule ~line:v.line)
      all
  in
  { violations; suppressed = List.length suppressed }

let lint_file ?rules file = lint_source ?rules ~file (read_file file)

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)

let rec collect_path acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare (* Sys.readdir order is unspecified *)
    |> List.filter (fun name -> name <> "" && name.[0] <> '.' && name <> "_build")
    |> List.fold_left (fun acc name -> collect_path acc (Filename.concat path name)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let collect_files paths = List.rev (List.fold_left collect_path [] paths)

(* ------------------------------------------------------------------ *)
(* Reporters                                                           *)

let pp_text ppf (v : Rule.violation) =
  Fmt.pf ppf "%s:%d:%d: [%s] %s@." v.file v.line v.col v.rule v.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_json ppf ~files ~suppressed violations =
  let pp_violation ppf (v : Rule.violation) =
    Fmt.pf ppf
      {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
      (json_escape v.rule) (json_escape v.file) v.line v.col
      (json_escape v.message)
  in
  Fmt.pf ppf {|{"files":%d,"suppressed":%d,"violations":[%a]}@.|} files
    suppressed
    (Fmt.list ~sep:(Fmt.any ",") pp_violation)
    violations
