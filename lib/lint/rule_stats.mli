(** interned-stats: flag [Stats.counter] applications whose name argument
    is a computed (non-literal) string — each such call re-interns the
    name, the hot-path cost the interned-handle refactor removed.  Partial
    applications ([let c = Stats.counter stats in c "x"]) and literal
    names pass. *)

val rule : Rule.t
