(** Rule interface for dblint: a named check over one parsed source file. *)

type violation = {
  rule : string;  (** rule name, e.g. ["no-nondeterminism"] *)
  file : string;  (** path as given on the command line *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

(** Per-file facts every rule may consult, derived from the path once. *)
type ctx = {
  file : string;
  source : string;  (** raw file contents *)
  in_lib : bool;  (** the path has a [lib] component *)
  nondet_allowlisted : bool;
      (** [rng.ml] or anything under [bench/]: may use raw randomness and
          hash-order iteration *)
  protocol : bool;  (** one of the protocol kernels (see
          {!protocol_basenames}): subject to exhaustive-dispatch *)
}

type t = {
  name : string;
  doc : string;  (** one-line description for [--list-rules] *)
  check : ctx -> Parsetree.structure -> violation list;
}

val protocol_basenames : string list
(** Module basenames holding a [Msg.t] dispatch loop. *)

val make_ctx : file:string -> source:string -> ctx

val violation : ctx -> rule:string -> loc:Location.t -> string -> violation

val strip_stdlib : Longident.t -> Longident.t
(** Drop a leading [Stdlib.] qualifier. *)

val lident_components : Longident.t -> string list
(** ["A.B.c"] as [["A"; "B"; "c"]] (empty for functor applications). *)

val mentions_module : Longident.t -> string -> bool
(** Does any component of the (Stdlib-stripped) path equal the module
    name? *)
