(* The shared checker driver: every CLI in this repo (dblint, dbflow,
   dbrace, dbperf) has the same surface — positional paths defaulting to
   [lib bin], [--format text|json|sarif], a [--rules] subset filter
   validated against the registry, [--list-rules], and the 0/1/2 exit
   contract — so the argument handling, rendering and exit-code logic
   live here once.  A tool contributes its registry, an [analyze]
   callback, and optionally extra flags plus an alternate mode (dbrace's
   [--inventory], dbperf's [--hot]) that takes over after path
   validation. *)

type format = Text | Json | Sarif

type outcome = {
  o_violations : Rule.violation list;
  o_suppressed : int;
  o_files : int;
  o_errors : (string * string) list;
      (** unparseable files as [(file, error)]: reported to stderr and
          forcing exit code 2 *)
}

let run ~tool ~registry ?(extra_specs = []) ?(alt = fun _ -> None) ~analyze ()
    =
  let format = ref Text in
  let selected = ref None in
  let list_rules = ref false in
  let paths = ref [] in
  let usage =
    Fmt.str "%s [--format text|json|sarif] [--rules NAMES] [--list-rules]%s [PATH...]"
      tool
      (if extra_specs = [] then "" else " [OPTIONS]")
  in
  let set_format = function
    | "text" -> format := Text
    | "json" -> format := Json
    | "sarif" -> format := Sarif
    | f -> raise (Arg.Bad (Fmt.str "unknown format %S (text|json|sarif)" f))
  in
  let set_rules names =
    selected :=
      Some
        (String.split_on_char ',' names
        |> List.map (fun name ->
               let name = String.trim name in
               if List.mem_assoc name registry then name
               else raise (Arg.Bad (Fmt.str "unknown rule %S" name))))
  in
  let spec =
    [
      ( "--format",
        Arg.String set_format,
        "FMT Report format: text (default), json or sarif" );
      ( "--rules",
        Arg.String set_rules,
        "NAMES Comma-separated subset of rules to run" );
      ("--list-rules", Arg.Set list_rules, " List the registered rules and exit");
    ]
    @ extra_specs
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter (fun (name, doc) -> Fmt.pr "%-20s %s@." name doc) registry;
    exit 0
  end;
  let paths = match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some p ->
    Fmt.epr "%s: no such file or directory: %s@." tool p;
    exit 2
  | None -> ());
  (match alt paths with Some code -> exit code | None -> ());
  let out = analyze ~selected:!selected ~paths in
  List.iter
    (fun (file, err) -> Fmt.epr "%s: cannot parse %s: %s@." tool file err)
    out.o_errors;
  (match !format with
  | Text ->
    List.iter (Lint.pp_text Fmt.stdout) out.o_violations;
    Fmt.epr "%s: %d file(s), %d violation(s), %d suppressed@." tool out.o_files
      (List.length out.o_violations)
      out.o_suppressed
  | Json ->
    Lint.pp_json Fmt.stdout ~files:out.o_files ~suppressed:out.o_suppressed
      out.o_violations
  | Sarif -> Sarif.pp Fmt.stdout ~tool ~rules:registry out.o_violations);
  if out.o_errors <> [] then exit 2
  else if out.o_violations <> [] then exit 1
  else exit 0
