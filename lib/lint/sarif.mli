(** SARIF 2.1.0 rendering shared by the dblint and dbflow CLIs, so both
    can feed GitHub code-scanning (inline PR annotations) from the same
    writer.  Only the slice of the format those consumers read is
    emitted: one run, the tool driver with its rule catalogue, and one
    result per violation with a physical location. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val pp :
  Format.formatter ->
  tool:string ->
  rules:(string * string) list ->
  Rule.violation list ->
  unit
(** [pp ppf ~tool ~rules vs] writes a complete SARIF log.  [rules] is
    the full registry as [(name, one-line doc)] pairs — listed even when
    a subset ran, so result [ruleId]s always resolve.  Columns are
    converted from the repo's 0-based convention to SARIF's 1-based. *)
