(* no-nondeterminism: the simulator's bit-for-bit reproducibility per seed
   is the foundation of every experiment table and regression pin.  Wall
   clocks, the global [Random] state, and unspecified-order hash-table
   iteration all break it (OCaml's [Hashtbl] order is stable for a fixed
   insertion sequence, but changes under [~random:true], [OCAMLRUNPARAM=R]
   or a stdlib upgrade — and it leaks schedule decisions that should come
   only from [Rng]).  Raw randomness lives in [lib/sim/rng.ml]; everything
   else draws from a seeded [Rng.t] and iterates hash tables through a
   sorted-keys helper such as [Stats.sorted_bindings]. *)

let forbidden (lid : Longident.t) =
  match Rule.strip_stdlib lid with
  | Longident.Ldot (Longident.Lident "Random", fn) ->
    Some
      (Fmt.str
         "Random.%s uses global, seed-uncontrolled randomness; draw from a \
          seeded Rng.t instead"
         fn)
  | Longident.Ldot (Longident.Lident "Sys", "time")
  | Longident.Ldot (Longident.Lident "Unix", ("gettimeofday" | "time")) ->
    Some
      "wall-clock time is nondeterministic; use simulated time (Sim.now) \
       instead"
  | Longident.Ldot (Longident.Lident "Hashtbl", (("iter" | "fold") as fn)) ->
    Some
      (Fmt.str
         "Hashtbl.%s visits bindings in unspecified order; iterate \
          sorted bindings (e.g. Stats.sorted_bindings) or justify with a \
          dblint allow comment"
         fn)
  | _ -> None

let check ctx structure =
  if ctx.Rule.nondet_allowlisted then []
  else begin
    let acc = ref [] in
    let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
        match forbidden txt with
        | Some msg ->
          acc :=
            Rule.violation ctx ~rule:"no-nondeterminism" ~loc msg :: !acc
        | None -> ())
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it structure;
    List.rev !acc
  end

let rule =
  {
    Rule.name = "no-nondeterminism";
    doc =
      "forbid Random.*, wall clocks and unordered Hashtbl iteration \
       outside lib/sim/rng.ml and bench/";
    check;
  }
