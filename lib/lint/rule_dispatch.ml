(* exhaustive-dispatch: in the protocol kernels, a [match] over [Msg.t]
   (or its payload types) with a wildcard arm silently swallows every
   message constructor added later — PR 1's Add_child-relay crash was a
   mishandled message hiding behind exactly such an arm.  Enumerating the
   constructors turns "new message kind" into a compile-time exhaustiveness
   event instead of a run-time [Fmt.failwith] (or worse, a silent drop). *)

(* The whole arm is a catch-all: [_], possibly aliased, constrained, or a
   branch of an or-pattern.  Wildcards nested inside constructors
   ([Some _]) are fine. *)
let rec is_catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> is_catch_all p
  | Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

let pattern_mentions_msg p =
  let found = ref false in
  let pat (it : Ast_iterator.iterator) (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _) when Rule.mentions_module txt "Msg" ->
      found := true
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.pat it p;
  !found

let expr_mentions_msg e =
  let found = ref false in
  let check_lid (lid : Longident.t) =
    if Rule.mentions_module lid "Msg" then found := true
  in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ }
    | Pexp_construct ({ txt; _ }, _)
    | Pexp_field (_, { txt; _ }) ->
      check_lid txt
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let typ (it : Ast_iterator.iterator) (t : Parsetree.core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> check_lid txt
    | _ -> ());
    Ast_iterator.default_iterator.typ it t
  in
  let it = { Ast_iterator.default_iterator with expr; typ } in
  it.expr it e;
  !found

let check_cases ctx acc scrutinee (cases : Parsetree.case list) =
  let about_msg =
    List.exists (fun c -> pattern_mentions_msg c.Parsetree.pc_lhs) cases
    || match scrutinee with Some e -> expr_mentions_msg e | None -> false
  in
  if about_msg then
    List.iter
      (fun (c : Parsetree.case) ->
        if c.pc_guard = None && is_catch_all c.pc_lhs then
          acc :=
            Rule.violation ctx ~rule:"exhaustive-dispatch"
              ~loc:c.pc_lhs.ppat_loc
              "wildcard arm in a Msg dispatch: enumerate the remaining \
               constructors so new message kinds fail at compile time"
            :: !acc)
      cases

let check ctx structure =
  if not ctx.Rule.protocol then []
  else begin
    let acc = ref [] in
    let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_match (scrutinee, cases) ->
        check_cases ctx acc (Some scrutinee) cases
      | Pexp_function cases -> check_cases ctx acc None cases
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.structure it structure;
    List.rev !acc
  end

let rule =
  {
    Rule.name = "exhaustive-dispatch";
    doc =
      "no wildcard arms in Msg matches inside the protocol kernels \
       (fixed/variable/mobile/cluster)";
    check;
  }
