(** Suppression comments.

    [(* dblint: allow <rule> [<rule>...] -- justification *)] silences the
    named rules on the comment's own line and the line below it, so it can
    be written trailing the flagged expression or on its own line above.
    [(* dblint: allow-file <rule> *)] anywhere in a file silences the rule
    for the whole file.  Scanning is textual (line-based): the marker is
    recognised wherever it appears, including inside string literals. *)

type t

val scan : string -> t
(** Collect the suppressions of one file's source text. *)

val active : t -> rule:string -> line:int -> bool
(** Is [rule] suppressed for a violation reported at [line]? *)
