(** Suppression comments.

    [(* dblint: allow <rule> [<rule>...] -- justification *)] silences the
    named rules on the comment's own line and the line below it, so it can
    be written trailing the flagged expression or on its own line above.
    [(* dblint: allow-file <rule> *)] anywhere in a file silences the rule
    for the whole file.  Scanning is textual (line-based): the marker is
    recognised wherever it appears, including inside string literals.

    The [dblint] marker is the default; dbflow reuses the same mechanics
    under its own marker via [~tool:"dbflow"], so the two tools'
    suppressions never shadow each other. *)

type t

val scan : ?tool:string -> ?known:string list -> string -> t
(** Collect the suppressions of one file's source text.  [tool] is the
    comment marker prefix (default ["dblint"]).  When [known] is given,
    every rule-shaped token naming a rule outside that list is recorded
    (see {!unknown_rules}) — a typoed allow comment must warn, not
    silently fail to suppress. *)

val active : t -> rule:string -> line:int -> bool
(** Is [rule] suppressed for a violation reported at [line]? *)

val unknown_rules : t -> (int * string) list
(** [(line, token)] for each allow-comment token that named no known
    rule; empty when [scan] ran without [known]. *)
