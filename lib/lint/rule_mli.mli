(** mli-coverage: flag [.ml] files under a [lib/] path that have no
    sibling [.mli].  Interfaces document the protocol contracts and keep
    module surfaces deliberate; executables are exempt. *)

val rule : Rule.t
