let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* SARIF artifact URIs are relative paths with forward slashes. *)
let uri_of_file file =
  String.map (fun c -> if c = '\\' then '/' else c) file

let pp_rule ppf (name, doc) =
  Fmt.pf ppf
    {|{"id":"%s","shortDescription":{"text":"%s"},"defaultConfiguration":{"level":"error"}}|}
    (json_escape name) (json_escape doc)

let pp_result ppf (v : Rule.violation) =
  (* SARIF regions are 1-based in both coordinates; our columns are
     0-based (compiler convention), so shift. *)
  Fmt.pf ppf
    {|{"ruleId":"%s","level":"error","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (json_escape v.rule) (json_escape v.message)
    (json_escape (uri_of_file v.file))
    v.line (v.col + 1)

let pp ppf ~tool ~rules violations =
  Fmt.pf ppf
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"%s","informationUri":"https://example.invalid/dbtree","rules":[%a]}},"results":[%a]}]}@.|}
    (json_escape tool)
    (Fmt.list ~sep:(Fmt.any ",") pp_rule)
    rules
    (Fmt.list ~sep:(Fmt.any ",") pp_result)
    violations
