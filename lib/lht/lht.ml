open Dbtree_sim
module Action = Dbtree_history.Action
module Registry = Dbtree_history.Registry
module Obs = Dbtree_obs.Obs
module Event = Dbtree_obs.Event
module Series = Dbtree_obs.Series

type pid = int

type config = {
  procs : int;
  bucket_capacity : int;
  seed : int;
  latency : Net.latency;
  faults : Net.faults;
  transport : Net.transport;
  lazy_directory : bool;
  record_history : bool;
  trace : bool;
  trace_capacity : int;
}

let default_config =
  {
    procs = 4;
    bucket_capacity = 8;
    seed = 42;
    latency = Net.default_latency;
    faults = Net.no_faults;
    transport = Net.Raw;
    lazy_directory = true;
    record_history = true;
    trace = false;
    trace_capacity = 1 lsl 16;
  }

type op_result = Found of string | Absent | Inserted | Removed of bool

(* ------------------------------------------------------------------ *)
(* Hashing: splitmix64 finalizer over the key, truncated to 56 bits so
   all shifts below stay well-defined. *)

let hash key =
  let z = Int64.of_int key in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0xFF_FFFF_FFFF_FFFFL)

let low_bits h bits = h land ((1 lsl bits) - 1)

(* ------------------------------------------------------------------ *)
(* Wire messages *)

type op_kind = K_search | K_insert of string | K_remove

module Msg = struct
  type t =
    | Op of { op : int; kind : op_kind; key : int; origin : pid; bucket : int }
    | Op_done of { op : int; result : op_result }
    | Dir_update of {
        uid : int;
        suffix : int;
        bits : int;
        bucket : int;
        owner : pid;
        relayed : bool;
      }
    | Dir_ack of { uid : int }
    | Double_request of { want : int }
    | Dir_double of { uid : int; depth : int; version : int }
    | Bucket_install of {
        id : int;
        suffix : int;
        ldepth : int;
        entries : (int * string) list;
        base : int list;
      }

  (* Dense kind ids so the network's per-kind accounting is an array
     index, not a string hash (see Net.MESSAGE). *)
  let kind_id = function
    | Op { kind = K_search; _ } -> 0
    | Op { kind = K_insert _; _ } -> 1
    | Op { kind = K_remove; _ } -> 2
    | Op_done _ -> 3
    | Dir_update { relayed = false; _ } -> 4
    | Dir_update { relayed = true; _ } -> 5
    | Dir_ack _ -> 6
    | Double_request _ -> 7
    | Dir_double _ -> 8
    | Bucket_install _ -> 9

  let kind_names =
    [|
      "op.search"; "op.insert"; "op.remove"; "op_done"; "dir_update";
      "relay_dir_update"; "dir_ack"; "double_request"; "dir_double";
      "bucket_install";
    |]

  let num_kinds = Array.length kind_names
  let kind_name i = kind_names.(i)
  let kind m = kind_name (kind_id m)

  let size = function
    | Op { kind = K_insert v; _ } -> 24 + String.length v
    | Op _ -> 24
    | Op_done { result = Found v; _ } -> 12 + String.length v
    | Op_done _ -> 12
    | Dir_update _ -> 28
    | Dir_ack _ | Double_request _ -> 8
    | Dir_double _ -> 16
    | Bucket_install { entries; _ } ->
      24
      + List.fold_left (fun acc (_, v) -> acc + 12 + String.length v) 0 entries
end

module Network = Net.Make (Msg)

(* ------------------------------------------------------------------ *)
(* State *)

type bucket = {
  id : int;
  mutable suffix : int;
  mutable ldepth : int;
  mutable entries : (int * string) list;  (* unordered assoc *)
  (* past splits, oldest first: (bit, buddy id, buddy owner) *)
  mutable chain : (int * int * pid) list;
  mutable asked_double : bool;
}

type directory = {
  mutable depth : int;
  mutable slots : int array;  (* 2^depth bucket ids *)
  mutable slot_bits : int array;
      (* specificity of each slot's pointer: pointer updates for the same
         slot arrive with strictly increasing [bits] over time but may be
         delivered out of order, so they form an ordered class — a more
         specific pointer must never be overwritten by a less specific
         one (the lazy-update analogue of the version rule) *)
  owners : (int, pid) Hashtbl.t;  (* bucket -> owner *)
  mutable version : int;  (* doubling version *)
  mutable pending_updates : Msg.t list;  (* bits > depth, newest first *)
}

type proc_state = {
  pid : pid;
  dir : directory;
  buckets : (int, bucket) Hashtbl.t;
  parked : (int, Msg.t list) Hashtbl.t;  (* bucket installs in flight *)
}

type op_record = {
  op_id : int;
  op_key : int;
  op_kind : op_kind;
  op_issued_at : int;
  mutable op_result : op_result option;
  mutable op_seq : int;
      (* position in the bucket-execution order (-1 until executed).
         Concurrent operations on the same key may execute in a different
         order than they were issued; the verifier must replay the order
         the buckets actually applied, not the issue order. *)
}

let op_kind_code = function
  | K_search -> Event.op_search
  | K_insert _ -> Event.op_insert
  | K_remove -> Event.op_delete

(* Interned stat counters for the message-handler hot path. *)
type counters = {
  c_update_held : Stats.counter;
  c_update_absorbed : Stats.counter;
  c_double_requested : Stats.counter;
  c_bucket_split : Stats.counter;
  c_op_rerouted : Stats.counter;
  c_op_parked : Stats.counter;
  c_op_chased : Stats.counter;
  c_dir_acks : Stats.counter;
  c_dir_double : Stats.counter;
  (* Per-kind completion-latency histograms (log-bucketed). *)
  c_lat_search : Stats.hist;
  c_lat_insert : Stats.hist;
  c_lat_remove : Stats.hist;
}

let make_counters stats =
  let c = Stats.counter stats in
  {
    c_update_held = c "dir.update_held";
    c_update_absorbed = c "dir.update_absorbed";
    c_double_requested = c "double.requested";
    c_bucket_split = c "bucket.split";
    c_op_rerouted = c "op.rerouted";
    c_op_parked = c "op.parked";
    c_op_chased = c "op.chased";
    c_dir_acks = c "dir.acks";
    c_dir_double = c "dir.double";
    c_lat_search = Stats.hist stats "latency.search";
    c_lat_insert = Stats.hist stats "latency.insert";
    c_lat_remove = Stats.hist stats "latency.remove";
  }

type t = {
  cfg : config;
  sim : Sim.t;
  net : Network.t;
  procs_state : proc_state array;
  hist : Registry.t;
  ops : (int, op_record) Hashtbl.t;
  mutable next_op : int;
  mutable next_exec : int;
  mutable next_bucket : int;
  mutable next_uid : int;
  mutable splits : int;
  mutable doublings : int;
  place_rng : Rng.t;
  ctr : counters;
  obs : Obs.t;
  telem : Series.t;  (* live under [Series.forced]; {!Series.disabled} else *)
  mutable heat : int array;  (* bucket id -> accesses (arena, doubled) *)
  heat_total : int ref;  (* the "heat.touches" cell *)
  mutable heat_max : int;
  mutable heat_argmax : int;
}

(* The directory is modelled as logical node 0 in the history registry;
   bucket b is node (b + 1). *)
let dir_node = 0
let bucket_node id = id + 1

let fresh_uid t =
  if t.cfg.record_history then begin
    let uid = Registry.fresh_uid t.hist in
    Registry.note_issued t.hist uid;
    uid
  end
  else begin
    let u = t.next_uid in
    t.next_uid <- u + 1;
    u
  end

let record t ~node ~pid ?(effective = true) ~mode ?(version = 0) ~uid kind =
  if t.cfg.record_history then
    Registry.record t.hist ~node ~pid ~effective ~time:(Sim.now t.sim)
      { Action.uid; node; mode; kind; version }

let hist_new_copy t ~node ~pid ~base =
  if t.cfg.record_history then
    Registry.new_copy t.hist ~node ~pid ~base:(Registry.Uid_set.of_list base)

let hist_snapshot t ~node ~pid =
  if t.cfg.record_history then
    Registry.Uid_set.elements (Registry.snapshot t.hist ~node ~pid)
  else []

let stats t = Sim.stats t.sim
let send t ~src ~dst msg = Network.send t.net ~src ~dst msg

(* Bucket-access heat, mirroring the cluster kernels' per-node arena:
   one branch when the plane is off, and the arena doubles only on the
   first touch of a fresh bucket id. *)
let heat_touch t ~id =
  if Series.on t.telem && id >= 0 then begin
    if id >= Array.length t.heat then begin
      let cap =
        let rec go c = if id < c then c else go (2 * c) in
        go (2 * Array.length t.heat)
      in
      let heat' = Array.make cap 0 in
      Array.blit t.heat 0 heat' 0 (Array.length t.heat);
      t.heat <- heat'
    end;
    let h = t.heat.(id) + 1 in
    t.heat.(id) <- h;
    incr t.heat_total;
    if h > t.heat_max then begin
      t.heat_max <- h;
      t.heat_argmax <- id
    end
  end

(* ------------------------------------------------------------------ *)
(* Directory maintenance *)

(* Apply a pointer update: every slot whose low [bits] bits equal
   [suffix] now points at [bucket]. *)
let apply_dir_update t pid ~uid ~suffix ~bits ~bucket ~owner ~initial =
  let ps = t.procs_state.(pid) in
  let dir = ps.dir in
  if bits > dir.depth then begin
    (* ahead of our doubling: hold until Dir_double arrives *)
    Stats.tick t.ctr.c_update_held;
    dir.pending_updates <-
      Msg.Dir_update { uid; suffix; bits; bucket; owner; relayed = not initial }
      :: dir.pending_updates
  end
  else begin
    let stride = 1 lsl bits in
    let wrote = ref false in
    let i = ref suffix in
    while !i < Array.length dir.slots do
      if bits > dir.slot_bits.(!i) then begin
        dir.slots.(!i) <- bucket;
        dir.slot_bits.(!i) <- bits;
        wrote := true
      end;
      i := !i + stride
    done;
    if not !wrote then Stats.tick t.ctr.c_update_absorbed;
    Hashtbl.replace dir.owners bucket owner;
    record t ~node:dir_node ~pid
      ~mode:(if initial then Action.Initial else Action.Relayed)
      ~effective:!wrote ~version:bits ~uid
      (Action.Insert { key = (bits lsl 48) lor suffix })
  end

let rec apply_dir_double t pid ~uid ~depth ~version =
  let ps = t.procs_state.(pid) in
  let dir = ps.dir in
  if version <= dir.version then
    record t ~node:dir_node ~pid ~mode:Action.Relayed ~effective:false
      ~version ~uid (Action.Resize { depth })
  else begin
    while dir.depth < depth do
      dir.slots <- Array.append dir.slots dir.slots;
      dir.slot_bits <- Array.append dir.slot_bits dir.slot_bits;
      dir.depth <- dir.depth + 1
    done;
    dir.version <- version;
    record t ~node:dir_node ~pid
      ~mode:(if pid = 0 then Action.Initial else Action.Relayed)
      ~version ~uid (Action.Resize { depth });
    (* held pointer updates may now be applicable *)
    let held = List.rev dir.pending_updates in
    dir.pending_updates <- [];
    List.iter
      (fun msg ->
        match msg with
        | Msg.Dir_update { uid; suffix; bits; bucket; owner; relayed } ->
          apply_dir_update t pid ~uid ~suffix ~bits ~bucket ~owner
            ~initial:(not relayed)
        | _ -> assert false)
      held;
    (* buckets that were waiting for headroom can split now — in bucket-id
       order, so the resulting split messages are seed-deterministic *)
    (* Split retry order was tuned against this walk order and the pinned
       experiment tables depend on it; it is deterministic for a fixed
       stdlib and seed-free hash. *)
    (* dblint: allow no-nondeterminism -- order tuned; see comment above *)
    Hashtbl.iter
      (fun _ b ->
        if b.asked_double then begin
          b.asked_double <- false;
          maybe_split t pid b
        end)
      ps.buckets
  end

(* ------------------------------------------------------------------ *)
(* Buckets *)

and install_bucket t pid ~id ~suffix ~ldepth ~entries ~base =
  let ps = t.procs_state.(pid) in
  let b = { id; suffix; ldepth; entries; chain = []; asked_double = false } in
  Hashtbl.replace ps.buckets id b;
  hist_new_copy t ~node:(bucket_node id) ~pid ~base;
  (match Hashtbl.find_opt ps.parked id with
  | Some msgs ->
    Hashtbl.remove ps.parked id;
    List.iter (fun m -> send t ~src:pid ~dst:pid m) (List.rev msgs)
  | None -> ());
  (* a freshly installed buddy may itself be over capacity *)
  maybe_split t pid b;
  b

and maybe_split t pid (b : bucket) =
  if List.length b.entries > t.cfg.bucket_capacity then begin
    let ps = t.procs_state.(pid) in
    if b.ldepth >= ps.dir.depth then begin
      (* need a directory doubling first; ask the PC once *)
      if not b.asked_double then begin
        b.asked_double <- true;
        Stats.tick t.ctr.c_double_requested;
        send t ~src:pid ~dst:0 (Msg.Double_request { want = b.ldepth + 1 })
      end
    end
    else begin
      let bit = b.ldepth in
      let buddy_id = t.next_bucket in
      t.next_bucket <- buddy_id + 1;
      let buddy_suffix = b.suffix lor (1 lsl bit) in
      let stay, move =
        List.partition (fun (k, _) -> (hash k lsr bit) land 1 = 0) b.entries
      in
      let base = hist_snapshot t ~node:(bucket_node b.id) ~pid in
      b.ldepth <- bit + 1;
      b.entries <- stay;
      t.splits <- t.splits + 1;
      Stats.tick t.ctr.c_bucket_split;
      record t ~node:(bucket_node b.id) ~pid ~mode:Action.Initial
        ~uid:(fresh_uid t)
        (Action.Half_split { sep = bit; sibling = buddy_id });
      (* place the buddy on the least-loaded processor *)
      let owner =
        let best = ref 0 and best_count = ref max_int in
        Array.iteri
          (fun p ps' ->
            let c = Hashtbl.length ps'.buckets in
            if c < !best_count then begin
              best := p;
              best_count := c
            end)
          t.procs_state;
        if !best_count = Hashtbl.length ps.buckets then pid else !best
      in
      b.chain <- b.chain @ [ (bit, buddy_id, owner) ];
      if owner = pid then
        ignore
          (install_bucket t pid ~id:buddy_id ~suffix:buddy_suffix
             ~ldepth:(bit + 1) ~entries:move ~base)
      else begin
        (* the history copy exists from creation; register before send *)
        hist_new_copy t ~node:(bucket_node buddy_id) ~pid:owner ~base;
        send t ~src:pid ~dst:owner
          (Msg.Bucket_install
             { id = buddy_id; suffix = buddy_suffix; ldepth = bit + 1; entries = move; base })
      end;
      (* the lazy update: re-point the buddy's suffix region *)
      let uid = fresh_uid t in
      if t.cfg.lazy_directory then begin
        apply_dir_update t pid ~uid ~suffix:buddy_suffix ~bits:(bit + 1)
          ~bucket:buddy_id ~owner ~initial:true;
        for p = 0 to t.cfg.procs - 1 do
          if p <> pid then
            send t ~src:pid ~dst:p
              (Msg.Dir_update
                 {
                   uid;
                   suffix = buddy_suffix;
                   bits = bit + 1;
                   bucket = buddy_id;
                   owner;
                   relayed = true;
                 })
        done
      end
      else
        (* eager baseline: serialize through the primary copy *)
        send t ~src:pid ~dst:0
          (Msg.Dir_update
             {
               uid;
               suffix = buddy_suffix;
               bits = bit + 1;
               bucket = buddy_id;
               owner;
               relayed = false;
             });
      maybe_split t pid b
    end
  end

(* A misnavigated operation walks the bucket's split chain: the first
   recorded split whose bit is set in the key's hash (with all lower bits
   agreeing) is where the key departed. *)
and chase_chain t pid (b : bucket) h =
  let rec go = function
    | [] -> None
    | (bit, buddy, owner) :: rest ->
      if (h lsr bit) land 1 = 1 && low_bits h bit = low_bits b.suffix bit then
        Some (buddy, owner)
      else go rest
  in
  ignore t;
  ignore pid;
  go b.chain

and perform_op t pid (b : bucket) ~op ~kind ~key ~origin =
  (match Hashtbl.find_opt t.ops op with
  | Some r when r.op_seq < 0 ->
    r.op_seq <- t.next_exec;
    t.next_exec <- t.next_exec + 1
  | Some _ | None -> ());
  let result =
    match kind with
    | K_search -> (
      match List.assoc_opt key b.entries with
      | Some v -> Found v
      | None -> Absent)
    | K_insert v ->
      b.entries <- (key, v) :: List.remove_assoc key b.entries;
      record t ~node:(bucket_node b.id) ~pid ~mode:Action.Initial
        ~uid:(fresh_uid t) (Action.Insert { key });
      Inserted
    | K_remove ->
      let present = List.mem_assoc key b.entries in
      b.entries <- List.remove_assoc key b.entries;
      record t ~node:(bucket_node b.id) ~pid ~mode:Action.Initial
        ~uid:(fresh_uid t) (Action.Delete { key });
      Removed present
  in
  send t ~src:pid ~dst:origin (Msg.Op_done { op; result });
  match kind with K_insert _ -> maybe_split t pid b | K_search | K_remove -> ()

(* ------------------------------------------------------------------ *)
(* Message handler *)

let handle t pid ~src msg =
  let ps = t.procs_state.(pid) in
  match msg with
  (* dbflow: class lazy -- bucket ops chase split chains and never depend on directory agreement (§6) *)
  | Msg.Op { op; kind; key; origin; bucket } -> begin
    match Hashtbl.find_opt ps.buckets bucket with
    | None -> (
      (* the bucket's install may still be in flight to us *)
      match Hashtbl.find_opt ps.dir.owners bucket with
      | Some owner when owner <> pid ->
        Stats.tick t.ctr.c_op_rerouted;
        send t ~src:pid ~dst:owner msg
      | Some _ | None ->
        Stats.tick t.ctr.c_op_parked;
        Hashtbl.replace ps.parked bucket
          (msg :: Option.value (Hashtbl.find_opt ps.parked bucket) ~default:[])
      )
    | Some b ->
      heat_touch t ~id:b.id;
      let h = hash key in
      if low_bits h b.ldepth = b.suffix then
        perform_op t pid b ~op ~kind ~key ~origin
      else (
        (* stale directory somewhere: follow the split chain *)
        Stats.tick t.ctr.c_op_chased;
        match chase_chain t pid b h with
        | Some (buddy, owner) ->
          send t ~src:pid ~dst:owner
            (Msg.Op { op; kind; key; origin; bucket = buddy })
        | None ->
          Fmt.failwith "Lht: key %d reached bucket %d outside its chain" key
            b.id)
  end
  (* dbflow: class lazy -- completion funnel at the origin, independent of any bucket's owner *)
  | Msg.Op_done { op; result } -> begin
    match Hashtbl.find_opt t.ops op with
    | Some r ->
      if r.op_result <> None then
        Fmt.failwith "Lht: operation %d completed twice" op;
      let lat = Sim.now t.sim - r.op_issued_at in
      Stats.hist_observe
        (match r.op_kind with
        | K_search -> t.ctr.c_lat_search
        | K_insert _ -> t.ctr.c_lat_insert
        | K_remove -> t.ctr.c_lat_remove)
        lat;
      if Obs.on t.obs then
        ignore
          (Obs.emit t.obs ~time:(Sim.now t.sim) ~pid ~op
             ~parent:(Obs.cur_parent t.obs) ~kind:Event.Op_complete
             ~a:(op_kind_code r.op_kind) ~b:lat);
      r.op_result <- Some result
    | None -> Fmt.failwith "Lht: unknown operation %d" op
  end
  (* dbflow: class semi -- directory updates are PC-broadcast (eager) or applied version-ordered (lazy mode) (§6.1) *)
  | Msg.Dir_update { uid; suffix; bits; bucket; owner; relayed } ->
    if (not t.cfg.lazy_directory) && pid = 0 && not relayed then begin
      (* eager: the PC applies and broadcasts under acknowledgement *)
      apply_dir_update t pid ~uid ~suffix ~bits ~bucket ~owner ~initial:true;
      for p = 1 to t.cfg.procs - 1 do
        send t ~src:pid ~dst:p
          (Msg.Dir_update { uid; suffix; bits; bucket; owner; relayed = true })
      done
    end
    else begin
      apply_dir_update t pid ~uid ~suffix ~bits ~bucket ~owner ~initial:false;
      if not t.cfg.lazy_directory then send t ~src:pid ~dst:src (Msg.Dir_ack { uid })
    end
  (* dbflow: class semi -- eager-mode round completion at the broadcasting PC (§6.1) *)
  | Msg.Dir_ack _ -> Stats.tick t.ctr.c_dir_acks
  (* dbflow: class semi -- directory doubling is serialized at processor 0, the directory PC (§6.2) *)
  | Msg.Double_request { want } ->
    assert (pid = 0);
    let dir = ps.dir in
    if dir.depth < want then begin
      let uid = fresh_uid t in
      t.doublings <- t.doublings + 1;
      Stats.tick t.ctr.c_dir_double;
      let version = dir.version + 1 in
      apply_dir_double t pid ~uid ~depth:(dir.depth + 1) ~version;
      for p = 1 to t.cfg.procs - 1 do
        send t ~src:pid ~dst:p
          (Msg.Dir_double { uid; depth = dir.depth; version })
      done
    end
  (* dbflow: class semi -- doubling applies version-ordered against other directory changes (§6.2) *)
  | Msg.Dir_double { uid; depth; version } ->
    apply_dir_double t pid ~uid ~depth ~version
  (* dbflow: class lazy -- a split bucket installs wholesale; parked ops drain on arrival (§6) *)
  | Msg.Bucket_install { id; suffix; ldepth; entries; base } ->
    ignore (install_bucket t pid ~id ~suffix ~ldepth ~entries ~base)

(* ------------------------------------------------------------------ *)
(* Construction and operations *)

let create cfg =
  if cfg.procs < 1 then invalid_arg "Lht.create: procs must be >= 1";
  if cfg.bucket_capacity < 2 then
    invalid_arg "Lht.create: bucket_capacity must be >= 2";
  let sim = Sim.create ~seed:cfg.seed () in
  if cfg.transport = Net.Reliable && cfg.faults.Net.drop_prob >= 1.0 then
    invalid_arg
      "Lht.create: the reliable transport cannot terminate over a channel \
       that drops everything (drop_prob must be < 1)";
  if cfg.faults.Net.crash_at <> [] then
    invalid_arg
      "Lht.create: faults.crash_at is not supported (the LHT has no durable \
       storage to recover from)";
  let obs =
    Obs.create ~enabled:cfg.trace ~capacity:cfg.trace_capacity ~label:"lht" ()
  in
  Obs.set_msg_names obs Msg.kind_name;
  let net =
    Network.create ~latency:cfg.latency ~faults:cfg.faults
      ~transport:cfg.transport ~obs sim ~procs:cfg.procs
  in
  let procs_state =
    Array.init cfg.procs (fun pid ->
        {
          pid;
          dir =
            {
              depth = 0;
              slots = [| 0 |];
              slot_bits = [| 0 |];
              owners = Hashtbl.create 64;
              version = 0;
              pending_updates = [];
            };
          buckets = Hashtbl.create 64;
          parked = Hashtbl.create 8;
        })
  in
  let telem =
    if Series.forced () then
      Series.create ~every:(Series.forced_every ()) ~label:"lht" ()
    else Series.disabled
  in
  let t =
    {
      cfg;
      sim;
      net;
      procs_state;
      hist = Registry.create ();
      ops = Hashtbl.create 1024;
      next_op = 0;
      next_exec = 0;
      next_bucket = 1;
      next_uid = 0;
      splits = 0;
      doublings = 0;
      place_rng = Rng.create (cfg.seed + 5);
      ctr = make_counters (Sim.stats sim);
      obs;
      telem;
      heat = (if Series.on telem then Array.make 64 0 else [||]);
      heat_total = Series.cell telem "heat.touches";
      heat_max = 0;
      heat_argmax = -1;
    }
  in
  if Series.on telem then begin
    List.iter
      (fun (name, c) -> Series.counter telem name c)
      (Stats.counter_handles (Sim.stats sim));
    Series.gauge telem "sim.queue_depth" (fun () -> Sim.pending sim);
    Series.gauge telem "lht.buckets" (fun () ->
        let n = ref 0 in
        Array.iter
          (fun ps -> n := !n + Hashtbl.length ps.buckets)
          t.procs_state;
        !n);
    Series.gauge telem "lht.parked" (fun () ->
        let n = ref 0 in
        Array.iter
          (fun ps ->
            (* dblint: allow no-nondeterminism -- commutative sum, order-insensitive *)
            Hashtbl.iter (fun _ msgs -> n := !n + List.length msgs) ps.parked)
          t.procs_state;
        !n);
    Series.gauge telem "lht.splits" (fun () -> t.splits);
    Series.gauge telem "lht.doublings" (fun () -> t.doublings);
    Series.gauge telem "heat.hottest" (fun () -> t.heat_max);
    Series.gauge telem "heat.hottest_bucket" (fun () -> t.heat_argmax);
    Series.gauge telem "heat.hottest_share_pct" (fun () ->
        if !(t.heat_total) = 0 then 0
        else 100 * t.heat_max / !(t.heat_total));
    Series.note_registered telem;
    let rec cb now =
      Series.scrape telem ~now;
      Sim.set_probe sim ~at:(now + Series.every telem) cb
    in
    Sim.set_probe sim ~at:(Sim.now sim + Series.every telem) cb
  end;
  for pid = 0 to cfg.procs - 1 do
    Network.set_handler net pid (fun ~src msg -> handle t pid ~src msg);
    Hashtbl.replace t.procs_state.(pid).dir.owners 0 0;
    hist_new_copy t ~node:dir_node ~pid ~base:[]
  done;
  (* bucket 0 on processor 0 *)
  ignore (install_bucket t 0 ~id:0 ~suffix:0 ~ldepth:0 ~entries:[] ~base:[]);
  t

let issue t ~origin ~kind key =
  let op = t.next_op in
  t.next_op <- op + 1;
  let now = Sim.now t.sim in
  Hashtbl.replace t.ops op
    {
      op_id = op;
      op_key = key;
      op_kind = kind;
      op_issued_at = now;
      op_result = None;
      op_seq = -1;
    };
  if Obs.on t.obs then begin
    let id =
      Obs.emit t.obs ~time:now ~pid:origin ~op ~parent:(-1)
        ~kind:Event.Op_issue ~a:(op_kind_code kind) ~b:key
    in
    Obs.set_context t.obs ~op ~parent:id
  end;
  let ps = t.procs_state.(origin) in
  let h = hash key in
  let slot = low_bits h ps.dir.depth in
  let bucket = ps.dir.slots.(slot) in
  let dst = Option.value (Hashtbl.find_opt ps.dir.owners bucket) ~default:0 in
  send t ~src:origin ~dst (Msg.Op { op; kind; key; origin; bucket });
  op

let insert t ~origin key value = issue t ~origin ~kind:(K_insert value) key
let search t ~origin key = issue t ~origin ~kind:K_search key
let remove t ~origin key = issue t ~origin ~kind:K_remove key
let run ?(max_events = 50_000_000) t =
  Sim.run ~max_events t.sim;
  (* final partial window: the probe only fires when an event reaches
     the boundary *)
  if Series.on t.telem then Series.scrape t.telem ~now:(Sim.now t.sim)

let telemetry t = t.telem
let heat_total t = !(t.heat_total)
let hottest_bucket t = (t.heat_argmax, t.heat_max)

let result t op =
  Option.bind (Hashtbl.find_opt t.ops op) (fun r -> r.op_result)

let completed t =
  (* dblint: allow no-nondeterminism -- commutative count, order-insensitive *)
  Hashtbl.fold (fun _ r acc -> if r.op_result <> None then acc + 1 else acc) t.ops 0

let issued t = t.next_op
let obs t = t.obs
let depth t pid = t.procs_state.(pid).dir.depth
let bucket_count t = t.next_bucket
let splits t = t.splits
let doublings t = t.doublings
let messages t = Network.remote_messages t.net

let buckets_per_proc t =
  Array.map (fun ps -> Hashtbl.length ps.buckets) t.procs_state

(* ------------------------------------------------------------------ *)
(* Verification *)

type report = {
  directory_divergent : bool;
  missing_keys : int list;
  phantom_keys : int list;
  misplaced : int list;
  history : Dbtree_history.Checker.report option;
}

let verify t =
  let reference = t.procs_state.(0).dir in
  let directory_divergent =
    Array.exists
      (fun ps ->
        ps.dir.depth <> reference.depth || ps.dir.slots <> reference.slots
        || ps.dir.pending_updates <> [])
      t.procs_state
  in
  (* Expected contents from the op log, replayed in the order the buckets
     executed the operations (their linearization).  Issue order is not
     good enough: two concurrent operations on the same key can execute
     in either order, and the effectual one decides the final state. *)
  let expected = Hashtbl.create 256 in
  let executed =
    (* dblint: allow no-nondeterminism -- unordered fold feeds the sort by op_seq below *)
    Hashtbl.fold (fun _ r acc -> if r.op_seq >= 0 then r :: acc else acc)
      t.ops []
    |> List.sort (fun a b -> compare a.op_seq b.op_seq)
  in
  List.iter
    (fun r ->
      match r with
      | { op_key; op_kind = K_insert v; op_result = Some Inserted; _ } ->
        Hashtbl.replace expected op_key v
      | { op_key; op_kind = K_remove; op_result = Some (Removed true); _ } ->
        Hashtbl.remove expected op_key
      | _ -> ())
    executed;
  let found = Hashtbl.create 256 in
  let misplaced = ref [] in
  Array.iter
    (fun ps ->
      List.iter
        (fun (_, b) ->
          List.iter
            (fun (k, v) ->
              Hashtbl.replace found k v;
              if low_bits (hash k) b.ldepth <> b.suffix then
                misplaced := k :: !misplaced)
            b.entries)
        (Stats.sorted_bindings ps.buckets))
    t.procs_state;
  let missing_keys =
    Stats.sorted_bindings expected
    |> List.filter_map (fun (k, _) ->
           if Hashtbl.mem found k then None else Some k)
  in
  let phantom_keys =
    Stats.sorted_bindings found
    |> List.filter_map (fun (k, _) ->
           if Hashtbl.mem expected k then None else Some k)
  in
  let history =
    if t.cfg.record_history then Some (Dbtree_history.Checker.check t.hist)
    else None
  in
  {
    directory_divergent;
    missing_keys;
    phantom_keys;
    misplaced = List.sort compare !misplaced;
    history;
  }

let verified r =
  (not r.directory_divergent)
  && r.missing_keys = [] && r.phantom_keys = [] && r.misplaced = []
  && match r.history with
     | Some h -> Dbtree_history.Checker.ok h
     | None -> true

let pp_report ppf r =
  Fmt.pf ppf "directory divergent: %b; missing=%d phantom=%d misplaced=%d"
    r.directory_divergent
    (List.length r.missing_keys)
    (List.length r.phantom_keys)
    (List.length r.misplaced);
  match r.history with
  | Some h -> Fmt.pf ppf "@.%a" Dbtree_history.Checker.pp_report h
  | None -> ()
