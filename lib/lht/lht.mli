(** A distributed extendible hash table maintained by lazy updates.

    The paper's §5 names hash tables as the next target for the lazy-update
    technique ("We will apply lazy updates to other distributed data
    structures, such as hash tables", citing Ellis [5]).  This module
    carries the programme out, mapping each dB-tree ingredient onto an
    extendible hash table:

    - the {b directory} (the 2^depth bucket-pointer array) plays the role
      of the replicated interior nodes: every processor holds a copy;
    - {b buckets} play the role of leaves: single-copy, spread across
      processors;
    - a {b bucket split} updates the directory ("suffix s·1 now points to
      the new buddy").  Updates for disjoint suffix regions commute
      outright (lazy updates); successive splits along one lineage nest,
      and the nested, more-specific pointer must win regardless of
      delivery order — so pointer updates form an {e ordered class} keyed
      by their bit-count, resolved per slot exactly like the paper's
      version-numbered link-changes (semi-synchronous updates; no
      blocking, no AAS);
    - {b directory doubling} is the one non-commuting action (the
      analogue of the half-split): it is serialized through a primary
      copy (processor 0) and ordered by a version number, exactly the
      semi-synchronous treatment of §4.1.2;
    - a {b misnavigated operation} (stale directory copy) recovers the
      B-link way: each bucket remembers the buddy links of its past
      splits and forwards the action along the split chain.

    The eager ablation ([lazy_directory = false]) routes every directory
    update through the primary copy under an acknowledgement barrier —
    the available-copies baseline — for the E13 comparison.

    Keys are hashed with splitmix64, so any [int] key distribution works. *)

type pid = int

type config = {
  procs : int;
  bucket_capacity : int;  (** max entries before a bucket must split *)
  seed : int;
  latency : Dbtree_sim.Net.latency;
  faults : Dbtree_sim.Net.faults;  (** frame-level fault injection (E14) *)
  transport : Dbtree_sim.Net.transport;
      (** [Raw] (paper's assumed network) or [Reliable] (the
          seqno/ack/retransmit sublayer masking the injected faults) *)
  lazy_directory : bool;  (** false = eager (PC-serialized, acked) updates *)
  record_history : bool;
  trace : bool;
      (** record a typed causal event trace (see [Dbtree_obs]); off costs
          one branch per would-be event *)
  trace_capacity : int;  (** trace ring-buffer size, in events *)
}

val default_config : config
(** 4 processors, capacity 8, lazy directory, histories recorded. *)

type t

val create : config -> t
(** One empty bucket (depth 0) on processor 0; directory of size 1
    replicated everywhere. *)

type op_result = Found of string | Absent | Inserted | Removed of bool

val insert : t -> origin:pid -> int -> string -> int
(** Asynchronous upsert; returns the operation id. *)

val search : t -> origin:pid -> int -> int
val remove : t -> origin:pid -> int -> int

val run : ?max_events:int -> t -> unit
(** Drain the simulated cluster to quiescence. *)

val result : t -> int -> op_result option
(** Completed operation's outcome, if it has completed. *)

val completed : t -> int
val issued : t -> int

val obs : t -> Dbtree_obs.Obs.t
(** The table's trace recorder (disabled unless [config.trace]). *)

val telemetry : t -> Dbtree_obs.Series.t
(** The table's time-series registry.  Live only under the
    {!Dbtree_obs.Series.force_enable} switch (there is no per-config
    flag for the LHT); {!Dbtree_obs.Series.disabled} otherwise.  When
    live it scrapes every interned counter plus bucket-population,
    parked-op, and bucket-heat gauges on the simulator's probe, and a
    final partial window at the end of {!run}. *)

val heat_total : t -> int
(** Total bucket accesses recorded by the heat arena (0 when telemetry
    is off). *)

val hottest_bucket : t -> int * int
(** [(bucket id, accesses)] of the most-touched bucket; [(-1, 0)] when
    telemetry is off or nothing has been touched. *)

(** {2 Introspection} *)

val depth : t -> pid -> int
(** Global depth as seen by a processor's directory copy. *)

val bucket_count : t -> int
val buckets_per_proc : t -> int array
val splits : t -> int
val doublings : t -> int
val messages : t -> int
val stats : t -> Dbtree_sim.Stats.t

(** {2 Verification} *)

type report = {
  directory_divergent : bool;
      (** copies of the directory differ at quiescence *)
  missing_keys : int list;  (** inserted but unreachable *)
  phantom_keys : int list;
  misplaced : int list;  (** keys stored in a bucket not covering them *)
  history : Dbtree_history.Checker.report option;
}

val verify : t -> report
val verified : report -> bool
val pp_report : report Fmt.t
