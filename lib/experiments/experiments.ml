type t = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> unit;
}

let all =
  [
    { id = E01_half_split.id; title = E01_half_split.title; run = E01_half_split.run };
    {
      id = E02_replication_policy.id;
      title = E02_replication_policy.title;
      run = E02_replication_policy.run;
    };
    {
      id = E03_concurrent_inserts.id;
      title = E03_concurrent_inserts.title;
      run = E03_concurrent_inserts.run;
    };
    { id = E04_lost_insert.id; title = E04_lost_insert.title; run = E04_lost_insert.run };
    { id = E05_split_cost.id; title = E05_split_cost.title; run = E05_split_cost.run };
    { id = E06_join_catchup.id; title = E06_join_catchup.title; run = E06_join_catchup.run };
    {
      id = E07_root_bottleneck.id;
      title = E07_root_bottleneck.title;
      run = E07_root_bottleneck.run;
    };
    { id = E08_lazy_vs_eager.id; title = E08_lazy_vs_eager.title; run = E08_lazy_vs_eager.run };
    { id = E09_piggyback.id; title = E09_piggyback.title; run = E09_piggyback.run };
    {
      id = E10_data_balancing.id;
      title = E10_data_balancing.title;
      run = E10_data_balancing.run;
    };
    { id = E11_never_merge.id; title = E11_never_merge.title; run = E11_never_merge.run };
    { id = E12_ordered_links.id; title = E12_ordered_links.title; run = E12_ordered_links.run };
    { id = E13_hash_table.id; title = E13_hash_table.title; run = E13_hash_table.run };
    {
      id = E14_network_faults.id;
      title = E14_network_faults.title;
      run = E14_network_faults.run;
    };
    { id = E15_tree_vs_hash.id; title = E15_tree_vs_hash.title; run = E15_tree_vs_hash.run };
    { id = E16_reclamation.id; title = E16_reclamation.title; run = E16_reclamation.run };
    { id = E17_scale.id; title = E17_scale.title; run = E17_scale.run };
    { id = E18_recovery.id; title = E18_recovery.title; run = E18_recovery.run };
    { id = E19_telemetry.id; title = E19_telemetry.title; run = E19_telemetry.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?quick () =
  List.iter
    (fun e ->
      Fmt.pr "@.########## %s: %s ##########@." (String.uppercase_ascii e.id)
        e.title;
      e.run ?quick ())
    all
