(* E18 — durable per-processor storage and crash/restart recovery.
   Each processor journals its store mutations and reliable-channel
   bookkeeping to a write-ahead log (lib/dbtree/wal.ml); a crash drops
   every volatile structure, and the restart replays snapshot + tail,
   re-arms the network state from the journal, and re-confirms its copies
   through the §4.3 join path.  The experiment sweeps kernels × crash
   schedules × message loss and audits the one property durability is
   for: no acknowledged update is ever lost.  The 'lost acked' column is
   |completed-insert keys ∩ audit missing keys| and must be 0 in every
   cell; crash rows additionally report the replay/rejoin work done and
   the journal's footprint. *)
open Dbtree_core

let id = "e18"
let title = "Crash/restart recovery (WAL replay + rejoin, lost-ack audit)"

let kernels = [ "fixed-semi"; "fixed-naive"; "variable" ]

(* (drop, duplicate) probability pairs layered under the crash schedule:
   recovery must hold with and without an independently lossy network. *)
let loss_sweep = [ (0.0, 0.0); (0.05, 0.02) ]

let config ?(trace = false) ~kernel ~faults ~seed () =
  let discipline =
    match kernel with
    | "fixed-naive" -> Config.Naive
    | _ -> Config.Semi
  in
  let balance_period = if kernel = "variable" then 400 else 0 in
  Config.make ~procs:4 ~capacity:4 ~key_space:200_000 ~seed
    ~transport:Dbtree_sim.Net.Reliable ~discipline
    ~durability:{ Config.wal = true; snapshot_every = 128 }
    ~balance_period ~trace ~faults ()

let run_kernel ~kernel cfg ~count =
  match kernel with
  | "variable" -> snd (Common.run_variable ~count cfg)
  | _ -> Common.run_fixed ~count cfg

(* The static schedules below kill copy-holders at fixed ticks.  The
   "pc-split" schedule instead kills the PC of a splitting node inside
   the split window: a crash-free discovery pass over the same kernel,
   seed and loss rates records the causal trace, the earliest
   [Split_start] event names the splitting node's PC and its tick, and
   the measured run crashes that PC one tick later — after the split
   committed locally, while the half-split fan-out and the B-link
   second step are still in flight.  (The barrier disciplines reject
   crash faults outright — their AAS hold state is not journaled — so
   under Semi/Naive the split window is the mid-AAS analogue: the
   moment a PC dies with the most unreplicated protocol state exposed.)
   Fault draws before the crash tick replay identically to the
   discovery pass, so the located split is the split the crash
   interrupts. *)
let discover_pc_split ~kernel ~count ~drop_prob ~duplicate_prob =
  let faults =
    { Dbtree_sim.Net.no_faults with Dbtree_sim.Net.drop_prob; duplicate_prob }
  in
  let cfg = config ~trace:true ~kernel ~faults ~seed:5 () in
  let r = run_kernel ~kernel cfg ~count in
  let obs = r.Common.cluster.Cluster.obs in
  match
    List.find_map
      (fun (e : Dbtree_obs.Obs.event) ->
        match e.Dbtree_obs.Obs.kind with
        | Dbtree_obs.Event.Split_start ->
          Some [ (e.Dbtree_obs.Obs.pid, e.Dbtree_obs.Obs.time + 1) ]
        | _ -> None)
      (Dbtree_obs.Obs.events obs)
  with
  | Some schedule -> schedule
  | None -> []

(* Each schedule resolves to a [(pid, tick)] crash list once the kernel,
   workload size and loss rates are known; the static ones ignore all
   four. *)
let crash_schedules =
  [
    ("none", fun ~kernel:_ ~count:_ ~drop_prob:_ ~duplicate_prob:_ -> []);
    ( "one",
      fun ~kernel:_ ~count:_ ~drop_prob:_ ~duplicate_prob:_ -> [ (1, 120) ] );
    ( "two",
      fun ~kernel:_ ~count:_ ~drop_prob:_ ~duplicate_prob:_ ->
        [ (1, 120); (2, 400) ] );
    ("pc-split", discover_pc_split);
  ]

(* The audit durability exists for: an insert whose acknowledgement
   reached the client must survive every crash in the schedule. *)
let lost_acked (cl : Cluster.t) (report : Verify.report) =
  let acked = Opstate.inserted_keys cl.Cluster.ops in
  List.length
    (List.filter (fun k -> Hashtbl.mem acked k) report.Verify.missing_keys)

let run ?(quick = false) () =
  let count = Common.scale quick 800 in
  let table =
    Table.create ~title
      ~columns:
        [
          "kernel"; "crashes"; "drop"; "dup"; "replayed"; "rejoined";
          "wal KB"; "snaps"; "retx"; "stale"; "lost acked"; "elapsed";
          "verified";
        ]
  in
  List.iter
    (fun kernel ->
      List.iter
        (fun (sched_name, schedule) ->
          List.iter
            (fun (drop_prob, duplicate_prob) ->
              let crash_at =
                schedule ~kernel ~count ~drop_prob ~duplicate_prob
              in
              let faults =
                {
                  Dbtree_sim.Net.no_faults with
                  Dbtree_sim.Net.drop_prob;
                  duplicate_prob;
                  crash_at;
                  restart_delay = 40;
                }
              in
              let cfg = config ~kernel ~faults ~seed:5 () in
              let r = run_kernel ~kernel cfg ~count in
              let cl = r.Common.cluster in
              let stats = Cluster.stats cl in
              let wal_bytes = ref 0 and snaps = ref 0 in
              for pid = 0 to cfg.Config.procs - 1 do
                let w = Cluster.wal cl pid in
                wal_bytes := !wal_bytes + Wal.bytes_total w;
                snaps := !snaps + Wal.snapshots w
              done;
              Table.add_row table
                [
                  kernel;
                  sched_name;
                  Table.cell_f drop_prob;
                  Table.cell_f duplicate_prob;
                  Table.cell_i (Dbtree_sim.Stats.get stats "recovery.replayed");
                  Table.cell_i (Dbtree_sim.Stats.get stats "recovery.rejoined");
                  Table.cell_i (!wal_bytes / 1024);
                  Table.cell_i !snaps;
                  Table.cell_i (Dbtree_sim.Stats.get stats "net.rel.retx");
                  Table.cell_i
                    (Dbtree_sim.Stats.get stats "net.crash.stale_dropped");
                  Table.cell_i (lost_acked cl r.Common.report);
                  Table.cell_i r.Common.elapsed;
                  Common.verified r;
                ])
            loss_sweep)
        crash_schedules)
    kernels;
  Table.add_note table
    "'lost acked' = completed-insert keys still missing at the quiescent \
     audit — durability's contract; any nonzero cell is a recovery bug. \
     Crash rows replay the WAL (records in 'replayed') and re-confirm \
     remote-PC copies via §4.3 ('rejoined'); the elapsed delta against \
     the same kernel's crash-free row is the recovery cost.";
  Table.add_note table
    "In-flight frames from a dead incarnation are dropped by the \
     generation stamp ('stale'); the journaled send/deliver indices dedup \
     the go-back-N resends, so loss and duplication compose with crashes \
     without double-applying updates.";
  Table.add_note table
    "'pc-split' crashes the PC of a splitting node one tick after its \
     first Split_start (located by a crash-free trace pass with the same \
     seed and loss rates), so the half-split fan-out and the B-link \
     second step are in flight when the PC dies — the Semi/Naive \
     analogue of a mid-AAS failure.  'one'/'two' crash copy-holders at \
     fixed ticks instead.";
  Table.print table
