type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* newest first *)
  mutable notes : string list;  (* newest first *)
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }
let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rows
let notes t = List.rev t.notes

(* Optional capture of every printed table, so the bench harness can dump
   the experiment message counts into BENCH.json alongside the
   micro-benchmark estimates. *)
(* dbrace: domain-local -- tables are built and printed on the caller's domain only; Par workers return row data, never a Table *)
let capture_enabled = ref false
(* dbrace: domain-local -- same: captured during single-domain rendering, after any Par.map has joined *)
let captured_rev : t list ref = ref []

let set_capture on =
  capture_enabled := on;
  if on then captured_rev := []

let captured () = List.rev !captured_rev

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes
let cell_f x = Fmt.str "%.2f" x
let cell_i = string_of_int

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length col) rows)
      t.columns
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row = String.concat "  " (List.map2 pad row widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "== %s ==\n" t.title);
  Buffer.add_string buf (line t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length (line t.columns)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  List.iter
    (fun n -> Buffer.add_string buf (Fmt.str "   note: %s\n" n))
    (List.rev t.notes);
  Buffer.contents buf

let print t =
  if !capture_enabled then captured_rev := t :: !captured_rev;
  Fmt.pr "@.%s@?" (render t)
