(** Experiment: Crash/restart recovery (WAL replay, rejoin, lost-ack audit)

    Exposes only the registry-facing surface; configuration sweeps and
    the lost-acknowledged-update audit stay private. *)

val id : string
(** Short identifier used by the CLI to select this experiment. *)

val title : string
(** Human-readable description printed above the result table. *)

val run : ?quick:bool -> unit -> unit
(** Run the experiment and print its table. [quick] shrinks the
    workload for CI-speed smoke runs at the cost of table fidelity. *)
