(** E17 — million-op scale: throughput, root traffic and AAS stalls at
    64–256 processors, with cells distributed over domains by
    {!Dbtree_sim.Par.map}. *)

val id : string
val title : string

val run : ?quick:bool -> unit -> unit

val run_with : ?quick:bool -> ?domains:int -> unit -> unit
(** [run] with an explicit domain count, for the sequential-vs-parallel
    byte-identity tests ([domains:1] spawns no domain at all). *)

val metrics : ?quick:bool -> ?domains:int -> unit -> (string * float) list
(** Flat ["procs.protocol.metric" -> value] pairs for BENCH.json's
    [scale] / [scale_quick] sections.  Every value is deterministic
    simulation output, portable across machines. *)
