(** Plain-text table rendering for experiment output. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
val add_note : t -> string -> unit
val cell_f : float -> string
(** Fixed two-decimal float cell. *)

val cell_i : int -> string

val render : t -> string
(** Render to a string: title, aligned header, rows, then notes — exactly
    the bytes [print] writes (minus the leading blank line).  Used by the
    regression tests to byte-pin experiment tables. *)

val print : t -> unit
(** Render to stdout: title, aligned header, rows, then notes.  When
    capture is on (see {!set_capture}), the table is also recorded. *)

(** {2 Readback} — for machine-readable export of printed tables. *)

val title : t -> string
val columns : t -> string list

val rows : t -> string list list
(** Rows in display (insertion) order. *)

val notes : t -> string list

val set_capture : bool -> unit
(** Enable/disable recording of every subsequently printed table.
    Enabling resets the capture buffer. *)

val captured : unit -> t list
(** Tables printed since capture was enabled, in print order. *)
