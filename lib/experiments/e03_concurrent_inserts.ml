(* E3 — Figure 3: concurrent lazy inserts converge without synchronization.
   Two leaves on different processors split "at about the same time"; each
   split inserts a pointer into a *different copy* of the shared parent.
   The copies are transiently unequal and the structure stays navigable;
   at quiescence the copies are identical — with zero synchronization
   messages exchanged. *)
open Dbtree_core
open Dbtree_workload
open Dbtree_sim

let id = "e3"
let title = "Figure 3: concurrent splits under lazy inserts"

let run ?quick:_ () =
  let cfg =
    Config.make ~procs:2 ~capacity:4 ~key_space:1000 ~discipline:Config.Semi
      ~replication:Config.All_procs ~seed:1 ~trace:true ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let stats = Cluster.stats cl in
  (* Five keys per region, issued simultaneously from each side: both
     leaves overflow and split concurrently. *)
  let inserts keys =
    Workload.of_list
      (List.map (fun k -> Workload.Insert (k, Workload.value_for k)) keys)
  in
  let streams =
    [| inserts [ 10; 20; 30; 40; 50 ]; inserts [ 510; 520; 530; 540; 550 ] |]
  in
  Driver.run_all cl (Driver.fixed_api t) ~streams;
  let report = Verify.check cl in
  let sync_msgs =
    Stats.get stats "net.msg.split_start"
    + Stats.get stats "net.msg.split_ack"
    + Stats.get stats "net.msg.split_end"
  in
  let table = Table.create ~title ~columns:[ "metric"; "value" ] in
  Table.add_row table
    [ "half-splits performed"; Table.cell_i (Fixed.splits t) ];
  Table.add_row table
    [ "synchronization messages (AAS)"; Table.cell_i sync_msgs ];
  Table.add_row table
    [ "relayed lazy updates applied";
      Table.cell_i (Stats.get stats "relay.applied") ];
  Table.add_row table
    [ "parent copies identical at quiescence";
      (if report.Verify.divergent_nodes = [] then "yes" else "NO") ];
  Table.add_row table
    [ "all keys reachable from both processors";
      (if report.Verify.unreachable = [] && report.Verify.missing_keys = []
       then "yes" else "NO") ];
  Table.add_row table
    [ "verified (values + Sec.3 histories)";
      (if Verify.ok report then "ok" else "FAIL") ];
  Table.add_note table
    "No AAS ran: the inserts into the two parent copies commuted (lazy \
     updates), and the copies converged on their own.";
  Table.print table;
  Fmt.pr "@.Interleaving trace (time-ordered protocol events):@.";
  Fmt.pr "%a" Dbtree_obs.Obs.pp cl.Cluster.obs
