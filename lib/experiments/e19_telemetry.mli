(** E19 — the live telemetry plane: probe-driven scrape overhead (gated
    at zero event drift), per-window hotspot timeline, SLO alert rules
    on clean vs retransmission-storm runs, and critical-path phase
    attribution per update discipline. *)

val id : string
val title : string
val run : ?quick:bool -> unit -> unit

val metrics : ?quick:bool -> unit -> (string * float) list
(** BENCH.json's ["phases"] section: [<discipline>.stall_pct /
    .net_pct / .proc_pct] from traced runs of the three disciplines. *)
