(* E17 — the engine at scale: a million operations across 64–256
   processors.  This is the experiment the arena store, the timing-wheel
   event queue and the typed (closure-free) message path exist for: one
   cell loads a bounded insert phase and then drives the op count up with
   searches, under the lazy semi-synchronous protocol and the synchronous
   AAS variant.  The table reports simulated throughput, the hottest
   processor's inbound share (the root-bottleneck curve), AAS stall
   counts and p99 stall time from the [Stats] histograms, and p99 search
   latency.

   Cells share nothing, so they run through [Par.map]: sequential by
   default, domain-parallel when [DBTREE_DOMAINS] (or the caller) says
   so — with a byte-identical table either way, which the test suite
   pins.  Wall-clock engine speed is printed outside the table (it is
   real time, not simulation output, and must not enter the pinned
   render). *)
open Dbtree_core
open Dbtree_sim

let id = "e17"
let title = "Million-op scale: 64-256 processors"

type cell = { procs : int; disc : Config.discipline; ops_target : int }

type row = {
  procs : int;
  disc : Config.discipline;
  ops : int;
  events : int;
  tput : float;
  hottest_pct : float;
  aas_stalls : int;
  aas_p99 : int;
  search_p99 : float;
  ok : string;
}

(* The insert phase is bounded — the tree's node count, not the op count,
   is what it controls — and searches make up the rest of the target. *)
let run_cell { procs; disc; ops_target } =
  let inserts = min (ops_target / 4) 64_000 in
  let searches = max 1 ((ops_target - inserts) / procs) in
  let key_space = max 400_000 (inserts * 16) in
  let cfg =
    Config.make ~procs ~capacity:16 ~key_space ~discipline:disc
      ~replication:Config.Path ~seed:17 ~record_history:false ()
  in
  let r = Common.run_fixed ~window:8 ~searches_per_proc:searches ~count:inserts cfg in
  let cluster = r.Common.cluster in
  let net = cluster.Cluster.net in
  let inbound = List.init procs (fun p -> Cluster.Network.sent_to net p) in
  let total = max 1 (List.fold_left ( + ) 0 inbound) in
  let hottest = List.fold_left max 0 inbound in
  let aas = cluster.Cluster.ctr.Cluster.aas_time in
  {
    procs;
    disc;
    ops = Common.ops_completed r;
    events = Sim.events_processed cluster.Cluster.sim;
    tput = Common.throughput r;
    hottest_pct = 100.0 *. float_of_int hottest /. float_of_int total;
    aas_stalls = Stats.hist_count aas;
    aas_p99 =
      (if Stats.hist_count aas = 0 then 0 else Stats.hist_percentile aas 99.0);
    search_p99 =
      Opstate.latency_percentile cluster.Cluster.ops Opstate.Search 0.99;
    ok = Common.verified r;
  }

let cells quick =
  let procs_list = if quick then [ 8; 16 ] else [ 64; 128; 256 ] in
  let ops_target = if quick then 3_000 else 1_000_000 in
  Array.of_list
    (List.concat_map
       (fun procs ->
         List.map
           (fun disc -> { procs; disc; ops_target })
           [ Config.Semi; Config.Sync ])
       procs_list)

(* Flat deterministic metrics for BENCH.json's [scale] sections: every
   value is simulation output (op counts, event counts, simulated-time
   ratios), so the same sources produce the same numbers on any machine
   and the CI gate can compare them within a tight tolerance. *)
let metrics ?(quick = false) ?domains () =
  let rows = Par.map ?domains run_cell (cells quick) in
  Array.to_list rows
  |> List.concat_map (fun r ->
         let p = Fmt.str "%d.%s" r.procs (Config.discipline_name r.disc) in
         [
           (p ^ ".ops", float_of_int r.ops);
           (p ^ ".events", float_of_int r.events);
           (p ^ ".tput", r.tput);
           (p ^ ".hottest_pct", r.hottest_pct);
           (p ^ ".aas_stalls", float_of_int r.aas_stalls);
           (p ^ ".search_p99", r.search_p99);
         ])

(* Exposed with an explicit domain count so the test suite can pin
   sequential ≡ parallel; [run] (the registry entry point) defaults to
   the [DBTREE_DOMAINS] environment variable via [Par.map]. *)
let run_with ?(quick = false) ?domains () =
  (* dblint: allow no-nondeterminism -- engine wall speed is the point; printed outside the pinned table *)
  let started = Sys.time () in
  let rows = Par.map ?domains run_cell (cells quick) in
  (* dblint: allow no-nondeterminism -- same: real time, never enters the table *)
  let cpu = Sys.time () -. started in
  let table =
    Table.create ~title
      ~columns:
        [
          "procs"; "protocol"; "ops"; "events"; "throughput ops/ktick";
          "hottest proc inbound %"; "AAS stalls"; "AAS p99";
          "search p99"; "verified";
        ]
  in
  let total_ops = Array.fold_left (fun a r -> a + r.ops) 0 rows in
  Array.iter
    (fun r ->
      Table.add_row table
        [
          Table.cell_i r.procs;
          Config.discipline_name r.disc;
          Table.cell_i r.ops;
          Table.cell_i r.events;
          Table.cell_f r.tput;
          Table.cell_f r.hottest_pct;
          Table.cell_i r.aas_stalls;
          Table.cell_i r.aas_p99;
          Table.cell_f r.search_p99;
          r.ok;
        ])
    rows;
  Table.add_note table
    "the lazy semi-synchronous protocol holds its throughput and keeps \
     the hottest processor's share near 1/procs as the cluster grows; \
     the synchronous variant pays for every split with an AAS stall \
     across the member set.";
  Table.print table;
  (* Real time, deliberately outside the (pinned, deterministic) table —
     and on stderr, so stdout stays byte-comparable across runs. *)
  Fmt.epr "e17: %d ops in %.1fs CPU (%.0f ops/sec)@." total_ops cpu
    (float_of_int total_ops /. Float.max 1e-9 cpu)

let run ?quick () = run_with ?quick ()
