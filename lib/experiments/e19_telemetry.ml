(* E19 — the live telemetry plane (lib/obs + lib/dbtree/telemetry.ml).

   Four tables:
   1. Overhead — the same workload with the plane off and on.  Scrapes
      ride the simulator's observation probe and schedule nothing, so
      the instrumented run must execute the exact same events; the
      drift column is the gated claim and must read 0.00.
   2. Hotspot timeline — the per-window heat gauges of the semi run:
      where the access mass sits and how the hottest node's share
      decays as splits spread the keys.
   3. SLO alerts — the health rule engine on a clean run (every rule
      silent) and under a retransmission storm (drop-heavy reliable
      channel; the retx_storm rule must fire).
   4. Critical path — per-discipline phase attribution over the trace
      rings: where a completed operation's latency actually went, and
      the stall ordering (sync > semi > mobile) the lazy-update thesis
      predicts. *)
open Dbtree_core
module Series = Dbtree_obs.Series
module Health = Dbtree_obs.Health
module Critical = Dbtree_obs.Critical

let id = "e19"
let title = "Live telemetry: overhead, hotspots, SLO alerts, critical path"

(* "sync" and "semi" are fixed-copies kernels under the matching
   discipline; "mobile" is the lazily-balancing kernel (semi-lazy
   updates plus §5 data balancing). *)
let config ?(telemetry = false) ?(trace = false) ?faults ?transport ~kernel
    ~seed () =
  let discipline = if kernel = "sync" then Config.Sync else Config.Semi in
  let balance_period = if kernel = "mobile" then 200 else 0 in
  Config.make ~procs:4 ~capacity:8 ~seed ~key_space:200_000 ~discipline
    ~balance_period ?faults ?transport ~telemetry ~telemetry_every:256 ~trace
    ()

let run_kernel ~kernel ~count cfg =
  if kernel = "mobile" then snd (Common.run_mobile ~count cfg)
  else Common.run_fixed ~count cfg

(* ---- 1: overhead ------------------------------------------------- *)

let overhead_table ~count =
  let table =
    Table.create ~title:"Telemetry overhead (same seed, plane off vs on)"
      ~columns:
        [ "discipline"; "telem"; "events"; "elapsed"; "ops"; "drift %" ]
  in
  let semi_on = ref None in
  List.iter
    (fun kernel ->
      let events r =
        Dbtree_sim.Sim.events_processed r.Common.cluster.Cluster.sim
      in
      let off = run_kernel ~kernel ~count (config ~kernel ~seed:11 ()) in
      let on =
        run_kernel ~kernel ~count (config ~telemetry:true ~kernel ~seed:11 ())
      in
      if kernel = "semi" then semi_on := Some on;
      let drift =
        100.0
        *. float_of_int (abs (events on - events off))
        /. float_of_int (max 1 (events off))
      in
      List.iter
        (fun (tag, r) ->
          Table.add_row table
            [
              kernel;
              tag;
              Table.cell_i (events r);
              Table.cell_i r.Common.elapsed;
              Table.cell_i (Common.ops_completed r);
              (if tag = "on" then Table.cell_f drift else "-");
            ])
        [ ("off", off); ("on", on) ])
    [ "sync"; "semi" ];
  Table.add_note table
    "Scrapes ride the simulator's probe hook and schedule no events, so \
     the instrumented run replays the bare run exactly: the drift column \
     (|events on - events off| as a percentage) is the gated overhead \
     claim and must be 0.00.";
  Table.print table;
  Option.get !semi_on

(* ---- 2: hotspot timeline ----------------------------------------- *)

let timeline_table (r : Common.run_result) =
  let tm = Cluster.telemetry r.Common.cluster in
  let series = Telemetry.series tm in
  let pts name = Series.points series name in
  let share = pts "heat.hottest_share_pct" in
  let node = pts "heat.hottest_node" in
  let touches = pts "heat.touches" in
  let queue = pts "sim.queue_depth" in
  let table =
    Table.create ~title:"Hotspot timeline (semi, one scrape window per row)"
      ~columns:[ "t"; "queue"; "touches"; "hottest node"; "share %" ]
  in
  let nth xs i = List.nth_opt xs i in
  let n = List.length share in
  let stride = max 1 (n / 6) in
  let i = ref 0 in
  while !i < n do
    (match (nth share !i, nth node !i, nth touches !i, nth queue !i) with
    | Some (t, s), Some (_, nd), Some (_, tc), Some (_, q) ->
      Table.add_row table
        [
          Table.cell_i t; Table.cell_i q; Table.cell_i tc; Table.cell_i nd;
          Table.cell_i s;
        ]
    | _ -> ());
    i := !i + stride
  done;
  Table.add_note table
    "Scraped every 256 ticks from the per-node heat arena: the hottest \
     node's share of all copy accesses falls as splits spread the key \
     range, while the leader's identity tracks the current heaviest \
     subtree.";
  Table.print table

(* ---- 3: SLO alerts ----------------------------------------------- *)

let alerts_table ~count =
  let table =
    Table.create ~title:"SLO health rules (clean run vs retransmission storm)"
      ~columns:[ "scenario"; "rule"; "sev"; "fired"; "ticks"; "peak" ]
  in
  let scenarios =
    [
      ("clean", Dbtree_sim.Net.no_faults);
      ( "retx storm",
        { Dbtree_sim.Net.no_faults with Dbtree_sim.Net.drop_prob = 0.3 } );
    ]
  in
  let storm_fired = ref 0 in
  List.iter
    (fun (name, faults) ->
      (* 8 processors x 32-deep closed loop: enough concurrent go-back-N
         channels that a 30% drop rate pushes the per-window resend count
         over the threshold; the clean run shares the config. *)
      let cfg =
        Config.make ~procs:8 ~capacity:8 ~seed:23 ~key_space:200_000
          ~discipline:Config.Semi ~transport:Dbtree_sim.Net.Reliable ~faults
          ~telemetry:true ~telemetry_every:256 ()
      in
      let r = Common.run_fixed ~window:32 ~count cfg in
      let health = Telemetry.health (Cluster.telemetry r.Common.cluster) in
      List.iter
        (fun (s : Health.summary_row) ->
          if name <> "clean" && s.Health.su_rule = "retx_storm" then
            storm_fired := s.Health.su_fired;
          Table.add_row table
            [
              name;
              s.Health.su_rule;
              Health.severity_name s.Health.su_severity;
              Table.cell_i s.Health.su_fired;
              Table.cell_i s.Health.su_active_ticks;
              Table.cell_i s.Health.su_peak;
            ])
        (Health.summary health))
    scenarios;
  Table.add_note table
    "Rules are level checks at scrape points; alerts are span-paired \
     trace events.  The gate: every rule stays silent on the clean run, \
     and the drop-heavy reliable channel must trip retx_storm (go-back-N \
     resends per window above threshold).";
  Table.print table;
  !storm_fired

(* ---- 4: critical path -------------------------------------------- *)

(* A contended regime — 8 processors, capacity-4 nodes (frequent
   splits), high delivery jitter, 2% loss on the reliable channel — so
   each discipline's synchronization cost is actually visible: sync's
   quorum AAS holds span the jittered round trips, semi's routes race
   split installs and park, and the lazy balancer does neither. *)
let phase_rows ~count =
  List.map
    (fun kernel ->
      let discipline = if kernel = "sync" then Config.Sync else Config.Semi in
      let balance_period = if kernel = "mobile" then 200 else 0 in
      let cfg =
        Config.make ~procs:8 ~capacity:4 ~seed:7 ~key_space:200_000
          ~discipline ~balance_period ~trace:true
          ~transport:Dbtree_sim.Net.Reliable
          ~faults:
            { Dbtree_sim.Net.no_faults with Dbtree_sim.Net.drop_prob = 0.02 }
          ~latency:
            { Dbtree_sim.Net.local_delay = 1; remote_base = 20;
              remote_jitter = 60 }
          ()
      in
      let r =
        if kernel = "mobile" then snd (Common.run_mobile ~window:16 ~count cfg)
        else Common.run_fixed ~window:16 ~count cfg
      in
      let agg = Critical.aggregate r.Common.cluster.Cluster.obs in
      (kernel, agg))
    [ "sync"; "semi"; "mobile" ]

let phases_table rows =
  let table =
    Table.create
      ~title:"Critical-path attribution (share of completed-op latency)"
      ~columns:
        [ "discipline"; "net %"; "aas %"; "park %"; "retx %"; "proc %";
          "stall %" ]
  in
  List.iter
    (fun (disc, agg) ->
      let pct part = Table.cell_f (Critical.share agg part) in
      Table.add_row table
        [
          disc;
          pct agg.Critical.p_net;
          pct agg.Critical.p_aas;
          pct agg.Critical.p_parked;
          pct agg.Critical.p_retx;
          pct agg.Critical.p_proc;
          pct (Critical.stall agg);
        ])
    rows;
  let stall_of d =
    match List.assoc_opt d rows with
    | Some agg -> Critical.share agg (Critical.stall agg)
    | None -> 0.0
  in
  let ordered =
    stall_of "sync" > stall_of "semi" && stall_of "semi" > stall_of "mobile"
  in
  Table.add_note table
    (Fmt.str
       "Stall (aas + park) is the split-synchronization share: the \
        synchronous discipline blocks every copy, semi-lazy parks only \
        non-primary copies behind relays, and lazy balancing keeps \
        operations moving.  Ordering sync > semi > mobile holds: %s."
       (if ordered then "yes" else "NO"));
  Table.print table

(* The phase attribution needs enough completed ops that each
   discipline's synchronization episodes actually land on op spans;
   quick mode trims less aggressively than Common.scale. *)
let phase_count quick = if quick then 200 else 600

(* BENCH.json's "phases" section: flat metrics, stall/net/proc share per
   discipline, from the same traced runs the table prints. *)
let metrics ?(quick = false) () =
  let count = phase_count quick in
  List.concat_map
    (fun (disc, agg) ->
      [
        (disc ^ ".stall_pct", Critical.share agg (Critical.stall agg));
        (disc ^ ".net_pct", Critical.share agg agg.Critical.p_net);
        (disc ^ ".proc_pct", Critical.share agg agg.Critical.p_proc);
      ])
    (phase_rows ~count)

let run ?(quick = false) () =
  let count = Common.scale quick 600 in
  let semi_on = overhead_table ~count in
  timeline_table semi_on;
  ignore (alerts_table ~count:(Common.scale quick 400));
  phases_table (phase_rows ~count:(phase_count quick))
