(* E14 — the §4 network assumption, probed and then discharged.
   "We assume that the network is reliable, delivering every message
   exactly once in order."  The protocols are built on that assumption;
   this experiment injects loss, duplication and FIFO-violating delays and
   shows (a) over the raw transport the damage is real — lost keys,
   incomplete copy histories, double-applies, diverging copies, and under
   loss sometimes an outright protocol crash — and the §3 audits detect
   it, and (b) the reliable-delivery sublayer (sequence numbers, dedup,
   cumulative acks, retransmission — the discharge a production port owes)
   masks the same fault schedule completely, at a measured cost in wire
   messages and latency. *)
open Dbtree_core

let id = "e14"
let title = "Network-assumption sensitivity (loss / duplication / reordering)"

let transport_name = function
  | Dbtree_sim.Net.Raw -> "raw"
  | Dbtree_sim.Net.Reliable -> "reliable"

(* Over the raw transport a dropped message can violate invariants the
   kernels rely on outright (e.g. a split announcement that never arrives
   leaves a processor with no location for a node it is later asked to
   navigate); that surfaces as an exception, which is as much a finding as
   a failed audit.  After a crash we still attempt the quiescent audit on
   whatever state the cluster reached — the recorded histories don't lie —
   so the violation columns stay populated when the audit itself survives. *)
type outcome =
  | Finished of Common.run_result
  | Crashed of string * Verify.report option

let run_one ~transport ~faults ~count ~seed =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:200_000 ~seed ~faults
      ~transport ~replication:Config.All_procs ~discipline:Config.Semi ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  (* Raw transport: duplicated replies are part of the injected fault —
     count them, don't abort.  Reliable transport: a duplicated reply would
     mean the sublayer failed exactly-once; stay strict so it crashes
     loudly. *)
  (match transport with
  | Dbtree_sim.Net.Raw -> Opstate.set_tolerant cl.Cluster.ops
  | Dbtree_sim.Net.Reliable -> ());
  let audit_anyway () =
    match Verify.check cl with r -> Some r | exception _ -> None
  in
  let outcome =
    match
      Common.load_and_search ~window:4 ~searches_per_proc:32
        ~api:(Driver.fixed_api t) ~cluster:cl
        ~splits:(fun () -> Fixed.splits t)
        ~count ~seed ()
    with
    | r -> Finished r
    | exception Failure msg -> Crashed (msg, audit_anyway ())
    | exception Invalid_argument msg -> Crashed (msg, audit_anyway ())
    | exception Not_found -> Crashed ("Not_found", audit_anyway ())
  in
  (cl, outcome)

let violations_of req (report : Verify.report) =
  match report.Verify.history with
  | None -> 0
  | Some h ->
    List.length
      (List.filter
         (fun v -> v.Dbtree_history.Checker.requirement = req)
         h.Dbtree_history.Checker.violations)

(* (drop, duplicate, delay) probability triples: a loss sweep, the
   original duplication/reordering rows, and a combined worst case. *)
let fault_sweep =
  [
    (0.0, 0.0, 0.0);
    (0.02, 0.0, 0.0);
    (0.05, 0.0, 0.0);
    (0.10, 0.0, 0.0);
    (0.0, 0.05, 0.0);
    (0.0, 0.0, 0.02);
    (0.05, 0.05, 0.02);
  ]

let run ?(quick = false) () =
  let count = Common.scale quick 1_500 in
  let table =
    Table.create ~title
      ~columns:
        [
          "transport"; "drop"; "dup"; "delay"; "injected"; "retx";
          "lost keys"; "incompat"; "double"; "divergent"; "msgs/op";
          "ins lat"; "verified";
        ]
  in
  List.iter
    (fun (drop_prob, duplicate_prob, delay_prob) ->
      List.iter
        (fun transport ->
          let faults =
            {
              Dbtree_sim.Net.no_faults with
              Dbtree_sim.Net.drop_prob;
              duplicate_prob;
              delay_prob;
              delay_ticks = 200;
            }
          in
          let cl, outcome = run_one ~transport ~faults ~count ~seed:3 in
          let stats = Cluster.stats cl in
          let injected =
            Dbtree_sim.Stats.get stats "net.fault.dropped"
            + Dbtree_sim.Stats.get stats "net.fault.duplicated"
            + Dbtree_sim.Stats.get stats "net.fault.delayed"
          in
          let ops = max 1 (Opstate.completed cl.Cluster.ops) in
          let msgs = Cluster.Network.remote_messages cl.Cluster.net in
          let audit_cells =
            let of_report (report : Verify.report) =
              [
                Table.cell_i (List.length report.Verify.missing_keys);
                Table.cell_i (violations_of `Compatible report);
                Table.cell_i (violations_of `Exactly_once report);
                Table.cell_i (List.length report.Verify.divergent_nodes);
              ]
            in
            match outcome with
            | Finished r -> of_report r.Common.report
            | Crashed (_, Some report) -> of_report report
            | Crashed (_, None) -> [ "-"; "-"; "-"; "-" ]
          in
          let verified =
            match outcome with
            | Finished r -> Common.verified r
            | Crashed _ -> "CRASH"
          in
          Table.add_row table
            ([
               transport_name transport;
               Table.cell_f drop_prob;
               Table.cell_f duplicate_prob;
               Table.cell_f delay_prob;
               Table.cell_i injected;
               Table.cell_i (Dbtree_sim.Stats.get stats "net.rel.retx");
             ]
            @ audit_cells
            @ [
                Table.cell_f (float_of_int msgs /. float_of_int ops);
                Table.cell_f
                  (Opstate.mean_latency cl.Cluster.ops Opstate.Insert);
                verified;
              ]))
        [ Dbtree_sim.Net.Raw; Dbtree_sim.Net.Reliable ])
    fault_sweep;
  Table.add_note table
    "Raw rows with injected faults are EXPECTED to fail: the paper's \
     protocols assume exactly-once FIFO delivery; the audits quantify what \
     breaks without it (CRASH = a dropped message violated a kernel \
     invariant before quiescence was even reached).";
  Table.add_note table
    "Reliable rows run the same fault schedule through the \
     seqno/ack/retransmit sublayer: every §3 requirement stays clean; \
     'retx' and the msgs/op & latency deltas against the clean raw row are \
     the price of the discharge.";
  Table.print table
