type uid = int

module Uid_set = Set.Make (Int)

type record = { action : Action.t; effective : bool; time : int }

type copy = {
  node : int;
  pid : int;
  mutable base : Uid_set.t;
  mutable records : record list;
  mutable live : bool;
}

type t = {
  copies : (int * int, copy) Hashtbl.t;
  mutable next_uid : int;
  mutable issued : Uid_set.t;
}

let create () =
  { copies = Hashtbl.create 256; next_uid = 0; issued = Uid_set.empty }

let fresh_uid t =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  uid

let note_issued t uid = t.issued <- Uid_set.add uid t.issued

let new_copy t ~node ~pid ~base =
  (* A node can be re-created at a pid that unjoined earlier; the new life
     replaces the retired record under the same key. *)
  Hashtbl.replace t.copies (node, pid)
    { node; pid; base; records = []; live = true }

let find_copy t ~node ~pid = Hashtbl.find_opt t.copies (node, pid)

let get t ~node ~pid =
  match find_copy t ~node ~pid with
  | Some c -> c
  | None ->
    Fmt.failwith "History.Registry: copy (node %d, pid %d) not registered"
      node pid

let snapshot t ~node ~pid =
  let c = get t ~node ~pid in
  List.fold_left
    (fun acc r -> Uid_set.add r.action.Action.uid acc)
    c.base c.records

let record t ~node ~pid ?(effective = true) ~time action =
  let c = get t ~node ~pid in
  c.records <- { action; effective; time } :: c.records

let retire_copy t ~node ~pid = (get t ~node ~pid).live <- false

let copies_of t node =
  (* dblint: allow no-nondeterminism -- unordered fold feeds the sort by pid below *)
  Hashtbl.fold
    (fun (n, _) c acc -> if n = node then c :: acc else acc)
    t.copies []
  |> List.sort (fun a b -> compare a.pid b.pid)

let live_copies_of t node = List.filter (fun c -> c.live) (copies_of t node)

let all_nodes t =
  (* dblint: allow no-nondeterminism -- folding into a Uid_set is order-insensitive *)
  Hashtbl.fold (fun (n, _) _ acc -> Uid_set.add n acc) t.copies Uid_set.empty
  |> Uid_set.elements

let issued t = t.issued
