(* dbperf: whole-program hot-path cost analysis.

   The paper's claim is that the lazy hot path does almost nothing per
   operation; the simulator enforces that dynamically at a handful of
   [Gc.minor_words] probe points.  This checker makes the discipline a
   static property: the {!Graph} walk records every allocation-shaped
   expression and polymorphic-comparison site per node, the hot set is
   the call-graph closure from the hot roots (every registered event
   handler, the observation-probe callback, the wheel drain, the
   telemetry/stats hooks, plus explicitly annotated functions), and the
   rules check the hot set is allocation-free and monomorphic except
   where a justified annotation says otherwise.

   Like dbflow and dbrace, everything is syntactic: indirect calls
   through function-valued fields escape the closure (the registered
   handler cut in {!Graph} recovers the important ones), and the
   alloc/poly classifiers are shallow by design.  The dynamic
   [Gc.minor_words] proofs in the test suite remain the ground truth the
   static pass is cross-checked against. *)

open Dbtree_lint

(* ------------------------------------------------------------------ *)
(* Annotation grammar: a comment on the relevant line (or the line
   above) reading the tool name, colon-space, then a keyword —

     <tool>: hot -- why this function is on the per-op path
     <tool>: alloc-ok -- why this allocation is acceptable

   where <tool> is this checker's name.  [hot] sits on a top-level
   binding and adds it to the hot roots; [alloc-ok] sits on an
   allocation site inside the hot set and excuses it.  The marker is
   assembled from pieces (and spelled indirectly in this comment) so
   the textual scan never reads this module's own source as
   annotations. *)

let marker_prefix = "dbperf" ^ ": "
let keywords = [ "hot"; "alloc-ok" ]
let marker_of kw = marker_prefix ^ kw

type annot = { an_line : int; an_keyword : string; an_why : string }

let find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let why_after line start =
  match find_sub (String.sub line start (String.length line - start)) "--" with
  | None -> ""
  | Some j ->
    let rest = String.sub line (start + j) (String.length line - start - j) in
    let rest =
      match find_sub rest "*)" with
      | Some e -> String.sub rest 0 (e - 2)
      | None -> rest
    in
    String.trim rest

let scan_annots source =
  let lines = String.split_on_char '\n' source in
  List.concat
    (List.mapi
       (fun i line ->
         List.filter_map
           (fun kw ->
             (* [hot] is a prefix of nothing else, but guard against a
                keyword match inside a longer token anyway. *)
             match find_sub line (marker_of kw) with
             | None -> None
             | Some start ->
               Some
                 {
                   an_line = i + 1;
                   an_keyword = kw;
                   an_why = why_after line start;
                 })
           keywords)
       lines)

let annot_at annots ~kw ~line =
  List.find_opt
    (fun a -> a.an_keyword = kw && (a.an_line = line || a.an_line = line - 1))
    annots

(* ------------------------------------------------------------------ *)
(* Hot roots and the hot set                                            *)

(* The built-in per-operation entry points, intersected with the graph
   (a program that does not contain them simply has fewer roots): the
   event-loop core and wheel drain, the telemetry hooks the
   [Gc.minor_words] proofs cover, and the interned-stats fast paths. *)
let builtin_roots =
  [
    "Sim.dispatch";
    "Sim.step";
    "Wheel.pop_into";
    "Telemetry.touch";
    "Telemetry.observe_latency";
    "Telemetry.aas_begin";
    "Telemetry.aas_end";
    "Telemetry.scrape";
    "Stats.tick";
    "Stats.add";
    "Stats.hist_observe";
    "Series.scrape";
    "Sketch.observe";
  ]

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs
  |> List.rev

let node_line (n : Graph.node) = n.Graph.loc.Location.loc_start.Lexing.pos_lnum

let unit_annots (prog : Program.t) =
  List.map
    (fun (u : Program.unit_info) -> (u.Program.file, scan_annots u.Program.source))
    prog.Program.units

let annots_for annots file =
  Option.value (List.assoc_opt file annots) ~default:[]

(* Every root: the built-ins present in this program, every id handed to
   [Sim.register_handler]/[Sim.set_probe] (including the cut closure
   pseudo-nodes), and every binding carrying a justified-or-not [hot]
   annotation. *)
let hot_root_ids (prog : Program.t) (g : Graph.t) =
  let annots = unit_annots prog in
  let builtin =
    List.filter (fun id -> Graph.find_node g id <> None) builtin_roots
  in
  let handed =
    List.concat_map
      (fun (n : Graph.node) -> n.Graph.hot_roots)
      (Graph.nodes_in_order g @ g.Graph.hot_subnodes)
  in
  let annotated =
    List.filter_map
      (fun (n : Graph.node) ->
        match
          annot_at (annots_for annots n.Graph.file) ~kw:"hot" ~line:(node_line n)
        with
        | Some _ -> Some n.Graph.id
        | None -> None)
      (Graph.nodes_in_order g)
  in
  dedup (builtin @ handed @ annotated)

(* The hot set: the call closure from the roots through the main node
   table, plus the rooted closure pseudo-nodes and everything they
   call.  (Pseudo-nodes live outside the table, so [Graph.closure]
   skips their ids; their [calls] resolve into the table.) *)
let hot_nodes (g : Graph.t) roots =
  let main = Graph.closure g roots in
  let subs =
    List.filter (fun (n : Graph.node) -> List.mem n.Graph.id roots)
      g.Graph.hot_subnodes
  in
  let sub_callees =
    Graph.closure g (List.concat_map (fun (n : Graph.node) -> n.Graph.calls) subs)
  in
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (n : Graph.node) ->
      if Hashtbl.mem seen n.Graph.id then false
      else begin
        Hashtbl.add seen n.Graph.id ();
        true
      end)
    (main @ subs @ sub_callees)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

type ctx = {
  prog : Program.t;
  graph : Graph.t;
  roots : string list;
  hot : Graph.node list;
  annots : (string * annot list) list;
}

type rule = { name : string; doc : string; check : ctx -> Rule.violation list }

let v ~rule ~file ~(loc : Location.t) msg =
  let pos = loc.Location.loc_start in
  {
    Rule.rule;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message = msg;
  }

let v_line ~rule ~file ~line msg =
  { Rule.rule; file; line; col = 0; message = msg }

(* An arity-0 binding is a value computed once at module initialisation:
   its body runs once per process, not once per event, so its
   allocations are not a per-call cost even when hot functions read it.
   Dispatch arms and hot subnodes have no arity entry and stay
   per-call. *)
let per_call ctx (n : Graph.node) = Graph.arity ctx.graph n.Graph.id <> Some 0

(* A node's allocation sites: the recorded allocation-shaped
   expressions plus every resolved application with fewer arguments
   than the callee's arity (a closure allocated at the call site). *)
let alloc_sites ctx (n : Graph.node) =
  if not (per_call ctx n) then []
  else
    n.Graph.allocs
    @ List.filter_map
        (fun (callee, nargs, loc) ->
          match Graph.arity ctx.graph callee with
          | Some ar when ar > 0 && nargs < ar ->
            Some
              ( Fmt.str "partial application of %s (%d of %d arguments)" callee
                  nargs ar,
                loc )
          | _ -> None)
        n.Graph.apps

(* ---------------- hot-alloc ---------------- *)

let check_hot_alloc ctx =
  List.concat_map
    (fun (n : Graph.node) ->
      let annots = annots_for ctx.annots n.Graph.file in
      List.filter_map
        (fun (desc, (loc : Location.t)) ->
          let line = loc.Location.loc_start.Lexing.pos_lnum in
          match annot_at annots ~kw:"alloc-ok" ~line with
          | Some { an_why = ""; _ } ->
            Some
              (v ~rule:"hot-alloc" ~file:n.Graph.file ~loc
                 (Fmt.str
                    "'%s' annotation on this site carries no justification: \
                     append ' -- why' explaining why the allocation is \
                     acceptable on the hot path"
                    (marker_of "alloc-ok")))
          | Some _ -> None
          | None ->
            Some
              (v ~rule:"hot-alloc" ~file:n.Graph.file ~loc
                 (Fmt.str
                    "%s is in the hot set but allocates here (%s): move the \
                     allocation off the per-event path, or justify it with \
                     '%s -- why' on this line or the line above"
                    n.Graph.id desc (marker_of "alloc-ok"))))
        (alloc_sites ctx n))
    ctx.hot

(* ---------------- poly-compare ---------------- *)

let check_poly_compare ctx =
  List.concat_map
    (fun (n : Graph.node) ->
      if not (per_call ctx n) then []
      else
      List.map
        (fun (desc, loc) ->
          v ~rule:"poly-compare" ~file:n.Graph.file ~loc
            (Fmt.str
               "%s is in the hot set but performs %s: polymorphic \
                comparison walks the value through a C call — use the \
                monomorphic Int/String comparators or match on the \
                constructor instead"
               n.Graph.id desc))
        n.Graph.polys)
    ctx.hot

(* ---------------- stray-annot ---------------- *)

(* Annotation hygiene, dbrace-style: a [hot] mark must sit on a
   top-level binding and carry a justification; an [alloc-ok] mark must
   sit on an allocation site of a hot function (when the code goes
   cold, the stale annotation is reported rather than silently kept). *)
let check_stray_annot ctx =
  let hot_alloc_lines file =
    List.concat_map
      (fun (n : Graph.node) ->
        if n.Graph.file <> file then []
        else
          List.map
            (fun ((_, loc) : string * Location.t) ->
              loc.Location.loc_start.Lexing.pos_lnum)
            (alloc_sites ctx n))
      ctx.hot
  in
  List.concat_map
    (fun (u : Program.unit_info) ->
      let binding_lines =
        List.map node_line
          (List.filter
             (fun (n : Graph.node) -> n.Graph.file = u.Program.file)
             (Graph.nodes_in_order ctx.graph))
      in
      let alloc_lines = hot_alloc_lines u.Program.file in
      List.filter_map
        (fun (a : annot) ->
          let attached lines =
            List.exists (fun l -> l = a.an_line || l = a.an_line + 1) lines
          in
          match a.an_keyword with
          | "hot" ->
            if not (attached binding_lines) then
              Some
                (v_line ~rule:"stray-annot" ~file:u.Program.file ~line:a.an_line
                   (Fmt.str
                      "'%s' annotation is not attached to a top-level \
                       binding (it must sit on the binding's line or the \
                       line above)"
                      (marker_of "hot")))
            else if a.an_why = "" then
              Some
                (v_line ~rule:"stray-annot" ~file:u.Program.file ~line:a.an_line
                   (Fmt.str
                      "'%s' annotation carries no justification: append \
                       ' -- why' explaining why this function is on the \
                       per-op path"
                      (marker_of "hot")))
            else None
          | _ ->
            if not (attached alloc_lines) then
              Some
                (v_line ~rule:"stray-annot" ~file:u.Program.file ~line:a.an_line
                   (Fmt.str
                      "'%s' annotation is not attached to an allocation \
                       site of a hot function: the code may have gone cold \
                       or moved — remove or re-site the annotation"
                      (marker_of "alloc-ok")))
            else None)
        (annots_for ctx.annots u.Program.file))
    ctx.prog.Program.units

(* ------------------------------------------------------------------ *)
(* Registry and driver                                                 *)

let all_rules =
  [
    {
      name = "hot-alloc";
      doc =
        "no function in the hot set (closure from registered handlers, \
         the probe callback, wheel drain, telemetry/stats hooks and \
         dbperf-hot annotations) allocates without a justified alloc-ok \
         annotation on the site";
      check = check_hot_alloc;
    };
    {
      name = "poly-compare";
      doc =
        "no polymorphic compare/equality/min/max/hash at a boxed-looking \
         type in the hot set: use the monomorphic comparators or match \
         on the constructor";
      check = check_poly_compare;
    };
    {
      name = "stray-annot";
      doc =
        "every dbperf annotation is attached (hot to a top-level \
         binding, alloc-ok to a hot allocation site) and carries a \
         ' -- why' justification";
      check = check_stray_annot;
    };
  ]

let rule_names = List.map (fun r -> r.name) all_rules
let find_rule name = List.find_opt (fun r -> r.name = name) all_rules

type report = {
  violations : Rule.violation list;
  suppressed : int;
  files : int;
}

let sort_violations vs =
  List.sort
    (fun (a : Rule.violation) b ->
      compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule))
    vs

let make_ctx (prog : Program.t) =
  let graph = Graph.build prog in
  let roots = hot_root_ids prog graph in
  { prog; graph; roots; hot = hot_nodes graph roots; annots = unit_annots prog }

let analyze ?(rules = all_rules) (prog : Program.t) =
  let ctx = make_ctx prog in
  let raw = dedup (List.concat_map (fun r -> r.check ctx) rules) in
  let supps =
    List.map
      (fun (u : Program.unit_info) ->
        (u.Program.file, Suppress.scan ~tool:"dbperf" ~known:rule_names u.Program.source))
      prog.Program.units
  in
  let suppressed, kept =
    List.partition
      (fun (viol : Rule.violation) ->
        match List.assoc_opt viol.Rule.file supps with
        | Some s -> Suppress.active s ~rule:viol.Rule.rule ~line:viol.Rule.line
        | None -> false)
      raw
  in
  let unknown =
    List.concat_map
      (fun (file, s) ->
        List.map
          (fun (line, tok) ->
            {
              Rule.rule = "unknown-rule";
              file;
              line;
              col = 0;
              message =
                Fmt.str
                  "dbperf allow comment names unknown rule %S (known: %s): \
                   fix the name or the comment suppresses nothing"
                  tok
                  (String.concat ", " rule_names);
            })
          (Suppress.unknown_rules s))
      supps
  in
  {
    violations = sort_violations (unknown @ kept);
    suppressed = List.length suppressed;
    files = List.length prog.Program.units;
  }

(* ------------------------------------------------------------------ *)
(* Hot-set rendering (the [--hot] audit view)                          *)

let pp_hot ppf (prog : Program.t) =
  let ctx = make_ctx prog in
  List.iter
    (fun (n : Graph.node) ->
      Fmt.pf ppf "%s:%d: %s (%d alloc site(s), %d poly-compare(s))%s@."
        n.Graph.file (node_line n) n.Graph.id
        (List.length (alloc_sites ctx n))
        (List.length n.Graph.polys)
        (if List.mem n.Graph.id ctx.roots then " [root]" else ""))
    (List.sort
       (fun (a : Graph.node) b ->
         compare (a.Graph.file, node_line a, a.Graph.id)
           (b.Graph.file, node_line b, b.Graph.id))
       ctx.hot)
