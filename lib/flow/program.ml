open Dbtree_lint

type unit_info = {
  name : string;
  file : string;
  source : string;
  structure : Parsetree.structure;
}

type t = { units : unit_info list }

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let of_source ~file source =
  {
    name = module_name_of_file file;
    file;
    source;
    structure = Srcfile.parse ~file source;
  }

let of_sources srcs =
  { units = List.map (fun (file, src) -> of_source ~file src) srcs }

let load paths =
  let files = Lint.collect_files paths in
  let errors = ref [] in
  let units =
    List.filter_map
      (fun file ->
        match of_source ~file (Srcfile.read_file file) with
        | u -> Some u
        | exception exn ->
          errors := (file, Fmt.str "%a" Fmt.exn exn) :: !errors;
          None)
      files
  in
  ({ units }, List.rev !errors)

let find t name = List.find_opt (fun u -> u.name = name) t.units
let find_file t file = List.find_opt (fun u -> u.file = file) t.units
let unit_names t = List.map (fun u -> u.name) t.units
