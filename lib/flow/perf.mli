(** dbperf: whole-program hot-path cost rules over the {!Graph} call
    graph.

    The hot set is the call-graph closure from the hot roots: every
    handler registered with [Sim.register_handler], the [Sim.set_probe]
    callback (closures handed inline or through a local binding are cut
    into pseudo-nodes), the event-loop core and wheel drain, the
    telemetry/stats/series/sketch hot hooks, and every binding carrying
    a [dbperf: hot -- why] annotation.  The rules check nothing in the
    hot set allocates (without a justified [dbperf: alloc-ok -- why] on
    the site) or performs a polymorphic comparison, and that every
    annotation is attached and justified. *)

type annot = { an_line : int; an_keyword : string; an_why : string }

val scan_annots : string -> annot list
(** Every [hot]/[alloc-ok] annotation in a source, with its
    justification (empty when the ' -- why' part is missing). *)

val builtin_roots : string list
(** The built-in hot-root ids, intersected with the graph at analysis
    time; the [Gc.minor_words]-proven telemetry hooks are all here. *)

val hot_root_ids : Program.t -> Graph.t -> string list
(** Built-in roots present in the graph, plus every id handed to
    [Sim.register_handler]/[Sim.set_probe], plus annotated bindings. *)

type ctx = {
  prog : Program.t;
  graph : Graph.t;
  roots : string list;
  hot : Graph.node list;  (** the hot closure, deduplicated *)
  annots : (string * annot list) list;  (** per-file annotation scan *)
}

val make_ctx : Program.t -> ctx

val alloc_sites : ctx -> Graph.node -> (string * Location.t) list
(** A node's allocation sites: recorded allocation-shaped expressions
    plus partial applications of resolved callees (arity table). *)

type rule = {
  name : string;
  doc : string;
  check : ctx -> Dbtree_lint.Rule.violation list;
}

val all_rules : rule list
val rule_names : string list
val find_rule : string -> rule option

type report = {
  violations : Dbtree_lint.Rule.violation list;
      (** sorted by file/line/col/rule *)
  suppressed : int;
  files : int;
}

val analyze : ?rules:rule list -> Program.t -> report
(** Build the graph, compute the hot set, run the rules, apply
    [dbperf: allow] suppressions (same grammar as dblint's, under the
    [dbperf] marker), and surface typoed allow comments as
    [unknown-rule] violations. *)

val pp_hot : Format.formatter -> Program.t -> unit
(** The [--hot] audit view: one line per hot-set member with its
    allocation-site and poly-compare counts, roots flagged. *)
