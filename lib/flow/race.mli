(** dbrace: whole-program domain-safety rules over the {!Graph} call
    graph.

    Pass 1 inventories toplevel mutable state (refs, arrays, hash
    tables, bytes, buffers, Atomic cells, and module-level values whose
    record fields are assigned).  Pass 2 computes par-reachability: the
    call-graph closure from every function handed to
    [Par.map]/[Par.run_cells]/[Sim.register_handler].  The rules check
    the two sets only meet through Atomic operations or a justified
    [dbrace: domain-local -- why] / [dbrace: guarded -- why] annotation
    on the binding. *)

type kind =
  | K_ref
  | K_array
  | K_hashtbl
  | K_bytes
  | K_buffer
  | K_atomic
  | K_mutex
  | K_record

val kind_name : kind -> string

type global = {
  g_id : string;  (** node id, e.g. ["Obs.registry"] *)
  g_unit : string;
  g_file : string;
  g_line : int;
  g_kind : kind;
  g_allow : (string * string) option;
      (** binding-site annotation as [(keyword, justification)];
          an empty justification is itself reported *)
}

val inventory : Program.t -> Graph.t -> global list
(** The pass-1 result, in unit order then source order; [K_record]
    entries (setfield targets with no recognised maker) come last. *)

type ctx = {
  prog : Program.t;
  graph : Graph.t;
  globals : global list;
  reachable : Graph.node list;  (** the par-reachable closure *)
}

type rule = { name : string; doc : string; check : ctx -> Dbtree_lint.Rule.violation list }

val all_rules : rule list
val rule_names : string list
val find_rule : string -> rule option

type report = {
  violations : Dbtree_lint.Rule.violation list;  (** sorted by file/line/col/rule *)
  suppressed : int;
  files : int;
}

val analyze : ?rules:rule list -> Program.t -> report
(** Build the graph, run the rules, apply [dbrace: allow] suppressions
    (same grammar as dblint's, under the [dbrace] marker), and surface
    typoed allow comments as [unknown-rule] violations. *)

val pp_inventory : Format.formatter -> Program.t -> unit
(** The [--inventory] audit view: one line per toplevel mutable global,
    flagged [par-reachable] when any worker-reachable function touches
    it and with its annotation state when one is present. *)
