(* Whole-program extraction: one pass over every parsed unit builds
   - a call graph of top-level (and module-nested) functions,
   - per-node protocol facts: which [Msg.t] constructors the node
     builds, which [Obs] event kinds it emits at an emit site, whether
     it touches the AAS machinery, whether it reads a primary-copy
     gate, and where it constructs an initial-update reply,
   - the handler dispatch of each protocol kernel, split into one
     pseudo-node per arm (the dispatch [match] in [handle] is the cut
     point: [handle] itself gets no outgoing edges, so reachability
     from one arm never leaks through re-entrant dispatch like the
     [Batch] arm),
   - every interned [Stats.counter]/[Stats.hist] creation, every
     literal-named [Series] registration (cell/gauge/counter), and a
     global tally of identifier/field mentions to pair them against.

   Everything is syntactic (no typing pass), like dblint: the rules
   compensate by scoping to the kernel unit and erring silent. *)

open Dbtree_lint

type access_kind =
  | Deref  (** [!x] *)
  | Assign  (** [x := e], [incr x], a mutating stdlib call on [x] *)
  | Setfield  (** [x.f <- e] *)
  | Atomic_op of string  (** [Atomic.op x ...] *)
  | Use  (** any other mention: [x] passed around or aliased *)

type node = {
  id : string;
  unit_name : string;
  file : string;
  loc : Location.t;
  mutable calls : string list;
  mutable constructs : (string * Location.t) list;
  mutable emits : (string * Location.t) list;
  mutable reply_sites : Location.t list;
  mutable pc_gates : Location.t list;
  mutable aas_marked : bool;
  mutable accesses : (string * access_kind * Location.t) list;
  mutable par_roots : string list;
  mutable allocs : (string * Location.t) list;
  mutable polys : (string * Location.t) list;
  mutable apps : (string * int * Location.t) list;
  mutable hot_roots : string list;
}

type arm = {
  arm_constructors : (string * Location.t) list;
  arm_node : node;
  arm_rejecting : bool;
  arm_line : int;
}

type kernel = {
  k_unit : string;
  k_file : string;
  k_arms : arm list;
}

type counter_def = {
  cd_key : string;
      (** record label or let-bound name holding the handle; [""] for
          handle-free registrations *)
  cd_name : string;  (** interned metric name *)
  cd_kind : [ `Counter | `Hist | `Cell | `Gauge | `Scounter ];
  cd_unit : string;
  cd_file : string;
  cd_loc : Location.t;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  node_order : string list;
  kernels : kernel list;
  counters : counter_def list;
  uses : (string, int) Hashtbl.t;
  hot_subnodes : node list;
  arities : (string, int) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let last_comp lid =
  match Rule.lident_components (Rule.strip_stdlib lid) with
  | [] -> ""
  | comps -> List.nth comps (List.length comps - 1)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let is_lower_ident s = s <> "" && s.[0] >= 'a' && s.[0] <= 'z'
let is_upper_ident s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'

(* Search and scan replies are exempt from the AAS-discipline rule
   (Theorem 1 blocks only the initial updates); the kernels build those
   replies inline under a [Search]/[Scan] dispatch arm. *)
let exempt_ctors = [ "Search"; "Scan"; "K_search"; "K_scan" ]

let pattern_ctors (p : Parsetree.pattern) =
  let acc = ref [] in
  let pat (it : Ast_iterator.iterator) (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; loc }, _) ->
      let name = last_comp txt in
      if is_upper_ident name then acc := (txt, name, loc) :: !acc
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.pat it p;
  List.rev !acc

let pattern_mentions_exempt p =
  List.exists (fun (_, name, _) -> List.mem name exempt_ctors) (pattern_ctors p)

let msg_pattern_ctors p =
  List.filter_map
    (fun (lid, name, loc) ->
      if Rule.mentions_module lid "Msg" then Some (name, loc) else None)
    (pattern_ctors p)

(* A rejecting arm refuses the kind at runtime instead of handling it:
   its body is a direct failwith/invalid_arg application. *)
let arm_rejects (body : Parsetree.expression) =
  let rec strip (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_constraint (e, _) -> strip e
    | _ -> e
  in
  match (strip body).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match last_comp txt with
    | "failwith" | "invalid_arg" -> true
    | _ -> false)
  | _ -> false

let emit_callees = [ "event"; "emit"; "emit_here" ]

(* ------------------------------------------------------------------ *)
(* Per-unit binding discovery                                          *)

(* Collect value bindings recursively through plain/functor module
   structures, so kernels wrapped in functors (Net.Make style) and
   local modules still contribute nodes.  First binding of a name wins
   the unqualified node id; later shadows are skipped (deterministic,
   and shadowing of top-level names does not occur in this codebase). *)
let collect_bindings structure =
  let acc = ref [] and aliases = ref [] in
  let rec str_item (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } ->
            if not (List.mem_assoc txt !acc) then
              acc := !acc @ [ (txt, vb.pvb_expr) ]
          | _ -> ())
        vbs
    | Pstr_module mb -> module_binding mb
    | Pstr_recmodule mbs -> List.iter module_binding mbs
    | _ -> ()
  and module_binding (mb : Parsetree.module_binding) =
    (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
    | Some name, Pmod_ident { txt; _ } ->
      aliases := (name, last_comp txt) :: !aliases
    | _ -> ());
    module_expr mb.pmb_expr
  and module_expr (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure items -> List.iter str_item items
    | Pmod_functor (_, body) -> module_expr body
    | Pmod_constraint (me, _) -> module_expr me
    | _ -> ()
  in
  List.iter str_item structure;
  (!acc, !aliases)

(* ------------------------------------------------------------------ *)
(* Node body walk                                                      *)

type env = {
  e_unit : string;
  e_file : string;
  e_top_names : string list;
  e_aliases : (string * string) list;
  e_unit_names : string list;
  e_uses : (string, int) Hashtbl.t;
  e_counters : counter_def list ref;
}

let count_use env name =
  Hashtbl.replace env.e_uses name
    (1 + Option.value (Hashtbl.find_opt env.e_uses name) ~default:0)

(* Resolve a value path to a node id: a bare name against this unit's
   top-level bindings, a qualified one against the program's units
   (through module aliases).  Shared by the call graph and the
   global-access facts dbrace layers on top. *)
let resolve_target env lid =
  (* An explicitly [Stdlib.]-qualified name is never a repo binding, even
     when a same-unit binding shadows the stdlib one ([Stats.incr]). *)
  if List.mem "Stdlib" (Rule.lident_components lid) then None
  else
  let comps = Rule.lident_components (Rule.strip_stdlib lid) in
  match comps with
  | [] -> None
  | [ f ] ->
    if List.mem f env.e_top_names then Some (env.e_unit ^ "." ^ f) else None
  | comps ->
    let n = List.length comps in
    let f = List.nth comps (n - 1) in
    let m = List.nth comps (n - 2) in
    let m =
      match List.assoc_opt m env.e_aliases with Some m' -> m' | None -> m
    in
    if List.mem m env.e_unit_names && is_lower_ident f then Some (m ^ "." ^ f)
    else None

let resolve_call env node lid =
  match resolve_target env lid with
  | Some id -> if not (List.mem id node.calls) then node.calls <- node.calls @ [ id ]
  | None -> ()

let string_lit (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* [Stats.counter bag] / [Stats.hist bag]: a partially applied maker. *)
let maker_kind (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, arg) ])
    when string_lit arg = None -> (
    match Rule.lident_components (Rule.strip_stdlib txt) with
    | [ "Stats"; "counter" ] -> Some `Counter
    | [ "Stats"; "hist" ] -> Some `Hist
    | _ -> None)
  | _ -> None

(* Is [e] the creation of a named metric handle?  A full literal call
   [Stats.counter bag "name"] / [Series.cell reg "name"] or an
   application of an in-scope maker [c "name"]. *)
let creation ~makers (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
    let lits = List.filter_map (fun (_, a) -> string_lit a) args in
    match (Rule.lident_components (Rule.strip_stdlib txt), lits) with
    | [ "Stats"; "counter" ], [ name ] when List.length args = 2 ->
      Some (`Counter, name)
    | [ "Stats"; "hist" ], [ name ] when List.length args = 2 ->
      Some (`Hist, name)
    | [ "Series"; "cell" ], [ name ] when List.length args = 2 ->
      Some (`Cell, name)
    | [ v ], [ name ] when List.length args = 1 -> (
      match List.assoc_opt v makers with
      | Some kind -> Some (kind, name)
      | None -> None)
    | _ -> None)
  | _ -> None

(* A handle-free [Series] registration: [Series.gauge reg "name" f] or
   [Series.counter reg "name" r].  Only literal names register a
   definition — computed names (the per-processor [Fmt.str] gauges) have
   nothing for the lifecycle rule to check.  [Series.counter] shares a
   head with [Stats.counter]; the argument count separates them
   (3 arguments against 2). *)
let series_registration (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when List.length args = 3 -> (
    let lits = List.filter_map (fun (_, a) -> string_lit a) args in
    match (Rule.lident_components (Rule.strip_stdlib txt), lits) with
    | [ "Series"; "gauge" ], [ name ] -> Some (`Gauge, name)
    | [ "Series"; "counter" ], [ name ] -> Some (`Scounter, name)
    | _ -> None)
  | _ -> None

(* Calls whose first unlabelled argument is mutated in place: enough to
   classify [Hashtbl.add tbl ...] on a toplevel table as a write rather
   than a generic use.  (A global in any *other* argument position of
   such a call still surfaces as a [Use] — dbrace treats both as shared
   access; only the rule attribution differs.) *)
let mutating_first_arg lid =
  match Rule.lident_components (Rule.strip_stdlib lid) with
  | [ m; f ] -> (
    match m with
    | "Hashtbl" ->
      List.mem f [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]
    | "Array" -> List.mem f [ "set"; "fill"; "unsafe_set"; "blit" ]
    | "Bytes" -> List.mem f [ "set"; "fill"; "unsafe_set"; "blit" ]
    | "Buffer" ->
      List.mem f
        [ "add_string"; "add_char"; "add_bytes"; "add_substring";
          "add_buffer"; "clear"; "reset"; "truncate" ]
    | "Queue" -> List.mem f [ "push"; "add"; "pop"; "take"; "clear"; "transfer" ]
    | _ -> false)
  | _ -> false

(* Which unlabelled argument of a call becomes a domain-worker entry
   point: the function handed to [Par.map]/[Par.run_cells], and the
   handler registered with [Sim.register_handler] (handlers run inside
   [Sim.run], which the parallel cells drive). *)
let par_fn_index lid =
  let f = last_comp lid in
  if Rule.mentions_module lid "Par" && (f = "map" || f = "run_cells") then
    Some 0
  else if Rule.mentions_module lid "Sim" && f = "register_handler" then Some 1
  else None

(* ------------------------------------------------------------------ *)
(* Allocation- and boxing-shaped expressions (dbperf's raw material)    *)

let rec skip_constraint (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> skip_constraint e
  | _ -> e

(* Stdlib entry points that build a fresh block per call.  Syntactic and
   deliberately shallow: only the makers/mappers that show up in this
   codebase, so a hot-set hit is almost always a real allocation. *)
let alloc_call comps =
  match comps with
  | [ "ref" ] -> Some "ref cell"
  | [ "^" ] -> Some "string append (^)"
  | [ "@" ] -> Some "list append (@)"
  | [ ("failwith" | "invalid_arg") ] -> Some "exception construction"
  | [ "Fmt"; ("str" | "strf" | "failwith" | "invalid_arg" | "error_msg") ] ->
    Some "Fmt string build"
  | [ "Printf"; "sprintf" ] | [ "Format"; ("sprintf" | "asprintf") ] ->
    Some "sprintf string build"
  | [ "String"; ("concat" | "sub" | "make" | "init" | "map" | "cat"
                | "split_on_char" | "of_bytes" | "to_bytes" | "uppercase_ascii"
                | "lowercase_ascii" | "capitalize_ascii") ] ->
    Some "String build"
  | [ "Bytes"; ("create" | "make" | "sub" | "copy" | "cat" | "extend"
               | "of_string" | "to_string") ] ->
    Some "Bytes build"
  | [ "Array"; ("make" | "init" | "copy" | "append" | "sub" | "concat"
               | "of_list" | "to_list" | "map" | "mapi" | "make_matrix"
               | "create_float" | "of_seq" | "to_seq") ] ->
    Some "Array build"
  | [ "List"; ("map" | "mapi" | "init" | "rev" | "append" | "rev_append"
              | "concat" | "concat_map" | "flatten" | "filter" | "filter_map"
              | "partition" | "sort" | "sort_uniq" | "stable_sort"
              | "fast_sort" | "merge" | "split" | "combine" | "cons"
              | "of_seq" | "to_seq") ] ->
    Some "List build"
  | [ "Hashtbl"; ("create" | "copy" | "to_seq" | "to_seq_keys"
                 | "to_seq_values") ] ->
    Some "Hashtbl build"
  | [ "Buffer"; ("create" | "contents" | "to_bytes" | "sub") ] ->
    Some "Buffer build"
  | [ "Queue"; ("create" | "copy" | "to_seq") ] -> Some "Queue build"
  | _ -> None

(* Syntactic evidence an argument of [=]/[<>]/[min]/[max] is a boxed
   value, making the comparison a polymorphic C call.  Bare idents stay
   silent (their type is unknowable without inference), so hot int
   compares like [pid = pc] never fire; constant constructors other than
   [true]/[false]/[()] do fire — [x = None] and [disc = Sync] both walk
   the generic equality. *)
let looks_boxed (e : Parsetree.expression) =
  match (skip_constraint e).pexp_desc with
  | Pexp_constant (Pconst_string _ | Pconst_float _) -> true
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_variant _ -> true
  | Pexp_construct ({ txt; _ }, arg) -> (
    match (last_comp txt, arg) with
    | ("true" | "false" | "()"), _ -> false
    | _, _ -> true)
  | _ -> false

(* Leading parameter count of a binding (labelled params count, optional
   ones do not — an omitted optional argument still applies totally), so
   a cross-unit application with fewer arguments is a partial
   application: a closure allocated at the call site. *)
let arity_of (expr : Parsetree.expression) =
  let rec go n (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (l, _, _, body) ->
      let n = match l with Asttypes.Optional _ -> n | _ -> n + 1 in
      go n body
    | Pexp_newtype (_, body) -> go n body
    | Pexp_function _ -> n + 1
    | _ -> n
  in
  go 0 expr

(* [let x = ref e in body] where [x] is only ever dereferenced,
   assigned, or incr/decr'd is the compiler's own criterion for
   eliminating the cell ([Simplif.eliminate_ref]): the ref becomes a
   mutable local variable and never reaches the heap, so dbperf must
   not charge the site as an allocation. *)
let ref_stays_local x body =
  let escaped = ref false in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply
        ( {
            pexp_desc =
              Pexp_ident { txt = Longident.Lident ("!" | "incr" | "decr"); _ };
            _;
          },
          [
            ( Asttypes.Nolabel,
              { pexp_desc = Pexp_ident { txt = Longident.Lident y; _ }; _ } );
          ] )
      when y = x ->
      ()
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
          [
            ( Asttypes.Nolabel,
              { pexp_desc = Pexp_ident { txt = Longident.Lident y; _ }; _ } );
            (Asttypes.Nolabel, rhs);
          ] )
      when y = x ->
      it.expr it rhs
    | Pexp_ident { txt = Longident.Lident y; _ } when y = x -> escaped := true
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  not !escaped

(* Which unlabelled argument of a call becomes a hot-path entry point
   for dbperf: the handler registered with [Sim.register_handler] runs
   once per simulated event, and the [Sim.set_probe] callback (its last
   unlabelled argument) runs on every scrape boundary. *)
let hot_fn_slot lid ~nolabel_count =
  let f = last_comp lid in
  if Rule.mentions_module lid "Sim" && f = "register_handler" then Some 1
  else if Rule.mentions_module lid "Sim" && f = "set_probe" then
    Some (nolabel_count - 1)
  else None

let walk_node env (node : node) (expr0 : Parsetree.expression)
    ~(skip_cases : Parsetree.case list option)
    ~(on_hot_fn : (string -> Parsetree.expression -> string) option) =
  let exempt = ref 0 in
  let makers = ref [] in
  (* Identifier occurrences already folded into a specialised access
     ([!x], [x := e], [Atomic.get x], ...) must not re-surface as a
     generic [Use] when the iterator descends into the argument. *)
  let claimed : (Location.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let add_access id kind loc =
    node.accesses <- node.accesses @ [ (id, kind, loc) ]
  in
  let claim_ident kind (a : Parsetree.expression) =
    match a.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      Hashtbl.replace claimed a.pexp_loc ();
      match resolve_target env txt with
      | Some id -> add_access id kind a.pexp_loc
      | None -> ())
    | _ -> ()
  in
  let add_par_root id =
    if not (List.mem id node.par_roots) then
      node.par_roots <- node.par_roots @ [ id ]
  in
  (* The binding's own leading [fun] chain is the function itself, not a
     closure allocated per call; every [fun] below it is. *)
  let spine : (Location.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec mark_spine (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) ->
      Hashtbl.replace spine e.pexp_loc ();
      mark_spine body
    | Pexp_function _ -> Hashtbl.replace spine e.pexp_loc ()
    | _ -> ()
  in
  mark_spine expr0;
  (* A tuple immediately under a multi-argument constructor is that
     constructor's argument block, not a second allocation. *)
  let alloc_claimed : (Location.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let add_alloc desc loc =
    if not (Hashtbl.mem alloc_claimed loc) then
      node.allocs <- node.allocs @ [ (desc, loc) ]
  in
  let claim_arg (arg : Parsetree.expression) =
    match (skip_constraint arg).pexp_desc with
    | Pexp_tuple _ -> Hashtbl.replace alloc_claimed (skip_constraint arg).pexp_loc ()
    | _ -> ()
  in
  (* [ref] cells [Simplif.eliminate_ref] turns into mutable variables;
     see [ref_stays_local]. *)
  let safe_refs : (Location.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let add_poly desc loc = node.polys <- node.polys @ [ (desc, loc) ] in
  let local_fns = ref [] in
  let add_hot_root id =
    if not (List.mem id node.hot_roots) then
      node.hot_roots <- node.hot_roots @ [ id ]
  in
  let add_counter ~key ~name kind loc =
    env.e_counters :=
      !(env.e_counters)
      @ [
          {
            cd_key = key;
            cd_name = name;
            cd_kind = kind;
            cd_unit = env.e_unit;
            cd_file = env.e_file;
            cd_loc = loc;
          };
        ]
  in
  let mark_aas_label lbl =
    if lbl = "splitting" || contains_sub lbl "aas" then node.aas_marked <- true
  in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_match (scrut, cases)
      when (match skip_cases with Some sc -> sc == cases | None -> false) ->
      (* The kernel dispatch: the arms are separate pseudo-nodes, so
         only the scrutinee belongs to [handle] itself. *)
      it.expr it scrut
    | _ ->
      (* Allocation- and boxing-shaped facts, recorded on every node;
         dbperf reports only the ones that land in the hot set. *)
      (match e.pexp_desc with
      | Pexp_fun _ | Pexp_newtype _ | Pexp_function _ ->
        if not (Hashtbl.mem spine e.pexp_loc) then begin
          add_alloc "closure" e.pexp_loc;
          (* A nested [fun x -> fun y -> ...] chain is one closure, not
             one allocation per parameter. *)
          let rec claim_chain (e : Parsetree.expression) =
            match e.pexp_desc with
            | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> (
              match body.pexp_desc with
              | Pexp_fun _ | Pexp_newtype _ | Pexp_function _ ->
                Hashtbl.replace alloc_claimed body.pexp_loc ();
                claim_chain body
              | _ -> ())
            | _ -> ()
          in
          claim_chain e
        end
      | Pexp_tuple _ -> add_alloc "tuple" e.pexp_loc
      | Pexp_record _ -> add_alloc "record" e.pexp_loc
      | Pexp_array _ -> add_alloc "array literal" e.pexp_loc
      | Pexp_lazy _ -> add_alloc "lazy block" e.pexp_loc
      | Pexp_construct ({ txt; _ }, Some arg) ->
        let name = last_comp txt in
        if is_upper_ident name || name = "::" then begin
          add_alloc
            (if name = "::" then "list cons (::)"
             else Fmt.str "constructor %s" name)
            e.pexp_loc;
          claim_arg arg
        end
      | Pexp_variant (_, Some arg) ->
        add_alloc "polymorphic variant" e.pexp_loc;
        claim_arg arg
      | Pexp_let (Asttypes.Nonrecursive, vbs, body) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match
              (vb.pvb_pat.ppat_desc, (skip_constraint vb.pvb_expr).pexp_desc)
            with
            | ( Ppat_var { txt = x; _ },
                Pexp_apply
                  ( {
                      pexp_desc =
                        Pexp_ident { txt = Longident.Lident "ref"; _ };
                      _;
                    },
                    [ (Asttypes.Nolabel, _) ] ) )
              when ref_stays_local x body ->
              Hashtbl.replace safe_refs (skip_constraint vb.pvb_expr).pexp_loc
                ()
            | _ -> ())
          vbs
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        let comps = Rule.lident_components (Rule.strip_stdlib txt) in
        (match alloc_call comps with
        | Some desc ->
          if not (Hashtbl.mem safe_refs e.pexp_loc) then
            add_alloc desc e.pexp_loc
        | None -> ());
        let nolabel =
          List.filter_map
            (fun ((l : Asttypes.arg_label), a) ->
              match l with Asttypes.Nolabel -> Some a | _ -> None)
            args
        in
        (match (comps, nolabel) with
        | [ "compare" ], _ :: _ ->
          add_poly "polymorphic compare" e.pexp_loc
        | [ "Hashtbl"; "hash" ], _ :: _ ->
          add_poly "Hashtbl.hash" e.pexp_loc
        | [ (("=" | "<>" | "min" | "max") as op) ], [ a; b ]
          when looks_boxed a || looks_boxed b ->
          add_poly
            (Fmt.str "polymorphic %s at a boxed-looking type" op)
            e.pexp_loc
        | _ -> ());
        (* Application sites of resolved top-level functions: paired
           against the arity table to flag partial applications. *)
        match resolve_target env txt with
        | Some id ->
          let n_args =
            List.length
              (List.filter
                 (fun ((l : Asttypes.arg_label), _) ->
                   match l with Asttypes.Optional _ -> false | _ -> true)
                 args)
          in
          node.apps <- node.apps @ [ (id, n_args, e.pexp_loc) ]
        | None -> ())
      | _ -> ());
      (match e.pexp_desc with
      | Pexp_ident { txt; _ } ->
        resolve_call env node txt;
        if not (Hashtbl.mem claimed e.pexp_loc) then (
          match resolve_target env txt with
          | Some id -> add_access id Use e.pexp_loc
          | None -> ());
        (match txt with
        | Longident.Lident x ->
          count_use env x;
          if contains_sub x "aas" then node.aas_marked <- true
        | _ ->
          let lbl = last_comp txt in
          if is_lower_ident lbl && contains_sub lbl "aas" then
            node.aas_marked <- true)
      | Pexp_construct ({ txt; _ }, _) when Rule.mentions_module txt "Msg" ->
        let name = last_comp txt in
        if is_upper_ident name then begin
          node.constructs <- node.constructs @ [ (name, e.pexp_loc) ];
          if name = "Op_done" && !exempt = 0 then
            node.reply_sites <- node.reply_sites @ [ e.pexp_loc ]
        end
      | Pexp_field (_, { txt; _ }) ->
        let lbl = last_comp txt in
        count_use env lbl;
        if lbl = "pc" then node.pc_gates <- node.pc_gates @ [ e.pexp_loc ];
        mark_aas_label lbl
      | Pexp_setfield (recv, { txt; _ }, _) ->
        claim_ident Setfield recv;
        mark_aas_label (last_comp txt)
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        let nolabel =
          List.filter_map
            (fun ((l : Asttypes.arg_label), a) ->
              match l with Asttypes.Nolabel -> Some a | _ -> None)
            args
        in
        (match series_registration e with
        | Some (kind, name) -> add_counter ~key:"" ~name kind e.pexp_loc
        | None -> ());
        (match (Rule.lident_components (Rule.strip_stdlib txt), nolabel) with
        | [ "!" ], [ a ] -> claim_ident Deref a
        | [ ":=" ], a :: _ -> claim_ident Assign a
        | [ ("incr" | "decr") ], [ a ] -> claim_ident Assign a
        | [ "Atomic"; op ], a :: _ -> claim_ident (Atomic_op op) a
        | _, a :: _ when mutating_first_arg txt -> claim_ident Assign a
        | _ -> ());
        (match par_fn_index txt with
        | Some idx -> (
          match List.nth_opt nolabel idx with
          | Some { pexp_desc = Pexp_ident { txt = flid; _ }; _ } ->
            Option.iter add_par_root (resolve_target env flid)
          | Some { pexp_desc = Pexp_fun _ | Pexp_function _; _ } ->
            (* An inline worker closure: its body (and accesses) belong
               to this node, so the node itself becomes a worker entry.
               Conservative — the node's sequential code is swept in
               too; name the worker to scope the analysis tightly. *)
            add_par_root node.id
          | _ -> ())
        | None -> ());
        (match hot_fn_slot txt ~nolabel_count:(List.length nolabel) with
        | Some idx -> (
          match List.nth_opt nolabel idx with
          | Some { pexp_desc = Pexp_ident { txt = flid; _ }; _ } -> (
            match resolve_target env flid with
            | Some id -> add_hot_root id
            | None -> (
              (* A locally bound callback ([let rec cb now = ...]): cut
                 its body into a hot subnode so the hot set covers the
                 callback without sweeping in this whole function. *)
              match flid with
              | Longident.Lident name -> (
                match (List.assoc_opt name !local_fns, on_hot_fn) with
                | Some fexpr, Some cut -> add_hot_root (cut name fexpr)
                | _ -> ())
              | _ -> ()))
          | Some ({ pexp_desc = Pexp_fun _ | Pexp_function _; _ } as fexpr)
            -> (
            match on_hot_fn with
            | Some cut ->
              add_hot_root
                (cut
                   (Fmt.str "h%d"
                      fexpr.pexp_loc.Location.loc_start.Lexing.pos_lnum)
                   fexpr)
            | None -> ())
          | _ -> ())
        | None -> ());
        (if List.mem (last_comp txt) emit_callees then
           List.iter
             (fun ((_, a) : _ * Parsetree.expression) ->
               match a.pexp_desc with
               | Pexp_construct ({ txt = c; _ }, _)
                 when Rule.mentions_module c "Event" ->
                 node.emits <- node.emits @ [ (last_comp c, a.pexp_loc) ]
               | _ -> ())
             args);
        if Rule.mentions_module txt "Msg" then begin
          (* Smart constructors ([Msg.batch]) build a kind without a
             literal constructor application. *)
          let f = last_comp txt in
          if is_lower_ident f then
            node.constructs <-
              node.constructs @ [ (String.capitalize_ascii f, e.pexp_loc) ]
        end
      | Pexp_let (_, vbs, _) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = v; _ } -> (
              (match vb.pvb_expr.pexp_desc with
              | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ ->
                local_fns := (v, vb.pvb_expr) :: !local_fns
              | _ -> ());
              match maker_kind vb.pvb_expr with
              | Some kind -> makers := (v, kind) :: !makers
              | None -> (
                match creation ~makers:!makers vb.pvb_expr with
                | Some (kind, name) ->
                  add_counter ~key:v ~name kind vb.pvb_expr.pexp_loc
                | None -> ()))
            | _ -> ())
          vbs
      | Pexp_record (fields, _) ->
        List.iter
          (fun (({ txt; _ }, value) : _ Asttypes.loc * Parsetree.expression)
             ->
            match creation ~makers:!makers value with
            | Some (kind, name) ->
              add_counter ~key:(last_comp txt) ~name kind value.pexp_loc
            | None -> ())
          fields
      | _ -> ());
      Ast_iterator.default_iterator.expr it e
  in
  let case (it : Ast_iterator.iterator) (c : Parsetree.case) =
    it.pat it c.pc_lhs;
    Option.iter (it.expr it) c.pc_guard;
    if pattern_mentions_exempt c.pc_lhs then begin
      incr exempt;
      it.expr it c.pc_rhs;
      decr exempt
    end
    else it.expr it c.pc_rhs
  in
  let it = { Ast_iterator.default_iterator with expr; case } in
  it.expr it expr0

(* ------------------------------------------------------------------ *)
(* Kernel dispatch discovery                                           *)

let rec find_dispatch (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> find_dispatch body
  | Pexp_newtype (_, body) -> find_dispatch body
  | Pexp_let (_, _, body) -> find_dispatch body
  | Pexp_sequence (_, body) -> find_dispatch body
  | Pexp_match (_, cases)
    when List.exists (fun c -> msg_pattern_ctors c.Parsetree.pc_lhs <> []) cases
    -> Some cases
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Build                                                               *)

let build (prog : Program.t) =
  let nodes = Hashtbl.create 256 in
  let node_order = ref [] in
  let kernels = ref [] in
  let counters = ref [] in
  let uses = Hashtbl.create 1024 in
  let hot_subnodes = ref [] in
  let arities = Hashtbl.create 256 in
  let unit_names = Program.unit_names prog in
  let fresh_node ?(register = true) ~env ~id loc =
    let n =
      {
        id;
        unit_name = env.e_unit;
        file = env.e_file;
        loc;
        calls = [];
        constructs = [];
        emits = [];
        reply_sites = [];
        pc_gates = [];
        aas_marked = false;
        accesses = [];
        par_roots = [];
        allocs = [];
        polys = [];
        apps = [];
        hot_roots = [];
      }
    in
    if register && not (Hashtbl.mem nodes id) then begin
      Hashtbl.add nodes id n;
      node_order := id :: !node_order
    end;
    n
  in
  (* Hot subnodes: closures handed to [Sim.register_handler] /
     [Sim.set_probe] inline or through a local binding, walked into
     pseudo-nodes kept OUT of the main table — the dbflow/dbrace view of
     the enclosing function is unchanged; only dbperf's hot-set
     computation sees them.  The throwaway uses/counters env keeps the
     double walk from double-counting dbflow's mention tallies. *)
  let sub_ids = Hashtbl.create 16 in
  let rec cut_hot env base_id name fexpr =
    let id = base_id ^ "#" ^ name in
    if not (Hashtbl.mem sub_ids id) then begin
      Hashtbl.add sub_ids id ();
      let env' =
        { env with e_uses = Hashtbl.create 8; e_counters = ref [] }
      in
      let sub = fresh_node ~register:false ~env:env' ~id fexpr.Parsetree.pexp_loc in
      hot_subnodes := sub :: !hot_subnodes;
      walk_node env' sub fexpr ~skip_cases:None
        ~on_hot_fn:(Some (cut_hot env' id))
    end;
    id
  in
  List.iter
    (fun (u : Program.unit_info) ->
      let bindings, aliases = collect_bindings u.structure in
      let env =
        {
          e_unit = u.name;
          e_file = u.file;
          e_top_names = List.map fst bindings;
          e_aliases = aliases;
          e_unit_names = unit_names;
          e_uses = uses;
          e_counters = counters;
        }
      in
      List.iter
        (fun (name, (expr : Parsetree.expression)) ->
          let id = u.name ^ "." ^ name in
          Hashtbl.replace arities id (arity_of expr);
          let dispatch = if name = "handle" then find_dispatch expr else None in
          let node = fresh_node ~env ~id expr.pexp_loc in
          walk_node env node expr ~skip_cases:dispatch
            ~on_hot_fn:(Some (cut_hot env id));
          match dispatch with
          | None -> ()
          | Some cases ->
            let arms =
              List.filter_map
                (fun (c : Parsetree.case) ->
                  match msg_pattern_ctors c.pc_lhs with
                  | [] -> None
                  | (first, _) :: _ as ctors ->
                    let arm_id = id ^ "#" ^ first in
                    let arm_node =
                      fresh_node ~env ~id:arm_id c.pc_lhs.ppat_loc
                    in
                    walk_node env arm_node c.pc_rhs ~skip_cases:None
                      ~on_hot_fn:(Some (cut_hot env arm_id));
                    Option.iter
                      (fun g ->
                        walk_node env arm_node g ~skip_cases:None
                          ~on_hot_fn:None)
                      c.pc_guard;
                    Some
                      {
                        arm_constructors = ctors;
                        arm_node;
                        arm_rejecting = arm_rejects c.pc_rhs;
                        arm_line =
                          c.pc_lhs.ppat_loc.Location.loc_start.Lexing.pos_lnum;
                      })
                cases
            in
            if arms <> [] then
              kernels :=
                { k_unit = u.name; k_file = u.file; k_arms = arms }
                :: !kernels)
        bindings)
    prog.Program.units;
  {
    nodes;
    node_order = List.rev !node_order;
    kernels = List.rev !kernels;
    counters = !counters;
    uses;
    hot_subnodes = List.rev !hot_subnodes;
    arities;
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let find_node t id = Hashtbl.find_opt t.nodes id

let closure t roots =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec go id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      match find_node t id with
      | None -> ()
      | Some n ->
        order := n :: !order;
        List.iter go n.calls
    end
  in
  List.iter go roots;
  List.rev !order

let nodes_in_order t =
  List.filter_map (fun id -> find_node t id) t.node_order

let unit_nodes t unit_name =
  List.filter (fun n -> n.unit_name = unit_name) (nodes_in_order t)

let use_count t key =
  Option.value (Hashtbl.find_opt t.uses key) ~default:0

let arity t id = Hashtbl.find_opt t.arities id
