(* dbflow rules: graph-level checks over the whole-program view.  Each
   rule mirrors a structural property the paper's correctness argument
   leans on; see LINTS.md for the catalogue with rationale. *)

open Dbtree_lint

type rule = {
  name : string;
  doc : string;
  check : Program.t -> Graph.t -> Rule.violation list;
}

let v ~rule ~file ~(loc : Location.t) msg =
  let pos = loc.Location.loc_start in
  {
    Rule.rule;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message = msg;
  }

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs
  |> List.rev

let node_emits_kind (n : Graph.node) kind =
  List.exists (fun (k, _) -> k = kind) n.Graph.emits

(* ------------------------------------------------------------------ *)
(* send-handle: every kind a kernel sends must have a real handler arm
   in that kernel, and every real arm must correspond to a kind the
   kernel actually sends.  [-warn-error +8] already forces every kind
   to appear in the dispatch, so the runtime hazard hides in the
   *rejecting* arms (failwith): constructing a kind whose arm rejects
   it is a crash wired in at a distance, and a non-rejecting arm for a
   kind nothing constructs is dead protocol surface. *)

let check_send_handle _prog (g : Graph.t) =
  List.concat_map
    (fun (k : Graph.kernel) ->
      let arm_ctors sel =
        List.concat_map
          (fun (a : Graph.arm) ->
            if sel a.arm_rejecting then List.map fst a.arm_constructors else [])
          k.k_arms
      in
      let universe = dedup (arm_ctors (fun _ -> true)) in
      let handled = dedup (arm_ctors (fun r -> not r)) in
      let constructed =
        List.concat_map (fun (n : Graph.node) -> n.constructs)
          (Graph.unit_nodes g k.k_unit)
        |> List.filter (fun (c, _) -> List.mem c universe)
      in
      let constructed_names = dedup (List.map fst constructed) in
      let sent_unhandled =
        List.filter_map
          (fun ctor ->
            if List.mem ctor handled then None
            else
              Option.map
                (fun (_, loc) ->
                  v ~rule:"send-handle" ~file:k.k_file ~loc
                    (Fmt.str
                       "Msg.%s is constructed in %s but its handler arm \
                        rejects it (failwith): add a real handler or stop \
                        sending it"
                       ctor k.k_unit))
                (List.find_opt (fun (c, _) -> c = ctor) constructed))
          universe
      in
      let dead_arms =
        List.concat_map
          (fun (a : Graph.arm) ->
            if a.arm_rejecting then []
            else
              List.filter_map
                (fun (ctor, loc) ->
                  if List.mem ctor constructed_names then None
                  else
                    Some
                      (v ~rule:"send-handle" ~file:k.k_file ~loc
                         (Fmt.str
                            "dead handler arm: Msg.%s is never constructed \
                             in %s — remove the arm or the protocol lost \
                             its sender"
                            ctor k.k_unit)))
                a.arm_constructors)
          k.k_arms
      in
      sent_unhandled @ dead_arms)
    g.kernels

(* ------------------------------------------------------------------ *)
(* aas-discipline: nothing reachable from the Split_start handler may
   construct an initial-update reply (Msg.Op_done outside a
   Search/Scan dispatch arm).  Theorem 1's proof needs the AAS window
   to block exactly the initial updates — searches and relayed updates
   continue — so a reply path reachable from AAS enrolment would let an
   update complete inside the window. *)

let check_aas_discipline _prog (g : Graph.t) =
  List.concat_map
    (fun (k : Graph.kernel) ->
      List.concat_map
        (fun (a : Graph.arm) ->
          if
            a.arm_rejecting
            || not (List.mem_assoc "Split_start" a.arm_constructors)
          then []
          else
            let reach = a.arm_node :: Graph.closure g a.arm_node.calls in
            List.concat_map
              (fun (n : Graph.node) ->
                List.map
                  (fun loc ->
                    v ~rule:"aas-discipline" ~file:n.file ~loc
                      (Fmt.str
                         "initial-update reply (Msg.Op_done) reachable from \
                          the Split_start handler via %s: the AAS window \
                          must block initial updates until release \
                          (Theorem 1); search/scan replies are exempt"
                         n.id))
                  n.reply_sites)
              (dedup reach))
        k.k_arms)
    g.kernels

(* ------------------------------------------------------------------ *)
(* ordering-class: every real handler arm carries a class annotation,
   sync-class kinds are only constructed by code that touches the AAS
   machinery, and lazy-class arms never reach a primary-copy gate in
   their own kernel (a lazy path that branches on [pc] is
   semi-synchronous in disguise). *)

let classes = [ "lazy"; "semi"; "sync" ]

let check_ordering_class (prog : Program.t) (g : Graph.t) =
  let kernel_files = List.map (fun (k : Graph.kernel) -> k.k_file) g.kernels in
  let per_kernel =
    List.concat_map
      (fun (k : Graph.kernel) ->
        let annots =
          match Program.find_file prog k.k_file with
          | Some u -> Annot.scan u.source
          | None -> []
        in
        let used = ref [] in
        let arm_vs =
          List.concat_map
            (fun (a : Graph.arm) ->
              if a.arm_rejecting then []
              else
                let names =
                  String.concat "|" (List.map fst a.arm_constructors)
                in
                match Annot.at annots ~line:a.arm_line with
                | None ->
                  [
                    v ~rule:"ordering-class" ~file:k.k_file ~loc:a.arm_node.loc
                      (Fmt.str
                         "handler arm for Msg.%s has no ordering-class \
                          annotation: add a class comment (lazy, semi or \
                          sync, with a reason) on or above the arm — see \
                          LINTS.md for the marker syntax"
                         names);
                  ]
                | Some ann ->
                  used := ann.Annot.a_line :: !used;
                  if not (List.mem ann.a_class classes) then
                    [
                      v ~rule:"ordering-class" ~file:k.k_file
                        ~loc:a.arm_node.loc
                        (Fmt.str
                           "unknown ordering class %S on the Msg.%s arm \
                            (expected lazy, semi or sync)"
                           ann.a_class names);
                    ]
                  else if ann.a_class = "sync" then
                    List.concat_map
                      (fun (ctor, _) ->
                        List.concat_map
                          (fun (n : Graph.node) ->
                            List.filter_map
                              (fun (c, loc) ->
                                if c = ctor && not n.aas_marked then
                                  Some
                                    (v ~rule:"ordering-class" ~file:n.file
                                       ~loc
                                       (Fmt.str
                                          "Msg.%s is classed sync but %s \
                                           constructs it without touching \
                                           the AAS machinery (splitting \
                                           flag / aas state): synchronous \
                                           kinds exist only inside an AAS \
                                           window"
                                          ctor n.id))
                                else None)
                              n.constructs)
                          (Graph.unit_nodes g k.k_unit))
                      a.arm_constructors
                  else if ann.a_class = "lazy" then
                    let reach =
                      a.arm_node :: Graph.closure g a.arm_node.calls
                    in
                    List.concat_map
                      (fun (n : Graph.node) ->
                        if n.unit_name <> k.k_unit then []
                        else
                          match n.pc_gates with
                          | [] -> []
                          | loc :: _ ->
                            [
                              v ~rule:"ordering-class" ~file:n.file ~loc
                                (Fmt.str
                                   "Msg.%s is classed lazy but reaches a \
                                    primary-copy gate in %s: lazy kinds \
                                    must apply identically at every copy \
                                    (reclass as semi or drop the pc \
                                    branch)"
                                   names n.id);
                            ])
                      (dedup reach)
                  else [])
            k.k_arms
        in
        let stray =
          List.filter_map
            (fun (ann : Annot.entry) ->
              if List.mem ann.a_line !used then None
              else
                Some
                  (v ~rule:"ordering-class" ~file:k.k_file
                     ~loc:
                       {
                         Location.none with
                         loc_start =
                           {
                             Lexing.pos_fname = k.k_file;
                             pos_lnum = ann.a_line;
                             pos_bol = 0;
                             pos_cnum = 0;
                           };
                       }
                     "ordering-class annotation is not attached to a \
                      handler arm (it must sit on the arm's first pattern \
                      line or the line above)"))
            annots
        in
        arm_vs @ stray)
      g.kernels
  in
  (* Annotations in units with no kernel dispatch bind to nothing. *)
  let orphaned =
    List.concat_map
      (fun (u : Program.unit_info) ->
        if List.mem u.file kernel_files then []
        else
          List.map
            (fun (ann : Annot.entry) ->
              v ~rule:"ordering-class" ~file:u.file
                ~loc:
                  {
                    Location.none with
                    loc_start =
                      {
                        Lexing.pos_fname = u.file;
                        pos_lnum = ann.a_line;
                        pos_bol = 0;
                        pos_cnum = 0;
                      };
                  }
                "ordering-class annotation in a unit with no Msg dispatch: \
                 nothing to bind it to")
            (Annot.scan u.source))
      prog.units
  in
  per_kernel @ orphaned

(* ------------------------------------------------------------------ *)
(* counter-lifecycle: an interned Stats.counter/hist or Series.cell
   that is created but never referenced again can never be ticked or
   rendered (zero-valued counters are skipped by Stats.counters), so it
   is dead weight that silently vanishes from every report; and one
   metric name interned into two handles in the same unit aliases a
   single ref under two fields, which is almost always an editing
   mistake.  Handle-free Series registrations (gauge / scraped counter)
   have nothing to go unused, but a duplicate name raises at runtime
   only when telemetry is actually on, so the duplicate check covers
   them statically. *)

let counter_kind_name = function
  | `Counter -> "counter"
  | `Hist -> "histogram"
  | `Cell -> "series cell"
  | `Gauge -> "gauge"
  | `Scounter -> "scraped counter"

let check_counter_lifecycle _prog (g : Graph.t) =
  let unused =
    List.filter_map
      (fun (cd : Graph.counter_def) ->
        if cd.Graph.cd_key = "" || Graph.use_count g cd.cd_key > 0 then None
        else
          Some
            (v ~rule:"counter-lifecycle" ~file:cd.cd_file ~loc:cd.cd_loc
               (Fmt.str
                  "interned %s %S is bound to %s but never ticked, observed \
                   or read: zero-valued metrics are invisible in reports, \
                   so wire it up or delete it"
                  (counter_kind_name cd.cd_kind) cd.cd_name cd.cd_key)))
      g.counters
  in
  let dups =
    (* Stats and Series names live in different registries, so a Stats
       counter and a Series gauge may legitimately share a name; only a
       collision within the same registry aliases state. *)
    let registry (cd : Graph.counter_def) =
      match cd.cd_kind with
      | `Counter | `Hist -> "stats"
      | `Cell | `Gauge | `Scounter -> "series"
    in
    let seen = ref [] in
    List.filter_map
      (fun (cd : Graph.counter_def) ->
        let key = (cd.cd_unit, registry cd, cd.cd_name) in
        if List.mem key !seen then
          Some
            (v ~rule:"counter-lifecycle" ~file:cd.cd_file ~loc:cd.cd_loc
               (Fmt.str
                  "metric name %S is %s more than once in %s: both \
                   registrations alias one %s, which double-counts every \
                   tick (Series rejects the duplicate only at runtime, and \
                   only when telemetry is enabled)"
                  cd.cd_name
                  (match registry cd with
                  | "stats" -> "interned"
                  | _ -> "registered")
                  cd.cd_unit
                  (match registry cd with "stats" -> "ref" | _ -> "series")))
        else begin
          seen := key :: !seen;
          None
        end)
      g.counters
  in
  unused @ dups

(* ------------------------------------------------------------------ *)
(* span-pairing: a node that emits a span-opening event kind must be
   able to reach the matching close, or the trace shows a split/AAS
   window that never ends and every span query over it degenerates. *)

let span_pairs =
  [
    ("Split_start", "Split_end");
    ("Aas_block", "Aas_release");
    (* A crash span must always close: the recovery driver that downs a
       processor must be able to reach the restart that brings it back. *)
    ("Crash", "Restart");
  ]

let check_span_pairing _prog (g : Graph.t) =
  List.concat_map
    (fun (n : Graph.node) ->
      List.filter_map
        (fun (open_k, close_k) ->
          match List.find_opt (fun (k, _) -> k = open_k) n.Graph.emits with
          | None -> None
          | Some (_, loc) ->
            let reach = n :: Graph.closure g n.calls in
            if List.exists (fun m -> node_emits_kind m close_k) reach then
              None
            else
              Some
                (v ~rule:"span-pairing" ~file:n.file ~loc
                   (Fmt.str
                      "Event.%s is emitted in %s but Event.%s is not \
                       reachable from it: the span can never close on this \
                       path"
                      open_k n.id close_k)))
        span_pairs)
    (Graph.nodes_in_order g)

(* ------------------------------------------------------------------ *)
(* Registry and driver                                                 *)

let all_rules =
  [
    {
      name = "send-handle";
      doc =
        "every Msg kind a kernel constructs has a non-rejecting handler \
         arm there, and no real arm handles a kind the kernel never sends";
      check = check_send_handle;
    };
    {
      name = "aas-discipline";
      doc =
        "no initial-update reply is reachable from the Split_start \
         handler: the AAS window blocks exactly the initial updates \
         (Theorem 1)";
      check = check_aas_discipline;
    };
    {
      name = "ordering-class";
      doc =
        "every handler arm is annotated lazy/semi/sync; sync kinds are \
         only constructed under AAS state, lazy arms never reach a \
         primary-copy gate";
      check = check_ordering_class;
    };
    {
      name = "counter-lifecycle";
      doc =
        "every interned Stats counter/histogram and Series cell is \
         referenced after creation, and no metric name is registered \
         twice in one unit's registry (Stats and Series checked \
         separately)";
      check = check_counter_lifecycle;
    };
    {
      name = "span-pairing";
      doc =
        "every span-opening Obs event (Split_start, Aas_block) can reach \
         its closing kind (Split_end, Aas_release)";
      check = check_span_pairing;
    };
  ]

let rule_names = List.map (fun r -> r.name) all_rules
let find_rule name = List.find_opt (fun r -> r.name = name) all_rules

type report = {
  violations : Rule.violation list;
  suppressed : int;
  files : int;
}

let sort_violations vs =
  List.sort
    (fun (a : Rule.violation) b ->
      compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule))
    vs

let analyze ?(rules = all_rules) (prog : Program.t) =
  let g = Graph.build prog in
  let raw = dedup (List.concat_map (fun r -> r.check prog g) rules) in
  let supps =
    List.map
      (fun (u : Program.unit_info) ->
        (u.file, Suppress.scan ~tool:"dbflow" ~known:rule_names u.source))
      prog.units
  in
  let suppressed, kept =
    List.partition
      (fun (viol : Rule.violation) ->
        match List.assoc_opt viol.file supps with
        | Some s -> Suppress.active s ~rule:viol.rule ~line:viol.line
        | None -> false)
      raw
  in
  let unknown =
    List.concat_map
      (fun (file, s) ->
        List.map
          (fun (line, tok) ->
            {
              Rule.rule = "unknown-rule";
              file;
              line;
              col = 0;
              message =
                Fmt.str
                  "dbflow allow comment names unknown rule %S (known: %s): \
                   fix the name or the comment suppresses nothing"
                  tok
                  (String.concat ", " rule_names);
            })
          (Suppress.unknown_rules s))
      supps
  in
  {
    violations = sort_violations (unknown @ kept);
    suppressed = List.length suppressed;
    files = List.length prog.units;
  }
