(** The message-flow graph dbflow's rules run over: a call graph of
    top-level functions plus per-node protocol facts, the kernels'
    dispatch arms as pseudo-nodes, and the interned-metric ledger.

    The dispatch [match] inside a [handle] binding is the cut point:
    [handle]'s own node keeps no outgoing edges and each arm becomes a
    root node [Unit.handle#Ctor], so reachability from one arm never
    flows through re-entrant dispatch (the [Batch] arm calls [handle]
    recursively, which must not make every arm reach every other). *)

type access_kind =
  | Deref  (** [!x] *)
  | Assign  (** [x := e], [incr x], or a mutating stdlib call on [x] *)
  | Setfield  (** [x.f <- e] on a resolved module-level value *)
  | Atomic_op of string  (** [Atomic.op x ...] *)
  | Use  (** any other mention: [x] passed around or aliased *)

type node = {
  id : string;  (** ["Fixed.do_split"] or ["Fixed.handle#Split_start"] *)
  unit_name : string;
  file : string;
  loc : Location.t;
  mutable calls : string list;  (** resolved callee ids, may dangle *)
  mutable constructs : (string * Location.t) list;
      (** [Msg] constructors built here (smart constructors like
          [Msg.batch] count, capitalised) *)
  mutable emits : (string * Location.t) list;
      (** [Event] kinds passed to an emit-shaped call
          ([event]/[emit]/[emit_here]) *)
  mutable reply_sites : Location.t list;
      (** [Msg.Op_done] constructions outside a Search/Scan dispatch
          arm: the initial-update reply path *)
  mutable pc_gates : Location.t list;  (** reads of a [pc] field *)
  mutable aas_marked : bool;
      (** touches the AAS machinery: a [splitting] field or any
          identifier containing ["aas"] *)
  mutable accesses : (string * access_kind * Location.t) list;
      (** every resolved reference to a top-level value, classified:
          the raw material of dbrace's shared-state rules *)
  mutable par_roots : string list;
      (** resolved ids of functions this node hands to
          [Par.map]/[Par.run_cells]/[Sim.register_handler]; the node's
          own id when the worker is an inline closure *)
  mutable allocs : (string * Location.t) list;
      (** allocation-shaped expressions: closures below the binding's
          own parameter spine, tuples/records/non-constant constructor
          and variant applications, list/array literals, and calls to
          string/list/array-building stdlib entry points *)
  mutable polys : (string * Location.t) list;
      (** polymorphic-comparison sites: bare [compare],
          [Hashtbl.hash], and [=]/[<>]/[min]/[max] where an argument
          looks boxed (string/float literal, tuple, record, variant
          application, constant constructor other than
          [true]/[false]/[()]) *)
  mutable apps : (string * int * Location.t) list;
      (** application sites of resolved top-level functions as
          [(callee id, argument count, loc)]; paired with {!arity} to
          flag partial applications *)
  mutable hot_roots : string list;
      (** ids this node hands to [Sim.register_handler] or
          [Sim.set_probe]: dbperf's hot-set entry points.  Inline or
          locally bound callbacks are cut into {!t.hot_subnodes}
          pseudo-nodes and rooted by their pseudo-id *)
}

type arm = {
  arm_constructors : (string * Location.t) list;
  arm_node : node;
  arm_rejecting : bool;
      (** body is a direct failwith/invalid_arg application *)
  arm_line : int;  (** line of the arm's first pattern *)
}

type kernel = {
  k_unit : string;
  k_file : string;
  k_arms : arm list;
}

type counter_def = {
  cd_key : string;
      (** record label or let-bound name holding the handle; [""] for
          handle-free registrations ([Series.gauge]/[Series.counter]) *)
  cd_name : string;  (** interned metric name (literal names only) *)
  cd_kind : [ `Counter | `Hist | `Cell | `Gauge | `Scounter ];
      (** [`Counter]/[`Hist] are interned [Stats] handles; [`Cell] is a
          [Series.cell] handle; [`Gauge]/[`Scounter] are handle-free
          [Series] registrations (closure-sampled gauge / scraped
          counter ref) *)
  cd_unit : string;
  cd_file : string;
  cd_loc : Location.t;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  node_order : string list;  (** deterministic traversal order *)
  kernels : kernel list;
  counters : counter_def list;
  uses : (string, int) Hashtbl.t;
      (** identifier/field-label mention counts, creation sites
          excluded: the evidence a counter handle is ever touched *)
  hot_subnodes : node list;
      (** pseudo-nodes for closures handed to
          [Sim.register_handler]/[Sim.set_probe] inline or through a
          local binding (id ["Unit.fn#cb"] / ["Unit.fn#h<line>"]).
          Kept out of {!nodes}/{!node_order}: the enclosing node is
          walked exactly as before (dbflow/dbrace are unaffected), and
          only dbperf's hot-set computation consults these *)
  arities : (string, int) Hashtbl.t;
      (** leading parameter count per top-level binding (labelled
          params count, optional ones do not) *)
}

val build : Program.t -> t

val find_node : t -> string -> node option

val closure : t -> string list -> node list
(** Transitive call closure from the given node ids, in BFS-ish
    deterministic order; dangling ids are skipped. *)

val nodes_in_order : t -> node list
val unit_nodes : t -> string -> node list
val use_count : t -> string -> int

val arity : t -> string -> int option
(** Leading parameter count of a top-level binding, when known. *)
