(** dbflow: whole-program protocol-flow rules over {!Graph}.

    Where dblint checks one file's syntax, dbflow checks properties
    that only exist across the program: that every message kind a
    kernel sends is really handled there, that the synchronous-split
    AAS window cannot leak an initial-update reply (Theorem 1), that
    every handler arm's declared ordering class matches the paths it
    takes, and that metric/span lifecycles pair up.  Suppression uses
    the same comment grammar as dblint under the [dbflow] marker. *)

type rule = {
  name : string;
  doc : string;  (** one-line description for [--list-rules] *)
  check :
    Program.t -> Graph.t -> Dbtree_lint.Rule.violation list;
}

val all_rules : rule list
(** The registry, in reporting order: [send-handle], [aas-discipline],
    [ordering-class], [counter-lifecycle], [span-pairing]. *)

val rule_names : string list
val find_rule : string -> rule option

type report = {
  violations : Dbtree_lint.Rule.violation list;
      (** unsuppressed, sorted by (file, line, col, rule); includes
          [unknown-rule] pseudo-violations for typoed allow comments *)
  suppressed : int;
  files : int;
}

val analyze : ?rules:rule list -> Program.t -> report
(** Build the graph once and run the rules, then filter through
    [(* dbflow: allow ... *)] suppressions per file. *)
