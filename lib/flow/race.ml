(* dbrace: whole-program domain-safety analysis.

   The paper's tables rest on deterministic, byte-identical replay, and
   PR 6 made the scale experiments domain-parallel ([Par.map] over
   self-contained cells).  That combination only holds if nothing
   reachable from a domain worker touches shared unprotected mutable
   state — which is a whole-program property, so it lives here with
   dbflow rather than in the per-file linter.

   Pass 1 inventories *toplevel mutable state*: refs, arrays, hash
   tables, bytes, buffers and [Atomic.t] cells bound at module level,
   plus module-level values whose record fields are assigned anywhere
   in the program.  Pass 2 computes *par-reachability*: the closure of
   the call graph from every function handed to [Par.map],
   [Par.run_cells] or [Sim.register_handler] (handlers run inside
   [Sim.run], which the parallel cells drive).  The rules then check
   that the two sets only meet through [Atomic] operations or an
   explicitly justified annotation.

   Like dbflow, everything is syntactic: aliasing (storing a global in
   a record and mutating it later) escapes the analysis, which is why
   the CI pairs this checker with a ThreadSanitizer run of the same
   parallel subset — the static pass proves the discipline, the dynamic
   pass catches what the syntax hides. *)

open Dbtree_lint

type kind =
  | K_ref
  | K_array
  | K_hashtbl
  | K_bytes
  | K_buffer
  | K_atomic
  | K_mutex
  | K_record

let kind_name = function
  | K_ref -> "ref"
  | K_array -> "array"
  | K_hashtbl -> "hashtbl"
  | K_bytes -> "bytes"
  | K_buffer -> "buffer"
  | K_atomic -> "atomic"
  | K_mutex -> "mutex"
  | K_record -> "record"

type global = {
  g_id : string;  (** node id, e.g. ["Obs.registry"] *)
  g_unit : string;
  g_file : string;
  g_line : int;
  g_kind : kind;
  g_allow : (string * string) option;
      (** binding-site annotation as [(keyword, justification)] *)
}

(* ------------------------------------------------------------------ *)
(* Annotation grammar: a comment on the global's binding line (or the
   line above) reading the tool name, colon-space, then a keyword —

     <tool>: domain-local -- why the state never crosses a domain
     <tool>: guarded -- which lock protects every touch

   where <tool> is this checker's name.  The marker is assembled from
   pieces (and spelled indirectly in this comment) so the textual scan
   never reads this module's own source as annotations. *)

let marker_prefix = "dbrace" ^ ": "
let allow_keywords = [ "domain-local"; "guarded" ]
let marker_of kw = marker_prefix ^ kw

type annot = { an_line : int; an_keyword : string; an_why : string }

let find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

(* The justification is whatever follows [--]; the keyword match already
   consumed everything before it. *)
let why_after line start =
  match find_sub (String.sub line start (String.length line - start)) "--" with
  | None -> ""
  | Some j ->
    let rest = String.sub line (start + j) (String.length line - start - j) in
    let rest =
      match find_sub rest "*)" with
      | Some e -> String.sub rest 0 (e - 2)
      | None -> rest
    in
    String.trim rest

let scan_annots source =
  let lines = String.split_on_char '\n' source in
  List.concat
    (List.mapi
       (fun i line ->
         List.filter_map
           (fun kw ->
             match find_sub line (marker_of kw) with
             | None -> None
             | Some start ->
               Some
                 { an_line = i + 1; an_keyword = kw; an_why = why_after line start })
           allow_keywords)
       lines)

let annot_at annots ~line =
  List.find_opt (fun a -> a.an_line = line || a.an_line = line - 1) annots

(* ------------------------------------------------------------------ *)
(* Pass 1: the toplevel mutable-state inventory                        *)

let classify_rhs (e : Parsetree.expression) =
  let rec strip (e : Parsetree.expression) =
    match e.pexp_desc with Pexp_constraint (e, _) -> strip e | _ -> e
  in
  match (strip e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match Rule.lident_components (Rule.strip_stdlib txt) with
    | [ "ref" ] -> Some K_ref
    | [ "Array"; ("make" | "init" | "create_float" | "make_matrix") ] ->
      Some K_array
    | [ "Hashtbl"; "create" ] -> Some K_hashtbl
    | [ "Bytes"; ("create" | "make" | "of_string") ] -> Some K_bytes
    | [ "Buffer"; "create" ] -> Some K_buffer
    | [ "Atomic"; "make" ] -> Some K_atomic
    | [ "Mutex"; "create" ] -> Some K_mutex
    | _ -> None)
  | _ -> None

let unit_globals (u : Program.unit_info) =
  let annots = scan_annots u.source in
  let acc = ref [] in
  let add name kind line =
    let allow =
      Option.map
        (fun a -> (a.an_keyword, a.an_why))
        (annot_at annots ~line)
    in
    acc :=
      {
        g_id = u.name ^ "." ^ name;
        g_unit = u.name;
        g_file = u.file;
        g_line = line;
        g_kind = kind;
        g_allow = allow;
      }
      :: !acc
  in
  let rec str_item (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> (
            match classify_rhs vb.pvb_expr with
            | Some kind ->
              add txt kind vb.pvb_pat.ppat_loc.Location.loc_start.Lexing.pos_lnum
            | None -> ())
          | _ -> ())
        vbs
    | Pstr_module mb -> module_expr mb.pmb_expr
    | Pstr_recmodule mbs ->
      List.iter (fun (mb : Parsetree.module_binding) -> module_expr mb.pmb_expr) mbs
    | _ -> ()
  and module_expr (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure items -> List.iter str_item items
    | Pmod_functor (_, body) -> module_expr body
    | Pmod_constraint (me, _) -> module_expr me
    | _ -> ()
  in
  List.iter str_item u.structure;
  List.rev !acc

(* Module-level values whose record fields are assigned anywhere become
   mutable state even without a recognisable maker on the binding: the
   setfield target names them.  (Kind [K_record]; the defining node's
   location anchors annotation lookup.) *)
let record_globals (prog : Program.t) (g : Graph.t) known =
  let ids = ref [] in
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun (id, (kind : Graph.access_kind), _) ->
          match kind with
          | Graph.Setfield ->
            if
              (not (List.exists (fun gl -> gl.g_id = id) known))
              && not (List.mem id !ids)
            then ids := id :: !ids
          | _ -> ())
        n.Graph.accesses)
    (Graph.nodes_in_order g);
  List.filter_map
    (fun id ->
      match Graph.find_node g id with
      | None -> None
      | Some def ->
        let line = def.Graph.loc.Location.loc_start.Lexing.pos_lnum in
        let allow =
          match Program.find_file prog def.Graph.file with
          | None -> None
          | Some u ->
            Option.map
              (fun a -> (a.an_keyword, a.an_why))
              (annot_at (scan_annots u.source) ~line)
        in
        Some
          {
            g_id = id;
            g_unit = def.Graph.unit_name;
            g_file = def.Graph.file;
            g_line = line;
            g_kind = K_record;
            g_allow = allow;
          })
    (List.rev !ids)

let inventory (prog : Program.t) (g : Graph.t) =
  let direct = List.concat_map unit_globals prog.Program.units in
  direct @ record_globals prog g direct

(* ------------------------------------------------------------------ *)
(* Pass 2: par-reachability                                            *)

let par_roots (g : Graph.t) =
  List.concat_map (fun (n : Graph.node) -> n.Graph.par_roots)
    (Graph.nodes_in_order g)

let par_nodes (g : Graph.t) = Graph.closure g (par_roots g)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

type ctx = {
  prog : Program.t;
  graph : Graph.t;
  globals : global list;
  reachable : Graph.node list;
}

type rule = { name : string; doc : string; check : ctx -> Rule.violation list }

let v ~rule ~file ~(loc : Location.t) msg =
  let pos = loc.Location.loc_start in
  {
    Rule.rule;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message = msg;
  }

let v_line ~rule ~file ~line msg =
  { Rule.rule; file; line; col = 0; message = msg }

let find_global ctx id = List.find_opt (fun g -> g.g_id = id) ctx.globals

(* An annotation allows the accesses; an *unjustified* annotation still
   allows them but is itself reported (once, at the binding), so the
   gate stays red until the reason is written down. *)
let allowed g = g.g_allow <> None

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs
  |> List.rev

(* ---------------- par-shared-state ---------------- *)

let check_shared_state ctx =
  let reads =
    List.concat_map
      (fun (n : Graph.node) ->
        List.filter_map
          (fun (id, (kind : Graph.access_kind), loc) ->
            match find_global ctx id with
            | Some g
              when g.g_kind <> K_atomic && g.g_kind <> K_mutex
                   && not (allowed g) -> (
              match kind with
              | Graph.Deref | Graph.Use | Graph.Atomic_op _ ->
                Some
                  (v ~rule:"par-shared-state" ~file:n.Graph.file ~loc
                     (Fmt.str
                        "%s (par-reachable) reads toplevel mutable %s %s \
                         with no protection: a domain worker can observe \
                         it mid-update — make it Atomic, guard it behind \
                         a lock (annotate '%s -- why'), or confine it \
                         ('%s -- why')"
                        n.Graph.id (kind_name g.g_kind) g.g_id
                        (marker_of "guarded")
                        (marker_of "domain-local")))
              | Graph.Assign | Graph.Setfield -> None (* init-once reports writes *))
            | _ -> None)
          n.Graph.accesses)
      ctx.reachable
  in
  let unjustified =
    List.filter_map
      (fun g ->
        match g.g_allow with
        | Some (kw, "") ->
          Some
            (v_line ~rule:"par-shared-state" ~file:g.g_file ~line:g.g_line
               (Fmt.str
                  "'%s' annotation on %s carries no justification: append \
                   ' -- why' explaining why the state cannot race (which \
                   lock, or why it never crosses a domain)"
                  (marker_of kw) g.g_id))
        | _ -> None)
      ctx.globals
  in
  let orphans =
    List.concat_map
      (fun (u : Program.unit_info) ->
        List.filter_map
          (fun (a : annot) ->
            if
              List.exists
                (fun g ->
                  g.g_file = u.file
                  && (g.g_line = a.an_line || g.g_line = a.an_line + 1))
                ctx.globals
            then None
            else
              Some
                (v_line ~rule:"par-shared-state" ~file:u.file ~line:a.an_line
                   (Fmt.str
                      "'%s' annotation is not attached to a toplevel \
                       mutable binding (it must sit on the binding's line \
                       or the line above)"
                      (marker_of a.an_keyword))))
          (scan_annots u.source))
      ctx.prog.Program.units
  in
  reads @ unjustified @ orphans

(* ---------------- init-once ---------------- *)

let check_init_once ctx =
  List.concat_map
    (fun (n : Graph.node) ->
      List.filter_map
        (fun (id, (kind : Graph.access_kind), loc) ->
          match find_global ctx id with
          | Some g
            when g.g_kind <> K_atomic && g.g_kind <> K_mutex
                 && not (allowed g) -> (
            match kind with
            | Graph.Assign | Graph.Setfield ->
              Some
                (v ~rule:"init-once" ~file:n.Graph.file ~loc
                   (Fmt.str
                      "%s (par-reachable) mutates toplevel %s %s after \
                       module initialization: two domains entering this \
                       path lose updates — use an Atomic, take a lock \
                       (annotate '%s -- why'), or return the data and \
                       merge on the caller's domain"
                      n.Graph.id (kind_name g.g_kind) g.g_id
                      (marker_of "guarded")))
            | _ -> None)
          | _ -> None)
        n.Graph.accesses)
    ctx.reachable

(* ---------------- atomic-discipline ---------------- *)

(* The safe set: single-call read/modify primitives.  [get]+[set] of the
   same cell in one function is the split read-modify-write the rule
   exists to catch — the window between them re-introduces the race the
   Atomic was supposed to remove. *)
let safe_ops =
  [ "make"; "get"; "set"; "exchange"; "compare_and_set"; "compare_exchange";
    "fetch_and_add"; "incr"; "decr" ]

let check_atomic_discipline ctx =
  List.concat_map
    (fun (n : Graph.node) ->
      let ops = ref [] in
      let direct =
        List.filter_map
          (fun (id, (kind : Graph.access_kind), loc) ->
            match find_global ctx id with
            | Some { g_kind = K_atomic; _ } -> (
              match kind with
              | Graph.Atomic_op op when List.mem op safe_ops ->
                ops := (id, op, loc) :: !ops;
                None
              | Graph.Atomic_op op ->
                Some
                  (v ~rule:"atomic-discipline" ~file:n.Graph.file ~loc
                     (Fmt.str
                        "Atomic.%s on toplevel atomic %s is outside the \
                         safe op set (%s)"
                        op id
                        (String.concat ", " safe_ops)))
              | Graph.Deref | Graph.Assign | Graph.Setfield | Graph.Use ->
                Some
                  (v ~rule:"atomic-discipline" ~file:n.Graph.file ~loc
                     (Fmt.str
                        "toplevel atomic %s escapes the safe op set in %s \
                         (aliased, dereferenced or passed around): every \
                         touch must be a direct Atomic operation"
                        id n.Graph.id)))
            | _ -> None)
          n.Graph.accesses
      in
      let split =
        List.filter_map
          (fun (id, op, loc) ->
            if
              op = "set"
              && List.exists (fun (id', op', _) -> id' = id && op' = "get") !ops
            then
              Some
                (v ~rule:"atomic-discipline" ~file:n.Graph.file ~loc
                   (Fmt.str
                      "separate Atomic.get and Atomic.set of %s in %s form \
                       a non-atomic read-modify-write: use fetch_and_add, \
                       exchange or compare_and_set"
                      id n.Graph.id))
            else None)
          (List.rev !ops)
      in
      direct @ split)
    (Graph.nodes_in_order ctx.graph)

(* ------------------------------------------------------------------ *)
(* Registry and driver                                                 *)

let all_rules =
  [
    {
      name = "par-shared-state";
      doc =
        "no function reachable from a domain worker (Par.map / \
         Par.run_cells / Sim.register_handler) reads unprotected \
         toplevel mutable state; Atomics and justified dbrace \
         annotations are the only escapes";
      check = check_shared_state;
    };
    {
      name = "atomic-discipline";
      doc =
        "toplevel Atomic.t cells are touched only through the safe op \
         set, never aliased, and never read-modify-written across \
         separate get/set calls";
      check = check_atomic_discipline;
    };
    {
      name = "init-once";
      doc =
        "toplevel mutable globals are mutated at module initialization \
         only: no par-reachable site assigns a non-Atomic global";
      check = check_init_once;
    };
  ]

let rule_names = List.map (fun r -> r.name) all_rules
let find_rule name = List.find_opt (fun r -> r.name = name) all_rules

type report = {
  violations : Rule.violation list;
  suppressed : int;
  files : int;
}

let sort_violations vs =
  List.sort
    (fun (a : Rule.violation) b ->
      compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule))
    vs

let make_ctx (prog : Program.t) =
  let graph = Graph.build prog in
  let globals = inventory prog graph in
  { prog; graph; globals; reachable = par_nodes graph }

let analyze ?(rules = all_rules) (prog : Program.t) =
  let ctx = make_ctx prog in
  let raw = dedup (List.concat_map (fun r -> r.check ctx) rules) in
  let supps =
    List.map
      (fun (u : Program.unit_info) ->
        (u.file, Suppress.scan ~tool:"dbrace" ~known:rule_names u.source))
      prog.Program.units
  in
  let suppressed, kept =
    List.partition
      (fun (viol : Rule.violation) ->
        match List.assoc_opt viol.file supps with
        | Some s -> Suppress.active s ~rule:viol.rule ~line:viol.line
        | None -> false)
      raw
  in
  let unknown =
    List.concat_map
      (fun (file, s) ->
        List.map
          (fun (line, tok) ->
            {
              Rule.rule = "unknown-rule";
              file;
              line;
              col = 0;
              message =
                Fmt.str
                  "dbrace allow comment names unknown rule %S (known: %s): \
                   fix the name or the comment suppresses nothing"
                  tok
                  (String.concat ", " rule_names);
            })
          (Suppress.unknown_rules s))
      supps
  in
  {
    violations = sort_violations (unknown @ kept);
    suppressed = List.length suppressed;
    files = List.length prog.Program.units;
  }

(* ------------------------------------------------------------------ *)
(* Inventory rendering (the [--inventory] audit view)                  *)

let pp_inventory ppf (prog : Program.t) =
  let ctx = make_ctx prog in
  let reachable_ids =
    List.concat_map
      (fun (n : Graph.node) ->
        List.filter_map
          (fun (id, _, _) ->
            Option.map (fun g -> g.g_id) (find_global ctx id))
          n.Graph.accesses)
      ctx.reachable
    |> dedup
  in
  List.iter
    (fun g ->
      Fmt.pf ppf "%s:%d: %-8s %s%s%s@." g.g_file g.g_line (kind_name g.g_kind)
        g.g_id
        (if List.mem g.g_id reachable_ids then " [par-reachable]" else "")
        (match g.g_allow with
        | Some (kw, why) ->
          Fmt.str " [%s%s]" kw (if why = "" then ", UNJUSTIFIED" else "")
        | None -> ""))
    (List.sort
       (fun a b -> compare (a.g_file, a.g_line) (b.g_file, b.g_line))
       ctx.globals)
