(** Ordering-class annotations for handler arms:
    [(* dbflow: class lazy|semi|sync -- reason *)], trailing the arm's
    pattern or on its own line directly above. *)

type entry = {
  a_line : int;  (** 1-based line of the comment *)
  a_class : string;  (** token after the marker, [""] if missing *)
}

val scan : string -> entry list
(** All annotations in one file's source, in line order. *)

val at : entry list -> line:int -> entry option
(** The annotation attached to an arm whose pattern starts at [line]:
    same line (trailing) or the line above. *)
