(* Ordering-class annotations: the dbflow marker followed by
   "class lazy|semi|sync -- why", written trailing a handler arm's
   pattern or on the line above it (see Annot.marker for the exact
   spelling).  Scanning is textual, like Dbtree_lint.Suppress: dbflow
   has no attribute story (the kernels must stay plain OCaml), and a
   comment survives refactors that would drop an attribute. *)

type entry = {
  a_line : int;  (** 1-based line of the comment *)
  a_class : string;  (** token after the marker, [""] if missing *)
}

(* Split so the textual scanner does not see its own marker literal as
   an (orphaned) annotation when dbflow runs over this file. *)
let marker = "dbflow: " ^ "class"

let find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let token_after line start =
  let n = String.length line in
  let rec skip i = if i < n && line.[i] = ' ' then skip (i + 1) else i in
  let s = skip start in
  let rec stop i =
    if i < n && line.[i] >= 'a' && line.[i] <= 'z' then stop (i + 1) else i
  in
  String.sub line s (stop s - s)

let scan source =
  let lines = String.split_on_char '\n' source in
  List.concat
    (List.mapi
       (fun i line ->
         match find_sub line marker with
         | None -> []
         | Some start ->
           [ { a_line = i + 1; a_class = token_after line start } ])
       lines)

let at entries ~line =
  List.find_opt (fun e -> e.a_line = line || e.a_line = line - 1) entries
