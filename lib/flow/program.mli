(** The whole-program view dbflow analyses: every [.ml] unit under the
    requested paths, parsed once.  A unit's module name is its
    capitalised basename, which is how cross-module references resolve
    in the dune-built libraries (aliases are handled in {!Graph}). *)

type unit_info = {
  name : string;  (** module name, e.g. ["Fixed"] for [lib/dbtree/fixed.ml] *)
  file : string;  (** path as given *)
  source : string;
  structure : Parsetree.structure;
}

type t = { units : unit_info list }

val load : string list -> t * (string * string) list
(** Parse every [.ml] under the paths (same discovery as dblint).
    Unparseable files are skipped and returned as [(file, error)]. *)

val of_sources : (string * string) list -> t
(** In-memory program from [(file, source)] pairs, for tests.
    @raise Syntaxerr.Error on unparseable input. *)

val find : t -> string -> unit_info option
(** Lookup by module name. *)

val find_file : t -> string -> unit_info option
(** Lookup by path. *)

val unit_names : t -> string list
