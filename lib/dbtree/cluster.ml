open Dbtree_sim
module Obs = Dbtree_obs.Obs
module Event = Dbtree_obs.Event
module Series = Dbtree_obs.Series
module Health = Dbtree_obs.Health
module Network = Net.Make (Msg)
module Registry = Dbtree_history.Registry
module Action = Dbtree_history.Action

(* Interned handles for every stat the protocol kernels bump from message
   handlers.  Resolved once per cluster so the hot loops never hash a
   string key; a handle a given protocol never bumps stays at 0 and is
   invisible in reports. *)
type counters = {
  route_hops : Stats.counter;
  route_chase : Stats.counter;
  route_up : Stats.counter;
  route_parked : Stats.counter;
  route_lost_hint : Stats.counter;
  split_count : Stats.counter;
  split_blocked_updates : Stats.counter;
  split_dropped_entries : Stats.counter;
  root_grow : Stats.counter;
  eager_requeued : Stats.counter;
  relay_applied : Stats.counter;
  relay_discarded : Stats.counter;
  relay_catchup : Stats.counter;
  relay_to_departed : Stats.counter;
  naive_lost : Stats.counter;
  semi_forwarded : Stats.counter;
  link_change_absorbed : Stats.counter;
  link_change_self_absorbed : Stats.counter;
  migrate_count : Stats.counter;
  migrate_skipped : Stats.counter;
  join_count : Stats.counter;
  join_requested : Stats.counter;
  join_duplicate : Stats.counter;
  join_already_member : Stats.counter;
  unjoin_count : Stats.counter;
  unjoin_duplicate : Stats.counter;
  recover_count : Stats.counter;
  recover_departed : Stats.counter;
  recover_forwarded : Stats.counter;
  recover_hinted : Stats.counter;
  recover_rerouted : Stats.counter;
  recover_restart : Stats.counter;
  recover_via_root : Stats.counter;
  reclaim_count : Stats.counter;
  reclaim_absorbed : Stats.counter;
  reclaim_absorb_stale : Stats.counter;
  reclaim_dropped : Stats.counter;
  reclaim_drop_stale : Stats.counter;
  route_no_members : Stats.counter;
  recovery_replayed : Stats.counter;
  recovery_rejoined : Stats.counter;
  (* Latency histograms (log-bucketed; see {!Stats.hist}).  Observed on
     every operation completion and at the end of every synchronous
     split's AAS window, whether or not tracing is on. *)
  lat_search : Stats.hist;
  lat_insert : Stats.hist;
  lat_delete : Stats.hist;
  lat_scan : Stats.hist;
  aas_time : Stats.hist;
}

let make_counters stats =
  let c = Stats.counter stats in
  {
    route_hops = c "route.hops";
    route_chase = c "route.chase";
    route_up = c "route.up";
    route_parked = c "route.parked";
    route_lost_hint = c "route.lost_hint";
    split_count = c "split.count";
    split_blocked_updates = c "split.blocked_updates";
    split_dropped_entries = c "split.dropped_entries";
    root_grow = c "root.grow";
    eager_requeued = c "eager.requeued";
    relay_applied = c "relay.applied";
    relay_discarded = c "relay.discarded";
    relay_catchup = c "relay.catchup";
    relay_to_departed = c "relay.to_departed";
    naive_lost = c "naive.lost";
    semi_forwarded = c "semi.forwarded";
    link_change_absorbed = c "link_change.absorbed";
    link_change_self_absorbed = c "link_change.self_absorbed";
    migrate_count = c "migrate.count";
    migrate_skipped = c "migrate.skipped";
    join_count = c "join.count";
    join_requested = c "join.requested";
    join_duplicate = c "join.duplicate";
    join_already_member = c "join.already_member";
    unjoin_count = c "unjoin.count";
    unjoin_duplicate = c "unjoin.duplicate";
    recover_count = c "recover.count";
    recover_departed = c "recover.departed";
    recover_forwarded = c "recover.forwarded";
    recover_hinted = c "recover.hinted";
    recover_rerouted = c "recover.rerouted";
    recover_restart = c "recover.restart";
    recover_via_root = c "recover.via_root";
    reclaim_count = c "reclaim.count";
    reclaim_absorbed = c "reclaim.absorbed";
    reclaim_absorb_stale = c "reclaim.absorb_stale";
    reclaim_dropped = c "reclaim.dropped";
    reclaim_drop_stale = c "reclaim.drop_stale";
    route_no_members = c "route.no_members";
    recovery_replayed = c "recovery.replayed";
    recovery_rejoined = c "recovery.rejoined";
    lat_search = Stats.hist stats "latency.search";
    lat_insert = Stats.hist stats "latency.insert";
    lat_delete = Stats.hist stats "latency.delete";
    lat_scan = Stats.hist stats "latency.scan";
    aas_time = Stats.hist stats "split.aas_time";
  }

type t = {
  config : Config.t;
  sim : Sim.t;
  net : Network.t;
  stores : Store.t array;
  wals : Wal.t array;  (* per-processor journals; length 0 when WAL off *)
  ops : Opstate.t;
  hist : Registry.t;
  obs : Obs.t;
  telem : Telemetry.t;
  partition : Partition.t;
  ctr : counters;
  mutable next_node_id : int;
  mutable next_uid : int;
}

(* Default SLO thresholds for the standard health rules.  Deliberately
   conservative: a clean run (reliable transport, no fault injection)
   must not trip any of them — the alert tests gate exactly that. *)
let slo_p99_search = 5_000  (* ticks; windowed p99 ceiling *)
let slo_stall_age = 20_000  (* ticks an op may stay outstanding *)
let slo_retx_per_window = 24  (* retransmissions per scrape window *)
let slo_hottest_share = 75  (* percent of touches on one node *)

(* Register the cluster's whole observable surface on the telemetry
   plane: every interned stat counter, the per-processor and global
   gauges, and the standard SLO rules.  Runs once at creation, off the
   hot path; everything registered here is read-only at scrape time. *)
let wire_telemetry tm ~(config : Config.t) ~sim ~net ~stores ~wals ~ops =
  let series = Telemetry.series tm in
  let stats = Sim.stats sim in
  List.iter
    (fun (name, r) -> Series.counter series name r)
    (Stats.counter_handles stats);
  Series.gauge series "sim.queue_depth" (fun () -> Sim.pending sim);
  Series.gauge series "sim.overflow_depth" (fun () -> Sim.overflow_depth sim);
  Series.gauge series "ops.outstanding" (fun () -> Opstate.outstanding ops);
  Series.gauge series "ops.oldest_age" (fun () ->
      Opstate.oldest_outstanding_age ops ~now:(Sim.now sim));
  Series.gauge series "net.down_ticks" (fun () ->
      Network.longest_down net ~now:(Sim.now sim));
  let sum f =
    let acc = ref 0 in
    for pid = 0 to config.procs - 1 do
      acc := !acc + f pid
    done;
    !acc
  in
  Series.gauge series "net.inbox" (fun () ->
      sum (fun pid -> Network.in_flight net pid));
  Series.gauge series "net.retx_backlog" (fun () ->
      sum (fun pid -> Network.retx_backlog net pid));
  Series.gauge series "store.parked" (fun () ->
      sum (fun pid -> Store.parked_count stores.(pid)));
  if Array.length wals > 0 then
    Series.gauge series "wal.bytes" (fun () ->
        sum (fun pid -> Wal.bytes_total wals.(pid)));
  for pid = 0 to config.procs - 1 do
    (* dblint: allow interned-stats -- per-processor names are built once at creation, never on the message path *)
    Series.gauge series
      (Fmt.str "net.inbox.p%d" pid)
      (fun () -> Network.in_flight net pid);
    Series.gauge series
      (Fmt.str "net.retx_backlog.p%d" pid)
      (fun () -> Network.retx_backlog net pid);
    Series.gauge series
      (Fmt.str "store.parked.p%d" pid)
      (fun () -> Store.parked_count stores.(pid));
    if Array.length wals > 0 then
      Series.gauge series
        (Fmt.str "wal.bytes.p%d" pid)
        (fun () -> Wal.bytes_total wals.(pid))
  done;
  let health = Telemetry.health tm in
  Health.add_rule health ~name:"p99_search" ~severity:Health.Warn
    ~signal:(fun () ->
      Telemetry.percentile tm ~kind:Event.op_search ~now:(Sim.now sim) 99.0)
    ~threshold:slo_p99_search ();
  Health.add_rule health ~name:"stall_oldest_op" ~severity:Health.Crit
    ~signal:(fun () -> Opstate.oldest_outstanding_age ops ~now:(Sim.now sim))
    ~threshold:slo_stall_age ();
  (let retx = Stats.counter stats "net.rel.retx" in
   let prev = ref 0 in
   Health.add_rule health ~name:"retx_storm" ~severity:Health.Crit
     ~signal:(fun () ->
       let v = !retx in
       let d = v - !prev in
       prev := v;
       d)
     ~threshold:slo_retx_per_window ());
  (let restart = max 1 config.faults.Net.restart_delay in
   Health.add_rule health ~name:"recovery_slow" ~severity:Health.Warn
     ~signal:(fun () -> Network.longest_down net ~now:(Sim.now sim))
     ~threshold:(2 * restart) ());
  Health.add_rule health ~name:"hot_imbalance" ~severity:Health.Info
    ~signal:(fun () -> Telemetry.hottest_share_pct tm)
    ~threshold:slo_hottest_share ()

let create (config : Config.t) =
  (match Config.validate config with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Cluster.create: " ^ e));
  let sim = Sim.create ~seed:config.seed () in
  let obs =
    Obs.create ~enabled:config.trace ~capacity:config.trace_capacity
      ~label:"dbtree" ()
  in
  Obs.set_msg_names obs Msg.kind_name;
  let net =
    Network.create ~latency:config.latency ~faults:config.faults
      ~transport:config.transport ~obs sim ~procs:config.procs
  in
  let stores =
    Array.init config.procs (fun pid -> Store.create ~pid ~root:(-1))
  in
  let wals =
    if config.durability.Config.wal then
      Array.init config.procs (fun pid ->
          let w =
            Wal.create ~pid
              ~snapshot_every:config.durability.Config.snapshot_every
          in
          Store.set_wal stores.(pid) w;
          w)
    else [||]
  in
  if Array.length wals > 0 then
    (* The transport's durability hooks all fire inside the simulation
       event performing the action, so a crash (between events) never
       sees a half-journaled channel. *)
    Network.set_persist net
      {
        Network.p_send = (fun ~src ~dst ~abs msg ->
            Wal.append wals.(src) (Wal.Send { dst; abs; msg }));
        p_retire = (fun ~src ~dst ~abs ->
            Wal.append wals.(src) (Wal.Retire { dst; abs }));
        p_deliver = (fun ~src ~dst ~abs ->
            Wal.append wals.(dst) (Wal.Deliver { src; abs }));
      };
  let ops = Opstate.create () in
  let ctr = make_counters (Sim.stats sim) in
  (* Telemetry joins the run like tracing does: through the config, or
     through the global force switch (`dbtree metrics`).  Wired after
     [make_counters] and [Network.create] so [Stats.counter_handles]
     covers every interned counter. *)
  let telem =
    let forced = Series.forced () in
    if not (config.telemetry || forced) then Telemetry.disabled
    else begin
      let every =
        if config.telemetry then config.telemetry_every
        else Series.forced_every ()
      in
      let tm =
        Telemetry.create ~every
          ~label:(Config.discipline_name config.discipline)
          ~obs ()
      in
      wire_telemetry tm ~config ~sim ~net ~stores ~wals ~ops;
      Telemetry.install tm sim;
      if forced then Series.note_registered (Telemetry.series tm);
      tm
    end
  in
  {
    config;
    sim;
    net;
    stores;
    wals;
    ops;
    hist = Registry.create ();
    obs;
    telem;
    partition =
      Partition.create ~procs:config.procs ~key_space:config.key_space;
    ctr;
    next_node_id = 0;
    next_uid = 0;
  }

let store t pid = t.stores.(pid)
let stats t = Sim.stats t.sim
let now t = Sim.now t.sim

let fresh_node_id t =
  let id = t.next_node_id in
  t.next_node_id <- id + 1;
  id

let recording t = t.config.record_history

let fresh_uid t =
  let uid =
    if recording t then Registry.fresh_uid t.hist
    else begin
      let u = t.next_uid in
      t.next_uid <- u + 1;
      u
    end
  in
  if recording t then Registry.note_issued t.hist uid;
  uid

let members_for_range t ~low ~high =
  match t.config.replication with
  | Config.All_procs -> List.init t.config.procs (fun i -> i)
  | Config.Path -> Partition.members_of_range t.partition ~low ~high

(* An empty member set is a typed error, not an exception: once the last
   copy-holder of a node can crash, a message computing a primary copy
   from a stale directory entry must be able to take the park path
   instead of tearing down the run. *)
type pc_error = Empty_members

let pc_of_members = function
  | [] -> Error Empty_members
  | pc :: _ -> Ok pc

(* For the construction and bootstrap sites whose member lists come from
   the partition (structurally nonempty): still a typed check, but a
   violated invariant is a bug worth crashing on. *)
let pc_of_members_exn members =
  match pc_of_members members with
  | Ok pc -> pc
  | Error Empty_members ->
    invalid_arg "Cluster.pc_of_members: empty member list"

let send t ~src ~dst msg = Network.send t.net ~src ~dst msg

(* ---- telemetry hooks (one branch each when the plane is off) ------- *)

let telemetry t = t.telem
let touch t ~node = Telemetry.touch t.telem ~node
let aas_begin t = Telemetry.aas_begin t.telem
let aas_end t = Telemetry.aas_end t.telem

(* ---- typed trace events ------------------------------------------- *)

let event t ~pid kind ~a ~b =
  ignore (Obs.emit_here t.obs ~time:(Sim.now t.sim) ~pid ~kind ~a ~b)

let op_kind_code = function
  | Opstate.Search -> Event.op_search
  | Opstate.Insert -> Event.op_insert
  | Opstate.Delete -> Event.op_delete
  | Opstate.Scan -> Event.op_scan

let op_latency_hist t = function
  | Opstate.Search -> t.ctr.lat_search
  | Opstate.Insert -> t.ctr.lat_insert
  | Opstate.Delete -> t.ctr.lat_delete
  | Opstate.Scan -> t.ctr.lat_scan

(* Record the issue of a client operation and make it the ambient causal
   context, so the route message the protocol sends next (and everything
   downstream of it) chains into this op's span. *)
let op_issue t (r : Opstate.record) =
  if Obs.on t.obs then begin
    let id =
      Obs.emit t.obs ~time:(Sim.now t.sim) ~pid:r.Opstate.origin
        ~op:r.Opstate.id ~parent:(-1) ~kind:Event.Op_issue
        ~a:(op_kind_code r.Opstate.kind) ~b:r.Opstate.key
    in
    Obs.set_context t.obs ~op:r.Opstate.id ~parent:id
  end

(* Completion funnel for every protocol: observes the latency histogram
   and records [Op_complete] (only on the first completion — duplicate
   completions under fault injection are counted by [Opstate], not
   traced), then updates the op registry.  Protocols call this instead
   of [Opstate.complete] so the accounting cannot be bypassed. *)
let op_complete t ~op ~result =
  let now = Sim.now t.sim in
  (match Opstate.find t.ops op with
  | Some r when r.Opstate.completed_at = None ->
    let lat = now - r.Opstate.issued_at in
    Stats.hist_observe (op_latency_hist t r.Opstate.kind) lat;
    Telemetry.observe_latency t.telem
      ~kind:(op_kind_code r.Opstate.kind)
      ~now lat;
    (* the acknowledged-op audit stream: E18's zero-lost-acks check
       compares these against the post-recovery tree *)
    if Array.length t.wals > 0 then
      Wal.append t.wals.(r.Opstate.origin) (Wal.Op_done { op });
    if Obs.on t.obs then
      ignore
        (Obs.emit t.obs ~time:now ~pid:r.Opstate.origin ~op
           ~parent:(Obs.cur_parent t.obs) ~kind:Event.Op_complete
           ~a:(op_kind_code r.Opstate.kind) ~b:lat)
  | Some _ | None -> ());
  Opstate.complete t.ops ~op ~result ~now

let hist_new_copy t ~node ~pid ~base =
  if recording t then
    Registry.new_copy t.hist ~node ~pid
      ~base:(Registry.Uid_set.of_list base)

let hist_record t ~node ~pid ?(effective = true) ~mode ?(version = 0) ~uid
    kind =
  if recording t then
    Registry.record t.hist ~node ~pid ~effective ~time:(Sim.now t.sim)
      { Action.uid; node; mode; kind; version }

let hist_snapshot t ~node ~pid =
  if recording t then
    Registry.Uid_set.elements (Registry.snapshot t.hist ~node ~pid)
  else []

let hist_retire t ~node ~pid =
  if recording t then Registry.retire_copy t.hist ~node ~pid

(* [pc_error] surfaced through the park path: the message waits for a
   copy that can name a primary, and [route.no_members] counts it. *)
let park_no_members t ~pid ~node msg =
  Stats.tick t.ctr.route_no_members;
  Store.add_pending t.stores.(pid) node msg;
  event t ~pid Event.Park ~a:node ~b:(Msg.kind_id msg)

(* ------------------------------------------------------------------ *)
(* Crash / restart recovery                                            *)

let wal t pid = t.wals.(pid)

(* Rebuild a processor's store from its journal; returns (records,
   bytes) read.  Appends are refused for the duration so the mutations
   do not re-journal the facts they are reading. *)
let replay_wal t pid =
  let w = t.wals.(pid) in
  let store = t.stores.(pid) in
  let bytes = ref 0 in
  Wal.set_replaying w true;
  let n =
    Wal.replay w (fun r ->
        bytes := !bytes + Wal.record_size r;
        Store.apply_record store r)
  in
  Wal.set_replaying w false;
  (n, !bytes)

(* Wire the crash/restart machinery.  [rejoin] is the kernel's
   re-enrollment step, run after the replay and the durable-channel
   restore — for variable copies it is the §4.3 join path (one
   Join_request per recovered copy whose primary is elsewhere; the PC's
   version-stamped Join_copy delivers everything missed), for the
   fixed-copies family it is a no-op (the resumed reliable channels
   redeliver the missed relays).

   Both the Crash and the Restart event are emitted from this function's
   closures: dbflow pairs them as a span, so the analysis proves every
   crash reaches its restart. *)
let install_recovery t ~rejoin =
  Network.set_crash_hooks t.net
    ~on_crash:(fun pid ->
      event t ~pid Event.Crash ~a:(Network.generation t.net pid) ~b:0;
      Store.clear t.stores.(pid))
    ~on_restart:(fun pid ->
      event t ~pid Event.Restart ~a:(Network.generation t.net pid) ~b:0;
      let records, bytes = replay_wal t pid in
      Stats.add t.ctr.recovery_replayed records;
      event t ~pid Event.Replay ~a:records ~b:bytes;
      let outbound, sent, delivered = Wal.net_state t.wals.(pid) in
      Network.restore_proc t.net ~pid ~outbound ~sent ~delivered;
      rejoin pid)

(* The §4.3 rejoin step shared by kernels with a join protocol: ask the
   primary of every recovered copy for a fresh image.  The PC answers
   with a version-stamped [Join_copy]; per-channel FIFO makes it the
   last message on the channel, so the refreshed copy is current. *)
let rejoin_copies t pid =
  let store = t.stores.(pid) in
  Store.iter store (fun c ->
      let node = c.Store.node.Dbtree_blink.Node.id in
      let pc = c.Store.pc in
      if pc <> pid then begin
        Stats.tick t.ctr.recovery_rejoined;
        event t ~pid Event.Rejoin ~a:node ~b:pc;
        send t ~src:pid ~dst:pc (Msg.Join_request { node; requester = pid })
      end)

let run ?(max_events = 50_000_000) t =
  Sim.run ~max_events t.sim;
  (* quiescent: flush the final partial scrape window, close open alerts *)
  Telemetry.finish t.telem ~now:(Sim.now t.sim)
