open Dbtree_sim
module Obs = Dbtree_obs.Obs
module Event = Dbtree_obs.Event
module Network = Net.Make (Msg)
module Registry = Dbtree_history.Registry
module Action = Dbtree_history.Action

(* Interned handles for every stat the protocol kernels bump from message
   handlers.  Resolved once per cluster so the hot loops never hash a
   string key; a handle a given protocol never bumps stays at 0 and is
   invisible in reports. *)
type counters = {
  route_hops : Stats.counter;
  route_chase : Stats.counter;
  route_up : Stats.counter;
  route_parked : Stats.counter;
  route_lost_hint : Stats.counter;
  split_count : Stats.counter;
  split_blocked_updates : Stats.counter;
  split_dropped_entries : Stats.counter;
  root_grow : Stats.counter;
  eager_requeued : Stats.counter;
  relay_applied : Stats.counter;
  relay_discarded : Stats.counter;
  relay_catchup : Stats.counter;
  relay_to_departed : Stats.counter;
  naive_lost : Stats.counter;
  semi_forwarded : Stats.counter;
  link_change_absorbed : Stats.counter;
  link_change_self_absorbed : Stats.counter;
  migrate_count : Stats.counter;
  migrate_skipped : Stats.counter;
  join_count : Stats.counter;
  join_requested : Stats.counter;
  join_duplicate : Stats.counter;
  join_already_member : Stats.counter;
  unjoin_count : Stats.counter;
  unjoin_duplicate : Stats.counter;
  recover_count : Stats.counter;
  recover_departed : Stats.counter;
  recover_forwarded : Stats.counter;
  recover_hinted : Stats.counter;
  recover_rerouted : Stats.counter;
  recover_restart : Stats.counter;
  recover_via_root : Stats.counter;
  reclaim_count : Stats.counter;
  reclaim_absorbed : Stats.counter;
  reclaim_absorb_stale : Stats.counter;
  reclaim_dropped : Stats.counter;
  reclaim_drop_stale : Stats.counter;
  (* Latency histograms (log-bucketed; see {!Stats.hist}).  Observed on
     every operation completion and at the end of every synchronous
     split's AAS window, whether or not tracing is on. *)
  lat_search : Stats.hist;
  lat_insert : Stats.hist;
  lat_delete : Stats.hist;
  lat_scan : Stats.hist;
  aas_time : Stats.hist;
}

let make_counters stats =
  let c = Stats.counter stats in
  {
    route_hops = c "route.hops";
    route_chase = c "route.chase";
    route_up = c "route.up";
    route_parked = c "route.parked";
    route_lost_hint = c "route.lost_hint";
    split_count = c "split.count";
    split_blocked_updates = c "split.blocked_updates";
    split_dropped_entries = c "split.dropped_entries";
    root_grow = c "root.grow";
    eager_requeued = c "eager.requeued";
    relay_applied = c "relay.applied";
    relay_discarded = c "relay.discarded";
    relay_catchup = c "relay.catchup";
    relay_to_departed = c "relay.to_departed";
    naive_lost = c "naive.lost";
    semi_forwarded = c "semi.forwarded";
    link_change_absorbed = c "link_change.absorbed";
    link_change_self_absorbed = c "link_change.self_absorbed";
    migrate_count = c "migrate.count";
    migrate_skipped = c "migrate.skipped";
    join_count = c "join.count";
    join_requested = c "join.requested";
    join_duplicate = c "join.duplicate";
    join_already_member = c "join.already_member";
    unjoin_count = c "unjoin.count";
    unjoin_duplicate = c "unjoin.duplicate";
    recover_count = c "recover.count";
    recover_departed = c "recover.departed";
    recover_forwarded = c "recover.forwarded";
    recover_hinted = c "recover.hinted";
    recover_rerouted = c "recover.rerouted";
    recover_restart = c "recover.restart";
    recover_via_root = c "recover.via_root";
    reclaim_count = c "reclaim.count";
    reclaim_absorbed = c "reclaim.absorbed";
    reclaim_absorb_stale = c "reclaim.absorb_stale";
    reclaim_dropped = c "reclaim.dropped";
    reclaim_drop_stale = c "reclaim.drop_stale";
    lat_search = Stats.hist stats "latency.search";
    lat_insert = Stats.hist stats "latency.insert";
    lat_delete = Stats.hist stats "latency.delete";
    lat_scan = Stats.hist stats "latency.scan";
    aas_time = Stats.hist stats "split.aas_time";
  }

type t = {
  config : Config.t;
  sim : Sim.t;
  net : Network.t;
  stores : Store.t array;
  ops : Opstate.t;
  hist : Registry.t;
  obs : Obs.t;
  partition : Partition.t;
  ctr : counters;
  mutable next_node_id : int;
  mutable next_uid : int;
}

let create (config : Config.t) =
  (match Config.validate config with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Cluster.create: " ^ e));
  let sim = Sim.create ~seed:config.seed () in
  let obs =
    Obs.create ~enabled:config.trace ~capacity:config.trace_capacity
      ~label:"dbtree" ()
  in
  Obs.set_msg_names obs Msg.kind_name;
  let net =
    Network.create ~latency:config.latency ~faults:config.faults
      ~transport:config.transport ~obs sim ~procs:config.procs
  in
  let stores =
    Array.init config.procs (fun pid -> Store.create ~pid ~root:(-1))
  in
  {
    config;
    sim;
    net;
    stores;
    ops = Opstate.create ();
    hist = Registry.create ();
    obs;
    partition =
      Partition.create ~procs:config.procs ~key_space:config.key_space;
    ctr = make_counters (Sim.stats sim);
    next_node_id = 0;
    next_uid = 0;
  }

let store t pid = t.stores.(pid)
let stats t = Sim.stats t.sim
let now t = Sim.now t.sim

let fresh_node_id t =
  let id = t.next_node_id in
  t.next_node_id <- id + 1;
  id

let recording t = t.config.record_history

let fresh_uid t =
  let uid =
    if recording t then Registry.fresh_uid t.hist
    else begin
      let u = t.next_uid in
      t.next_uid <- u + 1;
      u
    end
  in
  if recording t then Registry.note_issued t.hist uid;
  uid

let members_for_range t ~low ~high =
  match t.config.replication with
  | Config.All_procs -> List.init t.config.procs (fun i -> i)
  | Config.Path -> Partition.members_of_range t.partition ~low ~high

let pc_of_members = function
  | [] -> invalid_arg "Cluster.pc_of_members: empty member list"
  | pc :: _ -> pc

let send t ~src ~dst msg = Network.send t.net ~src ~dst msg

(* ---- typed trace events ------------------------------------------- *)

let event t ~pid kind ~a ~b =
  ignore (Obs.emit_here t.obs ~time:(Sim.now t.sim) ~pid ~kind ~a ~b)

let op_kind_code = function
  | Opstate.Search -> Event.op_search
  | Opstate.Insert -> Event.op_insert
  | Opstate.Delete -> Event.op_delete
  | Opstate.Scan -> Event.op_scan

let op_latency_hist t = function
  | Opstate.Search -> t.ctr.lat_search
  | Opstate.Insert -> t.ctr.lat_insert
  | Opstate.Delete -> t.ctr.lat_delete
  | Opstate.Scan -> t.ctr.lat_scan

(* Record the issue of a client operation and make it the ambient causal
   context, so the route message the protocol sends next (and everything
   downstream of it) chains into this op's span. *)
let op_issue t (r : Opstate.record) =
  if Obs.on t.obs then begin
    let id =
      Obs.emit t.obs ~time:(Sim.now t.sim) ~pid:r.Opstate.origin
        ~op:r.Opstate.id ~parent:(-1) ~kind:Event.Op_issue
        ~a:(op_kind_code r.Opstate.kind) ~b:r.Opstate.key
    in
    Obs.set_context t.obs ~op:r.Opstate.id ~parent:id
  end

(* Completion funnel for every protocol: observes the latency histogram
   and records [Op_complete] (only on the first completion — duplicate
   completions under fault injection are counted by [Opstate], not
   traced), then updates the op registry.  Protocols call this instead
   of [Opstate.complete] so the accounting cannot be bypassed. *)
let op_complete t ~op ~result =
  let now = Sim.now t.sim in
  (match Opstate.find t.ops op with
  | Some r when r.Opstate.completed_at = None ->
    let lat = now - r.Opstate.issued_at in
    Stats.hist_observe (op_latency_hist t r.Opstate.kind) lat;
    if Obs.on t.obs then
      ignore
        (Obs.emit t.obs ~time:now ~pid:r.Opstate.origin ~op
           ~parent:(Obs.cur_parent t.obs) ~kind:Event.Op_complete
           ~a:(op_kind_code r.Opstate.kind) ~b:lat)
  | Some _ | None -> ());
  Opstate.complete t.ops ~op ~result ~now

let hist_new_copy t ~node ~pid ~base =
  if recording t then
    Registry.new_copy t.hist ~node ~pid
      ~base:(Registry.Uid_set.of_list base)

let hist_record t ~node ~pid ?(effective = true) ~mode ?(version = 0) ~uid
    kind =
  if recording t then
    Registry.record t.hist ~node ~pid ~effective ~time:(Sim.now t.sim)
      { Action.uid; node; mode; kind; version }

let hist_snapshot t ~node ~pid =
  if recording t then
    Registry.Uid_set.elements (Registry.snapshot t.hist ~node ~pid)
  else []

let hist_retire t ~node ~pid =
  if recording t then Registry.retire_copy t.hist ~node ~pid

let run ?(max_events = 50_000_000) t = Sim.run ~max_events t.sim
