(** The cluster's live telemetry plane.

    Bundles one [Series] registry (counters and gauges scraped on
    simulated time), four per-op-kind sliding-window latency sketches,
    a per-node access-heat arena, and a [Health] SLO rule engine.
    Scrapes ride the simulator's observation probe ({!Sim.set_probe}),
    so an instrumented run executes exactly the same events as a bare
    one; disabled, every hook is a single branch. *)

module Series = Dbtree_obs.Series
module Sketch = Dbtree_obs.Sketch
module Health = Dbtree_obs.Health

type t

val disabled : t
(** Shared inert instance: every hook is one branch, no state. *)

val create :
  ?enabled:bool ->
  ?every:int ->
  ?capacity:int ->
  ?label:string ->
  ?obs:Dbtree_obs.Obs.t ->
  unit ->
  t
(** [create ()] builds an enabled plane scraping every [every] ticks
    (default {!Series.default_every}), retaining [capacity] points per
    series.  [obs] receives the health engine's alert trace events.
    [~enabled:false] returns {!disabled}.  The built-in series are the
    heat cells/gauges ([heat.touches], [heat.hottest],
    [heat.hottest_node], [heat.hottest_share_pct]) and the AAS
    hold-count cell ([aas.open]); the owner registers everything else
    on {!series}. *)

val on : t -> bool
val every : t -> int

val series : t -> Series.t
(** The registry, for gauge/counter registration and rendering. *)

val health : t -> Health.t
(** The rule engine, for rule registration and run summaries. *)

(** {2 Hot-path hooks} — one branch each when telemetry is off;
    allocation-free when on (the heat arena doubles only on first touch
    of a fresh node id): *)

val touch : t -> node:int -> unit
(** Count one access to [node] (negative ids ignored). *)

val observe_latency : t -> kind:int -> now:int -> int -> unit
(** Feed one completed operation's latency into the sliding-window
    sketch for op-kind code [kind] ([Event.op_search] etc.). *)

val aas_begin : t -> unit
val aas_end : t -> unit
(** Bracket an AAS hold; the open count is the [aas.open] series. *)

(** {2 Scrape-path queries}: *)

val sketch : t -> int -> Sketch.t
(** The sketch for an op-kind code.  Only valid on an enabled plane. *)

val percentile : t -> kind:int -> now:int -> float -> int
(** Windowed nearest-rank percentile for an op kind; 0 when disabled. *)

val rate_per_ktick : t -> kind:int -> now:int -> float

val heat_total : t -> int
val hottest : t -> int * int
(** [(node, touches)] of the hottest node; [(-1, 0)] before any touch. *)

val hottest_share_pct : t -> int
(** The hottest node's share of all touches, in percent. *)

(** {2 The scrape loop}: *)

val scrape : t -> now:int -> unit
(** Take one scrape point now: sample every series and evaluate every
    health rule.  Normally driven by {!install}. *)

val install : t -> Dbtree_sim.Sim.t -> unit
(** Arm the simulator's probe to {!scrape} every {!every} ticks.  The
    steady-state loop allocates nothing and schedules no events. *)

val finish : t -> now:int -> unit
(** Take the final partial-window scrape (if the run ended between
    boundaries) and close any open alerts. *)
