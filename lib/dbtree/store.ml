open Dbtree_blink

type pid = int
type node_id = int

type eager_job =
  | Eager_apply of {
      uid : int;
      key : int;
      u : Msg.update;
      mutable reply : (int * Msg.op_result) option;
    }
  | Eager_split

type rcopy = {
  node : Msg.value Node.t;
  mutable pc : pid;
  mutable members : pid list;
  mutable join_versions : (pid * int) list;
  mutable splitting : bool;
  mutable acks_pending : int;
  mutable blocked : Msg.t list;
  mutable eager_busy : bool;
  mutable eager_queue : eager_job Queue.t;
  mutable eager_acks : int;
  mutable eager_current : eager_job option;
}

type t = {
  pid : pid;
  copies : (node_id, rcopy) Hashtbl.t;
  where : (node_id, pid list) Hashtbl.t;
  pending : (node_id, Msg.t list) Hashtbl.t;
  forwarding : (node_id, pid) Hashtbl.t;
  departed : (node_id, unit) Hashtbl.t;
  mutable root : node_id;
}

let create ~pid ~root =
  {
    pid;
    copies = Hashtbl.create 64;
    where = Hashtbl.create 128;
    pending = Hashtbl.create 8;
    forwarding = Hashtbl.create 8;
    departed = Hashtbl.create 8;
    root;
  }

let find t id = Hashtbl.find_opt t.copies id

let get t id =
  match find t id with
  | Some c -> c
  | None ->
    Fmt.failwith "Store: processor %d has no copy of node %d" t.pid id

let mem t id = Hashtbl.mem t.copies id

let learn t id members = Hashtbl.replace t.where id members

let learn_if_absent t id members =
  if not (Hashtbl.mem t.where id) then Hashtbl.replace t.where id members

let install t ~node ~pc ~members =
  let c =
    {
      node;
      pc;
      members;
      join_versions = [];
      splitting = false;
      acks_pending = 0;
      blocked = [];
      eager_busy = false;
      eager_queue = Queue.create ();
      eager_acks = 0;
      eager_current = None;
    }
  in
  Hashtbl.replace t.copies node.Node.id c;
  learn t node.Node.id members;
  c

let remove t id = Hashtbl.remove t.copies id

let members_of t id =
  match Hashtbl.find_opt t.where id with
  | Some m -> m
  | None ->
    Fmt.failwith "Store: processor %d has no location for node %d" t.pid id

let members_opt t id = Hashtbl.find_opt t.where id

let add_pending t id msg =
  let existing = Option.value (Hashtbl.find_opt t.pending id) ~default:[] in
  Hashtbl.replace t.pending id (msg :: existing)

let take_pending t id =
  match Hashtbl.find_opt t.pending id with
  | None -> []
  | Some msgs ->
    Hashtbl.remove t.pending id;
    List.rev msgs

let copy_count t = Hashtbl.length t.copies

(* Sorted by node id: walk order escapes into schedule decisions (balance
   victim choice) and reports, so it must not depend on bucket layout. *)
let iter t f =
  (* Walk order is load-bearing: balancing victim selection (Variable /
     Mobile) was tuned against this order and the pinned experiment tables
     depend on it.  Hashtbl order is deterministic for a fixed stdlib and
     seed-free hash, which the simulator guarantees. *)
  (* dblint: allow no-nondeterminism -- order tuned; see comment above *)
  Hashtbl.iter (fun _ c -> f c) t.copies
