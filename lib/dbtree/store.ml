open Dbtree_blink

type pid = int
type node_id = int

type eager_job =
  | Eager_apply of {
      uid : int;
      key : int;
      u : Msg.update;
      mutable reply : (int * Msg.op_result) option;
    }
  | Eager_split

type rcopy = {
  node : Msg.value Node.t;
  mutable pc : pid;
  mutable members : pid list;
  mutable join_versions : (pid * int) list;
  mutable splitting : bool;
  mutable acks_pending : int;
  mutable blocked : Msg.t list;
  mutable eager_busy : bool;
  eager_queue : eager_job Queue.t;
  mutable eager_acks : int;
  mutable eager_current : eager_job option;
}

(* Node ids are allocated as a dense sequence of small ints by the cluster
   ([Cluster.fresh_node_id]), so the three per-node maps are arenas: flat
   arrays indexed by node id, grown by doubling.  Lookups on the message
   hot path (find/mem/members_of, several per hop) become a bounds check
   and a load instead of a hash and a bucket chain, and the per-processor
   footprint is one word per known node per map. *)
type t = {
  pid : pid;
  mutable copies : rcopy option array;  (* node_id -> local copy *)
  mutable where : pid list option array;  (* node_id -> known member set *)
  mutable pending : Msg.t list array;  (* node_id -> parked msgs, newest first *)
  mutable live_copies : int;  (* number of [Some] slots in [copies] *)
  mutable parked_msgs : int;  (* total messages across [pending]; a gauge *)
  forwarding : (node_id, pid) Hashtbl.t;
  departed : (node_id, unit) Hashtbl.t;
  mutable root : node_id;
  mutable wal : Wal.t option;  (* durable journal, when Config.durability.wal *)
}

let initial_cap = 64

let create ~pid ~root =
  {
    pid;
    copies = Array.make initial_cap None;
    where = Array.make initial_cap None;
    pending = Array.make initial_cap [];
    live_copies = 0;
    parked_msgs = 0;
    forwarding = Hashtbl.create 8;
    departed = Hashtbl.create 8;
    root;
    wal = None;
  }

let set_wal t w = t.wal <- Some w
(* Skip journaling (and snapshot building) during replay: recovery must
   never re-journal the facts it is reading. *)
let[@inline] journal t r =
  match t.wal with
  | Some w when not (Wal.replaying w) -> Wal.append w r
  | Some _ | None -> ()

(* Grow all three arenas together so a single in-bounds check ([id <
   Array.length t.copies]) covers every map. *)
let grow t id =
  let cap = Array.length t.copies in
  let cap' =
    let rec go c = if id < c then c else go (c * 2) in
    go (cap * 2)
  in
  let copies' = Array.make cap' None in
  Array.blit t.copies 0 copies' 0 cap;
  t.copies <- copies';
  let where' = Array.make cap' None in
  Array.blit t.where 0 where' 0 cap;
  t.where <- where';
  let pending' = Array.make cap' [] in
  Array.blit t.pending 0 pending' 0 cap;
  t.pending <- pending'

let[@inline] ensure t id = if id >= Array.length t.copies then grow t id

let find t id = if id < Array.length t.copies then t.copies.(id) else None

let get t id =
  match find t id with
  | Some c -> c
  | None ->
    Fmt.failwith "Store: processor %d has no copy of node %d" t.pid id

let mem t id = id < Array.length t.copies && t.copies.(id) <> None

let learn t id members =
  ensure t id;
  t.where.(id) <- Some members;
  journal t (Wal.Learn { node = id; members })

let learn_if_absent t id members =
  ensure t id;
  if t.where.(id) = None then begin
    t.where.(id) <- Some members;
    journal t (Wal.Learn { node = id; members })
  end

let install t ~node ~pc ~members =
  let c =
    {
      node;
      pc;
      members;
      join_versions = [];
      splitting = false;
      acks_pending = 0;
      blocked = [];
      eager_busy = false;
      eager_queue = Queue.create ();
      eager_acks = 0;
      eager_current = None;
    }
  in
  let id = node.Node.id in
  ensure t id;
  if t.copies.(id) = None then t.live_copies <- t.live_copies + 1;
  t.copies.(id) <- Some c;
  t.where.(id) <- Some members;
  (match t.wal with
  | Some w when not (Wal.replaying w) ->
    Wal.append w
      (Wal.Write
         {
           snap = Msg.snapshot_of_node node;
           pc;
           members;
           join_versions = [];
           splitting = false;
         })
  | Some _ | None -> ());
  c

let remove t id =
  if id < Array.length t.copies && t.copies.(id) <> None then begin
    t.copies.(id) <- None;
    t.live_copies <- t.live_copies - 1;
    journal t (Wal.Remove { node = id })
  end

let members_of t id =
  match (if id < Array.length t.where then t.where.(id) else None) with
  | Some m -> m
  | None ->
    Fmt.failwith "Store: processor %d has no location for node %d" t.pid id

let members_opt t id =
  if id < Array.length t.where then t.where.(id) else None

let add_pending t id msg =
  ensure t id;
  t.pending.(id) <- msg :: t.pending.(id);
  t.parked_msgs <- t.parked_msgs + 1;
  journal t (Wal.Park { node = id; msg })

let take_pending t id =
  if id < Array.length t.pending then begin
    let msgs = t.pending.(id) in
    t.pending.(id) <- [];
    if msgs <> [] then begin
      t.parked_msgs <- t.parked_msgs - List.length msgs;
      journal t (Wal.Unpark { node = id })
    end;
    List.rev msgs
  end
  else []

let parked_count t = t.parked_msgs

let iter_pending t f =
  for id = 0 to Array.length t.pending - 1 do
    match t.pending.(id) with [] -> () | msgs -> f id (List.rev msgs)
  done

let copy_count t = t.live_copies

(* Ascending node-id walk.  The order escapes into schedule decisions
   (balance victim choice in Variable/Mobile) and reports, so it must be
   deterministic; the arena makes it the natural creation order of the
   nodes rather than an accident of bucket layout. *)
let iter t f =
  let a = t.copies in
  for id = 0 to Array.length a - 1 do
    match Array.unsafe_get a id with None -> () | Some c -> f c
  done

(* ------------------------------------------------------------------ *)
(* Durability                                                          *)

(* Journal the full image of a copy after an in-place mutation (entry
   writes, link changes, pc/member/version updates).  Kernels call this
   at every point where the copy must survive a crash; recovery rebuilds
   the copy from the newest Write record. *)
let wrote t id =
  match t.wal with
  | None -> ()
  | Some w when Wal.replaying w -> ()
  | Some w -> (
    match find t id with
    | None -> ()
    | Some c ->
      (* Replaying this [Write] re-runs [install], which refreshes the
         location hint from the member list.  Mirror that here so the
         live store and its replay agree on [where] — otherwise a hint
         learned before an in-place write survives live but is clobbered
         during recovery (or the reverse). *)
      t.where.(id) <- Some c.members;
      Wal.append w
        (Wal.Write
           {
             snap = Msg.snapshot_of_node c.node;
             pc = c.pc;
             members = c.members;
             join_versions = c.join_versions;
             splitting = c.splitting;
           }))

(* Journaling setters for the per-store scalars and side tables the
   kernels used to poke directly. *)
let set_root t id =
  t.root <- id;
  journal t (Wal.Root { node = id })

let depart t id =
  Hashtbl.replace t.departed id ();
  journal t (Wal.Depart { node = id })

let undepart t id =
  if Hashtbl.mem t.departed id then begin
    Hashtbl.remove t.departed id;
    journal t (Wal.Undepart { node = id })
  end

let set_forwarding t id dst =
  Hashtbl.replace t.forwarding id dst;
  journal t (Wal.Forward { node = id; dst })

let clear_forwarding t id =
  if Hashtbl.mem t.forwarding id then begin
    Hashtbl.remove t.forwarding id;
    journal t (Wal.Unforward { node = id })
  end

(* A crash: every volatile structure is dropped.  The WAL handle
   survives — it is the disk. *)
let clear t =
  t.copies <- Array.make initial_cap None;
  t.where <- Array.make initial_cap None;
  t.pending <- Array.make initial_cap [];
  t.live_copies <- 0;
  t.parked_msgs <- 0;
  Hashtbl.reset t.forwarding;
  Hashtbl.reset t.departed;
  t.root <- -1

(* Recovery: apply one journal record.  Run under [Wal.set_replaying] so
   the mutations below do not re-journal themselves.  Net-layer records
   (Send/Retire/Deliver) and the Op_done audit stream are not store
   state and are ignored here. *)
let apply_record t = function
  | Wal.Write { snap; pc; members; join_versions; splitting } ->
    let c = install t ~node:(Msg.node_of_snapshot snap) ~pc ~members in
    c.join_versions <- join_versions;
    c.splitting <- splitting
  | Wal.Remove { node } -> remove t node
  | Wal.Learn { node; members } -> learn t node members
  | Wal.Unlearn { node } ->
    if node < Array.length t.where then t.where.(node) <- None
  | Wal.Root { node } -> t.root <- node
  | Wal.Depart { node } -> Hashtbl.replace t.departed node ()
  | Wal.Undepart { node } -> Hashtbl.remove t.departed node
  | Wal.Forward { node; dst } -> Hashtbl.replace t.forwarding node dst
  | Wal.Unforward { node } -> Hashtbl.remove t.forwarding node
  | Wal.Park { node; msg } -> add_pending t node msg
  | Wal.Unpark { node } ->
    if node < Array.length t.pending then begin
      t.parked_msgs <- t.parked_msgs - List.length t.pending.(node);
      t.pending.(node) <- []
    end
  | Wal.Op_done _ | Wal.Send _ | Wal.Retire _ | Wal.Deliver _ -> ()

(* Deterministic digest of the journaled state, for the recovery
   property tests: digest (live store) = digest (store replayed from its
   WAL), and same-seed runs produce identical digests.  Only
   crash-survivable fields participate — AAS/eager scratch state is
   volatile by design.  Every map is emitted in sorted key order; no
   hash-bucket order escapes. *)
let digest t =
  let buf = Buffer.create 1024 in
  (* dblint: allow no-nondeterminism -- unordered fold feeds the sort below *)
  let sorted h = List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) h []) in
  for id = 0 to Array.length t.copies - 1 do
    match t.copies.(id) with
    | None -> ()
    | Some c ->
      let snap = Msg.snapshot_of_node c.node in
      Buffer.add_string buf
        (Marshal.to_string
           (snap, c.pc, c.members, c.join_versions, c.splitting)
           [])
  done;
  for id = 0 to Array.length t.where - 1 do
    match t.where.(id) with
    | None -> ()
    | Some m -> Buffer.add_string buf (Marshal.to_string (id, m) [])
  done;
  Buffer.add_string buf (string_of_int t.root);
  List.iter
    (fun kv -> Buffer.add_string buf (Marshal.to_string kv []))
    (sorted t.forwarding);
  List.iter
    (fun kv -> Buffer.add_string buf (Marshal.to_string kv []))
    (sorted t.departed);
  for id = 0 to Array.length t.pending - 1 do
    match t.pending.(id) with
    | [] -> ()
    | msgs -> Buffer.add_string buf (Marshal.to_string (id, msgs) [])
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))
