open Dbtree_blink

type pid = int
type node_id = int

type eager_job =
  | Eager_apply of {
      uid : int;
      key : int;
      u : Msg.update;
      mutable reply : (int * Msg.op_result) option;
    }
  | Eager_split

type rcopy = {
  node : Msg.value Node.t;
  mutable pc : pid;
  mutable members : pid list;
  mutable join_versions : (pid * int) list;
  mutable splitting : bool;
  mutable acks_pending : int;
  mutable blocked : Msg.t list;
  mutable eager_busy : bool;
  eager_queue : eager_job Queue.t;
  mutable eager_acks : int;
  mutable eager_current : eager_job option;
}

(* Node ids are allocated as a dense sequence of small ints by the cluster
   ([Cluster.fresh_node_id]), so the three per-node maps are arenas: flat
   arrays indexed by node id, grown by doubling.  Lookups on the message
   hot path (find/mem/members_of, several per hop) become a bounds check
   and a load instead of a hash and a bucket chain, and the per-processor
   footprint is one word per known node per map. *)
type t = {
  pid : pid;
  mutable copies : rcopy option array;  (* node_id -> local copy *)
  mutable where : pid list option array;  (* node_id -> known member set *)
  mutable pending : Msg.t list array;  (* node_id -> parked msgs, newest first *)
  mutable live_copies : int;  (* number of [Some] slots in [copies] *)
  forwarding : (node_id, pid) Hashtbl.t;
  departed : (node_id, unit) Hashtbl.t;
  mutable root : node_id;
}

let initial_cap = 64

let create ~pid ~root =
  {
    pid;
    copies = Array.make initial_cap None;
    where = Array.make initial_cap None;
    pending = Array.make initial_cap [];
    live_copies = 0;
    forwarding = Hashtbl.create 8;
    departed = Hashtbl.create 8;
    root;
  }

(* Grow all three arenas together so a single in-bounds check ([id <
   Array.length t.copies]) covers every map. *)
let grow t id =
  let cap = Array.length t.copies in
  let cap' =
    let rec go c = if id < c then c else go (c * 2) in
    go (cap * 2)
  in
  let copies' = Array.make cap' None in
  Array.blit t.copies 0 copies' 0 cap;
  t.copies <- copies';
  let where' = Array.make cap' None in
  Array.blit t.where 0 where' 0 cap;
  t.where <- where';
  let pending' = Array.make cap' [] in
  Array.blit t.pending 0 pending' 0 cap;
  t.pending <- pending'

let[@inline] ensure t id = if id >= Array.length t.copies then grow t id

let find t id = if id < Array.length t.copies then t.copies.(id) else None

let get t id =
  match find t id with
  | Some c -> c
  | None ->
    Fmt.failwith "Store: processor %d has no copy of node %d" t.pid id

let mem t id = id < Array.length t.copies && t.copies.(id) <> None

let learn t id members =
  ensure t id;
  t.where.(id) <- Some members

let learn_if_absent t id members =
  ensure t id;
  if t.where.(id) = None then t.where.(id) <- Some members

let install t ~node ~pc ~members =
  let c =
    {
      node;
      pc;
      members;
      join_versions = [];
      splitting = false;
      acks_pending = 0;
      blocked = [];
      eager_busy = false;
      eager_queue = Queue.create ();
      eager_acks = 0;
      eager_current = None;
    }
  in
  let id = node.Node.id in
  ensure t id;
  if t.copies.(id) = None then t.live_copies <- t.live_copies + 1;
  t.copies.(id) <- Some c;
  t.where.(id) <- Some members;
  c

let remove t id =
  if id < Array.length t.copies && t.copies.(id) <> None then begin
    t.copies.(id) <- None;
    t.live_copies <- t.live_copies - 1
  end

let members_of t id =
  match (if id < Array.length t.where then t.where.(id) else None) with
  | Some m -> m
  | None ->
    Fmt.failwith "Store: processor %d has no location for node %d" t.pid id

let members_opt t id =
  if id < Array.length t.where then t.where.(id) else None

let add_pending t id msg =
  ensure t id;
  t.pending.(id) <- msg :: t.pending.(id)

let take_pending t id =
  if id < Array.length t.pending then begin
    let msgs = t.pending.(id) in
    t.pending.(id) <- [];
    List.rev msgs
  end
  else []

let iter_pending t f =
  for id = 0 to Array.length t.pending - 1 do
    match t.pending.(id) with [] -> () | msgs -> f id (List.rev msgs)
  done

let copy_count t = t.live_copies

(* Ascending node-id walk.  The order escapes into schedule decisions
   (balance victim choice in Variable/Mobile) and reports, so it must be
   deterministic; the arena makes it the natural creation order of the
   nodes rather than an accident of bucket layout. *)
let iter t f =
  let a = t.copies in
  for id = 0 to Array.length a - 1 do
    match Array.unsafe_get a id with None -> () | Some c -> f c
  done
