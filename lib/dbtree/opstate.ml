type kind = Search | Insert | Delete | Scan

type record = {
  id : int;
  kind : kind;
  key : int;
  value : Msg.value option;
  origin : Msg.pid;
  issued_at : int;
  mutable completed_at : int option;
  mutable result : Msg.op_result option;
}

(* Operation ids are this registry's own dense counter, so the record
   map is an arena — a flat array indexed by op id, grown by doubling.
   Completion (two probes per op on the reply path) is a bounds check
   and a load. *)
type t = {
  mutable arr : record option array;
  mutable next : int;
  mutable completed : int;
  mutable oldest : int;  (* scan cursor: every op below it is complete *)
  mutable hook : (record -> unit) option;
  mutable tolerate_duplicates : bool;
  mutable duplicate_completions : int;
}

let create () =
  {
    arr = Array.make 1024 None;
    next = 0;
    completed = 0;
    oldest = 0;
    hook = None;
    tolerate_duplicates = false;
    duplicate_completions = 0;
  }

let set_tolerant t = t.tolerate_duplicates <- true
let duplicate_completions t = t.duplicate_completions

let register t ~kind ~key ~value ~origin ~now =
  let r =
    {
      id = t.next;
      kind;
      key;
      value;
      origin;
      issued_at = now;
      completed_at = None;
      result = None;
    }
  in
  t.next <- t.next + 1;
  if r.id >= Array.length t.arr then begin
    let arr' = Array.make (2 * Array.length t.arr) None in
    Array.blit t.arr 0 arr' 0 (Array.length t.arr);
    t.arr <- arr'
  end;
  t.arr.(r.id) <- Some r;
  r

let find t op =
  if op >= 0 && op < t.next then t.arr.(op) else None

let complete t ~op ~result ~now =
  match find t op with
  | None -> Fmt.failwith "Opstate.complete: unknown operation %d" op
  | Some r when r.completed_at <> None ->
    if t.tolerate_duplicates then
      t.duplicate_completions <- t.duplicate_completions + 1
    else Fmt.failwith "Opstate.complete: operation %d completed twice" op
  | Some r ->
    r.completed_at <- Some now;
    r.result <- Some result;
    t.completed <- t.completed + 1;
    match t.hook with Some f -> f r | None -> ()

let on_complete t f = t.hook <- Some f
let issued t = t.next
let completed t = t.completed
let outstanding t = t.next - t.completed

(* Age of the oldest still-outstanding op — the stall-duration telemetry
   signal.  The cursor only moves forward (ids complete roughly in issue
   order), so the scan is amortized O(1) per call across a run. *)
let oldest_outstanding_age t ~now =
  while
    t.oldest < t.next
    &&
    match t.arr.(t.oldest) with
    | Some r -> r.completed_at <> None
    | None -> true
  do
    t.oldest <- t.oldest + 1
  done;
  if t.oldest >= t.next then 0
  else
    match t.arr.(t.oldest) with
    | Some r -> now - r.issued_at
    | None -> 0

(* Ascending op id — the issue order, which is what [sorted_bindings]
   over the pre-arena hash table produced. *)
let iter t f =
  for i = 0 to t.next - 1 do
    match t.arr.(i) with None -> () | Some r -> f r
  done

let inserted_keys t =
  (* Replay completed updates in issue order; experiments avoid racing
     updates on the same key, so issue order is the semantic order. *)
  let keys = Hashtbl.create 256 in
  iter t (fun r ->
      match (r.kind, r.result) with
      | Insert, Some Msg.Inserted ->
        Hashtbl.replace keys r.key (Option.value r.value ~default:"")
      | Delete, Some (Msg.Removed true) -> Hashtbl.remove keys r.key
      | (Search | Insert | Delete | Scan), _ -> ());
  keys

let latencies t kind =
  let acc = ref [] in
  iter t (fun r ->
      match r.completed_at with
      | Some c when r.kind = kind -> acc := (c - r.issued_at) :: !acc
      | Some _ | None -> ());
  List.rev !acc

let mean_latency t kind =
  match latencies t kind with
  | [] -> 0.0
  | l ->
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let max_latency t kind = List.fold_left max 0 (latencies t kind)

let latency_percentile t kind p =
  if p < 0.0 || p > 1.0 then invalid_arg "Opstate.latency_percentile";
  match List.sort compare (latencies t kind) with
  | [] -> 0.0
  | l ->
    (* Nearest-rank: the p-th percentile of n samples is the value at rank
       ceil(p*n) (1-based).  Truncating instead of rounding up biases every
       percentile low — p99 of 100 samples used to read sample 98. *)
    let arr = Array.of_list l in
    let n = Array.length arr in
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let i = max 0 (min (n - 1) (rank - 1)) in
    float_of_int arr.(i)
