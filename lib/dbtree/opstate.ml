type kind = Search | Insert | Delete | Scan

type record = {
  id : int;
  kind : kind;
  key : int;
  value : Msg.value option;
  origin : Msg.pid;
  issued_at : int;
  mutable completed_at : int option;
  mutable result : Msg.op_result option;
}

type t = {
  tbl : (int, record) Hashtbl.t;
  mutable next : int;
  mutable completed : int;
  mutable hook : (record -> unit) option;
  mutable tolerate_duplicates : bool;
  mutable duplicate_completions : int;
}

let create () =
  {
    tbl = Hashtbl.create 1024;
    next = 0;
    completed = 0;
    hook = None;
    tolerate_duplicates = false;
    duplicate_completions = 0;
  }

let set_tolerant t = t.tolerate_duplicates <- true
let duplicate_completions t = t.duplicate_completions

let register t ~kind ~key ~value ~origin ~now =
  let r =
    {
      id = t.next;
      kind;
      key;
      value;
      origin;
      issued_at = now;
      completed_at = None;
      result = None;
    }
  in
  t.next <- t.next + 1;
  Hashtbl.add t.tbl r.id r;
  r

let complete t ~op ~result ~now =
  match Hashtbl.find_opt t.tbl op with
  | None -> Fmt.failwith "Opstate.complete: unknown operation %d" op
  | Some r when r.completed_at <> None ->
    if t.tolerate_duplicates then
      t.duplicate_completions <- t.duplicate_completions + 1
    else Fmt.failwith "Opstate.complete: operation %d completed twice" op
  | Some r ->
    r.completed_at <- Some now;
    r.result <- Some result;
    t.completed <- t.completed + 1;
    match t.hook with Some f -> f r | None -> ()

let on_complete t f = t.hook <- Some f
let find t op = Hashtbl.find_opt t.tbl op
let issued t = t.next
let completed t = t.completed
let outstanding t = t.next - t.completed
let iter t f =
  List.iter (fun (_, r) -> f r) (Dbtree_sim.Stats.sorted_bindings t.tbl)

let inserted_keys t =
  (* Replay completed updates in issue order; experiments avoid racing
     updates on the same key, so issue order is the semantic order.
     [sorted_bindings] sorts by op id, which is the issue order. *)
  let records = List.map snd (Dbtree_sim.Stats.sorted_bindings t.tbl) in
  let keys = Hashtbl.create 256 in
  List.iter
    (fun r ->
      match (r.kind, r.result) with
      | Insert, Some Msg.Inserted ->
        Hashtbl.replace keys r.key (Option.value r.value ~default:"")
      | Delete, Some (Msg.Removed true) -> Hashtbl.remove keys r.key
      | (Search | Insert | Delete | Scan), _ -> ())
    records;
  keys

let latencies t kind =
  List.filter_map
    (fun (_, r) ->
      match r.completed_at with
      | Some c when r.kind = kind -> Some (c - r.issued_at)
      | Some _ | None -> None)
    (Dbtree_sim.Stats.sorted_bindings t.tbl)

let mean_latency t kind =
  match latencies t kind with
  | [] -> 0.0
  | l ->
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let max_latency t kind = List.fold_left max 0 (latencies t kind)

let latency_percentile t kind p =
  if p < 0.0 || p > 1.0 then invalid_arg "Opstate.latency_percentile";
  match List.sort compare (latencies t kind) with
  | [] -> 0.0
  | l ->
    (* Nearest-rank: the p-th percentile of n samples is the value at rank
       ceil(p*n) (1-based).  Truncating instead of rounding up biases every
       percentile low — p99 of 100 samples used to read sample 98. *)
    let arr = Array.of_list l in
    let n = Array.length arr in
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let i = max 0 (min (n - 1) (rank - 1)) in
    float_of_int arr.(i)
