open Dbtree_blink

type pid = int
type node_id = int
type value = string

type snapshot = {
  s_id : node_id;
  s_level : int;
  s_low : Bound.t;
  s_high : Bound.t;
  s_entries : (int * value Node.payload) list;
  s_right : node_id option;
  s_left : node_id option;
  s_parent : node_id option;
  s_version : int;
  s_base : int list;
}

type op_result =
  | Found of value
  | Absent
  | Inserted
  | Removed of bool
  | Bindings of (int * value) list

type update =
  | Upsert of { op : int; origin : pid; value : value }
  | Remove of { op : int; origin : pid }
  | Add_child of { child : node_id; child_members : pid list }
  | Drop_child of { child : node_id; fallback : node_id; fallback_pid : pid }

type routed =
  | Search of { op : int; origin : pid }
  | Scan of { op : int; origin : pid; hi : int; acc : (int * value) list }
  | Update of { uid : int; u : update }
  | Absorb of {
      uid : int;
      dead : node_id;
      dead_high_key : int option;
      dead_right : node_id option;
      dead_version : int;
    }
  | Relink of {
      uid : int;
      which : [ `Left | `Right | `Child of node_id ];
      target : node_id;
      target_pid : pid;
      version : int;
      relayed : bool;
    }

type t =
  | Route of { key : int; level : int; node : node_id; act : routed }
  | Op_done of { op : int; result : op_result }
  | Relay_update of {
      uid : int;
      node : node_id;
      key : int;
      u : update;
      version : int;
      sender : pid;
    }
  | Split_start of { node : node_id }
  | Split_ack of { node : node_id }
  | Split_done of {
      uid : int;
      node : node_id;
      sep : int;
      sibling : snapshot;
      sibling_members : pid list;
      sync : bool;
    }
  | New_root of { snap : snapshot; members : pid list }
  | Eager_update of { uid : int; node : node_id; key : int; u : update }
  | Eager_split of {
      uid : int;
      node : node_id;
      sep : int;
      sibling : snapshot;
      sibling_members : pid list;
    }
  | Eager_ack of { node : node_id }
  | Batch of batch
  | Migrate_install of {
      snap : snapshot;
      ancestors : (node_id * pid list) list;
      from_pid : pid;
    }
  | Join_request of { node : node_id; requester : pid }
  | Join_copy of {
      node : node_id;
      snap : snapshot;
      members : pid list;
      join_version : int;
      hints : (node_id * pid list) list;
    }
  | Relay_member of {
      node : node_id;
      change : [ `Join of pid | `Unjoin of pid ];
      version : int;
      uid : int;
    }
  | Unjoin_request of { node : node_id; pid : pid }

and batch = { parts : t list; mutable wire_size : int }

let batch parts = Batch { parts; wire_size = -1 }

(* Dense kind ids: the network keeps one pre-interned counter per kind and
   indexes it with [kind_id], so the hot accounting path never allocates or
   hashes a kind string.  [kind_names] is the inverse table. *)
let kind_id = function
  | Route { act = Search _; _ } -> 0
  | Route { act = Scan _; _ } -> 1
  | Route { act = Update { u = Upsert _; _ }; _ } -> 2
  | Route { act = Update { u = Remove _; _ }; _ } -> 3
  | Route { act = Update { u = Add_child _; _ }; _ } -> 4
  | Route { act = Update { u = Drop_child _; _ }; _ } -> 5
  | Route { act = Absorb _; _ } -> 6
  | Route { act = Relink _; _ } -> 7
  | Op_done _ -> 8
  | Relay_update _ -> 9
  | Split_start _ -> 10
  | Split_ack _ -> 11
  | Split_done { sync = true; _ } -> 12
  | Split_done { sync = false; _ } -> 13
  | New_root _ -> 14
  | Eager_update _ -> 15
  | Eager_split _ -> 16
  | Eager_ack _ -> 17
  | Batch _ -> 18
  | Migrate_install _ -> 19
  | Join_request _ -> 20
  | Join_copy _ -> 21
  | Relay_member _ -> 22
  | Unjoin_request _ -> 23

let kind_names =
  [|
    "route.search"; "route.scan"; "route.upsert"; "route.remove";
    "route.add_child"; "route.drop_child"; "absorb"; "link_change";
    "op_done"; "relay_update"; "split_start"; "split_ack"; "split_end";
    "relay_split"; "new_root"; "eager_update"; "eager_split"; "eager_ack";
    "batch"; "migrate"; "join"; "join_copy"; "relay_member"; "unjoin";
  |]

let num_kinds = Array.length kind_names
let kind_name i = kind_names.(i)
let kind m = kind_name (kind_id m)

let update_size = function
  | Upsert { value; _ } -> 16 + String.length value
  | Remove _ -> 16
  | Add_child { child_members; _ } -> 16 + (4 * List.length child_members)
  | Drop_child _ -> 20

let snapshot_size s =
  48
  + List.fold_left
      (fun acc (_, p) ->
        acc + 12
        + match p with Node.Data v -> String.length v | Node.Child _ -> 0)
      0 s.s_entries

let bindings_size acc =
  List.fold_left (fun n (_, v) -> n + 12 + String.length v) 0 acc

let rec size = function
  | Route { act = Search _; _ } -> 32
  | Route { act = Scan { acc; _ }; _ } -> 32 + bindings_size acc
  | Route { act = Update { u; _ }; _ } -> 24 + update_size u
  | Route { act = Relink _; _ } -> 44
  | Route { act = Absorb _; _ } -> 36
  | Op_done { result = Found v; _ } -> 16 + String.length v
  | Op_done { result = Bindings acc; _ } -> 16 + bindings_size acc
  | Op_done _ -> 16
  | Relay_update { u; _ } -> 28 + update_size u
  | Split_start _ | Split_ack _ | Eager_ack _ -> 12
  | Split_done { sibling; sibling_members; _ }
  | Eager_split { sibling; sibling_members; _ } ->
    24 + snapshot_size sibling + (4 * List.length sibling_members)
  | New_root { snap; members } -> 8 + snapshot_size snap + (4 * List.length members)
  | Eager_update { u; _ } -> 24 + update_size u
  | Batch b ->
    (* Memoised: a batch's size is asked for on send and again whenever a
       broadcast or resend prices it; the parts are immutable once built. *)
    if b.wire_size < 0 then
      b.wire_size <- List.fold_left (fun acc m -> acc + size m) 8 b.parts;
    b.wire_size
  | Migrate_install { snap; ancestors; _ } ->
    16 + snapshot_size snap
    + List.fold_left (fun acc (_, ms) -> acc + 8 + (4 * List.length ms)) 0 ancestors
  | Join_request _ | Unjoin_request _ -> 16
  | Join_copy { snap; members; hints; _ } ->
    16 + snapshot_size snap + (4 * List.length members)
    + List.fold_left (fun acc (_, ms) -> acc + 8 + (4 * List.length ms)) 0 hints
  | Relay_member _ -> 20

let snapshot_of_node ?(base = []) (n : value Node.t) =
  {
    s_id = n.Node.id;
    s_level = n.Node.level;
    s_low = n.Node.low;
    s_high = n.Node.high;
    s_entries = Entries.to_list n.Node.entries;
    s_right = n.Node.right;
    s_left = n.Node.left;
    s_parent = n.Node.parent;
    s_version = n.Node.version;
    s_base = base;
  }

let node_of_snapshot s =
  let n =
    Node.make ~id:s.s_id ~level:s.s_level ~low:s.s_low ~high:s.s_high
      ?right:s.s_right ?left:s.s_left ?parent:s.s_parent ~version:s.s_version
      (Entries.of_sorted_list s.s_entries)
  in
  n

let pp ppf m = Fmt.pf ppf "%s" (kind m)
