(* The cluster's live telemetry plane: one Series registry (counters and
   gauges scraped on simulated time), per-op-kind sliding-window latency
   sketches, per-node access heat, and an SLO health rule engine — all
   driven from the simulator's observation probe, so an instrumented run
   executes the exact same events as a bare one.

   The hot-path surface is three helpers ([touch], [observe_latency],
   [aas_begin]/[aas_end]); each is one branch when telemetry is off, and
   none allocates when it is on (the heat arena doubles only on a
   first-touch of a fresh node id). *)

module Series = Dbtree_obs.Series
module Sketch = Dbtree_obs.Sketch
module Health = Dbtree_obs.Health
module Obs = Dbtree_obs.Obs
open Dbtree_sim

type t = {
  on : bool;
  every : int;
  series : Series.t;
  health : Health.t;
  sk : Sketch.t array;  (* per op-kind code (Event.op_search ..), 4 entries *)
  mutable heat : int array;  (* node id -> accesses (arena, doubled) *)
  heat_total : int ref;  (* the "heat.touches" cell *)
  aas_open : int ref;  (* the "aas.open" cell *)
  mutable heat_max : int;
  mutable heat_argmax : int;
  mutable last_scrape : int;
}

let disabled =
  {
    on = false;
    every = Series.default_every;
    series = Series.disabled;
    health = Health.create ();
    sk = [||];
    heat = [||];
    heat_total = ref 0;
    aas_open = ref 0;
    heat_max = 0;
    heat_argmax = -1;
    last_scrape = -1;
  }

let create ?(enabled = true) ?(every = Series.default_every)
    ?(capacity = Series.default_capacity) ?(label = "dbtree")
    ?(obs = Obs.disabled) () =
  if not enabled then disabled
  else begin
    let series = Series.create ~enabled ~every ~capacity ~label () in
    let t =
      {
        on = true;
        every;
        series;
        health = Health.create ~obs ();
        sk =
          Array.init 4 (fun _ -> Sketch.create ~slices:8 ~slice_width:every ());
        heat = Array.make 64 0;
        heat_total = Series.cell series "heat.touches";
        aas_open = Series.cell series "aas.open";
        heat_max = 0;
        heat_argmax = -1;
        last_scrape = -1;
      }
    in
    Series.gauge series "heat.hottest" (fun () -> t.heat_max);
    Series.gauge series "heat.hottest_node" (fun () -> t.heat_argmax);
    Series.gauge series "heat.hottest_share_pct" (fun () ->
        if !(t.heat_total) = 0 then 0 else 100 * t.heat_max / !(t.heat_total));
    t
  end

let on t = t.on
let every t = t.every
let series t = t.series
let health t = t.health

(* ---- hot-path hooks ------------------------------------------------ *)

(* Top level so [touch] allocates no closure per call; only the
   doubling branch ever runs it. *)
let rec grow_cap c node = if node < c then c else grow_cap (2 * c) node

let touch t ~node =
  if t.on && node >= 0 then begin
    if node >= Array.length t.heat then begin
      let cap = grow_cap (2 * Array.length t.heat) node in
      (* dbperf: alloc-ok -- heat-arena doubling: amortized O(1) per first touch, never reached at steady state *)
      let heat' = Array.make cap 0 in
      Array.blit t.heat 0 heat' 0 (Array.length t.heat);
      t.heat <- heat'
    end;
    let h = t.heat.(node) + 1 in
    t.heat.(node) <- h;
    incr t.heat_total;
    if h > t.heat_max then begin
      t.heat_max <- h;
      t.heat_argmax <- node
    end
  end

let observe_latency t ~kind ~now lat =
  if t.on then Sketch.observe t.sk.(kind) ~now lat

let aas_begin t = if t.on then incr t.aas_open
let aas_end t = if t.on then decr t.aas_open

(* ---- scrape-path queries ------------------------------------------- *)

let sketch t kind = t.sk.(kind)

let percentile t ~kind ~now p =
  if t.on then Sketch.percentile t.sk.(kind) ~now p else 0

let rate_per_ktick t ~kind ~now =
  if t.on then Sketch.rate_per_ktick t.sk.(kind) ~now else 0.0

let heat_total t = !(t.heat_total)
let hottest t = (t.heat_argmax, t.heat_max)

let hottest_share_pct t =
  if !(t.heat_total) = 0 then 0 else 100 * t.heat_max / !(t.heat_total)

(* ---- the scrape loop ----------------------------------------------- *)

let scrape t ~now =
  if t.on then begin
    t.last_scrape <- now;
    Series.scrape t.series ~now;
    Health.evaluate t.health ~now
  end

(* Ride the simulator's probe: the callback is a single recursive
   closure, so steady-state scraping allocates nothing and — because the
   probe lives outside the event queue — perturbs nothing. *)
let install t sim =
  if t.on then begin
    let rec cb now =
      scrape t ~now;
      Sim.set_probe sim ~at:(now + t.every) cb
    in
    Sim.set_probe sim ~at:(Sim.now sim + t.every) cb
  end

(* Final partial window (the probe only fires when an event reaches the
   boundary) plus alert closure, at end of run. *)
let finish t ~now =
  if t.on then begin
    if now > t.last_scrape then scrape t ~now;
    Health.finish t.health ~now
  end
