open Dbtree_blink
open Dbtree_sim
module Action = Dbtree_history.Action
module Event = Dbtree_obs.Event

type link_tag = [ `Left | `Right | `Child of int ]

type t = {
  cl : Cluster.t;
  (* Per-copy link versions: (pid, node, link) -> last applied version. *)
  link_versions : (int * int * link_tag, int) Hashtbl.t;
  mutable splits : int;
  mutable migrations : int;
  mutable joins : int;
  mutable unjoins : int;
}

let cluster t = t.cl
let config t = t.cl.Cluster.config
let splits t = t.splits
let migrations t = t.migrations
let joins t = t.joins
let unjoins t = t.unjoins
let capacity t = (config t).Config.capacity
let procs t = (config t).Config.procs
let ctr t = t.cl.Cluster.ctr
let send t ~src ~dst msg = Cluster.send t.cl ~src ~dst msg
let send_local t pid msg = send t ~src:pid ~dst:pid msg

let reply_op t ~src op result =
  if op >= 0 then
    match Opstate.find t.cl.Cluster.ops op with
    | Some r -> send t ~src ~dst:r.Opstate.origin (Msg.Op_done { op; result })
    | None -> Fmt.failwith "Variable: reply for unknown op %d" op

let guide_key (n : Msg.value Node.t) =
  match (n.Node.low, n.Node.high) with
  | Bound.Key k, _ -> k
  | Bound.Neg_inf, Bound.Key h -> h - 1
  | Bound.Neg_inf, (Bound.Pos_inf | Bound.Neg_inf) -> 0
  | Bound.Pos_inf, _ -> invalid_arg "Variable.guide_key: low = +inf"

let choose_member t members =
  match members with
  | [ m ] -> m
  | ms ->
    (* Same single [Rng.int] draw as [Rng.pick], minus the per-hop
       intermediate array. *)
    List.nth ms (Rng.int (Sim.rng t.cl.Cluster.sim) (List.length ms))

let forward ?authority t pid msg next =
  let store = Cluster.store t.cl pid in
  Stats.tick (ctr t).Cluster.route_hops;
  if Store.mem store next then send_local t pid msg
  else
    match Store.members_opt store next with
    | Some members when List.exists (fun m -> m <> pid) members ->
      let members = List.filter (fun m -> m <> pid) members in
      send t ~src:pid ~dst:(choose_member t members) msg
    | Some _ | None -> (
      Stats.tick (ctr t).Cluster.route_lost_hint;
      (* Unknown location.  Hand the action to the PC of the node that
         referenced [next] — the PC learned every child and sibling it
         ever pointed to.  Without an authority, restart at the root. *)
      match authority with
      | Some a when a <> pid -> send t ~src:pid ~dst:a msg
      | Some _ | None -> (
        match msg with
        | Msg.Route r ->
          if r.node = store.Store.root then
            Fmt.failwith "Variable: processor %d lost at its own root" pid
          else send_local t pid (Msg.Route { r with node = store.Store.root })
        | Msg.Op_done _ | Msg.Relay_update _ | Msg.Split_start _
        | Msg.Split_ack _ | Msg.Split_done _ | Msg.New_root _
        | Msg.Eager_update _ | Msg.Eager_split _ | Msg.Eager_ack _
        | Msg.Batch _ | Msg.Migrate_install _ | Msg.Join_request _
        | Msg.Join_copy _ | Msg.Relay_member _ | Msg.Unjoin_request _ ->
          (* Only routed actions restart at the root; control traffic is
             addressed to a concrete processor and must never be lost. *)
          Fmt.failwith "Variable: cannot reroute %s" (Msg.kind msg)))

let action_kind key (u : Msg.update) =
  match u with
  | Msg.Upsert _ | Msg.Add_child _ -> Action.Insert { key }
  | Msg.Remove _ | Msg.Drop_child _ -> Action.Delete { key }

let silence (u : Msg.update) =
  match u with
  | Msg.Upsert { value; _ } -> Msg.Upsert { op = -1; origin = 0; value }
  | Msg.Remove _ -> Msg.Remove { op = -1; origin = 0 }
  | Msg.Add_child _ | Msg.Drop_child _ -> u

let apply_update t pid (copy : Store.rcopy) key (u : Msg.update) =
  let n = copy.Store.node in
  let store = Cluster.store t.cl pid in
  let reply =
    match u with
    | Msg.Upsert { op; value; _ } ->
      Node.add_entry n key (Node.Data value);
      Some (op, Msg.Inserted)
    | Msg.Remove { op; _ } ->
      let present = Entries.mem n.Node.entries key in
      Node.remove_entry n key;
      Some (op, Msg.Removed present)
    | Msg.Add_child { child; child_members } ->
      Node.add_entry n key (Node.Child child);
      (* weak: a relayed Add_child can arrive after the child migrated *)
      Store.learn_if_absent store child child_members;
      None
    | Msg.Drop_child _ ->
      Fmt.failwith "Variable: leaf reclamation is a mobile-protocol extension"
  in
  Store.wrote store n.Node.id;
  reply

let join_version_of (copy : Store.rcopy) m =
  match List.assoc_opt m copy.Store.join_versions with
  | Some v -> v
  | None -> -1 (* founding member: never needs catch-up *)

(* The §4.3 catch-up rule: when the PC receives a relayed update carrying
   version [v], it re-relays it to every member that joined after [v] —
   the sender could not have known them. *)
let catchup t pid (copy : Store.rcopy) ~uid ~key ~u ~version ~sender =
  if (config t).Config.version_relays then
    List.iter
      (fun m ->
        if m <> pid && m <> sender && join_version_of copy m > version then begin
          Stats.tick (ctr t).Cluster.relay_catchup;
          send t ~src:pid ~dst:m
            (Msg.Relay_update
               { uid; node = copy.Store.node.Node.id; key; u; version; sender = pid })
        end)
      copy.Store.members

(* ------------------------------------------------------------------ *)
(* Splits                                                              *)

let issue_relink t pid ~key ~level ~start ~which ~target ~version =
  (* Child-hint changes are per-store directory maintenance, not node
     updates: they stay outside the history model (uid -1). *)
  let uid =
    match which with `Child _ -> -1 | `Left | `Right -> Cluster.fresh_uid t.cl
  in
  forward t pid
    (Msg.Route
       {
         key;
         level;
         node = start;
         act =
           Msg.Relink
             { uid; which; target; target_pid = pid; version; relayed = false };
       })
    start

let rec maybe_split t pid (copy : Store.rcopy) =
  if
    pid = copy.Store.pc
    && Node.too_full ~capacity:(capacity t) copy.Store.node
  then begin
    do_split t pid copy;
    maybe_split t pid copy
  end

and do_split t pid (copy : Store.rcopy) =
  let n = copy.Store.node in
  let store = Cluster.store t.cl pid in
  let uid = Cluster.fresh_uid t.cl in
  let sib_id = Cluster.fresh_node_id t.cl in
  let base = Cluster.hist_snapshot t.cl ~node:n.Node.id ~pid in
  let sib = Node.half_split n ~sibling_id:sib_id in
  let sep = Node.separator_of_sibling sib in
  Store.wrote store n.Node.id;
  t.splits <- t.splits + 1;
  Stats.tick (ctr t).Cluster.split_count;
  Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Initial ~uid
    ~version:n.Node.version
    (Action.Half_split { sep; sibling = sib_id });
  Cluster.event t.cl ~pid Event.Split_start ~a:n.Node.id ~b:sib_id;
  (* The sibling's replication follows the path rule: the processors that
     own leaves under its range — approximated by the location hints of
     its children, restricted to the node's members (only they receive
     the split).  Its PC is the splitting processor.  Leaves stay
     single-copy. *)
  let sibling_members =
    if Node.is_leaf sib then [ pid ]
    else begin
      let owners =
        Entries.fold
          (fun _ p acc ->
            match p with
            | Node.Child c ->
              (match Store.members_opt store c with
              | Some ms -> ms @ acc
              | None -> acc)
            | Node.Data _ -> acc)
          sib.Node.entries []
      in
      pid
      :: (List.sort_uniq compare owners
         |> List.filter (fun m ->
                m <> pid && List.mem m copy.Store.members))
    end
  in
  List.iter
    (fun m -> Cluster.hist_new_copy t.cl ~node:sib_id ~pid:m ~base)
    sibling_members;
  let snapshot = Msg.snapshot_of_node ~base sib in
  ignore (Store.install store ~node:sib ~pc:pid ~members:sibling_members);
  List.iter
    (fun m ->
      if m <> pid then
        send t ~src:pid ~dst:m
          (Msg.Split_done
             {
               uid;
               node = n.Node.id;
               sep;
               sibling = snapshot;
               sibling_members;
               sync = false;
             }))
    copy.Store.members;
  (* Leaf splits fix the right neighbor's left link (§4.2 machinery). *)
  if Node.is_leaf n then begin
    match (sib.Node.right, sib.Node.high) with
    | Some r, Bound.Key h ->
      issue_relink t pid ~key:h ~level:0 ~start:r ~which:`Left ~target:sib_id
        ~version:sib.Node.version
    | (Some _ | None), _ -> ()
  end;
  (if store.Store.root = n.Node.id then
     grow_root t pid ~old_root:n ~sep ~sib_id
   else begin
     let uid' = Cluster.fresh_uid t.cl in
     forward t pid
       (Msg.Route
          {
            key = sep;
            level = n.Node.level + 1;
            node = store.Store.root;
            act =
              Msg.Update
                {
                  uid = uid';
                  u = Msg.Add_child { child = sib_id; child_members = sibling_members };
                };
          })
       store.Store.root
   end);
  Cluster.event t.cl ~pid Event.Split_end ~a:n.Node.id ~b:sib_id

and grow_root t pid ~old_root ~sep ~sib_id =
  let store = Cluster.store t.cl pid in
  let members = pid :: List.filter (fun m -> m <> pid) (List.init (procs t) Fun.id) in
  let id = Cluster.fresh_node_id t.cl in
  let entries =
    Entries.of_sorted_list
      [
        (Bound.min_sentinel, Node.Child old_root.Node.id);
        (sep, Node.Child sib_id);
      ]
  in
  let root =
    Node.make ~id ~level:(old_root.Node.level + 1) ~low:Bound.Neg_inf
      ~high:Bound.Pos_inf entries
  in
  Stats.tick (ctr t).Cluster.root_grow;
  Cluster.event t.cl ~pid Event.Root_grow ~a:id ~b:(old_root.Node.level + 1);
  List.iter (fun m -> Cluster.hist_new_copy t.cl ~node:id ~pid:m ~base:[]) members;
  ignore (Store.install store ~node:root ~pc:pid ~members);
  Store.set_root store id;
  let snap = Msg.snapshot_of_node root in
  List.iter
    (fun m ->
      if m <> pid then send t ~src:pid ~dst:m (Msg.New_root { snap; members }))
    members

(* ------------------------------------------------------------------ *)
(* Link changes (on leaves and on replicated parents' child hints)     *)

and perform_relink t pid (copy : Store.rcopy) ~uid ~which ~target ~target_pid
    ~version ~relayed =
  let n = copy.Store.node in
  let store = Cluster.store t.cl pid in
  if target = n.Node.id then
    Fmt.failwith "Variable: link-change would self-link node %d" target;
  let slot = (pid, n.Node.id, (which : link_tag)) in
  let current =
    Option.value (Hashtbl.find_opt t.link_versions slot) ~default:(-1)
  in
  let effective = version > current in
  if effective then begin
    Hashtbl.replace t.link_versions slot version;
    (match which with
    | `Left -> n.Node.left <- Some target
    | `Right -> n.Node.right <- Some target
    | `Child _ -> ());
    Store.wrote store n.Node.id;
    Store.learn store target [ target_pid ]
  end
  else Stats.tick (ctr t).Cluster.link_change_absorbed;
  (* Child-hint changes on replicated nodes are directory maintenance and
     are relayed to the other copies; they are not recorded as value
     updates (the hint is per-store state, not part of the node value). *)
  (match which with
  | `Child _ -> ()
  | `Left | `Right ->
    Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Initial
      ~effective ~version ~uid
      (Action.Link_change
         { which = (which :> [ `Left | `Right | `Child of int ]); target }));
  if (not relayed) && List.exists (fun m -> m <> pid) copy.Store.members then
    List.iter
      (fun m ->
        if m <> pid then
          send t ~src:pid ~dst:m
            (Msg.Route
               {
                 key = guide_key n;
                 level = n.Node.level;
                 node = n.Node.id;
                 act =
                   Msg.Relink
                     { uid; which; target; target_pid; version; relayed = true };
               }))
      copy.Store.members

(* ------------------------------------------------------------------ *)
(* Performing routed actions                                           *)

and perform t pid (copy : Store.rcopy) ~key ~(act : Msg.routed) =
  match act with
  | Msg.Search { op; origin } ->
    let result =
      match Node.find_leaf_value copy.Store.node key with
      | Some v -> Msg.Found v
      | None -> Msg.Absent
    in
    send t ~src:pid ~dst:origin (Msg.Op_done { op; result })
  | Msg.Update { uid; u } ->
    let n = copy.Store.node in
    let version = n.Node.version in
    let reply = apply_update t pid copy key u in
    Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Initial ~uid
      (action_kind key u);
    (match reply with
    | Some (op, result) -> reply_op t ~src:pid op result
    | None -> ());
    List.iter
      (fun m ->
        if m <> pid then
          send t ~src:pid ~dst:m
            (Msg.Relay_update
               { uid; node = n.Node.id; key; u = silence u; version; sender = pid }))
      copy.Store.members;
    maybe_split t pid copy
  | Msg.Scan { op; origin; hi; acc } -> begin
    (* collect this leaf's bindings in [route key, hi], then continue
       along the leaf chain while it still overlaps the range *)
    let n = copy.Store.node in
    let acc =
      Entries.fold
        (fun k p acc ->
          match p with
          | Node.Data v when k >= key && k <= hi -> (k, v) :: acc
          | Node.Data _ | Node.Child _ -> acc)
        n.Node.entries acc
    in
    match (n.Node.right, n.Node.high) with
    | Some r, Bound.Key h when h <= hi ->
      forward t pid
        (Msg.Route
           { key = h; level = 0; node = r; act = Msg.Scan { op; origin; hi; acc } })
        r
    | (Some _ | None), _ ->
      send t ~src:pid ~dst:origin
        (Msg.Op_done { op; result = Msg.Bindings (List.rev acc) })
  end
  | Msg.Relink { uid; which; target; target_pid; version; relayed } ->
    perform_relink t pid copy ~uid ~which ~target ~target_pid ~version ~relayed
  | Msg.Absorb _ ->
    Fmt.failwith "Variable: leaf reclamation is a mobile-protocol extension"

(* ------------------------------------------------------------------ *)
(* Migration, join / unjoin                                            *)

(* The leaf's ancestor path as this processor sees it (path-replication
   gives the owner a local copy of every ancestor). *)
and local_ancestors t pid key =
  let store = Cluster.store t.cl pid in
  let rec go id acc =
    match Store.find store id with
    | Some c when not (Node.is_leaf c.Store.node) -> (
      let acc = (id, c.Store.members) :: acc in
      match Node.step c.Store.node key with
      | Node.Descend child -> go child acc
      | Node.Chase_right r -> go r acc
      | Node.Chase_left l -> go l acc
      | Node.Here | Node.Dead_end -> acc)
    | Some _ | None -> acc
  in
  (* bottom-up order: parent first *)
  go store.Store.root []

and do_migrate t ~node ~to_pid =
  let owner =
    Array.fold_left
      (fun acc store -> if Store.mem store node then Some store else acc)
      None t.cl.Cluster.stores
  in
  match owner with
  | None -> Stats.tick (ctr t).Cluster.migrate_skipped
  | Some store when store.Store.pid = to_pid ->
    Stats.tick (ctr t).Cluster.migrate_skipped
  | Some store ->
    let pid = store.Store.pid in
    let copy = Store.get store node in
    if not (Node.is_leaf copy.Store.node) then Stats.tick (ctr t).Cluster.migrate_skipped
    else begin
      let n = copy.Store.node in
      n.Node.version <- n.Node.version + 1;
      let base = Cluster.hist_snapshot t.cl ~node ~pid in
      let snap = Msg.snapshot_of_node ~base n in
      let ancestors = local_ancestors t pid (guide_key n) in
      Store.remove store node;
      Cluster.hist_retire t.cl ~node ~pid;
      if (config t).Config.forwarding then
        Store.set_forwarding store node to_pid;
      Store.learn store node [ to_pid ];
      t.migrations <- t.migrations + 1;
      Stats.tick (ctr t).Cluster.migrate_count;
      Cluster.event t.cl ~pid Event.Migrate ~a:node ~b:to_pid;
      send t ~src:pid ~dst:to_pid
        (Msg.Migrate_install { snap; ancestors; from_pid = pid });
      (* Unjoin the replications this processor no longer needs: ancestors
         with no remaining local leaf in range (the PC and the root never
         unjoin). *)
      List.iter
        (fun (aid, _) ->
          match Store.find store aid with
          | Some acopy
            when acopy.Store.pc <> pid
                 && store.Store.root <> aid
                 && not (has_local_leaf_in store acopy) ->
            do_unjoin t pid acopy
          | Some _ | None -> ())
        ancestors
    end

and has_local_leaf_in store (acopy : Store.rcopy) =
  let a = acopy.Store.node in
  let overlaps (l : Msg.value Node.t) =
    Node.is_leaf l
    && Bound.compare a.Node.low l.Node.high < 0
    && Bound.compare l.Node.low a.Node.high < 0
  in
  let found = ref false in
  Store.iter store (fun c -> if overlaps c.Store.node then found := true);
  !found

and do_unjoin t pid (acopy : Store.rcopy) =
  let store = Cluster.store t.cl pid in
  let node = acopy.Store.node.Node.id in
  t.unjoins <- t.unjoins + 1;
  Stats.tick (ctr t).Cluster.unjoin_count;
  Cluster.event t.cl ~pid Event.Unjoin ~a:node ~b:pid;
  Store.remove store node;
  Store.depart store node;
  Cluster.hist_retire t.cl ~node ~pid;
  Store.learn store node (List.filter (fun m -> m <> pid) acopy.Store.members);
  send t ~src:pid ~dst:acopy.Store.pc (Msg.Unjoin_request { node; pid })

and handle_migrate_install t pid ~(snap : Msg.snapshot) ~ancestors ~from_pid =
  let store = Cluster.store t.cl pid in
  let node = Msg.node_of_snapshot snap in
  let id = node.Node.id in
  ignore (Store.install store ~node ~pc:pid ~members:[ pid ]);
  Store.clear_forwarding store id;
  Store.undepart store id;
  Cluster.hist_new_copy t.cl ~node:id ~pid ~base:snap.Msg.s_base;
  Cluster.hist_record t.cl ~node:id ~pid ~mode:Action.Initial
    ~version:node.Node.version
    ~uid:(Cluster.fresh_uid t.cl)
    (Action.Migrate { to_pid = pid });
  ignore from_pid;
  let v = node.Node.version in
  (match (node.Node.left, node.Node.low) with
  | Some l, Bound.Key low ->
    issue_relink t pid ~key:(low - 1) ~level:node.Node.level ~start:l
      ~which:`Right ~target:id ~version:v
  | (Some _ | None), _ -> ());
  (match (node.Node.right, node.Node.high) with
  | Some r, Bound.Key high ->
    issue_relink t pid ~key:high ~level:node.Node.level ~start:r ~which:`Left
      ~target:id ~version:v
  | (Some _ | None), _ -> ());
  issue_relink t pid ~key:(guide_key node) ~level:(node.Node.level + 1)
    ~start:store.Store.root ~which:(`Child id) ~target:id ~version:v;
  (* Path replication: join every ancestor we do not already maintain. *)
  List.iter
    (fun (aid, hints) ->
      if not (Store.mem store aid) then begin
        Store.learn store aid hints;
        match hints with
        | pc :: _ when pc <> pid ->
          Stats.tick (ctr t).Cluster.join_requested;
          send t ~src:pid ~dst:pc (Msg.Join_request { node = aid; requester = pid })
        | _ :: _ | [] -> ()
      end)
    ancestors;
  List.iter (send_local t pid) (Store.take_pending store id)

(* ------------------------------------------------------------------ *)
(* Message handler                                                     *)

let handle_route t pid ~key ~level ~node ~act =
  let store = Cluster.store t.cl pid in
  match Store.find store node with
  | None ->
    let msg = Msg.Route { key; level; node; act } in
    if Hashtbl.mem store.Store.departed node then begin
      Stats.tick (ctr t).Cluster.recover_departed;
      send_local t pid (Msg.Route { key; level; node = store.Store.root; act })
    end
    else (
      match Hashtbl.find_opt store.Store.forwarding node with
      | Some fwd ->
        Stats.tick (ctr t).Cluster.recover_forwarded;
        send t ~src:pid ~dst:fwd msg
      | None -> (
        match Store.members_opt store node with
        | Some members when List.exists (fun m -> m <> pid) members ->
          Stats.tick (ctr t).Cluster.recover_hinted;
          send t ~src:pid
            ~dst:(choose_member t (List.filter (fun m -> m <> pid) members))
            msg
        | Some _ | None ->
          (* A routed action carries its key: restart the navigation from
             the local root (stale hints repair themselves via the child
             link-changes; the PC-authority fallback covers the rest). *)
          Stats.tick (ctr t).Cluster.recover_restart;
          send_local t pid
            (Msg.Route { key; level; node = store.Store.root; act })))
  | Some copy ->
    Cluster.touch t.cl ~node;
    let n = copy.Store.node in
    if n.Node.level > level then begin
      let authority = copy.Store.pc in
      match Node.step n key with
      | Node.Chase_right r ->
        Stats.tick (ctr t).Cluster.route_chase;
        forward ~authority t pid (Msg.Route { key; level; node = r; act }) r
      | Node.Chase_left l ->
        Stats.tick (ctr t).Cluster.route_chase;
        forward ~authority t pid (Msg.Route { key; level; node = l; act }) l
      | Node.Descend c ->
        forward ~authority t pid (Msg.Route { key; level; node = c; act }) c
      | Node.Here | Node.Dead_end ->
        Fmt.failwith "Variable: bad navigation at node %d key %d" node key
    end
    else if n.Node.level < level then begin
      Stats.tick (ctr t).Cluster.route_up;
      forward t pid
        (Msg.Route { key; level; node = store.Store.root; act })
        store.Store.root
    end
    else if Bound.compare_key n.Node.high key <= 0 then begin
      Stats.tick (ctr t).Cluster.route_chase;
      match n.Node.right with
      | Some r ->
        forward ~authority:copy.Store.pc t pid
          (Msg.Route { key; level; node = r; act })
          r
      | None -> Fmt.failwith "Variable: dead end right at node %d key %d" node key
    end
    else if Bound.compare_key n.Node.low key > 0 then begin
      Stats.tick (ctr t).Cluster.route_chase;
      match n.Node.left with
      | Some l ->
        forward ~authority:copy.Store.pc t pid
          (Msg.Route { key; level; node = l; act })
          l
      | None -> Fmt.failwith "Variable: dead end left at node %d key %d" node key
    end
    else perform t pid copy ~key ~act

let handle_relay t pid ~uid ~node ~key ~u ~version ~sender =
  let store = Cluster.store t.cl pid in
  match Store.find store node with
  | None ->
    if Hashtbl.mem store.Store.departed node then
      Stats.tick (ctr t).Cluster.relay_to_departed
    else begin
      Stats.tick (ctr t).Cluster.route_parked;
      Store.add_pending store node
        (Msg.Relay_update { uid; node; key; u; version; sender })
    end
  | Some copy ->
    Cluster.touch t.cl ~node;
    if pid = copy.Store.pc then
      catchup t pid copy ~uid ~key ~u ~version ~sender;
    if Node.in_range copy.Store.node key then begin
      ignore (apply_update t pid copy key u);
      Cluster.hist_record t.cl ~node ~pid ~mode:Action.Relayed ~uid
        (action_kind key u);
      Stats.tick (ctr t).Cluster.relay_applied;
      maybe_split t pid copy
    end
    else begin
      Cluster.hist_record t.cl ~node ~pid ~mode:Action.Relayed
        ~effective:false ~uid (action_kind key u);
      Stats.tick (ctr t).Cluster.relay_discarded;
      if pid = copy.Store.pc then begin
        (* §4.1.2 history rewriting: forward to the right sibling. *)
        Stats.tick (ctr t).Cluster.semi_forwarded;
        let uid' = Cluster.fresh_uid t.cl in
        match copy.Store.node.Node.right with
        | Some r ->
          forward t pid
            (Msg.Route
               {
                 key;
                 level = copy.Store.node.Node.level;
                 node = r;
                 act = Msg.Update { uid = uid'; u };
               })
            r
        | None ->
          Fmt.failwith "Variable: out-of-range relay at rightmost node %d" node
      end
    end

let apply_remote_split t pid (copy : Store.rcopy) ~uid ~sep ~sibling
    ~sibling_members =
  let store = Cluster.store t.cl pid in
  let n = copy.Store.node in
  let keep, _dropped = Entries.partition_lt n.Node.entries sep in
  n.Node.entries <- keep;
  n.Node.high <- Bound.Key sep;
  n.Node.right <- Some sibling.Msg.s_id;
  n.Node.version <- n.Node.version + 1;
  Store.wrote store n.Node.id;
  Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Relayed ~uid
    ~version:n.Node.version
    (Action.Half_split { sep; sibling = sibling.Msg.s_id });
  Store.learn store sibling.Msg.s_id sibling_members;
  if List.mem pid sibling_members then begin
    let node = Msg.node_of_snapshot sibling in
    ignore
      (Store.install store ~node
         ~pc:(Cluster.pc_of_members_exn sibling_members)
         ~members:sibling_members);
    Store.undepart store sibling.Msg.s_id;
    List.iter (send_local t pid) (Store.take_pending store sibling.Msg.s_id)
  end

(* Grant leg of a join (or re-join): ship the requester a snapshot of the
   PC's current image plus location hints for its children and right
   sibling, so the new copy can route without consulting the directory. *)
let send_join_copy t pid store (copy : Store.rcopy) ~node ~requester ~base =
  let n = copy.Store.node in
  let snap = Msg.snapshot_of_node ~base n in
  let hint_ids =
    Entries.fold
      (fun _ p acc ->
        match p with Node.Child c -> c :: acc | Node.Data _ -> acc)
      n.Node.entries []
  in
  let hint_ids =
    match n.Node.right with Some r -> r :: hint_ids | None -> hint_ids
  in
  let hints =
    List.filter_map
      (fun c ->
        Option.map (fun ms -> (c, ms)) (Store.members_opt store c))
      hint_ids
  in
  send t ~src:pid ~dst:requester
    (Msg.Join_copy
       {
         node;
         snap;
         members = copy.Store.members;
         join_version = n.Node.version;
         hints;
       })

let handle_join_request t pid ~node ~requester =
  let store = Cluster.store t.cl pid in
  let copy = Store.get store node in
  if List.mem requester copy.Store.members then begin
    Stats.tick (ctr t).Cluster.join_duplicate;
    (* Re-join after a crash (durable runs only): the requester is still a
       member — its membership, join version and the PC's relay duty all
       survived the crash, and the requester's own WAL replay plus the
       resumed reliable channels restore everything else exactly once.
       Mutating anything here (a version bump, a join-version restamp)
       would duplicate relays the channel layer already guarantees, so
       the grant is a pure confirmation: resend the Join_copy carrying
       the current image and fresh location hints.  No Relay_member
       broadcast — the membership did not change. *)
    if (config t).Config.durability.Config.wal then begin
      let base = Cluster.hist_snapshot t.cl ~node ~pid in
      send_join_copy t pid store copy ~node ~requester ~base
    end
  end
  else begin
    let n = copy.Store.node in
    n.Node.version <- n.Node.version + 1;
    let version = n.Node.version in
    let uid = Cluster.fresh_uid t.cl in
    t.joins <- t.joins + 1;
    Stats.tick (ctr t).Cluster.join_count;
    Cluster.event t.cl ~pid Event.Join ~a:node ~b:requester;
    Cluster.hist_record t.cl ~node ~pid ~mode:Action.Initial ~version ~uid
      (Action.Join { pid = requester });
    copy.Store.members <- copy.Store.members @ [ requester ];
    copy.Store.join_versions <-
      (requester, version) :: copy.Store.join_versions;
    Store.wrote store node;
    Store.learn store node copy.Store.members;
    let base = Cluster.hist_snapshot t.cl ~node ~pid in
    Cluster.hist_new_copy t.cl ~node ~pid:requester ~base;
    send_join_copy t pid store copy ~node ~requester ~base;
    List.iter
      (fun m ->
        if m <> pid && m <> requester then
          send t ~src:pid ~dst:m
            (Msg.Relay_member { node; change = `Join requester; version; uid }))
      copy.Store.members
  end

let handle_join_copy t pid ~node ~(snap : Msg.snapshot) ~members ~hints =
  let store = Cluster.store t.cl pid in
  List.iter (fun (c, ms) -> Store.learn_if_absent store c ms) hints;
  let do_install () =
    let n = Msg.node_of_snapshot snap in
    ignore
      (Store.install store ~node:n
         ~pc:(Cluster.pc_of_members_exn members)
         ~members);
    Store.undepart store node;
    List.iter (send_local t pid) (Store.take_pending store node)
  in
  match Store.find store node with
  | None -> do_install ()
  | Some prev ->
    Stats.tick (ctr t).Cluster.join_already_member;
    (* Durable runs: a rejoin confirmation normally carries the same
       version we already hold and is a no-op — the WAL replay and the
       resumed channels are the recovery mechanism, and overwriting a
       live copy would race the relays still in flight to it.  A strictly
       newer image means the PC granted a genuine re-join after our
       membership had lapsed (so no relays were addressed to us in the
       gap): only then is the refresh install the correct §4.3 move. *)
    if
      (config t).Config.durability.Config.wal
      && snap.Msg.s_version > prev.Store.node.Node.version
    then do_install ()

let handle_relay_member t pid ~node ~change ~version ~uid =
  let store = Cluster.store t.cl pid in
  match Store.find store node with
  | None ->
    if Hashtbl.mem store.Store.departed node then
      Stats.tick (ctr t).Cluster.relay_to_departed
    else begin
      Stats.tick (ctr t).Cluster.route_parked;
      Store.add_pending store node (Msg.Relay_member { node; change; version; uid })
    end
  | Some copy ->
    let n = copy.Store.node in
    n.Node.version <- max n.Node.version version;
    (match change with
    | `Join p ->
      if not (List.mem p copy.Store.members) then
        copy.Store.members <- copy.Store.members @ [ p ];
      Cluster.hist_record t.cl ~node ~pid ~mode:Action.Relayed ~version ~uid
        (Action.Join { pid = p })
    | `Unjoin p ->
      copy.Store.members <- List.filter (fun m -> m <> p) copy.Store.members;
      Cluster.hist_record t.cl ~node ~pid ~mode:Action.Relayed ~version ~uid
        (Action.Unjoin { pid = p }));
    Store.wrote store node;
    Store.learn store node copy.Store.members

let handle_unjoin_request t pid ~node ~who =
  let store = Cluster.store t.cl pid in
  let copy = Store.get store node in
  if not (List.mem who copy.Store.members) then
    Stats.tick (ctr t).Cluster.unjoin_duplicate
  else begin
    let n = copy.Store.node in
    n.Node.version <- n.Node.version + 1;
    let version = n.Node.version in
    let uid = Cluster.fresh_uid t.cl in
    Cluster.hist_record t.cl ~node ~pid ~mode:Action.Initial ~version ~uid
      (Action.Unjoin { pid = who });
    copy.Store.members <- List.filter (fun m -> m <> who) copy.Store.members;
    copy.Store.join_versions <-
      List.filter (fun (m, _) -> m <> who) copy.Store.join_versions;
    Store.wrote store node;
    Store.learn store node copy.Store.members;
    List.iter
      (fun m ->
        if m <> pid then
          send t ~src:pid ~dst:m
            (Msg.Relay_member { node; change = `Unjoin who; version; uid }))
      copy.Store.members
  end

let handle t pid ~src:_ msg =
  match msg with
  (* dbflow: class semi -- routing may park on the owning copy and updates seek the authority copy (§5) *)
  | Msg.Route { key; level; node; act } -> handle_route t pid ~key ~level ~node ~act
  (* dbflow: class lazy -- completion funnel at the origin, independent of any copy's role *)
  | Msg.Op_done { op; result } -> Cluster.op_complete t.cl ~op ~result
  (* dbflow: class semi -- relayed updates are version-ordered per node against membership changes (§5.1) *)
  | Msg.Relay_update { uid; node; key; u; version; sender } ->
    handle_relay t pid ~uid ~node ~key ~u ~version ~sender
  (* dbflow: class semi -- remote half-split apply, ordered against joins/unjoins by the PC's member set *)
  | Msg.Split_done { uid; node; sep; sibling; sibling_members; sync = _ } -> begin
    let store = Cluster.store t.cl pid in
    match Store.find store node with
    | None ->
      if Hashtbl.mem store.Store.departed node then begin
        Stats.tick (ctr t).Cluster.relay_to_departed;
        (* The split raced our unjoin and implicitly enrolled us in the
           sibling's replication (the PC computed the member set before
           processing the unjoin).  Decline it: mark the sibling departed
           and tell its PC to drop us. *)
        if List.mem pid sibling_members then begin
          Store.depart store sibling.Msg.s_id;
          Cluster.hist_retire t.cl ~node:sibling.Msg.s_id ~pid;
          let sib_pc = Cluster.pc_of_members_exn sibling_members in
          if sib_pc <> pid then
            send t ~src:pid ~dst:sib_pc
              (Msg.Unjoin_request { node = sibling.Msg.s_id; pid })
        end
      end
      else begin
        Stats.tick (ctr t).Cluster.route_parked;
        Store.add_pending store node msg
      end
    | Some copy -> apply_remote_split t pid copy ~uid ~sep ~sibling ~sibling_members
  end
  (* dbflow: class lazy -- root adoption: copies may learn the new root in any order (§4.3) *)
  | Msg.New_root { snap; members } -> begin
    let store = Cluster.store t.cl pid in
    match Cluster.pc_of_members members with
    | Error Cluster.Empty_members ->
      Cluster.park_no_members t.cl ~pid ~node:snap.Msg.s_id msg
    | Ok pc ->
      Store.learn store snap.Msg.s_id members;
      let n = Msg.node_of_snapshot snap in
      ignore (Store.install store ~node:n ~pc ~members);
      Store.set_root store snap.Msg.s_id;
      List.iter (send_local t pid) (Store.take_pending store snap.Msg.s_id)
  end
  (* dbflow: class semi -- migration install is coordinated by the sending owner (§5.2) *)
  | Msg.Migrate_install { snap; ancestors; from_pid } ->
    handle_migrate_install t pid ~snap ~ancestors ~from_pid
  (* dbflow: class semi -- join is granted by the node's PC, which orders it against relays (§5.1) *)
  | Msg.Join_request { node; requester } -> handle_join_request t pid ~node ~requester
  (* dbflow: class semi -- the granted copy install carries the PC's version, ordering it against relays (§5.1) *)
  | Msg.Join_copy { node; snap; members; join_version = _; hints } ->
    handle_join_copy t pid ~node ~snap ~members ~hints
  (* dbflow: class semi -- membership relays are version-ordered per node like data relays (§5.1) *)
  | Msg.Relay_member { node; change; version; uid } ->
    handle_relay_member t pid ~node ~change ~version ~uid
  (* dbflow: class semi -- unjoin is processed by the PC, which orders the member drop against relays (§5.1) *)
  | Msg.Unjoin_request { node; pid = who } -> handle_unjoin_request t pid ~node ~who
  | Msg.Batch _ | Msg.Split_start _ | Msg.Split_ack _ | Msg.Eager_update _
  | Msg.Eager_split _ | Msg.Eager_ack _ ->
    Fmt.failwith "Variable: unexpected message %s" (Msg.kind msg)

(* ------------------------------------------------------------------ *)
(* Bootstrap and public API                                            *)

let leaf_counts t =
  Array.map
    (fun store ->
      let count = ref 0 in
      Store.iter store (fun c -> if Node.is_leaf c.Store.node then incr count);
      !count)
    t.cl.Cluster.stores

let balance_step t =
  let counts = leaf_counts t in
  let hi = ref 0 and lo = ref 0 in
  Array.iteri
    (fun i c ->
      if c > counts.(!hi) then hi := i;
      if c < counts.(!lo) then lo := i)
    counts;
  if counts.(!hi) - counts.(!lo) >= 2 then begin
    let store = Cluster.store t.cl !hi in
    let victim = ref None in
    Store.iter store (fun c ->
        if Node.is_leaf c.Store.node then
          match !victim with
          | Some (size, _) when size >= Node.size c.Store.node -> ()
          | Some _ | None ->
            victim := Some (Node.size c.Store.node, c.Store.node.Node.id));
    match !victim with
    | Some (_, id) -> do_migrate t ~node:id ~to_pid:!lo
    | None -> ()
  end

let bootstrap t =
  let cl = t.cl in
  let nprocs = procs t in
  let leaves =
    List.init nprocs (fun p ->
        let lo, hi = Partition.slice cl.Cluster.partition p in
        let low = if p = 0 then Bound.Neg_inf else Bound.Key lo in
        let high = if p = nprocs - 1 then Bound.Pos_inf else Bound.Key hi in
        let id = Cluster.fresh_node_id cl in
        (p, lo, Node.make ~id ~level:0 ~low ~high Entries.empty))
  in
  let rec link = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) ->
      a.Node.right <- Some b.Node.id;
      b.Node.left <- Some a.Node.id;
      link rest
    | [ _ ] | [] -> ()
  in
  link leaves;
  let root_id = Cluster.fresh_node_id cl in
  let root_entries =
    Entries.of_sorted_list
      (List.map
         (fun (p, lo, node) ->
           ((if p = 0 then Bound.min_sentinel else lo), Node.Child node.Node.id))
         leaves)
  in
  let members = List.init nprocs Fun.id in
  for pid = 0 to nprocs - 1 do
    let store = Cluster.store cl pid in
    Store.set_root store root_id;
    let root =
      Node.make ~id:root_id ~level:1 ~low:Bound.Neg_inf ~high:Bound.Pos_inf
        root_entries
    in
    ignore (Store.install store ~node:root ~pc:0 ~members);
    Cluster.hist_new_copy cl ~node:root_id ~pid ~base:[];
    List.iter
      (fun (p, _, node) -> Store.learn store node.Node.id [ p ])
      leaves
  done;
  List.iter
    (fun (p, _, node) ->
      node.Node.parent <- Some root_id;
      ignore (Store.install (Cluster.store cl p) ~node ~pc:p ~members:[ p ]);
      Cluster.hist_new_copy cl ~node:node.Node.id ~pid:p ~base:[])
    leaves

let create cfg =
  let cl = Cluster.create cfg in
  let t =
    {
      cl;
      link_versions = Hashtbl.create 256;
      splits = 0;
      migrations = 0;
      joins = 0;
      unjoins = 0;
    }
  in
  for pid = 0 to cfg.Config.procs - 1 do
    Cluster.Network.set_handler cl.Cluster.net pid (fun ~src msg ->
        handle t pid ~src msg)
  done;
  (* Crash recovery: after the WAL replay, re-request every copy whose PC
     is elsewhere through the §4.3 join path — the PC restamps our join
     version and resends a fresh image, covering relays we slept through. *)
  if cfg.Config.durability.Config.wal then
    Cluster.install_recovery cl ~rejoin:(fun pid -> Cluster.rejoin_copies cl pid);
  bootstrap t;
  if cfg.Config.balance_period > 0 then begin
    let rec tick () =
      if Sim.pending cl.Cluster.sim > 0 then begin
        balance_step t;
        Sim.schedule cl.Cluster.sim ~delay:cfg.Config.balance_period tick
      end
    in
    Sim.schedule cl.Cluster.sim ~delay:cfg.Config.balance_period tick
  end;
  t

let start_route t ~origin msg = send_local t origin msg

let insert t ~origin key value =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Insert ~key
      ~value:(Some value) ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  let uid = Cluster.fresh_uid t.cl in
  start_route t ~origin
    (Msg.Route
       {
         key;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act =
           Msg.Update { uid; u = Msg.Upsert { op = r.Opstate.id; origin; value } };
       });
  r.Opstate.id

let search t ~origin key =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Search ~key ~value:None
      ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  start_route t ~origin
    (Msg.Route
       {
         key;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act = Msg.Search { op = r.Opstate.id; origin };
       });
  r.Opstate.id

let remove t ~origin key =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Delete ~key ~value:None
      ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  let uid = Cluster.fresh_uid t.cl in
  start_route t ~origin
    (Msg.Route
       {
         key;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act = Msg.Update { uid; u = Msg.Remove { op = r.Opstate.id; origin } };
       });
  r.Opstate.id


let scan t ~origin ~lo ~hi =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Scan ~key:lo ~value:None
      ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  start_route t ~origin
    (Msg.Route
       {
         key = lo;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act = Msg.Scan { op = r.Opstate.id; origin; hi; acc = [] };
       });
  r.Opstate.id

let migrate t ~node ~to_pid =
  if to_pid < 0 || to_pid >= procs t then
    invalid_arg "Variable.migrate: bad pid";
  Sim.schedule t.cl.Cluster.sim ~delay:0 (fun () -> do_migrate t ~node ~to_pid)

let run ?max_events t = Cluster.run ?max_events t.cl

let api t =
  {
    Driver.insert = (fun ~origin k v -> insert t ~origin k v);
    Driver.search = (fun ~origin k -> search t ~origin k);
    Driver.remove = (fun ~origin k -> remove t ~origin k);
  }
