open Dbtree_blink

let collect (cl : Cluster.t) =
  let tbl : (int, (int * Store.rcopy) list) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (store : Store.t) ->
      Store.iter store (fun c ->
          let id = c.Store.node.Node.id in
          let existing = Option.value (Hashtbl.find_opt tbl id) ~default:[] in
          Hashtbl.replace tbl id ((store.Store.pid, c) :: existing)))
    cl.Cluster.stores;
  tbl

let pp_node_line ppf (copies : (int * Store.rcopy) list) =
  match copies with
  | [] -> ()
  | (_, first) :: _ ->
    let n = first.Store.node in
    let pids = List.map fst copies |> List.sort compare in
    Fmt.pf ppf "  node %-4d [%a, %a) %2d entries  right=%a v%d  @@ p%a" n.Node.id
      Bound.pp n.Node.low Bound.pp n.Node.high (Node.size n)
      (Fmt.option ~none:(Fmt.any "-") Fmt.int)
      n.Node.right n.Node.version
      (Fmt.list ~sep:(Fmt.any ",") Fmt.int)
      pids

let pp_cluster ppf (cl : Cluster.t) =
  let tbl = collect cl in
  let by_level = Hashtbl.create 8 in
  List.iter
    (fun (_, copies) ->
      match copies with
      | (_, c) :: _ ->
        let level = c.Store.node.Node.level in
        let existing =
          Option.value (Hashtbl.find_opt by_level level) ~default:[]
        in
        Hashtbl.replace by_level level (copies :: existing)
      | [] -> ())
    (Dbtree_sim.Stats.sorted_bindings tbl);
  let levels =
    Dbtree_sim.Stats.sorted_bindings by_level |> List.map fst |> List.rev
  in
  List.iter
    (fun level ->
      let nodes =
        Hashtbl.find by_level level
        |> List.sort (fun a b ->
               match (a, b) with
               | (_, x) :: _, (_, y) :: _ ->
                 Bound.compare x.Store.node.Node.low y.Store.node.Node.low
               | _ -> 0)
      in
      Fmt.pf ppf "level %d (%d nodes):@." level (List.length nodes);
      List.iter (fun copies -> Fmt.pf ppf "%a@." pp_node_line copies) nodes)
    levels

let pp_store ppf (store : Store.t) =
  Fmt.pf ppf "processor %d (root -> node %d, %d copies):@." store.Store.pid
    store.Store.root (Store.copy_count store);
  let copies = ref [] in
  Store.iter store (fun c -> copies := c :: !copies);
  let sorted =
    List.sort
      (fun (a : Store.rcopy) b ->
        compare
          (-a.Store.node.Node.level, Bound.compare a.Store.node.Node.low Bound.Neg_inf)
          (-b.Store.node.Node.level, Bound.compare b.Store.node.Node.low Bound.Neg_inf))
      !copies
  in
  List.iter
    (fun (c : Store.rcopy) ->
      Fmt.pf ppf "  L%d %a@." c.Store.node.Node.level (Node.pp Fmt.string)
        c.Store.node)
    sorted

let tree_depth (cl : Cluster.t) =
  let store = Cluster.store cl 0 in
  match Store.find store store.Store.root with
  | Some c -> c.Store.node.Node.level + 1
  | None -> 0
