(** Client operation registry.

    Tracks every operation from issue to completion: the per-operation
    latency samples, throughput, and correctness bookkeeping (which keys
    were successfully inserted / removed) that the verifier and every
    experiment read. *)

type kind = Search | Insert | Delete | Scan

type record = {
  id : int;
  kind : kind;
  key : int;
  value : Msg.value option;
  origin : Msg.pid;
  issued_at : int;
  mutable completed_at : int option;
  mutable result : Msg.op_result option;
}

type t

val create : unit -> t

val register :
  t -> kind:kind -> key:int -> value:Msg.value option -> origin:Msg.pid ->
  now:int -> record
(** Allocate an operation id and record the issue. *)

val complete : t -> op:int -> result:Msg.op_result -> now:int -> unit
(** Record the reply.  Invokes the completion hook, if any.  Completing an
    operation twice is a protocol bug and raises — except under
    {!set_tolerant}, which merely counts it (used by the fault-injection
    experiment, where duplicated replies are the injected fault). *)

val set_tolerant : t -> unit
val duplicate_completions : t -> int

val on_complete : t -> (record -> unit) -> unit
(** Install a completion hook (closed-loop drivers use this to issue the
    next operation). *)

val find : t -> int -> record option
val issued : t -> int
val completed : t -> int
val outstanding : t -> int

val oldest_outstanding_age : t -> now:int -> int
(** Ticks since the oldest still-incomplete operation was issued; 0 when
    everything has completed.  The stall-duration telemetry signal.
    Amortized O(1): a monotone cursor skips completed prefixes. *)

val iter : t -> (record -> unit) -> unit

val inserted_keys : t -> (int, Msg.value) Hashtbl.t
(** Keys successfully inserted and not subsequently removed, with the last
    value written — the expected final contents of the tree. *)

val mean_latency : t -> kind -> float
(** Mean completion latency (simulated ticks) over completed operations of
    this kind. *)

val max_latency : t -> kind -> int

val latency_percentile : t -> kind -> float -> float
(** [latency_percentile t kind p] is the p-th percentile (p in [0,1]) of
    completion latency for operations of [kind], computed by the
    nearest-rank method (the sorted sample at 1-based rank [ceil (p * n)]);
    0 if none completed. *)
