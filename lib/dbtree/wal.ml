(* Per-processor durability: a deterministic, simulated single-writer
   store.  Every state change a processor must survive a crash with is
   appended as one typed record; every [snapshot_every] records the log
   is compacted into a canonical snapshot (one record per live fact,
   sorted) and truncated.  Recovery replays snapshot + tail log, in
   order, through closure-free record dispatch — records are plain data
   over ints and {!Msg} payloads, tagged with dense interned ids like
   [Msg.kind_id], so replay allocates nothing per record beyond the
   rebuilt state itself.

   The log doubles as the durable half of the reliable transport: sends
   are journaled until the cumulative ack retires them, and per-source
   delivered counts are journaled so a restarted processor can recognise
   (and drop) redeliveries of messages it already processed — the
   exactly-once guarantee survives the crash. *)

type record =
  | Write of {
      snap : Msg.snapshot;
      pc : int;
      members : int list;
      join_versions : (int * int) list;
      splitting : bool;
    }  (** full image of a local node copy after a mutation *)
  | Remove of { node : int }
  | Learn of { node : int; members : int list }  (** location directory *)
  | Unlearn of { node : int }
  | Root of { node : int }
  | Depart of { node : int }
  | Undepart of { node : int }
  | Forward of { node : int; dst : int }
  | Unforward of { node : int }
  | Park of { node : int; msg : Msg.t }
  | Unpark of { node : int }
  | Op_done of { op : int }  (** an acknowledged client operation *)
  | Send of { dst : int; abs : int; msg : Msg.t }
      (** durable outbound: unretired reliable (or local) send *)
  | Retire of { dst : int; abs : int }  (** acked/delivered through [abs] *)
  | Deliver of { src : int; abs : int }  (** inbound delivered count *)

(* Dense tags, [Msg.kind_id]-style: replay and accounting dispatch on an
   array index, never a string. *)
let tag = function
  | Write _ -> 0
  | Remove _ -> 1
  | Learn _ -> 2
  | Unlearn _ -> 3
  | Root _ -> 4
  | Depart _ -> 5
  | Undepart _ -> 6
  | Forward _ -> 7
  | Unforward _ -> 8
  | Park _ -> 9
  | Unpark _ -> 10
  | Op_done _ -> 11
  | Send _ -> 12
  | Retire _ -> 13
  | Deliver _ -> 14

let tag_names =
  [|
    "write"; "remove"; "learn"; "unlearn"; "root"; "depart"; "undepart";
    "forward"; "unforward"; "park"; "unpark"; "op_done"; "send"; "retire";
    "deliver";
  |]

let num_tags = Array.length tag_names
let tag_name i = tag_names.(i)

(* Simulated bytes written for one record: a small header plus the
   payload priced by the message cost model. *)
let record_size = function
  | Write { snap; members; join_versions; _ } ->
    12 + Msg.snapshot_size snap
    + (4 * List.length members)
    + (8 * List.length join_versions)
  | Remove _ | Unlearn _ | Root _ | Depart _ | Undepart _ | Unforward _
  | Unpark _ | Op_done _ ->
    8
  | Learn { members; _ } -> 8 + (4 * List.length members)
  | Forward _ -> 12
  | Park { msg; _ } -> 8 + Msg.size msg
  | Send { msg; _ } -> 16 + Msg.size msg
  | Retire _ | Deliver _ -> 16

type t = {
  pid : int;
  snapshot_every : int;  (** log records between compactions; 0 = never *)
  mutable snap : record list;  (** last snapshot, canonical order *)
  mutable log : record list;  (** tail since the snapshot, newest first *)
  mutable log_len : int;
  (* monotone accounting, over the whole life of the store *)
  mutable records_total : int;
  mutable bytes_total : int;
  mutable snapshots : int;
  mutable snap_bytes : int;  (** bytes of the most recent snapshot *)
  mutable replaying : bool;
      (** replay in progress: appends are refused (a recovery must never
          re-journal the facts it is reading) *)
}

let create ~pid ~snapshot_every =
  {
    pid;
    snapshot_every;
    snap = [];
    log = [];
    log_len = 0;
    records_total = 0;
    bytes_total = 0;
    snapshots = 0;
    snap_bytes = 0;
    replaying = false;
  }

let pid t = t.pid
let log_length t = t.log_len
let records_total t = t.records_total
let bytes_total t = t.bytes_total
let snapshots t = t.snapshots
let snapshot_bytes t = t.snap_bytes
let replaying t = t.replaying
let set_replaying t b = t.replaying <- b

(* ------------------------------------------------------------------ *)
(* Materialized replay state.  Used both by compaction (to build the
   next snapshot) and by recovery (via [fold]/[net_state]).            *)

type state = {
  nodes : (int, record) Hashtbl.t;  (* node -> latest Write *)
  where : (int, int list) Hashtbl.t;
  mutable root : int;
  departed : (int, unit) Hashtbl.t;
  forwarding : (int, int) Hashtbl.t;
  parked : (int, Msg.t list) Hashtbl.t;  (* newest first *)
  outbound : (int, (int * Msg.t) list) Hashtbl.t;
      (* dst -> unretired sends, newest first, with their abs index *)
  sent : (int, int) Hashtbl.t;  (* dst -> sends journaled (abs high-water) *)
  delivered : (int, int) Hashtbl.t;  (* src -> delivered count *)
  mutable ops_done : int;
}

let fresh_state () =
  {
    nodes = Hashtbl.create 64;
    where = Hashtbl.create 64;
    root = -1;
    departed = Hashtbl.create 8;
    forwarding = Hashtbl.create 8;
    parked = Hashtbl.create 8;
    outbound = Hashtbl.create 8;
    sent = Hashtbl.create 8;
    delivered = Hashtbl.create 8;
    ops_done = 0;
  }

let apply_to_state st r =
  match r with
  | Write { snap; members; _ } ->
    (* [Store.install]/[Store.wrote] refresh the location hint from the
       member list, so a [Write] carries a [where] update too; folding it
       here keeps compaction faithful to the interleaved live order
       (a snapshot emits Writes before Learns, so [st.where] must hold
       the final hint, not just the last explicit [Learn]). *)
    Hashtbl.replace st.nodes snap.Msg.s_id r;
    Hashtbl.replace st.where snap.Msg.s_id members
  | Remove { node } -> Hashtbl.remove st.nodes node
  | Learn { node; members } -> Hashtbl.replace st.where node members
  | Unlearn { node } -> Hashtbl.remove st.where node
  | Root { node } -> st.root <- node
  | Depart { node } -> Hashtbl.replace st.departed node ()
  | Undepart { node } -> Hashtbl.remove st.departed node
  | Forward { node; dst } -> Hashtbl.replace st.forwarding node dst
  | Unforward { node } -> Hashtbl.remove st.forwarding node
  | Park { node; msg } ->
    let prev = Option.value (Hashtbl.find_opt st.parked node) ~default:[] in
    Hashtbl.replace st.parked node (msg :: prev)
  | Unpark { node } -> Hashtbl.remove st.parked node
  | Op_done _ -> st.ops_done <- st.ops_done + 1
  | Send { dst; abs; msg } ->
    let prev = Option.value (Hashtbl.find_opt st.outbound dst) ~default:[] in
    Hashtbl.replace st.outbound dst ((abs, msg) :: prev);
    let hi = Option.value (Hashtbl.find_opt st.sent dst) ~default:0 in
    Hashtbl.replace st.sent dst (max hi (abs + 1))
  | Retire { dst; abs } ->
    let prev = Option.value (Hashtbl.find_opt st.outbound dst) ~default:[] in
    Hashtbl.replace st.outbound dst
      (List.filter (fun (a, _) -> a > abs) prev);
    (* retiring through [abs] implies at least [abs + 1] sends happened;
       this is what lets a snapshot of a fully-drained channel carry the
       abs high-water as a single Retire record *)
    let hi = Option.value (Hashtbl.find_opt st.sent dst) ~default:0 in
    Hashtbl.replace st.sent dst (max hi (abs + 1))
  | Deliver { src; abs } ->
    let prev = Option.value (Hashtbl.find_opt st.delivered src) ~default:0 in
    Hashtbl.replace st.delivered src (max prev (abs + 1))

(* Replay order: snapshot first, then the tail log oldest-first. *)
let iter_records t f =
  List.iter f t.snap;
  List.iter f (List.rev t.log)

let materialize t =
  let st = fresh_state () in
  iter_records t (fun r -> apply_to_state st r);
  st

(* Deterministic canonical listing of a materialized state.  Hashtbl
   iteration order never escapes: every table is folded into a list and
   sorted by key before records are emitted. *)
let sorted_bindings h =
  List.sort (fun (a, _) (b, _) -> compare a b)
    (* dblint: allow no-nondeterminism -- unordered fold feeds the sort by key above *)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])

let canonical st =
  let recs = ref [] in
  let push r = recs := r :: !recs in
  List.iter (fun (_, r) -> push r) (sorted_bindings st.nodes);
  List.iter (fun (node, members) -> push (Learn { node; members }))
    (sorted_bindings st.where);
  (* replaying a Write re-installs the hint; if it was since unlearned,
     say so explicitly or the snapshot resurrects it *)
  List.iter
    (fun (node, _) ->
      if not (Hashtbl.mem st.where node) then push (Unlearn { node }))
    (sorted_bindings st.nodes);
  if st.root >= 0 then push (Root { node = st.root });
  List.iter (fun (node, ()) -> push (Depart { node }))
    (sorted_bindings st.departed);
  List.iter (fun (node, dst) -> push (Forward { node; dst }))
    (sorted_bindings st.forwarding);
  List.iter
    (fun (node, msgs) ->
      List.iter (fun msg -> push (Park { node; msg })) (List.rev msgs))
    (sorted_bindings st.parked);
  List.iter
    (fun (dst, items) ->
      List.iter (fun (abs, msg) -> push (Send { dst; abs; msg }))
        (List.sort compare (List.map (fun (a, m) -> (a, m)) items)))
    (sorted_bindings st.outbound);
  (* preserve the abs high-water for channels whose queue drained *)
  List.iter
    (fun (dst, hi) ->
      if hi > 0 && Hashtbl.find_opt st.outbound dst = Some [] then
        push (Retire { dst; abs = hi - 1 }))
    (sorted_bindings st.sent);
  List.iter (fun (src, n) -> push (Deliver { src; abs = n - 1 }))
    (List.filter (fun (_, n) -> n > 0) (sorted_bindings st.delivered));
  List.rev !recs

let compact t =
  let st = materialize t in
  let snap = canonical st in
  t.snap <- snap;
  t.log <- [];
  t.log_len <- 0;
  t.snapshots <- t.snapshots + 1;
  t.snap_bytes <- List.fold_left (fun acc r -> acc + record_size r) 0 snap

let append t r =
  if not t.replaying then begin
    t.log <- r :: t.log;
    t.log_len <- t.log_len + 1;
    t.records_total <- t.records_total + 1;
    t.bytes_total <- t.bytes_total + record_size r;
    if t.snapshot_every > 0 && t.log_len >= t.snapshot_every then compact t
  end

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

let replay t f =
  let n = ref 0 in
  iter_records t (fun r ->
      incr n;
      f r);
  !n

(* Durable network state for [Net.restore_proc]: unretired outbound
   sends per destination (oldest first, with abs indices), the abs
   high-water per destination, and the per-source delivered counts. *)
let net_state t =
  let st = materialize t in
  let outbound =
    List.map (fun (dst, items) -> (dst, List.sort compare items))
      (sorted_bindings st.outbound)
  in
  let sent = sorted_bindings st.sent in
  let delivered =
    List.filter (fun (_, n) -> n > 0) (sorted_bindings st.delivered)
  in
  (outbound, sent, delivered)
