(** Wire messages of all dB-tree protocols.

    One shared message type covers every protocol variant (the fixed-copies
    family, the eager baseline, mobile nodes, and variable copies); each
    protocol uses the subset it needs.  A message names the logical node it
    acts on — never a raw address — which is what lets B-link-style
    recovery reroute misdelivered actions.

    Update actions carry the history uid shared by an initial action and
    its relays (see {!Dbtree_history.Action}). *)

open Dbtree_blink

type pid = int
type node_id = int
type value = string

(** A node value shipped in a message: sibling creation (half-split),
    new-root installation, migration, and join all transfer one of these.
    [s_base] carries the history-instrumentation uids covered by the value
    (empty when history recording is off). *)
type snapshot = {
  s_id : node_id;
  s_level : int;
  s_low : Bound.t;
  s_high : Bound.t;
  s_entries : (int * value Node.payload) list;
  s_right : node_id option;
  s_left : node_id option;
  s_parent : node_id option;
  s_version : int;
  s_base : int list;
}

type op_result =
  | Found of value
  | Absent
  | Inserted
  | Removed of bool
  | Bindings of (int * value) list  (** range-scan result, in key order *)

(** The three update actions of the paper's §4.1 model.  [Upsert] and
    [Remove] act on leaves and carry the client operation to answer;
    [Add_child] installs a child pointer in an interior node (the "second
    step" of a half-split). *)
type update =
  | Upsert of { op : int; origin : pid; value : value }
  | Remove of { op : int; origin : pid }
  | Add_child of { child : node_id; child_members : pid list }
  | Drop_child of { child : node_id; fallback : node_id; fallback_pid : pid }
      (** dE-tree extension (§5): retire a freed leaf's entry from its
          parent.  If the entry is the parent's first (load-bearing floor
          entry) it is repointed to [fallback] — the absorbing left
          neighbor — instead of removed. *)

type routed =
  | Search of { op : int; origin : pid }
  | Scan of { op : int; origin : pid; hi : int; acc : (int * value) list }
      (** range scan: the route key is the scan cursor; the action walks
          the leaf chain rightward accumulating bindings up to [hi] *)
  | Update of { uid : int; u : update }
  | Absorb of {
      uid : int;
      dead : node_id;
      dead_high_key : int option;  (** [None] encodes +inf *)
      dead_right : node_id option;
      dead_version : int;
    }
      (** dE-tree extension (§5): the node covering the route key — the
          freed leaf's left neighbor — absorbs the dead leaf's range
          [\[route key + 1, dead_high)] and takes over its right link. *)
  | Relink of {
      uid : int;
      which : [ `Left | `Right | `Child of node_id ];
      target : node_id;
      target_pid : pid;
      version : int;
      relayed : bool;
          (** variable copies: a relink applied at one copy of a
              replicated node is relayed to the other copies *)
    }
      (** §4.2 ordered link-change action, routed by key: the node whose
          range contains the route key at the route level re-points its
          [which] link to [target] (located at [target_pid]) iff [version]
          beats the link's recorded version.  Routing by key rather than by
          node id is what makes the action deliverable after arbitrary
          migrations and splits. *)

type t =
  | Route of { key : int; level : int; node : node_id; act : routed }
      (** An action being navigated to the node of [level] whose range
          contains [key], currently directed at [node]. *)
  | Op_done of { op : int; result : op_result }
  | Relay_update of {
      uid : int;
      node : node_id;
      key : int;
      u : update;
      version : int;
      sender : pid;
    }  (** lazy relay of an initial update to the other copies *)
  | Split_start of { node : node_id }  (** sync AAS, PC -> copies *)
  | Split_ack of { node : node_id }  (** sync AAS, copy -> PC *)
  | Split_done of {
      uid : int;
      node : node_id;
      sep : int;
      sibling : snapshot;
      sibling_members : pid list;
      sync : bool;
    }
      (** the split itself: [split_end] of the synchronous AAS when [sync],
          otherwise the semi-synchronous relayed split *)
  | New_root of { snap : snapshot; members : pid list }
  | Eager_update of { uid : int; node : node_id; key : int; u : update }
  | Eager_split of {
      uid : int;
      node : node_id;
      sep : int;
      sibling : snapshot;
      sibling_members : pid list;
    }
  | Eager_ack of { node : node_id }
  | Batch of batch
      (** piggybacked lazy relays, flushed as one wire message *)
  | Migrate_install of {
      snap : snapshot;
      ancestors : (node_id * pid list) list;
          (** root-to-parent path with location hints, so the receiver can
              join the replication of every ancestor (§4.3) *)
      from_pid : pid;
    }  (** §4.2/4.3: a migrating node arriving at its new processor *)
  | Join_request of { node : node_id; requester : pid }
  | Join_copy of {
      node : node_id;
      snap : snapshot;
      members : pid list;
      join_version : int;
      hints : (node_id * pid list) list;
          (** location hints for the node's children and siblings, so the
              joiner can navigate through its new copy *)
    }  (** PC -> joiner: your copy, the membership, and your join version *)
  | Relay_member of {
      node : node_id;
      change : [ `Join of pid | `Unjoin of pid ];
      version : int;
      uid : int;
    }
  | Unjoin_request of { node : node_id; pid : pid }

and batch = { parts : t list; mutable wire_size : int }
(** [wire_size] memoises {!size} for the batch ([-1] = not yet computed);
    build batches with {!batch} and treat [parts] as immutable. *)

val batch : t list -> t
(** Wrap piggybacked relays as one wire message (size not yet priced). *)

val kind : t -> string
(** Per-kind accounting tag. *)

val size : t -> int
(** Estimated wire size in bytes. *)

val kind_id : t -> int
(** Dense id of {!kind} in [\[0, num_kinds)], for array-indexed per-kind
    counters. *)

val num_kinds : int

val kind_name : int -> string
(** Inverse of {!kind_id}: [kind_name (kind_id m) = kind m]. *)

val snapshot_size : snapshot -> int
(** Estimated wire/disk size of a node image in bytes — shared by the
    message cost model and the durability layer's byte accounting. *)

val snapshot_of_node : ?base:int list -> value Node.t -> snapshot
val node_of_snapshot : snapshot -> value Node.t
val pp : t Fmt.t
