(** Shared cluster state: simulator, network, stores, registries.

    Every protocol variant drives one of these.  The cluster owns the
    deterministic id/uid allocators, the history instrumentation (a thin
    layer over {!Dbtree_history.Registry} that is a no-op when history
    recording is off), and the replication-policy computation. *)

open Dbtree_sim
open Dbtree_blink
module Network : module type of Net.Make (Msg)

(** Interned stat-counter handles shared by all protocol kernels, resolved
    once at cluster creation so hot loops bump an [int ref] instead of
    hashing a string key.  Handles a protocol never bumps stay at 0 and are
    invisible in {!Stats.counters} output. *)
type counters = {
  route_hops : Stats.counter;
  route_chase : Stats.counter;
  route_up : Stats.counter;
  route_parked : Stats.counter;
  route_lost_hint : Stats.counter;
  split_count : Stats.counter;
  split_blocked_updates : Stats.counter;
  split_dropped_entries : Stats.counter;
  root_grow : Stats.counter;
  eager_requeued : Stats.counter;
  relay_applied : Stats.counter;
  relay_discarded : Stats.counter;
  relay_catchup : Stats.counter;
  relay_to_departed : Stats.counter;
  naive_lost : Stats.counter;
  semi_forwarded : Stats.counter;
  link_change_absorbed : Stats.counter;
  link_change_self_absorbed : Stats.counter;
  migrate_count : Stats.counter;
  migrate_skipped : Stats.counter;
  join_count : Stats.counter;
  join_requested : Stats.counter;
  join_duplicate : Stats.counter;
  join_already_member : Stats.counter;
  unjoin_count : Stats.counter;
  unjoin_duplicate : Stats.counter;
  recover_count : Stats.counter;
  recover_departed : Stats.counter;
  recover_forwarded : Stats.counter;
  recover_hinted : Stats.counter;
  recover_rerouted : Stats.counter;
  recover_restart : Stats.counter;
  recover_via_root : Stats.counter;
  reclaim_count : Stats.counter;
  reclaim_absorbed : Stats.counter;
  reclaim_absorb_stale : Stats.counter;
  reclaim_dropped : Stats.counter;
  reclaim_drop_stale : Stats.counter;
  route_no_members : Stats.counter;
  recovery_replayed : Stats.counter;
  recovery_rejoined : Stats.counter;
  lat_search : Stats.hist;
  lat_insert : Stats.hist;
  lat_delete : Stats.hist;
  lat_scan : Stats.hist;
  aas_time : Stats.hist;
}

type t = {
  config : Config.t;
  sim : Sim.t;
  net : Network.t;
  stores : Store.t array;
  wals : Wal.t array;
      (** per-processor durable journals ([Config.durability.wal]);
          length 0 when durability is off *)
  ops : Opstate.t;
  hist : Dbtree_history.Registry.t;
  obs : Dbtree_obs.Obs.t;
  telem : Telemetry.t;
      (** live telemetry plane ([Config.telemetry] or the [Series] force
          switch); {!Telemetry.disabled} otherwise *)
  partition : Partition.t;
  ctr : counters;
  mutable next_node_id : int;
  mutable next_uid : int;
}

val create : Config.t -> t
(** Build the cluster skeleton (no tree yet; protocols bootstrap their own
    initial structure and install their handler). *)

val store : t -> Msg.pid -> Store.t
val stats : t -> Stats.t
val now : t -> int

val fresh_node_id : t -> Msg.node_id
val fresh_uid : t -> int
(** Allocate an update uid and, when recording, declare it issued. *)

val members_for_range : t -> low:Bound.t -> high:Bound.t -> Msg.pid list
(** The replication policy: where the copies of a node covering
    [\[low, high)] live. *)

(** An empty member set — reachable once the last copy-holder of a node
    can crash — is a typed error, surfaced through the park path
    ({!park_no_members}) rather than an exception. *)
type pc_error = Empty_members

val pc_of_members : Msg.pid list -> (Msg.pid, pc_error) result
(** The primary copy's processor: the first member. *)

val pc_of_members_exn : Msg.pid list -> Msg.pid
(** For construction/bootstrap sites whose member lists come from the
    partition and are structurally nonempty; raises [Invalid_argument]
    if that invariant is ever broken. *)

val park_no_members : t -> pid:Msg.pid -> node:Msg.node_id -> Msg.t -> unit
(** Surface {!pc_error} through the park path: buffer the message at the
    node (it waits for a copy that can name a primary) and count it
    under [route.no_members]. *)

val send : t -> src:Msg.pid -> dst:Msg.pid -> Msg.t -> unit

(** {2 Telemetry hooks} — one branch each when the plane is off.

    The standard series and SLO rules ([p99_search], [stall_oldest_op],
    [retx_storm], [recovery_slow], [hot_imbalance]) are wired at
    creation; kernels feed the plane through the hooks below. *)

val telemetry : t -> Telemetry.t

val touch : t -> node:int -> unit
(** Count one access to a node's local copy, for the heat gauges. *)

val aas_begin : t -> unit
val aas_end : t -> unit
(** Bracket a synchronous-split AAS hold ([aas.open] series). *)

(** {2 Typed trace events} — one branch when tracing is off. *)

val event :
  t -> pid:Msg.pid -> Dbtree_obs.Event.kind -> a:int -> b:int -> unit
(** Record a protocol event under the ambient causal context (set by the
    network around each delivery). *)

val op_kind_code : Opstate.kind -> int
(** The {!Dbtree_obs.Event} operation-kind code for an [Opstate.kind]. *)

val op_issue : t -> Opstate.record -> unit
(** Record [Op_issue] for a freshly registered operation and make it the
    ambient causal context, so the route the protocol sends next chains
    into the op's span.  Protocols call this right after
    [Opstate.register]. *)

val op_complete : t -> op:int -> result:Msg.op_result -> unit
(** The completion funnel every protocol uses instead of calling
    [Opstate.complete] directly: observes the per-kind latency histogram
    and records [Op_complete] (first completion only), then updates the
    op registry. *)

(** {2 History instrumentation} — all no-ops when
    [config.record_history = false]. *)

val recording : t -> bool

val hist_new_copy : t -> node:int -> pid:int -> base:int list -> unit

val hist_record :
  t ->
  node:int ->
  pid:int ->
  ?effective:bool ->
  mode:Dbtree_history.Action.mode ->
  ?version:int ->
  uid:int ->
  Dbtree_history.Action.kind ->
  unit

val hist_snapshot : t -> node:int -> pid:int -> int list
(** Uids covered by a copy's current value (for snapshot bases); [[]] when
    not recording. *)

val hist_retire : t -> node:int -> pid:int -> unit

(** {2 Durability and crash recovery} *)

val wal : t -> Msg.pid -> Wal.t
(** The processor's journal; only valid when [config.durability.wal]. *)

val replay_wal : t -> Msg.pid -> int * int
(** Rebuild the processor's store from its journal (snapshot + tail log,
    in order); returns (records, bytes) read.  Journaling is suspended
    for the duration. *)

val install_recovery : t -> rejoin:(Msg.pid -> unit) -> unit
(** Wire the crash/restart machinery into the network: on crash the
    store's volatile state is dropped; on restart the journal is
    replayed, the durable channel state restored
    ({!Network.restore_proc}), and then [rejoin] runs — the kernel's
    re-enrollment step.  Kernels with crash support call this once at
    creation; kernels without it reject [faults.crash_at] instead. *)

val rejoin_copies : t -> Msg.pid -> unit
(** The §4.3 rejoin step for kernels with a join protocol: send one
    [Join_request] to the primary of every recovered copy held by
    [pid] whose primary is elsewhere.  The PC's version-stamped
    [Join_copy] reply delivers everything the processor missed. *)

val run : ?max_events:int -> t -> unit
(** Drain the simulation to quiescence. *)
