open Dbtree_blink
open Dbtree_sim
module Action = Dbtree_history.Action
module Event = Dbtree_obs.Event

type link_tag = [ `Left | `Right | `Child of int ]

type t = {
  cl : Cluster.t;
  (* Version last applied per (node, link) — orders link-change actions. *)
  link_versions : (int * link_tag, int) Hashtbl.t;
  mutable splits : int;
  mutable migrations : int;
}

let cluster t = t.cl
let config t = t.cl.Cluster.config
let splits t = t.splits
let migrations t = t.migrations
let capacity t = (config t).Config.capacity
let procs t = (config t).Config.procs
let ctr t = t.cl.Cluster.ctr
let send t ~src ~dst msg = Cluster.send t.cl ~src ~dst msg
let send_local t pid msg = send t ~src:pid ~dst:pid msg

let reply_op t ~src op result =
  if op >= 0 then
    match Opstate.find t.cl.Cluster.ops op with
    | Some r -> send t ~src ~dst:r.Opstate.origin (Msg.Op_done { op; result })
    | None -> Fmt.failwith "Mobile: reply for unknown op %d" op

(* A key guaranteed to lie inside the node's range, used to route actions
   that concern this node (e.g. the parent's hint update) by key. *)
let guide_key (n : Msg.value Node.t) =
  match (n.Node.low, n.Node.high) with
  | Bound.Key k, _ -> k
  | Bound.Neg_inf, Bound.Key h -> h - 1
  | Bound.Neg_inf, (Bound.Pos_inf | Bound.Neg_inf) -> 0
  | Bound.Pos_inf, _ -> invalid_arg "Mobile.guide_key: low = +inf"

(* ------------------------------------------------------------------ *)
(* Routing with hints, forwarding addresses and missing-node recovery  *)

let hint_of t pid node =
  match Store.members_opt (Cluster.store t.cl pid) node with
  | Some (m :: _) when m <> pid -> Some m
  | Some _ | None -> None

let forward t pid msg next =
  let store = Cluster.store t.cl pid in
  Stats.tick (ctr t).Cluster.route_hops;
  if Store.mem store next then send_local t pid msg
  else
    match hint_of t pid next with
    | Some m -> send t ~src:pid ~dst:m msg
    | None ->
      (* No idea where [next] lives: recover via the root. *)
      Stats.tick (ctr t).Cluster.route_lost_hint;
      let root = store.Store.root in
      if Store.mem store root then send_local t pid msg
      else
        match hint_of t pid root with
        | Some m -> send t ~src:pid ~dst:m msg
        | None -> Fmt.failwith "Mobile: processor %d cannot reach the root" pid

(* Recovery when a message arrives for a node this processor does not
   store (§4.2 "missing node"): forwarding address if we kept one,
   else our own location hint (we always update it when a node leaves
   us), else re-route the action from a local node that is at or above
   the action's level, else bounce via the root. *)
let recover t pid msg ~node ~level =
  let store = Cluster.store t.cl pid in
  Stats.tick (ctr t).Cluster.recover_count;
  match Hashtbl.find_opt store.Store.forwarding node with
  | Some fwd ->
    Stats.tick (ctr t).Cluster.recover_forwarded;
    send t ~src:pid ~dst:fwd msg
  | None -> (
    match hint_of t pid node with
    | Some m ->
      Stats.tick (ctr t).Cluster.recover_hinted;
      send t ~src:pid ~dst:m msg
    | None ->
      (* Restart the navigation root-ward: the highest local node sees
         the repaired parent entries, while an arbitrary sibling would
         chase stale links through reclaimed territory. *)
      let best = ref None in
      Store.iter store (fun c ->
          let l = c.Store.node.Node.level in
          if l > level then
            match !best with
            | Some (bl, _) when bl >= l -> ()
            | Some _ | None -> best := Some (l, c.Store.node.Node.id));
      let restart_at =
        match !best with
        | Some (_, id) -> Some id
        | None -> if Store.mem store store.Store.root then Some store.Store.root else None
      in
      (match (restart_at, msg) with
      | Some id, Msg.Route r ->
        Stats.tick (ctr t).Cluster.recover_rerouted;
        send_local t pid (Msg.Route { r with node = id })
      | Some _, _ | None, _ ->
        (* Not locally navigable: bounce the message via the root's owner. *)
        Stats.tick (ctr t).Cluster.recover_via_root;
        let dst =
          match hint_of t pid store.Store.root with Some m -> m | None -> 0
        in
        let msg =
          match msg with
          | Msg.Route r -> Msg.Route { r with node = store.Store.root }
          | other -> other
        in
        send t ~src:pid ~dst msg))

(* ------------------------------------------------------------------ *)
(* Splits                                                              *)

let issue_relink t pid ~key ~level ~start ~which ~target ~version =
  let uid = Cluster.fresh_uid t.cl in
  forward t pid
    (Msg.Route
       {
         key;
         level;
         node = start;
         act = Msg.Relink { uid; which; target; target_pid = pid; version; relayed = false };
       })
    start

let rec maybe_split t pid (copy : Store.rcopy) =
  if Node.too_full ~capacity:(capacity t) copy.Store.node then begin
    let n = copy.Store.node in
    let store = Cluster.store t.cl pid in
    let uid = Cluster.fresh_uid t.cl in
    let sib_id = Cluster.fresh_node_id t.cl in
    let base = Cluster.hist_snapshot t.cl ~node:n.Node.id ~pid in
    let sib = Node.half_split n ~sibling_id:sib_id in
    let sep = Node.separator_of_sibling sib in
    t.splits <- t.splits + 1;
    Stats.tick (ctr t).Cluster.split_count;
    Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Initial ~uid
      ~version:n.Node.version
      (Action.Half_split { sep; sibling = sib_id });
    (* The sibling lives on the same processor (§4.2). *)
    ignore (Store.install store ~node:sib ~pc:pid ~members:[ pid ]);
    Cluster.hist_new_copy t.cl ~node:sib_id ~pid ~base;
    Cluster.event t.cl ~pid Event.Split_start ~a:n.Node.id ~b:sib_id;
    (* Fix the old right neighbor's left link (link-change, §4.2).  The
       guide key is the sibling's high bound — the neighbor's low key —
       so the action lands on whoever covers that range now. *)
    (match (sib.Node.right, sib.Node.high) with
    | Some r, Bound.Key h ->
      issue_relink t pid ~key:h ~level:n.Node.level ~start:r ~which:`Left
        ~target:sib_id ~version:sib.Node.version
    | (Some _ | None), _ -> ());
    (* Insert the sibling into the parent. *)
    if store.Store.root = n.Node.id then grow_root t pid ~old_root:n ~sep ~sib_id
    else begin
      let uid' = Cluster.fresh_uid t.cl in
      let start = Option.value n.Node.parent ~default:store.Store.root in
      forward t pid
        (Msg.Route
           {
             key = sep;
             level = n.Node.level + 1;
             node = start;
             act =
               Msg.Update
                 {
                   uid = uid';
                   u = Msg.Add_child { child = sib_id; child_members = [ pid ] };
                 };
           })
        start
    end;
    Cluster.event t.cl ~pid Event.Split_end ~a:n.Node.id ~b:sib_id;
    maybe_split t pid copy
  end

and grow_root t pid ~old_root ~sep ~sib_id =
  let store = Cluster.store t.cl pid in
  let id = Cluster.fresh_node_id t.cl in
  let entries =
    Entries.of_sorted_list
      [
        (Bound.min_sentinel, Node.Child old_root.Node.id);
        (sep, Node.Child sib_id);
      ]
  in
  let root =
    Node.make ~id ~level:(old_root.Node.level + 1) ~low:Bound.Neg_inf
      ~high:Bound.Pos_inf entries
  in
  old_root.Node.parent <- Some id;
  (match Store.find store sib_id with
  | Some c -> c.Store.node.Node.parent <- Some id
  | None -> ());
  Stats.tick (ctr t).Cluster.root_grow;
  Cluster.event t.cl ~pid Event.Root_grow ~a:id ~b:(old_root.Node.level + 1);
  ignore (Store.install store ~node:root ~pc:pid ~members:[ pid ]);
  Cluster.hist_new_copy t.cl ~node:id ~pid ~base:[];
  store.Store.root <- id;
  let snap = Msg.snapshot_of_node root in
  for p = 0 to procs t - 1 do
    if p <> pid then send t ~src:pid ~dst:p (Msg.New_root { snap; members = [ pid ] })
  done

(* ------------------------------------------------------------------ *)
(* Performing actions                                                  *)

let apply_update t pid (copy : Store.rcopy) key (u : Msg.update) =
  let n = copy.Store.node in
  match u with
  | Msg.Upsert { op; value; _ } ->
    Node.add_entry n key (Node.Data value);
    Some (op, Msg.Inserted)
  | Msg.Remove { op; _ } ->
    let present = Entries.mem n.Node.entries key in
    Node.remove_entry n key;
    Some (op, Msg.Removed present)
  | Msg.Add_child { child; child_members } ->
    Node.add_entry n key (Node.Child child);
    (* weak: the Add_child can arrive after the child migrated *)
    Store.learn_if_absent (Cluster.store t.cl pid) child child_members;
    None
  | Msg.Drop_child { child; fallback; fallback_pid } -> begin
    (* dE-tree: retire a freed leaf's parent entry.  The entry is found
       by value (its key can be the bootstrap sentinel); a first entry is
       the node's floor and is repointed to the absorber instead. *)
    let entry =
      Entries.fold
        (fun k p acc ->
          match p with
          | Node.Child c when c = child -> Some k
          | Node.Child _ | Node.Data _ -> acc)
        n.Node.entries None
    in
    (match entry with
    | Some k ->
      let is_first =
        match Entries.min_binding n.Node.entries with
        | Some (k0, _) -> k0 = k
        | None -> false
      in
      if is_first then Node.add_entry n k (Node.Child fallback)
      else Node.remove_entry n k;
      Store.learn_if_absent (Cluster.store t.cl pid) fallback [ fallback_pid ];
      Stats.tick (ctr t).Cluster.reclaim_dropped
    | None -> Stats.tick (ctr t).Cluster.reclaim_drop_stale);
    None
  end

let action_kind key (u : Msg.update) =
  match u with
  | Msg.Upsert _ | Msg.Add_child _ -> Action.Insert { key }
  | Msg.Remove _ | Msg.Drop_child _ -> Action.Delete { key }

let which_to_action : link_tag -> _ = function
  | `Left -> `Left
  | `Right -> `Right
  | `Child c -> `Child c

let perform_relink t pid (copy : Store.rcopy) ~uid ~which ~target ~target_pid
    ~version =
  let n = copy.Store.node in
  let slot = (n.Node.id, (which : link_tag)) in
  let current = Option.value (Hashtbl.find_opt t.link_versions slot) ~default:(-1) in
  if target = n.Node.id then begin
    (* reclamation can collapse a chain of leaves into one node, routing a
       neighbor relink back to the absorber: vacuously satisfied *)
    Stats.tick (ctr t).Cluster.link_change_self_absorbed;
    Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Initial
      ~effective:false ~version ~uid
      (Action.Link_change { which = which_to_action which; target })
  end
  else begin
  (* The ordered-history rule; the E12 ablation applies blindly. *)
  let effective = version > current || not (config t).Config.ordered_links in
  if effective then begin
    Hashtbl.replace t.link_versions slot version;
    let store = Cluster.store t.cl pid in
    (match which with
    | `Left -> n.Node.left <- Some target
    | `Right -> n.Node.right <- Some target
    | `Child _ -> ());
    Store.learn store target [ target_pid ]
  end
  else Stats.tick (ctr t).Cluster.link_change_absorbed;
  Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Initial ~effective
    ~version ~uid
    (Action.Link_change { which = which_to_action which; target })
  end

(* dE-tree reclamation (§5 future work, single-copy case): an emptied
   leaf hands its range to its left neighbor and disappears.  The
   absorber fixes the right neighbor's left link and retires the parent
   entry; in-flight messages to the dead leaf recover via the departed
   mark and root restart. *)
let maybe_reclaim t pid (copy : Store.rcopy) =
  let n = copy.Store.node in
  let store = Cluster.store t.cl pid in
  if
    (config t).Config.reclaim_empty_leaves
    && Node.is_leaf n && Node.size n = 0
    && store.Store.root <> n.Node.id
  then
    match (n.Node.left, n.Node.low) with
    | Some lf, Bound.Key low ->
      let uid = Cluster.fresh_uid t.cl in
      Stats.tick (ctr t).Cluster.reclaim_count;
      Cluster.event t.cl ~pid Event.Reclaim ~a:n.Node.id ~b:lf;
      Store.remove store n.Node.id;
      Hashtbl.replace store.Store.departed n.Node.id ();
      Cluster.hist_retire t.cl ~node:n.Node.id ~pid;
      let dead_high_key =
        match n.Node.high with
        | Bound.Key h -> Some h
        | Bound.Pos_inf -> None
        | Bound.Neg_inf -> assert false
      in
      forward t pid
        (Msg.Route
           {
             key = low - 1;
             level = 0;
             node = lf;
             act =
               Msg.Absorb
                 {
                   uid;
                   dead = n.Node.id;
                   dead_high_key;
                   dead_right = n.Node.right;
                   dead_version = n.Node.version;
                 };
           })
        lf
    | (Some _ | None), _ -> ()

let perform t pid (copy : Store.rcopy) ~key ~(act : Msg.routed) =
  match act with
  | Msg.Search { op; origin } ->
    let result =
      match Node.find_leaf_value copy.Store.node key with
      | Some v -> Msg.Found v
      | None -> Msg.Absent
    in
    send t ~src:pid ~dst:origin (Msg.Op_done { op; result })
  | Msg.Update { uid; u } ->
    let reply = apply_update t pid copy key u in
    Cluster.hist_record t.cl ~node:copy.Store.node.Node.id ~pid
      ~mode:Action.Initial ~uid (action_kind key u);
    (match reply with
    | Some (op, result) -> reply_op t ~src:pid op result
    | None -> ());
    maybe_split t pid copy;
    (match u with
    | Msg.Remove _ -> maybe_reclaim t pid copy
    | Msg.Upsert _ | Msg.Add_child _ | Msg.Drop_child _ -> ())
  | Msg.Scan { op; origin; hi; acc } -> begin
    (* collect this leaf's bindings in [route key, hi], then continue
       along the leaf chain while it still overlaps the range *)
    let n = copy.Store.node in
    let acc =
      Entries.fold
        (fun k p acc ->
          match p with
          | Node.Data v when k >= key && k <= hi -> (k, v) :: acc
          | Node.Data _ | Node.Child _ -> acc)
        n.Node.entries acc
    in
    match (n.Node.right, n.Node.high) with
    | Some r, Bound.Key h when h <= hi ->
      forward t pid
        (Msg.Route
           { key = h; level = 0; node = r; act = Msg.Scan { op; origin; hi; acc } })
        r
    | (Some _ | None), _ ->
      send t ~src:pid ~dst:origin
        (Msg.Op_done { op; result = Msg.Bindings (List.rev acc) })
  end
  | Msg.Relink { uid; which; target; target_pid; version; relayed = _ } ->
    perform_relink t pid copy ~uid ~which ~target ~target_pid ~version
  | Msg.Absorb { uid; dead; dead_high_key; dead_right; dead_version } -> begin
    let n = copy.Store.node in
    let dead_low = key + 1 in
    (* only the node whose range ends exactly at the dead leaf's low bound
       may absorb; anything else means the chain already changed *)
    if not (Bound.equal n.Node.high (Bound.Key dead_low)) then
      Stats.tick (ctr t).Cluster.reclaim_absorb_stale
    else begin
      let dead_high =
        match dead_high_key with
        | Some h -> Bound.Key h
        | None -> Bound.Pos_inf
      in
      n.Node.high <- dead_high;
      n.Node.right <- dead_right;
      n.Node.version <- max n.Node.version dead_version + 1;
      Hashtbl.replace t.link_versions (n.Node.id, `Right) n.Node.version;
      Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Initial
        ~version:n.Node.version ~uid
        (Action.Link_change
           { which = `Right; target = Option.value dead_right ~default:(-1) });
      Stats.tick (ctr t).Cluster.reclaim_absorbed;
      (* fix the right neighbor's left link *)
      (match (dead_right, dead_high_key) with
      | Some r, Some h ->
        issue_relink t pid ~key:h ~level:0 ~start:r ~which:`Left
          ~target:n.Node.id ~version:n.Node.version
      | (Some _ | None), _ -> ());
      (* retire the dead leaf's parent entry *)
      let uid' = Cluster.fresh_uid t.cl in
      let store = Cluster.store t.cl pid in
      forward t pid
        (Msg.Route
           {
             key = dead_low;
             level = 1;
             node = store.Store.root;
             act =
               Msg.Update
                 {
                   uid = uid';
                   u =
                     Msg.Drop_child
                       { child = dead; fallback = n.Node.id; fallback_pid = pid };
                 };
           })
        store.Store.root
    end
  end

(* ------------------------------------------------------------------ *)
(* Migration (§4.2) and data balancing ([14])                          *)

let do_migrate t ~node ~to_pid =
  (* Executed as a simulation event at the owner. *)
  let owner =
    Array.fold_left
      (fun acc store -> if Store.mem store node then Some store else acc)
      None t.cl.Cluster.stores
  in
  match owner with
  | None -> Stats.tick (ctr t).Cluster.migrate_skipped
  | Some store when store.Store.pid = to_pid -> Stats.tick (ctr t).Cluster.migrate_skipped
  | Some store ->
    let pid = store.Store.pid in
    let copy = Store.get store node in
    if store.Store.root = node then Stats.tick (ctr t).Cluster.migrate_skipped
    else begin
      let n = copy.Store.node in
      n.Node.version <- n.Node.version + 1;
      let base = Cluster.hist_snapshot t.cl ~node ~pid in
      let snap = Msg.snapshot_of_node ~base n in
      Store.remove store node;
      Cluster.hist_retire t.cl ~node ~pid;
      if (config t).Config.forwarding then
        Hashtbl.replace store.Store.forwarding node to_pid;
      Store.learn store node [ to_pid ];
      t.migrations <- t.migrations + 1;
      Stats.tick (ctr t).Cluster.migrate_count;
      Cluster.event t.cl ~pid Event.Migrate ~a:node ~b:to_pid;
      send t ~src:pid ~dst:to_pid
        (Msg.Migrate_install { snap; ancestors = []; from_pid = pid })
    end

let handle_migrate_install t pid ~(snap : Msg.snapshot) ~from_pid =
  let store = Cluster.store t.cl pid in
  let node = Msg.node_of_snapshot snap in
  let id = node.Node.id in
  ignore (Store.install store ~node ~pc:pid ~members:[ pid ]);
  Hashtbl.remove store.Store.forwarding id;
  Cluster.hist_new_copy t.cl ~node:id ~pid ~base:snap.Msg.s_base;
  Cluster.hist_record t.cl ~node:id ~pid ~mode:Action.Initial
    ~version:node.Node.version
    ~uid:(Cluster.fresh_uid t.cl)
    (Action.Migrate { to_pid = pid });
  ignore from_pid;
  (* Inform the neighbors (left, right, parent) with link-changes. *)
  let v = node.Node.version in
  (match (node.Node.left, node.Node.low) with
  | Some l, Bound.Key low ->
    issue_relink t pid ~key:(low - 1) ~level:node.Node.level ~start:l
      ~which:`Right ~target:id ~version:v
  | (Some _ | None), _ -> ());
  (match (node.Node.right, node.Node.high) with
  | Some r, Bound.Key high ->
    issue_relink t pid ~key:high ~level:node.Node.level ~start:r ~which:`Left
      ~target:id ~version:v
  | (Some _ | None), _ -> ());
  (match node.Node.parent with
  | Some p ->
    issue_relink t pid ~key:(guide_key node) ~level:(node.Node.level + 1)
      ~start:p ~which:(`Child id) ~target:id ~version:v
  | None -> ());
  (* Re-run anything parked here for this node. *)
  List.iter (send_local t pid) (Store.take_pending store id)

(* Periodic leaf balancer: move one leaf from the most to the least loaded
   processor whenever the spread exceeds one. *)
let leaf_counts t =
  Array.map
    (fun store ->
      let count = ref 0 in
      Store.iter store (fun c -> if Node.is_leaf c.Store.node then incr count);
      !count)
    t.cl.Cluster.stores

let balance_step t =
  let counts = leaf_counts t in
  let hi = ref 0 and lo = ref 0 in
  Array.iteri
    (fun i c ->
      if c > counts.(!hi) then hi := i;
      if c < counts.(!lo) then lo := i)
    counts;
  if counts.(!hi) - counts.(!lo) >= 2 then begin
    (* migrate the fullest leaf of the overloaded processor *)
    let store = Cluster.store t.cl !hi in
    let victim = ref None in
    Store.iter store (fun c ->
        if Node.is_leaf c.Store.node && store.Store.root <> c.Store.node.Node.id
        then
          match !victim with
          | Some (size, _) when size >= Node.size c.Store.node -> ()
          | Some _ | None ->
            victim := Some (Node.size c.Store.node, c.Store.node.Node.id));
    match !victim with
    | Some (_, id) -> do_migrate t ~node:id ~to_pid:!lo
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Message handler                                                     *)

let handle_route t pid ~key ~level ~node ~act =
  let store = Cluster.store t.cl pid in
  match Store.find store node with
  | None -> recover t pid (Msg.Route { key; level; node; act }) ~node ~level
  | Some copy ->
    Cluster.touch t.cl ~node;
    let n = copy.Store.node in
    if n.Node.level > level then begin
      match Node.step n key with
      | Node.Chase_right r ->
        Stats.tick (ctr t).Cluster.route_chase;
        forward t pid (Msg.Route { key; level; node = r; act }) r
      | Node.Chase_left l ->
        Stats.tick (ctr t).Cluster.route_chase;
        forward t pid (Msg.Route { key; level; node = l; act }) l
      | Node.Descend c -> forward t pid (Msg.Route { key; level; node = c; act }) c
      | Node.Here | Node.Dead_end ->
        Fmt.failwith "Mobile: bad navigation at node %d for key %d" node key
    end
    else if n.Node.level < level then begin
      (* Restart upward via the parent hint (or the root). *)
      let start = Option.value n.Node.parent ~default:store.Store.root in
      Stats.tick (ctr t).Cluster.route_up;
      forward t pid (Msg.Route { key; level; node = start; act }) start
    end
    else if Bound.compare_key n.Node.high key <= 0 then begin
      Stats.tick (ctr t).Cluster.route_chase;
      match n.Node.right with
      | Some r -> forward t pid (Msg.Route { key; level; node = r; act }) r
      | None -> Fmt.failwith "Mobile: dead end right at node %d key %d" node key
    end
    else if Bound.compare_key n.Node.low key > 0 then begin
      Stats.tick (ctr t).Cluster.route_chase;
      match n.Node.left with
      | Some l -> forward t pid (Msg.Route { key; level; node = l; act }) l
      | None -> Fmt.failwith "Mobile: dead end left at node %d key %d" node key
    end
    else perform t pid copy ~key ~act

let handle t pid ~src:_ msg =
  match msg with
  (* dbflow: class lazy -- single-copy nodes: routing needs no copy coordination, only forwarding (§4.2) *)
  | Msg.Route { key; level; node; act } -> handle_route t pid ~key ~level ~node ~act
  (* dbflow: class lazy -- completion funnel at the origin, independent of any copy's role *)
  | Msg.Op_done { op; result } -> Cluster.op_complete t.cl ~op ~result
  (* dbflow: class lazy -- a moved node installs wholesale; forwarding addresses cover the race (§4.2) *)
  | Msg.Migrate_install { snap; from_pid; _ } ->
    handle_migrate_install t pid ~snap ~from_pid
  (* dbflow: class lazy -- root adoption: processors may learn the new root in any order (§4.3) *)
  | Msg.New_root { snap; members } ->
    let store = Cluster.store t.cl pid in
    Store.learn store snap.Msg.s_id members;
    store.Store.root <- snap.Msg.s_id
  | Msg.Batch _ | Msg.Relay_update _ | Msg.Split_start _ | Msg.Split_ack _
  | Msg.Split_done _ | Msg.Eager_update _ | Msg.Eager_split _ | Msg.Eager_ack _
  | Msg.Join_request _ | Msg.Join_copy _ | Msg.Relay_member _
  | Msg.Unjoin_request _ ->
    Fmt.failwith "Mobile: unexpected message %s" (Msg.kind msg)

(* ------------------------------------------------------------------ *)
(* Bootstrap and public API                                            *)

let bootstrap t =
  let cl = t.cl in
  let nprocs = procs t in
  let leaves =
    List.init nprocs (fun p ->
        let lo, hi = Partition.slice cl.Cluster.partition p in
        let low = if p = 0 then Bound.Neg_inf else Bound.Key lo in
        let high = if p = nprocs - 1 then Bound.Pos_inf else Bound.Key hi in
        let id = Cluster.fresh_node_id cl in
        (p, lo, Node.make ~id ~level:0 ~low ~high Entries.empty))
  in
  let rec link = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) ->
      a.Node.right <- Some b.Node.id;
      b.Node.left <- Some a.Node.id;
      link rest
    | [ _ ] | [] -> ()
  in
  link leaves;
  let root_id = Cluster.fresh_node_id cl in
  let root_entries =
    Entries.of_sorted_list
      (List.map
         (fun (p, lo, node) ->
           ((if p = 0 then Bound.min_sentinel else lo), Node.Child node.Node.id))
         leaves)
  in
  let root =
    Node.make ~id:root_id ~level:1 ~low:Bound.Neg_inf ~high:Bound.Pos_inf
      root_entries
  in
  List.iter (fun (_, _, n) -> n.Node.parent <- Some root_id) leaves;
  for pid = 0 to nprocs - 1 do
    let store = Cluster.store cl pid in
    store.Store.root <- root_id;
    Store.learn store root_id [ 0 ];
    List.iter
      (fun (p, _, node) -> Store.learn store node.Node.id [ p ])
      leaves
  done;
  ignore
    (Store.install (Cluster.store cl 0) ~node:root ~pc:0 ~members:[ 0 ]);
  Cluster.hist_new_copy cl ~node:root_id ~pid:0 ~base:[];
  List.iter
    (fun (p, _, node) ->
      ignore (Store.install (Cluster.store cl p) ~node ~pc:p ~members:[ p ]);
      Cluster.hist_new_copy cl ~node:node.Node.id ~pid:p ~base:[])
    leaves

let create cfg =
  (* Migration clears the whole forwarding table in one swoop and moves
     copies between processors mid-flight; neither is journaled, so the
     mobile protocol cannot recover from a crash.  Reject the config
     rather than silently lose state. *)
  if cfg.Config.durability.Config.wal then
    invalid_arg "Mobile: durability.wal is not supported (migration state is not journaled)";
  if cfg.Config.faults.Dbtree_sim.Net.crash_at <> [] then
    invalid_arg "Mobile: faults.crash_at is not supported (no durable storage to recover from)";
  let cl = Cluster.create cfg in
  let t =
    { cl; link_versions = Hashtbl.create 256; splits = 0; migrations = 0 }
  in
  for pid = 0 to cfg.Config.procs - 1 do
    Cluster.Network.set_handler cl.Cluster.net pid (fun ~src msg ->
        handle t pid ~src msg)
  done;
  bootstrap t;
  if cfg.Config.balance_period > 0 then begin
    (* The balancer re-arms only while other work is pending, so a drained
       simulation still quiesces. *)
    let rec tick () =
      if Sim.pending cl.Cluster.sim > 0 then begin
        balance_step t;
        Sim.schedule cl.Cluster.sim ~delay:cfg.Config.balance_period tick
      end
    in
    Sim.schedule cl.Cluster.sim ~delay:cfg.Config.balance_period tick
  end;
  t

let start_route t ~origin msg =
  let store = Cluster.store t.cl origin in
  forward t origin msg store.Store.root

let insert t ~origin key value =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Insert ~key
      ~value:(Some value) ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  let uid = Cluster.fresh_uid t.cl in
  start_route t ~origin
    (Msg.Route
       {
         key;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act =
           Msg.Update { uid; u = Msg.Upsert { op = r.Opstate.id; origin; value } };
       });
  r.Opstate.id

let search t ~origin key =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Search ~key ~value:None
      ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  start_route t ~origin
    (Msg.Route
       {
         key;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act = Msg.Search { op = r.Opstate.id; origin };
       });
  r.Opstate.id

let remove t ~origin key =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Delete ~key ~value:None
      ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  let uid = Cluster.fresh_uid t.cl in
  start_route t ~origin
    (Msg.Route
       {
         key;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act = Msg.Update { uid; u = Msg.Remove { op = r.Opstate.id; origin } };
       });
  r.Opstate.id


let scan t ~origin ~lo ~hi =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Scan ~key:lo ~value:None
      ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  start_route t ~origin
    (Msg.Route
       {
         key = lo;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act = Msg.Scan { op = r.Opstate.id; origin; hi; acc = [] };
       });
  r.Opstate.id

let migrate t ~node ~to_pid =
  if to_pid < 0 || to_pid >= procs t then invalid_arg "Mobile.migrate: bad pid";
  Sim.schedule t.cl.Cluster.sim ~delay:0 (fun () -> do_migrate t ~node ~to_pid)

let gc_forwarding t =
  Array.iter
    (fun store -> Hashtbl.reset store.Store.forwarding)
    t.cl.Cluster.stores

let run ?max_events t = Cluster.run ?max_events t.cl

let api t =
  {
    Driver.insert = (fun ~origin k v -> insert t ~origin k v);
    Driver.search = (fun ~origin k -> search t ~origin k);
    Driver.remove = (fun ~origin k -> remove t ~origin k);
  }
