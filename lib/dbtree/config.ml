type replication = All_procs | Path
type discipline = Sync | Semi | Naive | Eager

type durability = { wal : bool; snapshot_every : int }

let no_durability = { wal = false; snapshot_every = 256 }

type t = {
  procs : int;
  capacity : int;
  seed : int;
  latency : Dbtree_sim.Net.latency;
  faults : Dbtree_sim.Net.faults;
  transport : Dbtree_sim.Net.transport;
  key_space : int;
  replication : replication;
  discipline : discipline;
  record_history : bool;
  relay_batch : int;
  relay_flush_delay : int;
  single_copy_root : bool;
  forwarding : bool;
  version_relays : bool;
  balance_period : int;
  reclaim_empty_leaves : bool;
  ordered_links : bool;
  trace : bool;
  trace_capacity : int;
  durability : durability;
  telemetry : bool;
  telemetry_every : int;
}

let default =
  {
    procs = 4;
    capacity = 8;
    seed = 42;
    latency = Dbtree_sim.Net.default_latency;
    faults = Dbtree_sim.Net.no_faults;
    transport = Dbtree_sim.Net.Raw;
    key_space = 1 lsl 20;
    replication = Path;
    discipline = Semi;
    record_history = true;
    relay_batch = 1;
    relay_flush_delay = 0;
    single_copy_root = false;
    forwarding = false;
    version_relays = true;
    balance_period = 0;
    reclaim_empty_leaves = false;
    ordered_links = true;
    trace = false;
    trace_capacity = 1 lsl 16;
    durability = no_durability;
    telemetry = false;
    telemetry_every = 512;
  }

let discipline_name = function
  | Sync -> "sync"
  | Semi -> "semi"
  | Naive -> "naive"
  | Eager -> "eager"

(* Every message names the offending config field: [Cluster.create]
   surfaces these via [invalid_arg] and a caller debugging a rejected
   config should not have to guess which knob to turn. *)
let validate t =
  let prob_ok p = p >= 0.0 && p <= 1.0 in
  let crash = t.faults.Dbtree_sim.Net.crash_at <> [] in
  if t.procs < 1 then Error "procs must be >= 1"
  else if t.capacity < 2 then Error "capacity must be >= 2"
  else if t.key_space < t.procs then Error "key_space must be >= procs"
  else if t.relay_batch < 1 then Error "relay_batch must be >= 1"
  else if t.relay_batch > 1 && t.discipline <> Semi then
    Error "relay_batch > 1 (relay batching) requires the Semi discipline"
  else if t.trace_capacity < 1 then Error "trace_capacity must be >= 1"
  else if t.telemetry_every < 1 then Error "telemetry_every must be >= 1"
  else if
    not
      (prob_ok t.faults.Dbtree_sim.Net.drop_prob
      && prob_ok t.faults.Dbtree_sim.Net.duplicate_prob
      && prob_ok t.faults.Dbtree_sim.Net.delay_prob)
  then Error "fault probabilities must lie in [0, 1]"
  else if
    t.transport = Dbtree_sim.Net.Reliable
    && t.faults.Dbtree_sim.Net.drop_prob >= 1.0
  then
    Error
      "the reliable transport cannot terminate over a channel that drops \
       everything (drop_prob must be < 1)"
  else if t.durability.snapshot_every < 0 then
    Error "durability.snapshot_every must be >= 0"
  else if
    crash
    && List.exists
         (fun (p, tick) -> p < 0 || p >= t.procs || tick < 0)
         t.faults.Dbtree_sim.Net.crash_at
  then Error "faults.crash_at entries must satisfy 0 <= proc < procs, tick >= 0"
  else if crash && t.faults.Dbtree_sim.Net.restart_delay < 1 then
    Error "faults.restart_delay must be >= 1"
  else if crash && not t.durability.wal then
    Error "faults.crash_at requires durability.wal (volatile state cannot recover)"
  else if crash && t.transport <> Dbtree_sim.Net.Reliable then
    Error "faults.crash_at requires the Reliable transport"
  else if crash && t.relay_batch > 1 then
    Error "faults.crash_at requires relay_batch = 1"
  else if crash && not (t.discipline = Semi || t.discipline = Naive) then
    Error
      "faults.crash_at requires the Semi or Naive discipline (Sync/Eager \
       barrier state is not journaled)"
  else Ok t

let make ?(procs = default.procs) ?(capacity = default.capacity)
    ?(seed = default.seed) ?(latency = default.latency)
    ?(faults = default.faults) ?(transport = default.transport)
    ?(key_space = default.key_space) ?(replication = default.replication)
    ?(discipline = default.discipline)
    ?(record_history = default.record_history)
    ?(relay_batch = default.relay_batch)
    ?(relay_flush_delay = default.relay_flush_delay)
    ?(single_copy_root = default.single_copy_root)
    ?(forwarding = default.forwarding)
    ?(version_relays = default.version_relays)
    ?(balance_period = default.balance_period)
    ?(reclaim_empty_leaves = default.reclaim_empty_leaves)
    ?(ordered_links = default.ordered_links) ?(trace = default.trace)
    ?(trace_capacity = default.trace_capacity)
    ?(durability = default.durability) ?(telemetry = default.telemetry)
    ?(telemetry_every = default.telemetry_every) () =
  let t =
    {
      procs;
      capacity;
      seed;
      latency;
      faults;
      transport;
      key_space;
      replication;
      discipline;
      record_history;
      relay_batch;
      relay_flush_delay;
      single_copy_root;
      forwarding;
      version_relays;
      balance_period;
      reclaim_empty_leaves;
      ordered_links;
      trace;
      trace_capacity;
      durability;
      telemetry;
      telemetry_every;
    }
  in
  match validate t with Ok t -> t | Error e -> invalid_arg ("Config: " ^ e)
