(** Configuration of a dB-tree cluster run. *)

(** Where the copies of a node live (§1.1, Figure 2):

    - [All_procs]: every node (leaves included) is replicated on every
      processor.  This is the §4.1 fixed-copies *model*: it maximizes
      replica-maintenance traffic and is what the synchronous /
      semi-synchronous split comparison (E5) and the lost-insert study
      (E4) exercise.
    - [Path]: the dB-tree deployment policy — the key space is statically
      partitioned across processors; a node is replicated on exactly the
      processors owning leaves in its range.  The root (range = everything)
      lands on every processor, a leaf on one, interior nodes in between. *)
type replication = All_procs | Path

(** Replica-coherence discipline for the fixed-copies protocols (§4.1):

    - [Sync]: synchronous splits via a split_start/ack/split_end AAS
      (§4.1.1) — blocks initial inserts during a split, 3|copies| messages
      per split.
    - [Semi]: semi-synchronous splits (§4.1.2) — never blocks, |copies|
      messages per split, the primary copy rewrites history by forwarding
      out-of-range relayed updates to the new sibling.
    - [Naive]: [Semi] without the forwarding correction — the broken
      strawman of Figure 4, which loses concurrent inserts.  Kept as an
      ablation; its verification is expected to fail.
    - [Eager]: the "vigorous" available-copies baseline — every update is
      routed to the primary copy and applied on all copies under an
      ack barrier before the operation completes. *)
type discipline = Sync | Semi | Naive | Eager

type durability = {
  wal : bool;
      (** journal every crash-survivable state change (node writes,
          copy-set changes, location directory, parked actions, op
          completions, unretired sends / delivered counts) to a
          per-processor write-ahead log (see {!Wal}) *)
  snapshot_every : int;
      (** log records between snapshot compactions; 0 = never compact *)
}

val no_durability : durability
(** WAL off; [snapshot_every = 256]. *)

type t = {
  procs : int;  (** number of processors *)
  capacity : int;  (** max entries per node before it must split *)
  seed : int;
  latency : Dbtree_sim.Net.latency;
  faults : Dbtree_sim.Net.faults;
      (** network fault injection (E14): over the [Raw] transport the
          protocols assume a reliable exactly-once FIFO network, so
          injected faults are expected to be caught by the correctness
          audits, not survived; over [Reliable] the sublayer masks them *)
  transport : Dbtree_sim.Net.transport;
      (** wire discipline for every protocol's remote messages: [Raw]
          (paper's assumed network) or [Reliable] (the seqno/ack/retransmit
          sublayer that discharges the §4 assumption over a lossy channel) *)
  key_space : int;  (** user keys are drawn from [\[0, key_space)] *)
  replication : replication;
  discipline : discipline;
  record_history : bool;
      (** record per-copy update histories for the §3 checkers (on in
          tests; off in large benchmarks) *)
  relay_batch : int;
      (** >1 enables relay piggybacking: up to this many lazy relays are
          buffered per destination ([Semi] only) *)
  relay_flush_delay : int;
      (** max simulated time a buffered relay may wait before the batch is
          flushed *)
  single_copy_root : bool;
      (** E7 ablation: store the root (and grown roots) on one processor
          only, re-creating the bottleneck the dB-tree removes *)
  forwarding : bool;
      (** mobile nodes (§4.2): leave garbage-collectable forwarding
          addresses behind migrations (an optimization, never needed for
          correctness) *)
  version_relays : bool;
      (** variable copies (§4.3): the PC re-relays updates to members that
          joined after the update's version.  Turning this off reproduces
          the Figure 6 incomplete-history anomaly (E6 ablation). *)
  balance_period : int;
      (** mobile/variable: period of the leaf data-balancer; 0 disables *)
  reclaim_empty_leaves : bool;
      (** dE-tree extension (§5 future work): in the mobile protocol, a
          leaf emptied by deletes is absorbed into its left neighbor and
          its parent entry retired — the free-at-empty reclamation the
          paper defers.  Interior nodes are still never merged. *)
  ordered_links : bool;
      (** E12 ablation: when false, link-change actions are applied in
          arrival order instead of version order — the ordered-history
          requirement is deliberately violated *)
  trace : bool;
      (** record a typed causal event trace (see [Dbtree_obs]); off on
          the hot path costs one branch per would-be event *)
  trace_capacity : int;
      (** ring-buffer size of the trace recorder, in events; the ring
          retains the most recent [trace_capacity] events *)
  durability : durability;
      (** per-processor durable storage.  Required (with the [Reliable]
          transport, [relay_batch = 1], and a [Semi]/[Naive] discipline)
          when [faults.crash_at] schedules crashes: recovery replays the
          WAL and re-joins replication via the §4.3 join path. *)
  telemetry : bool;
      (** live telemetry plane (see [Telemetry]): periodic scrapes of
          counters and gauges into ring-buffered series, sliding-window
          latency sketches, and SLO health rules.  Scrapes ride the
          simulator's observation probe, so enabling this changes no
          event ordering; disabled it costs one branch per hook. *)
  telemetry_every : int;
      (** ticks between telemetry scrapes (must be >= 1) *)
}

val default : t
(** 4 processors, capacity 8, [Path] replication, [Semi] discipline,
    default latency, histories recorded. *)

val make :
  ?procs:int ->
  ?capacity:int ->
  ?seed:int ->
  ?latency:Dbtree_sim.Net.latency ->
  ?faults:Dbtree_sim.Net.faults ->
  ?transport:Dbtree_sim.Net.transport ->
  ?key_space:int ->
  ?replication:replication ->
  ?discipline:discipline ->
  ?record_history:bool ->
  ?relay_batch:int ->
  ?relay_flush_delay:int ->
  ?single_copy_root:bool ->
  ?forwarding:bool ->
  ?version_relays:bool ->
  ?balance_period:int ->
  ?reclaim_empty_leaves:bool ->
  ?ordered_links:bool ->
  ?trace:bool ->
  ?trace_capacity:int ->
  ?durability:durability ->
  ?telemetry:bool ->
  ?telemetry_every:int ->
  unit ->
  t
(** [default] with overrides, validated (positive sizes, batching only
    with the [Semi] discipline, crash schedules only with durable
    storage over the reliable transport). *)

val validate : t -> (t, string) result
(** Every [Error] message names the offending config field. *)

val discipline_name : discipline -> string
