open Dbtree_blink

type report = {
  nodes : int;
  leaves : int;
  keys_found : int;
  divergent_nodes : (int * string) list;
  missing_keys : int list;
  phantom_keys : int list;
  unreachable : (Msg.pid * int) list;
  history : Dbtree_history.Checker.report option;
  copies_per_level : (int * int * int) list;
}

let ok r =
  r.divergent_nodes = [] && r.missing_keys = [] && r.phantom_keys = []
  && r.unreachable = []
  && match r.history with
     | Some h -> Dbtree_history.Checker.ok h
     | None -> true

(* Gather all copies of every node across the stores. *)
let collect (cl : Cluster.t) =
  let tbl : (int, (int * Store.rcopy) list) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun store ->
      Store.iter store (fun copy ->
          let id = copy.Store.node.Node.id in
          let existing = Option.value (Hashtbl.find_opt tbl id) ~default:[] in
          Hashtbl.replace tbl id ((store.Store.pid, copy) :: existing)))
    cl.Cluster.stores;
  tbl

(* The copy we treat as the node's reference value: the PC's if present. *)
let canonical copies =
  match List.find_opt (fun (pid, c) -> pid = c.Store.pc) copies with
  | Some (_, c) -> c
  | None -> snd (List.hd copies)

let check_divergence tbl =
  Dbtree_sim.Stats.sorted_bindings tbl
  |> List.filter_map (fun (id, copies) ->
         let reference = canonical copies in
         let bad =
           List.filter_map
             (fun (pid, c) ->
               if
                 Node.content_equal String.equal c.Store.node
                   reference.Store.node
               then None
               else
                 Some
                   (Fmt.str "copy at p%d differs from PC copy (%a vs %a)" pid
                      (Node.pp Fmt.string) c.Store.node (Node.pp Fmt.string)
                      reference.Store.node))
             copies
         in
         match bad with [] -> None | d :: _ -> Some (id, d))

(* Walk the leaf chain left-to-right through canonical copies. *)
let leaf_bindings tbl root_id =
  let node_of id =
    match Hashtbl.find_opt tbl id with
    | Some copies -> (canonical copies).Store.node
    | None -> Fmt.failwith "Verify: dangling node id %d" id
  in
  let rec leftmost id =
    let n = node_of id in
    if Node.is_leaf n then n
    else
      match Entries.min_binding n.Node.entries with
      | Some (_, Node.Child c) -> leftmost c
      | Some (_, Node.Data _) | None ->
        Fmt.failwith "Verify: malformed interior node %d" id
  in
  let rec walk n acc count =
    let acc =
      Entries.fold
        (fun k p acc ->
          match p with
          | Node.Data v -> (k, v) :: acc
          | Node.Child _ -> acc)
        n.Node.entries acc
    in
    match n.Node.right with
    | Some r -> walk (node_of r) acc (count + 1)
    | None -> (List.rev acc, count + 1)
  in
  walk (leftmost root_id) [] 0

(* A search executed over the quiesced state, hopping between stores the
   way messages would. *)
let static_search (cl : Cluster.t) tbl ~origin key =
  let store = Cluster.store cl origin in
  let rec go id fuel =
    if fuel = 0 then None
    else
      let node =
        match Store.find store id with
        | Some c -> Some c.Store.node
        | None ->
          Option.map
            (fun copies -> (canonical copies).Store.node)
            (Hashtbl.find_opt tbl id)
      in
      match node with
      | None -> None
      | Some n -> (
        match Node.step n key with
        | Node.Here -> Node.find_leaf_value n key
        | Node.Descend c -> go c (fuel - 1)
        | Node.Chase_right r -> go r (fuel - 1)
        | Node.Chase_left (l) -> go l (fuel - 1)
        | Node.Dead_end -> None)
  in
  go store.Store.root 10_000

let copies_per_level tbl =
  let acc = Hashtbl.create 8 in
  List.iter
    (fun (_, copies) ->
      let level = (canonical copies).Store.node.Node.level in
      let nodes, total = Option.value (Hashtbl.find_opt acc level) ~default:(0, 0) in
      Hashtbl.replace acc level (nodes + 1, total + List.length copies))
    (Dbtree_sim.Stats.sorted_bindings tbl);
  List.map
    (fun (level, (n, c)) -> (level, n, c))
    (Dbtree_sim.Stats.sorted_bindings acc)

let check ?(search_sample = 64) (cl : Cluster.t) =
  let tbl = collect cl in
  let divergent_nodes = check_divergence tbl in
  let root_id = (Cluster.store cl 0).Store.root in
  let bindings, leaves = leaf_bindings tbl root_id in
  let expected = Opstate.inserted_keys cl.Cluster.ops in
  let found = Hashtbl.create (List.length bindings) in
  List.iter (fun (k, v) -> Hashtbl.replace found k v) bindings;
  let missing_keys =
    Dbtree_sim.Stats.sorted_bindings expected
    |> List.filter_map (fun (k, _) ->
           if Hashtbl.mem found k then None else Some k)
  in
  let phantom_keys =
    Dbtree_sim.Stats.sorted_bindings found
    |> List.filter_map (fun (k, _) ->
           if Hashtbl.mem expected k then None else Some k)
  in
  (* Reachability: probe a sample of the stored keys from every origin. *)
  let stored = Array.of_list (List.map fst bindings) in
  let unreachable = ref [] in
  let nprocs = Array.length cl.Cluster.stores in
  if Array.length stored > 0 then
    for origin = 0 to nprocs - 1 do
      let step = max 1 (Array.length stored / search_sample) in
      let i = ref 0 in
      while !i < Array.length stored do
        let key = stored.(!i) in
        (match static_search cl tbl ~origin key with
        | Some _ -> ()
        | None -> unreachable := (origin, key) :: !unreachable);
        i := !i + step
      done
    done;
  let history =
    if Cluster.recording cl then
      Some (Dbtree_history.Checker.check cl.Cluster.hist)
    else None
  in
  {
    nodes = Hashtbl.length tbl;
    leaves;
    keys_found = Hashtbl.length found;
    divergent_nodes;
    missing_keys;
    phantom_keys;
    unreachable = !unreachable;
    history;
    copies_per_level = copies_per_level tbl;
  }

let pp ppf r =
  Fmt.pf ppf "@[<v>nodes=%d leaves=%d keys=%d@," r.nodes r.leaves r.keys_found;
  Fmt.pf ppf "divergent=%d missing=%d phantom=%d unreachable=%d@,"
    (List.length r.divergent_nodes)
    (List.length r.missing_keys)
    (List.length r.phantom_keys)
    (List.length r.unreachable);
  (match List.nth_opt r.divergent_nodes 0 with
  | Some (id, why) -> Fmt.pf ppf "first divergence: node %d: %s@," id why
  | None -> ());
  (match r.history with
  | Some h -> Fmt.pf ppf "%a@," Dbtree_history.Checker.pp_report h
  | None -> ());
  Fmt.pf ppf "copies/level: %a@]"
    (Fmt.list ~sep:Fmt.sp (fun ppf (l, n, c) -> Fmt.pf ppf "L%d:%dn/%dc" l n c))
    r.copies_per_level
