(** Per-processor durability: a deterministic, simulated single-writer
    store (write-ahead log + periodic snapshots).

    Every state change a processor must survive a crash with is appended
    as one typed {!record}; every [snapshot_every] records the log is
    compacted into a canonical snapshot (one record per live fact, in
    sorted key order) and truncated.  Recovery replays snapshot + tail
    log in order through closure-free record dispatch — records are
    plain data over ints and {!Msg} payloads, tagged with dense interned
    ids like [Msg.kind_id].

    The log doubles as the durable half of the reliable transport
    (see {!Net.Make.persist}): sends are journaled until the cumulative
    ack retires them, and per-source delivered counts are journaled so a
    restarted processor recognises (and drops) redeliveries of messages
    it already processed. *)

(** One durable fact.  [Write] carries the full image of a local node
    copy plus its replication-control state (pc, member set, §4.3 join
    versions, split-in-progress flag); the un-records ([Remove],
    [Unlearn], ...) retract earlier facts so compaction can drop both. *)
type record =
  | Write of {
      snap : Msg.snapshot;
      pc : int;
      members : int list;
      join_versions : (int * int) list;
      splitting : bool;
    }  (** full image of a local node copy after a mutation *)
  | Remove of { node : int }
  | Learn of { node : int; members : int list }  (** location directory *)
  | Unlearn of { node : int }
  | Root of { node : int }
  | Depart of { node : int }
  | Undepart of { node : int }
  | Forward of { node : int; dst : int }
  | Unforward of { node : int }
  | Park of { node : int; msg : Msg.t }
  | Unpark of { node : int }
  | Op_done of { op : int }  (** an acknowledged client operation *)
  | Send of { dst : int; abs : int; msg : Msg.t }
      (** durable outbound: unretired reliable (or loopback) send *)
  | Retire of { dst : int; abs : int }  (** acked/delivered through [abs] *)
  | Deliver of { src : int; abs : int }  (** inbound delivered count *)

type t

val create : pid:int -> snapshot_every:int -> t
(** [snapshot_every] is the log length that triggers compaction;
    [0] disables compaction (the log only grows). *)

val pid : t -> int

val append : t -> record -> unit
(** Journal one record (and compact if the threshold is reached).
    Ignored while {!replaying} — a recovery must never re-journal the
    facts it is reading. *)

val compact : t -> unit
(** Force a snapshot now: materialize the live facts, store them in
    canonical sorted order, truncate the log. *)

val replay : t -> (record -> unit) -> int
(** Feed the snapshot then the tail log, oldest first, to the callback;
    returns the number of records replayed.  Bracket with
    {!set_replaying} so state rebuilt through normal mutators does not
    journal itself. *)

val set_replaying : t -> bool -> unit
val replaying : t -> bool

val net_state :
  t -> (int * (int * Msg.t) list) list * (int * int) list * (int * int) list
(** [(outbound, sent, delivered)] for {!Net.Make.restore_proc}:
    unretired sends per destination (oldest first, with their abs
    indices), per-destination send high-waters, per-source delivered
    counts.  All lists sorted by processor id. *)

(** {2 Accounting} (monotone over the store's whole life) *)

val log_length : t -> int
(** Records in the tail log since the last snapshot. *)

val records_total : t -> int
val bytes_total : t -> int
val snapshots : t -> int

val snapshot_bytes : t -> int
(** Size of the most recent snapshot. *)

(** {2 Record tags} — dense interned ids, [Msg.kind_id]-style *)

val tag : record -> int
val num_tags : int
val tag_name : int -> string
val record_size : record -> int
(** Simulated bytes for one record: small header + payload priced by the
    {!Msg} cost model. *)
