(** Per-processor node-copy store.

    Each processor of the cluster owns one store: the node copies it
    maintains (with their replication metadata), a location directory for
    nodes it knows about but does not store, and the small amount of
    per-copy protocol state the split disciplines need (AAS flags, blocked
    actions, the eager baseline's serialization queue).

    Node ids are small dense ints ([Cluster.fresh_node_id]), so the three
    per-node maps are arenas — flat arrays indexed by node id, grown by
    doubling — rather than hash tables.  A hot-path lookup is a bounds
    check and a load.

    The queue-manager half of the paper's architecture is the simulator's
    network; the store is what the node manager reads and writes. *)

open Dbtree_blink

type pid = int
type node_id = int

(** A job serialized through the primary copy by the eager baseline.
    [reply] holds the deferred client answer, sent only once every copy
    has acknowledged the update. *)
type eager_job =
  | Eager_apply of {
      uid : int;
      key : int;
      u : Msg.update;
      mutable reply : (int * Msg.op_result) option;
    }
  | Eager_split

(** One locally stored copy of a logical node. *)
type rcopy = {
  node : Msg.value Node.t;  (** the value *)
  mutable pc : pid;  (** primary copy's processor *)
  mutable members : pid list;  (** known replica set (includes self) *)
  mutable join_versions : (pid * int) list;
      (** PC only (variable copies): version at which each member joined *)
  mutable splitting : bool;  (** a split AAS is active here *)
  mutable acks_pending : int;  (** PC only: outstanding split_start acks *)
  mutable blocked : Msg.t list;
      (** initial updates blocked by the AAS, newest first *)
  mutable eager_busy : bool;
  eager_queue : eager_job Queue.t;
      (** [Queue.t] is itself mutable; the field need not be *)
  mutable eager_acks : int;
  mutable eager_current : eager_job option;
}

type t = {
  pid : pid;
  mutable copies : rcopy option array;
      (** arena: node id -> local copy.  Use the accessors; the raw array
          over-approximates (trailing [None] slack from doubling). *)
  mutable where : pid list option array;
      (** arena: location directory, node id -> known member set *)
  mutable pending : Msg.t list array;
      (** arena: messages that arrived before their node's copy was
          installed, newest first ([take_pending] reverses) *)
  mutable live_copies : int;  (** number of [Some] slots in [copies] *)
  mutable parked_msgs : int;
      (** total messages across [pending] — maintained so the telemetry
          gauge ({!parked_count}) is O(1) *)
  forwarding : (node_id, pid) Hashtbl.t;
      (** §4.2 forwarding addresses left by migrated nodes *)
  departed : (node_id, unit) Hashtbl.t;
      (** variable copies: nodes this processor unjoined — relayed actions
          for them are discarded rather than parked *)
  mutable root : node_id;  (** this processor's root pointer *)
  mutable wal : Wal.t option;
      (** durable journal (set by the cluster when
          [Config.durability.wal]); mutate through the setters below so
          every crash-survivable change is journaled *)
}

val create : pid:pid -> root:node_id -> t

val set_wal : t -> Wal.t -> unit

val find : t -> node_id -> rcopy option
val get : t -> node_id -> rcopy
(** Raises if absent — use where the protocol guarantees presence. *)

val mem : t -> node_id -> bool

val install :
  t -> node:Msg.value Node.t -> pc:pid -> members:pid list -> rcopy
(** Add a copy (replacing any previous copy of the same node) and learn
    its membership. *)

val remove : t -> node_id -> unit

val learn : t -> node_id -> pid list -> unit
(** Update the location directory. *)

val learn_if_absent : t -> node_id -> pid list -> unit
(** Record a location hint only when nothing is known yet.  Used for hint
    sources that can be arbitrarily stale (a relayed Add_child arriving
    after the child migrated must not overwrite the migration's fresher
    hint — in particular not the departing processor's own forwarding
    knowledge). *)

val members_of : t -> node_id -> pid list
(** Directory lookup; raises if the node is unknown (a protocol-invariant
    violation in the fixed-copies family). *)

val members_opt : t -> node_id -> pid list option

val add_pending : t -> node_id -> Msg.t -> unit
val take_pending : t -> node_id -> Msg.t list
(** Drain buffered messages for a node, in arrival order. *)

val iter_pending : t -> (node_id -> Msg.t list -> unit) -> unit
(** Visit every node with parked messages, ascending node id, messages in
    arrival order.  Does not drain. *)

val parked_count : t -> int
(** Messages currently parked across all nodes — an O(1) maintained
    count, read as a telemetry gauge at scrape points. *)

val copy_count : t -> int

val iter : t -> (rcopy -> unit) -> unit
(** Visit every local copy in ascending node-id order.  The walk order is
    load-bearing — it escapes into schedule decisions (balance victim
    choice in Variable/Mobile) and reports — and with the arena it is
    genuinely deterministic: the global node-creation order, independent
    of any hash-bucket layout. *)

(** {2 Durability} (see {!Wal})

    With a WAL installed, [install]/[remove]/[learn]/[add_pending]/
    [take_pending] journal themselves; in-place copy mutations must be
    followed by {!wrote}; and the scalar/side-table setters below replace
    direct field pokes so those changes are journaled too. *)

val wrote : t -> node_id -> unit
(** Journal the full current image of the copy of [node_id] (no-op when
    absent or no WAL).  Call after any in-place mutation of a copy that
    must survive a crash: entry writes, link changes, pc / member /
    join-version / splitting updates. *)

val set_root : t -> node_id -> unit
val depart : t -> node_id -> unit
val undepart : t -> node_id -> unit
val set_forwarding : t -> node_id -> pid -> unit
val clear_forwarding : t -> node_id -> unit

val clear : t -> unit
(** Crash: drop every volatile structure (copies, directory, parked
    messages, forwarding, departed, root).  The WAL handle survives — it
    is the disk. *)

val apply_record : t -> Wal.record -> unit
(** Recovery: apply one replayed journal record.  Bracket the replay
    with [Wal.set_replaying] so the mutations do not re-journal
    themselves.  Net-layer records and [Op_done] are ignored here. *)

val digest : t -> string
(** Hex digest of the crash-survivable state, deterministic across runs
    (all maps emitted in sorted key order).  The recovery tests pin
    [digest live = digest (replay of live's WAL)] and same-seed
    reproducibility.  AAS / eager scratch state is excluded — it is
    volatile by design. *)
