open Dbtree_blink
open Dbtree_sim
module Action = Dbtree_history.Action
module Event = Dbtree_obs.Event

type t = {
  cl : Cluster.t;
  (* Relay piggybacking (E9): per (src, dst) buffers of lazy relays.
     [relay_cnt] caches each buffer's length so the batch-full test is a
     load, not a list walk per relay. *)
  relay_buf : Msg.t list array;
  relay_cnt : int array;
  buf_scheduled : bool array;
  (* AAS start times, for blocked-time accounting, keyed by the packed
     pair [node * procs + pid] (no tuple allocation per probe). *)
  aas_since : (int, int) Hashtbl.t;
  mutable splits : int;
}

let cluster t = t.cl
let config t = t.cl.Cluster.config
let splits t = t.splits
let disc t = (config t).Config.discipline
let capacity t = (config t).Config.capacity
let procs t = (config t).Config.procs
let ctr t = t.cl.Cluster.ctr
let all_procs t = List.init (procs t) (fun i -> i)

let root_members t =
  if (config t).Config.single_copy_root then [ 0 ] else all_procs t

(* ------------------------------------------------------------------ *)
(* Sending                                                             *)

let send t ~src ~dst msg = Cluster.send t.cl ~src ~dst msg
let send_local t pid msg = send t ~src:pid ~dst:pid msg
let buf_index t src dst = (src * procs t) + dst

let flush_relays t src dst =
  let i = buf_index t src dst in
  match t.relay_buf.(i) with
  | [] -> t.buf_scheduled.(i) <- false
  | msgs ->
    t.relay_buf.(i) <- [];
    t.relay_cnt.(i) <- 0;
    t.buf_scheduled.(i) <- false;
    send t ~src ~dst (Msg.batch (List.rev msgs))

(* Lazy relays may be piggybacked / batched (§1.1); everything else is
   sent directly. *)
let send_relay t ~src ~dst msg =
  let cfg = config t in
  if cfg.Config.relay_batch <= 1 || src = dst then send t ~src ~dst msg
  else begin
    let i = buf_index t src dst in
    t.relay_buf.(i) <- msg :: t.relay_buf.(i);
    t.relay_cnt.(i) <- t.relay_cnt.(i) + 1;
    if t.relay_cnt.(i) >= cfg.Config.relay_batch then flush_relays t src dst
    else if not t.buf_scheduled.(i) then begin
      t.buf_scheduled.(i) <- true;
      Sim.schedule t.cl.Cluster.sim ~delay:cfg.Config.relay_flush_delay
        (fun () -> flush_relays t src dst)
    end
  end

let reply_op t ~src op result =
  if op >= 0 then
    match Opstate.find t.cl.Cluster.ops op with
    | Some r -> send t ~src ~dst:r.Opstate.origin (Msg.Op_done { op; result })
    | None -> Fmt.failwith "Fixed: reply for unknown op %d" op

(* ------------------------------------------------------------------ *)
(* Node-value manipulation                                             *)

(* Apply an update action to a copy's value; returns the client reply the
   initial execution owes, if any. *)
let apply_update t pid (copy : Store.rcopy) key (u : Msg.update) =
  let n = copy.Store.node in
  let store = Cluster.store t.cl pid in
  let reply =
    match u with
    | Msg.Upsert { op; value; _ } ->
      Node.add_entry n key (Node.Data value);
      Some (op, Msg.Inserted)
    | Msg.Remove { op; _ } ->
      let present = Entries.mem n.Node.entries key in
      Node.remove_entry n key;
      Some (op, Msg.Removed present)
    | Msg.Add_child { child; child_members } ->
      Node.add_entry n key (Node.Child child);
      Store.learn store child child_members;
      None
    | Msg.Drop_child _ ->
      Fmt.failwith "Fixed: leaf reclamation is a mobile-protocol extension"
  in
  Store.wrote store n.Node.id;
  reply

let action_kind key (u : Msg.update) =
  match u with
  | Msg.Upsert _ | Msg.Add_child _ -> Action.Insert { key }
  | Msg.Remove _ | Msg.Drop_child _ -> Action.Delete { key }

(* Mark an update as already answered, for re-issue after history
   rewriting: the client was answered when the initial action ran. *)
let silence (u : Msg.update) =
  match u with
  | Msg.Upsert { value; _ } -> Msg.Upsert { op = -1; origin = 0; value }
  | Msg.Remove _ -> Msg.Remove { op = -1; origin = 0 }
  | Msg.Add_child _ | Msg.Drop_child _ -> u

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

let choose_member t members =
  match members with
  | [ m ] -> m
  | ms ->
    (* One [Rng.int] draw over the list length — the same draw [Rng.pick]
       makes, without materialising an intermediate array per hop. *)
    List.nth ms (Rng.int (Sim.rng t.cl.Cluster.sim) (List.length ms))

(* Forward a routed action towards node [next]: locally when we hold a
   copy, otherwise to some member (any copy will do — that is the lazy
   win; the eager redirect to the PC happens at the target node). *)
let forward ?authority t pid msg next =
  let store = Cluster.store t.cl pid in
  Stats.tick (ctr t).Cluster.route_hops;
  if Store.mem store next then send_local t pid msg
  else
    match Store.members_opt store next with
    | Some members -> send t ~src:pid ~dst:(choose_member t members) msg
    | None when (config t).Config.transport <> Dbtree_sim.Net.Reliable ->
      (* Over the raw transport the relay carrying this hint may be lost
         outright, not merely late; recovering would absorb a violated
         delivery assumption.  Keep the strict lookup so E14's raw rows
         surface the broken invariant loudly. *)
      send t ~src:pid ~dst:(choose_member t (Store.members_of store next)) msg
    | None -> (
      Stats.tick (ctr t).Cluster.route_lost_hint;
      (* Unknown location.  Member sets are static here, but the
         hint-carrying relay can lag the sibling snapshot that exposed
         [next] when the two travel on different channels (a crash
         stretches the lagging channel's retransmit).  Hand the action to
         the PC of the node that referenced [next] — it learned every
         child and sibling it ever pointed to; without an authority,
         restart at the root. *)
      match authority with
      | Some a when a <> pid -> send t ~src:pid ~dst:a msg
      | Some _ | None -> (
        match msg with
        | Msg.Route r ->
          if r.node = store.Store.root then
            Fmt.failwith "Fixed: processor %d lost at its own root" pid
          else send_local t pid (Msg.Route { r with node = store.Store.root })
        | Msg.Op_done _ | Msg.Relay_update _ | Msg.Split_start _
        | Msg.Split_ack _ | Msg.Split_done _ | Msg.New_root _
        | Msg.Eager_update _ | Msg.Eager_split _ | Msg.Eager_ack _
        | Msg.Batch _ | Msg.Migrate_install _ | Msg.Join_request _
        | Msg.Join_copy _ | Msg.Relay_member _ | Msg.Unjoin_request _ ->
          (* Only routed actions restart at the root; control traffic is
             addressed to a concrete processor and must never be lost. *)
          Fmt.failwith "Fixed: cannot reroute %s" (Msg.kind msg)))

(* ------------------------------------------------------------------ *)
(* Splits and copy installation                                        *)

(* A new sibling's copy set: the replication policy's choice for its
   range, clamped to the split node's own member set — copies can only be
   created where the split is relayed.  (The clamp matters under the
   single-copy-root ablation, whose root pieces must stay unreplicated.) *)
let sibling_members_for t (copy : Store.rcopy) (sib : Msg.value Node.t) =
  let policy =
    Cluster.members_for_range t.cl ~low:sib.Node.low ~high:sib.Node.high
  in
  match List.filter (fun m -> List.mem m copy.Store.members) policy with
  | [] -> [ copy.Store.pc ]
  | members -> members

let rec maybe_split t pid (copy : Store.rcopy) =
  if
    pid = copy.Store.pc
    && (not copy.Store.splitting)
    && Node.too_full ~capacity:(capacity t) copy.Store.node
  then begin
    match disc t with
    | Config.Semi | Config.Naive -> do_split t pid copy
    | Config.Sync -> begin
      copy.Store.splitting <- true;
      Hashtbl.replace t.aas_since
        ((copy.Store.node.Node.id * procs t) + pid)
        (Cluster.now t.cl);
      Cluster.aas_begin t.cl;
      match List.filter (fun m -> m <> pid) copy.Store.members with
      | [] ->
        do_split t pid copy;
        end_aas t pid copy
      | others ->
        copy.Store.acks_pending <- List.length others;
        List.iter
          (fun m ->
            send t ~src:pid ~dst:m
              (Msg.Split_start { node = copy.Store.node.Node.id }))
          others
    end
    | Config.Eager ->
      Queue.add Store.Eager_split copy.Store.eager_queue;
      pump_eager t pid copy
  end

(* Clear the AAS on a copy and re-run the initial updates it blocked. *)
and end_aas t pid (copy : Store.rcopy) =
  copy.Store.splitting <- false;
  let aas_key = (copy.Store.node.Node.id * procs t) + pid in
  (match Hashtbl.find_opt t.aas_since aas_key with
  | Some since ->
    Hashtbl.remove t.aas_since aas_key;
    Cluster.aas_end t.cl;
    let dur = Cluster.now t.cl - since in
    Stats.hist_observe (ctr t).Cluster.aas_time dur;
    Cluster.event t.cl ~pid Event.Aas_release ~a:copy.Store.node.Node.id
      ~b:dur
  | None -> ());
  let blocked = List.rev copy.Store.blocked in
  copy.Store.blocked <- [];
  List.iter (send_local t pid) blocked

and do_split t pid (copy : Store.rcopy) =
  let n = copy.Store.node in
  let store = Cluster.store t.cl pid in
  let uid = Cluster.fresh_uid t.cl in
  let sib_id = Cluster.fresh_node_id t.cl in
  let base = Cluster.hist_snapshot t.cl ~node:n.Node.id ~pid in
  let sib = Node.half_split n ~sibling_id:sib_id in
  let sep = Node.separator_of_sibling sib in
  Store.wrote store n.Node.id;
  t.splits <- t.splits + 1;
  Stats.tick (ctr t).Cluster.split_count;
  Cluster.event t.cl ~pid Event.Split_start ~a:n.Node.id ~b:sib_id;
  let sibling_members = sibling_members_for t copy sib in
  Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Initial ~uid
    (Action.Half_split { sep; sibling = sib_id });
  (* Register every sibling copy up front: they share one original value,
     a backwards extension of n's history at the split. *)
  List.iter
    (fun m -> Cluster.hist_new_copy t.cl ~node:sib_id ~pid:m ~base)
    sibling_members;
  let snapshot = Msg.snapshot_of_node ~base sib in
  let sib_pc = Cluster.pc_of_members_exn sibling_members in
  if List.mem pid sibling_members then
    install_copy t pid ~snap:snapshot ~pc:sib_pc ~members:sibling_members
  else Store.learn store sib_id sibling_members;
  let is_sync = disc t = Config.Sync in
  List.iter
    (fun m ->
      if m <> pid then
        send t ~src:pid ~dst:m
          (Msg.Split_done
             {
               uid;
               node = n.Node.id;
               sep;
               sibling = snapshot;
               sibling_members;
               sync = is_sync;
             }))
    copy.Store.members;
  (* Complete the split one level up (the B-link "second step"). *)
  (if store.Store.root = n.Node.id then
     grow_root t pid ~old_root:n ~sep ~sib_id
   else begin
     let uid' = Cluster.fresh_uid t.cl in
     let act =
       Msg.Update
         {
           uid = uid';
           u = Msg.Add_child { child = sib_id; child_members = sibling_members };
         }
     in
     let msg =
       Msg.Route
         { key = sep; level = n.Node.level + 1; node = store.Store.root; act }
     in
     forward t pid msg store.Store.root
   end);
  Cluster.event t.cl ~pid Event.Split_end ~a:n.Node.id ~b:sib_id

and grow_root t pid ~old_root ~sep ~sib_id =
  let store = Cluster.store t.cl pid in
  let members = root_members t in
  let id = Cluster.fresh_node_id t.cl in
  let entries =
    Entries.of_sorted_list
      [
        (Bound.min_sentinel, Node.Child old_root.Node.id);
        (sep, Node.Child sib_id);
      ]
  in
  let root =
    Node.make ~id ~level:(old_root.Node.level + 1) ~low:Bound.Neg_inf
      ~high:Bound.Pos_inf entries
  in
  Stats.tick (ctr t).Cluster.root_grow;
  Cluster.event t.cl ~pid Event.Root_grow ~a:id ~b:root.Node.level;
  List.iter
    (fun m -> Cluster.hist_new_copy t.cl ~node:id ~pid:m ~base:[])
    members;
  let snap = Msg.snapshot_of_node root in
  let pc = Cluster.pc_of_members_exn members in
  if List.mem pid members then begin
    ignore (Store.install store ~node:root ~pc ~members);
    drain_pending t pid id
  end
  else Store.learn store id members;
  Store.set_root store id;
  List.iter
    (fun m ->
      if m <> pid then send t ~src:pid ~dst:m (Msg.New_root { snap; members }))
    (all_procs t)

and install_copy t pid ~snap ~pc ~members =
  let store = Cluster.store t.cl pid in
  let node = Msg.node_of_snapshot snap in
  ignore (Store.install store ~node ~pc ~members);
  drain_pending t pid node.Node.id

and drain_pending t pid node_id =
  let store = Cluster.store t.cl pid in
  match Store.take_pending store node_id with
  | [] -> ()
  | pending ->
    Cluster.event t.cl ~pid Event.Unpark ~a:node_id ~b:(List.length pending);
    List.iter (send_local t pid) pending

(* ------------------------------------------------------------------ *)
(* The eager (vigorous) baseline: updates are serialized through the   *)
(* primary copy and acknowledged by every copy before completing.      *)

and pump_eager t pid (copy : Store.rcopy) =
  if not copy.Store.eager_busy then
    match Queue.take_opt copy.Store.eager_queue with
    | None -> ()
    | Some (Store.Eager_apply { uid; key; u; _ })
      when not (Node.in_range copy.Store.node key) ->
      (* A split executed from this queue moved the range past [key] while
         the update waited: re-route it to the right sibling. *)
      Stats.tick (ctr t).Cluster.eager_requeued;
      (match copy.Store.node.Node.right with
      | Some r ->
        forward t pid
          (Msg.Route
             {
               key;
               level = copy.Store.node.Node.level;
               node = r;
               act = Msg.Update { uid; u };
             })
          r
      | None ->
        Fmt.failwith "Fixed: eager update out of range at rightmost node");
      pump_eager t pid copy
    | Some (Store.Eager_apply ({ uid; key; u; _ } as job)) ->
      let node_id = copy.Store.node.Node.id in
      job.reply <- apply_update t pid copy key u;
      Cluster.hist_record t.cl ~node:node_id ~pid ~mode:Action.Initial ~uid
        (action_kind key u);
      let others = List.filter (fun m -> m <> pid) copy.Store.members in
      if others = [] then finish_eager t pid copy (Store.Eager_apply job)
      else begin
        copy.Store.eager_busy <- true;
        copy.Store.eager_current <- Some (Store.Eager_apply job);
        copy.Store.eager_acks <- List.length others;
        List.iter
          (fun m ->
            send t ~src:pid ~dst:m
              (Msg.Eager_update { uid; node = node_id; key; u }))
          others
      end
    | Some Store.Eager_split ->
      if not (Node.too_full ~capacity:(capacity t) copy.Store.node) then
        pump_eager t pid copy
      else begin
        let n = copy.Store.node in
        let store = Cluster.store t.cl pid in
        let uid = Cluster.fresh_uid t.cl in
        let sib_id = Cluster.fresh_node_id t.cl in
        let base = Cluster.hist_snapshot t.cl ~node:n.Node.id ~pid in
        let sib = Node.half_split n ~sibling_id:sib_id in
        let sep = Node.separator_of_sibling sib in
        t.splits <- t.splits + 1;
        Stats.tick (ctr t).Cluster.split_count;
        Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Initial
          ~uid
          (Action.Half_split { sep; sibling = sib_id });
        let sibling_members = sibling_members_for t copy sib in
        List.iter
          (fun m -> Cluster.hist_new_copy t.cl ~node:sib_id ~pid:m ~base)
          sibling_members;
        let snapshot = Msg.snapshot_of_node ~base sib in
        let sib_pc = Cluster.pc_of_members_exn sibling_members in
        if List.mem pid sibling_members then
          install_copy t pid ~snap:snapshot ~pc:sib_pc ~members:sibling_members
        else Store.learn store sib_id sibling_members;
        let others = List.filter (fun m -> m <> pid) copy.Store.members in
        if others = [] then finish_eager t pid copy Store.Eager_split
        else begin
          copy.Store.eager_busy <- true;
          copy.Store.eager_current <- Some Store.Eager_split;
          copy.Store.eager_acks <- List.length others;
          List.iter
            (fun m ->
              send t ~src:pid ~dst:m
                (Msg.Eager_split
                   {
                     uid;
                     node = n.Node.id;
                     sep;
                     sibling = snapshot;
                     sibling_members;
                   }))
            others
        end;
        (* Complete the split upward, as in the lazy family. *)
        if store.Store.root = n.Node.id then
          grow_root t pid ~old_root:n ~sep ~sib_id
        else begin
          let uid' = Cluster.fresh_uid t.cl in
          let act =
            Msg.Update
              {
                uid = uid';
                u =
                  Msg.Add_child
                    { child = sib_id; child_members = sibling_members };
              }
          in
          forward t pid
            (Msg.Route
               {
                 key = sep;
                 level = n.Node.level + 1;
                 node = store.Store.root;
                 act;
               })
            store.Store.root
        end
      end

and finish_eager t pid (copy : Store.rcopy) job =
  (match job with
  | Store.Eager_apply { reply = Some (op, result); _ } ->
    reply_op t ~src:pid op result
  | Store.Eager_apply { reply = None; _ } | Store.Eager_split -> ());
  copy.Store.eager_busy <- false;
  copy.Store.eager_current <- None;
  if Node.too_full ~capacity:(capacity t) copy.Store.node then
    Queue.add Store.Eager_split copy.Store.eager_queue;
  pump_eager t pid copy

(* ------------------------------------------------------------------ *)
(* Performing routed actions at their target node                      *)

(* An initial update action arriving at a copy of its target node. *)
and perform_update t pid (copy : Store.rcopy) ~key ~uid ~(u : Msg.update) =
  let node_id = copy.Store.node.Node.id in
  match disc t with
  | Config.Eager ->
    if pid <> copy.Store.pc then
      (* vigorous rule: initial updates execute at the primary copy *)
      send t ~src:pid ~dst:copy.Store.pc
        (Msg.Route
           {
             key;
             level = copy.Store.node.Node.level;
             node = node_id;
             act = Msg.Update { uid; u };
           })
    else begin
      Queue.add (Store.Eager_apply { uid; key; u; reply = None })
        copy.Store.eager_queue;
      pump_eager t pid copy
    end
  | Config.Sync when copy.Store.splitting ->
    (* the AAS blocks initial updates (never searches or relays) *)
    Stats.tick (ctr t).Cluster.split_blocked_updates;
    Cluster.event t.cl ~pid Event.Aas_block ~a:node_id
      ~b:
        (match u with
        | Msg.Upsert _ -> Event.op_insert
        | Msg.Remove _ -> Event.op_delete
        | Msg.Add_child _ | Msg.Drop_child _ -> -1);
    copy.Store.blocked <-
      Msg.Route
        {
          key;
          level = copy.Store.node.Node.level;
          node = node_id;
          act = Msg.Update { uid; u };
        }
      :: copy.Store.blocked
  | Config.Sync | Config.Semi | Config.Naive ->
    let reply = apply_update t pid copy key u in
    Cluster.hist_record t.cl ~node:node_id ~pid ~mode:Action.Initial ~uid
      (action_kind key u);
    (match reply with
    | Some (op, result) -> reply_op t ~src:pid op result
    | None -> ());
    let relay =
      Msg.Relay_update
        {
          uid;
          node = node_id;
          key;
          u = silence u;
          version = copy.Store.node.Node.version;
          sender = pid;
        }
    in
    List.iter
      (fun m -> if m <> pid then send_relay t ~src:pid ~dst:m relay)
      copy.Store.members;
    maybe_split t pid copy

and perform t pid (copy : Store.rcopy) ~key ~(act : Msg.routed) =
  match act with
  | Msg.Search { op; origin } ->
    let result =
      match Node.find_leaf_value copy.Store.node key with
      | Some v -> Msg.Found v
      | None -> Msg.Absent
    in
    send t ~src:pid ~dst:origin (Msg.Op_done { op; result })
  | Msg.Scan { op; origin; hi; acc } -> begin
    (* collect this leaf's bindings in [route key, hi], then continue
       along the leaf chain while it still overlaps the range *)
    let n = copy.Store.node in
    let acc =
      Entries.fold
        (fun k p acc ->
          match p with
          | Node.Data v when k >= key && k <= hi -> (k, v) :: acc
          | Node.Data _ | Node.Child _ -> acc)
        n.Node.entries acc
    in
    match (n.Node.right, n.Node.high) with
    | Some r, Bound.Key h when h <= hi ->
      forward t pid
        (Msg.Route
           { key = h; level = 0; node = r; act = Msg.Scan { op; origin; hi; acc } })
        r
    | (Some _ | None), _ ->
      send t ~src:pid ~dst:origin
        (Msg.Op_done { op; result = Msg.Bindings (List.rev acc) })
  end
  | Msg.Update { uid; u } -> perform_update t pid copy ~key ~uid ~u
  | Msg.Relink _ | Msg.Absorb _ ->
    Fmt.failwith "Fixed: link-change/absorb actions are a mobile feature"

(* ------------------------------------------------------------------ *)
(* Message handlers                                                    *)

and handle_route t pid ~key ~level ~node ~act =
  let store = Cluster.store t.cl pid in
  match Store.find store node with
  | None -> (
    let msg = Msg.Route { key; level; node; act } in
    match Store.members_opt store node with
    | Some members
      when (config t).Config.transport = Dbtree_sim.Net.Reliable
           && List.exists (fun m -> m <> pid) members ->
      (* Not a copy-holder, but the location is known: an authority
         fallback or stale hint landed the route here.  Pass it on to a
         member rather than parking for an install that never comes. *)
      Stats.tick (ctr t).Cluster.recover_hinted;
      send t ~src:pid
        ~dst:(choose_member t (List.filter (fun m -> m <> pid) members))
        msg
    | Some _ | None ->
      (* The copy is not installed yet (e.g. a sibling whose Split_done is
         still in flight): park the action until it is. *)
      Stats.tick (ctr t).Cluster.route_parked;
      Cluster.event t.cl ~pid Event.Park ~a:node ~b:(Msg.kind_id msg);
      Store.add_pending store node msg)
  | Some copy ->
    Cluster.touch t.cl ~node;
    let n = copy.Store.node in
    if n.Node.level > level then begin
      let authority = copy.Store.pc in
      match Node.step n key with
      | Node.Chase_right r ->
        Stats.tick (ctr t).Cluster.route_chase;
        forward ~authority t pid (Msg.Route { key; level; node = r; act }) r
      | Node.Descend c ->
        forward ~authority t pid (Msg.Route { key; level; node = c; act }) c
      | Node.Here | Node.Chase_left _ | Node.Dead_end ->
        Fmt.failwith "Fixed: bad navigation at node %d for key %d" node key
    end
    else if n.Node.level < level then begin
      (* The route's start was a stale root pointer: a split finished at
         this node's level while the New_root broadcast that raises our
         root above [level] is still in flight.  Re-enter at whatever root
         we currently know — each bounce costs at least a tick, so the
         pending New_root lands after finitely many retries (the variable
         kernel recovers the same way). *)
      Stats.tick (ctr t).Cluster.route_up;
      forward t pid
        (Msg.Route { key; level; node = store.Store.root; act })
        store.Store.root
    end
    else if Bound.compare_key n.Node.high key <= 0 then begin
      (* out of range at the target level: chase the right link *)
      Stats.tick (ctr t).Cluster.route_chase;
      match n.Node.right with
      | Some r ->
        forward ~authority:copy.Store.pc t pid
          (Msg.Route { key; level; node = r; act })
          r
      | None -> Fmt.failwith "Fixed: dead end at node %d for key %d" node key
    end
    else if Bound.compare_key n.Node.low key > 0 then
      Fmt.failwith "Fixed: key %d below node %d's range" key node
    else perform t pid copy ~key ~act

and handle_relay t pid ~uid ~node ~key ~u ~version:_ ~sender:_ =
  let store = Cluster.store t.cl pid in
  match Store.find store node with
  | None ->
    let msg = Msg.Relay_update { uid; node; key; u; version = 0; sender = pid } in
    Stats.tick (ctr t).Cluster.route_parked;
    Cluster.event t.cl ~pid Event.Park ~a:node ~b:(Msg.kind_id msg);
    Store.add_pending store node msg
  | Some copy ->
    Cluster.touch t.cl ~node;
    if Node.in_range copy.Store.node key then begin
      ignore (apply_update t pid copy key u);
      Cluster.hist_record t.cl ~node ~pid ~mode:Action.Relayed ~uid
        (action_kind key u);
      Stats.tick (ctr t).Cluster.relay_applied;
      Cluster.event t.cl ~pid Event.Relay ~a:node ~b:Event.relay_applied;
      maybe_split t pid copy
    end
    else begin
      (* Out of range: the copy has already split past this key.  Even a
         stale Add_child still carries a valid location fact, and it may
         be the only carrier: under relay batching the Split_done that
         moved this copy's range travels directly while the Add_child
         relay waits in the batch buffer, so the sibling snapshot can
         reference a child this processor would otherwise never learn a
         location for.  Harvest it before deciding the entry's fate. *)
      (match u with
      | Msg.Add_child { child; child_members } ->
        Store.learn_if_absent store child child_members
      | Msg.Upsert _ | Msg.Remove _ | Msg.Drop_child _ -> ());
      Cluster.hist_record t.cl ~node ~pid ~mode:Action.Relayed
        ~effective:false ~uid (action_kind key u);
      match disc t with
      | Config.Sync ->
        (* safe: the AAS ordering guarantees the PC applied this update
           before splitting, so the sibling's original value covers it *)
        Stats.tick (ctr t).Cluster.relay_discarded;
        Cluster.event t.cl ~pid Event.Relay ~a:node ~b:Event.relay_discarded
      | Config.Naive ->
        Stats.tick (ctr t).Cluster.relay_discarded;
        Cluster.event t.cl ~pid Event.Relay ~a:node ~b:Event.relay_discarded;
        if pid = copy.Store.pc then Stats.tick (ctr t).Cluster.naive_lost
      | Config.Semi ->
        if pid <> copy.Store.pc then begin
          Stats.tick (ctr t).Cluster.relay_discarded;
          Cluster.event t.cl ~pid Event.Relay ~a:node ~b:Event.relay_discarded
        end
        else begin
          (* §4.1.2 history rewriting: the relayed update is moved before
             the split, whose subsequent-action set is amended to forward
             the key to the new sibling — i.e. re-issue it as an initial
             update routed right. *)
          Stats.tick (ctr t).Cluster.semi_forwarded;
          Cluster.event t.cl ~pid Event.Relay ~a:node ~b:Event.relay_forwarded;
          let uid' = Cluster.fresh_uid t.cl in
          match copy.Store.node.Node.right with
          | Some r ->
            forward t pid
              (Msg.Route
                 {
                   key;
                   level = copy.Store.node.Node.level;
                   node = r;
                   act = Msg.Update { uid = uid'; u };
                 })
              r
          | None ->
            Fmt.failwith "Fixed: out-of-range relay at rightmost node %d" node
        end
      | Config.Eager ->
        Fmt.failwith "Fixed: relay received under the eager discipline"
    end

and handle t pid ~src msg =
  match msg with
  (* dbflow: class lazy -- piggyback container: each part re-enters dispatch under its own class *)
  | Msg.Batch b -> List.iter (handle t pid ~src) b.Msg.parts
  (* dbflow: class semi -- routing parks on the owning copy and update actions are PC-coordinated (§4.1) *)
  | Msg.Route { key; level; node; act } -> handle_route t pid ~key ~level ~node ~act
  (* dbflow: class lazy -- completion funnel at the origin, independent of any copy's role *)
  | Msg.Op_done { op; result } -> Cluster.op_complete t.cl ~op ~result
  (* dbflow: class semi -- relayed updates are version-ordered per node, discipline-gated at the PC (§3.2) *)
  | Msg.Relay_update { uid; node; key; u; version; sender } ->
    handle_relay t pid ~uid ~node ~key ~u ~version ~sender
  (* dbflow: class sync -- AAS enrolment: marks the copy splitting and blocks initial updates (§4.1.1) *)
  | Msg.Split_start { node } -> begin
    let store = Cluster.store t.cl pid in
    match Store.find store node with
    | None ->
      Stats.tick (ctr t).Cluster.route_parked;
      Cluster.event t.cl ~pid Event.Park ~a:node ~b:(Msg.kind_id msg);
      Store.add_pending store node msg
    | Some copy ->
      copy.Store.splitting <- true;
      Hashtbl.replace t.aas_since ((node * procs t) + pid) (Cluster.now t.cl);
      Cluster.aas_begin t.cl;
      send t ~src:pid ~dst:src (Msg.Split_ack { node })
  end
  (* dbflow: class sync -- AAS quorum ack: the synchronous split proceeds only once every member enrolled (§4.1.1) *)
  | Msg.Split_ack { node } ->
    let store = Cluster.store t.cl pid in
    let copy = Store.get store node in
    copy.Store.acks_pending <- copy.Store.acks_pending - 1;
    if copy.Store.acks_pending = 0 then begin
      do_split t pid copy;
      end_aas t pid copy;
      maybe_split t pid copy
    end
  (* dbflow: class semi -- remote half-split apply, ordered by node version against relays (§4.1) *)
  | Msg.Split_done { uid; node; sep; sibling; sibling_members; sync } -> begin
    let store = Cluster.store t.cl pid in
    match Store.find store node with
    | None ->
      Stats.tick (ctr t).Cluster.route_parked;
      Cluster.event t.cl ~pid Event.Park ~a:node ~b:(Msg.kind_id msg);
      Store.add_pending store node msg
    | Some copy ->
      apply_remote_split t pid copy ~uid ~sep ~sibling ~sibling_members;
      if sync then end_aas t pid copy
  end
  (* dbflow: class lazy -- root adoption is monotone on level, so copies may learn it in any order (§4.3) *)
  | Msg.New_root { snap; members } ->
    let store = Cluster.store t.cl pid in
    let is_newer =
      match Store.find store store.Store.root with
      | Some current -> snap.Msg.s_level > current.Store.node.Node.level
      | None -> true
    in
    Store.learn store snap.Msg.s_id members;
    (match Cluster.pc_of_members members with
    | Error Cluster.Empty_members ->
      (* no surviving copy-holder to name a primary: wait on the park
         path rather than tearing the handler down *)
      Cluster.park_no_members t.cl ~pid ~node:snap.Msg.s_id msg
    | Ok pc -> if List.mem pid members then install_copy t pid ~snap ~pc ~members);
    if is_newer then Store.set_root store snap.Msg.s_id
  (* dbflow: class semi -- eager discipline round: apply then ack to the coordinating PC (E8 baseline) *)
  | Msg.Eager_update { uid; node; key; u } -> begin
    let store = Cluster.store t.cl pid in
    match Store.find store node with
    | None ->
      Stats.tick (ctr t).Cluster.route_parked;
      Cluster.event t.cl ~pid Event.Park ~a:node ~b:(Msg.kind_id msg);
      Store.add_pending store node msg
    | Some copy ->
      ignore (apply_update t pid copy key u);
      Cluster.hist_record t.cl ~node ~pid ~mode:Action.Relayed ~uid
        (action_kind key u);
      send t ~src:pid ~dst:src (Msg.Eager_ack { node })
  end
  (* dbflow: class semi -- eager discipline split apply, acked to the coordinating PC (E8 baseline) *)
  | Msg.Eager_split { uid; node; sep; sibling; sibling_members } -> begin
    let store = Cluster.store t.cl pid in
    match Store.find store node with
    | None ->
      Stats.tick (ctr t).Cluster.route_parked;
      Cluster.event t.cl ~pid Event.Park ~a:node ~b:(Msg.kind_id msg);
      Store.add_pending store node msg
    | Some copy ->
      apply_remote_split t pid copy ~uid ~sep ~sibling ~sibling_members;
      send t ~src:pid ~dst:src (Msg.Eager_ack { node })
  end
  (* dbflow: class semi -- eager round completion: the PC releases the held update at quorum (E8 baseline) *)
  | Msg.Eager_ack { node } ->
    let store = Cluster.store t.cl pid in
    let copy = Store.get store node in
    copy.Store.eager_acks <- copy.Store.eager_acks - 1;
    if copy.Store.eager_acks = 0 then begin
      match copy.Store.eager_current with
      | Some job -> finish_eager t pid copy job
      | None -> Fmt.failwith "Fixed: eager ack with no job in flight"
    end
  | Msg.Migrate_install _ | Msg.Join_request _ | Msg.Join_copy _
  | Msg.Relay_member _ | Msg.Unjoin_request _ ->
    Fmt.failwith "Fixed: unexpected message %s" (Msg.kind msg)

(* A relayed / synchronized split arriving at a non-PC copy: shrink the
   local copy and install the sibling if this processor hosts one. *)
and apply_remote_split t pid (copy : Store.rcopy) ~uid ~sep ~sibling
    ~sibling_members =
  let store = Cluster.store t.cl pid in
  let n = copy.Store.node in
  let keep, dropped = Entries.partition_lt n.Node.entries sep in
  n.Node.entries <- keep;
  n.Node.high <- Bound.Key sep;
  n.Node.right <- Some sibling.Msg.s_id;
  n.Node.version <- n.Node.version + 1;
  Store.wrote store n.Node.id;
  if not (Entries.is_empty dropped) then
    Stats.add (ctr t).Cluster.split_dropped_entries (Entries.length dropped);
  Cluster.hist_record t.cl ~node:n.Node.id ~pid ~mode:Action.Relayed ~uid
    (Action.Half_split { sep; sibling = sibling.Msg.s_id });
  Store.learn store sibling.Msg.s_id sibling_members;
  if List.mem pid sibling_members then
    install_copy t pid ~snap:sibling
      ~pc:(Cluster.pc_of_members_exn sibling_members)
      ~members:sibling_members;
  if pid = copy.Store.pc then maybe_split t pid copy

(* ------------------------------------------------------------------ *)
(* Bootstrap                                                           *)

let bootstrap t =
  let cl = t.cl in
  let cfg = config t in
  let nprocs = cfg.Config.procs in
  (* One leaf per partition slice... *)
  let leaves =
    List.init nprocs (fun p ->
        let lo, hi = Partition.slice cl.Cluster.partition p in
        let low = if p = 0 then Bound.Neg_inf else Bound.Key lo in
        let high = if p = nprocs - 1 then Bound.Pos_inf else Bound.Key hi in
        let id = Cluster.fresh_node_id cl in
        let node = Node.make ~id ~level:0 ~low ~high Entries.empty in
        (p, lo, node))
  in
  (* link the leaf chain *)
  let rec link = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) ->
      a.Node.right <- Some b.Node.id;
      b.Node.left <- Some a.Node.id;
      link rest
    | [ _ ] | [] -> ()
  in
  link leaves;
  (* ... and a root over them. *)
  let root_id = Cluster.fresh_node_id cl in
  let root_entries =
    Entries.of_sorted_list
      (List.map
         (fun (p, lo, node) ->
           ((if p = 0 then Bound.min_sentinel else lo), Node.Child node.Node.id))
         leaves)
  in
  let root =
    Node.make ~id:root_id ~level:1 ~low:Bound.Neg_inf ~high:Bound.Pos_inf
      root_entries
  in
  let rmembers = root_members t in
  let leaf_members (node : Msg.value Node.t) =
    Cluster.members_for_range cl ~low:node.Node.low ~high:node.Node.high
  in
  for pid = 0 to nprocs - 1 do
    let store = Cluster.store cl pid in
    Store.set_root store root_id;
    Store.learn store root_id rmembers;
    if List.mem pid rmembers then begin
      ignore
        (Store.install store ~node:(Node.clone root)
           ~pc:(Cluster.pc_of_members_exn rmembers)
           ~members:rmembers);
      Cluster.hist_new_copy cl ~node:root_id ~pid ~base:[]
    end;
    List.iter
      (fun (_, _, node) ->
        let members = leaf_members node in
        Store.learn store node.Node.id members;
        if List.mem pid members then begin
          ignore
            (Store.install store ~node:(Node.clone node)
               ~pc:(Cluster.pc_of_members_exn members)
               ~members);
          Cluster.hist_new_copy cl ~node:node.Node.id ~pid ~base:[]
        end)
      leaves
  done

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)

let create cfg =
  let cl = Cluster.create cfg in
  let t =
    {
      cl;
      relay_buf = Array.make (cfg.Config.procs * cfg.Config.procs) [];
      relay_cnt = Array.make (cfg.Config.procs * cfg.Config.procs) 0;
      buf_scheduled = Array.make (cfg.Config.procs * cfg.Config.procs) false;
      aas_since = Hashtbl.create 16;
      splits = 0;
    }
  in
  for pid = 0 to cfg.Config.procs - 1 do
    Cluster.Network.set_handler cl.Cluster.net pid (fun ~src msg ->
        handle t pid ~src msg)
  done;
  (* Fixed copies need no rejoin protocol: the member set of every node
     is static, so after the WAL replay the resumed reliable channels
     redeliver whatever relays the crashed processor missed. *)
  if cfg.Config.durability.Config.wal then
    Cluster.install_recovery cl ~rejoin:(fun _pid -> ());
  bootstrap t;
  t

let start_route t ~origin msg =
  let store = Cluster.store t.cl origin in
  let root = store.Store.root in
  if Store.mem store root then send_local t origin msg
  else
    let members = Store.members_of store root in
    send t ~src:origin ~dst:(choose_member t members) msg

let insert t ~origin key value =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Insert ~key
      ~value:(Some value) ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  let uid = Cluster.fresh_uid t.cl in
  start_route t ~origin
    (Msg.Route
       {
         key;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act =
           Msg.Update { uid; u = Msg.Upsert { op = r.Opstate.id; origin; value } };
       });
  r.Opstate.id

let search t ~origin key =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Search ~key ~value:None
      ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  start_route t ~origin
    (Msg.Route
       {
         key;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act = Msg.Search { op = r.Opstate.id; origin };
       });
  r.Opstate.id

let remove t ~origin key =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Delete ~key ~value:None
      ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  let uid = Cluster.fresh_uid t.cl in
  start_route t ~origin
    (Msg.Route
       {
         key;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act = Msg.Update { uid; u = Msg.Remove { op = r.Opstate.id; origin } };
       });
  r.Opstate.id


let scan t ~origin ~lo ~hi =
  let r =
    Opstate.register t.cl.Cluster.ops ~kind:Opstate.Scan ~key:lo ~value:None
      ~origin ~now:(Cluster.now t.cl)
  in
  Cluster.op_issue t.cl r;
  start_route t ~origin
    (Msg.Route
       {
         key = lo;
         level = 0;
         node = (Cluster.store t.cl origin).Store.root;
         act = Msg.Scan { op = r.Opstate.id; origin; hi; acc = [] };
       });
  r.Opstate.id

let run ?max_events t = Cluster.run ?max_events t.cl
