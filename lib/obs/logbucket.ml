(* Shared log-bucketing scheme: 16 sub-buckets per octave, values below
   16 bucketed exactly.  [Stats.hist] (lib/sim) and [Sketch] (this
   library) index the *same* bucket space, which is what makes window
   sketches mergeable into run-lifetime histograms and lets the
   percentile-consistency property in the tests compare the two
   implementations bucket-for-bucket. *)

let sub_bits = 4
let linear = 1 lsl sub_bits

(* Highest index: msb 61 (OCaml 63-bit ints) -> (61-4+1)*16 + 15 = 943. *)
let num_buckets = 944

(* The loop lives at top level so [index] — run once per histogram
   observation — allocates no closure per call. *)
let rec msb_loop v m = if v <= 1 then m else msb_loop (v lsr 1) (m + 1)
let msb v = msb_loop v 0

let index v =
  if v < linear then v
  else
    let m = msb v in
    ((m - sub_bits + 1) lsl sub_bits)
    + ((v lsr (m - sub_bits)) land (linear - 1))

let lower idx =
  if idx < linear then idx
  else
    let m = (idx lsr sub_bits) + sub_bits - 1 in
    let sub = idx land (linear - 1) in
    (linear + sub) lsl (m - sub_bits)
