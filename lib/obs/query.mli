(** Offline queries over a recorded trace: span reconstruction, lineage
    verification, stall detection, AAS windows.  All post-run — nothing
    here touches the recording path. *)

type span = {
  op : int;
  issue : Obs.event option;
  complete : Obs.event option;
  events : Obs.event list;  (** every event attributed to the op, id order *)
  hops : int;  (** message deliveries ([Msg_recv]) in the span *)
  relays : int;
  retxs : int;
  splits : int;
  in_flight : int;
      (** total ticks on the wire across the span's resolvable
          [Msg_send] -> [Msg_recv] links *)
}

val by_op : Obs.t -> int -> Obs.event list
(** All retained events attributed to an op, oldest first. *)

val ops : Obs.t -> int list
(** Distinct op ids appearing in the retained window, ascending. *)

val span : Obs.t -> int -> span
val spans : Obs.t -> span list

val complete_span : Obs.t -> span -> bool
(** The op was issued and completed in the retained window and every
    parent link in its span resolves (no link into an evicted event). *)

val latency : span -> int option
(** Completion time minus issue time, when both are present. *)

val stalled : Obs.t -> now:int -> idle:int -> span list
(** Issued-but-uncompleted ops whose last event is at least [idle] ticks
    before [now]. *)

(** An AAS blocking window, reconstructed from an [Aas_release] event
    (which carries the duration): the node blocked initial updates from
    [aas_from] to [aas_until] on processor [aas_pid]. *)
type aas_window = {
  aas_pid : int;
  aas_node : int;
  aas_from : int;
  aas_until : int;
}

val aas_windows : Obs.t -> aas_window list
