(** Typed SLO rule engine, evaluated at scrape points.

    A rule is a named threshold over a sampled signal ([unit -> int]).
    {!evaluate} is a level check at a point in simulated time: the first
    breaching evaluation opens an alert and emits [Alert_raise] (with
    [a] = rule index, [b] = observed value) into the trace ring; the
    first non-breaching one closes it with the paired [Alert_clear]
    ([b] = ticks active); {!finish} closes whatever is still open.
    Driven only by simulated time, so alert histories are
    deterministic. *)

type severity = Info | Warn | Crit

val severity_name : severity -> string

type cmp = Above | Below

type t

val create : ?obs:Obs.t -> unit -> t
(** [obs] receives the alert trace events (default [Obs.disabled]). *)

val add_rule :
  t ->
  name:string ->
  ?severity:severity ->
  ?cmp:cmp ->
  signal:(unit -> int) ->
  threshold:int ->
  unit ->
  unit
(** Register a rule; [cmp] defaults to [Above] (breach when the signal
    exceeds [threshold]; [Below] breaches when it drops under).
    Duplicate names raise [Invalid_argument].  Rule indices in trace
    events follow registration order. *)

val evaluate : t -> now:int -> unit
(** Sample every rule's signal at time [now], opening and closing alerts
    as levels cross thresholds.  [now] must not decrease across calls. *)

val finish : t -> now:int -> unit
(** Close every still-open alert at [now], pairing any outstanding
    [Alert_raise] with its [Alert_clear]. *)

val rules : t -> string list
(** Registered rule names, in registration (= trace-index) order. *)

type alert = {
  al_rule : string;
  al_severity : severity;
  al_from : int;
  al_until : int;  (** close time; {!finish}'s time for open alerts *)
  al_peak : int;  (** worst signal value observed while active *)
}

val alerts : t -> alert list
(** Closed alerts, oldest first.  Complete after {!finish}. *)

val fired : t -> int
(** Total alerts opened over the run, across all rules. *)

val active : t -> (string * int) list
(** Currently-breaching rules as [(name, active_since)]. *)

val active_count : t -> int

type summary_row = {
  su_rule : string;
  su_severity : severity;
  su_fired : int;
  su_active_ticks : int;  (** total breach duration over closed alerts *)
  su_peak : int;  (** worst value over all closed alerts; 0 if none *)
}

val summary : t -> summary_row list
(** One row per rule, in registration order. *)

val pp_summary : Format.formatter -> t -> unit
