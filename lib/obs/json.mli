(** Minimal JSON reader used to validate exported traces.  The repo has
    no JSON dependency by design; this is just enough standard JSON for
    {!Export.validate} and the [trace-check] CLI.  Numbers parse as
    floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val of_string : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup; [None] when absent or not an object. *)

val to_list : t -> t list option
val to_string : t -> string option
val to_float : t -> float option
