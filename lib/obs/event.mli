(** Typed trace-event vocabulary.

    Every recorded event is one of these kinds plus five integer payload
    slots (time, processor, operation id, causal parent, and two
    kind-specific operands [a]/[b]) — no strings anywhere on the
    recording path.  The per-kind meaning of [a] and [b]:

    - [Op_issue]: a = operation kind code ({!op_search} ...), b = key.
    - [Op_complete]: a = operation kind code, b = latency in ticks.
    - [Msg_send]: a = destination processor, b = message kind id.
    - [Msg_recv]: a = source processor, b = message kind id; the event's
      parent is the matching [Msg_send].
    - [Relay]: a = node id, b = outcome code ({!relay_applied} ...).
    - [Split_start]/[Split_end]: a = node id, b = sibling node id.
    - [Aas_block]: a = node id, b = blocked operation kind code.
    - [Aas_release]: a = node id, b = AAS duration in ticks (so the
      blocking window is [\[time - b, time\]]).
    - [Retx]: a = destination processor, b = frame seqno; parent is the
      original [Msg_send].
    - [Ack]: a = destination processor, b = cumulative ackno.
    - [Root_grow]: a = new root id, b = its level.
    - [Migrate]: a = node id, b = destination processor.
    - [Join]/[Unjoin]: a = node id, b = the joining/leaving processor.
    - [Reclaim]: a = reclaimed leaf id, b = absorbing neighbor id.
    - [Park]: a = node id, b = message kind id of the parked action.
    - [Unpark]: a = node id, b = number of actions re-issued. *)

type kind =
  | Op_issue
  | Op_complete
  | Msg_send
  | Msg_recv
  | Relay
  | Split_start
  | Split_end
  | Aas_block
  | Aas_release
  | Retx
  | Ack
  | Root_grow
  | Migrate
  | Join
  | Unjoin
  | Reclaim
  | Park
  | Unpark
  | Crash  (** processor failure: in-memory state dropped ([a] = generation) *)
  | Restart  (** processor back up, about to replay its log ([a] = generation) *)
  | Replay  (** WAL replay finished ([a] = records applied, [b] = bytes read) *)
  | Rejoin  (** §4.3 re-join refresh requested for a node ([a] = node, [b] = pc) *)
  | Alert_raise
      (** a {!Health} rule started breaching ([a] = rule index, [b] = observed value) *)
  | Alert_clear
      (** the paired rule stopped breaching ([a] = rule index, [b] = ticks active) *)

val to_int : kind -> int
(** Dense code in [\[0, num_kinds)]; stable across a run (the ring buffer
    stores this). *)

val of_int : int -> kind
(** Inverse of {!to_int}; raises [Invalid_argument] outside the range. *)

val num_kinds : int

val name : kind -> string

(** {2 Operation-kind codes} (the [a] slot of [Op_issue]/[Op_complete]) *)

val op_search : int
val op_insert : int
val op_delete : int
val op_scan : int
val op_kind_name : int -> string

(** {2 Relay-outcome codes} (the [b] slot of [Relay]) *)

val relay_applied : int
val relay_discarded : int
val relay_forwarded : int
val relay_catchup : int
val relay_outcome_name : int -> string
