(* Critical-path extraction: attribute each operation's latency to
   phases, by walking its span's events in time order and charging the
   gap after each event to the state that event put the op in:

   - after a [Msg_send]: the op is on the wire            -> network
   - after a [Retx]: it is waiting out a retransmission   -> retransmit
   - after an [Aas_block]: blocked by a primary-copy AAS  -> aas
   - after a [Park]: parked at a copy waiting for a split
     relay to install the target node                     -> parked
   - after anything else (recv, relay, split bookkeeping): the
     processor is doing protocol work                     -> processing

   The attribution is total — the five phases sum exactly to the span's
   issue-to-complete latency — and purely a function of the ring, so
   per-discipline aggregates are deterministic.  [Park] time is the lazy
   disciplines' residual update-synchronization cost (the relaxed AAS of
   §4.1.1 seen from a non-primary copy), so discipline comparisons read
   [aas + parked] as the total split-stall share. *)

type phases = {
  p_net : int;
  p_aas : int;
  p_parked : int;
  p_retx : int;
  p_proc : int;
}

let zero = { p_net = 0; p_aas = 0; p_parked = 0; p_retx = 0; p_proc = 0 }

let total p = p.p_net + p.p_aas + p.p_parked + p.p_retx + p.p_proc

let add a b =
  {
    p_net = a.p_net + b.p_net;
    p_aas = a.p_aas + b.p_aas;
    p_parked = a.p_parked + b.p_parked;
    p_retx = a.p_retx + b.p_retx;
    p_proc = a.p_proc + b.p_proc;
  }

let stall p = p.p_aas + p.p_parked

let share p part =
  let t = total p in
  if t = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int t

(* Attribute one span.  Events arrive in id order, which is time order
   (ids are monotone and simulated time never decreases), so consecutive
   events bound the gaps directly.  Only the window between the issue
   and the completion counts; spans missing either end attribute
   nothing. *)
let of_span (s : Query.span) =
  match (s.Query.issue, s.Query.complete) with
  | Some issue, Some complete ->
    let rec walk acc (prev : Obs.event) = function
      | [] ->
        (* tail gap: from the last event up to the completion *)
        let gap = complete.Obs.time - prev.Obs.time in
        Some (charge acc prev gap)
      | (e : Obs.event) :: rest ->
        if e.Obs.id > complete.Obs.id then walk acc prev []
        else
          let gap = e.Obs.time - prev.Obs.time in
          walk (charge acc prev gap) e rest
    and charge acc (e : Obs.event) gap =
      if gap <= 0 then acc
      else
        match e.Obs.kind with
        | Event.Msg_send -> { acc with p_net = acc.p_net + gap }
        | Event.Retx -> { acc with p_retx = acc.p_retx + gap }
        | Event.Aas_block -> { acc with p_aas = acc.p_aas + gap }
        | Event.Park -> { acc with p_parked = acc.p_parked + gap }
        | _ -> { acc with p_proc = acc.p_proc + gap }
    in
    let after_issue =
      List.filter (fun (e : Obs.event) -> e.Obs.id >= issue.Obs.id) s.Query.events
    in
    (match after_issue with
    | [] -> None
    | first :: rest -> walk zero first rest)
  | _ -> None

(* Aggregate over every complete span in the ring: the per-run breakdown
   the per-discipline tables report. *)
let aggregate t =
  List.fold_left
    (fun acc s ->
      if Query.complete_span t s then
        match of_span s with Some p -> add acc p | None -> acc
      else acc)
    zero (Query.spans t)

let per_op t =
  List.filter_map
    (fun s ->
      if Query.complete_span t s then
        match of_span s with Some p -> Some (s.Query.op, p) | None -> None
      else None)
    (Query.spans t)

let pp ppf p =
  Fmt.pf ppf "net=%d aas=%d parked=%d retx=%d proc=%d (total %d)" p.p_net
    p.p_aas p.p_parked p.p_retx p.p_proc (total p)
