(** Chrome trace-event JSON exporter ([chrome://tracing] / Perfetto).

    Mapping: chrome [pid] = recorder index (one process group per
    cluster), chrome [tid] = simulated processor, [ts] = simulator
    ticks.  Client operations are async spans ([ph:"b"]/[ph:"e"] keyed
    by op id), message traffic becomes instants joined by flow arrows
    ([ph:"s"] at the send keyed by the send event id, [ph:"f"] at the
    receive keyed by its parent), and protocol events (splits, AAS,
    relays, ...) are instants with their operands in [args].

    Output is a pure function of ring contents: same seed, same file,
    byte for byte. *)

val to_string : Obs.t list -> string

val write : path:string -> Obs.t list -> unit

val validate : string -> (int, string) result
(** Structural self-check of an exported trace: valid JSON with a
    [traceEvents] array whose events all carry [name]/[ph]/[pid]/[tid]
    (+ [ts] outside metadata) with a known phase, async begin/end
    balanced per (cat, id), and every flow finish matching a start.
    Returns the event count. *)
