(* Ring of typed trace events (struct-of-arrays, ints only), preallocated
   once enabled.

   The recording path allocates nothing and builds no strings: an emit is
   seven array stores and a counter bump, and a disabled emit is one
   branch.  Everything human-readable (names, rendering, export) happens
   after the run, off the hot path. *)

type t = {
  mutable enabled : bool;
  capacity : int;
  (* Buffers are allocated lazily, on creation when enabled or on the
     first [set_enabled true] — a disabled ring costs a record, not
     7 x capacity words (every Cluster.create builds one). *)
  mutable time : int array;
  mutable pid : int array;
  mutable op : int array;
  mutable parent : int array;
  mutable kind : int array;
  mutable a : int array;
  mutable b : int array;
  mutable next : int;  (* total events ever emitted; the next event id *)
  (* Ambient causal context: the operation being executed and the event
     that caused the current execution (a [Msg_recv] or an [Op_issue]).
     Set by the network around each delivery and by the protocol at op
     issue; everything emitted in between chains to it. *)
  mutable cur_op : int;
  mutable cur_parent : int;
  (* Naming hook for the message-kind ids stored in [b] slots; installed
     by whoever owns the network's MESSAGE module.  Only called by
     renderers/exporters, never while recording. *)
  mutable msg_name : int -> string;
  label : string;
}

let default_capacity = 1 lsl 16
let default_msg_name i = "kind" ^ string_of_int i

(* Global force switch for `dbtree run --trace`: experiments build their
   configurations internally, so the CLI cannot thread a flag through
   them.  When forced, every ring created afterwards is enabled and
   registered for a merged export after the run.

   [create] is par-reachable (every parallel E17 cell builds a cluster,
   and a cluster builds a ring), so this state is the repo's one genuine
   cross-domain rendezvous: the flag and capacity are Atomics read once
   per create, and the registry is a ref guarded by [registry_mu] —
   which makes the registry *complete* under [Par.map].  Creation order
   across domains is scheduling-dependent, so parallel callers wanting a
   stable view must order [registered] themselves (by label, as the
   regression test does). *)

let force_on = Atomic.make false
let force_capacity = Atomic.make default_capacity
let registry_mu = Mutex.create ()

(* dbrace: guarded -- every touch below is inside Mutex.protect registry_mu *)
let registry : t list ref = ref []

let force_enable ?(capacity = default_capacity) () =
  Atomic.set force_capacity capacity;
  Atomic.set force_on true

let force_disable () = Atomic.set force_on false
let forced () = Atomic.get force_on

let registered () = List.rev (Mutex.protect registry_mu (fun () -> !registry))

let clear_registered () = Mutex.protect registry_mu (fun () -> registry := [])

let make ~enabled ~capacity ~label =
  let n = if enabled then capacity else 0 in
  {
    enabled;
    capacity;
    time = Array.make n 0;
    pid = Array.make n 0;
    op = Array.make n 0;
    parent = Array.make n 0;
    kind = Array.make n 0;
    a = Array.make n 0;
    b = Array.make n 0;
    next = 0;
    cur_op = -1;
    cur_parent = -1;
    msg_name = default_msg_name;
    label;
  }

let alloc_buffers t =
  if Array.length t.time < t.capacity then begin
    t.time <- Array.make t.capacity 0;
    t.pid <- Array.make t.capacity 0;
    t.op <- Array.make t.capacity 0;
    t.parent <- Array.make t.capacity 0;
    t.kind <- Array.make t.capacity 0;
    t.a <- Array.make t.capacity 0;
    t.b <- Array.make t.capacity 0
  end

let create ?(enabled = false) ?(capacity = default_capacity) ?(label = "") ()
    =
  if capacity < 1 then invalid_arg "Obs.create: capacity must be >= 1";
  (* One Atomic read: a concurrent [force_enable] either sees this create
     entirely or not at all, never a half-forced ring (enabled but
     unregistered, or registered at the unforced capacity). *)
  let force = Atomic.get force_on in
  let enabled = enabled || force in
  let capacity =
    if force then max capacity (Atomic.get force_capacity) else capacity
  in
  let t = make ~enabled ~capacity ~label in
  if force then Mutex.protect registry_mu (fun () -> registry := t :: !registry);
  t

let disabled = make ~enabled:false ~capacity:1 ~label:""
let on t = t.enabled
let set_enabled t b =
  if b then alloc_buffers t;
  t.enabled <- b
let label t = t.label
let set_msg_names t f = t.msg_name <- f
let msg_name t i = t.msg_name i

let emit t ~time ~pid ~op ~parent ~kind ~a ~b =
  if not t.enabled then -1
  else begin
    let id = t.next in
    let i = id mod t.capacity in
    t.time.(i) <- time;
    t.pid.(i) <- pid;
    t.op.(i) <- op;
    t.parent.(i) <- parent;
    t.kind.(i) <- Event.to_int kind;
    t.a.(i) <- a;
    t.b.(i) <- b;
    t.next <- id + 1;
    id
  end

let emit_here t ~time ~pid ~kind ~a ~b =
  emit t ~time ~pid ~op:t.cur_op ~parent:t.cur_parent ~kind ~a ~b

let set_context t ~op ~parent =
  t.cur_op <- op;
  t.cur_parent <- parent

let reset_context t =
  t.cur_op <- -1;
  t.cur_parent <- -1

let cur_op t = t.cur_op
let cur_parent t = t.cur_parent

(* ------------------------------------------------------------------ *)
(* Reading the ring (offline)                                          *)

type event = {
  id : int;
  time : int;
  pid : int;
  op : int;
  parent : int;
  kind : Event.kind;
  a : int;
  b : int;
}

let length t = t.next
let dropped t = max 0 (t.next - t.capacity)

let get t id =
  if id < 0 || id >= t.next || id < t.next - t.capacity then None
  else
    let i = id mod t.capacity in
    Some
      {
        id;
        time = t.time.(i);
        pid = t.pid.(i);
        op = t.op.(i);
        parent = t.parent.(i);
        kind = Event.of_int t.kind.(i);
        a = t.a.(i);
        b = t.b.(i);
      }

let events t =
  let lo = max 0 (t.next - t.capacity) in
  List.init (t.next - lo) (fun k -> Option.get (get t (lo + k)))

let clear t =
  t.next <- 0;
  reset_context t

(* ------------------------------------------------------------------ *)
(* Rendering (offline)                                                 *)

let pp_event t ppf (e : event) =
  match e.kind with
  | Event.Op_issue ->
    Fmt.pf ppf "p%d: op %d issue %s key=%d" e.pid e.op
      (Event.op_kind_name e.a) e.b
  | Event.Op_complete ->
    Fmt.pf ppf "p%d: op %d complete %s latency=%d" e.pid e.op
      (Event.op_kind_name e.a) e.b
  | Event.Msg_send ->
    Fmt.pf ppf "p%d: send %s -> p%d (op %d)" e.pid (t.msg_name e.b) e.a e.op
  | Event.Msg_recv ->
    Fmt.pf ppf "p%d: recv %s from p%d (op %d)" e.pid (t.msg_name e.b) e.a
      e.op
  | Event.Relay ->
    Fmt.pf ppf "p%d: relay %s at node %d (op %d)" e.pid
      (Event.relay_outcome_name e.b)
      e.a e.op
  | Event.Split_start ->
    Fmt.pf ppf "p%d: half-split node %d -> sibling %d" e.pid e.a e.b
  | Event.Split_end ->
    Fmt.pf ppf "p%d: split complete node %d (sibling %d)" e.pid e.a e.b
  | Event.Aas_block ->
    Fmt.pf ppf "p%d: AAS blocks %s at node %d (op %d)" e.pid
      (Event.op_kind_name e.b) e.a e.op
  | Event.Aas_release ->
    Fmt.pf ppf "p%d: AAS released at node %d after %d ticks" e.pid e.a e.b
  | Event.Retx -> Fmt.pf ppf "p%d: retransmit seq %d -> p%d" e.pid e.b e.a
  | Event.Ack -> Fmt.pf ppf "p%d: ack %d -> p%d" e.pid e.b e.a
  | Event.Root_grow ->
    Fmt.pf ppf "p%d: new root %d (level %d)" e.pid e.a e.b
  | Event.Migrate -> Fmt.pf ppf "p%d: migrate node %d -> p%d" e.pid e.a e.b
  | Event.Join -> Fmt.pf ppf "p%d: join node %d by p%d" e.pid e.a e.b
  | Event.Unjoin -> Fmt.pf ppf "p%d: unjoin node %d (p%d)" e.pid e.a e.b
  | Event.Reclaim ->
    Fmt.pf ppf "p%d: reclaim empty leaf %d (into %d)" e.pid e.a e.b
  | Event.Park ->
    Fmt.pf ppf "p%d: park %s at node %d" e.pid (t.msg_name e.b) e.a
  | Event.Unpark ->
    Fmt.pf ppf "p%d: unpark %d actions at node %d" e.pid e.b e.a
  | Event.Crash -> Fmt.pf ppf "p%d: crash (generation %d)" e.pid e.a
  | Event.Restart -> Fmt.pf ppf "p%d: restart (generation %d)" e.pid e.a
  | Event.Replay ->
    Fmt.pf ppf "p%d: replayed %d wal records (%d bytes)" e.pid e.a e.b
  | Event.Rejoin ->
    Fmt.pf ppf "p%d: rejoin node %d via pc %d" e.pid e.a e.b
  | Event.Alert_raise ->
    Fmt.pf ppf "p%d: alert raised (rule %d, value %d)" e.pid e.a e.b
  | Event.Alert_clear ->
    Fmt.pf ppf "p%d: alert cleared (rule %d, %d ticks active)" e.pid e.a e.b

let pp ppf t =
  List.iter
    (fun e -> Fmt.pf ppf "[%6d] %a@." e.time (pp_event t) e)
    (events t)
