(** Mergeable sliding-window quantile sketch.

    A ring of per-epoch sub-histograms over the shared {!Logbucket}
    bucket space (the same bucketing as [Stats.hist]): an observation
    lands in the slice of its epoch ([now / slice_width]), advancing to
    a new epoch zeroes expired slices in place, and queries merge the
    live slices.  The observe path is allocation-free; quantile and rate
    queries walk the bucket space and belong at scrape points, off the
    hot path.

    All time arguments are simulated ticks, so window contents are a
    pure function of the run. *)

type t

val create : ?slices:int -> slice_width:int -> unit -> t
(** [create ~slice_width ()] covers a window of [slices * slice_width]
    ticks (default 8 slices).  Both must be >= 1. *)

val slices : t -> int
val slice_width : t -> int

val window : t -> int
(** Window span in ticks: [slices * slice_width]. *)

val observe : t -> now:int -> int -> unit
(** Record a non-negative value at time [now].  Allocation-free;
    negative values clamp to 0.  [now] must not decrease across calls
    (simulated time never does). *)

val total : t -> int
(** Lifetime observation count, including windowed-out ones. *)

val count : t -> now:int -> int
(** Observations still inside the window at [now]. *)

val rate_per_ktick : t -> now:int -> float
(** Windowed rate: observations per 1000 ticks over the elapsed part of
    the window. *)

val percentile : t -> now:int -> float -> int
(** [percentile t ~now p] for [p] in [\[0, 100\]]: nearest-rank
    percentile of the windowed observations, reported as the containing
    bucket's lower bound (<= 6.25% relative error).  0 on an empty
    window. *)

val merge_into : dst:t -> now:int -> t -> unit
(** Add [src]'s windowed counts into [dst] after aligning both to
    [now]'s epoch.  Raises [Invalid_argument] on geometry mismatch. *)
