(** Critical-path extraction over recorded trace rings.

    Walks each operation's span in time order and charges the gap after
    each event to the state that event put the op in: on the wire after
    a [Msg_send] (network), waiting out a retransmission after a [Retx],
    blocked by a primary-copy AAS after an [Aas_block], parked behind a
    split relay after a [Park], and protocol processing otherwise.  The
    attribution is total — the five phases sum exactly to the span's
    latency — and deterministic.

    [Park] time is the lazy disciplines' residual update-synchronization
    cost (the relaxed per-copy AAS of §4.1.1 seen from a non-primary
    copy), so discipline comparisons read {!stall} ([aas + parked]) as
    the total split-stall share. *)

type phases = {
  p_net : int;  (** ticks in flight between send and receive *)
  p_aas : int;  (** ticks blocked by a primary-copy AAS *)
  p_parked : int;  (** ticks parked waiting for a split relay *)
  p_retx : int;  (** ticks waiting out retransmissions *)
  p_proc : int;  (** everything else: protocol processing *)
}

val zero : phases
val total : phases -> int
val add : phases -> phases -> phases

val stall : phases -> int
(** [p_aas + p_parked]: the split-synchronization stall total. *)

val share : phases -> int -> float
(** [share p part] is [part] as a percentage of [total p] (0.0 when the
    total is 0). *)

val of_span : Query.span -> phases option
(** Attribute one span; [None] unless both issue and completion are
    present.  Events past the completion (late relay deliveries carrying
    the op's lineage) are not charged. *)

val aggregate : Obs.t -> phases
(** Sum of {!of_span} over every complete span in the ring (see
    [Query.complete_span]). *)

val per_op : Obs.t -> (int * phases) list
(** Per-operation breakdowns for complete spans, ascending op id. *)

val pp : Format.formatter -> phases -> unit
