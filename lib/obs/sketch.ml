(* Sliding-window quantile sketch over the shared log-bucket space
   ({!Logbucket}, the same bucketing as [Stats.hist]).

   The window is a ring of [slices] sub-histograms, each covering
   [slice_width] simulated ticks; an observation lands in the slice of
   its epoch ([now / slice_width]), and advancing to a new epoch zeroes
   the slices that fell out of the window — in place, so the observe
   path allocates nothing.  Queries merge the live slices by walking the
   bucket space, which happens at scrape points, off the hot path.

   Two sketches with the same geometry merge by bucket-count addition
   (after aligning both to the same epoch), which is what makes per-op
   and per-processor sketches composable into aggregates. *)

module LB = Logbucket

type t = {
  slice_width : int;
  n_slices : int;
  counts : int array;  (* per-slice observation counts *)
  buckets : int array;  (* n_slices * num_buckets, row-major by slice *)
  mutable epoch : int;  (* epoch of the slice at [epoch mod n_slices] *)
  mutable total : int;  (* lifetime observations, windowed out or not *)
}

let create ?(slices = 8) ~slice_width () =
  if slices < 1 then invalid_arg "Sketch.create: slices must be >= 1";
  if slice_width < 1 then invalid_arg "Sketch.create: slice_width must be >= 1";
  {
    slice_width;
    n_slices = slices;
    counts = Array.make slices 0;
    buckets = Array.make (slices * LB.num_buckets) 0;
    epoch = 0;
    total = 0;
  }

let slices t = t.n_slices
let slice_width t = t.slice_width
let window t = t.n_slices * t.slice_width
let total t = t.total

let[@inline] row t e = e mod t.n_slices

let zero_slice t e =
  let r = row t e in
  t.counts.(r) <- 0;
  Array.fill t.buckets (r * LB.num_buckets) LB.num_buckets 0

(* Advance the ring to [epoch], zeroing every slice that expires.  A jump
   past the whole window zeroes all slices (bounded by [n_slices], not by
   the jump size). *)
let rotate t epoch =
  if epoch > t.epoch then begin
    let steps = min t.n_slices (epoch - t.epoch) in
    for k = 1 to steps do
      zero_slice t (t.epoch + k)
    done;
    t.epoch <- epoch
  end

let observe t ~now v =
  let v = if v < 0 then 0 else v in
  let epoch = now / t.slice_width in
  if epoch <> t.epoch then rotate t epoch;
  let r = row t t.epoch in
  t.counts.(r) <- t.counts.(r) + 1;
  let i = (r * LB.num_buckets) + LB.index v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.total <- t.total + 1

let count t ~now =
  rotate t (now / t.slice_width);
  Array.fold_left ( + ) 0 t.counts

(* Observations per 1000 ticks over the part of the window that has
   actually elapsed (a young sketch is not diluted by empty future). *)
let rate_per_ktick t ~now =
  let n = count t ~now in
  let elapsed = min (now + 1) (window t) in
  if elapsed <= 0 then 0.0
  else 1000.0 *. float_of_int n /. float_of_int elapsed

(* Nearest-rank percentile over the merged window, reported as the
   bucket's lower bound (<= 6.25% relative error, exactly [Stats.hist]'s
   bucketing).  0 when the window is empty. *)
let percentile t ~now p =
  if p < 0.0 || p > 100.0 then invalid_arg "Sketch.percentile";
  let n = count t ~now in
  if n = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let seen = ref 0 in
    let result = ref 0 in
    (try
       for i = 0 to LB.num_buckets - 1 do
         let c = ref 0 in
         for s = 0 to t.n_slices - 1 do
           c := !c + t.buckets.((s * LB.num_buckets) + i)
         done;
         seen := !seen + !c;
         if !seen >= rank then begin
           result := LB.lower i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

(* Merge [src]'s window into [dst].  Both are first rotated to [now]'s
   epoch so slice rows line up; geometries must match. *)
let merge_into ~dst ~now src =
  if dst.slice_width <> src.slice_width || dst.n_slices <> src.n_slices then
    invalid_arg "Sketch.merge_into: geometry mismatch";
  let epoch = now / dst.slice_width in
  rotate dst epoch;
  rotate src epoch;
  for r = 0 to dst.n_slices - 1 do
    dst.counts.(r) <- dst.counts.(r) + src.counts.(r)
  done;
  for i = 0 to (dst.n_slices * LB.num_buckets) - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done;
  dst.total <- dst.total + src.total
