type kind =
  | Op_issue
  | Op_complete
  | Msg_send
  | Msg_recv
  | Relay
  | Split_start
  | Split_end
  | Aas_block
  | Aas_release
  | Retx
  | Ack
  | Root_grow
  | Migrate
  | Join
  | Unjoin
  | Reclaim
  | Park
  | Unpark
  | Crash
  | Restart
  | Replay
  | Rejoin
  | Alert_raise
  | Alert_clear

let to_int = function
  | Op_issue -> 0
  | Op_complete -> 1
  | Msg_send -> 2
  | Msg_recv -> 3
  | Relay -> 4
  | Split_start -> 5
  | Split_end -> 6
  | Aas_block -> 7
  | Aas_release -> 8
  | Retx -> 9
  | Ack -> 10
  | Root_grow -> 11
  | Migrate -> 12
  | Join -> 13
  | Unjoin -> 14
  | Reclaim -> 15
  | Park -> 16
  | Unpark -> 17
  | Crash -> 18
  | Restart -> 19
  | Replay -> 20
  | Rejoin -> 21
  | Alert_raise -> 22
  | Alert_clear -> 23

let num_kinds = 24

let of_int = function
  | 0 -> Op_issue
  | 1 -> Op_complete
  | 2 -> Msg_send
  | 3 -> Msg_recv
  | 4 -> Relay
  | 5 -> Split_start
  | 6 -> Split_end
  | 7 -> Aas_block
  | 8 -> Aas_release
  | 9 -> Retx
  | 10 -> Ack
  | 11 -> Root_grow
  | 12 -> Migrate
  | 13 -> Join
  | 14 -> Unjoin
  | 15 -> Reclaim
  | 16 -> Park
  | 17 -> Unpark
  | 18 -> Crash
  | 19 -> Restart
  | 20 -> Replay
  | 21 -> Rejoin
  | 22 -> Alert_raise
  | 23 -> Alert_clear
  | k -> Fmt.invalid_arg "Event.of_int: %d" k

let name = function
  | Op_issue -> "op_issue"
  | Op_complete -> "op_complete"
  | Msg_send -> "msg_send"
  | Msg_recv -> "msg_recv"
  | Relay -> "relay"
  | Split_start -> "split_start"
  | Split_end -> "split_end"
  | Aas_block -> "aas_block"
  | Aas_release -> "aas_release"
  | Retx -> "retx"
  | Ack -> "ack"
  | Root_grow -> "root_grow"
  | Migrate -> "migrate"
  | Join -> "join"
  | Unjoin -> "unjoin"
  | Reclaim -> "reclaim"
  | Park -> "park"
  | Unpark -> "unpark"
  | Crash -> "crash"
  | Restart -> "restart"
  | Replay -> "replay"
  | Rejoin -> "rejoin"
  | Alert_raise -> "alert_raise"
  | Alert_clear -> "alert_clear"

(* Client-operation kind codes carried in the [a] field of
   [Op_issue]/[Op_complete] (and the [b] field of [Aas_block]). *)

let op_search = 0
let op_insert = 1
let op_delete = 2
let op_scan = 3

let op_kind_name = function
  | 0 -> "search"
  | 1 -> "insert"
  | 2 -> "delete"
  | 3 -> "scan"
  | _ -> "op?"

(* Relay-outcome codes carried in the [b] field of [Relay]. *)

let relay_applied = 0
let relay_discarded = 1
let relay_forwarded = 2
let relay_catchup = 3

let relay_outcome_name = function
  | 0 -> "applied"
  | 1 -> "discarded"
  | 2 -> "forwarded"
  | 3 -> "catchup"
  | _ -> "outcome?"
