(** Ring-buffered time series, scraped on simulated time.

    A registry holds named series in registration order.  Each series is
    backed by one of three sources:

    - a {e gauge}: a closure sampled at every scrape point;
    - a {e cell}: an int ref returned to the owning subsystem, which
      writes it on its own schedule and has it sampled at every scrape;
    - a {e counter}: an existing interned [Stats] counter ref, scraped
      as-is (rates are derived offline from deltas).

    One scrape writes one slot per series into preallocated rings —
    no allocation, no strings, no hashing — so the scrape path can be
    driven from the simulator's probe hook between events.  All series
    share one timestamp ring: everything is scraped together.

    A disabled registry ([enabled = false], or the shared {!disabled})
    ignores registrations and scrapes; every operation on it is a cheap
    branch, so instrumented code needs no [if] of its own around
    registration or [Cell] updates. *)

type t

val default_every : int
(** Default scrape cadence: 512 simulated ticks. *)

val default_capacity : int
(** Default points retained per series: 64. *)

val create :
  ?enabled:bool -> ?every:int -> ?capacity:int -> ?label:string -> unit -> t
(** [create ()] is an enabled registry scraping every {!default_every}
    ticks, retaining {!default_capacity} points per series.  [every] and
    [capacity] must be >= 1. *)

val disabled : t
(** Shared inert registry: registrations are ignored, scrapes are a
    branch, renderings are empty. *)

val on : t -> bool
val every : t -> int
val capacity : t -> int
val label : t -> string

val gauge : t -> string -> (unit -> int) -> unit
(** Register a sampled-at-scrape gauge.  The closure must read existing
    state without allocating — it runs on the scrape path.  Duplicate
    names raise [Invalid_argument]. *)

val cell : t -> string -> int ref
(** Register a series backed by a caller-updated cell and return the
    cell.  On a disabled registry the returned ref is a dummy, so owners
    update it unconditionally. *)

val counter : t -> string -> int ref -> unit
(** Register an existing interned counter (e.g. a [Stats.counter]) to be
    scraped by value. *)

val scrape : t -> now:int -> unit
(** Take one scrape point at simulated time [now]: sample every source
    into its ring slot.  Allocation-free. *)

val scrape_count : t -> int
(** Total scrape points taken (including ones whose slots have since
    been overwritten in the rings). *)

val names : t -> string list
(** Registered series names, in registration order. *)

val points : t -> string -> (int * int) list
(** Retained (time, value) points for a series, oldest first; [] for an
    unknown name. *)

val last : t -> string -> (int * int) option
(** Latest retained point, if any scrape has happened. *)

val pp_prometheus : Format.formatter -> t -> unit
(** Prometheus text exposition of the latest scrape (dots in names map
    to underscores, prefixed [dbtree_]; the registry label becomes a
    [run] label). *)

val to_json : t -> string
(** Full dump — cadence, scrape count, and every retained point of every
    series — as a deterministic JSON object. *)

(** {2 Global force switch}

    Mirror of [Obs]'s forced-tracing switch, for CLI paths (`dbtree
    metrics`) that cannot thread a telemetry flag through an
    experiment's internal configs.  Cross-domain safe: the switch and
    cadence are Atomics, the collection list is mutex-guarded and
    therefore complete under [Par.map]; callers wanting a stable order
    must sort (by {!label}). *)

val force_enable : ?every:int -> unit -> unit
val force_disable : unit -> unit
val forced : unit -> bool
val forced_every : unit -> int

val note_registered : t -> unit
(** Record a registry for {!registered}; called by whoever creates a
    registry under {!forced}. *)

val registered : unit -> t list
(** Registries recorded since the last {!clear_registered}, in creation
    order. *)

val clear_registered : unit -> unit
