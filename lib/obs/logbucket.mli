(** Log-bucketing shared by [Stats.hist] (lib/sim) and {!Sketch}.

    16 sub-buckets per octave (<= 6.25% relative error on percentiles),
    values below 16 bucketed exactly.  Both consumers index the same
    bucket space, so window sketches merge into run-lifetime histograms
    and the two percentile implementations are comparable
    bucket-for-bucket. *)

val sub_bits : int
val linear : int

val num_buckets : int
(** Number of distinct bucket indices; [index] maps into
    [\[0, num_buckets)] for any non-negative 63-bit int. *)

val index : int -> int
(** Bucket index of a non-negative value. *)

val lower : int -> int
(** Smallest value mapping to the given bucket: [index (lower i) = i] and
    [lower (index v) <= v]. *)
