(* Chrome trace-event JSON exporter (Perfetto-loadable).

   Mapping: chrome "pid" = recorder index (one process group per
   cluster/table instance), chrome "tid" = simulated processor, "ts" =
   simulator ticks.  Client operations become async spans ("b"/"e"
   keyed by op id), message sends/receives become instants joined by
   flow arrows ("s"/"f" keyed by the send event id), everything else is
   an instant with its operands in "args".  Output is fully determined
   by the ring contents, so same seed => byte-identical file. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_common buf ~name ~ph ~pid ~tid ~ts =
  Buffer.add_string buf "{\"name\":\"";
  Buffer.add_string buf (escape name);
  Buffer.add_string buf "\",\"ph\":\"";
  Buffer.add_string buf ph;
  Buffer.add_string buf "\",\"pid\":";
  Buffer.add_string buf (string_of_int pid);
  Buffer.add_string buf ",\"tid\":";
  Buffer.add_string buf (string_of_int tid);
  Buffer.add_string buf ",\"ts\":";
  Buffer.add_string buf (string_of_int ts)

type emitter = {
  buf : Buffer.t;
  mutable first : bool;
}

let record em add =
  if em.first then em.first <- false else Buffer.add_char em.buf ',';
  Buffer.add_char em.buf '\n';
  add em.buf;
  ignore (Buffer.add_string em.buf "}")

let metadata em ~pid ~label =
  record em (fun buf ->
      add_common buf ~name:"process_name" ~ph:"M" ~pid ~tid:0 ~ts:0;
      Buffer.add_string buf ",\"args\":{\"name\":\"";
      Buffer.add_string buf (escape label);
      Buffer.add_string buf "\"}")

let thread_metadata em ~pid ~tid =
  record em (fun buf ->
      add_common buf ~name:"thread_name" ~ph:"M" ~pid ~tid ~ts:0;
      Buffer.add_string buf
        (Printf.sprintf ",\"args\":{\"name\":\"processor %d\"}" tid))

let args2 buf k1 v1 k2 v2 =
  Buffer.add_string buf
    (Printf.sprintf ",\"args\":{\"%s\":%d,\"%s\":%d}" k1 v1 k2 v2)

let instant em ~name ~cat ~pid ~tid ~ts ~k1 ~v1 ~k2 ~v2 =
  record em (fun buf ->
      add_common buf ~name ~ph:"i" ~pid ~tid ~ts;
      Buffer.add_string buf ",\"cat\":\"";
      Buffer.add_string buf cat;
      Buffer.add_string buf "\",\"s\":\"t\"";
      args2 buf k1 v1 k2 v2)

let flow em ~name ~ph ~pid ~tid ~ts ~id ~incoming =
  record em (fun buf ->
      add_common buf ~name ~ph ~pid ~tid ~ts;
      Buffer.add_string buf ",\"cat\":\"msg\",\"id\":";
      Buffer.add_string buf (string_of_int id);
      if incoming then Buffer.add_string buf ",\"bp\":\"e\"")

let async em ~name ~ph ~pid ~tid ~ts ~id ~k1 ~v1 ~k2 ~v2 =
  record em (fun buf ->
      add_common buf ~name ~ph ~pid ~tid ~ts;
      Buffer.add_string buf ",\"cat\":\"op\",\"id\":";
      Buffer.add_string buf (string_of_int id);
      args2 buf k1 v1 k2 v2)

let emit_event em t ~index (e : Obs.event) =
  let pid = index and tid = e.pid and ts = e.time in
  match e.kind with
  | Event.Op_issue ->
    async em
      ~name:(Event.op_kind_name e.a)
      ~ph:"b" ~pid ~tid ~ts ~id:e.op ~k1:"key" ~v1:e.b ~k2:"op" ~v2:e.op
  | Event.Op_complete ->
    async em
      ~name:(Event.op_kind_name e.a)
      ~ph:"e" ~pid ~tid ~ts ~id:e.op ~k1:"latency" ~v1:e.b ~k2:"op" ~v2:e.op
  | Event.Msg_send ->
    flow em ~name:(Obs.msg_name t e.b) ~ph:"s" ~pid ~tid ~ts ~id:e.id
      ~incoming:false
  | Event.Msg_recv ->
    (* Skip the flow finish when the matching send has been evicted from
       the ring: a finish without a start is a schema violation. *)
    if e.parent >= 0 && Obs.get t e.parent <> None then
      flow em ~name:(Obs.msg_name t e.b) ~ph:"f" ~pid ~tid ~ts ~id:e.parent
        ~incoming:true;
    instant em ~name:(Obs.msg_name t e.b) ~cat:"msg" ~pid ~tid ~ts ~k1:"src"
      ~v1:e.a ~k2:"op" ~v2:e.op
  | Event.Retx ->
    instant em ~name:"retx" ~cat:"net" ~pid ~tid ~ts ~k1:"dst" ~v1:e.a
      ~k2:"seq" ~v2:e.b
  | Event.Ack ->
    instant em ~name:"ack" ~cat:"net" ~pid ~tid ~ts ~k1:"dst" ~v1:e.a
      ~k2:"ackno" ~v2:e.b
  | (Event.Alert_raise | Event.Alert_clear) as k ->
    instant em ~name:(Event.name k) ~cat:"health" ~pid ~tid ~ts ~k1:"rule"
      ~v1:e.a ~k2:"value" ~v2:e.b
  | (Event.Relay | Event.Split_start | Event.Split_end | Event.Aas_block
    | Event.Aas_release | Event.Root_grow | Event.Migrate | Event.Join
    | Event.Unjoin | Event.Reclaim | Event.Park | Event.Unpark
    | Event.Crash | Event.Restart | Event.Replay | Event.Rejoin) as k ->
    instant em ~name:(Event.name k) ~cat:"protocol" ~pid ~tid ~ts ~k1:"a"
      ~v1:e.a ~k2:"b" ~v2:e.b

let to_string recorders =
  let em = { buf = Buffer.create 65536; first = true } in
  Buffer.add_string em.buf "{\"traceEvents\":[";
  List.iteri
    (fun index t ->
      let label =
        let l = Obs.label t in
        if l = "" then Printf.sprintf "trace %d" index else l
      in
      metadata em ~pid:index ~label;
      let tids =
        List.sort_uniq compare
          (List.map (fun (e : Obs.event) -> e.pid) (Obs.events t))
      in
      List.iter (fun tid -> thread_metadata em ~pid:index ~tid) tids;
      List.iter (emit_event em t ~index) (Obs.events t))
    recorders;
  Buffer.add_string em.buf "\n]}\n";
  Buffer.contents em.buf

let write ~path recorders =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string recorders))

(* ------------------------------------------------------------------ *)
(* Self-check: parse a trace file back and verify it is structurally a
   valid Chrome trace-event stream.                                    *)

let known_ph = [ "B"; "E"; "X"; "i"; "I"; "b"; "e"; "n"; "s"; "t"; "f"; "M" ]

let validate src =
  match Json.of_string src with
  | Error m -> Error ("not valid JSON: " ^ m)
  | Ok root -> (
    match Option.bind (Json.member "traceEvents" root) Json.to_list with
    | None -> Error "missing \"traceEvents\" array"
    | Some evs -> (
      (* Track async begin/end balance per (cat, id) and flow starts so
         finishes can be matched.  Keys are also kept in an
         insertion-ordered list so the final balance check iterates
         deterministically (no Hashtbl.fold). *)
      let async_open = Hashtbl.create 64 in
      let async_keys = ref [] in
      let flow_starts = Hashtbl.create 64 in
      let flow_finishes = ref [] in
      let check i ev =
        let str k = Option.bind (Json.member k ev) Json.to_string in
        let num k = Option.bind (Json.member k ev) Json.to_float in
        match str "ph" with
        | None -> Error (Printf.sprintf "event %d: missing \"ph\"" i)
        | Some ph when not (List.mem ph known_ph) ->
          Error (Printf.sprintf "event %d: unknown ph %S" i ph)
        | Some ph ->
          if str "name" = None then
            Error (Printf.sprintf "event %d: missing \"name\"" i)
          else if num "pid" = None || num "tid" = None then
            Error (Printf.sprintf "event %d: missing pid/tid" i)
          else if ph <> "M" && num "ts" = None then
            Error (Printf.sprintf "event %d: missing \"ts\"" i)
          else begin
            let id () = num "id" in
            (match ph with
            | "b" | "e" -> (
              match id () with
              | None -> ()
              | Some id ->
                let key = (Option.value (str "cat") ~default:"", id) in
                let d = if ph = "b" then 1 else -1 in
                let cur =
                  match Hashtbl.find_opt async_open key with
                  | Some n -> n
                  | None ->
                    async_keys := key :: !async_keys;
                    0
                in
                Hashtbl.replace async_open key (cur + d))
            | "s" -> (
              match id () with
              | None -> ()
              | Some id -> Hashtbl.replace flow_starts id ())
            | "f" -> (
              match id () with
              | None -> ()
              | Some id -> flow_finishes := (i, id) :: !flow_finishes)
            | _ -> ());
            Ok ()
          end
      in
      let rec all i = function
        | [] -> Ok ()
        | ev :: rest -> (
          match check i ev with Ok () -> all (i + 1) rest | e -> e)
      in
      match all 0 evs with
      | Error _ as e -> e
      | Ok () ->
        (* A span with more begins than ends is an operation that never
           completed (e.g. lost under fault injection) — legitimate data,
           rendered open-ended.  More ends than begins is a malformed
           stream. *)
        let unbalanced =
          List.filter_map
            (fun ((cat, id) as key) ->
              match Hashtbl.find_opt async_open key with
              | Some n when n < 0 -> Some (cat, id, n)
              | _ -> None)
            (List.rev !async_keys)
        in
        (match unbalanced with
        | (cat, id, n) :: _ ->
          Error
            (Printf.sprintf
               "async span cat=%S id=%g has %d more end(s) than begins" cat
               id (-n))
        | [] -> (
          let orphan =
            List.find_opt
              (fun (_, id) -> not (Hashtbl.mem flow_starts id))
              !flow_finishes
          in
          match orphan with
          | Some (i, id) ->
            Error
              (Printf.sprintf "event %d: flow finish id %g has no start" i id)
          | None -> Ok (List.length evs)))))
