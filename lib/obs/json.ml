(* Minimal JSON reader for the exporter's self-check.  The repo
   deliberately has no JSON dependency; this recursive-descent parser is
   enough to validate what Export writes (and what CI feeds back in).
   It accepts standard JSON; numbers are parsed as floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail "expected '%c' at %d, got '%c'" c st.pos c'
  | None -> fail "expected '%c' at %d, got end of input" c st.pos

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then (
    st.pos <- st.pos + n;
    v)
  else fail "invalid literal at %d" st.pos

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let escape () =
    st.pos <- st.pos + 1;
    match peek st with
    | None -> fail "unterminated escape at %d" st.pos
    | Some c ->
      st.pos <- st.pos + 1;
      (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then
            fail "truncated \\u escape at %d" st.pos;
          let hex = String.sub st.src st.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape at %d" st.pos
          in
          st.pos <- st.pos + 4;
          (* Encode the code point as UTF-8; surrogates are kept as-is
             bytes-wise, which is fine for validation purposes. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then (
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
          else (
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
      | c -> fail "bad escape '\\%c' at %d" c st.pos)
  in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at %d" st.pos
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      escape ();
      go ()
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "bad number %S at %d" s start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input at %d" st.pos
  | Some '{' -> parse_obj st
  | Some '[' -> parse_arr st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail "unexpected '%c' at %d" c st.pos

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then (
    st.pos <- st.pos + 1;
    Obj [])
  else
    let rec members acc =
      skip_ws st;
      let k = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        st.pos <- st.pos + 1;
        members ((k, v) :: acc)
      | Some '}' ->
        st.pos <- st.pos + 1;
        Obj (List.rev ((k, v) :: acc))
      | _ -> fail "expected ',' or '}' at %d" st.pos
    in
    members []

and parse_arr st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then (
    st.pos <- st.pos + 1;
    Arr [])
  else
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        st.pos <- st.pos + 1;
        elements (v :: acc)
      | Some ']' ->
        st.pos <- st.pos + 1;
        Arr (List.rev (v :: acc))
      | _ -> fail "expected ',' or ']' at %d" st.pos
    in
    elements []

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then
    fail "trailing garbage at %d" st.pos;
  v

let of_string src =
  match parse src with v -> Ok v | exception Parse_error m -> Error m

(* Accessors used by the validator. *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function Arr l -> Some l | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_float = function Num f -> Some f | _ -> None
