(* Ring-buffered time series, scraped on simulated time.

   A registry holds named series in registration order; each series is
   backed by one of three sources: a [Gauge] closure sampled at scrape
   time, a [Cell] (an int ref the owning subsystem writes on its own
   schedule), or a [Counter] (an existing interned [Stats] counter ref,
   scraped as-is).  One scrape writes one slot per series into
   preallocated rings — no allocation, no strings, no hashing — so the
   scrape path is safe to drive from the simulator's probe hook.

   Determinism: scrape times come from the simulation clock and sources
   read only simulation state, so the ring contents are a pure function
   of the run.  Rendering (Prometheus text, JSON) happens offline. *)

type source = Gauge of (unit -> int) | Cell of int ref | Counter of int ref

type series = {
  s_name : string;
  source : source;
  values : int array;  (* ring, indexed by scrape index mod capacity *)
}

type t = {
  enabled : bool;
  every : int;  (* scrape cadence in simulated ticks *)
  cap : int;  (* scrape points retained per series *)
  label : string;
  mutable series : series array;
  mutable n : int;
  times : int array;  (* shared timestamp ring — all series scrape together *)
  mutable scrapes : int;  (* total scrape points ever taken *)
}

let default_every = 512
let default_capacity = 64

let create ?(enabled = true) ?(every = default_every)
    ?(capacity = default_capacity) ?(label = "") () =
  if every < 1 then invalid_arg "Series.create: every must be >= 1";
  if capacity < 1 then invalid_arg "Series.create: capacity must be >= 1";
  {
    enabled;
    every;
    cap = capacity;
    label;
    series = Array.make 0 { s_name = ""; source = Cell (ref 0); values = [||] };
    n = 0;
    times = Array.make (if enabled then capacity else 0) 0;
    scrapes = 0;
  }

let disabled = create ~enabled:false ~label:"" ()
let on t = t.enabled
let every t = t.every
let capacity t = t.cap
let label t = t.label
let scrape_count t = t.scrapes

let register t name source =
  if t.enabled then begin
    for i = 0 to t.n - 1 do
      if t.series.(i).s_name = name then
        Fmt.invalid_arg "Series: duplicate series %S" name
    done;
    if t.n = Array.length t.series then begin
      let grown =
        Array.make (max 8 (2 * t.n))
          { s_name = ""; source = Cell (ref 0); values = [||] }
      in
      Array.blit t.series 0 grown 0 t.n;
      t.series <- grown
    end;
    t.series.(t.n) <- { s_name = name; source; values = Array.make t.cap 0 };
    t.n <- t.n + 1
  end

let gauge t name f = register t name (Gauge f)

let cell t name =
  let r = ref 0 in
  register t name (Cell r);
  r

let counter t name r = register t name (Counter r)

let[@inline] sample = function
  | Gauge f -> f ()
  | Cell r -> !r
  | Counter r -> !r

(* One scrape point: a timestamp slot plus one value slot per series.
   Preallocated rings only — this runs between simulation events. *)
let scrape t ~now =
  if t.enabled then begin
    let slot = t.scrapes mod t.cap in
    t.times.(slot) <- now;
    for i = 0 to t.n - 1 do
      let s = Array.unsafe_get t.series i in
      s.values.(slot) <- sample s.source
    done;
    t.scrapes <- t.scrapes + 1
  end

(* ------------------------------------------------------------------ *)
(* Reading (offline)                                                   *)

let names t = List.init t.n (fun i -> t.series.(i).s_name)

let find t name =
  let rec go i =
    if i >= t.n then None
    else if t.series.(i).s_name = name then Some t.series.(i)
    else go (i + 1)
  in
  go 0

let retained t = min t.scrapes t.cap

let points t name =
  match find t name with
  | None -> []
  | Some s ->
    let k = retained t in
    List.init k (fun j ->
        let idx = t.scrapes - k + j in
        let slot = idx mod t.cap in
        (t.times.(slot), s.values.(slot)))

let last t name =
  match points t name with
  | [] -> None
  | pts -> Some (List.nth pts (List.length pts - 1))

(* ------------------------------------------------------------------ *)
(* Rendering (offline)                                                 *)

(* Prometheus metric names admit [a-zA-Z0-9_:]; the registry's dotted
   names map dots (and anything else) to underscores. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let source_type = function
  | Gauge _ | Cell _ -> "gauge"
  | Counter _ -> "counter"

let pp_prometheus ppf t =
  let k = retained t in
  for i = 0 to t.n - 1 do
    let s = t.series.(i) in
    let pn = "dbtree_" ^ prom_name s.s_name in
    Fmt.pf ppf "# TYPE %s %s@." pn (source_type s.source);
    let v =
      if k = 0 then sample s.source
      else s.values.((t.scrapes - 1) mod t.cap)
    in
    if t.label = "" then Fmt.pf ppf "%s %d@." pn v
    else Fmt.pf ppf "%s{run=%S} %d@." pn t.label v
  done

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"label\":\"%s\",\"every\":%d,\"scrapes\":%d,\"series\":["
       (json_escape t.label) t.every t.scrapes);
  for i = 0 to t.n - 1 do
    if i > 0 then Buffer.add_char buf ',';
    let s = t.series.(i) in
    Buffer.add_string buf
      (Printf.sprintf "\n{\"name\":\"%s\",\"type\":\"%s\",\"points\":["
         (json_escape s.s_name) (source_type s.source));
    List.iteri
      (fun j (time, v) ->
        if j > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "[%d,%d]" time v))
      (points t s.s_name);
    Buffer.add_string buf "]}"
  done;
  Buffer.add_string buf "\n]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Global force switch                                                 *)

(* Mirror of [Obs]'s forced-tracing switch, for `dbtree metrics` and any
   CLI path that cannot thread a telemetry flag through an experiment's
   internal configs: when forced, every cluster-owned registry created
   afterwards is enabled (at [forced_every] cadence) and recorded here
   for a merged dump after the run.

   Registry creation is par-reachable (E17 cells build clusters in
   domains), so this is cross-domain state: the switch and cadence are
   Atomics read once per create, and the collection list is guarded by
   [registry_mu] — complete under [Par.map], ordered by the caller. *)

let force_on = Atomic.make false
let force_every = Atomic.make default_every
let registry_mu = Mutex.create ()

(* dbrace: guarded -- every touch below is inside Mutex.protect registry_mu *)
let registry : t list ref = ref []

let force_enable ?(every = default_every) () =
  Atomic.set force_every every;
  Atomic.set force_on true

let force_disable () = Atomic.set force_on false
let forced () = Atomic.get force_on
let forced_every () = Atomic.get force_every

let note_registered t =
  Mutex.protect registry_mu (fun () -> registry := t :: !registry)

let registered () = List.rev (Mutex.protect registry_mu (fun () -> !registry))
let clear_registered () = Mutex.protect registry_mu (fun () -> registry := [])
