(** Causal trace recorder: a preallocated ring of typed events.

    Recording is allocation-free and string-free — an enabled {!emit} is
    seven integer array stores; a disabled one is a single branch
    returning [-1].  Each event carries the simulated time, the
    processor, the client-operation id it serves, and the id of its
    causal parent event, which is what lets {!Query} stitch relayed
    inserts, half-split fan-outs, and retransmissions back into the span
    of the operation that caused them.

    The ring holds the most recent [capacity] events; older ones are
    overwritten (see {!dropped}).  Event ids are monotonic across the
    whole run, so a parent link to an evicted event is detectable
    ({!get} returns [None]) rather than silently wrong. *)

type t

val create : ?enabled:bool -> ?capacity:int -> ?label:string -> unit -> t
(** [capacity] defaults to [65536] events (~3.7 MB).  If {!force_enable}
    was called earlier, the instance is created enabled (with at least
    the forced capacity) and registered for {!registered}. *)

val disabled : t
(** A shared always-off instance for components that were given no
    recorder.  Never enabled, never registered. *)

val on : t -> bool
val set_enabled : t -> bool -> unit
val label : t -> string

val set_msg_names : t -> (int -> string) -> unit
(** Install the message-kind naming function (typically
    [Msg.kind_name]) used by {!pp} and the exporter.  Rendering only —
    never called while recording. *)

val msg_name : t -> int -> string

(** {2 Recording} *)

val emit :
  t ->
  time:int ->
  pid:int ->
  op:int ->
  parent:int ->
  kind:Event.kind ->
  a:int ->
  b:int ->
  int
(** Record one event and return its id, or [-1] when disabled.  [op] and
    [parent] are [-1] when unknown. *)

val emit_here : t -> time:int -> pid:int -> kind:Event.kind -> a:int -> b:int -> int
(** {!emit} with [op]/[parent] taken from the ambient context. *)

(** {2 Ambient causal context}

    The network sets the context around each message delivery (op and
    the [Msg_recv] event id) and the protocol sets it at op issue, so
    code in between can {!emit_here} without threading lineage through
    every call. *)

val set_context : t -> op:int -> parent:int -> unit
val reset_context : t -> unit
val cur_op : t -> int
val cur_parent : t -> int

(** {2 Reading the ring} *)

type event = {
  id : int;
  time : int;
  pid : int;
  op : int;
  parent : int;
  kind : Event.kind;
  a : int;
  b : int;
}

val length : t -> int
(** Total events ever emitted (not just retained). *)

val dropped : t -> int
(** Events overwritten by ring wraparound. *)

val get : t -> int -> event option
(** [get t id] is the event with that id, or [None] if it was never
    emitted or has been evicted from the ring. *)

val events : t -> event list
(** Retained events, oldest first. *)

val clear : t -> unit

(** {2 Rendering} *)

val pp_event : t -> event Fmt.t
val pp : t Fmt.t
(** Time-ordered human rendering of the retained events, one per line in
    the form [[  time] p0: ...]. *)

(** {2 Global force switch}

    For [dbtree run --trace]: experiments construct their configurations
    internally, so the CLI cannot pass a flag through them.  After
    {!force_enable}, every recorder subsequently {!create}d is enabled
    and registered; the CLI exports the merged set after the run.

    This is the one piece of [Obs] state shared across domains
    ({!create} runs inside parallel experiment cells): the switch is an
    Atomic read once per create, and the registry is mutex-guarded, so
    forcing tracing over a [Par.map] registers every ring exactly
    once. *)

val force_enable : ?capacity:int -> unit -> unit
val force_disable : unit -> unit
(** Switch forcing back off (the registry is kept — {!clear_registered}
    drops it).  For tests that must not leak the forced state. *)

val forced : unit -> bool

val registered : unit -> t list
(** Recorders created since {!force_enable}, in creation order.  Under a
    parallel run, creation order across domains is scheduling-dependent:
    the set is complete and deterministic, the order is not — sort by
    {!label} for a stable view. *)

val clear_registered : unit -> unit
