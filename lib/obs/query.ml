(* Offline queries over a recorded ring: per-op spans, lineage checks,
   stall detection.  Everything here runs after the simulation, so plain
   list processing is fine. *)

type span = {
  op : int;
  issue : Obs.event option;
  complete : Obs.event option;
  events : Obs.event list;  (* all events attributed to the op, id order *)
  hops : int;  (* message deliveries ([Msg_recv]) in the span *)
  relays : int;
  retxs : int;
  splits : int;  (* [Split_start] events attributed to the op *)
  in_flight : int;  (* total ticks spent on the wire, over resolvable
                       send -> recv parent links *)
}

let by_op t op =
  List.filter (fun (e : Obs.event) -> e.op = op) (Obs.events t)

let ops t =
  let all =
    List.filter_map
      (fun (e : Obs.event) -> if e.op >= 0 then Some e.op else None)
      (Obs.events t)
  in
  List.sort_uniq compare all

let find_kind k evs =
  List.find_opt (fun (e : Obs.event) -> e.kind = k) evs

let count_kind k evs =
  List.length (List.filter (fun (e : Obs.event) -> e.kind = k) evs)

let span t op =
  let events = by_op t op in
  let in_flight =
    List.fold_left
      (fun acc (e : Obs.event) ->
        if e.kind <> Event.Msg_recv then acc
        else
          match Obs.get t e.parent with
          | Some p when p.kind = Event.Msg_send -> acc + (e.time - p.time)
          | _ -> acc)
      0 events
  in
  {
    op;
    issue = find_kind Event.Op_issue events;
    complete = find_kind Event.Op_complete events;
    events;
    hops = count_kind Event.Msg_recv events;
    relays = count_kind Event.Relay events;
    retxs = count_kind Event.Retx events;
    splits = count_kind Event.Split_start events;
    in_flight;
  }

let spans t = List.map (span t) (ops t)

(* A span is complete when the op was both issued and completed inside
   the retained window and every causal link in it resolves: each event
   with a parent can be chased back to one with no parent (the issue, or
   a context-free send).  Ring eviction shows up here as an unresolvable
   parent, not as silent success. *)
let complete_span t (s : span) =
  s.issue <> None && s.complete <> None
  && List.for_all
       (fun (e : Obs.event) -> e.parent < 0 || Obs.get t e.parent <> None)
       s.events

let latency (s : span) =
  match (s.issue, s.complete) with
  | Some i, Some c -> Some (c.time - i.time)
  | _ -> None

(* Ops issued but not completed whose last attributed event is at least
   [idle] ticks before [now] — the trace-side view of a stuck op. *)
let stalled t ~now ~idle =
  List.filter
    (fun s ->
      s.complete = None && s.issue <> None
      &&
      let last =
        List.fold_left (fun m (e : Obs.event) -> max m e.time) 0 s.events
      in
      now - last >= idle)
    (spans t)

(* AAS blocking windows reconstructed from [Aas_release] events: each
   carries the duration in [b], so the window is [time - b, time]. *)
type aas_window = { aas_pid : int; aas_node : int; aas_from : int; aas_until : int }

let aas_windows t =
  List.filter_map
    (fun (e : Obs.event) ->
      if e.kind = Event.Aas_release then
        Some
          {
            aas_pid = e.pid;
            aas_node = e.a;
            aas_from = e.time - e.b;
            aas_until = e.time;
          }
      else None)
    (Obs.events t)
