(* Typed SLO rule engine, evaluated at scrape points.

   A rule is a named threshold over a sampled signal.  Evaluation is a
   hysteresis-free level check: the first breaching evaluation opens an
   alert (emitting [Alert_raise] into the trace ring), the first
   non-breaching one closes it (emitting the paired [Alert_clear]), and
   [finish] closes whatever is still open so run summaries are complete.
   Everything is driven by simulated time through the scrape hook, so
   alert histories are deterministic. *)

type severity = Info | Warn | Crit

let severity_name = function Info -> "info" | Warn -> "warn" | Crit -> "crit"

type cmp = Above | Below

type rule = {
  r_name : string;
  r_severity : severity;
  signal : unit -> int;
  threshold : int;
  cmp : cmp;
  mutable active_since : int;  (* -1 when not breaching *)
  mutable peak : int;  (* worst value seen while active *)
  mutable fired : int;  (* alerts opened over the run *)
  mutable active_ticks : int;  (* total breach duration, closed alerts *)
}

type alert = {
  al_rule : string;
  al_severity : severity;
  al_from : int;
  al_until : int;  (* close time; [finish]'s time for still-open alerts *)
  al_peak : int;
}

type t = {
  obs : Obs.t;
  mutable rules : rule array;
  mutable n : int;
  mutable closed : alert list;  (* newest first; reversed by [alerts] *)
}

let dummy_rule =
  {
    r_name = "";
    r_severity = Info;
    signal = (fun () -> 0);
    threshold = 0;
    cmp = Above;
    active_since = -1;
    peak = 0;
    fired = 0;
    active_ticks = 0;
  }

let create ?(obs = Obs.disabled) () =
  { obs; rules = Array.make 0 dummy_rule; n = 0; closed = [] }

let add_rule t ~name ?(severity = Warn) ?(cmp = Above) ~signal ~threshold () =
  for i = 0 to t.n - 1 do
    if t.rules.(i).r_name = name then
      Fmt.invalid_arg "Health: duplicate rule %S" name
  done;
  if t.n = Array.length t.rules then begin
    let grown = Array.make (max 4 (2 * t.n)) dummy_rule in
    Array.blit t.rules 0 grown 0 t.n;
    t.rules <- grown
  end;
  t.rules.(t.n) <-
    {
      r_name = name;
      r_severity = severity;
      signal;
      threshold;
      cmp;
      active_since = -1;
      peak = 0;
      fired = 0;
      active_ticks = 0;
    };
  t.n <- t.n + 1

let[@inline] breaching r v =
  match r.cmp with Above -> v > r.threshold | Below -> v < r.threshold

let[@inline] worse r a b =
  match r.cmp with Above -> max a b | Below -> min a b

let close t ~now i r =
  let dur = now - r.active_since in
  r.active_ticks <- r.active_ticks + dur;
  t.closed <-
    (* dbperf: alloc-ok -- one closed-alert record per alert transition; transitions are edge events, bounded by rules x scrapes *)
    {
      al_rule = r.r_name;
      al_severity = r.r_severity;
      al_from = r.active_since;
      al_until = now;
      al_peak = r.peak;
    }
    :: t.closed;
  r.active_since <- -1;
  ignore
    (Obs.emit_here t.obs ~time:now ~pid:0 ~kind:Event.Alert_clear ~a:i ~b:dur)

(* One evaluation pass over every rule, at a scrape point. *)
let evaluate t ~now =
  for i = 0 to t.n - 1 do
    let r = t.rules.(i) in
    let v = r.signal () in
    if breaching r v then
      if r.active_since < 0 then begin
        r.active_since <- now;
        r.peak <- v;
        r.fired <- r.fired + 1;
        ignore
          (Obs.emit_here t.obs ~time:now ~pid:0 ~kind:Event.Alert_raise ~a:i
             ~b:v)
      end
      else r.peak <- worse r r.peak v
    else if r.active_since >= 0 then close t ~now i r
  done

(* Close whatever is still breaching, so the run summary accounts for
   every opened alert (and every [Alert_raise] gets its paired clear). *)
let finish t ~now =
  for i = 0 to t.n - 1 do
    let r = t.rules.(i) in
    if r.active_since >= 0 then close t ~now i r
  done

let rules t = List.init t.n (fun i -> t.rules.(i).r_name)
let alerts t = List.rev t.closed

let fired t =
  let n = ref 0 in
  for i = 0 to t.n - 1 do
    n := !n + t.rules.(i).fired
  done;
  !n

let active t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    let r = t.rules.(i) in
    if r.active_since >= 0 then acc := (r.r_name, r.active_since) :: !acc
  done;
  !acc

let active_count t = List.length (active t)

type summary_row = {
  su_rule : string;
  su_severity : severity;
  su_fired : int;
  su_active_ticks : int;
  su_peak : int;  (* worst value over all closed alerts; 0 if none *)
}

let summary t =
  List.init t.n (fun i ->
      let r = t.rules.(i) in
      let peak =
        List.fold_left
          (fun acc (al : alert) ->
            if al.al_rule = r.r_name then worse r acc al.al_peak else acc)
          0 t.closed
      in
      {
        su_rule = r.r_name;
        su_severity = r.r_severity;
        su_fired = r.fired;
        su_active_ticks = r.active_ticks;
        su_peak = peak;
      })

let pp_summary ppf t =
  List.iter
    (fun s ->
      Fmt.pf ppf "%-24s %-5s fired=%d active=%d ticks peak=%d@." s.su_rule
        (severity_name s.su_severity)
        s.su_fired s.su_active_ticks s.su_peak)
    (summary t)
