(** Monomorphic event queue: the simulator's hot path.

    A binary min-heap specialised to the simulator's needs: each pending
    event is a single unboxed [int] key — the packed pair [(time, seq)] —
    in one array, with its action in a parallel array at the same index.
    Sifting compares native ints directly (no closure call per comparison,
    no boxed event record per element), which is what makes
    [Sim.schedule]/[Sim.step] cheap enough to disappear behind protocol
    costs.

    Keys order exactly like the lexicographic pair [(time, seq)] as long as
    both components stay below {!max_time} / {!max_seq}; {!Sim.schedule}
    enforces that bound. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val max_time : int
(** Exclusive upper bound on packable times (2{^31}). *)

val max_seq : int
(** Exclusive upper bound on packable sequence numbers (2{^31}). *)

val pack : time:int -> seq:int -> int
(** [pack ~time ~seq] is the key ordering like [(time, seq)]
    lexicographically.  Requires [0 <= time < max_time] and
    [0 <= seq < max_seq] (unchecked here; the simulator checks once per
    schedule). *)

val time_of_key : int -> int
(** The [time] component of a packed key. *)

val add : t -> key:int -> (unit -> unit) -> unit

val min_key : t -> int
(** Key of the minimum pending event; [Stdlib.max_int] when empty, so a
    horizon comparison needs no option allocation. *)

val pop_min : t -> unit -> unit
(** Remove and return the action with the smallest key.  The vacated slot
    is overwritten with a no-op closure so the queue never retains a popped
    action's object graph.  @raise Invalid_argument when empty. *)

val clear : t -> unit
(** Drop all pending events (and any references to their actions). *)
