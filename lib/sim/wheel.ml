(* Calendar event queue: the simulator's replacement for a single binary
   heap on the per-event hot path.

   Near events — delay < [window] ticks, which covers every latency,
   retransmit timeout and balancer period the simulations use — go
   straight into a per-time bucket: an append, no sifting.  Within the
   active window [pos, pos + window) each slot corresponds to exactly one
   virtual time (slot = time mod window), so a bucket is a run of
   same-timestamp events in arrival order and popping is a pointer bump —
   same-time runs drain in a batch without touching any heap.

   Two small heaps remain, both off the per-event path:

   - [times]: a 4-ary min-heap of the *distinct* occupied bucket times.
     It is touched once per distinct timestamp (push when a bucket goes
     nonempty, pop when it drains), not once per event, so under load its
     cost amortizes across every event sharing a tick.
   - the overflow heap: events scheduled [window] or more ticks out,
     keyed by the same packed (time, seq) ints as [Evq].  Whenever [pos]
     advances, everything with time < pos + window transfers into the
     ring.

   Ordering is byte-identical to the old global (time, insertion) heap:
   within a bucket, append order is schedule order; an overflow event for
   time T was scheduled at or before T - window, while any direct append
   to T's bucket happens at sim-time > T - window, and transfers run
   before the popped event executes — so transferred events always
   precede same-bucket direct appends, and same-time overflow entries
   transfer in packed-key (seq) order. *)

let window_bits = 11
let window = 1 lsl window_bits
let mask = window - 1

(* Typed events carry three ints and one boxed payload; [h] is the
   dispatcher's handler id.  [h = -1] marks a closure event: [o] is the
   (unit -> unit) itself and [a]/[b]/[c] are dead. *)
type cell = {
  mutable time : int;
  mutable h : int;
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable o : Obj.t;
}

let null_obj = Obj.repr 0
let make_cell () = { time = 0; h = -1; a = 0; b = 0; c = 0; o = null_obj }

type bucket = {
  (* The first event lives inline in the record: a tick that receives a
     single event (the sparse common case — think timer chains) costs one
     cache line and zero array allocations.  The parallel arrays back
     entries 2..n of a same-timestamp batch; entry [i > 0] of the bucket
     is array slot [i - 1].  Field order matters: the seven fields a
     sparse append/pop touches come first so they share the record's
     initial cache line; the array pointers only load for batches. *)
  mutable blen : int;  (* entries appended (inline slot included) *)
  mutable bhead : int;  (* entries already popped *)
  mutable h0 : int;
  mutable a0 : int;
  mutable b0 : int;
  mutable c0 : int;
  mutable o0 : Obj.t;
  mutable bh : int array;
  mutable ba : int array;
  mutable bb : int array;
  mutable bc : int array;
  mutable bo : Obj.t array;
}

(* Overflow entries are rare (no default configuration schedules past the
   window), so boxing one record per far event is fine. *)
type entry = { eh : int; ea : int; eb : int; ec : int; eo : Obj.t }

let null_entry = { eh = -1; ea = 0; eb = 0; ec = 0; eo = null_obj }

type t = {
  buckets : bucket array;
  (* 4-ary min-heap of distinct occupied bucket times *)
  mutable tkeys : int array;
  mutable tsize : int;
  mutable pos : int;  (* last popped time; ring times lie in [pos, pos+window) *)
  mutable ring_count : int;
  (* overflow heap: packed (time, seq) keys, parallel entry payloads *)
  mutable okeys : int array;
  mutable oents : entry array;
  mutable osize : int;
  mutable oseq : int;  (* overflow insertions ever; the packed-clock budget *)
}

let create () =
  {
    buckets =
      Array.init window (fun _ ->
          {
            blen = 0;
            bhead = 0;
            h0 = -1;
            a0 = 0;
            b0 = 0;
            c0 = 0;
            o0 = null_obj;
            bh = [||];
            ba = [||];
            bb = [||];
            bc = [||];
            bo = [||];
          });
    tkeys = Array.make 16 0;
    tsize = 0;
    pos = 0;
    ring_count = 0;
    okeys = [||];
    oents = [||];
    osize = 0;
    oseq = 0;
  }

let length t = t.ring_count + t.osize
let is_empty t = t.ring_count = 0 && t.osize = 0
let overflow_seq t = t.oseq
let overflow_depth t = t.osize

(* ---- times heap (int keys, all distinct) ---- *)

let times_push t key =
  let cap = Array.length t.tkeys in
  if t.tsize = cap then begin
    (* dbperf: alloc-ok -- times-heap doubling, amortized O(1) per push *)
    let nk = Array.make (cap * 2) 0 in
    Array.blit t.tkeys 0 nk 0 t.tsize;
    t.tkeys <- nk
  end;
  let keys = t.tkeys in
  let i = ref t.tsize in
  t.tsize <- t.tsize + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) lsr 2 in
    let pk = Array.unsafe_get keys parent in
    if pk > key then begin
      Array.unsafe_set keys !i pk;
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set keys !i key

let times_min t = Array.unsafe_get t.tkeys 0

(* Drop the minimum (the caller just drained its bucket). *)
let times_pop t =
  let keys = t.tkeys in
  let n = t.tsize - 1 in
  t.tsize <- n;
  if n > 0 then begin
    let k = Array.unsafe_get keys n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let base = (!i lsl 2) + 1 in
      if base >= n then continue := false
      else begin
        let last = if base + 3 < n then base + 3 else n - 1 in
        let c = ref base in
        let ck = ref (Array.unsafe_get keys base) in
        for j = base + 1 to last do
          let kj = Array.unsafe_get keys j in
          if kj < !ck then begin
            c := j;
            ck := kj
          end
        done;
        if !ck < k then begin
          Array.unsafe_set keys !i !ck;
          i := !c
        end
        else continue := false
      end
    done;
    Array.unsafe_set keys !i k
  end

(* ---- buckets ---- *)

(* Grow the array side, which holds [blen - 1] entries (the first entry
   is inline in the record). *)
let bucket_grow b =
  let cap = Array.length b.bh in
  let ncap = if cap = 0 then 4 else cap * 2 in
  let n = b.blen - 1 in
  (* dbperf: alloc-ok -- growth-path closure: [bucket_grow] runs only on a bucket doubling *)
  let gi src =
    (* dbperf: alloc-ok -- bucket doubling, amortized O(1) per append *)
    let a = Array.make ncap 0 in
    Array.blit src 0 a 0 n;
    a
  in
  b.bh <- gi b.bh;
  b.ba <- gi b.ba;
  b.bb <- gi b.bb;
  b.bc <- gi b.bc;
  (* dbperf: alloc-ok -- bucket doubling, amortized O(1) per append *)
  let o = Array.make ncap null_obj in
  Array.blit b.bo 0 o 0 n;
  b.bo <- o

let[@inline] bucket_append t ~time ~h ~a ~b ~c ~o =
  let bk = Array.unsafe_get t.buckets (time land mask) in
  let i = bk.blen in
  if i = 0 then begin
    bk.h0 <- h;
    bk.a0 <- a;
    bk.b0 <- b;
    bk.c0 <- c;
    bk.o0 <- o
  end
  else begin
    let j = i - 1 in
    if j = Array.length bk.bh then bucket_grow bk;
    Array.unsafe_set bk.bh j h;
    Array.unsafe_set bk.ba j a;
    Array.unsafe_set bk.bb j b;
    Array.unsafe_set bk.bc j c;
    Array.unsafe_set bk.bo j o
  end;
  bk.blen <- i + 1;
  t.ring_count <- t.ring_count + 1;
  if i = 0 then times_push t time

(* ---- overflow heap ---- *)

let over_push t ~key entry =
  let cap = Array.length t.okeys in
  if t.osize = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    (* dbperf: alloc-ok -- overflow-heap doubling, amortized O(1) per far-scheduled event *)
    let nk = Array.make ncap 0 and ne = Array.make ncap null_entry in
    Array.blit t.okeys 0 nk 0 t.osize;
    Array.blit t.oents 0 ne 0 t.osize;
    t.okeys <- nk;
    t.oents <- ne
  end;
  let keys = t.okeys and ents = t.oents in
  let i = ref t.osize in
  t.osize <- t.osize + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) lsr 2 in
    let pk = Array.unsafe_get keys parent in
    if pk > key then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set ents !i (Array.unsafe_get ents parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set ents !i entry

let over_min_time t = Evq.time_of_key (Array.unsafe_get t.okeys 0)

let over_pop t =
  let keys = t.okeys and ents = t.oents in
  let time = Evq.time_of_key (Array.unsafe_get keys 0) in
  let e = Array.unsafe_get ents 0 in
  let n = t.osize - 1 in
  t.osize <- n;
  let k = Array.unsafe_get keys n in
  let en = Array.unsafe_get ents n in
  Array.unsafe_set ents n null_entry;
  if n > 0 then begin
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let base = (!i lsl 2) + 1 in
      if base >= n then continue := false
      else begin
        let last = if base + 3 < n then base + 3 else n - 1 in
        let c = ref base in
        let ck = ref (Array.unsafe_get keys base) in
        for j = base + 1 to last do
          let kj = Array.unsafe_get keys j in
          if kj < !ck then begin
            c := j;
            ck := kj
          end
        done;
        if !ck < k then begin
          Array.unsafe_set keys !i !ck;
          Array.unsafe_set ents !i (Array.unsafe_get ents !c);
          i := !c
        end
        else continue := false
      end
    done;
    Array.unsafe_set keys !i k;
    Array.unsafe_set ents !i en
  end;
  (* dbperf: alloc-ok -- overflow transfer only: no default configuration schedules past the window *)
  (time, e)

(* Pull every overflow event now inside the window into its bucket.
   Runs right after [pos] advances and before the popped event executes,
   which is what keeps transferred events ahead of any same-bucket direct
   append (see the header comment). *)
let transfer t =
  let lim = t.pos + window in
  while t.osize > 0 && over_min_time t < lim do
    let time, e = over_pop t in
    bucket_append t ~time ~h:e.eh ~a:e.ea ~b:e.eb ~c:e.ec ~o:e.eo
  done

(* ---- scheduling ---- *)

let[@inline] schedule_typed t ~time ~h ~a ~b ~c ~o =
  if time - t.pos < window then bucket_append t ~time ~h ~a ~b ~c ~o
  else begin
    let key = Evq.pack ~time ~seq:t.oseq in
    t.oseq <- t.oseq + 1;
    (* dbperf: alloc-ok -- one boxed entry per far event; overflow is rare by design (see the type comment) *)
    over_push t ~key { eh = h; ea = a; eb = b; ec = c; eo = o }
  end

let schedule t ~time action =
  schedule_typed t ~time ~h:(-1) ~a:0 ~b:0 ~c:0 ~o:(Obj.repr action)

(* ---- popping ---- *)

let next_time t =
  let bk = Array.unsafe_get t.buckets (t.pos land mask) in
  if bk.bhead < bk.blen then t.pos
  else if t.ring_count > 0 then times_min t
  else if t.osize > 0 then over_min_time t
  else max_int

let[@inline] take t (bk : bucket) cell =
  let i = bk.bhead in
  cell.time <- t.pos;
  (* Clear the popped [o] slot so the closure/message is not retained. *)
  if i = 0 then begin
    cell.h <- bk.h0;
    cell.a <- bk.a0;
    cell.b <- bk.b0;
    cell.c <- bk.c0;
    cell.o <- bk.o0;
    bk.o0 <- null_obj
  end
  else begin
    let j = i - 1 in
    cell.h <- Array.unsafe_get bk.bh j;
    cell.a <- Array.unsafe_get bk.ba j;
    cell.b <- Array.unsafe_get bk.bb j;
    cell.c <- Array.unsafe_get bk.bc j;
    cell.o <- Array.unsafe_get bk.bo j;
    Array.unsafe_set bk.bo j null_obj
  end;
  bk.bhead <- i + 1;
  t.ring_count <- t.ring_count - 1;
  if bk.bhead = bk.blen then begin
    bk.bhead <- 0;
    bk.blen <- 0;
    times_pop t
  end

let pop_into t cell =
  (* Fast path: the bucket at the current time is still draining — the
     same-timestamp batch case, no heap contact at all. *)
  let bk = Array.unsafe_get t.buckets (t.pos land mask) in
  if bk.bhead < bk.blen then begin
    take t bk cell;
    true
  end
  else if t.ring_count = 0 && t.osize = 0 then false
  else begin
    (* Advance to the next occupied time.  Ring times always precede
       overflow times (transfer invariant), so the ring minimum wins
       whenever the ring is nonempty. *)
    if t.ring_count > 0 then t.pos <- times_min t
    else t.pos <- over_min_time t;
    if t.osize > 0 then transfer t;
    let bk = Array.unsafe_get t.buckets (t.pos land mask) in
    take t bk cell;
    true
  end
