(* Packed layout: key = (time lsl 31) lor seq, both components < 2^31, so
   integer comparison of keys is lexicographic comparison of (time, seq)
   and the whole key fits a 63-bit native int. *)

let seq_bits = 31
let max_time = 1 lsl seq_bits
let max_seq = 1 lsl seq_bits
let pack ~time ~seq = (time lsl seq_bits) lor seq
let time_of_key key = key lsr seq_bits
let nop () = ()

type t = {
  mutable keys : int array;
  mutable acts : (unit -> unit) array;
  mutable size : int;
}

(* Invariant: [size <= Array.length keys = Array.length acts], and every
   index touched below is < size (or = the old size in [add], which [grow]
   has just made in-bounds) — so the unsafe accesses in the sift loops are
   in bounds by construction.  They matter: per-event queue work is a
   handful of array touches, and checked access is a measurable fraction
   of it. *)

let create () = { keys = [||]; acts = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nkeys = Array.make ncap 0 in
    let nacts = Array.make ncap nop in
    Array.blit t.keys 0 nkeys 0 t.size;
    Array.blit t.acts 0 nacts 0 t.size;
    t.keys <- nkeys;
    t.acts <- nacts
  end

(* The heap is 4-ary: keys are unique (every pack includes a fresh seq),
   so heap shape cannot affect the pop order, and the shallower tree
   roughly halves the levels a sift touches — the queue's cost is cache
   misses on [keys], not compares. *)

let add t ~key act =
  grow t;
  let keys = t.keys and acts = t.acts in
  (* Bubble a hole up from the end; each level is one int compare and at
     most two array writes. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) lsr 2 in
    let pk = Array.unsafe_get keys parent in
    if pk > key then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set acts !i (Array.unsafe_get acts parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set acts !i act

let min_key t = if t.size = 0 then max_int else Array.unsafe_get t.keys 0

let pop_min t =
  if t.size = 0 then invalid_arg "Evq.pop_min: empty queue";
  let keys = t.keys and acts = t.acts in
  let act = Array.unsafe_get acts 0 in
  let n = t.size - 1 in
  t.size <- n;
  let k = Array.unsafe_get keys n in
  let a = Array.unsafe_get acts n in
  (* Clear the vacated slot so the popped closure (and whatever it
     captures) is not retained until the slot is next overwritten. *)
  Array.unsafe_set acts n nop;
  if n > 0 then begin
    (* Sift the hole at the root down, then drop (k, a) in. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let base = (!i lsl 2) + 1 in
      if base >= n then continue := false
      else begin
        let last = if base + 3 < n then base + 3 else n - 1 in
        let c = ref base in
        let ck = ref (Array.unsafe_get keys base) in
        for j = base + 1 to last do
          let kj = Array.unsafe_get keys j in
          if kj < !ck then begin
            c := j;
            ck := kj
          end
        done;
        if !ck < k then begin
          Array.unsafe_set keys !i !ck;
          Array.unsafe_set acts !i (Array.unsafe_get acts !c);
          i := !c
        end
        else continue := false
      end
    done;
    Array.unsafe_set keys !i k;
    Array.unsafe_set acts !i a
  end;
  act

let clear t =
  Array.fill t.acts 0 t.size nop;
  t.size <- 0
