type t = {
  mutable now : int;
  mutable seq : int;
  mutable processed : int;
  pending : Evq.t;
  rng : Rng.t;
  stats : Stats.t;
}

let create ?(seed = 42) () =
  {
    now = 0;
    seq = 0;
    processed = 0;
    pending = Evq.create ();
    rng = Rng.create seed;
    stats = Stats.create ();
  }

let now t = t.now
let pending t = Evq.length t.pending
let rng t = t.rng
let stats t = t.stats
let events_processed t = t.processed

let schedule t ~delay action =
  let delay = if delay < 0 then 0 else delay in
  let time = t.now + delay in
  (* [max_time - 1] (not [max_time]) so a packed key can never reach
     [max_int], which [Evq.min_key] reserves as the empty sentinel. *)
  if time >= Evq.max_time - 1 || t.seq >= Evq.max_seq then
    Fmt.invalid_arg "Sim.schedule: packed clock exhausted (time=%d seq=%d)"
      time t.seq;
  Evq.add t.pending ~key:(Evq.pack ~time ~seq:t.seq) action;
  t.seq <- t.seq + 1

exception Budget_exhausted

let step t =
  if Evq.is_empty t.pending then false
  else begin
    t.now <- Evq.time_of_key (Evq.min_key t.pending);
    t.processed <- t.processed + 1;
    let action = Evq.pop_min t.pending in
    action ();
    true
  end

let run ?max_events ?max_time t =
  (* Hoist the option matches out of the per-event loop: an absent budget
     becomes a bound no 63-bit event count reaches, an absent horizon a key
     no packed event exceeds ([min_key] is [max_int] on empty, which also
     terminates the loop). *)
  let budget = match max_events with Some m -> m | None -> max_int in
  let key_horizon =
    match max_time with
    | Some limit when limit < Evq.max_time ->
      Evq.pack ~time:limit ~seq:(Evq.max_seq - 1)
    | Some _ | None -> max_int - 1
  in
  let rec loop () =
    if t.processed >= budget then raise Budget_exhausted;
    let key = Evq.min_key t.pending in
    if key <= key_horizon then begin
      t.now <- Evq.time_of_key key;
      t.processed <- t.processed + 1;
      let action = Evq.pop_min t.pending in
      action ();
      loop ()
    end
  in
  loop ()
