type handler = int -> int -> int -> Obj.t -> unit

type t = {
  mutable now : int;
  mutable processed : int;
  pending : Wheel.t;
  cell : Wheel.cell;  (* scratch for pop/dispatch; reused, never escapes *)
  mutable handlers : handler array;
  mutable n_handlers : int;
  rng : Rng.t;
  stats : Stats.t;
  mutable probe_at : int;  (* max_int = disarmed *)
  mutable probe : int -> unit;
}

let no_handler : handler =
 fun _ _ _ _ -> Fmt.failwith "Sim: dispatch to unregistered handler"

let create ?(seed = 42) () =
  {
    now = 0;
    processed = 0;
    pending = Wheel.create ();
    cell = Wheel.make_cell ();
    handlers = Array.make 8 no_handler;
    n_handlers = 0;
    rng = Rng.create seed;
    stats = Stats.create ();
    probe_at = max_int;
    probe = ignore;
  }

let now t = t.now
let pending t = Wheel.length t.pending
let rng t = t.rng
let stats t = t.stats
let events_processed t = t.processed
let seq_consumed t = Wheel.overflow_seq t.pending
let overflow_depth t = Wheel.overflow_depth t.pending

let register_handler t f =
  let id = t.n_handlers in
  if id = Array.length t.handlers then begin
    let h = Array.make (2 * id) no_handler in
    Array.blit t.handlers 0 h 0 id;
    t.handlers <- h
  end;
  t.handlers.(id) <- f;
  t.n_handlers <- id + 1;
  id

(* Packed-clock guard.  Time still has the [Evq] budget of 2^31 ticks; the
   per-event [seq] of the old global heap is gone — only events scheduled
   beyond the wheel window consume a (time, seq)-packed overflow slot, so
   [seq] stays near zero even over million-op runs (see the regression
   test).  [max_time - 1] (not [max_time]) so a packed overflow key can
   never reach [max_int], the empty sentinel. *)
let[@inline] check_clock t time =
  if time >= Evq.max_time - 1 || Wheel.overflow_seq t.pending >= Evq.max_seq
  then
    (* dbperf: alloc-ok -- clock-exhaustion raise: builds its message once, at the end of the world *)
    Fmt.invalid_arg "Sim.schedule: packed clock exhausted (time=%d seq=%d)"
      time
      (Wheel.overflow_seq t.pending)

let schedule t ~delay action =
  let delay = if delay < 0 then 0 else delay in
  let time = t.now + delay in
  check_clock t time;
  Wheel.schedule t.pending ~time action

let schedule_typed t ~delay ~h ~a ~b ~c ~o =
  let delay = if delay < 0 then 0 else delay in
  let time = t.now + delay in
  check_clock t time;
  Wheel.schedule_typed t.pending ~time ~h ~a ~b ~c ~o

let set_probe t ~at f =
  (* dbperf: alloc-ok -- guard raise on a past deadline; the accept path allocates nothing *)
  if at < t.now then Fmt.invalid_arg "Sim.set_probe: at=%d < now=%d" at t.now;
  t.probe_at <- at;
  t.probe <- f

let clear_probe t =
  t.probe_at <- max_int;
  t.probe <- ignore

exception Budget_exhausted

(* Observation probe: runs the callback at its due time, just before the
   first event at or past it dispatches.  The probe sees the world
   quiescent at the window boundary and schedules nothing, so arming it
   perturbs neither [events_processed] nor the wheel — telemetry-on runs
   stay byte-identical to telemetry-off ones.  Out of line: the hot-path
   cost when disarmed is the single [probe_at] compare in [dispatch]
   ([max_int] never fires — [check_clock] keeps event times below it). *)
let probe_catchup t time =
  while time >= t.probe_at do
    let at = t.probe_at in
    t.probe_at <- max_int;
    t.now <- at;
    t.probe at  (* re-arms via [set_probe], or leaves the probe cleared *)
  done

(* The cell is read fully before the handler runs, so a handler that
   schedules (or even recursively runs the loop) cannot clobber the event
   being dispatched. *)
let[@inline] dispatch t =
  let cell = t.cell in
  if cell.Wheel.time >= t.probe_at then probe_catchup t cell.Wheel.time;
  t.now <- cell.Wheel.time;
  t.processed <- t.processed + 1;
  let h = cell.Wheel.h in
  if h < 0 then (Obj.obj cell.Wheel.o : unit -> unit) ()
  else
    (Array.unsafe_get t.handlers h)
      cell.Wheel.a cell.Wheel.b cell.Wheel.c cell.Wheel.o

let step t =
  if Wheel.pop_into t.pending t.cell then begin
    dispatch t;
    true
  end
  else false

let run ?max_events ?max_time t =
  (* Hoist the option matches out of the per-event loop: an absent budget
     becomes a bound no 63-bit event count reaches, an absent horizon a
     time no scheduled event exceeds ([next_time] is [max_int] on empty,
     which also terminates the loop). *)
  let budget = match max_events with Some m -> m | None -> max_int in
  match max_time with
  | Some horizon when horizon < Evq.max_time ->
    let rec loop () =
      if t.processed >= budget then raise Budget_exhausted;
      if Wheel.next_time t.pending <= horizon then begin
        ignore (Wheel.pop_into t.pending t.cell : bool);
        dispatch t;
        loop ()
      end
    in
    loop ()
  | Some _ | None ->
    (* No reachable horizon ([check_clock] keeps every scheduled time
       below [Evq.max_time]): pop directly instead of probing
       [next_time] first — one queue touch per event, not two. *)
    let rec loop () =
      if t.processed >= budget then raise Budget_exhausted;
      if Wheel.pop_into t.pending t.cell then begin
        dispatch t;
        loop ()
      end
    in
    loop ()
