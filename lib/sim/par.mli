(** Deterministic domain-parallel map over independent simulation cells.

    The simulator itself stays single-threaded (that is where its
    determinism comes from); what parallelises is the layer above — the
    experiment grids that run one self-contained cluster per parameter
    point.  [map] distributes those cells over OCaml 5 domains and
    returns results in input order, so output is byte-identical to the
    sequential run no matter how many domains execute it (the
    equivalence is pinned by test).

    The callback must be *cell-isolated*: build its own [Sim.t]/cluster
    from its input and touch no process-global mutable state.  In this
    codebase that means no [Obs.force_tracing] and no [Table] printing
    from inside the callback — return row data and render on the caller's
    thread. *)

val available : unit -> int
(** [Domain.recommended_domain_count ()] — what the machine offers. *)

val default_domains : unit -> int
(** Domain count from the [DBTREE_DOMAINS] environment variable,
    defaulting to 1 (purely sequential; no domains spawned).  An
    unparsable value falls back to 1 with a warning on stderr, printed
    once per process. *)

val parse_domains : string -> (int, string) result
(** The [DBTREE_DOMAINS] parser: trimmed integer clamped to [>= 1], or
    an explanation of why the value was ignored. *)

val domains_of_env : string option -> int
(** {!default_domains} on an explicit environment value — exposed so the
    fallback path is unit-testable without mutating the process
    environment.  [None] and unparsable values give 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] applies [f] to every element, using up to
    [domains] domains ([default_domains ()] when omitted; clamped to the
    array length; [<= 1] runs sequentially in the calling domain with no
    domain spawned at all).  Results arrive in input order.  If any call
    raises, the exception of the lowest failing index is re-raised after
    all domains complete. *)
