(** Message-passing network over {!Sim}, with two transports.

    The paper assumes a network that is "reliable, delivering every message
    exactly once in order" (§4).  The [Raw] transport provides exactly that
    when fault injection is off: for each ordered processor pair, messages
    are delivered exactly once, in send order, after a configurable
    latency.  Local sends (src = dst) model the queue manager: a subsequent
    action on a locally stored node is put back on the processor's own
    queue with a small local delay, so local and remote actions interleave
    the way the paper's architecture dictates.

    The [Reliable] transport is the discharge of that assumption for a
    faulty network: a sublayer of per-channel sequence numbers,
    receiver-side dedup and in-order release, cumulative acks (piggybacked
    on reverse traffic when there is any), and retransmission timers with
    bounded exponential backoff — restoring exactly-once in-order delivery
    over a channel that drops, duplicates, and reorders.  Everything is
    scheduled through {!Sim.schedule} and drawn from the network's own
    {!Rng}, so a run remains a pure function of the seed.

    The network also does the message accounting every experiment relies
    on: total remote messages, per-kind counts, and byte estimates.  In
    [Reliable] mode the wire unit is the {e frame}: retransmissions and
    pure acks count toward [net.msgs]/[net.bytes], which is what makes the
    sublayer's overhead measurable. *)

module type MESSAGE = sig
  type t

  val kind : t -> string
  (** Short tag used for per-kind accounting ("relay_insert", ...). *)

  val size : t -> int
  (** Estimated wire size in bytes, for bandwidth accounting. *)

  val kind_id : t -> int
  (** Dense index of [kind] in [\[0, num_kinds)].  The network pre-interns
      one counter per kind at creation and indexes it with this, so the
      per-message accounting path never builds or hashes a string. *)

  val num_kinds : int

  val kind_name : int -> string
  (** Inverse of {!kind_id}: [kind_name (kind_id m) = kind m]. *)
end

type latency = {
  local_delay : int;  (** queueing delay for local (src = dst) actions *)
  remote_base : int;  (** fixed one-way network latency *)
  remote_jitter : int;  (** uniform extra in [\[0, remote_jitter)] *)
}

val default_latency : latency
(** [{ local_delay = 1; remote_base = 20; remote_jitter = 5 }] — a 1992-era
    LAN-ish ratio of ~20x between a local action and a network hop. *)

val zero_latency : latency
(** All delays collapsed to the minimum that still preserves atomic,
    FIFO-ordered actions.  Useful for pure message-count experiments. *)

(** Fault injection — for experiments that probe the paper's network
    assumption ("the network is reliable, delivering every message
    exactly once in order", §4).  Over the [Raw] transport the protocols
    are NOT designed to survive these faults; the point is to show the
    correctness audits catching the damage.  Over the [Reliable] transport
    the faults apply to individual frames and the sublayer masks them. *)
type faults = {
  drop_prob : float;  (** probability a remote transmission is lost *)
  duplicate_prob : float;  (** probability a remote transmission is delivered twice *)
  delay_prob : float;
      (** probability an extra copy of a transmission is held back long
          enough to be re-ordered behind later traffic (breaks FIFO) *)
  delay_ticks : int;  (** how long a delayed copy is held *)
  crash_at : (int * int) list;
      (** crash schedule: [(proc, tick)] downs [proc] at virtual time
          [tick].  A crash bumps the processor's channel generation:
          every frame in flight to or from the dead incarnation is
          dropped on arrival ([net.crash.stale_dropped]), pending
          retransmission timers aimed at it are invalidated, and peers
          hold their unacked windows until the restart.  Entries for a
          processor already down are ignored. *)
  restart_delay : int;
      (** ticks a crashed processor stays down (min 1).  At restart the
          owner's {!Make.set_crash_hooks} [on_restart] runs first (state
          replay), then every live peer resumes its channel go-back-N:
          the surviving unacked window is renumbered from sequence 0 and
          retransmitted. *)
}

val no_faults : faults
(** No faults; [restart_delay = 64]. *)

(** Which wire discipline [send]/[broadcast] use for remote messages:

    - [Raw]: one transmission per message, straight onto the (possibly
      faulty) channel — the paper's assumed network when faults are off.
    - [Reliable]: the seqno/ack/retransmit sublayer described above.
      Exactly-once in-order delivery to the handler survives any
      combination of injected faults with [drop_prob < 1].  Never give the
      sublayer a channel that loses {e everything}: with nothing getting
      through it retransmits (deterministically) forever. *)
type transport = Raw | Reliable

val frame_header_bytes : int
(** Wire overhead of one reliable-sublayer frame (seqno + cumulative ack);
    also the size of a pure-ack frame. *)

module Make (M : MESSAGE) : sig
  type pid = int
  type t

  val create :
    ?latency:latency ->
    ?faults:faults ->
    ?transport:transport ->
    ?obs:Dbtree_obs.Obs.t ->
    Sim.t ->
    procs:int ->
    t
  (** [transport] defaults to [Raw]; [obs] to [Obs.disabled].  When a
      recorder is given, every send records a [Msg_send] under the
      ambient causal context, every handler delivery is bracketed by a
      [Msg_recv] whose parent is that send (surviving retransmission and
      out-of-order holds under [Reliable]), and retransmissions/pure
      acks record [Retx]/[Ack] events.  Recording never schedules
      events or draws from the RNG, so traced and untraced runs have
      identical behavior. *)

  val sim : t -> Sim.t
  val procs : t -> int
  val obs : t -> Dbtree_obs.Obs.t

  val set_handler : t -> pid -> (src:pid -> M.t -> unit) -> unit
  (** Install the message handler (the "node manager") for [pid].  Must be
      set before any message is delivered to [pid]. *)

  val send : t -> src:pid -> dst:pid -> M.t -> unit
  (** Enqueue a message.  Delivery invokes [dst]'s handler atomically at
      some later virtual time; two sends on the same (src, dst) channel are
      delivered in order.  Local sends (src = dst) never touch the network
      and are immune to fault injection under either transport. *)

  val broadcast : t -> src:pid -> dsts:pid list -> M.t -> unit
  (** [send] to every element of [dsts] except [src] itself. *)

  (** Accounting (also mirrored into [Sim.stats] under ["net.*"] keys —
      fault injection under ["net.fault.*"], the reliable sublayer under
      ["net.rel.*"]: [retx], [acks], [dup_dropped], [reordered_held]): *)

  val remote_messages : t -> int
  (** Wire transmissions: one per remote message under [Raw]; data frames
      (including retransmissions) plus pure acks under [Reliable]. *)

  val local_messages : t -> int
  val bytes_sent : t -> int

  val sent_to : t -> pid -> int
  (** Remote transmissions delivered to [pid] — used for hot-spot
      detection.  Counts every scheduled delivery, including fault-injected
      duplicates and late copies; dropped transmissions are not counted. *)

  (** Telemetry gauges — instantaneous depths read at scrape points;
      none of them perturbs the transport: *)

  val in_flight : t -> pid -> int
  (** Remote transmissions scheduled toward [pid] and not yet dispatched
      (the processor's wire inbox depth, stale frames included). *)

  val retx_backlog : t -> pid -> int
  (** Frames sitting unacked in [pid]'s reliable send windows, summed
      over all destinations.  0 under [Raw]. *)

  val longest_down : t -> now:int -> int
  (** Ticks the longest-crashed processor has been down at [now]; 0 when
      every processor is up.  Feeds the recovery-time health rule. *)

  (** {2 Crashes and durability}

      A crash (scheduled through {!faults.crash_at}) strikes between
      simulation events, downs the processor for
      {!faults.restart_delay} ticks, and bumps its channel generation —
      in-flight traffic of the dead incarnation is dropped as stale.
      The machinery below lets an owner with durable storage journal the
      channel state that must survive: each reliable (and loopback) send
      is assigned a per-channel absolute index, journaled on send,
      retired when the cumulative ack (or local delivery) covers it, and
      deduped at the receiver by a journaled delivered count — so
      exactly-once delivery survives the crash.  With no [persist]
      record installed, indices are never assigned and the transport
      behaves exactly as before. *)

  type persist = {
    p_send : src:pid -> dst:pid -> abs:int -> M.t -> unit;
        (** a send was assigned durable index [abs] on channel
            (src, dst); journal the message *)
    p_retire : src:pid -> dst:pid -> abs:int -> unit;
        (** the send at [abs] is acked (or locally delivered): its
            journal entry may be dropped *)
    p_deliver : src:pid -> dst:pid -> abs:int -> unit;
        (** [dst] delivered the remote message with index [abs]:
            journal the per-source delivered count *)
  }
  (** Durability hooks.  All three fire inside the simulation event that
      performs the action, so a crash (which strikes between events)
      never observes a half-journaled transition. *)

  val set_persist : t -> persist -> unit

  val set_crash_hooks :
    t -> on_crash:(pid -> unit) -> on_restart:(pid -> unit) -> unit
  (** [on_crash p] runs inside the crash event, after the channel reset —
      the owner drops [p]'s volatile state.  [on_restart p] runs inside
      the restart event, before any peer channel resumes — the owner
      replays its journal (typically ending with {!restore_proc}) so the
      retransmissions that follow land on recovered state. *)

  val is_down : t -> pid -> bool
  val generation : t -> pid -> int

  val restore_proc :
    t ->
    pid:pid ->
    outbound:(pid * (int * M.t) list) list ->
    sent:(pid * int) list ->
    delivered:(pid * int) list ->
    unit
  (** Re-arm a restarted processor's durable network state from its
      journal: [sent] is the per-destination send-index high-water,
      [delivered] the per-source delivered counts (receivers' dedup
      floor), and [outbound] the unretired sends per destination, oldest
      first with their indices — re-queued and retransmitted (loopback
      entries are re-delivered locally).  Receivers drop the prefix they
      already processed by comparing indices. *)
end
