(** Reliable FIFO message-passing network over {!Sim}.

    The paper assumes "the network is reliable, delivering every message
    exactly once in order" (§4).  This module provides exactly that: for
    each ordered processor pair, messages are delivered exactly once, in
    send order, after a configurable latency.  Local sends (src = dst) model
    the queue manager: a subsequent action on a locally stored node is put
    back on the processor's own queue with a small local delay, so local
    and remote actions interleave the way the paper's architecture
    dictates.

    The network also does the message accounting every experiment relies
    on: total remote messages, per-kind counts, and byte estimates. *)

module type MESSAGE = sig
  type t

  val kind : t -> string
  (** Short tag used for per-kind accounting ("relay_insert", ...). *)

  val size : t -> int
  (** Estimated wire size in bytes, for bandwidth accounting. *)

  val kind_id : t -> int
  (** Dense index of [kind] in [\[0, num_kinds)].  The network pre-interns
      one counter per kind at creation and indexes it with this, so the
      per-message accounting path never builds or hashes a string. *)

  val num_kinds : int

  val kind_name : int -> string
  (** Inverse of {!kind_id}: [kind_name (kind_id m) = kind m]. *)
end

type latency = {
  local_delay : int;  (** queueing delay for local (src = dst) actions *)
  remote_base : int;  (** fixed one-way network latency *)
  remote_jitter : int;  (** uniform extra in [\[0, remote_jitter)] *)
}

val default_latency : latency
(** [{ local_delay = 1; remote_base = 20; remote_jitter = 5 }] — a 1992-era
    LAN-ish ratio of ~20x between a local action and a network hop. *)

val zero_latency : latency
(** All delays collapsed to the minimum that still preserves atomic,
    FIFO-ordered actions.  Useful for pure message-count experiments. *)

(** Fault injection — for experiments that probe the paper's network
    assumption ("the network is reliable, delivering every message
    exactly once in order", §4).  The protocols are NOT designed to
    survive these faults; the point is to show the correctness audits
    catching the damage. *)
type faults = {
  duplicate_prob : float;  (** probability a remote message is delivered twice *)
  delay_prob : float;
      (** probability a remote message is held back long enough to be
          re-ordered behind later traffic (breaks FIFO) *)
  delay_ticks : int;  (** how long a delayed message is held *)
}

val no_faults : faults

module Make (M : MESSAGE) : sig
  type pid = int
  type t

  val create : ?latency:latency -> ?faults:faults -> Sim.t -> procs:int -> t

  val sim : t -> Sim.t
  val procs : t -> int

  val set_handler : t -> pid -> (src:pid -> M.t -> unit) -> unit
  (** Install the message handler (the "node manager") for [pid].  Must be
      set before any message is delivered to [pid]. *)

  val send : t -> src:pid -> dst:pid -> M.t -> unit
  (** Enqueue a message.  Delivery invokes [dst]'s handler atomically at
      some later virtual time; two sends on the same (src, dst) channel are
      delivered in order. *)

  val broadcast : t -> src:pid -> dsts:pid list -> M.t -> unit
  (** [send] to every element of [dsts] except [src] itself. *)

  (** Accounting (also mirrored into [Sim.stats] under ["net.*"] keys): *)

  val remote_messages : t -> int
  val local_messages : t -> int
  val bytes_sent : t -> int
  val sent_to : t -> pid -> int
  (** Remote messages delivered to [pid] — used for hot-spot detection. *)
end
