(** Array-backed binary min-heap.

    Used as the simulator's pending-event queue.  Elements are compared with
    the function supplied at creation; ties must be broken by the caller
    (the simulator uses a monotone sequence number) to keep runs
    deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the smallest element.  The vacated array slot is
    cleared so the heap does not retain the popped element. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit
(** Empty the heap, releasing its storage (and every element reference). *)
