(** Deterministic discrete-event simulator.

    This is the substrate standing in for the paper's message-passing
    multicomputer: virtual time in integer ticks, a calendar event queue
    ({!Wheel}), and an event loop that runs events in (time, insertion)
    order.  Each event executes atomically, which gives exactly the
    paper's execution model — the node manager processes one action at a
    time, and an action on a node cannot be interrupted by another action
    (§1.1).

    Events come in two flavors.  Closure events ({!schedule}) are the
    general API.  Typed events ({!schedule_typed}) are the zero-alloc hot
    path: a pre-registered handler id plus three ints and one boxed
    payload, so scheduling a message delivery allocates nothing.

    All randomness flows through {!rng}, so a run is a pure function of
    the seed and the scheduled work. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh simulator at time 0.  Default [seed] is 42. *)

val now : t -> int
(** Current virtual time, in ticks. *)

val pending : t -> int
(** Number of events waiting in the queue.  Periodic background
    activities (e.g. a data balancer) use this to self-disarm when they
    are the only thing left, so the simulation can quiesce. *)

val rng : t -> Rng.t
val stats : t -> Stats.t

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at time [now t + max delay 0].  Events
    with equal times run in scheduling order. *)

val register_handler : t -> (int -> int -> int -> Obj.t -> unit) -> int
(** Register a typed-event handler, returning its id for
    {!schedule_typed}.  The handler receives the event's [a b c o]
    exactly as scheduled.  Registration is expected at subsystem setup
    (e.g. once per network); the table never shrinks.

    The [Obj.t] payload is the one deliberately untyped corner: a handler
    must only ever be scheduled with payloads of the single type it
    [Obj.obj]s back.  Keep each handler's schedule sites next to its
    registration (as [Net] does) so that invariant is visible locally. *)

val schedule_typed :
  t -> delay:int -> h:int -> a:int -> b:int -> c:int -> o:Obj.t -> unit
(** Typed twin of {!schedule}: at [now + max delay 0], dispatch to
    handler [h] with the three ints and the payload.  Allocation-free —
    the event is five words in a bucket, not a closure. *)

val overflow_depth : t -> int
(** Events currently parked beyond the wheel window (see
    {!Wheel.overflow_depth}).  A telemetry gauge. *)

val seq_consumed : t -> int
(** Packed-clock slots consumed so far (overflow-heap insertions; see the
    2^31 budget note in the implementation).  Near zero in practice —
    exposed so tests can pin that million-op runs stay inside the
    budget. *)

val set_probe : t -> at:int -> (int -> unit) -> unit
(** Arm the observation probe: [f at] runs at virtual time [at], just
    before the first event at or past [at] dispatches (and with [now]
    advanced to [at]).  There is one probe; arming replaces the previous
    one, and the callback must re-arm itself (at a strictly later time)
    to recur.  The probe is for {e observation at window boundaries} —
    telemetry scrapes — and must not schedule events: it lives outside
    the event queue precisely so arming it changes neither
    {!events_processed} nor any event ordering, keeping instrumented
    runs byte-identical to bare ones.  Disarmed cost is one integer
    compare per event.  Raises [Invalid_argument] if [at] is in the
    past.  Note the probe only fires when some event reaches [at] — on
    quiescence a final partial window must be flushed by the owner. *)

val clear_probe : t -> unit
(** Disarm the probe. *)

exception Budget_exhausted

val run : ?max_events:int -> ?max_time:int -> t -> unit
(** Drain the event queue until quiescence (no pending events).

    @param max_events raise {!Budget_exhausted} after this many events —
           a runaway-protocol backstop for tests.
    @param max_time stop (without error) once the next event lies strictly
           beyond this time; the event stays pending. *)

val step : t -> bool
(** Execute the single next event.  Returns [false] if none is pending. *)

val events_processed : t -> int
