type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). *)
let golden = 0x9E3779B97F4A7C15L

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let int t bound =
  (* dbperf: alloc-ok -- guard raise: the exception exists only on the error path *)
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo bias is negligible for the bounds used here, but
     we mask to 62 bits first so the intermediate is a non-negative [int]. *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  x mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr
