(** Calendar event queue for the simulator core.

    Near events (delay < {!window}) append into per-time buckets — no
    sifting, and same-timestamp runs drain in a batch off one bucket.
    Distinct occupied times live in a small heap touched once per
    timestamp, not once per event; events at or beyond the window go to a
    packed-key overflow heap and transfer into the ring as time advances.
    Pop order is exactly global (time, insertion) order — byte-identical
    to a single heap keyed by packed (time, seq).

    Events are either typed — handler id [h >= 0] plus three ints and one
    boxed payload, nothing allocated per event — or closures ([h = -1],
    the closure in [o]).  Dispatch lives in {!Sim}; this module only
    stores and orders. *)

type t

(** Scratch record {!pop_into} fills; allocate one per simulator and
    reuse it. *)
type cell = {
  mutable time : int;
  mutable h : int;  (** handler id; [-1] = closure event *)
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable o : Obj.t;  (** typed payload, or the [(unit -> unit)] closure *)
}

val window : int
(** Ring span in ticks (a power of two).  Delays below this are O(1)
    bucket appends; longer delays take the overflow heap. *)

val create : unit -> t
val make_cell : unit -> cell

val length : t -> int
val is_empty : t -> bool

val overflow_seq : t -> int
(** Overflow insertions so far — consumption of the packed (time, seq)
    clock.  Stays near zero in practice; {!Sim} guards it against the
    [Evq.max_seq] budget. *)

val overflow_depth : t -> int
(** Events currently parked in the overflow heap (scheduled beyond the
    ring window).  A telemetry gauge; near zero in healthy runs. *)

val schedule : t -> time:int -> (unit -> unit) -> unit
(** Closure event at absolute [time].  [time] must be >= the last popped
    time and < [Evq.max_time - 1]; {!Sim} enforces both. *)

val schedule_typed :
  t -> time:int -> h:int -> a:int -> b:int -> c:int -> o:Obj.t -> unit
(** Typed event at absolute [time]; same bounds as {!schedule}. *)

val next_time : t -> int
(** Time of the earliest pending event, [max_int] if none.  Pure peek. *)

val pop_into : t -> cell -> bool
(** Remove the earliest event (ties: insertion order) into [cell].
    [false] iff empty. *)
