module Obs = Dbtree_obs.Obs
module Event = Dbtree_obs.Event

module type MESSAGE = sig
  type t

  val kind : t -> string
  val size : t -> int
  val kind_id : t -> int
  val num_kinds : int
  val kind_name : int -> string
end

type latency = { local_delay : int; remote_base : int; remote_jitter : int }

let default_latency = { local_delay = 1; remote_base = 20; remote_jitter = 5 }
let zero_latency = { local_delay = 0; remote_base = 0; remote_jitter = 0 }

type faults = {
  drop_prob : float;
  duplicate_prob : float;
  delay_prob : float;
  delay_ticks : int;
  crash_at : (int * int) list;
      (* (proc, tick) crash schedule: at [tick] the processor drops its
         in-memory state and its reliable-channel state is reset *)
  restart_delay : int;  (* ticks a crashed processor stays down *)
}

let no_faults =
  {
    drop_prob = 0.0;
    duplicate_prob = 0.0;
    delay_prob = 0.0;
    delay_ticks = 0;
    crash_at = [];
    restart_delay = 64;
  }

type transport = Raw | Reliable

(* Per-frame overhead of the reliable sublayer: sequence number + cumulative
   ack + flags.  A pure-ack frame is exactly this. *)
let frame_header_bytes = 12

module Make (M : MESSAGE) = struct
  type pid = int

  (* Reliable-delivery state for one ordered (src, dst) pair.  The
     sender-side fields (seqno allocation, in-flight frames, retransmit
     timer) conceptually live at [src]; the receiver-side fields (next
     in-order seqno, out-of-order hold buffer, delayed-ack flag)
     conceptually live at [dst].  Acks for this direction's data travel
     dst -> src, piggybacked on reverse data frames when there are any. *)
  (* In-flight and held frames carry their trace lineage — the op id and
     the [Msg_send] event id recorded when the message was first sent —
     as two plain ints, so retransmissions and out-of-order releases
     stitch into the originating operation's span. *)
  type chan = {
    (* sender side *)
    mutable next_seq : int;
    mutable unacked : (int * int * M.t * int * int) Queue.t;
        (* (seq, abs, msg, op, send event id), in-flight, oldest first.
           [abs] is the channel-lifetime send index used by the durable
           outbound journal and crash-recovery dedup; -1 when the network
           has no persistence hooks. *)
    mutable rto : int;  (* current retransmit timeout (backs off) *)
    mutable timer_gen : int;  (* stale-timer invalidation *)
    mutable timer_armed : bool;
    mutable sent_abs : int;  (* next abs index to assign *)
    (* receiver side *)
    mutable expect : int;  (* next seqno released to the handler *)
    ooo : (int, M.t * int * int * int) Hashtbl.t;
        (* held out-of-order frames, by seqno: (msg, op, send id, abs) *)
    mutable ack_owed : bool;  (* delayed ack scheduled and not yet covered *)
    mutable delivered_abs : int;
        (* count of data messages released to the handler; survives a
           channel reset on the live side and is restored from the
           receiver's journal after a crash *)
  }

  (* Durability hooks, installed by whoever owns the processors' journals
     (the cluster).  [p_send]/[p_retire] bracket the life of an outbound
     message in [src]'s journal; [p_deliver] advances the delivered count
     in [dst]'s journal.  All three fire inside the event that performs
     the action, so a crash (which only strikes between events) can never
     observe a half-journaled step. *)
  type persist = {
    p_send : src:pid -> dst:pid -> abs:int -> M.t -> unit;
    p_retire : src:pid -> dst:pid -> abs:int -> unit;
    p_deliver : src:pid -> dst:pid -> abs:int -> unit;
  }

  type t = {
    sim : Sim.t;
    procs : int;
    latency : latency;
    faults : faults;
    transport : transport;
    obs : Obs.t;
    handlers : (src:pid -> M.t -> unit) option array;
    (* Last scheduled delivery time per (src, dst) channel; FIFO is enforced
       by never scheduling a delivery at or before this time. *)
    channel_front : int array;
    inbound : int array;
    arrived : int array;
        (* remote deliveries dispatched (stale drops included); the
           inbox-depth gauge is [inbound - arrived] *)
    rel : chan option array;  (* lazily allocated, Reliable only *)
    (* crash/restart machinery *)
    down : bool array;
    down_at : int array;  (* crash time of the current outage *)
    gen : int array;  (* per-processor incarnation; bumped at each crash *)
    local_sent : int array;  (* durable local-loopback send indices *)
    local_del : int array;  (* durable local-loopback delivery indices *)
    mutable on_crash : pid -> unit;
    mutable on_restart : pid -> unit;
    mutable persist : persist option;
    rto_base : int;
    rto_max : int;
    ack_delay : int;
    rng : Rng.t;
    mutable remote : int;
    mutable local : int;
    mutable bytes : int;
    (* Interned stat counters: resolved once here so the per-message path
       never hashes a string (in particular no "net.msg." ^ kind
       concatenation per send). *)
    c_msgs : Stats.counter;
    c_bytes : Stats.counter;
    c_local : Stats.counter;
    c_dropped : Stats.counter;
    c_dup : Stats.counter;
    c_delayed : Stats.counter;
    c_retx : Stats.counter;
    c_acks : Stats.counter;
    c_dup_dropped : Stats.counter;
    c_held : Stats.counter;
    c_crashes : Stats.counter;
    c_stale : Stats.counter;  (* frames from a dead incarnation, dropped *)
    c_kind : Stats.counter array;
    (* Typed-event handler ids ([Sim.register_handler]): the per-message
       hot path schedules five ints instead of allocating a closure.
       [h_deliver] carries a raw/local delivery (a = src*procs+dst,
       b = op, c = sid, o = the message); [h_frame] a reliable-transport
       frame arrival (a = src*procs+dst, b = seq, c = ack, o = the
       payload option).  Registered once in [create], the only schedule
       sites are [schedule_deliveries] and [send] below. *)
    mutable h_deliver : int;
    mutable h_frame : int;
  }

  (* Record construction only; the typed-event handlers are registered by
     [create] below, once [deliver] and [recv_frame] exist. *)
  let make ?(latency = default_latency) ?(faults = no_faults)
      ?(transport = Raw) ?(obs = Obs.disabled) sim ~procs =
    let stats = Sim.stats sim in
    (* The retransmit timeout starts comfortably above one round trip and
       backs off exponentially to a bounded multiple; the delayed ack waits
       a fraction of a hop for reverse traffic to piggyback on. *)
    let rtt = latency.remote_base + latency.remote_jitter + latency.local_delay in
    let rto_base = (3 * rtt) + 8 in
    {
      sim;
      procs;
      latency;
      faults;
      transport;
      obs;
      handlers = Array.make procs None;
      channel_front = Array.make (procs * procs) min_int;
      inbound = Array.make procs 0;
      arrived = Array.make procs 0;
      down_at = Array.make procs 0;
      rel =
        (match transport with
        | Raw -> [||]
        | Reliable -> Array.make (procs * procs) None);
      down = Array.make procs false;
      gen = Array.make procs 0;
      local_sent = Array.make procs 0;
      local_del = Array.make procs 0;
      on_crash = ignore;
      on_restart = ignore;
      persist = None;
      rto_base;
      rto_max = rto_base * 16;
      ack_delay = (latency.remote_base / 4) + 1;
      rng = Rng.split (Sim.rng sim);
      remote = 0;
      local = 0;
      bytes = 0;
      c_msgs = Stats.counter stats "net.msgs";
      c_bytes = Stats.counter stats "net.bytes";
      c_local = Stats.counter stats "net.local";
      c_dropped = Stats.counter stats "net.fault.dropped";
      c_dup = Stats.counter stats "net.fault.duplicated";
      c_delayed = Stats.counter stats "net.fault.delayed";
      c_retx = Stats.counter stats "net.rel.retx";
      c_acks = Stats.counter stats "net.rel.acks";
      c_dup_dropped = Stats.counter stats "net.rel.dup_dropped";
      c_held = Stats.counter stats "net.rel.reordered_held";
      c_crashes = Stats.counter stats "net.crash.count";
      c_stale = Stats.counter stats "net.crash.stale_dropped";
      c_kind =
        Array.init M.num_kinds (fun i ->
            (* dblint: allow interned-stats -- resolved once per network at creation, not on the message path *)
            Stats.counter stats ("net.msg." ^ M.kind_name i));
      h_deliver = -1;
      h_frame = -1;
    }

  let sim t = t.sim
  let procs t = t.procs
  let obs t = t.obs
  let is_down t pid = t.down.(pid)
  let generation t pid = t.gen.(pid)
  let set_persist t p = t.persist <- Some p

  let set_crash_hooks t ~on_crash ~on_restart =
    t.on_crash <- on_crash;
    t.on_restart <- on_restart

  (* Epoch-tagged channel index for typed delivery events: a frame is
     stamped with the sum of both endpoints' incarnations at schedule
     time, and dropped on arrival if either endpoint has crashed since —
     no frame from a dead incarnation is ever released to a handler. *)
  let[@inline] chan_code t ~src ~dst =
    ((t.gen.(src) + t.gen.(dst)) * t.procs * t.procs) + (src * t.procs) + dst

  let[@inline] stale t ~src ~dst ~epoch =
    epoch <> t.gen.(src) + t.gen.(dst) || t.down.(dst)

  let set_handler t pid handler =
    if pid < 0 || pid >= t.procs then invalid_arg "Net.set_handler: bad pid";
    t.handlers.(pid) <- Some handler

  (* Deliver [msg] to [dst]'s handler.  [op]/[sid] are the lineage
     captured at send time: the serving operation and the [Msg_send]
     event id.  The delivery is bracketed in the recorder's ambient
     context, so everything the handler emits (relays, splits, further
     sends) chains to this [Msg_recv]. *)
  let deliver t ~src ~dst ~op ~sid msg =
    match t.handlers.(dst) with
    | Some handler ->
      if Obs.on t.obs then begin
        let rid =
          Obs.emit t.obs ~time:(Sim.now t.sim) ~pid:dst ~op ~parent:sid
            ~kind:Event.Msg_recv ~a:src ~b:(M.kind_id msg)
        in
        Obs.set_context t.obs ~op ~parent:rid;
        handler ~src msg;
        Obs.reset_context t.obs
      end
      else handler ~src msg
    | None ->
      (* dbperf: alloc-ok -- misconfiguration trap: raises before the first delivery or never *)
      Fmt.failwith "Net: no handler registered for processor %d" dst

  (* Record a [Msg_send] under the ambient context and return the
     lineage pair for the reliable path's in-flight queue.  The raw/local
     hot paths read the two halves separately instead, avoiding the pair
     allocation per message. *)
  let note_send t ~src ~dst msg =
    let sid =
      Obs.emit_here t.obs ~time:(Sim.now t.sim) ~pid:src ~kind:Event.Msg_send
        ~a:dst ~b:(M.kind_id msg)
    in
    (Obs.cur_op t.obs, sid)

  (* Shared physical leg: compute the arrival time of one wire transmission
     (latency + per-channel FIFO front) and schedule a typed delivery
     event for every copy the fault model actually delivers — handler
     [h] with payload [o] and ints [b]/[c] ([a] always carries the
     channel).  Every scheduled delivery — including fault-injected
     duplicates and late copies — is counted in [inbound]; a dropped
     transmission is not (nothing arrives). *)
  let schedule_deliveries t ~src ~dst ~h ~b ~c ~o =
    let raw_delay =
      t.latency.remote_base
      + (if t.latency.remote_jitter > 0 then
           Rng.int t.rng t.latency.remote_jitter
         else 0)
    in
    let chan = (src * t.procs) + dst in
    let code = chan_code t ~src ~dst in
    let now = Sim.now t.sim in
    (* FIFO per channel: a transmission may not overtake an earlier one. *)
    let at = max (now + raw_delay) (t.channel_front.(chan) + 1) in
    t.channel_front.(chan) <- at;
    let dropped =
      t.faults.drop_prob > 0.0 && Rng.float t.rng 1.0 < t.faults.drop_prob
    in
    if dropped then Stats.tick t.c_dropped
    else begin
      t.inbound.(dst) <- t.inbound.(dst) + 1;
      Sim.schedule_typed t.sim ~delay:(at - now) ~h ~a:code ~b ~c ~o
    end;
    (* fault injection (off by default): duplicate delivery, and FIFO
       violation via an extra late delivery of a copy *)
    if
      t.faults.duplicate_prob > 0.0
      && Rng.float t.rng 1.0 < t.faults.duplicate_prob
    then begin
      Stats.tick t.c_dup;
      t.inbound.(dst) <- t.inbound.(dst) + 1;
      Sim.schedule_typed t.sim ~delay:(at - now + 1) ~h ~a:code ~b ~c ~o
    end;
    if t.faults.delay_prob > 0.0 && Rng.float t.rng 1.0 < t.faults.delay_prob
    then begin
      Stats.tick t.c_delayed;
      t.inbound.(dst) <- t.inbound.(dst) + 1;
      Sim.schedule_typed t.sim
        ~delay:(at - now + t.faults.delay_ticks)
        ~h ~a:code ~b ~c ~o
    end

  (* ---------------- Raw transport ---------------- *)

  (* Remote leg shared by [send] and [broadcast]: size and kind id are
     computed once by the caller, so a broadcast prices the message once,
     not once per destination. *)
  let send_remote t ~src ~dst ~size ~kind_id msg =
    if dst < 0 || dst >= t.procs then invalid_arg "Net.send: bad dst";
    t.remote <- t.remote + 1;
    t.bytes <- t.bytes + size;
    Stats.tick t.c_msgs;
    Stats.tick t.c_kind.(kind_id);
    Stats.add t.c_bytes size;
    let sid =
      Obs.emit_here t.obs ~time:(Sim.now t.sim) ~pid:src ~kind:Event.Msg_send
        ~a:dst ~b:kind_id
    in
    schedule_deliveries t ~src ~dst ~h:t.h_deliver ~b:(Obs.cur_op t.obs)
      ~c:sid ~o:(Obj.repr msg)

  (* ---------------- Reliable transport ---------------- *)

  let rel_chan t ~src ~dst =
    let i = (src * t.procs) + dst in
    match t.rel.(i) with
    | Some c -> c
    | None ->
      let c =
        (* dbperf: alloc-ok -- channel state interning miss: one record per directed pair for the run's lifetime *)
        {
          next_seq = 0;
          (* dbperf: alloc-ok -- once per directed channel pair *)
          unacked = Queue.create ();
          rto = t.rto_base;
          timer_gen = 0;
          timer_armed = false;
          sent_abs = 0;
          expect = 0;
          (* dbperf: alloc-ok -- once per directed channel pair *)
          ooo = Hashtbl.create 8;
          ack_owed = false;
          delivered_abs = 0;
        }
      in
      (* dbperf: alloc-ok -- once per directed channel pair *)
      t.rel.(i) <- Some c;
      c

  (* One reliability frame on the wire, [src] -> [dst]:
     [seq >= 0] with a payload is a data frame, [seq = -1] with no payload
     a pure cumulative ack.  [ack] always acknowledges the reverse data
     direction (dst -> src), which is what makes piggybacking free.
     A data payload carries its lineage [(msg, op, sid)] so the eventual
     handler delivery — possibly after retransmissions and out-of-order
     holds — still chains to the original [Msg_send]. *)
  let rec transmit_frame t ~src ~dst ~seq ~ack payload =
    let size =
      match payload with
      | Some (m, _, _, _) -> frame_header_bytes + M.size m
      | None -> frame_header_bytes
    in
    t.remote <- t.remote + 1;
    t.bytes <- t.bytes + size;
    Stats.tick t.c_msgs;
    Stats.add t.c_bytes size;
    (match payload with
    | Some (m, _, _, _) -> Stats.tick t.c_kind.(M.kind_id m)
    | None ->
      Stats.tick t.c_acks;
      ignore
        (Obs.emit_here t.obs ~time:(Sim.now t.sim) ~pid:src ~kind:Event.Ack
           ~a:dst ~b:ack));
    schedule_deliveries t ~src ~dst ~h:t.h_frame ~b:seq ~c:ack
      ~o:(Obj.repr payload)

  (* Data frame for (seq, msg) on channel (src, dst), piggybacking the
     cumulative ack of the reverse direction and thereby covering any ack
     the receiver side of that reverse channel still owed. *)
  and transmit_data t ~src ~dst ~seq payload =
    let rev = rel_chan t ~src:dst ~dst:src in
    rev.ack_owed <- false;
    (* dbperf: alloc-ok -- one option box per reliable data frame, dwarfed by the per-frame journal write *)
    transmit_frame t ~src ~dst ~seq ~ack:(rev.expect - 1) (Some payload)

  (* Frame arrival at [dst].  Runs the sender-side ack bookkeeping for the
     reverse direction, then the receiver-side dedup / in-order release for
     this direction's data. *)
  and recv_frame t ~src ~dst ~seq ~ack payload =
    process_ack t ~src:dst ~dst:src ack;
    match payload with
    | None -> ()
    | Some ((msg, op, sid, abs) as payload) ->
      let ch = rel_chan t ~src ~dst in
      if seq = ch.expect then begin
        ch.expect <- seq + 1;
        note_ack_owed t ~src ~dst ch;
        release_data t ~src ~dst ch ~op ~sid ~abs msg;
        release_in_order t ~src ~dst ch
      end
      else if seq < ch.expect || Hashtbl.mem ch.ooo seq then begin
        (* Already released or already held: a fault-duplicated frame or a
           retransmission that crossed our ack.  Drop it, but re-ack so the
           sender stops retransmitting. *)
        Stats.tick t.c_dup_dropped;
        note_ack_owed t ~src ~dst ch
      end
      else begin
        Stats.tick t.c_held;
        Hashtbl.replace ch.ooo seq payload;
        note_ack_owed t ~src ~dst ch
      end

  (* In-order data release with crash-recovery dedup: a message whose abs
     index is below the channel's delivered count was already released to
     the handler by a previous incarnation (the sender re-sent it from
     its journal because the ack died with the crash) — re-ack it, never
     re-deliver it. *)
  and release_data t ~src ~dst ch ~op ~sid ~abs msg =
    if abs >= 0 && abs < ch.delivered_abs then Stats.tick t.c_dup_dropped
    else begin
      if abs >= 0 then begin
        ch.delivered_abs <- abs + 1;
        match t.persist with
        | Some p -> p.p_deliver ~src ~dst ~abs
        | None -> ()
      end;
      deliver t ~src ~dst ~op ~sid msg
    end

  and release_in_order t ~src ~dst ch =
    match Hashtbl.find_opt ch.ooo ch.expect with
    | Some (msg, op, sid, abs) ->
      Hashtbl.remove ch.ooo ch.expect;
      ch.expect <- ch.expect + 1;
      release_data t ~src ~dst ch ~op ~sid ~abs msg;
      release_in_order t ~src ~dst ch
    | None -> ()

  (* Cumulative ack [ackno] for the (src, dst) data direction arrived back
     at [src]: retire covered in-flight frames; on progress, reset the
     backoff and re-arm the timer for the new oldest frame (or disarm when
     nothing is left in flight). *)
  and process_ack t ~src ~dst ackno =
    if ackno >= 0 then begin
      let ch = rel_chan t ~src ~dst in
      let progressed = ref false in
      while
        (not (Queue.is_empty ch.unacked))
        &&
        let seq, _, _, _, _ = Queue.peek ch.unacked in
        seq <= ackno
      do
        let _, abs, _, _, _ = Queue.pop ch.unacked in
        (if abs >= 0 then
           match t.persist with
           | Some p -> p.p_retire ~src ~dst ~abs
           | None -> ());
        progressed := true
      done;
      if !progressed then begin
        ch.timer_gen <- ch.timer_gen + 1;
        ch.timer_armed <- false;
        ch.rto <- t.rto_base;
        if not (Queue.is_empty ch.unacked) then arm_timer t ~src ~dst ch
      end
    end

  (* Delayed ack for data received on (src, dst): give reverse traffic
     [ack_delay] ticks to piggyback it; send a pure ack only if none did. *)
  and note_ack_owed t ~src ~dst ch =
    if not ch.ack_owed then begin
      ch.ack_owed <- true;
      (* dbperf: alloc-ok -- one deferred-ack closure per channel in flight, gated by ack_owed *)
      Sim.schedule t.sim ~delay:t.ack_delay (fun () ->
          if ch.ack_owed then begin
            ch.ack_owed <- false;
            transmit_frame t ~src:dst ~dst:src ~seq:(-1) ~ack:(ch.expect - 1)
              None
          end)
    end

  and arm_timer t ~src ~dst ch =
    ch.timer_armed <- true;
    ch.timer_gen <- ch.timer_gen + 1;
    let gen = ch.timer_gen in
    (* dbperf: alloc-ok -- one RTO-timer closure per arm: retransmission machinery, off the delivery fast path *)
    Sim.schedule t.sim ~delay:ch.rto (fun () -> on_timer t ~src ~dst ch gen)

  and on_timer t ~src ~dst ch gen =
    if gen = ch.timer_gen && ch.timer_armed then begin
      if Queue.is_empty ch.unacked then ch.timer_armed <- false
      else begin
        (* Cumulative acks: retransmitting the oldest unacked frame is
           enough — anything newer the receiver already holds in its
           out-of-order buffer. *)
        let seq, abs, msg, op, sid = Queue.peek ch.unacked in
        Stats.tick t.c_retx;
        ignore
          (Obs.emit t.obs ~time:(Sim.now t.sim) ~pid:src ~op ~parent:sid
             ~kind:Event.Retx ~a:dst ~b:seq);
        ch.rto <- min (2 * ch.rto) t.rto_max;
        (* dbperf: alloc-ok -- payload tuple rebuilt only on retransmission *)
        transmit_data t ~src ~dst ~seq (msg, op, sid, abs);
        arm_timer t ~src ~dst ch
      end
    end

  (* ---------------- Crash / restart ---------------- *)

  (* Local transmission leg shared by [send] and the restart replay of
     journaled loopback messages (which must not be re-journaled). *)
  let local_transmit t ~pid msg =
    t.local <- t.local + 1;
    Stats.tick t.c_local;
    let chan = (pid * t.procs) + pid in
    let now = Sim.now t.sim in
    let at = max (now + t.latency.local_delay) (t.channel_front.(chan) + 1) in
    t.channel_front.(chan) <- at;
    let sid =
      Obs.emit_here t.obs ~time:now ~pid ~kind:Event.Msg_send ~a:pid
        ~b:(M.kind_id msg)
    in
    Sim.schedule_typed t.sim ~delay:(at - now) ~h:t.h_deliver
      ~a:(chan_code t ~src:pid ~dst:pid)
      ~b:(Obs.cur_op t.obs) ~c:sid ~o:(Obj.repr msg)

  (* Go-back-N resume of one live sender's channel into a freshly
     restarted peer: the whole in-flight window is renumbered from 0 for
     the new incarnation and retransmitted; the receiver's journal-backed
     delivered count drops the prefix it already processed. *)
  let resume_channel t ~src ~dst ch =
    let items = List.rev (Queue.fold (fun acc e -> e :: acc) [] ch.unacked) in
    Queue.clear ch.unacked;
    ch.next_seq <- 0;
    List.iter
      (fun (_, abs, msg, op, sid) ->
        let seq = ch.next_seq in
        ch.next_seq <- seq + 1;
        Queue.push (seq, abs, msg, op, sid) ch.unacked;
        transmit_data t ~src ~dst ~seq (msg, op, sid, abs))
      items;
    ch.rto <- t.rto_base;
    ch.timer_armed <- false;
    if not (Queue.is_empty ch.unacked) then arm_timer t ~src ~dst ch

  (* Re-arm a restarted processor's durable network state from its
     journal: per-destination send indices, per-source delivered counts,
     and the unretired outbound tail (re-queued in order and
     retransmitted; the receivers dedup by abs index). *)
  let restore_proc t ~pid ~outbound ~sent ~delivered =
    List.iter
      (fun (dst, hi) ->
        if dst = pid then begin
          t.local_sent.(pid) <- hi;
          t.local_del.(pid) <- hi
        end
        else (rel_chan t ~src:pid ~dst).sent_abs <- hi)
      sent;
    List.iter
      (fun (src, n) -> (rel_chan t ~src ~dst:pid).delivered_abs <- n)
      delivered;
    List.iter
      (fun (dst, items) ->
        if dst = pid then begin
          (* unretired loopback sends: re-deliver in order; each delivery
             re-journals its retirement under the continuing index *)
          t.local_del.(pid) <- t.local_sent.(pid) - List.length items;
          List.iter (fun (_, msg) -> local_transmit t ~pid msg) items
        end
        else begin
          let ch = rel_chan t ~src:pid ~dst in
          List.iter
            (fun (abs, msg) ->
              let seq = ch.next_seq in
              ch.next_seq <- seq + 1;
              Queue.push (seq, abs, msg, -1, -1) ch.unacked;
              if not t.down.(dst) then
                transmit_data t ~src:pid ~dst ~seq (msg, -1, -1, abs))
            items;
          if (not t.down.(dst)) && not (Queue.is_empty ch.unacked) then begin
            ch.rto <- t.rto_base;
            if not ch.timer_armed then arm_timer t ~src:pid ~dst ch
          end
        end)
      outbound

  let rec do_crash t p =
    if not t.down.(p) then begin
      t.down.(p) <- true;
      t.down_at.(p) <- Sim.now t.sim;
      t.gen.(p) <- t.gen.(p) + 1;
      Stats.tick t.c_crashes;
      (match t.transport with
      | Raw -> ()
      | Reliable ->
        for q = 0 to t.procs - 1 do
          (* q -> p: the in-flight window stays queued on the live side,
             but its retransmit timer dies with the generation bump — a
             pending retransmission aimed at the dead incarnation must
             not keep backing off against a peer that cannot ack.  The
             receiver half (p's sequencing and delivered count) is part
             of the crashed state. *)
          (match t.rel.((q * t.procs) + p) with
          | Some ch ->
            ch.timer_gen <- ch.timer_gen + 1;
            ch.timer_armed <- false;
            ch.rto <- t.rto_base;
            ch.expect <- 0;
            Hashtbl.reset ch.ooo;
            ch.ack_owed <- false;
            ch.delivered_abs <- 0
          | None -> ());
          (* p -> q: the sender side died with p (its journal keeps the
             unretired tail); the live receiver resets its sequencing for
             p's next incarnation but keeps its delivered count — that
             count is what dedups p's journal-driven re-sends. *)
          if q <> p then
            match t.rel.((p * t.procs) + q) with
            | Some ch ->
              Queue.clear ch.unacked;
              ch.next_seq <- 0;
              ch.sent_abs <- 0;
              ch.timer_gen <- ch.timer_gen + 1;
              ch.timer_armed <- false;
              ch.rto <- t.rto_base;
              ch.expect <- 0;
              Hashtbl.reset ch.ooo;
              ch.ack_owed <- false
            | None -> ()
        done);
      t.on_crash p;
      Sim.schedule t.sim
        ~delay:(max 1 t.faults.restart_delay)
        (fun () -> do_restart t p)
    end

  and do_restart t p =
    t.down.(p) <- false;
    (* The owner's hook replays the journal (rebuilding state and calling
       [restore_proc]) before any channel resumes, so everything a peer
       retransmits below lands on recovered state. *)
    t.on_restart p;
    match t.transport with
    | Raw -> ()
    | Reliable ->
      for q = 0 to t.procs - 1 do
        if q <> p && not t.down.(q) then
          match t.rel.((q * t.procs) + p) with
          | Some ch ->
            (* Resume even a drained channel: [p]'s receive window was
               reset to expect seq 0, so [q]'s next fresh send must also
               restart from 0 — a channel left at its old [next_seq]
               would send a frame the new incarnation holds in its
               out-of-order buffer forever (an unfillable gap, retried
               until the clock exhausts).  On an empty queue this only
               resets the sequence window, rto, and timer. *)
            resume_channel t ~src:q ~dst:p ch
          | None -> ()
      done

  (* Public constructor: build the record, then register the two typed
     delivery handlers (they close over [t] and must see [deliver] /
     [recv_frame], hence the placement after the transport code). *)
  let create ?latency ?faults ?transport ?obs sim ~procs =
    let t = make ?latency ?faults ?transport ?obs sim ~procs in
    t.h_deliver <-
      Sim.register_handler sim (fun a b c o ->
          let p2 = t.procs * t.procs in
          let chan = a mod p2 and epoch = a / p2 in
          let src = chan / t.procs and dst = chan mod t.procs in
          (* remote arrival (stale or not): the scheduled delivery left the
             wire, so the inbox-depth gauge drops back *)
          if src <> dst then t.arrived.(dst) <- t.arrived.(dst) + 1;
          if stale t ~src ~dst ~epoch then Stats.tick t.c_stale
          else begin
            (match t.persist with
            | Some p when src = dst ->
              (* loopback deliveries retire their journal entry inside
                 the delivery event: exactly-once across a crash *)
              let abs = t.local_del.(src) in
              t.local_del.(src) <- abs + 1;
              p.p_retire ~src ~dst ~abs
            | Some _ | None -> ());
            deliver t ~src ~dst ~op:b ~sid:c (Obj.obj o : M.t)
          end);
    t.h_frame <-
      Sim.register_handler sim (fun a b c o ->
          let p2 = t.procs * t.procs in
          let chan = a mod p2 and epoch = a / p2 in
          let src = chan / t.procs and dst = chan mod t.procs in
          t.arrived.(dst) <- t.arrived.(dst) + 1;
          if stale t ~src ~dst ~epoch then Stats.tick t.c_stale
          else
            recv_frame t ~src ~dst ~seq:b ~ack:c
              (Obj.obj o : (M.t * int * int * int) option));
    let now = Sim.now sim in
    List.iter
      (fun (p, tick) ->
        if p < 0 || p >= procs then
          invalid_arg "Net.create: crash_at names an unknown processor";
        Sim.schedule sim ~delay:(max 0 (tick - now)) (fun () -> do_crash t p))
      t.faults.crash_at;
    t

  let rel_send t ~src ~dst msg =
    let ch = rel_chan t ~src ~dst in
    let seq = ch.next_seq in
    ch.next_seq <- seq + 1;
    let op, sid = note_send t ~src ~dst msg in
    let abs =
      match t.persist with
      | Some p ->
        let abs = ch.sent_abs in
        ch.sent_abs <- abs + 1;
        p.p_send ~src ~dst ~abs msg;
        abs
      | None -> -1
    in
    Queue.push (seq, abs, msg, op, sid) ch.unacked;
    (* A send aimed at a crashed peer stays queued (and journaled): it is
       transmitted when the peer's restart resumes the channel.  Arming a
       retransmit timer against a dead destination would only grow
       [net.rel.retx] against a peer that cannot ack. *)
    if not t.down.(dst) then begin
      transmit_data t ~src ~dst ~seq (msg, op, sid, abs);
      if not ch.timer_armed then begin
        ch.rto <- t.rto_base;
        arm_timer t ~src ~dst ch
      end
    end

  (* ---------------- Common entry points ---------------- *)

  let send t ~src ~dst msg =
    if dst < 0 || dst >= t.procs then invalid_arg "Net.send: bad dst";
    if src = dst then begin
      (match t.persist with
      | Some p ->
        (* loopback messages are state a crash would otherwise lose:
           journal the send; the delivery event retires it *)
        let abs = t.local_sent.(src) in
        t.local_sent.(src) <- abs + 1;
        p.p_send ~src ~dst ~abs msg
      | None -> ());
      local_transmit t ~pid:src msg
    end
    else
      match t.transport with
      | Raw ->
        send_remote t ~src ~dst ~size:(M.size msg) ~kind_id:(M.kind_id msg) msg
      | Reliable -> rel_send t ~src ~dst msg

  let broadcast t ~src ~dsts msg =
    match List.filter (fun dst -> dst <> src) dsts with
    | [] -> ()
    | dsts -> (
      match t.transport with
      | Raw ->
        let size = M.size msg and kind_id = M.kind_id msg in
        List.iter (fun dst -> send_remote t ~src ~dst ~size ~kind_id msg) dsts
      | Reliable ->
        List.iter
          (fun dst ->
            if dst < 0 || dst >= t.procs then invalid_arg "Net.send: bad dst";
            rel_send t ~src ~dst msg)
          dsts)

  let remote_messages t = t.remote
  let local_messages t = t.local
  let bytes_sent t = t.bytes
  let sent_to t pid = t.inbound.(pid)

  (* ---------------- Telemetry gauges ---------------- *)
  (* Scrape-path reads: O(1) or O(procs) walks over existing state, no
     bookkeeping added to the message hot path beyond the [arrived]
     bumps above. *)

  let in_flight t pid = t.inbound.(pid) - t.arrived.(pid)

  let retx_backlog t pid =
    match t.transport with
    | Raw -> 0
    | Reliable ->
      let n = ref 0 in
      for dst = 0 to t.procs - 1 do
        match t.rel.((pid * t.procs) + dst) with
        | Some ch -> n := !n + Queue.length ch.unacked
        | None -> ()
      done;
      !n

  let longest_down t ~now =
    let worst = ref 0 in
    for p = 0 to t.procs - 1 do
      if t.down.(p) then
        let d = now - t.down_at.(p) in
        if d > !worst then worst := d
    done;
    !worst
end
