module type MESSAGE = sig
  type t

  val kind : t -> string
  val size : t -> int
  val kind_id : t -> int
  val num_kinds : int
  val kind_name : int -> string
end

type latency = { local_delay : int; remote_base : int; remote_jitter : int }

let default_latency = { local_delay = 1; remote_base = 20; remote_jitter = 5 }
let zero_latency = { local_delay = 0; remote_base = 0; remote_jitter = 0 }

type faults = { duplicate_prob : float; delay_prob : float; delay_ticks : int }

let no_faults = { duplicate_prob = 0.0; delay_prob = 0.0; delay_ticks = 0 }

module Make (M : MESSAGE) = struct
  type pid = int

  type t = {
    sim : Sim.t;
    procs : int;
    latency : latency;
    faults : faults;
    handlers : (src:pid -> M.t -> unit) option array;
    (* Last scheduled delivery time per (src, dst) channel; FIFO is enforced
       by never scheduling a delivery at or before this time. *)
    channel_front : int array;
    inbound : int array;
    rng : Rng.t;
    mutable remote : int;
    mutable local : int;
    mutable bytes : int;
    (* Interned stat counters: resolved once here so the per-message path
       never hashes a string (in particular no "net.msg." ^ kind
       concatenation per send). *)
    c_msgs : Stats.counter;
    c_bytes : Stats.counter;
    c_local : Stats.counter;
    c_dup : Stats.counter;
    c_delayed : Stats.counter;
    c_kind : Stats.counter array;
  }

  let create ?(latency = default_latency) ?(faults = no_faults) sim ~procs =
    let stats = Sim.stats sim in
    {
      sim;
      procs;
      latency;
      faults;
      handlers = Array.make procs None;
      channel_front = Array.make (procs * procs) min_int;
      inbound = Array.make procs 0;
      rng = Rng.split (Sim.rng sim);
      remote = 0;
      local = 0;
      bytes = 0;
      c_msgs = Stats.counter stats "net.msgs";
      c_bytes = Stats.counter stats "net.bytes";
      c_local = Stats.counter stats "net.local";
      c_dup = Stats.counter stats "net.fault.duplicated";
      c_delayed = Stats.counter stats "net.fault.delayed";
      c_kind =
        Array.init M.num_kinds (fun i ->
            (* dblint: allow interned-stats -- resolved once per network at creation, not on the message path *)
            Stats.counter stats ("net.msg." ^ M.kind_name i));
    }

  let sim t = t.sim
  let procs t = t.procs

  let set_handler t pid handler =
    if pid < 0 || pid >= t.procs then invalid_arg "Net.set_handler: bad pid";
    t.handlers.(pid) <- Some handler

  let deliver t ~src ~dst msg =
    match t.handlers.(dst) with
    | Some handler -> handler ~src msg
    | None -> Fmt.failwith "Net: no handler registered for processor %d" dst

  (* Remote leg shared by [send] and [broadcast]: size and kind id are
     computed once by the caller, so a broadcast prices the message once,
     not once per destination. *)
  let send_remote t ~src ~dst ~size ~kind_id msg =
    if dst < 0 || dst >= t.procs then invalid_arg "Net.send: bad dst";
    t.remote <- t.remote + 1;
    t.bytes <- t.bytes + size;
    t.inbound.(dst) <- t.inbound.(dst) + 1;
    Stats.tick t.c_msgs;
    Stats.tick t.c_kind.(kind_id);
    Stats.add t.c_bytes size;
    let raw_delay =
      t.latency.remote_base
      + (if t.latency.remote_jitter > 0 then
           Rng.int t.rng t.latency.remote_jitter
         else 0)
    in
    let chan = (src * t.procs) + dst in
    let now = Sim.now t.sim in
    (* FIFO per channel: a message may not overtake an earlier one. *)
    let at = max (now + raw_delay) (t.channel_front.(chan) + 1) in
    t.channel_front.(chan) <- at;
    Sim.schedule t.sim ~delay:(at - now) (fun () -> deliver t ~src ~dst msg);
    (* fault injection (off by default): duplicate delivery, and FIFO
       violation via an extra late delivery of a copy *)
    if
      t.faults.duplicate_prob > 0.0
      && Rng.float t.rng 1.0 < t.faults.duplicate_prob
    then begin
      Stats.tick t.c_dup;
      Sim.schedule t.sim ~delay:(at - now + 1) (fun () ->
          deliver t ~src ~dst msg)
    end;
    if t.faults.delay_prob > 0.0 && Rng.float t.rng 1.0 < t.faults.delay_prob
    then begin
      Stats.tick t.c_delayed;
      Sim.schedule t.sim
        ~delay:(at - now + t.faults.delay_ticks)
        (fun () -> deliver t ~src ~dst msg)
    end

  let send t ~src ~dst msg =
    if dst < 0 || dst >= t.procs then invalid_arg "Net.send: bad dst";
    if src = dst then begin
      t.local <- t.local + 1;
      Stats.tick t.c_local;
      let chan = (src * t.procs) + dst in
      let now = Sim.now t.sim in
      let at = max (now + t.latency.local_delay) (t.channel_front.(chan) + 1) in
      t.channel_front.(chan) <- at;
      Sim.schedule t.sim ~delay:(at - now) (fun () -> deliver t ~src ~dst msg)
    end
    else send_remote t ~src ~dst ~size:(M.size msg) ~kind_id:(M.kind_id msg) msg

  let broadcast t ~src ~dsts msg =
    match List.filter (fun dst -> dst <> src) dsts with
    | [] -> ()
    | dsts ->
      let size = M.size msg and kind_id = M.kind_id msg in
      List.iter (fun dst -> send_remote t ~src ~dst ~size ~kind_id msg) dsts

  let remote_messages t = t.remote
  let local_messages t = t.local
  let bytes_sent t = t.bytes
  let sent_to t pid = t.inbound.(pid)
end
