(** Named counters and summaries for simulation runs.

    A [Stats.t] is a mutable bag of metrics keyed by string.  Protocol code
    increments counters ("msg.relay_insert", "split.blocked", ...) and the
    experiment harness reads them back after the run.  Two metric shapes are
    supported: integer counters and scalar summaries (count / sum / min /
    max), the latter used for latencies and queue lengths.

    Hot paths should not pay a hash + string compare per increment: resolve
    the counter once with {!counter} and bump the returned handle with
    {!tick}/{!add}.  {!incr} remains for cold paths and one-off bumps. *)

type t

type counter = int ref
(** A pre-resolved counter handle: a plain [int ref] interned in the stats
    table.  Bumping one is a load, an add, and a store — no hashing. *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
}

val create : unit -> t

val counter : t -> string -> counter
(** [counter t name] is the interned handle for [name], created at 0 if
    absent.  Repeated calls return the same ref.  A counter that is interned
    but never bumped stays invisible to {!counters}/{!pp}. *)

val tick : counter -> unit
(** Bump a pre-resolved counter by 1. *)

val add : counter -> int -> unit
(** Bump a pre-resolved counter by an arbitrary amount. *)

val value : counter -> int

val incr : ?by:int -> t -> string -> unit
(** Bump counter [name] by [by] (default 1), creating it at 0 if absent.
    String-keyed: one hashtable lookup per call — fine off the hot path. *)

val get : t -> string -> int
(** Counter value, 0 if never incremented. *)

val observe : t -> string -> float -> unit
(** Record one sample into summary [name]. *)

val summary : t -> string -> summary option
(** Summary [name] if it exists; if not, but a {!hist} of that name has
    samples, its count/sum/min/max are synthesized into a summary — so
    converting a metric from {!observe} to {!hist_observe} is invisible
    to readers. *)

val mean : summary -> float

(** {2 Log-bucketed histograms}

    16 sub-buckets per octave (≤ 6.25% relative error on percentiles);
    integer samples (ticks, bytes, queue lengths).  Unlike {!observe}
    these keep the whole distribution, so tail latency (p90/p99) is
    recoverable.  Resolve the handle once with {!hist} off the hot path;
    {!hist_observe} is a branch, a shift and two array operations. *)

type hist

val hist : t -> string -> hist
(** Interned handle for histogram [name], created empty if absent.
    Repeated calls return the same histogram.  An empty histogram stays
    invisible to {!hists}/{!summaries}/{!pp}. *)

val hist_observe : hist -> int -> unit
(** Record one sample (negative values clamp to 0). *)

val hist_count : hist -> int
val hist_sum : hist -> float
val hist_mean : hist -> float

val hist_min : hist -> int
(** Exact (not bucketed); 0 when empty. *)

val hist_max : hist -> int
(** Exact (not bucketed); 0 when empty. *)

val hist_percentile : hist -> float -> int
(** [hist_percentile h p] for [p] in [\[0, 100\]]: nearest-rank
    percentile over bucket lower bounds, clamped to the exact
    [\[min, max\]].  0 when empty.

    Two percentile definitions coexist in this repo.  This bucketed one
    (≤ 6.25% relative error) is what BENCH.json's [latency] section and
    the telemetry sketches report; experiment latency columns (e.g.
    E17's [search_p99]) use [Opstate.latency_percentile], the exact
    nearest-rank over per-op samples.  A qcheck property in
    [test/test_telemetry.ml] pins their divergence to at most one
    log-bucket. *)

val hists : t -> (string * hist) list
(** All non-empty histograms, sorted by name. *)

val sorted_bindings : ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings of any hash table, sorted by key (polymorphic compare).
    This is the sanctioned deterministic replacement for
    [Hashtbl.iter]/[Hashtbl.fold], whose order is unspecified — the
    [no-nondeterminism] lint rule points here.  Keys are assumed unique
    per table. *)

val counters : t -> (string * int) list
(** All nonzero counters, sorted by name. *)

val counter_handles : t -> (string * counter) list
(** Every interned counter handle (still-zero ones included), sorted by
    name.  For telemetry registration: the scrape path reads the refs
    directly, so handles interned after registration need another
    registration pass by the owner. *)

val summaries : t -> (string * summary) list
(** Direct summaries plus one synthesized from each non-empty {!hist}
    whose name has no direct summary, sorted by name. *)

val get_prefix : t -> string -> int
(** [get_prefix t p] sums every counter whose name starts with [p]. *)

val reset : t -> unit
(** Zero every counter and histogram and drop every summary.  Interned
    handles from {!counter}/{!hist} remain valid (they are zeroed in
    place, not discarded). *)

val pp : t Fmt.t
(** Render all metrics, one per line, for debugging. *)
