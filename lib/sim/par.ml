(* Deterministic domain-parallel map over independent simulation cells.

   The simulator core is single-threaded by design — determinism comes
   from one event queue, one Rng lineage, one processed-counter.  The
   parallelism the scale experiments need is coarser: whole *cells*
   (one cluster + workload per parameter point) that share nothing.
   [map] farms such cells out to OCaml 5 domains and merges results in
   input order, so the output — and anything rendered from it — is
   byte-identical to a sequential run.  This is conservative lookahead
   taken to its fixed point: the cells exchange no messages, so every
   cell's horizon is infinite and no synchronisation protocol is needed.

   Work distribution is an atomic take-a-number counter.  The *schedule*
   (which domain runs which cell, and when) is nondeterministic; the
   *result* is not, because slot [i] of the output is written by exactly
   one worker, from inputs alone.  Exceptions are captured per cell and
   re-raised for the lowest failing index after all domains join, so
   even failure behaviour does not depend on domain interleaving. *)

let available () = Domain.recommended_domain_count ()

let parse_domains s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some d -> Ok (max 1 d)
  | None ->
    Error (Fmt.str "DBTREE_DOMAINS=%S is not an integer; running sequentially" s)

(* Warn on a broken DBTREE_DOMAINS once per process, not once per
   [Par.map] — an experiment grid calls this per table.  [exchange] keeps
   the flag inside dbrace's atomic discipline (a get/set pair would be a
   split read-modify-write, and genuinely racy from two spawners). *)
let warned = Atomic.make false

let domains_of_env = function
  | None -> 1
  | Some s -> (
    match parse_domains s with
    | Ok d -> d
    | Error msg ->
      if not (Atomic.exchange warned true) then Fmt.epr "dbtree: %s@." msg;
      1)

let default_domains () = domains_of_env (Sys.getenv_opt "DBTREE_DOMAINS")

let run_cells f xs n d =
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (try Ok (f xs.(i)) with e -> Error e);
        go ()
      end
    in
    go ()
  in
  let doms = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join doms;
  Array.map
    (function
      | Some (Ok r) -> r
      | Some (Error e) -> raise e
      | None -> assert false)
    results

let map ?domains f xs =
  let n = Array.length xs in
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  let d = min d n in
  if d <= 1 then Array.map f xs else run_cells f xs n d
