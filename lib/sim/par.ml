(* Deterministic domain-parallel map over independent simulation cells.

   The simulator core is single-threaded by design — determinism comes
   from one event queue, one Rng lineage, one processed-counter.  The
   parallelism the scale experiments need is coarser: whole *cells*
   (one cluster + workload per parameter point) that share nothing.
   [map] farms such cells out to OCaml 5 domains and merges results in
   input order, so the output — and anything rendered from it — is
   byte-identical to a sequential run.  This is conservative lookahead
   taken to its fixed point: the cells exchange no messages, so every
   cell's horizon is infinite and no synchronisation protocol is needed.

   Work distribution is an atomic take-a-number counter.  The *schedule*
   (which domain runs which cell, and when) is nondeterministic; the
   *result* is not, because slot [i] of the output is written by exactly
   one worker, from inputs alone.  Exceptions are captured per cell and
   re-raised for the lowest failing index after all domains join, so
   even failure behaviour does not depend on domain interleaving. *)

let available () = Domain.recommended_domain_count ()

let default_domains () =
  match Sys.getenv_opt "DBTREE_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let run_cells f xs n d =
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (try Ok (f xs.(i)) with e -> Error e);
        go ()
      end
    in
    go ()
  in
  let doms = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join doms;
  Array.map
    (function
      | Some (Ok r) -> r
      | Some (Error e) -> raise e
      | None -> assert false)
    results

let map ?domains f xs =
  let n = Array.length xs in
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  let d = min d n in
  if d <= 1 then Array.map f xs else run_cells f xs n d
