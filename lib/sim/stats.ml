type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
}

type counter = int ref

type t = {
  counters : (string, int ref) Hashtbl.t;
  summaries : (string, summary ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; summaries = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let tick (c : counter) = incr c
let add (c : counter) by = c := !c + by
let value (c : counter) = !c
let incr ?(by = 1) t name = add (counter t name) by

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name x =
  match Hashtbl.find_opt t.summaries name with
  | Some r ->
    let s = !r in
    r :=
      {
        count = s.count + 1;
        sum = s.sum +. x;
        min = Float.min s.min x;
        max = Float.max s.max x;
      }
  | None ->
    Hashtbl.add t.summaries name (ref { count = 1; sum = x; min = x; max = x })

let summary t name =
  Option.map (fun r -> !r) (Hashtbl.find_opt t.summaries name)

let mean s = if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

(* The one sanctioned way to walk a hash table outside [Rng]/bench code:
   materialize the bindings and sort them by key, so iteration order never
   depends on the table's bucket layout (which would leak into schedules,
   reports and regressions under randomized hashing or a stdlib change).
   Keys are assumed unique per table, as [Hashtbl.replace]-style use
   guarantees. *)
let sorted_bindings tbl =
  (* dblint: allow no-nondeterminism -- this is the sorted-keys helper itself: the unordered fold feeds an immediate sort *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Interned counters exist from the moment they are resolved, before any
   increment; listings skip the still-zero ones so pre-interning is
   invisible in reports. *)
let counters t =
  sorted_bindings t.counters
  |> List.filter_map (fun (k, r) -> if !r <> 0 then Some (k, !r) else None)

let summaries t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.summaries)

let get_prefix t p =
  let plen = String.length p in
  List.fold_left
    (fun acc (k, r) ->
      if String.length k >= plen && String.sub k 0 plen = p then acc + !r
      else acc)
    0
    (sorted_bindings t.counters)

let reset t =
  (* Zero in place: interned counter handles must stay live across a
     reset, so the refs are kept and only their contents dropped. *)
  (* dblint: allow no-nondeterminism -- zeroing refs in place is order-insensitive *)
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.reset t.summaries

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%s = %d@." k v) (counters t);
  List.iter
    (fun (k, s) ->
      Fmt.pf ppf "%s: n=%d mean=%.2f min=%.2f max=%.2f@." k s.count (mean s)
        s.min s.max)
    (summaries t)
