type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
}

type counter = int ref

(* Log-bucketed histogram: 16 sub-buckets per octave (<= 6.25% relative
   error on percentiles), values below 16 bucketed exactly.  Observation
   is branch + shift + two array ops — cheap enough for hot paths, and
   unlike the count/sum/min/max summary it keeps the whole latency
   distribution (p50/p90/p99 instead of a lossy mean).

   The bucketing scheme itself lives in [Dbtree_obs.Logbucket] so the
   telemetry plane's window sketches index the same bucket space. *)

module Logbucket = Dbtree_obs.Logbucket

let num_buckets = Logbucket.num_buckets

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : int;
  mutable h_max : int;
  buckets : int array;
}

let bucket_index = Logbucket.index
let bucket_lower = Logbucket.lower

type t = {
  counters : (string, int ref) Hashtbl.t;
  summaries : (string, summary ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    summaries = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

(* [Stdlib.incr] written out: a bare [incr] reads as the 2-argument
   [Stats.incr] below, which would be a closure per tick. *)
let tick (c : counter) = Stdlib.incr c
let add (c : counter) by = c := !c + by
let value (c : counter) = !c
let incr ?(by = 1) t name = add (counter t name) by

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name x =
  match Hashtbl.find_opt t.summaries name with
  | Some r ->
    let s = !r in
    r :=
      {
        count = s.count + 1;
        sum = s.sum +. x;
        min = Float.min s.min x;
        max = Float.max s.max x;
      }
  | None ->
    Hashtbl.add t.summaries name (ref { count = 1; sum = x; min = x; max = x })

let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h =
      {
        h_count = 0;
        h_sum = 0.0;
        h_min = max_int;
        h_max = 0;
        buckets = Array.make num_buckets 0;
      }
    in
    Hashtbl.add t.hists name h;
    h

let hist_observe h v =
  let v = if v < 0 then 0 else v in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. float_of_int v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_min h = if h.h_count = 0 then 0 else h.h_min
let hist_max h = h.h_max

let hist_mean h =
  if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

(* Nearest-rank percentile over bucket lower bounds, clamped into the
   exact [min, max] so p0/p100 are not distorted by bucket rounding. *)
let hist_percentile h p =
  if h.h_count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let rec walk i seen =
      if i >= num_buckets then h.h_max
      else
        let seen = seen + h.buckets.(i) in
        if seen >= rank then bucket_lower i else walk (i + 1) seen
    in
    (* The top rank is the maximum itself — report it exactly. *)
    let v = if rank = h.h_count then h.h_max else walk 0 0 in
    if v < h.h_min then h.h_min else if v > h.h_max then h.h_max else v
  end

let hist_to_summary h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = float_of_int (hist_min h);
    max = float_of_int h.h_max;
  }

let summary t name =
  match Hashtbl.find_opt t.summaries name with
  | Some r -> Some !r
  | None -> (
    (* Histograms answer summary lookups too, so converting a metric
       from [observe] to [hist_observe] does not break readers. *)
    match Hashtbl.find_opt t.hists name with
    | Some h when h.h_count > 0 -> Some (hist_to_summary h)
    | _ -> None)

let mean s = if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

(* The one sanctioned way to walk a hash table outside [Rng]/bench code:
   materialize the bindings and sort them by key, so iteration order never
   depends on the table's bucket layout (which would leak into schedules,
   reports and regressions under randomized hashing or a stdlib change).
   Keys are assumed unique per table, as [Hashtbl.replace]-style use
   guarantees. *)
let sorted_bindings tbl =
  (* dblint: allow no-nondeterminism -- this is the sorted-keys helper itself: the unordered fold feeds an immediate sort *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Interned counters exist from the moment they are resolved, before any
   increment; listings skip the still-zero ones so pre-interning is
   invisible in reports. *)
let counters t =
  sorted_bindings t.counters
  |> List.filter_map (fun (k, r) -> if !r <> 0 then Some (k, !r) else None)

(* Live handles, still-zero ones included — telemetry registers these
   once and reads the refs directly on every scrape. *)
let counter_handles t = sorted_bindings t.counters

let hists t =
  sorted_bindings t.hists |> List.filter (fun (_, h) -> h.h_count > 0)

let summaries t =
  let direct =
    List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.summaries)
  in
  let from_hists =
    List.filter_map
      (fun (k, h) ->
        if Hashtbl.mem t.summaries k then None
        else Some (k, hist_to_summary h))
      (hists t)
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (direct @ from_hists)

let get_prefix t p =
  let plen = String.length p in
  List.fold_left
    (fun acc (k, r) ->
      if String.length k >= plen && String.sub k 0 plen = p then acc + !r
      else acc)
    0
    (sorted_bindings t.counters)

let reset t =
  (* Zero in place: interned counter handles must stay live across a
     reset, so the refs are kept and only their contents dropped. *)
  (* dblint: allow no-nondeterminism -- zeroing refs in place is order-insensitive *)
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.reset t.summaries;
  (* Histogram handles stay live across a reset, like counters. *)
  (* dblint: allow no-nondeterminism -- zeroing hists in place is order-insensitive *)
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- max_int;
      h.h_max <- 0;
      Array.fill h.buckets 0 num_buckets 0)
    t.hists

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%s = %d@." k v) (counters t);
  List.iter
    (fun (k, s) ->
      Fmt.pf ppf "%s: n=%d mean=%.2f min=%.2f max=%.2f@." k s.count (mean s)
        s.min s.max)
    (summaries t);
  List.iter
    (fun (k, h) ->
      Fmt.pf ppf "%s: p50=%d p90=%d p99=%d@." k (hist_percentile h 50.0)
        (hist_percentile h 90.0) (hist_percentile h 99.0))
    (hists t)
