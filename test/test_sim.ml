(* Tests for the simulator substrate: rng, stats, event loop, and the
   FIFO network guarantees every protocol relies on. *)
open Dbtree_sim

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  (* Drawing from the child must not perturb the parent relative to a
     parent that split and then drew nothing from the child. *)
  let a' = Rng.create 7 in
  let _ = Rng.split a' in
  for _ = 1 to 10 do
    ignore (Rng.bits64 c)
  done;
  Alcotest.(check int64) "parent unaffected" (Rng.bits64 a') (Rng.bits64 a)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done;
  for _ = 1 to 1000 do
    let x = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (x >= -5 && x <= 5)
  done

let test_rng_permutation () =
  let rng = Rng.create 11 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 Fun.id) sorted

(* The monomorphic event queue must dequeue in (time, seq) order — checked
   against the obvious reference model (sort the pairs). *)
let prop_evq_order =
  QCheck.Test.make ~name:"event queue pops in (time, seq) order" ~count:200
    QCheck.(list small_nat)
    (fun times ->
      let q = Evq.create () in
      let out = ref [] in
      List.iteri
        (fun seq time ->
          Evq.add q ~key:(Evq.pack ~time ~seq) (fun () ->
              out := (time, seq) :: !out))
        times;
      let rec drain () =
        if not (Evq.is_empty q) then begin
          (Evq.pop_min q) ();
          drain ()
        end
      in
      drain ();
      List.rev !out = List.sort compare (List.mapi (fun i t -> (t, i)) times))

(* Same, with pops interleaved among the adds: after every operation the
   queue must agree with a sorted-list model. *)
let prop_evq_interleaved =
  QCheck.Test.make ~name:"event queue matches model under interleaving"
    ~count:200
    QCheck.(list (option small_nat))
    (fun ops ->
      let q = Evq.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | Some time ->
            let key = Evq.pack ~time ~seq:!seq in
            incr seq;
            Evq.add q ~key (fun () -> ());
            model := List.sort compare (key :: !model)
          | None -> (
            match !model with
            | [] -> if not (Evq.is_empty q) then ok := false
            | m :: rest ->
              if Evq.min_key q <> m then ok := false;
              let (_ : unit -> unit) = Evq.pop_min q in
              model := rest));
          if Evq.length q <> List.length !model then ok := false)
        ops;
      !ok)

(* The wheel must reproduce the single-heap (time, insertion) order
   exactly — including across the window/overflow boundary and for
   same-timestamp batches.  Driver: random interleavings of schedule
   (delays chosen to straddle [Wheel.window]) and pop, checked against a
   stable-minimum model over the insertion list. *)
let prop_wheel_order =
  QCheck.Test.make ~name:"wheel matches (time, insertion) model" ~count:500
    QCheck.(pair (int_bound 3) (list (option (int_bound (3 * Wheel.window)))))
    (fun (divisor, ops) ->
      (* [divisor] skews delays toward the interesting boundaries. *)
      let w = Wheel.create () in
      let cell = Wheel.make_cell () in
      let model = ref [] in
      (* insertion order; stable min = pop order *)
      let now = ref 0 in
      let next_id = ref 0 in
      let ok = ref true in
      let stable_min l =
        List.fold_left
          (fun best (time, id) ->
            match best with
            | Some (bt, _) when bt <= time -> best
            | _ -> Some (time, id))
          None l
      in
      List.iter
        (fun op ->
          (match op with
          | Some delay ->
            let time = !now + (delay / (divisor + 1)) in
            let id = !next_id in
            incr next_id;
            Wheel.schedule_typed w ~time ~h:id ~a:0 ~b:0 ~c:0 ~o:(Obj.repr 0);
            model := !model @ [ (time, id) ]
          | None -> (
            match stable_min !model with
            | None ->
              if Wheel.pop_into w cell then ok := false;
              if Wheel.next_time w <> max_int then ok := false
            | Some (time, id) ->
              if Wheel.next_time w <> time then ok := false;
              if not (Wheel.pop_into w cell) then ok := false
              else begin
                if cell.Wheel.time <> time || cell.Wheel.h <> id then
                  ok := false;
                now := time;
                model := List.filter (fun (_, i) -> i <> id) !model
              end));
          if Wheel.length w <> List.length !model then ok := false)
        ops;
      !ok)

(* Exact active-window boundary, pinned (the audit found no off-by-one;
   these cases keep it that way).  From a drained position [p], delay
   [window - 1] is the last ring bucket; delay [window] would land on the
   slot currently draining and must take the overflow heap instead.
   Either way pop order stays exact (time, insertion) order. *)
let test_wheel_window_boundary () =
  let w = Wheel.create () in
  let cell = Wheel.make_cell () in
  let sched time h =
    Wheel.schedule_typed w ~time ~h ~a:0 ~b:0 ~c:0 ~o:(Obj.repr 0)
  in
  let pop_expect time h =
    Alcotest.(check int) "next_time" time (Wheel.next_time w);
    Alcotest.(check bool) "pop" true (Wheel.pop_into w cell);
    Alcotest.(check int) "pop time" time cell.Wheel.time;
    Alcotest.(check int) "pop id" h cell.Wheel.h
  in
  (* from position 0, scheduled out of order on purpose *)
  sched (Wheel.window + 1) 3;
  sched (Wheel.window - 1) 1;
  sched Wheel.window 2;
  Alcotest.(check int) "window and window+1 overflowed" 2
    (Wheel.overflow_seq w);
  pop_expect (Wheel.window - 1) 1;
  pop_expect Wheel.window 2;
  pop_expect (Wheel.window + 1) 3;
  (* the same boundary relative to an advanced drained position *)
  let p = Wheel.window + 1 in
  let base = Wheel.overflow_seq w in
  sched (p + Wheel.window - 1) 4;
  Alcotest.(check int) "window-1 from pos stays in the ring" base
    (Wheel.overflow_seq w);
  sched (p + Wheel.window) 5;
  Alcotest.(check int) "window from pos overflows" (base + 1)
    (Wheel.overflow_seq w);
  pop_expect (p + Wheel.window - 1) 4;
  pop_expect (p + Wheel.window) 5;
  Alcotest.(check bool) "drained" false (Wheel.pop_into w cell)

(* An event scheduled for the tick that is currently draining (delay 0
   from inside a handler — e.g. a restart landing on the restart tick
   itself) fires later in the same tick in insertion order, not a full
   window lap later. *)
let test_wheel_drained_tick_reschedule () =
  let w = Wheel.create () in
  let cell = Wheel.make_cell () in
  let sched time h =
    Wheel.schedule_typed w ~time ~h ~a:0 ~b:0 ~c:0 ~o:(Obj.repr 0)
  in
  let pop_expect time h =
    Alcotest.(check bool) "pop" true (Wheel.pop_into w cell);
    Alcotest.(check int) "pop time" time cell.Wheel.time;
    Alcotest.(check int) "pop id" h cell.Wheel.h
  in
  sched 5 1;
  pop_expect 5 1;
  (* tick 5 is now the drained position *)
  sched 5 2;
  sched 6 4;
  sched 5 3;
  pop_expect 5 2;
  pop_expect 5 3;
  pop_expect 6 4;
  Alcotest.(check bool) "drained" false (Wheel.pop_into w cell)

(* The same two edges through the public simulator API: a restart-style
   delay of exactly [Wheel.window] and a delay-0 self-reschedule both
   fire, at the expected times. *)
let test_sim_window_delay () =
  let sim = Sim.create ~seed:1 () in
  let fired = ref [] in
  Sim.schedule sim ~delay:3 (fun () ->
      let t0 = Sim.now sim in
      Sim.schedule sim ~delay:Wheel.window (fun () ->
          fired := ("window", Sim.now sim - t0) :: !fired);
      Sim.schedule sim ~delay:0 (fun () ->
          fired := ("zero", Sim.now sim - t0) :: !fired));
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "fire offsets" [ ("window", Wheel.window); ("zero", 0) ] !fired

(* Random schedule/pop interleavings concentrated within a few ticks of
   the window boundary, against the same stable-minimum model. *)
let prop_wheel_boundary =
  QCheck.Test.make ~name:"wheel boundary delays match model" ~count:300
    QCheck.(list (option (int_bound 8)))
    (fun ops ->
      let w = Wheel.create () in
      let cell = Wheel.make_cell () in
      let model = ref [] in
      let now = ref 0 in
      let next_id = ref 0 in
      let ok = ref true in
      let stable_min l =
        List.fold_left
          (fun best (time, id) ->
            match best with
            | Some (bt, _) when bt <= time -> best
            | _ -> Some (time, id))
          None l
      in
      List.iter
        (fun op ->
          (match op with
          | Some k ->
            (* delays window-4 .. window+4 around the drained position *)
            let time = !now + Wheel.window - 4 + k in
            let id = !next_id in
            incr next_id;
            Wheel.schedule_typed w ~time ~h:id ~a:0 ~b:0 ~c:0 ~o:(Obj.repr 0);
            model := !model @ [ (time, id) ]
          | None -> (
            match stable_min !model with
            | None ->
              if Wheel.pop_into w cell then ok := false;
              if Wheel.next_time w <> max_int then ok := false
            | Some (time, id) ->
              if Wheel.next_time w <> time then ok := false;
              if not (Wheel.pop_into w cell) then ok := false
              else begin
                if cell.Wheel.time <> time || cell.Wheel.h <> id then
                  ok := false;
                now := time;
                model := List.filter (fun (_, i) -> i <> id) !model
              end));
          if Wheel.length w <> List.length !model then ok := false)
        ops;
      !ok)

let test_stats () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr ~by:4 s "a";
  Stats.incr s "b.x";
  Stats.incr s "b.y";
  Alcotest.(check int) "counter" 5 (Stats.get s "a");
  Alcotest.(check int) "absent counter" 0 (Stats.get s "zzz");
  Alcotest.(check int) "prefix sum" 2 (Stats.get_prefix s "b.");
  Stats.observe s "lat" 10.0;
  Stats.observe s "lat" 30.0;
  let sum = Option.get (Stats.summary s "lat") in
  Alcotest.(check int) "observations" 2 sum.Stats.count;
  Alcotest.(check (float 0.001)) "mean" 20.0 (Stats.mean sum);
  Alcotest.(check (float 0.001)) "min" 10.0 sum.Stats.min;
  Alcotest.(check (float 0.001)) "max" 30.0 sum.Stats.max

let test_stats_interned () =
  let s = Stats.create () in
  let c = Stats.counter s "hot.counter" in
  Alcotest.(check bool) "same handle" true (c == Stats.counter s "hot.counter");
  (* interned but untouched: invisible in listings *)
  Alcotest.(check (list (pair string int))) "zero hidden" [] (Stats.counters s);
  Stats.tick c;
  Stats.add c 4;
  Alcotest.(check int) "handle and string key agree" 5 (Stats.get s "hot.counter");
  Stats.incr ~by:2 s "hot.counter";
  Alcotest.(check int) "string incr lands on the handle" 7 (Stats.value c);
  Alcotest.(check (list (pair string int)))
    "listed once nonzero" [ ("hot.counter", 7) ] (Stats.counters s);
  Stats.reset s;
  Alcotest.(check int) "reset zeroes" 0 (Stats.get s "hot.counter");
  Stats.tick c;
  Alcotest.(check int) "handle survives reset" 1 (Stats.get s "hot.counter")

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:10 (fun () -> log := 10 :: !log);
  Sim.schedule sim ~delay:5 (fun () -> log := 5 :: !log);
  Sim.schedule sim ~delay:5 (fun () -> log := 6 :: !log);
  Sim.schedule sim ~delay:0 (fun () -> log := 0 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "time order, FIFO ties" [ 0; 5; 6; 10 ]
    (List.rev !log);
  Alcotest.(check int) "clock at last event" 10 (Sim.now sim)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then begin
      incr count;
      Sim.schedule sim ~delay:1 (fun () -> chain (n - 1))
    end
  in
  Sim.schedule sim ~delay:0 (fun () -> chain 50);
  Sim.run sim;
  Alcotest.(check int) "all chained events ran" 50 !count;
  Alcotest.(check int) "quiescent" 0 (Sim.pending sim)

let test_sim_budget () =
  let sim = Sim.create () in
  let rec forever () = Sim.schedule sim ~delay:1 forever in
  Sim.schedule sim ~delay:0 forever;
  Alcotest.check_raises "budget backstop" Sim.Budget_exhausted (fun () ->
      Sim.run ~max_events:100 sim)

let test_sim_max_time () =
  let sim = Sim.create () in
  let ran = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(i * 10) (fun () -> incr ran)
  done;
  Sim.run ~max_time:50 sim;
  Alcotest.(check int) "events within horizon" 5 !ran;
  Sim.run sim;
  Alcotest.(check int) "rest on resume" 10 !ran

module TestMsg = struct
  type t = int

  let kind _ = "test"
  let size _ = 8
  let kind_id _ = 0
  let num_kinds = 1
  let kind_name _ = "test"
end

module TestNet = Net.Make (TestMsg)

let test_net_fifo () =
  let sim = Sim.create () in
  (* Jitter would reorder messages without the FIFO enforcement. *)
  let latency = { Net.local_delay = 1; remote_base = 5; remote_jitter = 20 } in
  let net = TestNet.create ~latency sim ~procs:2 in
  let received = ref [] in
  TestNet.set_handler net 0 (fun ~src:_ _ -> ());
  TestNet.set_handler net 1 (fun ~src:_ v -> received := v :: !received);
  for i = 1 to 50 do
    TestNet.send net ~src:0 ~dst:1 i
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO per channel"
    (List.init 50 (fun i -> i + 1))
    (List.rev !received)

(* Two senders interleaving into one destination (and one sender fanning
   out to two): per-channel FIFO must hold independently on every channel
   under jitter — pins the guarantee across the scheduler swap. *)
let test_net_fifo_channels () =
  let sim = Sim.create () in
  let latency = { Net.local_delay = 1; remote_base = 5; remote_jitter = 20 } in
  let net = TestNet.create ~latency sim ~procs:3 in
  let at2 = ref [] and at1 = ref [] in
  TestNet.set_handler net 0 (fun ~src:_ _ -> ());
  TestNet.set_handler net 1 (fun ~src:_ v -> at1 := v :: !at1);
  TestNet.set_handler net 2 (fun ~src v -> at2 := (src, v) :: !at2);
  for i = 1 to 30 do
    TestNet.send net ~src:0 ~dst:2 i;
    TestNet.send net ~src:1 ~dst:2 (100 + i);
    TestNet.send net ~src:0 ~dst:1 (200 + i)
  done;
  Sim.run sim;
  let from src =
    List.filter_map (fun (s, v) -> if s = src then Some v else None)
      (List.rev !at2)
  in
  Alcotest.(check (list int)) "channel 0->2 FIFO"
    (List.init 30 (fun i -> i + 1))
    (from 0);
  Alcotest.(check (list int)) "channel 1->2 FIFO"
    (List.init 30 (fun i -> 101 + i))
    (from 1);
  Alcotest.(check (list int)) "channel 0->1 FIFO"
    (List.init 30 (fun i -> 201 + i))
    (List.rev !at1)

let test_net_accounting () =
  let sim = Sim.create () in
  let net = TestNet.create sim ~procs:3 in
  for p = 0 to 2 do
    TestNet.set_handler net p (fun ~src:_ _ -> ())
  done;
  TestNet.send net ~src:0 ~dst:1 1;
  TestNet.send net ~src:0 ~dst:2 2;
  TestNet.send net ~src:1 ~dst:1 3;
  (* local *)
  Sim.run sim;
  Alcotest.(check int) "remote messages" 2 (TestNet.remote_messages net);
  Alcotest.(check int) "local messages" 1 (TestNet.local_messages net);
  Alcotest.(check int) "bytes" 16 (TestNet.bytes_sent net);
  Alcotest.(check int) "inbound to 1" 1 (TestNet.sent_to net 1);
  Alcotest.(check int) "stats mirror" 2 (Stats.get (Sim.stats sim) "net.msgs")

let test_net_fault_injection () =
  let sim = Sim.create () in
  let faults =
    { Net.no_faults with Net.duplicate_prob = 1.0 }
  in
  let net = TestNet.create ~faults sim ~procs:2 in
  let received = ref 0 in
  TestNet.set_handler net 0 (fun ~src:_ _ -> ());
  TestNet.set_handler net 1 (fun ~src:_ _ -> incr received);
  for i = 1 to 10 do
    TestNet.send net ~src:0 ~dst:1 i
  done;
  Sim.run sim;
  Alcotest.(check int) "every message duplicated" 20 !received;
  Alcotest.(check int) "duplication counted" 10
    (Stats.get (Sim.stats sim) "net.fault.duplicated");
  (* Fault-injected deliveries used to bypass the inbound accounting:
     [sent_to] must count every delivery actually scheduled, duplicates
     included, so it agrees with what the handler observes. *)
  Alcotest.(check int) "inbound counts duplicated deliveries" !received
    (TestNet.sent_to net 1)

let test_net_drop_fault () =
  let sim = Sim.create () in
  let faults =
    { Net.no_faults with Net.drop_prob = 1.0 }
  in
  let net = TestNet.create ~faults sim ~procs:2 in
  let received = ref 0 in
  TestNet.set_handler net 0 (fun ~src:_ _ -> ());
  TestNet.set_handler net 1 (fun ~src:_ _ -> incr received);
  for i = 1 to 10 do
    TestNet.send net ~src:0 ~dst:1 i
  done;
  Sim.run sim;
  Alcotest.(check int) "nothing delivered" 0 !received;
  Alcotest.(check int) "drops counted" 10
    (Stats.get (Sim.stats sim) "net.fault.dropped");
  Alcotest.(check int) "nothing scheduled inbound" 0 (TestNet.sent_to net 1);
  (* The sender still paid for the transmissions. *)
  Alcotest.(check int) "remote messages counted" 10 (TestNet.remote_messages net)

let test_schedule_exhaustion_guard () =
  (* The packed clock reserves the top of the time range; scheduling past it
     must raise cleanly instead of corrupting the queue's key order. *)
  let sim = Sim.create () in
  Alcotest.check_raises "beyond max_time"
    (Invalid_argument
       (Printf.sprintf "Sim.schedule: packed clock exhausted (time=%d seq=%d)"
          Evq.max_time 0))
    (fun () -> Sim.schedule sim ~delay:Evq.max_time (fun () -> ()));
  (* The failed call must not have consumed a seq slot or enqueued junk:
     ordinary scheduling still works and runs in order. *)
  let out = ref [] in
  Sim.schedule sim ~delay:5 (fun () -> out := 5 :: !out);
  Sim.schedule sim ~delay:1 (fun () -> out := 1 :: !out);
  Sim.run sim;
  Alcotest.(check (list int)) "queue intact after guard" [ 5; 1 ] !out

let test_net_no_faults_by_default () =
  let sim = Sim.create () in
  let net = TestNet.create sim ~procs:2 in
  let received = ref 0 in
  TestNet.set_handler net 0 (fun ~src:_ _ -> ());
  TestNet.set_handler net 1 (fun ~src:_ _ -> incr received);
  for i = 1 to 10 do
    TestNet.send net ~src:0 ~dst:1 i
  done;
  Sim.run sim;
  Alcotest.(check int) "exactly once" 10 !received

let test_hist () =
  let st = Stats.create () in
  let h = Stats.hist st "lat" in
  for v = 1 to 1000 do
    Stats.hist_observe h v
  done;
  Alcotest.(check int) "count" 1000 (Stats.hist_count h);
  Alcotest.(check int) "min" 1 (Stats.hist_min h);
  Alcotest.(check int) "max" 1000 (Stats.hist_max h);
  (* log-bucketed percentiles carry <= 6.25% relative error *)
  let p50 = Stats.hist_percentile h 50.0 in
  Alcotest.(check bool) "p50 near 500" true (abs (p50 - 500) <= 32);
  let p99 = Stats.hist_percentile h 99.0 in
  Alcotest.(check bool) "p99 near 990" true (abs (p99 - 990) <= 64);
  Alcotest.(check int) "p100 exact" 1000 (Stats.hist_percentile h 100.0);
  Alcotest.(check int) "p0 clamps to min" 1 (Stats.hist_percentile h 0.0)

let test_hist_summary_fallback () =
  let st = Stats.create () in
  let h = Stats.hist st "x" in
  Stats.hist_observe h 10;
  Stats.hist_observe h 30;
  match Stats.summary st "x" with
  | None -> Alcotest.fail "summary should fall back to the histogram"
  | Some s ->
    Alcotest.(check int) "count" 2 s.Stats.count;
    Alcotest.(check (float 0.0)) "min" 10.0 s.Stats.min;
    Alcotest.(check (float 0.0)) "max" 30.0 s.Stats.max

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: permutation" `Quick test_rng_permutation;
    QCheck_alcotest.to_alcotest prop_evq_order;
    QCheck_alcotest.to_alcotest prop_evq_interleaved;
    QCheck_alcotest.to_alcotest prop_wheel_order;
    Alcotest.test_case "wheel: exact window boundary" `Quick
      test_wheel_window_boundary;
    Alcotest.test_case "wheel: reschedule onto the draining tick" `Quick
      test_wheel_drained_tick_reschedule;
    Alcotest.test_case "sim: window-length and zero delays" `Quick
      test_sim_window_delay;
    QCheck_alcotest.to_alcotest prop_wheel_boundary;
    Alcotest.test_case "stats: counters and summaries" `Quick test_stats;
    Alcotest.test_case "stats: interned counter handles" `Quick
      test_stats_interned;
    Alcotest.test_case "sim: event ordering" `Quick test_sim_ordering;
    Alcotest.test_case "sim: nested scheduling" `Quick test_sim_nested_schedule;
    Alcotest.test_case "sim: budget backstop" `Quick test_sim_budget;
    Alcotest.test_case "sim: max_time horizon" `Quick test_sim_max_time;
    Alcotest.test_case "net: FIFO under jitter" `Quick test_net_fifo;
    Alcotest.test_case "net: FIFO independent per channel" `Quick
      test_net_fifo_channels;
    Alcotest.test_case "net: accounting" `Quick test_net_accounting;
    Alcotest.test_case "net: fault injection" `Quick test_net_fault_injection;
    Alcotest.test_case "net: drop fault" `Quick test_net_drop_fault;
    Alcotest.test_case "sim: schedule exhaustion guard" `Quick
      test_schedule_exhaustion_guard;
    Alcotest.test_case "net: exactly-once by default" `Quick
      test_net_no_faults_by_default;
    Alcotest.test_case "hist: log-bucketed percentiles" `Quick test_hist;
    Alcotest.test_case "hist: summary fallback" `Quick
      test_hist_summary_fallback;
  ]
