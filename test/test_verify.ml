(* The verifier must actually catch each class of damage — these tests
   build a healthy cluster and then tamper with it. *)
open Dbtree_core
open Dbtree_blink

let healthy () =
  let cfg = Config.make ~procs:4 ~capacity:4 ~key_space:50_000 () in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  for i = 1 to 200 do
    ignore (Fixed.insert t ~origin:(i mod 4) (i * 97) (Fmt.str "v%d" i))
  done;
  Fixed.run t;
  (t, cl)

(* some interior node with more than one copy, and a processor holding it *)
let find_replicated (cl : Cluster.t) =
  let best = ref None in
  Array.iter
    (fun (store : Store.t) ->
      Store.iter store (fun c ->
          if
            (not (Node.is_leaf c.Store.node))
            && List.length c.Store.members > 1
            && !best = None
          then best := Some (store.Store.pid, c)))
    cl.Cluster.stores;
  Option.get !best

let test_healthy_passes () =
  let _, cl = healthy () in
  Alcotest.(check bool) "healthy cluster verifies" true
    (Verify.ok (Verify.check cl))

let test_detects_divergence () =
  let _, cl = healthy () in
  let _, copy = find_replicated cl in
  (* tamper with one replica's value *)
  Node.add_entry copy.Store.node 49_999 (Node.Child 424242);
  let report = Verify.check cl in
  Alcotest.(check bool) "divergence detected" true
    (report.Verify.divergent_nodes <> [])

let test_detects_lost_key () =
  let _, cl = healthy () in
  (* erase one key from the leaf that stores it *)
  let victim = 97 in
  Array.iter
    (fun (store : Store.t) ->
      Store.iter store (fun c ->
          if Node.is_leaf c.Store.node then Node.remove_entry c.Store.node victim))
    cl.Cluster.stores;
  let report = Verify.check cl in
  Alcotest.(check (list int)) "missing key reported" [ victim ]
    report.Verify.missing_keys

let test_detects_phantom_key () =
  let _, cl = healthy () in
  (* plant a key nobody inserted *)
  Array.iter
    (fun (store : Store.t) ->
      Store.iter store (fun c ->
          let n = c.Store.node in
          if Node.is_leaf n && Node.in_range n 12_345 then
            Node.add_entry n 12_345 (Node.Data "planted")))
    cl.Cluster.stores;
  let report = Verify.check cl in
  Alcotest.(check bool) "phantom detected" true
    (List.mem 12_345 report.Verify.phantom_keys)

let test_detects_broken_link () =
  let _, cl = healthy () in
  (* cut a leaf's right link on every copy: the leaf chain tears, so some
     stored keys become unreachable from the chain walk or searches *)
  let cut = ref false in
  Array.iter
    (fun (store : Store.t) ->
      Store.iter store (fun c ->
          let n = c.Store.node in
          if
            Node.is_leaf n && (not !cut)
            && n.Node.right <> None
            && Bound.compare n.Node.low (Bound.Key 5000) > 0
          then begin
            n.Node.right <- None;
            cut := true
          end))
    cl.Cluster.stores;
  Alcotest.(check bool) "a link was cut" true !cut;
  let report = Verify.check cl in
  Alcotest.(check bool) "torn chain detected" false (Verify.ok report)

let test_stats_surface () =
  let t, cl = healthy () in
  (* sanity of the public accounting surface *)
  Alcotest.(check bool) "splits counted" true (Fixed.splits t > 0);
  Alcotest.(check bool) "messages counted" true
    (Cluster.Network.remote_messages cl.Cluster.net > 0);
  Alcotest.(check bool) "bytes counted" true
    (Cluster.Network.bytes_sent cl.Cluster.net
    > Cluster.Network.remote_messages cl.Cluster.net);
  let inbound_total =
    List.init 4 (fun p -> Cluster.Network.sent_to cl.Cluster.net p)
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "inbound sums to remote total"
    (Cluster.Network.remote_messages cl.Cluster.net)
    inbound_total

let test_fault_injection_detected () =
  (* duplicated deliveries must surface as exactly-once violations *)
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:50_000
      ~replication:Config.All_procs
      ~faults:
        { Dbtree_sim.Net.no_faults with Dbtree_sim.Net.duplicate_prob = 0.05 }
      ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  Opstate.set_tolerant cl.Cluster.ops;
  for i = 1 to 300 do
    ignore (Fixed.insert t ~origin:(i mod 4) (i * 97) "v")
  done;
  Fixed.run t;
  let report = Verify.check cl in
  let dupes = Dbtree_sim.Stats.get (Cluster.stats cl) "net.fault.duplicated" in
  Alcotest.(check bool) "faults were injected" true (dupes > 0);
  Alcotest.(check bool) "audit caught the damage" false (Verify.ok report)

let suite =
  [
    Alcotest.test_case "healthy cluster passes" `Quick test_healthy_passes;
    Alcotest.test_case "detects replica divergence" `Quick test_detects_divergence;
    Alcotest.test_case "detects lost keys" `Quick test_detects_lost_key;
    Alcotest.test_case "detects phantom keys" `Quick test_detects_phantom_key;
    Alcotest.test_case "detects torn leaf chain" `Quick test_detects_broken_link;
    Alcotest.test_case "network accounting is consistent" `Quick test_stats_surface;
    Alcotest.test_case "duplicated delivery is caught" `Quick
      test_fault_injection_detected;
  ]
