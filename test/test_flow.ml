(* dbflow rule fixtures: each graph-level rule must fire on a minimal
   bad program and stay silent on its clean counterpart, suppression
   must work under the dbflow marker, and the repo itself must analyze
   clean.  Fixtures are in-memory programs ([Program.of_sources]); the
   path [lib/fix/kern.ml] makes the unit [Kern]. *)

open Dbtree_flow
open Dbtree_lint

let kern src = Program.of_sources [ ("lib/fix/kern.ml", src) ]
let only name = [ Option.get (Flow.find_rule name) ]

let rules_of (r : Flow.report) =
  List.map (fun (v : Rule.violation) -> v.Rule.rule) r.Flow.violations

let messages_of (r : Flow.report) =
  List.map (fun (v : Rule.violation) -> v.Rule.message) r.Flow.violations

let check_fires name ~sub prog =
  let r = Flow.analyze ~rules:(only name) prog in
  Alcotest.(check (list string)) (name ^ " fires") [ name ] (rules_of r);
  let msg = List.hd (messages_of r) in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    (Fmt.str "message mentions %S" sub)
    true (contains msg sub)

let check_clean name prog =
  let r = Flow.analyze ~rules:(only name) prog in
  Alcotest.(check (list string)) (name ^ " silent") [] (rules_of r)

(* ---------------------------------------------------------------- *)
(* send-handle *)

let test_send_handle_unhandled () =
  (* Msg.Bad is constructed in the unit but its dispatch arm rejects. *)
  check_fires "send-handle" ~sub:"Bad"
    (kern
       "let poke send = send (Msg.Bad 1)\n\
        let ping send = send Msg.Ping\n\
        let handle t msg =\n\
       \  match msg with\n\
       \  | Msg.Ping -> ignore t\n\
       \  | Msg.Bad _ -> Fmt.failwith \"Kern: unexpected\"\n")

let test_send_handle_dead_arm () =
  (* Msg.Quiet has a real handler arm but no construction site. *)
  check_fires "send-handle" ~sub:"Quiet"
    (kern
       "let ping send = send Msg.Ping\n\
        let handle t msg =\n\
       \  match msg with\n\
       \  | Msg.Ping -> ignore t\n\
       \  | Msg.Quiet -> ignore t\n")

let test_send_handle_clean () =
  check_clean "send-handle"
    (kern
       "let ping send = send Msg.Ping\n\
        let quiet send = send Msg.Quiet\n\
        let handle t msg =\n\
       \  match msg with\n\
       \  | Msg.Ping -> ignore t\n\
       \  | Msg.Quiet -> ignore t\n")

(* ---------------------------------------------------------------- *)
(* aas-discipline *)

let test_aas_reply_reachable () =
  (* The Split_start arm calls [reply], which constructs an
     initial-update completion — exactly what the AAS window must
     block (Theorem 1). *)
  check_fires "aas-discipline" ~sub:"Op_done"
    (kern
       "let reply send = send (Msg.Op_done 0)\n\
        let handle t msg =\n\
       \  match msg with\n\
       \  | Msg.Split_start _ -> reply t\n\
       \  | Msg.Op_done _ -> ignore t\n")

let test_aas_search_exempt () =
  (* A search reply under a Search arm is not an initial update;
     reaching it from Split_start enrolment is fine. *)
  check_clean "aas-discipline"
    (kern
       "let answer op send =\n\
       \  match op with\n\
       \  | Op.Search k -> send (Msg.Op_done k)\n\
       \  | _ -> ()\n\
        let handle t msg =\n\
       \  match msg with\n\
       \  | Msg.Split_start _ -> answer t t\n\
       \  | Msg.Op_done _ -> ignore t\n")

let test_aas_clean () =
  check_clean "aas-discipline"
    (kern
       "let enroll st = st.splitting <- true\n\
        let handle t msg =\n\
       \  match msg with\n\
       \  | Msg.Split_start _ -> enroll t\n\
       \  | Msg.Op_done _ -> ignore t\n")

(* ---------------------------------------------------------------- *)
(* ordering-class *)

(* The annotation marker is assembled so this test file never carries a
   stray marker itself (dbflow scans textually, same as Suppress). *)
let cls c = Fmt.str "(* dbflow: %s %s -- fixture *)" "class" c

let test_class_missing () =
  check_fires "ordering-class" ~sub:"no ordering-class"
    (kern
       "let handle t msg =\n\
       \  match msg with\n\
       \  | Msg.Ping -> ignore t\n")

let test_class_unknown () =
  check_fires "ordering-class" ~sub:"unknown ordering class"
    (kern
       (Fmt.str
          "let handle t msg =\n\
          \  match msg with\n\
          \  %s\n\
          \  | Msg.Ping -> ignore t\n"
          (cls "eventually")))

let test_class_sync_outside_aas () =
  (* Msg.Lock is classed sync but a construction site never touches the
     AAS machinery. *)
  check_fires "ordering-class" ~sub:"sync"
    (kern
       (Fmt.str
          "let bad_send send = send (Msg.Lock 1)\n\
           let handle t msg =\n\
          \  match msg with\n\
          \  %s\n\
          \  | Msg.Lock _ -> ignore t\n"
          (cls "sync")))

let test_class_sync_under_aas_clean () =
  check_clean "ordering-class"
    (kern
       (Fmt.str
          "let good_send st send = if st.splitting then send (Msg.Lock 1)\n\
           let handle t msg =\n\
          \  match msg with\n\
          \  %s\n\
          \  | Msg.Lock _ -> ignore t\n"
          (cls "sync")))

let test_class_lazy_reaches_pc () =
  check_fires "ordering-class" ~sub:"primary-copy"
    (kern
       (Fmt.str
          "let gate t = t.pc = 0\n\
           let handle t msg =\n\
          \  match msg with\n\
          \  %s\n\
          \  | Msg.Ping -> ignore (gate t)\n"
          (cls "lazy")))

let test_class_lazy_clean () =
  check_clean "ordering-class"
    (kern
       (Fmt.str
          "let apply t = t.count <- t.count + 1\n\
           let handle t msg =\n\
          \  match msg with\n\
          \  %s\n\
          \  | Msg.Ping -> apply t\n"
          (cls "lazy")))

let test_class_orphaned () =
  (* An annotation in a unit with no Msg dispatch binds to nothing. *)
  check_fires "ordering-class" ~sub:"no Msg dispatch"
    (kern (Fmt.str "%s\nlet id x = x\n" (cls "lazy")))

(* ---------------------------------------------------------------- *)
(* counter-lifecycle *)

let test_counter_unused () =
  check_fires "counter-lifecycle" ~sub:"never ticked"
    (kern "let make st = let c_lost = Stats.counter st \"lost\" in 0\n")

let test_counter_duplicate () =
  check_fires "counter-lifecycle" ~sub:"more than once"
    (kern
       "let make st =\n\
       \  let a = Stats.counter st \"ops\" in\n\
       \  let b = Stats.counter st \"ops\" in\n\
       \  Stats.tick a; Stats.tick b\n")

let test_counter_clean () =
  check_clean "counter-lifecycle"
    (kern
       "let make st =\n\
       \  let c_ops = Stats.counter st \"ops\" in\n\
       \  Stats.tick c_ops\n")

let test_series_cell_unused () =
  check_fires "counter-lifecycle" ~sub:"series cell"
    (kern "let make reg = let touches = Series.cell reg \"heat\" in 0\n")

let test_series_duplicate_gauge () =
  check_fires "counter-lifecycle" ~sub:"registered more than once"
    (kern
       "let wire reg st =\n\
       \  Series.gauge reg \"depth\" (fun () -> 1);\n\
       \  Series.counter reg \"depth\" st\n")

(* Stats and Series are separate registries: one name in both is not a
   collision, and computed Series names register nothing to collide. *)
let test_series_registries_distinct () =
  check_clean "counter-lifecycle"
    (kern
       "let wire reg st pids =\n\
       \  let c_retx = Stats.counter st \"retx\" in\n\
       \  Stats.tick c_retx;\n\
       \  Series.counter reg \"retx\" c_retx;\n\
       \  List.iter\n\
       \    (fun p -> Series.gauge reg (Fmt.str \"net.inbox.p%d\" p)\n\
       \      (fun () -> p))\n\
       \    pids\n")

(* ---------------------------------------------------------------- *)
(* span-pairing *)

let test_span_unbalanced () =
  check_fires "span-pairing" ~sub:"Split_end"
    (kern "let start cl = Cluster.event cl Event.Split_start\n")

let test_span_paired_clean () =
  (* The close is reachable through a call, not necessarily inline. *)
  check_clean "span-pairing"
    (kern
       "let finish cl = Cluster.event cl Event.Split_end\n\
        let start cl = Cluster.event cl Event.Split_start; finish cl\n")

(* ---------------------------------------------------------------- *)
(* suppression and unknown rules under the dbflow marker *)

let test_suppress_dbflow () =
  let r =
    Flow.analyze ~rules:(only "span-pairing")
      (kern
         "(* dbflow: allow span-pairing -- fixture *)\n\
          let start cl = Cluster.event cl Event.Split_start\n")
  in
  Alcotest.(check (list string)) "suppressed" [] (rules_of r);
  Alcotest.(check int) "counted" 1 r.Flow.suppressed

let test_dblint_marker_inert_for_dbflow () =
  (* A dblint-marked allow must not silence a dbflow violation.  The
     marker is assembled so dblint's own textual scan of this test file
     does not read the fixture's comment. *)
  let r =
    Flow.analyze ~rules:(only "span-pairing")
      (kern
         (Fmt.str
            "(* %s: allow span-pairing *)\n\
             let start cl = Cluster.event cl Event.Split_start\n"
            "dblint"))
  in
  Alcotest.(check (list string)) "still fires" [ "span-pairing" ] (rules_of r)

let test_unknown_rule_warns () =
  let r = Flow.analyze (kern "(* dbflow: allow no-such-rule *)\nlet x = 1\n") in
  Alcotest.(check (list string)) "pseudo-rule" [ "unknown-rule" ] (rules_of r)

(* ---------------------------------------------------------------- *)
(* SARIF output is well-formed and complete *)

let test_sarif_well_formed () =
  let r =
    Flow.analyze ~rules:(only "span-pairing")
      (kern "let start cl = Cluster.event cl Event.Split_start\n")
  in
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Sarif.pp ppf ~tool:"dbflow"
    ~rules:(List.map (fun (ru : Flow.rule) -> (ru.Flow.name, ru.Flow.doc)) Flow.all_rules)
    r.Flow.violations;
  Format.pp_print_flush ppf ();
  let module J = Dbtree_obs.Json in
  let json = J.parse (Buffer.contents buf) in
  let get o k = Option.get (J.member k o) in
  Alcotest.(check (option string))
    "version" (Some "2.1.0")
    (J.to_string (get json "version"));
  let run = List.hd (Option.get (J.to_list (get json "runs"))) in
  let driver = get (get run "tool") "driver" in
  Alcotest.(check (option string))
    "tool name" (Some "dbflow")
    (J.to_string (get driver "name"));
  let rules = Option.get (J.to_list (get driver "rules")) in
  Alcotest.(check int) "all rules listed" (List.length Flow.all_rules)
    (List.length rules);
  let results = Option.get (J.to_list (get run "results")) in
  Alcotest.(check int) "one result per violation"
    (List.length r.Flow.violations) (List.length results);
  let result = List.hd results in
  Alcotest.(check (option string))
    "ruleId" (Some "span-pairing")
    (J.to_string (get result "ruleId"));
  let loc = List.hd (Option.get (J.to_list (get result "locations"))) in
  let region = get (get loc "physicalLocation") "region" in
  Alcotest.(check (option (float 0.0)))
    "startLine" (Some 1.0)
    (J.to_float (get region "startLine"));
  (* dbflow columns are 0-based; SARIF's are 1-based: [Event.…] starts
     at byte 32 of the fixture line. *)
  Alcotest.(check (option (float 0.0)))
    "startColumn is 1-based" (Some 33.0)
    (J.to_float (get region "startColumn"))

(* ---------------------------------------------------------------- *)
(* registries: both CLIs expose a complete, documented rule list *)

let test_registries () =
  Alcotest.(check (list string))
    "dbflow registry"
    [
      "send-handle";
      "aas-discipline";
      "ordering-class";
      "counter-lifecycle";
      "span-pairing";
    ]
    Flow.rule_names;
  List.iter
    (fun (ru : Flow.rule) ->
      Alcotest.(check bool)
        (ru.Flow.name ^ " documented")
        true
        (String.length ru.Flow.doc > 0))
    Flow.all_rules;
  List.iter
    (fun (ru : Rule.t) ->
      Alcotest.(check bool)
        (ru.Rule.name ^ " documented")
        true
        (String.length ru.Rule.doc > 0))
    Lint.all_rules;
  Alcotest.(check int) "dblint registry size" 5 (List.length Lint.rule_names)

(* ---------------------------------------------------------------- *)
(* full-tree gate: the repo itself must analyze clean *)

let test_repo_clean () =
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    let prog, errs = Program.load [ "lib"; "bin" ] in
    Alcotest.(check (list string))
      "no parse errors" []
      (List.map fst errs);
    let r = Flow.analyze prog in
    Alcotest.(check (list string))
      "zero unsuppressed flow violations in lib/ and bin/" []
      (List.map
         (fun (v : Rule.violation) ->
           Fmt.str "%s:%d %s" v.Rule.file v.Rule.line v.Rule.rule)
         r.Flow.violations)
  end

let suite =
  [
    Alcotest.test_case "send-handle: rejected kind fires" `Quick
      test_send_handle_unhandled;
    Alcotest.test_case "send-handle: dead arm fires" `Quick
      test_send_handle_dead_arm;
    Alcotest.test_case "send-handle: clean" `Quick test_send_handle_clean;
    Alcotest.test_case "aas: reply reachable fires" `Quick
      test_aas_reply_reachable;
    Alcotest.test_case "aas: search reply exempt" `Quick
      test_aas_search_exempt;
    Alcotest.test_case "aas: clean" `Quick test_aas_clean;
    Alcotest.test_case "class: missing fires" `Quick test_class_missing;
    Alcotest.test_case "class: unknown fires" `Quick test_class_unknown;
    Alcotest.test_case "class: sync outside AAS fires" `Quick
      test_class_sync_outside_aas;
    Alcotest.test_case "class: sync under AAS clean" `Quick
      test_class_sync_under_aas_clean;
    Alcotest.test_case "class: lazy pc-gate fires" `Quick
      test_class_lazy_reaches_pc;
    Alcotest.test_case "class: lazy clean" `Quick test_class_lazy_clean;
    Alcotest.test_case "class: orphaned fires" `Quick test_class_orphaned;
    Alcotest.test_case "counter: unused fires" `Quick test_counter_unused;
    Alcotest.test_case "counter: duplicate fires" `Quick
      test_counter_duplicate;
    Alcotest.test_case "counter: clean" `Quick test_counter_clean;
    Alcotest.test_case "counter: series cell unused fires" `Quick
      test_series_cell_unused;
    Alcotest.test_case "counter: duplicate gauge fires" `Quick
      test_series_duplicate_gauge;
    Alcotest.test_case "counter: registries distinct" `Quick
      test_series_registries_distinct;
    Alcotest.test_case "span: unbalanced fires" `Quick test_span_unbalanced;
    Alcotest.test_case "span: paired clean" `Quick test_span_paired_clean;
    Alcotest.test_case "suppress: dbflow marker" `Quick test_suppress_dbflow;
    Alcotest.test_case "suppress: dblint marker inert" `Quick
      test_dblint_marker_inert_for_dbflow;
    Alcotest.test_case "suppress: unknown rule warns" `Quick
      test_unknown_rule_warns;
    Alcotest.test_case "sarif: well-formed" `Quick test_sarif_well_formed;
    Alcotest.test_case "registries complete" `Quick test_registries;
    Alcotest.test_case "repo flows clean" `Quick test_repo_clean;
  ]
