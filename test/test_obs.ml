(* Causal tracing pipeline: recorder mechanics, determinism of the
   export, zero observable effect when disabled, span reconstruction over
   a real concurrent run, and the Theorem 1 mechanics (a synchronous
   split's AAS blocks only initial updates — never searches) asserted
   from the trace instead of from counters. *)

open Dbtree_core
open Dbtree_workload
open Dbtree_sim
module Obs = Dbtree_obs.Obs
module Event = Dbtree_obs.Event
module Query = Dbtree_obs.Query
module Export = Dbtree_obs.Export

(* ---------------------------------------------------------------- *)
(* Recorder mechanics *)

let test_disabled_guard () =
  let id =
    Obs.emit Obs.disabled ~time:1 ~pid:0 ~op:0 ~parent:(-1)
      ~kind:Event.Op_issue ~a:0 ~b:0
  in
  Alcotest.(check int) "disabled emit returns -1" (-1) id;
  Alcotest.(check int) "nothing recorded" 0 (Obs.length Obs.disabled);
  Alcotest.(check bool) "disabled is off" false (Obs.on Obs.disabled)

let test_ring_wraparound () =
  let o = Obs.create ~enabled:true ~capacity:8 () in
  for i = 0 to 19 do
    ignore
      (Obs.emit o ~time:i ~pid:0 ~op:i ~parent:(-1) ~kind:Event.Op_issue
         ~a:0 ~b:i)
  done;
  Alcotest.(check int) "length counts all emissions" 20 (Obs.length o);
  Alcotest.(check int) "dropped = overflow" 12 (Obs.dropped o);
  let retained = Obs.events o in
  Alcotest.(check int) "ring retains capacity" 8 (List.length retained);
  Alcotest.(check int) "oldest retained id" 12 (List.hd retained).Obs.id;
  Alcotest.(check bool) "evicted id unresolvable" true (Obs.get o 3 = None);
  Alcotest.(check bool) "retained id resolves" true (Obs.get o 15 <> None)

let test_context () =
  let o = Obs.create ~enabled:true ~capacity:16 () in
  Obs.set_context o ~op:7 ~parent:3;
  let id = Obs.emit_here o ~time:1 ~pid:0 ~kind:Event.Relay ~a:0 ~b:0 in
  let e = Option.get (Obs.get o id) in
  Alcotest.(check int) "ambient op" 7 e.Obs.op;
  Alcotest.(check int) "ambient parent" 3 e.Obs.parent;
  Obs.reset_context o;
  let id = Obs.emit_here o ~time:2 ~pid:0 ~kind:Event.Relay ~a:0 ~b:0 in
  let e = Option.get (Obs.get o id) in
  Alcotest.(check int) "reset op" (-1) e.Obs.op

(* ---------------------------------------------------------------- *)
(* A small concurrent scenario (the E3 shape): two processors, shared
   parent copies, concurrent splits, lazy relays. *)

let inserts keys =
  Workload.of_list
    (List.map (fun k -> Workload.Insert (k, Workload.value_for k)) keys)

let searches keys =
  Workload.of_list (List.map (fun k -> Workload.Search k) keys)

let run_e3_style ~trace () =
  let cfg =
    Config.make ~procs:2 ~capacity:4 ~key_space:1000 ~discipline:Config.Semi
      ~replication:Config.All_procs ~seed:1 ~trace ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let streams =
    [| inserts [ 10; 20; 30; 40; 50 ]; inserts [ 510; 520; 530; 540; 550 ] |]
  in
  Driver.run_all cl (Driver.fixed_api t) ~streams;
  cl

let stats_render cl = Fmt.str "%a" Stats.pp (Cluster.stats cl)

let test_export_deterministic () =
  let a = run_e3_style ~trace:true () in
  let b = run_e3_style ~trace:true () in
  let ja = Export.to_string [ a.Cluster.obs ] in
  let jb = Export.to_string [ b.Cluster.obs ] in
  Alcotest.(check bool) "trace is non-trivial" true (String.length ja > 100);
  Alcotest.(check string) "same seed, byte-identical export" ja jb

let test_tracing_is_free () =
  (* Tracing must not schedule events, draw randomness, or perturb any
     statistic: the full stats rendering (counters, summaries, latency
     histograms) is byte-identical with tracing on and off. *)
  let off = run_e3_style ~trace:false () in
  let on = run_e3_style ~trace:true () in
  Alcotest.(check int) "off-path records nothing" 0 (Obs.length off.Cluster.obs);
  Alcotest.(check string)
    "stats identical with tracing on/off" (stats_render off) (stats_render on)

let test_spans_complete () =
  let cl = run_e3_style ~trace:true () in
  let obs = cl.Cluster.obs in
  let spans = Query.spans obs in
  Alcotest.(check int) "all ten ops traced" 10 (List.length spans);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Fmt.str "op %d span complete" s.Query.op)
        true (Query.complete_span obs s);
      Alcotest.(check bool)
        (Fmt.str "op %d has positive latency" s.Query.op)
        true
        (match Query.latency s with Some l -> l >= 0 | None -> false))
    spans;
  (* The concurrent splits relay inserts between the parent copies; the
     lineage must attribute relays and deliveries to their client ops. *)
  let total_hops = List.fold_left (fun n s -> n + s.Query.hops) 0 spans in
  let total_relays = List.fold_left (fun n s -> n + s.Query.relays) 0 spans in
  Alcotest.(check bool) "spans cross the wire" true (total_hops > 0);
  Alcotest.(check bool) "relays stitched into spans" true (total_relays > 0);
  Alcotest.(check (list int))
    "no op stalled at quiescence" []
    (List.map
       (fun s -> s.Query.op)
       (Query.stalled obs ~now:(Cluster.now cl) ~idle:0))

(* ---------------------------------------------------------------- *)
(* Theorem 1 mechanics from the trace: a synchronous split's AAS blocks
   only initial updates (inserts/deletes and parent child-entry updates),
   never searches. *)

let test_aas_blocks_only_updates () =
  let cfg =
    Config.make ~procs:2 ~capacity:4 ~key_space:1000 ~discipline:Config.Sync
      ~replication:Config.All_procs ~seed:3 ~trace:true ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let keys = List.init 40 (fun i -> ((i * 37) mod 200) + 1) in
  let streams = [| inserts keys; searches keys |] in
  Driver.run_closed cl (Driver.fixed_api t) ~streams ~window:4;
  let obs = cl.Cluster.obs in
  let events = Obs.events obs in
  let blocks =
    List.filter (fun e -> e.Obs.kind = Event.Aas_block) events
  in
  let windows = Query.aas_windows obs in
  Alcotest.(check bool) "synchronous splits did block" true (blocks <> []);
  Alcotest.(check bool) "AAS windows reconstructed" true (windows <> []);
  (* Every blocked update is an initial insert/delete (or a parent
     child-entry update, kind -1): searches are never AAS-blocked. *)
  List.iter
    (fun e ->
      Alcotest.(check bool)
        "blocked kind is an update, never a search/scan" true
        (e.Obs.b = Event.op_insert || e.Obs.b = Event.op_delete
       || e.Obs.b = -1))
    blocks;
  (* Lineage cross-check: no event of any search op's span is an
     [Aas_block]. *)
  let issues = List.filter (fun e -> e.Obs.kind = Event.Op_issue) events in
  let search_ops =
    List.filter_map
      (fun e -> if e.Obs.a = Event.op_search then Some e.Obs.op else None)
      issues
  in
  Alcotest.(check bool) "searches were traced" true (search_ops <> []);
  List.iter
    (fun op ->
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Fmt.str "search op %d never AAS-blocked" op)
            true
            (e.Obs.kind <> Event.Aas_block))
        (Query.by_op obs op))
    search_ops;
  (* Searches kept completing inside the blocking windows: at least one
     search finished while some AAS was holding. *)
  let search_done_during_aas =
    List.exists
      (fun e ->
        e.Obs.kind = Event.Op_complete
        && e.Obs.a = Event.op_search
        && List.exists
             (fun w -> e.Obs.time >= w.Query.aas_from && e.Obs.time <= w.Query.aas_until)
             windows)
      events
  in
  Alcotest.(check bool)
    "some search completed during an AAS window" true search_done_during_aas

(* ---------------------------------------------------------------- *)
(* Export: schema validation round-trip *)

let test_export_validates () =
  let cl = run_e3_style ~trace:true () in
  let json = Export.to_string [ cl.Cluster.obs ] in
  match Export.validate json with
  | Ok n -> Alcotest.(check bool) "events exported" true (n > 0)
  | Error e -> Alcotest.fail ("export does not validate: " ^ e)

let test_validate_rejects_garbage () =
  Alcotest.(check bool)
    "non-JSON rejected" true
    (Result.is_error (Export.validate "not json at all"));
  Alcotest.(check bool)
    "wrong shape rejected" true
    (Result.is_error (Export.validate "{\"traceEvents\":7}"));
  Alcotest.(check bool)
    "unknown phase rejected" true
    (Result.is_error
       (Export.validate
          "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Z\",\"pid\":0,\"tid\":0,\"ts\":1}]}"))

(* ---------------------------------------------------------------- *)
(* The force switch across domains: the race this PR fixed.  Forcing
   tracing and then creating rings from inside a [Par.map] must register
   every ring exactly once (pre-fix, [registry := t :: !registry] from
   four domains could lose entries), and two identical parallel runs
   must agree.  Creation *order* across domains is scheduling-dependent,
   so the stable view is the sorted label set. *)

let test_forced_registry_complete_under_par () =
  let run () =
    Obs.clear_registered ();
    Obs.force_enable ~capacity:4096 ();
    Fun.protect ~finally:Obs.force_disable (fun () ->
        let rings =
          Par.map ~domains:4
            (fun i ->
              let o = Obs.create ~capacity:1024 ~label:(Fmt.str "cell%d" i) () in
              for t = 1 to 10 do
                ignore
                  (Obs.emit o ~time:t ~pid:i ~op:t ~parent:(-1)
                     ~kind:Event.Op_issue ~a:0 ~b:t)
              done;
              o)
            (Array.init 6 (fun i -> i))
        in
        Array.iter
          (fun o ->
            Alcotest.(check bool) "forced ring enabled" true (Obs.on o);
            Alcotest.(check int) "all emits recorded" 10 (Obs.length o))
          rings;
        List.sort compare (List.map Obs.label (Obs.registered ())))
  in
  let labels = run () in
  Alcotest.(check (list string))
    "registry complete after the join"
    (List.init 6 (Fmt.str "cell%d"))
    labels;
  Alcotest.(check (list string)) "and deterministic across runs" labels (run ());
  Alcotest.(check bool) "force_disable took" false (Obs.forced ());
  Obs.clear_registered ();
  Alcotest.(check int) "registry cleared" 0 (List.length (Obs.registered ()))

let suite =
  [
    Alcotest.test_case "obs: disabled guard" `Quick test_disabled_guard;
    Alcotest.test_case "obs: forced registry complete under Par" `Quick
      test_forced_registry_complete_under_par;
    Alcotest.test_case "obs: ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "obs: ambient context" `Quick test_context;
    Alcotest.test_case "export: deterministic" `Quick test_export_deterministic;
    Alcotest.test_case "tracing: observably free when off" `Quick
      test_tracing_is_free;
    Alcotest.test_case "query: spans complete on traced run" `Quick
      test_spans_complete;
    Alcotest.test_case "theorem 1: AAS blocks only updates" `Quick
      test_aas_blocks_only_updates;
    Alcotest.test_case "export: validates" `Quick test_export_validates;
    Alcotest.test_case "export: validator rejects garbage" `Quick
      test_validate_rejects_garbage;
  ]
