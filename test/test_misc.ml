(* Odds and ends: configuration validation, table rendering, message
   metadata, driver edge cases. *)
open Dbtree_core

let test_config_validation () =
  let bad f = match Config.validate f with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "procs >= 1" true
    (bad { Config.default with Config.procs = 0 });
  Alcotest.(check bool) "capacity >= 2" true
    (bad { Config.default with Config.capacity = 1 });
  Alcotest.(check bool) "key space fits procs" true
    (bad { Config.default with Config.procs = 100; key_space = 50 });
  Alcotest.(check bool) "batching needs Semi" true
    (bad { Config.default with Config.discipline = Config.Eager; relay_batch = 4 });
  Alcotest.(check bool) "default is valid" true
    (match Config.validate Config.default with Ok _ -> true | Error _ -> false);
  Alcotest.(check string) "discipline names" "semi"
    (Config.discipline_name Config.Semi)

let test_msg_metadata () =
  (* every constructor used on the wire has a non-empty kind and positive
     size; spot-check the interesting ones *)
  let samples =
    [
      Msg.Op_done { op = 1; result = Msg.Found "hello" };
      Msg.Op_done { op = 1; result = Msg.Bindings [ (1, "a"); (2, "bb") ] };
      Msg.Split_start { node = 3 };
      Msg.batch [ Msg.Split_ack { node = 1 }; Msg.Split_ack { node = 2 } ];
      Msg.Route
        {
          key = 5;
          level = 0;
          node = 9;
          act = Msg.Scan { op = 2; origin = 0; hi = 10; acc = [ (5, "x") ] };
        };
    ]
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "kind non-empty" true (String.length (Msg.kind m) > 0);
      Alcotest.(check bool) "size positive" true (Msg.size m > 0))
    samples;
  (* value payload contributes to size *)
  let small = Msg.Op_done { op = 1; result = Msg.Found "x" } in
  let big = Msg.Op_done { op = 1; result = Msg.Found (String.make 100 'x') } in
  Alcotest.(check bool) "size scales with payload" true (Msg.size big > Msg.size small)

let test_snapshot_roundtrip () =
  let open Dbtree_blink in
  let entries =
    Entries.of_sorted_list [ (1, Node.Data "a"); (7, Node.Data "b") ]
  in
  let n =
    Node.make ~id:12 ~level:0 ~low:(Bound.Key 0) ~high:(Bound.Key 100) ~right:13
      ~left:11 ~parent:5 ~version:4 entries
  in
  let n' = Msg.node_of_snapshot (Msg.snapshot_of_node n) in
  Alcotest.(check bool) "roundtrip preserves content" true
    (Node.content_equal String.equal n n');
  Alcotest.(check (option int)) "parent preserved" (Some 5) n'.Node.parent;
  Alcotest.(check (option int)) "left preserved" (Some 11) n'.Node.left

let test_run_all_driver () =
  let cfg = Config.make ~procs:2 ~capacity:4 ~key_space:10_000 () in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let ops =
    [ Dbtree_workload.Workload.Insert (5, "five");
      Dbtree_workload.Workload.Search 5;
      Dbtree_workload.Workload.Delete 5 ]
  in
  Driver.run_all cl (Driver.fixed_api t)
    ~streams:
      [| Dbtree_workload.Workload.of_list ops; Dbtree_workload.Workload.empty |];
  Alcotest.(check int) "all issued" 3 (Opstate.issued cl.Cluster.ops);
  Alcotest.(check int) "all completed" 3 (Opstate.completed cl.Cluster.ops)

let test_driver_stream_arity () =
  let cfg = Config.make ~procs:4 () in
  let t = Fixed.create cfg in
  Alcotest.check_raises "stream arity enforced"
    (Invalid_argument "Driver: need exactly one stream per processor")
    (fun () ->
      Driver.run_all (Fixed.cluster t) (Driver.fixed_api t)
        ~streams:[| Dbtree_workload.Workload.empty |])

let test_opstate_percentiles () =
  let ops = Opstate.create () in
  for i = 1 to 100 do
    let r =
      Opstate.register ops ~kind:Opstate.Search ~key:i ~value:None ~origin:0
        ~now:0
    in
    Opstate.complete ops ~op:r.Opstate.id ~result:Msg.Absent ~now:i
  done;
  (* Nearest-rank over samples 1..100: rank ceil(p*100), exactly. *)
  Alcotest.(check (float 0.0)) "p50" 50.0
    (Opstate.latency_percentile ops Opstate.Search 0.5);
  Alcotest.(check (float 0.0)) "p99" 99.0
    (Opstate.latency_percentile ops Opstate.Search 0.99);
  Alcotest.(check (float 0.0)) "p100" 100.0
    (Opstate.latency_percentile ops Opstate.Search 1.0);
  Alcotest.(check (float 0.0)) "p0 clamps to smallest" 1.0
    (Opstate.latency_percentile ops Opstate.Search 0.0);
  Alcotest.(check (float 0.01)) "empty kind" 0.0
    (Opstate.latency_percentile ops Opstate.Insert 0.9);
  Alcotest.(check (float 0.01)) "mean" 50.5
    (Opstate.mean_latency ops Opstate.Search)

let test_percentile_nearest_rank () =
  (* Known five-sample list: the truncating implementation read p90 as the
     4th sample (40); nearest-rank reads ceil(0.9*5) = rank 5. *)
  let ops = Opstate.create () in
  List.iter
    (fun l ->
      let r =
        Opstate.register ops ~kind:Opstate.Search ~key:l ~value:None ~origin:0
          ~now:0
      in
      Opstate.complete ops ~op:r.Opstate.id ~result:Msg.Absent ~now:l)
    [ 10; 20; 30; 40; 50 ];
  let p q = Opstate.latency_percentile ops Opstate.Search q in
  Alcotest.(check (float 0.0)) "p90 = 5th sample" 50.0 (p 0.9);
  Alcotest.(check (float 0.0)) "p80 = 4th sample" 40.0 (p 0.8);
  Alcotest.(check (float 0.0)) "p50 = 3rd sample" 30.0 (p 0.5);
  Alcotest.(check (float 0.0)) "p20 = 1st sample" 10.0 (p 0.2);
  Alcotest.(check (float 0.0)) "p21 rounds up to 2nd" 20.0 (p 0.21)

let suite =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "message metadata" `Quick test_msg_metadata;
    Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "run_all driver" `Quick test_run_all_driver;
    Alcotest.test_case "driver stream arity" `Quick test_driver_stream_arity;
    Alcotest.test_case "opstate percentiles" `Quick test_opstate_percentiles;
    Alcotest.test_case "percentile nearest-rank" `Quick
      test_percentile_nearest_rank;
  ]
