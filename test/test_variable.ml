(* End-to-end tests of the variable-copies protocol (§4.3): joins,
   unjoins, leaf migration with path-replication maintenance, and the
   version-number catch-up rule of Figure 6. *)
open Dbtree_core
open Dbtree_sim

let mk ?(procs = 4) ?(capacity = 4) ?(seed = 42) ?(key_space = 50_000)
    ?(balance_period = 0) ?(version_relays = true) () =
  Config.make ~procs ~capacity ~seed ~key_space ~balance_period
    ~version_relays ()

let run_variable ?(count = 300) cfg label =
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  let keys, report =
    Scenario.run_cluster ~api:(Variable.api t) ~cluster:cl ~cfg ~count ()
  in
  Scenario.check_verified label report;
  Scenario.check_no_leftover label cl;
  Scenario.all_search_results_correct cl keys;
  (t, keys, report)

let test_basic_load () = ignore (run_variable (mk ()) "variable basic")

let test_seeds () =
  List.iter
    (fun seed ->
      ignore (run_variable (mk ~seed ()) (Fmt.str "variable seed %d" seed)))
    [ 1; 5; 9; 1234 ]

let test_balanced_load () =
  let t, _, _ =
    run_variable ~count:400 (mk ~balance_period:150 ()) "variable balanced"
  in
  Alcotest.(check bool) "migrations happened" true (Variable.migrations t > 0)

let leaf_ids t pid =
  let store = Cluster.store (Variable.cluster t) pid in
  let acc = ref [] in
  Store.iter store (fun c ->
      if Dbtree_blink.Node.is_leaf c.Store.node then
        acc := c.Store.node.Dbtree_blink.Node.id :: !acc);
  !acc

let test_join_on_migration () =
  (* Draining every leaf out of processor 3 forces it to unjoin interior
     replications; the receivers join them. *)
  let cfg = mk ~key_space:50_000 () in
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  let keys, _ =
    Scenario.run_cluster ~api:(Variable.api t) ~cluster:cl ~cfg ~count:400 ()
  in
  List.iteri
    (fun i id -> Variable.migrate t ~node:id ~to_pid:(i mod 3))
    (leaf_ids t 3);
  Variable.run t;
  Alcotest.(check int) "p3 drained" 0 (List.length (leaf_ids t 3));
  Alcotest.(check bool) "joins happened" true (Variable.joins t > 0);
  Alcotest.(check bool) "unjoins happened" true (Variable.unjoins t > 0);
  (* the drained processor keeps only the root and the nodes it is PC of *)
  Driver.run_closed cl (Variable.api t)
    ~streams:(Scenario.search_streams ~keys ~procs:4 ~per_proc:64)
    ~window:4;
  let report = Verify.check cl in
  Scenario.check_verified "after drain" report;
  Scenario.all_search_results_correct cl keys

let test_join_concurrent_with_inserts () =
  (* Figure 6: inserts racing with joins.  Interleave migrations (which
     trigger joins) with a stream of inserts into the same region, then
     verify single-copy equivalence and history compatibility — this is
     the scenario the version-number catch-up rule exists for. *)
  let cfg = mk ~key_space:50_000 ~balance_period:60 () in
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  let rng = Rng.create 7 in
  let keys =
    Dbtree_workload.Workload.unique_keys rng ~key_space:12_000 ~count:500
  in
  let streams =
    Array.init 4 (fun pid ->
        Dbtree_workload.Workload.inserts
          ~keys:(Dbtree_workload.Workload.chunk keys ~parts:4).(pid))
  in
  Driver.run_closed cl (Variable.api t) ~streams ~window:2;
  let report = Verify.check cl in
  Scenario.check_verified "join/insert race" report;
  Alcotest.(check bool) "joins actually raced with updates" true
    (Variable.joins t > 0)

let test_remove_ops () =
  let cfg = mk () in
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  ignore (Variable.insert t ~origin:0 500 "x");
  Variable.run t;
  ignore (Variable.remove t ~origin:2 500);
  Variable.run t;
  let s = Variable.search t ~origin:1 500 in
  Variable.run t;
  Alcotest.(check bool) "removed" true
    ((Option.get (Opstate.find cl.Cluster.ops s)).Opstate.result = Some Msg.Absent);
  Scenario.check_verified "variable remove" (Verify.check cl)

let test_single_proc () =
  ignore (run_variable ~count:150 (mk ~procs:1 ()) "variable single proc")

let test_eight_procs () =
  ignore (run_variable ~count:500 (mk ~procs:8 ()) "variable 8 procs")

let test_membership_metadata_consistent () =
  (* After quiescence, every copy of a node must agree on the member set,
     and the PC's join_versions must mention only members. *)
  let cfg = mk ~balance_period:100 () in
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  let _ = Scenario.run_cluster ~api:(Variable.api t) ~cluster:cl ~cfg ~count:400 () in
  let views : (int, Msg.pid list list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun store ->
      Store.iter store (fun c ->
          let id = c.Store.node.Dbtree_blink.Node.id in
          let sorted = List.sort compare c.Store.members in
          Hashtbl.replace views id
            (sorted :: Option.value (Hashtbl.find_opt views id) ~default:[])))
    cl.Cluster.stores;
  (* dblint: allow no-nondeterminism -- per-node check, order-insensitive *)
  Hashtbl.iter
    (fun id view_list ->
      match view_list with
      | [] -> ()
      | first :: rest ->
        List.iter
          (fun v ->
            if v <> first then
              Alcotest.failf "node %d: diverging member views" id)
          rest)
    views;
  (* each node's copy count matches its member list *)
  (* dblint: allow no-nondeterminism -- per-node check, order-insensitive *)
  Hashtbl.iter
    (fun id views_of_node ->
      let copies = List.length views_of_node in
      let members = List.length (List.hd views_of_node) in
      if copies <> members then
        Alcotest.failf "node %d: %d copies but %d members" id copies members)
    views

let test_range_scan () =
  let cfg = mk ~balance_period:150 () in
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  for i = 1 to 300 do
    ignore (Variable.insert t ~origin:(i mod 4) (i * 100) (Fmt.str "v%d" i))
  done;
  Variable.run t;
  let cases = [ (150, 450); (5_000, 25_000); (0, 1_000_000) ] in
  let ops =
    List.map (fun (lo, hi) -> (Variable.scan t ~origin:3 ~lo ~hi, lo, hi)) cases
  in
  Variable.run t;
  List.iter (fun (op, lo, hi) -> Scenario.check_scan cl ~op ~lo ~hi) ops

let prop_random_variable_verifies =
  QCheck.Test.make ~name:"random variable clusters verify" ~count:15
    QCheck.(
      quad (int_range 1 6) (int_range 2 8) (int_range 20 120) (int_bound 1000))
    (fun (procs, capacity, count, seed) ->
      (* clamp: qcheck shrinking can escape int_range bounds *)
      let procs = max 1 procs and capacity = max 2 capacity in
      let count = max 1 count and seed = abs seed in
      let cfg = mk ~procs ~capacity ~seed ~balance_period:89 () in
      let t = Variable.create cfg in
      let cl = Variable.cluster t in
      let _, report =
        Scenario.run_cluster ~api:(Variable.api t) ~cluster:cl ~cfg ~count
          ~searches:8 ()
      in
      Verify.ok report)

let suite =
  [
    Alcotest.test_case "basic load" `Quick test_basic_load;
    Alcotest.test_case "seed sweep" `Slow test_seeds;
    Alcotest.test_case "balanced load" `Quick test_balanced_load;
    Alcotest.test_case "drain forces unjoin + join" `Quick test_join_on_migration;
    Alcotest.test_case "joins racing inserts (Fig 6)" `Quick
      test_join_concurrent_with_inserts;
    Alcotest.test_case "distributed remove" `Quick test_remove_ops;
    Alcotest.test_case "single processor" `Quick test_single_proc;
    Alcotest.test_case "eight processors" `Slow test_eight_procs;
    Alcotest.test_case "membership metadata consistent" `Quick
      test_membership_metadata_consistent;
    Alcotest.test_case "range scan under balancing" `Quick test_range_scan;
    QCheck_alcotest.to_alcotest prop_random_variable_verifies;
  ]
