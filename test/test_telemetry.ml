(* The live telemetry plane: series registries, windowed sketches,
   critical-path attribution, SLO health rules, and the cluster glue.

   The load-bearing gates live here:
   - the bucketed percentile (Stats.hist / Sketch) diverges from the
     exact nearest-rank percentile by at most one log-bucket (qcheck);
   - an instrumented run executes exactly the events of a bare run
     (zero drift — the overhead claim);
   - every SLO rule stays silent on a clean run, and a drop-heavy
     reliable channel trips retx_storm;
   - the critical-path stall share orders sync > semi > mobile;
   - the hot-path hooks and the scrape path allocate nothing;
   - forced telemetry under Par.map registers every registry and is
     deterministic across identical parallel runs. *)

open Dbtree_obs
module Stats = Dbtree_sim.Stats
module Par = Dbtree_sim.Par
module Config = Dbtree_core.Config
module Cluster = Dbtree_core.Cluster
module Opstate = Dbtree_core.Opstate
module Telemetry = Dbtree_core.Telemetry
module Common = Dbtree_experiments.Common

(* ---------------- percentile divergence (satellite property) ------- *)

(* Both percentile implementations pick the nearest-rank sample; the
   bucketed one returns its bucket's lower bound.  Rank rounding can
   move the chosen sample by one, so the bound is one log-bucket. *)
let percentile_divergence =
  QCheck.Test.make ~name:"bucketed p99 within one log-bucket of exact"
    ~count:300
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 100_000))
    (fun lats ->
      QCheck.assume (lats <> []);
      let ops = Opstate.create () in
      let stats = Stats.create () in
      let h = Stats.hist stats "lat" in
      List.iter
        (fun lat ->
          let r =
            Opstate.register ops ~kind:Opstate.Search ~key:0 ~value:None
              ~origin:0 ~now:0
          in
          Opstate.complete ops ~op:r.Opstate.id
            ~result:Dbtree_core.Msg.Absent ~now:lat;
          Stats.hist_observe h lat)
        lats;
      List.for_all
        (fun p ->
          let exact =
            int_of_float
              (Opstate.latency_percentile ops Opstate.Search (p /. 100.0))
          in
          let bucketed = Stats.hist_percentile h p in
          abs (Logbucket.index exact - Logbucket.index bucketed) <= 1)
        [ 50.0; 90.0; 99.0 ])

(* ---------------- sketch ------------------------------------------- *)

let test_sketch_window () =
  let sk = Sketch.create ~slices:4 ~slice_width:100 () in
  for i = 1 to 100 do
    Sketch.observe sk ~now:(i * 2) i
  done;
  let p50 = Sketch.percentile sk ~now:200 50.0 in
  Alcotest.(check bool)
    "p50 near 50" true
    (p50 >= 40 && p50 <= 60);
  (* everything observed before now - slices*width has expired *)
  Sketch.observe sk ~now:10_000 7;
  Alcotest.(check int) "old slices expired" 7
    (Sketch.percentile sk ~now:10_000 99.0)

let test_sketch_merge () =
  let a = Sketch.create ~slices:4 ~slice_width:100 () in
  let b = Sketch.create ~slices:4 ~slice_width:100 () in
  for i = 1 to 50 do
    Sketch.observe a ~now:10 i;
    Sketch.observe b ~now:10 (1000 + i)
  done;
  Sketch.merge_into ~dst:a ~now:10 b;
  let p99 = Sketch.percentile a ~now:10 99.0 in
  Alcotest.(check bool) "merged tail visible" true (p99 >= 1000);
  Alcotest.(check_raises) "geometry mismatch rejected"
    (Invalid_argument "Sketch.merge_into: geometry mismatch")
    (fun () ->
      Sketch.merge_into ~dst:a ~now:10
        (Sketch.create ~slices:2 ~slice_width:100 ()))

(* ---------------- series ------------------------------------------- *)

let test_series_sources () =
  let s = Series.create ~every:10 ~capacity:4 ~label:"t" () in
  let g = ref 5 in
  Series.gauge s "g" (fun () -> !g);
  let c = Series.cell s "c" in
  let ctr = ref 0 in
  Series.counter s "k" ctr;
  Series.scrape s ~now:10;
  g := 7;
  c := 3;
  ctr := 11;
  Series.scrape s ~now:20;
  Alcotest.(check (list (pair int int)))
    "gauge points" [ (10, 5); (20, 7) ] (Series.points s "g");
  Alcotest.(check (list (pair int int)))
    "cell points" [ (10, 0); (20, 3) ] (Series.points s "c");
  Alcotest.(check (option (pair int int)))
    "counter last" (Some (20, 11)) (Series.last s "k");
  (* ring keeps only the newest [capacity] points *)
  List.iter (fun now -> Series.scrape s ~now) [ 30; 40; 50 ];
  Alcotest.(check int) "ring bounded" 4 (List.length (Series.points s "g"))

let test_series_disabled () =
  let s = Series.disabled in
  Series.gauge s "g" (fun () -> 1);
  let c = Series.cell s "c" in
  incr c;
  Series.scrape s ~now:10;
  Alcotest.(check (list string)) "no registrations" [] (Series.names s);
  Alcotest.(check int) "no scrapes" 0 (Series.scrape_count s)

(* ---------------- critical-path fixtures --------------------------- *)

let emit o ~time ~op ~kind ~a ~b =
  ignore (Obs.emit o ~time ~pid:0 ~op ~parent:(-1) ~kind ~a ~b)

(* A hand-built span touching every phase:
     issue@0 send@0 ..net.. recv@20 ..proc.. aas@25 ..aas.. relay@40
     ..proc.. park@45 ..parked.. unpark@60 send@60 ..net.. complete@80
   net = 20 + 20, proc = 5 + 5, aas = 15, parked = 15; total 80. *)
let test_critical_fixture () =
  let o = Obs.create ~enabled:true ~capacity:64 ~label:"fix" () in
  emit o ~time:0 ~op:1 ~kind:Event.Op_issue ~a:Event.op_search ~b:0;
  emit o ~time:0 ~op:1 ~kind:Event.Msg_send ~a:1 ~b:0;
  emit o ~time:20 ~op:1 ~kind:Event.Msg_recv ~a:1 ~b:0;
  emit o ~time:25 ~op:1 ~kind:Event.Aas_block ~a:3 ~b:0;
  emit o ~time:40 ~op:1 ~kind:Event.Relay ~a:3 ~b:0;
  emit o ~time:45 ~op:1 ~kind:Event.Park ~a:3 ~b:0;
  emit o ~time:60 ~op:1 ~kind:Event.Unpark ~a:3 ~b:0;
  emit o ~time:60 ~op:1 ~kind:Event.Msg_send ~a:0 ~b:0;
  emit o ~time:80 ~op:1 ~kind:Event.Op_complete ~a:Event.op_search ~b:80;
  match Critical.per_op o with
  | [ (1, p) ] ->
    Alcotest.(check int) "net" 40 p.Critical.p_net;
    Alcotest.(check int) "aas" 15 p.Critical.p_aas;
    Alcotest.(check int) "parked" 15 p.Critical.p_parked;
    Alcotest.(check int) "retx" 0 p.Critical.p_retx;
    (* the unpark->send gap is 0; proc is the two 5-tick gaps *)
    Alcotest.(check int) "proc" 10 p.Critical.p_proc;
    Alcotest.(check int) "total = latency" 80 (Critical.total p);
    Alcotest.(check int) "stall = aas + parked" 30 (Critical.stall p)
  | l -> Alcotest.failf "expected one complete span, got %d" (List.length l)

let test_critical_excludes_late_events () =
  let o = Obs.create ~enabled:true ~capacity:64 ~label:"late" () in
  emit o ~time:0 ~op:1 ~kind:Event.Op_issue ~a:0 ~b:0;
  emit o ~time:0 ~op:1 ~kind:Event.Msg_send ~a:1 ~b:0;
  emit o ~time:30 ~op:1 ~kind:Event.Op_complete ~a:0 ~b:30;
  (* a relay delivery carrying the op's lineage, after completion *)
  emit o ~time:500 ~op:1 ~kind:Event.Relay ~a:9 ~b:0;
  (match Critical.per_op o with
  | [ (1, p) ] ->
    Alcotest.(check int) "only the span window charged" 30 (Critical.total p)
  | _ -> Alcotest.fail "span lost");
  (* missing completion -> no attribution *)
  let o2 = Obs.create ~enabled:true ~capacity:64 ~label:"open" () in
  emit o2 ~time:0 ~op:7 ~kind:Event.Op_issue ~a:0 ~b:0;
  emit o2 ~time:5 ~op:7 ~kind:Event.Msg_send ~a:1 ~b:0;
  Alcotest.(check int) "incomplete spans skipped" 0
    (List.length (Critical.per_op o2))

(* ---------------- query stall detection on wrapped rings ----------- *)

let test_stalled_on_wrapped_ring () =
  (* capacity 8: the first op's early events are overwritten *)
  let o = Obs.create ~enabled:true ~capacity:8 ~label:"wrap" () in
  emit o ~time:0 ~op:1 ~kind:Event.Op_issue ~a:0 ~b:0;
  emit o ~time:1 ~op:1 ~kind:Event.Msg_send ~a:1 ~b:0;
  (* a second op generates enough traffic to wrap the ring: 10 events
     total, so op 1 is evicted entirely while op 2's issue survives *)
  emit o ~time:100 ~op:2 ~kind:Event.Op_issue ~a:0 ~b:0;
  for i = 1 to 7 do
    emit o ~time:(100 + i) ~op:2 ~kind:Event.Msg_send ~a:1 ~b:i
  done;
  Alcotest.(check bool) "ring wrapped" true (Obs.dropped o > 0);
  (* op 1's issue was evicted: it cannot be reported stalled (its span
     has no issue event left); op 2 is issued, uncompleted and idle *)
  let stalled = Query.stalled o ~now:1000 ~idle:500 in
  Alcotest.(check (list int))
    "wrapped ring reports the op whose issue survived" [ 2 ]
    (List.map (fun s -> s.Query.op) stalled);
  (* an op completing after the wrap is never stalled *)
  emit o ~time:120 ~op:2 ~kind:Event.Op_complete ~a:0 ~b:20;
  Alcotest.(check int) "completed op not stalled" 0
    (List.length (Query.stalled o ~now:1000 ~idle:500))

(* ---------------- health rules ------------------------------------- *)

let test_health_rules () =
  let o = Obs.create ~enabled:true ~capacity:64 ~label:"h" () in
  let h = Health.create ~obs:o () in
  let level = ref 0 in
  Health.add_rule h ~name:"hi" ~severity:Health.Crit
    ~signal:(fun () -> !level)
    ~threshold:10 ();
  Health.add_rule h ~name:"lo" ~cmp:Health.Below
    ~signal:(fun () -> !level)
    ~threshold:(-5) ();
  Health.evaluate h ~now:0;
  level := 25;
  Health.evaluate h ~now:100;
  level := 40;
  Health.evaluate h ~now:200;
  level := 0;
  Health.evaluate h ~now:300;
  Health.finish h ~now:400;
  (match Health.alerts h with
  | [ al ] ->
    Alcotest.(check string) "rule" "hi" al.Health.al_rule;
    Alcotest.(check int) "opened" 100 al.Health.al_from;
    Alcotest.(check int) "closed" 300 al.Health.al_until;
    Alcotest.(check int) "peak tracked" 40 al.Health.al_peak
  | l -> Alcotest.failf "expected one alert, got %d" (List.length l));
  let raises, clears =
    List.fold_left
      (fun (r, c) (e : Obs.event) ->
        match e.Obs.kind with
        | Event.Alert_raise -> (r + 1, c)
        | Event.Alert_clear -> (r, c + 1)
        | _ -> (r, c))
      (0, 0) (Obs.events o)
  in
  Alcotest.(check (pair int int)) "raise/clear paired" (1, 1) (raises, clears);
  (match Health.summary h with
  | [ hi; lo ] ->
    Alcotest.(check int) "fired once" 1 hi.Health.su_fired;
    Alcotest.(check int) "active 200 ticks" 200 hi.Health.su_active_ticks;
    Alcotest.(check int) "below rule silent" 0 lo.Health.su_fired
  | _ -> Alcotest.fail "two rules expected");
  Alcotest.(check_raises) "duplicate rule name"
    (Invalid_argument "Health: duplicate rule \"hi\"") (fun () ->
      Health.add_rule h ~name:"hi" ~signal:(fun () -> 0) ~threshold:0 ())

(* ---------------- cluster gates ------------------------------------ *)

let semi_config ?(telemetry = false) ?faults ?transport ~seed () =
  Config.make ~procs:4 ~capacity:8 ~seed ~key_space:100_000
    ~discipline:Config.Semi ?faults ?transport ~telemetry
    ~telemetry_every:256 ()

(* The overhead gate: scrapes ride the probe and schedule nothing, so
   the instrumented run must execute the exact same events. *)
let test_zero_event_drift () =
  let events r =
    Dbtree_sim.Sim.events_processed r.Common.cluster.Cluster.sim
  in
  let off = Common.run_fixed ~count:200 (semi_config ~seed:3 ()) in
  let on = Common.run_fixed ~count:200 (semi_config ~telemetry:true ~seed:3 ()) in
  Alcotest.(check int) "identical event count" (events off) (events on);
  Alcotest.(check int) "identical elapsed" off.Common.elapsed on.Common.elapsed;
  Alcotest.(check bool) "plane was live" true
    (Series.scrape_count (Telemetry.series (Cluster.telemetry on.Common.cluster))
    > 0)

let fired_of r name =
  let health = Telemetry.health (Cluster.telemetry r.Common.cluster) in
  List.fold_left
    (fun acc (s : Health.summary_row) ->
      if s.Health.su_rule = name then s.Health.su_fired else acc)
    0 (Health.summary health)

let test_alerts_silent_on_clean_run () =
  let r =
    Common.run_fixed ~count:200
      (semi_config ~telemetry:true ~transport:Dbtree_sim.Net.Reliable ~seed:5 ())
  in
  let health = Telemetry.health (Cluster.telemetry r.Common.cluster) in
  List.iter
    (fun (s : Health.summary_row) ->
      Alcotest.(check int) (s.Health.su_rule ^ " silent") 0 s.Health.su_fired)
    (Health.summary health)

let test_retx_storm_fires () =
  let faults =
    { Dbtree_sim.Net.no_faults with Dbtree_sim.Net.drop_prob = 0.3 }
  in
  let cfg =
    Config.make ~procs:8 ~capacity:8 ~seed:23 ~key_space:200_000
      ~discipline:Config.Semi ~transport:Dbtree_sim.Net.Reliable ~faults
      ~telemetry:true ~telemetry_every:256 ()
  in
  let r = Common.run_fixed ~window:32 ~count:100 cfg in
  Alcotest.(check bool) "retx_storm fired" true (fired_of r "retx_storm" > 0)

let test_stall_ordering () =
  let shares = Dbtree_experiments.E19_telemetry.metrics ~quick:true () in
  let get k = List.assoc (k ^ ".stall_pct") shares in
  let sync = get "sync" and semi = get "semi" and mobile = get "mobile" in
  Alcotest.(check bool)
    (Fmt.str "sync (%.2f) > semi (%.2f) > mobile (%.2f)" sync semi mobile)
    true
    (sync > semi && semi > mobile)

(* ---------------- allocation-free hot and scrape paths ------------- *)

let alloc_of f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_hooks_alloc_free () =
  let tm = Telemetry.disabled in
  (* warm up any one-time allocation *)
  Telemetry.touch tm ~node:1;
  let words =
    alloc_of (fun () ->
        for i = 0 to 9_999 do
          Telemetry.touch tm ~node:(i land 63);
          Telemetry.observe_latency tm ~kind:0 ~now:i 5;
          Telemetry.aas_begin tm;
          Telemetry.aas_end tm;
          Telemetry.scrape tm ~now:i
        done)
  in
  Alcotest.(check (float 0.0)) "disabled hooks allocate nothing" 0.0 words

let test_scrape_path_alloc_free () =
  let tm = Telemetry.create ~every:64 ~label:"alloc" () in
  let g = ref 0 in
  Series.gauge (Telemetry.series tm) "g" (fun () -> !g);
  (* warm up: first touches may grow the heat arena *)
  for n = 0 to 63 do
    Telemetry.touch tm ~node:n
  done;
  Telemetry.scrape tm ~now:0;
  let words =
    alloc_of (fun () ->
        for i = 1 to 9_999 do
          Telemetry.touch tm ~node:(i land 63);
          Telemetry.observe_latency tm ~kind:(i land 3) ~now:i 7;
          if i land 63 = 0 then Telemetry.scrape tm ~now:i
        done)
  in
  Alcotest.(check (float 0.0)) "steady-state plane allocates nothing" 0.0
    words

(* ---------------- forced telemetry under Par ----------------------- *)

(* Mirror of the forced-tracing registry regression: forcing the plane
   and building clusters from four domains must register every registry
   exactly once, and two identical parallel runs must agree on the
   stable view (sorted labels, scrape counts, series values). *)
let test_forced_registry_under_par () =
  let run () =
    Series.clear_registered ();
    Series.force_enable ~every:128 ();
    Fun.protect ~finally:Series.force_disable (fun () ->
        let rs =
          Par.map ~domains:4
            (fun seed ->
              Common.run_fixed ~count:60 (semi_config ~seed ()))
            (Array.init 6 (fun i -> i + 1))
        in
        Array.iter
          (fun r ->
            let tm = Cluster.telemetry r.Common.cluster in
            Alcotest.(check bool) "forced plane live" true (Telemetry.on tm);
            Alcotest.(check int) "forced cadence" 128 (Telemetry.every tm))
          rs;
        let regs = Series.registered () in
        Alcotest.(check int) "all registries recorded" 6 (List.length regs);
        List.sort compare
          (List.map
             (fun s -> (Series.label s, Series.scrape_count s))
             regs))
  in
  let view = run () in
  Alcotest.(check bool) "scrapes happened" true
    (List.for_all (fun (_, n) -> n > 0) view);
  Alcotest.(check (list (pair string int)))
    "identical parallel runs agree" view (run ());
  Alcotest.(check bool) "force_disable took" false (Series.forced ());
  Series.clear_registered ()

(* Forced plane reaches the LHT too (it has no per-config flag). *)
let test_forced_lht_heat () =
  Series.clear_registered ();
  Series.force_enable ~every:128 ();
  Fun.protect ~finally:Series.force_disable (fun () ->
      let t = Dbtree_lht.Lht.create Dbtree_lht.Lht.default_config in
      for i = 1 to 200 do
        ignore (Dbtree_lht.Lht.insert t ~origin:(i mod 4) (i * 7919) "v")
      done;
      Dbtree_lht.Lht.run t;
      Alcotest.(check bool) "bucket heat recorded" true
        (Dbtree_lht.Lht.heat_total t > 0);
      let id, hits = Dbtree_lht.Lht.hottest_bucket t in
      Alcotest.(check bool) "hottest bucket sane" true (id >= 0 && hits > 0);
      let series = Dbtree_lht.Lht.telemetry t in
      Alcotest.(check bool) "lht series scraped" true
        (Series.scrape_count series > 0));
  Series.clear_registered ()

let test_config_validation () =
  match
    Config.validate
      { (semi_config ~telemetry:true ~seed:1 ()) with Config.telemetry_every = 0 }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "telemetry_every = 0 accepted"

let suite =
  [
    QCheck_alcotest.to_alcotest percentile_divergence;
    Alcotest.test_case "sketch: sliding window" `Quick test_sketch_window;
    Alcotest.test_case "sketch: merge" `Quick test_sketch_merge;
    Alcotest.test_case "series: sources and rings" `Quick test_series_sources;
    Alcotest.test_case "series: disabled guard" `Quick test_series_disabled;
    Alcotest.test_case "critical: phase fixture" `Quick test_critical_fixture;
    Alcotest.test_case "critical: late events excluded" `Quick
      test_critical_excludes_late_events;
    Alcotest.test_case "query: stalled on wrapped ring" `Quick
      test_stalled_on_wrapped_ring;
    Alcotest.test_case "health: rule lifecycle" `Quick test_health_rules;
    Alcotest.test_case "cluster: zero event drift" `Quick
      test_zero_event_drift;
    Alcotest.test_case "cluster: alerts silent when clean" `Quick
      test_alerts_silent_on_clean_run;
    Alcotest.test_case "cluster: retx storm fires" `Quick
      test_retx_storm_fires;
    Alcotest.test_case "cluster: stall ordering sync>semi>mobile" `Slow
      test_stall_ordering;
    Alcotest.test_case "alloc: disabled hooks" `Quick
      test_disabled_hooks_alloc_free;
    Alcotest.test_case "alloc: scrape path" `Quick
      test_scrape_path_alloc_free;
    Alcotest.test_case "forced registry under Par" `Quick
      test_forced_registry_under_par;
    Alcotest.test_case "forced plane reaches LHT" `Quick test_forced_lht_heat;
    Alcotest.test_case "config: telemetry_every validated" `Quick
      test_config_validation;
  ]
