(* End-to-end tests of the fixed-copies protocol family (§4.1): the
   synchronous and semi-synchronous split disciplines, the naive ablation,
   and the eager baseline — across replication policies and cluster
   sizes, checked by the quiescent verifier and the §3 history audit. *)
open Dbtree_core
open Dbtree_sim

let mk ?(procs = 4) ?(capacity = 4) ?(seed = 42) ?(key_space = 50_000)
    ?(replication = Config.Path) ?(single_copy_root = false)
    ?(relay_batch = 1) ?(relay_flush_delay = 0) discipline =
  Config.make ~procs ~capacity ~seed ~key_space ~replication ~discipline
    ~single_copy_root ~relay_batch ~relay_flush_delay ()

let run_fixed ?(count = 300) ?expect_ok cfg label =
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let keys, report =
    Scenario.run_cluster ~api:(Driver.fixed_api t) ~cluster:cl ~cfg ~count ()
  in
  Scenario.check_verified ?expect_ok label report;
  (match expect_ok with
  | Some false -> ()
  | Some true | None ->
    Scenario.check_no_leftover label cl;
    Scenario.all_search_results_correct cl keys);
  (t, report)

let test_discipline_matrix () =
  List.iter
    (fun (d, r) ->
      let label =
        Fmt.str "%s/%s" (Config.discipline_name d)
          (match r with Config.All_procs -> "all" | Config.Path -> "path")
      in
      ignore (run_fixed (mk ~replication:r d) label))
    [
      (Config.Semi, Config.Path);
      (Config.Semi, Config.All_procs);
      (Config.Sync, Config.Path);
      (Config.Sync, Config.All_procs);
      (Config.Eager, Config.Path);
      (Config.Eager, Config.All_procs);
    ]

let test_single_processor () =
  List.iter
    (fun d ->
      ignore
        (run_fixed ~count:150
           (mk ~procs:1 ~replication:Config.All_procs d)
           "single proc"))
    [ Config.Semi; Config.Sync; Config.Eager ]

let test_many_processors () =
  ignore (run_fixed ~count:400 (mk ~procs:8 Config.Semi) "8 procs semi");
  ignore (run_fixed ~count:400 (mk ~procs:8 Config.Sync) "8 procs sync")

let test_capacity_sweep () =
  List.iter
    (fun capacity ->
      ignore (run_fixed (mk ~capacity Config.Semi) (Fmt.str "cap %d" capacity)))
    [ 2; 3; 8; 32 ]

let test_seed_sweep () =
  List.iter
    (fun seed ->
      ignore (run_fixed (mk ~seed Config.Semi) (Fmt.str "seed %d" seed));
      ignore (run_fixed (mk ~seed Config.Sync) (Fmt.str "seed %d" seed)))
    [ 1; 2; 3; 77 ]

let test_naive_loses_inserts () =
  (* The Figure 4 anomaly: the naive protocol acknowledges inserts and then
     silently loses some, while the copies still converge. *)
  let cfg = mk ~replication:Config.All_procs ~capacity:4 Config.Naive in
  let t, report = run_fixed ~count:400 ~expect_ok:false cfg "naive" in
  Alcotest.(check bool) "keys were lost" true (report.Verify.missing_keys <> []);
  Alcotest.(check bool) "copies still converge" true
    (report.Verify.divergent_nodes = []);
  Alcotest.(check bool) "loss was counted" true
    (Stats.get (Cluster.stats (Fixed.cluster t)) "naive.lost" > 0)

let test_semi_forwarding_fires () =
  (* Under concurrent inserts the PC must rewrite history at least once. *)
  let cfg = mk ~procs:4 ~replication:Config.All_procs ~capacity:4 Config.Semi in
  let t, _ = run_fixed ~count:500 cfg "semi forwards" in
  Alcotest.(check bool) "out-of-range relays were forwarded" true
    (Stats.get (Cluster.stats (Fixed.cluster t)) "semi.forwarded" > 0)

let test_sync_blocks_inserts () =
  let cfg = mk ~procs:4 ~replication:Config.All_procs ~capacity:4 Config.Sync in
  let t, _ = run_fixed ~count:500 cfg "sync blocks" in
  Alcotest.(check bool) "the AAS blocked initial updates" true
    (Stats.get (Cluster.stats (Fixed.cluster t)) "split.blocked_updates" > 0)

let split_message_cost t kinds =
  let st = Cluster.stats (Fixed.cluster t) in
  let total = List.fold_left (fun acc k -> acc + Stats.get st ("net.msg." ^ k)) 0 kinds in
  float_of_int total /. float_of_int (max 1 (Fixed.splits t))

let test_split_message_complexity () =
  (* §4.1.2: a semi-synchronous split costs |copies| messages, the
     synchronous AAS costs 3|copies|.  With 4 copies per node the per-split
     coherence traffic must be ~3 (relayed splits) vs ~9 (start+ack+end). *)
  let run d =
    let cfg = mk ~procs:4 ~replication:Config.All_procs ~capacity:4 d in
    let t, _ = run_fixed ~count:500 cfg "cost" in
    t
  in
  let semi = run Config.Semi and sync = run Config.Sync in
  let semi_cost = split_message_cost semi [ "relay_split" ] in
  let sync_cost =
    split_message_cost sync [ "split_start"; "split_ack"; "split_end" ]
  in
  Alcotest.(check bool)
    (Fmt.str "semi ~3 msgs/split (got %.2f)" semi_cost)
    true
    (semi_cost > 2.0 && semi_cost < 4.0);
  Alcotest.(check bool)
    (Fmt.str "sync ~9 msgs/split (got %.2f)" sync_cost)
    true
    (sync_cost > 7.0 && sync_cost < 10.0);
  Alcotest.(check bool) "sync ~3x semi" true (sync_cost > 2.5 *. semi_cost)

let test_eager_latency_worse () =
  (* The vigorous baseline completes an insert only after every copy acks:
     its insert latency must exceed the lazy protocol's. *)
  let run d =
    let cfg = mk ~procs:4 ~replication:Config.All_procs ~capacity:8 d in
    let t = Fixed.create cfg in
    let cl = Fixed.cluster t in
    let _, report =
      Scenario.run_cluster ~api:(Driver.fixed_api t) ~cluster:cl ~cfg ~count:300 ()
    in
    Scenario.check_verified "eager latency" report;
    Opstate.mean_latency cl.Cluster.ops Opstate.Insert
  in
  let lazy_lat = run Config.Semi and eager_lat = run Config.Eager in
  Alcotest.(check bool)
    (Fmt.str "eager slower (%.1f vs %.1f)" eager_lat lazy_lat)
    true (eager_lat > lazy_lat)

let test_relay_batching () =
  (* Piggybacked relays: fewer wire messages, same final state. *)
  let base = mk ~procs:4 ~replication:Config.All_procs Config.Semi in
  let batched =
    mk ~procs:4 ~replication:Config.All_procs ~relay_batch:8
      ~relay_flush_delay:50 Config.Semi
  in
  let msgs cfg =
    let t = Fixed.create cfg in
    let cl = Fixed.cluster t in
    let _, report =
      Scenario.run_cluster ~api:(Driver.fixed_api t) ~cluster:cl ~cfg ~count:400 ()
    in
    Scenario.check_verified "batching" report;
    Cluster.Network.remote_messages cl.Cluster.net
  in
  let plain = msgs base and piggy = msgs batched in
  Alcotest.(check bool)
    (Fmt.str "batching saves messages (%d vs %d)" piggy plain)
    true
    (piggy < plain)

let test_batching_rejected_elsewhere () =
  Alcotest.check_raises "batching requires Semi"
    (Invalid_argument "Config: relay_batch > 1 (relay batching) requires the Semi discipline")
    (fun () -> ignore (mk ~relay_batch:4 Config.Sync))

let test_single_copy_root () =
  let cfg = mk ~single_copy_root:true Config.Semi in
  let t, _ = run_fixed ~count:300 cfg "single root" in
  (* all operations from other processors funnel through processor 0 *)
  let cl = Fixed.cluster t in
  Alcotest.(check bool) "root proc is hot" true
    (Cluster.Network.sent_to cl.Cluster.net 0
    > 2 * Cluster.Network.sent_to cl.Cluster.net 3)

let test_remove_and_reinsert () =
  let cfg = mk Config.Semi in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let done_ops () = Cluster.run cl in
  ignore (Fixed.insert t ~origin:0 100 "a");
  ignore (Fixed.insert t ~origin:1 200 "b");
  done_ops ();
  ignore (Fixed.remove t ~origin:2 100);
  done_ops ();
  let s1 = Fixed.search t ~origin:3 100 in
  let s2 = Fixed.search t ~origin:0 200 in
  done_ops ();
  let result op =
    (Option.get (Opstate.find cl.Cluster.ops op)).Opstate.result
  in
  Alcotest.(check bool) "removed key absent" true (result s1 = Some Msg.Absent);
  Alcotest.(check bool) "other key present" true
    (result s2 = Some (Msg.Found "b"));
  ignore (Fixed.insert t ~origin:2 100 "a2");
  done_ops ();
  let s3 = Fixed.search t ~origin:1 100 in
  done_ops ();
  Alcotest.(check bool) "reinserted" true (result s3 = Some (Msg.Found "a2"));
  Scenario.check_verified "remove/reinsert" (Verify.check cl)

let test_upsert_overwrites () =
  let cfg = mk ~procs:2 Config.Semi in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  ignore (Fixed.insert t ~origin:0 42 "v1");
  Cluster.run cl;
  ignore (Fixed.insert t ~origin:0 42 "v2");
  Cluster.run cl;
  let s = Fixed.search t ~origin:1 42 in
  Cluster.run cl;
  Alcotest.(check bool) "overwritten" true
    ((Option.get (Opstate.find cl.Cluster.ops s)).Opstate.result
    = Some (Msg.Found "v2"))

let test_search_absent () =
  let cfg = mk Config.Semi in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let s = Fixed.search t ~origin:2 12345 in
  Cluster.run cl;
  Alcotest.(check bool) "absent" true
    ((Option.get (Opstate.find cl.Cluster.ops s)).Opstate.result
    = Some Msg.Absent)

let test_sequential_keys () =
  (* Sequential inserts are the degenerate split pattern. *)
  let cfg = mk ~procs:4 Config.Semi in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  for i = 1 to 400 do
    ignore (Fixed.insert t ~origin:(i mod 4) i (string_of_int i))
  done;
  Cluster.run cl;
  Scenario.check_verified "sequential" (Verify.check cl)

let test_range_scan () =
  List.iter
    (fun replication ->
      let cfg = mk ~procs:4 ~capacity:4 ~replication Config.Semi in
      let t = Fixed.create cfg in
      let cl = Fixed.cluster t in
      for i = 1 to 300 do
        ignore (Fixed.insert t ~origin:(i mod 4) (i * 100) (Fmt.str "v%d" i))
      done;
      Cluster.run cl;
      (* ranges: inside one leaf, spanning processors, empty, everything *)
      let cases = [ (150, 450); (20_000, 28_000); (95, 99); (0, 1_000_000) ] in
      let ops = List.map (fun (lo, hi) -> (Fixed.scan t ~origin:1 ~lo ~hi, lo, hi)) cases in
      Cluster.run cl;
      List.iter (fun (op, lo, hi) -> Scenario.check_scan cl ~op ~lo ~hi) ops)
    [ Config.Path; Config.All_procs ]

let test_open_loop_driver () =
  let cfg = mk Config.Semi in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let keys, streams =
    Scenario.insert_streams ~rng_seed:9 ~key_space:cfg.Config.key_space
      ~count:200 ~procs:4
  in
  Driver.run_open cl (Driver.fixed_api t) ~streams ~interval:7;
  Scenario.check_verified "open loop" (Verify.check cl);
  Alcotest.(check int) "all inserts completed" (Array.length keys)
    (Opstate.completed cl.Cluster.ops)

let prop_random_cluster_verifies =
  QCheck.Test.make ~name:"random small clusters verify (semi)" ~count:25
    QCheck.(
      quad (int_range 1 6) (int_range 2 8) (int_range 20 150) (int_bound 1000))
    (fun (procs, capacity, count, seed) ->
      (* clamp: qcheck shrinking can escape int_range bounds *)
      let procs = max 1 procs and capacity = max 2 capacity in
      let count = max 1 count and seed = abs seed in
      let cfg = mk ~procs ~capacity ~seed Config.Semi in
      let t = Fixed.create cfg in
      let cl = Fixed.cluster t in
      let _, report =
        Scenario.run_cluster ~api:(Driver.fixed_api t) ~cluster:cl ~cfg ~count
          ~searches:8 ()
      in
      Verify.ok report)

let prop_mixed_ops_verify =
  QCheck.Test.make ~name:"mixed insert/remove/search workloads verify" ~count:20
    QCheck.(pair (int_range 1 5) (int_bound 1000))
    (fun (procs, seed) ->
      let procs = max 1 procs and seed = abs seed in
      let cfg = mk ~procs ~capacity:4 ~seed Config.Semi in
      let t = Fixed.create cfg in
      let cl = Fixed.cluster t in
      let rng = Dbtree_sim.Rng.create (seed + 3) in
      (* unique keys; a random subset gets removed after insertion, with
         interleaved searches *)
      let keys =
        Dbtree_workload.Workload.unique_keys rng ~key_space:cfg.Config.key_space
          ~count:160
      in
      let loaded = Array.sub keys 0 80 and fresh = Array.sub keys 80 80 in
      (* phase 1: load *)
      Array.iteri
        (fun i k ->
          ignore (Fixed.insert t ~origin:(i mod procs) k (string_of_int k)))
        loaded;
      Cluster.run cl;
      (* phase 2: concurrent removes of loaded keys, fresh inserts, and
         searches — no two in-flight operations share a key *)
      Array.iteri
        (fun i k ->
          ignore (Fixed.insert t ~origin:(i mod procs) k (string_of_int k));
          if i mod 3 = 0 then
            ignore (Fixed.remove t ~origin:((i + 2) mod procs) loaded.(i));
          if i mod 7 = 0 then
            ignore (Fixed.search t ~origin:((i + 1) mod procs) loaded.(i + 1)))
        fresh;
      Cluster.run cl;
      Verify.ok (Verify.check cl))

let test_debug_dump () =
  let cfg = mk Config.Semi in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  for i = 1 to 100 do
    ignore (Fixed.insert t ~origin:(i mod 4) (i * 11) "v")
  done;
  Cluster.run cl;
  let dump = Fmt.str "%a" Debug.pp_cluster cl in
  Alcotest.(check bool) "dump mentions levels" true
    (Astring.String.is_infix ~affix:"level 0" dump
    || String.length dump > 100);
  let store_dump = Fmt.str "%a" Debug.pp_store (Cluster.store cl 0) in
  Alcotest.(check bool) "store dump non-empty" true (String.length store_dump > 50);
  Alcotest.(check bool) "depth sane" true (Debug.tree_depth cl >= 2)

let prop_random_cluster_verifies_sync =
  QCheck.Test.make ~name:"random small clusters verify (sync)" ~count:15
    QCheck.(
      quad (int_range 1 6) (int_range 2 8) (int_range 20 150) (int_bound 1000))
    (fun (procs, capacity, count, seed) ->
      (* clamp: qcheck shrinking can escape int_range bounds *)
      let procs = max 1 procs and capacity = max 2 capacity in
      let count = max 1 count and seed = abs seed in
      let cfg =
        mk ~procs ~capacity ~seed ~replication:Config.All_procs Config.Sync
      in
      let t = Fixed.create cfg in
      let cl = Fixed.cluster t in
      let _, report =
        Scenario.run_cluster ~api:(Driver.fixed_api t) ~cluster:cl ~cfg ~count
          ~searches:8 ()
      in
      Verify.ok report)

let suite =
  [
    Alcotest.test_case "discipline x replication matrix" `Slow test_discipline_matrix;
    Alcotest.test_case "single processor" `Quick test_single_processor;
    Alcotest.test_case "eight processors" `Slow test_many_processors;
    Alcotest.test_case "capacity sweep" `Slow test_capacity_sweep;
    Alcotest.test_case "seed sweep" `Slow test_seed_sweep;
    Alcotest.test_case "naive ablation loses inserts (Fig 4)" `Quick
      test_naive_loses_inserts;
    Alcotest.test_case "semi: history rewriting fires" `Quick
      test_semi_forwarding_fires;
    Alcotest.test_case "sync: AAS blocks initial updates" `Quick
      test_sync_blocks_inserts;
    Alcotest.test_case "split cost: 3|c| vs |c| (Fig 5)" `Slow
      test_split_message_complexity;
    Alcotest.test_case "eager completes slower than lazy" `Slow
      test_eager_latency_worse;
    Alcotest.test_case "relay piggybacking saves messages" `Slow
      test_relay_batching;
    Alcotest.test_case "batching config validation" `Quick
      test_batching_rejected_elsewhere;
    Alcotest.test_case "single-copy root bottleneck" `Quick test_single_copy_root;
    Alcotest.test_case "remove and reinsert" `Quick test_remove_and_reinsert;
    Alcotest.test_case "upsert overwrites" `Quick test_upsert_overwrites;
    Alcotest.test_case "search absent key" `Quick test_search_absent;
    Alcotest.test_case "sequential key load" `Quick test_sequential_keys;
    Alcotest.test_case "range scans cross leaf chain" `Quick test_range_scan;
    Alcotest.test_case "open-loop driver" `Quick test_open_loop_driver;
    QCheck_alcotest.to_alcotest prop_random_cluster_verifies;
    QCheck_alcotest.to_alcotest prop_mixed_ops_verify;
    Alcotest.test_case "debug dump" `Quick test_debug_dump;
    QCheck_alcotest.to_alcotest prop_random_cluster_verifies_sync;
  ]
