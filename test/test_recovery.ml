(* Crash/restart recovery over the per-processor WAL (see Wal, and the
   crash machinery in Net): a scheduled crash drops a processor's
   volatile state, recovery replays its journal and resumes the reliable
   channels, and nothing acknowledged is ever lost.  First the transport
   layer alone with a toy durable journal, then the kernels end-to-end
   with the §3 audits and a store-digest replay oracle. *)
open Dbtree_sim
open Dbtree_core

module TestMsg = struct
  type t = int

  let kind _ = "int"
  let size _ = 8
  let kind_id _ = 0
  let num_kinds = 1
  let kind_name _ = "int"
end

module TN = Net.Make (TestMsg)

(* ------------------------------------------------------------------ *)
(* Transport level                                                     *)

(* Satellite regression: while a peer is down, no retransmission timer
   aimed at it may fire — the crash bumps the channel generation and
   disarms the timers, and transmissions are suppressed until restart.
   The pre-fix behavior retransmitted into the void on every backoff. *)
let test_retx_frozen_while_down () =
  let sim = Sim.create ~seed:5 () in
  let faults =
    {
      Net.no_faults with
      Net.drop_prob = 0.4;
      delay_prob = 0.3;
      delay_ticks = 300;
      crash_at = [ (1, 300) ];
      restart_delay = 400;
    }
  in
  let net = TN.create ~faults ~transport:Net.Reliable sim ~procs:2 in
  let received = ref [] in
  TN.set_handler net 0 (fun ~src:_ _ -> ());
  TN.set_handler net 1 (fun ~src:_ v -> received := v :: !received);
  for i = 1 to 60 do
    TN.send net ~src:0 ~dst:1 i
  done;
  let stats = Sim.stats sim in
  let retx () = Stats.get stats "net.rel.retx" in
  let down_retx = ref 0 in
  let prev = ref 0 in
  while Sim.step sim do
    let r = retx () in
    if TN.is_down net 1 && r > !prev then down_retx := !down_retx + r - !prev;
    prev := r
  done;
  Alcotest.(check int) "no retransmission fired at the dead peer" 0 !down_retx;
  Alcotest.(check int) "crash happened" 1 (Stats.get stats "net.crash.count");
  (* Delayed copies of pre-crash frames arrive after the restart carrying
     the dead incarnation's epoch: dropped as stale, never delivered. *)
  Alcotest.(check bool) "stale frames dropped" true
    (Stats.get stats "net.crash.stale_dropped" > 0);
  (* Without a durable journal the unacked window is replayed from seq 0,
     so every payload still arrives at least once. *)
  let seen = List.sort_uniq compare !received in
  Alcotest.(check (list int)) "every payload delivered" (List.init 60 (fun i -> i + 1)) seen

(* With a durable journal (the persist hooks backed by a toy in-memory
   "disk") exactly-once in-order delivery survives the crash in both
   directions: the restarted processor's unretired sends are re-queued
   from its journal, and its journaled delivered counts dedup the peers'
   go-back-N resends. *)
let test_durable_exactly_once_across_crash () =
  let sim = Sim.create ~seed:11 () in
  let faults =
    {
      Net.drop_prob = 0.3;
      duplicate_prob = 0.2;
      delay_prob = 0.2;
      delay_ticks = 150;
      crash_at = [ (1, 350) ];
      restart_delay = 120;
    }
  in
  let net = TN.create ~faults ~transport:Net.Reliable sim ~procs:2 in
  (* toy journal: per (src, dst) the unretired sends (newest first), the
     send high-water, and per (dst, src) the delivered count *)
  let out = Array.init 2 (fun _ -> Array.make 2 []) in
  let hi = Array.make_matrix 2 2 0 in
  let del = Array.make_matrix 2 2 0 in
  TN.set_persist net
    {
      TN.p_send =
        (fun ~src ~dst ~abs m ->
          out.(src).(dst) <- (abs, m) :: out.(src).(dst);
          hi.(src).(dst) <- abs + 1);
      p_retire =
        (fun ~src ~dst ~abs ->
          out.(src).(dst) <- List.filter (fun (a, _) -> a <> abs) out.(src).(dst));
      p_deliver = (fun ~src ~dst ~abs -> del.(dst).(src) <- abs + 1);
    };
  TN.set_crash_hooks net
    ~on_crash:(fun _ -> ())
    ~on_restart:(fun p ->
      TN.restore_proc net ~pid:p
        ~outbound:(List.init 2 (fun d -> (d, List.rev out.(p).(d))))
        ~sent:(List.init 2 (fun d -> (d, hi.(p).(d))))
        ~delivered:(List.init 2 (fun s -> (s, del.(p).(s)))));
  let got = Array.make 2 [] in
  TN.set_handler net 0 (fun ~src:_ v -> got.(0) <- v :: got.(0));
  TN.set_handler net 1 (fun ~src:_ v -> got.(1) <- v :: got.(1));
  for i = 1 to 80 do
    TN.send net ~src:0 ~dst:1 i;
    TN.send net ~src:1 ~dst:0 (1000 + i)
  done;
  Sim.run sim;
  Alcotest.(check (list int))
    "crashed receiver: exactly once, in order"
    (List.init 80 (fun i -> i + 1))
    (List.rev got.(1));
  Alcotest.(check (list int))
    "crashed sender: exactly once, in order"
    (List.init 80 (fun i -> 1001 + i))
    (List.rev got.(0))

(* ------------------------------------------------------------------ *)
(* Typed empty-member errors (satellite)                               *)

let test_pc_of_members_errors () =
  Alcotest.(check bool) "empty member list is a typed error" true
    (Cluster.pc_of_members [] = Error Cluster.Empty_members);
  Alcotest.(check bool) "nonempty member list" true
    (Cluster.pc_of_members [ 3; 1 ] = Ok 3);
  Alcotest.check_raises "exn variant names the function"
    (Invalid_argument "Cluster.pc_of_members: empty member list") (fun () ->
      ignore (Cluster.pc_of_members_exn []))

let test_park_no_members () =
  let cfg = Config.make ~procs:2 ~capacity:4 () in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let msg =
    Msg.Route
      {
        key = 1;
        level = 0;
        node = 999;
        act = Msg.Update { uid = -1; u = Msg.Remove { op = 0; origin = 0 } };
      }
  in
  Cluster.park_no_members cl ~pid:0 ~node:999 msg;
  Alcotest.(check int) "counted" 1
    (Stats.get (Cluster.stats cl) "route.no_members");
  Alcotest.(check (list bool)) "parked for the node" [ true ]
    (List.map (fun m -> m = msg) (Store.take_pending (Cluster.store cl 0) 999))

(* Config validation: every rejection names the offending field. *)
let test_crash_config_validation () =
  let durable = { Config.wal = true; snapshot_every = 128 } in
  let crash1 =
    { Dbtree_sim.Net.no_faults with Dbtree_sim.Net.crash_at = [ (1, 10) ] }
  in
  let reject msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  reject "Config: faults.crash_at requires durability.wal (volatile state cannot recover)"
    (fun () ->
      ignore
        (Config.make ~faults:crash1 ~transport:Dbtree_sim.Net.Reliable ()));
  reject "Config: faults.crash_at requires the Reliable transport" (fun () ->
      ignore (Config.make ~faults:crash1 ~durability:durable ()));
  reject
    "Config: faults.crash_at requires the Semi or Naive discipline (Sync/Eager barrier state is not journaled)"
    (fun () ->
      ignore
        (Config.make ~faults:crash1 ~durability:durable
           ~transport:Dbtree_sim.Net.Reliable ~discipline:Config.Sync ()));
  reject "Config: faults.crash_at entries must satisfy 0 <= proc < procs, tick >= 0"
    (fun () ->
      ignore
        (Config.make ~procs:2
           ~faults:{ crash1 with Dbtree_sim.Net.crash_at = [ (7, 10) ] }
           ~durability:durable ~transport:Dbtree_sim.Net.Reliable ()));
  reject "Config: faults.restart_delay must be >= 1" (fun () ->
      ignore
        (Config.make
           ~faults:{ crash1 with Dbtree_sim.Net.restart_delay = 0 }
           ~durability:durable ~transport:Dbtree_sim.Net.Reliable ()));
  reject "Config: durability.snapshot_every must be >= 0" (fun () ->
      ignore
        (Config.make ~durability:{ durable with Config.snapshot_every = -1 } ()));
  reject "Mobile: durability.wal is not supported (migration state is not journaled)"
    (fun () -> ignore (Mobile.create (Config.make ~durability:durable ())))

(* ------------------------------------------------------------------ *)
(* Kernels end-to-end                                                  *)

let durable = { Config.wal = true; snapshot_every = 128 }

let crash_faults ?(drop = 0.0) ?(dup = 0.0) ?(restart = 90) crashes =
  {
    Dbtree_sim.Net.no_faults with
    Dbtree_sim.Net.drop_prob = drop;
    duplicate_prob = dup;
    crash_at = crashes;
    restart_delay = restart;
  }

(* The recovery oracle: replaying a processor's WAL into a fresh store
   must reproduce the live store's crash-survivable state bit for bit. *)
let check_replay_digests cl =
  let procs = cl.Cluster.config.Config.procs in
  for pid = 0 to procs - 1 do
    let live = Cluster.store cl pid in
    let w = Cluster.wal cl pid in
    let fresh = Store.create ~pid ~root:(-1) in
    Wal.set_replaying w true;
    ignore (Wal.replay w (Store.apply_record fresh));
    Wal.set_replaying w false;
    Alcotest.(check string)
      (Fmt.str "p%d: WAL replay reproduces the live store" pid)
      (Store.digest live) (Store.digest fresh)
  done

let run_fixed ?(discipline = Config.Semi) ?(snapshot_every = 128) ~faults
    ~count ~seed () =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:50_000 ~seed
      ~transport:Dbtree_sim.Net.Reliable ~discipline
      ~durability:{ Config.wal = true; snapshot_every }
      ~faults ()
  in
  let t = Fixed.create cfg in
  for i = 1 to count do
    ignore (Fixed.insert t ~origin:(i mod 4) (i * 97) (Fmt.str "v%d" i))
  done;
  Fixed.run t;
  Fixed.cluster t

let test_fixed_crash_recovery () =
  let cl =
    run_fixed ~faults:(crash_faults [ (1, 60); (2, 150) ]) ~count:300 ~seed:3 ()
  in
  let stats = Cluster.stats cl in
  Alcotest.(check int) "two crashes" 2 (Stats.get stats "net.crash.count");
  Alcotest.(check bool) "journal records were replayed" true
    (Stats.get stats "recovery.replayed" > 0);
  Alcotest.(check bool) "survives and verifies" true (Verify.ok (Verify.check cl));
  check_replay_digests cl

let test_fixed_crash_recovery_lossy () =
  let cl =
    run_fixed
      ~faults:(crash_faults ~drop:0.1 ~dup:0.05 [ (3, 80) ])
      ~count:300 ~seed:9 ()
  in
  Alcotest.(check bool) "crash + loss + dup verifies" true
    (Verify.ok (Verify.check cl));
  check_replay_digests cl

(* Compaction mid-run: a tiny snapshot interval forces many snapshot
   truncations before and after the crash; the replay oracle must still
   hold from snapshot + tail. *)
let test_fixed_recovery_with_compaction () =
  let cl =
    run_fixed ~snapshot_every:16
      ~faults:(crash_faults [ (1, 60) ])
      ~count:250 ~seed:4 ()
  in
  let stats = Cluster.stats cl in
  Alcotest.(check bool) "snapshots happened" true
    (Wal.snapshots (Cluster.wal cl 1) > 0);
  Alcotest.(check bool) "verifies" true (Verify.ok (Verify.check cl));
  ignore stats;
  check_replay_digests cl

let run_variable ~faults ~count ~seed () =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:50_000 ~seed
      ~transport:Dbtree_sim.Net.Reliable ~durability:durable
      ~balance_period:400 ~faults ()
  in
  let t = Variable.create cfg in
  for i = 1 to count do
    ignore (Variable.insert t ~origin:(i mod 4) (i * 97) (Fmt.str "v%d" i))
  done;
  Variable.run t;
  Variable.cluster t

let test_variable_crash_recovery () =
  let cl =
    run_variable ~faults:(crash_faults [ (2, 100) ]) ~count:300 ~seed:5 ()
  in
  let stats = Cluster.stats cl in
  Alcotest.(check int) "crash happened" 1 (Stats.get stats "net.crash.count");
  Alcotest.(check bool) "replayed" true (Stats.get stats "recovery.replayed" > 0);
  Alcotest.(check bool) "rejoin requests sent for remote-PC copies" true
    (Stats.get stats "recovery.rejoined" > 0);
  Alcotest.(check bool) "verifies" true (Verify.ok (Verify.check cl));
  check_replay_digests cl

(* Determinism: recovery is part of the simulation — same seed, same
   crash schedule, byte-identical final state. *)
let digest_all cl =
  let procs = cl.Cluster.config.Config.procs in
  String.concat "|"
    (List.init procs (fun pid -> Store.digest (Cluster.store cl pid)))

let test_recovery_deterministic () =
  let run () =
    let cl =
      run_fixed ~faults:(crash_faults ~drop:0.05 [ (1, 70) ]) ~count:250
        ~seed:21 ()
    in
    (digest_all cl, Opstate.completed cl.Cluster.ops)
  in
  let d1, c1 = run () in
  let d2, c2 = run () in
  Alcotest.(check string) "same-seed digests identical" d1 d2;
  Alcotest.(check int) "same-seed completions identical" c1 c2

(* Satellite property: for an arbitrary crash/loss/duplication schedule,
   the cluster still verifies and every processor's live store equals the
   store replayed from its own WAL. *)
let prop_recovery_digest =
  QCheck.Test.make ~count:12 ~name:"random crash schedules recover"
    QCheck.(
      quad (int_bound 1000) (pair (int_bound 3) (int_range 20 300))
        (pair (int_bound 12) (int_bound 8))
        (int_range 1 150))
    (fun (seed, (proc, tick), (drop, dup), restart) ->
      (* the shrinker explores below the generator ranges; keep the
         config valid *)
      let restart = max 1 restart and tick = max 0 tick in
      let faults =
        crash_faults
          ~drop:(float_of_int drop /. 100.0)
          ~dup:(float_of_int dup /. 100.0)
          ~restart
          [ (proc, tick) ]
      in
      let cl = run_fixed ~faults ~count:150 ~seed () in
      let ok = Verify.ok (Verify.check cl) in
      let digests_ok =
        let procs = cl.Cluster.config.Config.procs in
        List.for_all Fun.id
          (List.init procs (fun pid ->
               let live = Cluster.store cl pid in
               let w = Cluster.wal cl pid in
               let fresh = Store.create ~pid ~root:(-1) in
               Wal.set_replaying w true;
               ignore (Wal.replay w (Store.apply_record fresh));
               Wal.set_replaying w false;
               Store.digest live = Store.digest fresh))
      in
      ok && digests_ok)

(* E18 gate: every published cell must verify and lose nothing that was
   acknowledged — CI runs this via dune runtest, like the E14 gate. *)
let test_e18_verified_columns () =
  Dbtree_experiments.Table.set_capture true;
  Dbtree_experiments.E18_recovery.run ~quick:true ();
  let tables = Dbtree_experiments.Table.captured () in
  Dbtree_experiments.Table.set_capture false;
  let table =
    match tables with
    | [ t ] -> t
    | _ -> Alcotest.fail "e18 must print exactly one table"
  in
  let rows = Dbtree_experiments.Table.rows table in
  Alcotest.(check int) "kernel x schedule x loss grid" 24 (List.length rows);
  List.iter
    (fun row ->
      match (row, List.rev row) with
      | kernel :: crashes :: drop :: _, verified :: _ :: lost_acked :: _ ->
        let label =
          Printf.sprintf "%s crashes=%s drop=%s" kernel crashes drop
        in
        Alcotest.(check string) (label ^ " verifies") "ok" verified;
        Alcotest.(check string) (label ^ " loses no acked update") "0"
          lost_acked
      | _ -> Alcotest.fail "malformed e18 row")
    rows;
  (* The pc-split schedule must really fire: each of its rows crashed
     the splitting node's PC (a discovery pass located the split, so an
     empty schedule would mean no split was found) and recovery replayed
     the WAL on restart. *)
  let pc_rows =
    List.filter
      (fun row -> String.equal (List.nth row 1) "pc-split")
      rows
  in
  Alcotest.(check int) "pc-split rows (kernels x loss)" 6
    (List.length pc_rows);
  List.iter
    (fun row ->
      let label = Printf.sprintf "%s pc-split" (List.nth row 0) in
      let replayed = int_of_string (List.nth row 4) in
      Alcotest.(check bool)
        (label ^ " crash replays the WAL")
        true (replayed > 0))
    pc_rows

let suite =
  [
    Alcotest.test_case "retx frozen while peer down" `Quick
      test_retx_frozen_while_down;
    Alcotest.test_case "durable exactly-once across crash" `Quick
      test_durable_exactly_once_across_crash;
    Alcotest.test_case "pc_of_members typed errors" `Quick
      test_pc_of_members_errors;
    Alcotest.test_case "park_no_members surfaces empty routes" `Quick
      test_park_no_members;
    Alcotest.test_case "crash config validation" `Quick
      test_crash_config_validation;
    Alcotest.test_case "fixed crash recovery" `Quick test_fixed_crash_recovery;
    Alcotest.test_case "fixed recovery under loss" `Quick
      test_fixed_crash_recovery_lossy;
    Alcotest.test_case "recovery with snapshot compaction" `Quick
      test_fixed_recovery_with_compaction;
    Alcotest.test_case "variable crash recovery + rejoin" `Quick
      test_variable_crash_recovery;
    Alcotest.test_case "recovery deterministic" `Quick
      test_recovery_deterministic;
    QCheck_alcotest.to_alcotest prop_recovery_digest;
    Alcotest.test_case "e18 gate: verified + lost-acked columns" `Quick
      test_e18_verified_columns;
  ]
