(* Regression pins: each test reproduces the exact configuration that once
   exposed a protocol bug during development, so the fix stays fixed.
   The bug descriptions double as documentation of the races the paper's
   prose glosses over. *)
open Dbtree_core
open Dbtree_sim

(* Bug 1: an eager-queued update applied after a split from the same queue
   had moved the node's range created a sibling with an inverted range.
   Fix: eager jobs re-validate range at apply time and re-route right. *)
let test_eager_requeue_after_split () =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:100_000 ~seed:7
      ~discipline:Config.Eager ~replication:Config.Path ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let rng = Rng.create 99 in
  let keys =
    Dbtree_workload.Workload.unique_keys rng ~key_space:cfg.Config.key_space
      ~count:400
  in
  Array.iteri
    (fun i k -> ignore (Fixed.insert t ~origin:(i mod 4) k "v"))
    keys;
  Cluster.run cl;
  Scenario.check_verified "eager requeue" (Verify.check cl)

(* Bug 2: a stale relayed Add_child arriving after the child migrated
   overwrote the fresher location hint at the very processor the leaf had
   left, creating a permanent self-pointing hint and a routing livelock.
   The exact shrunk qcheck input: procs=2, capacity=2, count=65, seed=504.
   Fix: hint learning is only-if-absent for stale-capable sources. *)
let test_variable_stale_hint_livelock () =
  let cfg =
    Config.make ~procs:2 ~capacity:2 ~key_space:50_000 ~seed:504
      ~balance_period:89 ()
  in
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  let _, report =
    Scenario.run_cluster ~api:(Variable.api t) ~cluster:cl ~cfg ~count:65
      ~searches:8 ()
  in
  Scenario.check_verified "stale hint livelock" report

(* Bug 3: a split racing an unjoin implicitly enrolled the departed
   processor in the new sibling's replication; the phantom member never
   installed a copy and its history stayed incomplete forever.
   Fix: the receiver declines the membership explicitly.
   Reproduction: high latency + aggressive balancing, seed 29. *)
let test_variable_split_unjoin_race () =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:60_000 ~seed:29
      ~balance_period:40
      ~latency:
        { Dbtree_sim.Net.local_delay = 1; remote_base = 60; remote_jitter = 30 }
      ()
  in
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  let _, report =
    Scenario.run_cluster ~api:(Variable.api t) ~cluster:cl ~cfg ~count:1_200
      ~searches:32 ()
  in
  Scenario.check_verified "split/unjoin race" report

(* Bug 4: the link-change fixing the right neighbor's left pointer after a
   split was routed with the separator as guide key, landing on the new
   sibling itself and self-linking it.  Fix: the guide key is the
   sibling's high bound. *)
let test_mobile_relink_guide_key () =
  let cfg = Config.make ~procs:4 ~capacity:4 ~key_space:100_000 ~seed:11 () in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  let rng = Rng.create 5 in
  let keys = Dbtree_workload.Workload.unique_keys rng ~key_space:20_000 ~count:100 in
  Array.iteri (fun i k -> ignore (Mobile.insert t ~origin:(i mod 4) k "v")) keys;
  (* the bug made this spin forever; a modest budget suffices now *)
  Mobile.run ~max_events:500_000 t;
  Scenario.check_verified "relink guide key" (Verify.check cl)

(* Bug 5: recovery restarted navigation at an arbitrary local leaf; under
   mass reclamation the stale sibling chain cycles and the restart never
   progresses.  Fix: restart root-ward, through repaired parent entries. *)
let test_mobile_reclamation_band () =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:50_000
      ~reclaim_empty_leaves:true ()
  in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  for i = 1 to 400 do
    ignore (Mobile.insert t ~origin:(i mod 4) (i * 100) (string_of_int i))
  done;
  Mobile.run t;
  for i = 100 to 300 do
    ignore (Mobile.remove t ~origin:(i mod 4) (i * 100))
  done;
  Mobile.run ~max_events:5_000_000 t;
  Scenario.check_verified "reclamation band" (Verify.check cl)

(* Bug 6: nested hash-directory pointer updates (successive splits along
   one lineage) do not commute; last-writer-wins diverged the directory
   copies.  Fix: per-slot specificity ordering. *)
let test_lht_nested_updates () =
  let open Dbtree_lht in
  let cfg = { Lht.default_config with procs = 4; bucket_capacity = 4; seed = 9 } in
  let t = Lht.create cfg in
  let rng = Rng.create 9 in
  for i = 1 to 2_000 do
    ignore (Lht.insert t ~origin:(i mod 4) (Rng.int rng 1_000_000) "v")
  done;
  Lht.run t;
  let r = Lht.verify t in
  if not (Lht.verified r) then
    Alcotest.failf "nested updates: %a" Lht.pp_report r;
  Alcotest.(check bool) "directory copies converged" false
    r.Lht.directory_divergent

(* Bug 7: a split completing while the New_root broadcast from an earlier
   root grow was still in flight routed its Add_child from a stale root
   pointer whose level was below the target, and the fixed kernel treated
   that as an invariant violation and died.  Fix: re-enter at the current
   root until the pending New_root lands (the variable kernel's route_up
   recovery).  Exact shrunk qcheck input: procs=6, capacity=4, count=112,
   seed=274, semi discipline. *)
let test_fixed_stale_root_route_up () =
  let cfg =
    Config.make ~procs:6 ~capacity:4 ~key_space:50_000 ~seed:274
      ~discipline:Config.Semi ~replication:Config.Path ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let _, report =
    Scenario.run_cluster ~api:(Driver.fixed_api t) ~cluster:cl ~cfg ~count:112
      ~searches:8 ()
  in
  Scenario.check_verified "stale root route_up" report

(* Determinism pin for the hot-path rewrite (monomorphic event queue,
   interned counters, cached batch sizes): the same seed must reproduce the
   exact same schedule, so every counter — message kinds, routing events,
   splits — is bit-identical across two runs.  Any perturbation of event
   order or accounting in the simulator core shows up here. *)
let run_fixed_counters seed =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:100_000 ~seed
      ~discipline:Config.Semi ~relay_batch:4 ~record_history:false ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  let _, report =
    Scenario.run_cluster ~api:(Driver.fixed_api t) ~cluster:cl ~cfg ~count:600
      ~searches:16 ()
  in
  Scenario.check_verified "determinism fixed" report;
  Stats.counters (Cluster.stats cl)

let run_variable_counters seed =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:60_000 ~seed
      ~balance_period:60 ~record_history:false ()
  in
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  let _, report =
    Scenario.run_cluster ~api:(Variable.api t) ~cluster:cl ~cfg ~count:600
      ~searches:16 ()
  in
  Scenario.check_verified "determinism variable" report;
  Stats.counters (Cluster.stats cl)

let test_determinism_fixed () =
  let a = run_fixed_counters 1234 and b = run_fixed_counters 1234 in
  Alcotest.(check (list (pair string int))) "fixed: identical counters" a b;
  Alcotest.(check bool) "fixed: counters nonempty" true (a <> [])

let test_determinism_variable () =
  let a = run_variable_counters 4321 and b = run_variable_counters 4321 in
  Alcotest.(check (list (pair string int))) "variable: identical counters" a b;
  Alcotest.(check bool) "variable: counters nonempty" true (a <> [])

let suite =
  [
    Alcotest.test_case "eager update requeued after split" `Quick
      test_eager_requeue_after_split;
    Alcotest.test_case "stale Add_child hint (livelock)" `Quick
      test_variable_stale_hint_livelock;
    Alcotest.test_case "split racing unjoin (phantom member)" `Slow
      test_variable_split_unjoin_race;
    Alcotest.test_case "relink guide key (self-link)" `Quick
      test_mobile_relink_guide_key;
    Alcotest.test_case "mass reclamation routing" `Quick
      test_mobile_reclamation_band;
    Alcotest.test_case "nested hash-directory updates" `Quick
      test_lht_nested_updates;
    Alcotest.test_case "stale root pointer (route below target)" `Quick
      test_fixed_stale_root_route_up;
    Alcotest.test_case "determinism: fixed-copies counters" `Quick
      test_determinism_fixed;
    Alcotest.test_case "determinism: variable-copies counters" `Quick
      test_determinism_variable;
  ]
