(* Shared end-to-end scenario helpers for the protocol test suites. *)
open Dbtree_core
open Dbtree_workload
open Dbtree_sim

let insert_streams ~rng_seed ~key_space ~count ~procs =
  let rng = Rng.create rng_seed in
  let keys = Workload.unique_keys rng ~key_space ~count in
  let streams =
    Array.map (fun ks -> Workload.inserts ~keys:ks)
      (Workload.chunk keys ~parts:procs)
  in
  (keys, streams)

let search_streams ~keys ~procs ~per_proc =
  Array.init procs (fun pid ->
      Workload.searches (Rng.create (1000 + pid)) ~keys ~count:per_proc)

(* Load [count] unique keys, then run searches from every processor, then
   audit.  Returns (cluster, keys, verify report). *)
let run_cluster ~api ~cluster ~(cfg : Config.t) ~count ?(searches = 32) () =
  let keys, streams =
    insert_streams ~rng_seed:(cfg.Config.seed + 1) ~key_space:cfg.Config.key_space
      ~count ~procs:cfg.Config.procs
  in
  Driver.run_closed cluster api ~streams ~window:4;
  Driver.run_closed cluster api
    ~streams:(search_streams ~keys ~procs:cfg.Config.procs ~per_proc:searches)
    ~window:4;
  let report = Verify.check cluster in
  (keys, report)

let check_verified ?(expect_ok = true) label report =
  if Verify.ok report <> expect_ok then
    Alcotest.failf "%s: expected verify=%b but got:@.%a" label expect_ok
      Verify.pp report

let check_no_leftover label (cluster : Cluster.t) =
  Array.iter
    (fun s ->
      Store.iter_pending s (fun id msgs ->
          Alcotest.failf "%s: %d message(s) parked forever at p%d for node %d"
            label (List.length msgs) s.Store.pid id))
    cluster.Cluster.stores

let all_search_results_correct (cluster : Cluster.t) keys =
  let expected = Opstate.inserted_keys cluster.Cluster.ops in
  Opstate.iter cluster.Cluster.ops (fun r ->
      match (r.Opstate.kind, r.Opstate.result) with
      | Opstate.Search, Some result -> (
        match (Hashtbl.find_opt expected r.Opstate.key, result) with
        | Some v, Msg.Found v' when v = v' -> ()
        | None, Msg.Absent -> ()
        | _, _ ->
          Alcotest.failf "search %d returned wrong result" r.Opstate.key)
      | Opstate.Search, None -> Alcotest.failf "search %d never completed" r.Opstate.key
      | (Opstate.Insert | Opstate.Delete | Opstate.Scan), _ -> ());
  ignore keys

(* Verify a completed scan operation against the expected contents. *)
let check_scan (cluster : Cluster.t) ~op ~lo ~hi =
  let expected = Opstate.inserted_keys cluster.Cluster.ops in
  let want =
    (* dblint: allow no-nondeterminism -- fold result is sorted below *)
    Hashtbl.fold
      (fun k v acc -> if k >= lo && k <= hi then (k, v) :: acc else acc)
      expected []
    |> List.sort compare
  in
  match (Option.get (Opstate.find cluster.Cluster.ops op)).Opstate.result with
  | Some (Msg.Bindings got) ->
    if got <> want then
      Alcotest.failf "scan [%d,%d]: got %d bindings, expected %d" lo hi
        (List.length got) (List.length want);
    (* result must be sorted *)
    if List.sort compare got <> got then
      Alcotest.failf "scan [%d,%d]: bindings out of order" lo hi
  | Some _ -> Alcotest.failf "scan [%d,%d]: wrong result constructor" lo hi
  | None -> Alcotest.failf "scan [%d,%d] never completed" lo hi
