(* dblint rule fixtures: each rule must fire on a minimal bad snippet and
   stay silent on a clean one, and the suppression comments must silence
   exactly the annotated line / file. *)

open Dbtree_lint

let rules_of (r : Lint.file_result) =
  List.map (fun (v : Rule.violation) -> v.Rule.rule) r.Lint.violations

(* Every fixture lints as if it lived at this path: inside [lib/], not a
   protocol module, not allowlisted.  The path is fictitious, which also
   means the mli-coverage rule fires (no sibling .mli on disk) — so tests
   for the other rules run with an explicit rule list. *)
let fixture_path = "lib/fixtures/snippet.ml"

let lint ?rules src = Lint.lint_source ?rules ~file:fixture_path src

let only name = [ Option.get (Lint.find_rule name) ]

(* ---------------------------------------------------------------- *)
(* no-nondeterminism *)

let test_nondet_fires () =
  let r =
    lint ~rules:(only "no-nondeterminism")
      "let x () = Random.int 10\nlet y tbl = Hashtbl.iter ignore tbl\n"
  in
  Alcotest.(check (list string))
    "both sites flagged"
    [ "no-nondeterminism"; "no-nondeterminism" ]
    (rules_of r)

let test_nondet_clean () =
  let r =
    lint ~rules:(only "no-nondeterminism")
      "let x rng = Rng.int rng 10\n\
       let y tbl = List.iter ignore (Stats.sorted_bindings tbl)\n"
  in
  Alcotest.(check (list string)) "clean snippet silent" [] (rules_of r)

let test_nondet_allowlisted_path () =
  (* rng.ml itself may use raw randomness. *)
  let r =
    Lint.lint_source
      ~rules:(only "no-nondeterminism")
      ~file:"lib/sim/rng.ml" "let x () = Random.int 10\n"
  in
  Alcotest.(check (list string)) "rng.ml exempt" [] (rules_of r)

(* ---------------------------------------------------------------- *)
(* exhaustive-dispatch *)

let dispatch_bad =
  "let handle msg =\n\
  \  match msg with\n\
  \  | Msg.Route _ -> ()\n\
  \  | _ -> failwith \"unexpected\"\n"

let test_dispatch_fires () =
  let r =
    Lint.lint_source
      ~rules:(only "exhaustive-dispatch")
      ~file:"lib/dbtree/variable.ml" dispatch_bad
  in
  Alcotest.(check (list string))
    "wildcard Msg arm flagged" [ "exhaustive-dispatch" ] (rules_of r)

let test_dispatch_non_protocol_silent () =
  (* Same snippet outside the protocol kernels is not subject to the rule. *)
  let r = lint ~rules:(only "exhaustive-dispatch") dispatch_bad in
  Alcotest.(check (list string)) "non-protocol file silent" [] (rules_of r)

let test_dispatch_explicit_clean () =
  let r =
    Lint.lint_source
      ~rules:(only "exhaustive-dispatch")
      ~file:"lib/dbtree/fixed.ml"
      "let handle msg =\n\
      \  match msg with\n\
      \  | Msg.Route _ -> ()\n\
      \  | Msg.Op_done _ -> ()\n"
  in
  Alcotest.(check (list string)) "explicit arms silent" [] (rules_of r)

(* ---------------------------------------------------------------- *)
(* interned-stats *)

let test_stats_fires () =
  let r =
    lint ~rules:(only "interned-stats")
      "let f stats name = Stats.counter stats (\"prefix.\" ^ name)\n"
  in
  Alcotest.(check (list string))
    "computed counter name flagged" [ "interned-stats" ] (rules_of r)

let test_stats_clean () =
  let r =
    lint ~rules:(only "interned-stats")
      "let f stats =\n\
      \  let c = Stats.counter stats in\n\
      \  let hits = Stats.counter stats \"cache.hits\" in\n\
      \  ignore (c \"late\"); hits\n"
  in
  Alcotest.(check (list string))
    "literal + intern-once idiom silent" [] (rules_of r)

(* ---------------------------------------------------------------- *)
(* guarded-trace *)

let test_trace_fires () =
  let r =
    lint ~rules:(only "guarded-trace")
      "let f obs time = Obs.emit_here obs ~time (Fmt.str \"op %d\" time)\n"
  in
  Alcotest.(check (list string))
    "eager Fmt.str in emit argument flagged" [ "guarded-trace" ] (rules_of r)

let test_trace_concat_fires () =
  let r =
    lint ~rules:(only "guarded-trace")
      "let f tr a b = Trace.emit tr (a ^ b)\n"
  in
  Alcotest.(check (list string))
    "string concatenation in emit argument flagged" [ "guarded-trace" ]
    (rules_of r)

let test_trace_clean () =
  let r =
    lint ~rules:(only "guarded-trace")
      "let f obs ~time ~pid ~op ~parent ~kind ~a ~b =\n\
      \  ignore (Obs.emit obs ~time ~pid ~op ~parent ~kind ~a ~b)\n\
       let g tr a b = Trace.emit tr (lazy (a ^ b))\n\
       let h s = Fmt.str \"not an emit call: %s\" s\n"
  in
  Alcotest.(check (list string))
    "int args, lazy-deferred, and non-emit sites silent" [] (rules_of r)

(* ---------------------------------------------------------------- *)
(* mli-coverage *)

let test_mli_fires () =
  (* No sibling .mli exists for the fictitious path. *)
  let r = lint ~rules:(only "mli-coverage") "let x = 1\n" in
  Alcotest.(check (list string))
    "lib module without interface flagged" [ "mli-coverage" ] (rules_of r)

let test_mli_clean_with_interface () =
  let dir = Filename.temp_file "dblint" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Unix.mkdir (Filename.concat dir "lib") 0o755;
  let ml = Filename.concat dir "lib/covered.ml" in
  let mli = Filename.concat dir "lib/covered.mli" in
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  write ml "let x = 1\n";
  write mli "val x : int\n";
  let r = Lint.lint_file ~rules:(only "mli-coverage") ml in
  Sys.remove ml;
  Sys.remove mli;
  Unix.rmdir (Filename.concat dir "lib");
  Unix.rmdir dir;
  Alcotest.(check (list string)) "interface present: silent" [] (rules_of r)

let test_mli_skips_bin () =
  let r =
    Lint.lint_source ~rules:(only "mli-coverage") ~file:"bin/tool.ml"
      "let x = 1\n"
  in
  Alcotest.(check (list string)) "bin/ exempt" [] (rules_of r)

(* ---------------------------------------------------------------- *)
(* suppression *)

let test_suppress_line () =
  let r =
    lint ~rules:(only "no-nondeterminism")
      "(* dblint: allow no-nondeterminism -- test fixture *)\n\
       let x () = Random.int 10\n\
       let y () = Random.int 10\n"
  in
  Alcotest.(check int) "one suppressed" 1 r.Lint.suppressed;
  Alcotest.(check (list string))
    "unannotated line still flagged" [ "no-nondeterminism" ] (rules_of r)

let test_suppress_file () =
  let r =
    lint ~rules:(only "no-nondeterminism")
      "(* dblint: allow-file no-nondeterminism *)\n\
       let x () = Random.int 10\n\
       let y () = Random.int 10\n"
  in
  Alcotest.(check int) "both suppressed" 2 r.Lint.suppressed;
  Alcotest.(check (list string)) "nothing reported" [] (rules_of r)

let test_suppress_wrong_rule () =
  let r =
    lint ~rules:(only "no-nondeterminism")
      "(* dblint: allow interned-stats *)\nlet x () = Random.int 10\n"
  in
  Alcotest.(check (list string))
    "allow for another rule does not apply" [ "no-nondeterminism" ]
    (rules_of r)

let test_suppress_file_and_line_mix () =
  (* A file-wide allow for one rule composes with a same-line allow for
     another: each suppresses only its own rule, and a third violation
     covered by neither still fires. *)
  let rules =
    [
      Option.get (Lint.find_rule "no-nondeterminism");
      Option.get (Lint.find_rule "interned-stats");
    ]
  in
  let r =
    lint ~rules
      "(* dblint: allow-file no-nondeterminism *)\n\
       let x () = Random.int 10\n\
       let c stats name = Stats.counter stats name (* dblint: allow \
       interned-stats *)\n\
       \n\
       let d stats name = Stats.counter stats name\n"
  in
  Alcotest.(check int) "two suppressed" 2 r.Lint.suppressed;
  Alcotest.(check (list string))
    "only the uncovered interning fires" [ "interned-stats" ] (rules_of r)

let test_suppress_final_line_no_newline () =
  (* A trailing allow on the file's last line, with no final newline,
     must still cover its own line. *)
  let r =
    lint ~rules:(only "no-nondeterminism")
      "let x () = Random.int 10 (* dblint: allow no-nondeterminism *)"
  in
  Alcotest.(check int) "suppressed" 1 r.Lint.suppressed;
  Alcotest.(check (list string)) "nothing reported" [] (rules_of r)

let test_unknown_rule_name_warns () =
  (* A typoed allow comment must warn instead of silently suppressing
     nothing: dblint reports it under the [unknown-rule] pseudo-rule.
     The marker is assembled so dblint's own scan of this test file
     does not read the fixture's comment. *)
  let r =
    lint ~rules:(only "no-nondeterminism")
      (Fmt.str "(* %s: allow no-such-rule *)\nlet x = 1\n" "dblint")
  in
  Alcotest.(check (list string)) "pseudo-rule" [ "unknown-rule" ] (rules_of r)

(* ---------------------------------------------------------------- *)
(* full-tree gate: the repo itself must lint clean *)

let test_repo_clean () =
  (* dune runs tests in a sandbox rooted at the build dir; only run the
     self-lint when the sources are visible from here. *)
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    let files = Lint.collect_files [ "lib"; "bin" ] in
    let dirty =
      List.concat_map (fun f -> (Lint.lint_file f).Lint.violations) files
    in
    Alcotest.(check (list string))
      "zero unsuppressed violations in lib/ and bin/" []
      (List.map
         (fun (v : Rule.violation) ->
           Fmt.str "%s:%d %s" v.Rule.file v.Rule.line v.Rule.rule)
         dirty)
  end

(* ---------------------------------------------------------------- *)
(* determinism: pinned experiment tables

   The sorted-iteration conversion must not move a single byte of the
   published tables.  Pin the quick-mode e01 and e13 renders by digest;
   regenerate with [dune exec bin/main.exe -- e1 e13 --quick] and update
   here only when the experiment itself changes deliberately. *)

let capture_render (run : ?quick:bool -> unit -> unit) =
  Dbtree_experiments.Table.set_capture true;
  run ~quick:true ();
  let tables = Dbtree_experiments.Table.captured () in
  Dbtree_experiments.Table.set_capture false;
  String.concat "\n" (List.map Dbtree_experiments.Table.render tables)

let test_e01_table_pinned () =
  let rendered = capture_render Dbtree_experiments.E01_half_split.run in
  Alcotest.(check string)
    "e01 quick table digest" "332cf8377a065d854709108b47721d6b"
    (Digest.to_hex (Digest.string rendered))

let test_e13_table_pinned () =
  let rendered = capture_render Dbtree_experiments.E13_hash_table.run in
  Alcotest.(check string)
    "e13 quick table digest" "cb7ae6aedf2b75141c1e751b6ef4b93f"
    (Digest.to_hex (Digest.string rendered))

let suite =
  [
    Alcotest.test_case "nondet: fires" `Quick test_nondet_fires;
    Alcotest.test_case "nondet: clean" `Quick test_nondet_clean;
    Alcotest.test_case "nondet: rng.ml exempt" `Quick
      test_nondet_allowlisted_path;
    Alcotest.test_case "dispatch: fires" `Quick test_dispatch_fires;
    Alcotest.test_case "dispatch: non-protocol silent" `Quick
      test_dispatch_non_protocol_silent;
    Alcotest.test_case "dispatch: explicit clean" `Quick
      test_dispatch_explicit_clean;
    Alcotest.test_case "stats: fires" `Quick test_stats_fires;
    Alcotest.test_case "stats: clean" `Quick test_stats_clean;
    Alcotest.test_case "trace: eager format fires" `Quick test_trace_fires;
    Alcotest.test_case "trace: concat fires" `Quick test_trace_concat_fires;
    Alcotest.test_case "trace: clean" `Quick test_trace_clean;
    Alcotest.test_case "mli: fires" `Quick test_mli_fires;
    Alcotest.test_case "mli: interface present" `Quick
      test_mli_clean_with_interface;
    Alcotest.test_case "mli: bin exempt" `Quick test_mli_skips_bin;
    Alcotest.test_case "suppress: line scope" `Quick test_suppress_line;
    Alcotest.test_case "suppress: file scope" `Quick test_suppress_file;
    Alcotest.test_case "suppress: wrong rule inert" `Quick
      test_suppress_wrong_rule;
    Alcotest.test_case "suppress: file+line mix" `Quick
      test_suppress_file_and_line_mix;
    Alcotest.test_case "suppress: final line" `Quick
      test_suppress_final_line_no_newline;
    Alcotest.test_case "suppress: unknown rule warns" `Quick
      test_unknown_rule_name_warns;
    Alcotest.test_case "repo lints clean" `Quick test_repo_clean;
    Alcotest.test_case "e01 table pinned" `Quick test_e01_table_pinned;
    Alcotest.test_case "e13 table pinned" `Quick test_e13_table_pinned;
  ]
