let () =
  Alcotest.run "dbtree"
    [
      ("sim", Test_sim.suite);
      ("blink", Test_blink.suite);
      ("history", Test_history.suite);
      ("workload", Test_workload.suite);
      ("fixed", Test_fixed.suite);
      ("mobile", Test_mobile.suite);
      ("variable", Test_variable.suite);
      ("lht", Test_lht.suite);
      ("verify", Test_verify.suite);
      ("reliable", Test_reliable.suite);
      ("kv", Test_kv.suite);
      ("misc", Test_misc.suite);
      ("regressions", Test_regressions.suite);
      ("recovery", Test_recovery.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("scale", Test_scale.suite);
      ("lint", Test_lint.suite);
      ("flow", Test_flow.suite);
      ("race", Test_race.suite);
      ("perf", Test_perf_lint.suite);
    ]
