(* dbrace rule fixtures: each domain-safety rule must fire on a minimal
   bad program and stay silent on its clean counterpart, the annotation
   grammar must demand justifications, suppression must work under the
   dbrace marker, and the repo itself must analyze clean.  The heart of
   the suite is the pinned pre-fix [Obs] fixture: the real
   force_on/registry race this PR fixed, proving par-shared-state
   catches it.

   All dbrace markers in fixtures are assembled with [Fmt.str] so this
   file's own source never carries one (dbrace and Suppress both scan
   textually). *)

open Dbtree_flow
open Dbtree_lint

let kern src = Program.of_sources [ ("lib/fix/kern.ml", src) ]
let only name = [ Option.get (Race.find_rule name) ]

let rules_of (r : Race.report) =
  List.map (fun (v : Rule.violation) -> v.Rule.rule) r.Race.violations

let messages_of (r : Race.report) =
  List.map (fun (v : Rule.violation) -> v.Rule.message) r.Race.violations

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_fires ?(count = 1) name ~sub prog =
  let r = Race.analyze ~rules:(only name) prog in
  Alcotest.(check (list string))
    (name ^ " fires")
    (List.init count (fun _ -> name))
    (rules_of r);
  let msg = List.hd (messages_of r) in
  Alcotest.(check bool)
    (Fmt.str "message mentions %S" sub)
    true (contains msg sub)

let check_clean name prog =
  let r = Race.analyze ~rules:(only name) prog in
  Alcotest.(check (list string)) (name ^ " silent") [] (rules_of r)

(* Assembled annotation: [(* dbrace: <kw> -- <why> *)]. *)
let ann kw why = Fmt.str "(* %s %s -- %s *)" "dbrace:" kw why
let ann_bare kw = Fmt.str "(* %s %s *)" "dbrace:" kw

(* ---------------------------------------------------------------- *)
(* par-shared-state *)

let test_shared_par_map_fires () =
  check_fires "par-shared-state" ~sub:"Kern.hits"
    (kern
       "let hits = ref 0\n\
        let cell x = !hits + x\n\
        let grid xs = Par.map cell xs\n")

let test_shared_annotated_clean () =
  check_clean "par-shared-state"
    (kern
       (Fmt.str
          "%s\n\
           let hits = ref 0\n\
           let cell x = !hits + x\n\
           let grid xs = Par.map cell xs\n"
          (ann "domain-local" "fixture: pretend it is confined")))

let test_shared_unjustified_fires () =
  (* The annotation still silences the access, but its missing [-- why]
     is itself one violation at the binding. *)
  check_fires "par-shared-state" ~sub:"no justification"
    (kern
       (Fmt.str
          "%s\n\
           let hits = ref 0\n\
           let cell x = !hits + x\n\
           let grid xs = Par.map cell xs\n"
          (ann_bare "guarded")))

let test_shared_orphan_annotation_fires () =
  check_fires "par-shared-state" ~sub:"not attached"
    (kern (Fmt.str "%s\nlet x = 1\n" (ann "domain-local" "binds to nothing")))

let test_shared_not_par_reachable_clean () =
  (* Same read, but nothing roots a domain worker: single-domain code may
     use globals freely. *)
  check_clean "par-shared-state"
    (kern "let hits = ref 0\nlet cell x = !hits + x\n")

let test_shared_inline_closure_roots_caller () =
  (* A literal [fun] handed to Sim.register_handler makes the enclosing
     function the par root (conservative: the closure body is walked as
     part of it). *)
  check_fires "par-shared-state" ~sub:"Kern.seen"
    (kern
       "let seen = ref 0\n\
        let setup sim = Sim.register_handler sim (fun x -> !seen + x)\n")

let test_shared_named_handler_roots_it () =
  check_fires "par-shared-state" ~sub:"Kern.seen"
    (kern
       "let seen = ref 0\n\
        let on_msg x = !seen + x\n\
        let setup sim = Sim.register_handler sim on_msg\n")

(* ---------------------------------------------------------------- *)
(* init-once *)

let test_init_once_assign_fires () =
  check_fires "init-once" ~sub:"Kern.hits"
    (kern
       "let hits = ref 0\n\
        let cell x = hits := x\n\
        let grid xs = Par.run_cells cell xs 4 2\n")

let test_init_once_hashtbl_add_fires () =
  (* A mutating stdlib call on the global counts as a write. *)
  check_fires "init-once" ~sub:"Kern.tbl"
    (kern
       "let tbl = Hashtbl.create 7\n\
        let cell x = Hashtbl.add tbl x x\n\
        let grid xs = Par.map cell xs\n")

let test_init_once_module_init_clean () =
  (* Mutation at module-initialization time (not par-reachable) is the
     whole point of the rule's name. *)
  check_clean "init-once"
    (kern
       "let tbl = Hashtbl.create 7\n\
        let () = Hashtbl.add tbl 0 0\n\
        let cell x = Hashtbl.find tbl x\n")

let test_init_once_atomic_clean () =
  check_clean "init-once"
    (kern
       "let hits = Atomic.make 0\n\
        let cell x = Atomic.fetch_and_add hits x\n\
        let grid xs = Par.map cell xs\n")

(* ---------------------------------------------------------------- *)
(* atomic-discipline *)

let test_atomic_split_rmw_fires () =
  check_fires "atomic-discipline" ~sub:"read-modify-write"
    (kern
       "let ctr = Atomic.make 0\n\
        let bump () = Atomic.set ctr (Atomic.get ctr + 1)\n")

let test_atomic_escape_fires () =
  (* Passing the cell around defeats the per-site analysis, so it is the
     violation. *)
  check_fires "atomic-discipline" ~sub:"escapes"
    (kern "let ctr = Atomic.make 0\nlet leak f = f ctr\n")

let test_atomic_exchange_clean () =
  check_clean "atomic-discipline"
    (kern
       "let once = Atomic.make false\n\
        let first () = not (Atomic.exchange once true)\n\
        let read () = Atomic.get once\n\
        let arm () = Atomic.set once false\n")

(* ---------------------------------------------------------------- *)
(* suppression and unknown rules under the dbrace marker *)

let test_suppress_dbrace_line () =
  let r =
    Race.analyze ~rules:(only "par-shared-state")
      (kern
         (Fmt.str
            "let hits = ref 0\n\
             %s\n\
             let cell x = !hits + x\n\
             let grid xs = Par.map cell xs\n"
            (Fmt.str "(* %s allow par-shared-state -- fixture *)" "dbrace:")))
  in
  Alcotest.(check (list string)) "suppressed" [] (rules_of r);
  Alcotest.(check int) "counted" 1 r.Race.suppressed

let test_suppress_dbrace_file_and_line_mix () =
  (* allow-file silences one rule everywhere; the line allow silences the
     other only at its site — a second unsuppressed site must survive. *)
  let r =
    Race.analyze
      (kern
         (Fmt.str
            "%s\n\
             let hits = ref 0\n\
             let misses = ref 0\n\
             %s\n\
             let cell x = hits := !hits + x; !misses + x\n\
             let far y = !misses + y\n\
             let grid xs = Par.map cell xs\n\
             let grid2 xs = Par.map far xs\n"
            (Fmt.str "(* %s allow-file init-once *)" "dbrace:")
            (Fmt.str "(* %s allow par-shared-state -- this line only *)"
               "dbrace:")))
  in
  List.iter
    (fun (v : Rule.violation) ->
      Alcotest.(check string) "only the uncovered site" "par-shared-state"
        v.Rule.rule;
      Alcotest.(check int) "at the far read" 6 v.Rule.line)
    r.Race.violations;
  Alcotest.(check bool) "something survived" true (r.Race.violations <> []);
  Alcotest.(check bool) "something suppressed" true (r.Race.suppressed > 0)

let test_dbflow_marker_inert_for_dbrace () =
  let r =
    Race.analyze ~rules:(only "par-shared-state")
      (kern
         (Fmt.str
            "let hits = ref 0\n\
             %s\n\
             let cell x = !hits + x\n\
             let grid xs = Par.map cell xs\n"
            (Fmt.str "(* %s allow par-shared-state *)" "dbflow:")))
  in
  Alcotest.(check (list string))
    "still fires" [ "par-shared-state" ] (rules_of r)

let test_unknown_rule_warns () =
  let r =
    Race.analyze
      (kern
         (Fmt.str "%s\nlet x = 1\n"
            (Fmt.str "(* %s allow no-such-rule *)" "dbrace:")))
  in
  Alcotest.(check (list string)) "pseudo-rule" [ "unknown-rule" ] (rules_of r)

(* ---------------------------------------------------------------- *)
(* the pinned pre-fix Obs race: what this PR actually fixed *)

(* Trimmed from lib/obs/obs.ml as it stood before the fix: plain refs
   for the force switch and registry, double-read of the flag in
   [create].  The cell unit reaches [create] through Par.map exactly the
   way E17's cells reach it through Cluster.create. *)
let pre_fix_obs =
  "let force_on = ref false\n\
   let force_capacity = ref 65536\n\
   let registry = ref []\n\
   let force_enable () = force_on := true\n\
   let create ~capacity ~label =\n\
  \  let enabled = !force_on in\n\
  \  let capacity = if !force_on then max capacity !force_capacity else capacity in\n\
  \  let t = (enabled, capacity, label) in\n\
  \  if !force_on then registry := t :: !registry;\n\
  \  t\n"

let pre_fix_cell =
  "let run_cell i = Obs.create ~capacity:1024 ~label:i\n\
   let metrics cells = Par.map run_cell cells\n"

let test_pre_fix_obs_race_caught () =
  let prog =
    Program.of_sources
      [ ("lib/fix/obs.ml", pre_fix_obs); ("lib/fix/cell.ml", pre_fix_cell) ]
  in
  let r = Race.analyze ~rules:(only "par-shared-state") prog in
  let on_force_on =
    List.filter (fun m -> contains m "Obs.force_on") (messages_of r)
  in
  Alcotest.(check bool)
    "par-shared-state catches the force_on reads" true (on_force_on <> []);
  Alcotest.(check bool)
    "and the registry read" true
    (List.exists (fun m -> contains m "Obs.registry") (messages_of r));
  let ri = Race.analyze ~rules:(only "init-once") prog in
  Alcotest.(check bool)
    "init-once catches the registry push" true
    (List.exists (fun m -> contains m "Obs.registry") (messages_of ri))

(* ---------------------------------------------------------------- *)
(* the inventory pass *)

let test_inventory () =
  let prog =
    kern
      "let a = ref 0\n\
       let b = Hashtbl.create 7\n\
       let c = Atomic.make 0\n\
       let d = Bytes.create 8\n\
       let mu = Mutex.create ()\n\
       let e = 1\n"
  in
  let g = Graph.build prog in
  let inv = Race.inventory prog g in
  Alcotest.(check (list (pair string string)))
    "kinds"
    [
      ("Kern.a", "ref");
      ("Kern.b", "hashtbl");
      ("Kern.c", "atomic");
      ("Kern.d", "bytes");
      ("Kern.mu", "mutex");
    ]
    (List.map (fun gl -> (gl.Race.g_id, Race.kind_name gl.Race.g_kind)) inv)

let test_registry () =
  Alcotest.(check (list string))
    "dbrace registry"
    [ "par-shared-state"; "atomic-discipline"; "init-once" ]
    Race.rule_names;
  List.iter
    (fun (ru : Race.rule) ->
      Alcotest.(check bool)
        (ru.Race.name ^ " documented")
        true
        (String.length ru.Race.doc > 0))
    Race.all_rules

(* ---------------------------------------------------------------- *)
(* full-tree gate: the repo itself must analyze clean *)

let test_repo_clean () =
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    let prog, errs = Program.load [ "lib"; "bin" ] in
    Alcotest.(check (list string))
      "no parse errors" []
      (List.map fst errs);
    let r = Race.analyze prog in
    Alcotest.(check (list string))
      "zero unsuppressed dbrace violations in lib/ and bin/" []
      (List.map
         (fun (v : Rule.violation) ->
           Fmt.str "%s:%d %s" v.Rule.file v.Rule.line v.Rule.rule)
         r.Race.violations)
  end

let suite =
  [
    Alcotest.test_case "shared: Par.map worker read fires" `Quick
      test_shared_par_map_fires;
    Alcotest.test_case "shared: justified annotation clean" `Quick
      test_shared_annotated_clean;
    Alcotest.test_case "shared: unjustified annotation fires" `Quick
      test_shared_unjustified_fires;
    Alcotest.test_case "shared: orphan annotation fires" `Quick
      test_shared_orphan_annotation_fires;
    Alcotest.test_case "shared: not par-reachable clean" `Quick
      test_shared_not_par_reachable_clean;
    Alcotest.test_case "shared: inline closure roots caller" `Quick
      test_shared_inline_closure_roots_caller;
    Alcotest.test_case "shared: named handler rooted" `Quick
      test_shared_named_handler_roots_it;
    Alcotest.test_case "init-once: assign fires" `Quick
      test_init_once_assign_fires;
    Alcotest.test_case "init-once: Hashtbl.add fires" `Quick
      test_init_once_hashtbl_add_fires;
    Alcotest.test_case "init-once: module init clean" `Quick
      test_init_once_module_init_clean;
    Alcotest.test_case "init-once: Atomic clean" `Quick
      test_init_once_atomic_clean;
    Alcotest.test_case "atomic: split RMW fires" `Quick
      test_atomic_split_rmw_fires;
    Alcotest.test_case "atomic: escape fires" `Quick test_atomic_escape_fires;
    Alcotest.test_case "atomic: exchange clean" `Quick
      test_atomic_exchange_clean;
    Alcotest.test_case "suppress: dbrace line marker" `Quick
      test_suppress_dbrace_line;
    Alcotest.test_case "suppress: file+line mix" `Quick
      test_suppress_dbrace_file_and_line_mix;
    Alcotest.test_case "suppress: dbflow marker inert" `Quick
      test_dbflow_marker_inert_for_dbrace;
    Alcotest.test_case "suppress: unknown rule warns" `Quick
      test_unknown_rule_warns;
    Alcotest.test_case "pre-fix Obs race caught" `Quick
      test_pre_fix_obs_race_caught;
    Alcotest.test_case "inventory kinds" `Quick test_inventory;
    Alcotest.test_case "registry complete" `Quick test_registry;
    Alcotest.test_case "repo races clean" `Quick test_repo_clean;
  ]
