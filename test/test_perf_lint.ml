(* dbperf rule fixtures: each hot-path cost rule must fire on a minimal
   bad program and stay silent on its clean counterpart, the annotation
   grammar must demand justifications, suppression must work under the
   dbperf marker, and the repo itself must analyze clean.  The heart of
   the suite is the set of pinned pre-fix fixtures — the real hot-path
   allocations this PR fixed (the Logbucket.msb closure, the
   Telemetry.touch doubling closure, the shadow-resolved Stats.tick) —
   plus the cross-check that the functions the dynamic [Gc.minor_words]
   proofs cover are members of dbperf's statically hot-clean set.

   All dbperf markers in fixtures are assembled with [Fmt.str] so this
   file's own source never carries one (dbperf and Suppress both scan
   textually). *)

open Dbtree_flow
open Dbtree_lint

let kern src = Program.of_sources [ ("lib/fix/kern.ml", src) ]
let only name = [ Option.get (Perf.find_rule name) ]

let rules_of (r : Perf.report) =
  List.map (fun (v : Rule.violation) -> v.Rule.rule) r.Perf.violations

let messages_of (r : Perf.report) =
  List.map (fun (v : Rule.violation) -> v.Rule.message) r.Perf.violations

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_fires ?(count = 1) name ~sub prog =
  let r = Perf.analyze ~rules:(only name) prog in
  Alcotest.(check (list string))
    (name ^ " fires")
    (List.init count (fun _ -> name))
    (rules_of r);
  let msg = List.hd (messages_of r) in
  Alcotest.(check bool)
    (Fmt.str "message mentions %S" sub)
    true (contains msg sub)

let check_clean name prog =
  let r = Perf.analyze ~rules:(only name) prog in
  Alcotest.(check (list string)) (name ^ " silent") [] (rules_of r)

(* Assembled annotation: [(* dbperf: <kw> -- <why> *)]. *)
let ann kw why = Fmt.str "(* %s %s -- %s *)" "dbperf:" kw why
let ann_bare kw = Fmt.str "(* %s %s *)" "dbperf:" kw

(* A handler registration that makes [on_msg] hot. *)
let rooted body = body ^ "let setup sim = Sim.register_handler sim on_msg\n"

(* ---------------------------------------------------------------- *)
(* hot-alloc: firing shapes *)

let test_alloc_named_handler_fires () =
  check_fires "hot-alloc" ~sub:"Kern.on_msg"
    (kern (rooted "let on_msg x = Some x\n"))

let test_alloc_inline_closure_cut () =
  (* A literal [fun] handed to Sim.register_handler becomes its own
     hot pseudo-node; the allocation inside it is charged there. *)
  check_fires "hot-alloc" ~sub:"Kern.setup#h"
    (kern "let setup sim = Sim.register_handler sim (fun x -> (x, x))\n")

let test_alloc_local_binding_cut () =
  check_fires "hot-alloc" ~sub:"Kern.setup#cb"
    (kern
       "let setup sim =\n\
       \  let cb x = Some x in\n\
       \  Sim.register_handler sim cb\n")

let test_alloc_probe_callback_rooted () =
  (* The last unlabelled argument of Sim.set_probe is the scrape
     callback. *)
  check_fires "hot-alloc" ~sub:"list cons"
    (kern
       "let on_tick () = [ 1 ]\n\
        let setup sim = Sim.set_probe sim ~at:9 on_tick\n")

let test_alloc_transitive_callee_fires () =
  (* The violation lands in the callee the hot closure reaches, not the
     handler itself. *)
  check_fires "hot-alloc" ~sub:"Kern.build"
    (kern (rooted "let build x = Some x\nlet on_msg x = build x\n"))

let test_alloc_partial_application_fires () =
  check_fires "hot-alloc" ~sub:"partial application of Kern.add3"
    (kern (rooted "let add3 a b c = a + b + c\nlet on_msg x = add3 x 1\n"))

let test_alloc_nested_fun_counts_once () =
  (* [fun a -> fun b -> ...] is one closure, not one per parameter. *)
  check_fires ~count:1 "hot-alloc" ~sub:"closure"
    (kern (rooted "let on_msg x = (fun a b -> a + b) x x\n"))

(* ---------------------------------------------------------------- *)
(* hot-alloc: shapes that must stay silent *)

let test_alloc_cold_function_clean () =
  (* Allocating freely off the hot path is the whole point of the
     lazy/eager split. *)
  check_clean "hot-alloc" (kern "let build x = Some x\n")

let test_alloc_safe_local_ref_clean () =
  (* A non-escaping [let i = ref _] compiles to a mutable variable
     (Simplif.eliminate_ref): no heap allocation to report. *)
  check_clean "hot-alloc"
    (kern
       (rooted
          "let on_msg x =\n\
          \  let i = ref 0 in\n\
          \  while !i < x do\n\
          \    i := !i + 1\n\
          \  done;\n\
          \  !i\n"))

let test_alloc_escaping_ref_fires () =
  check_fires "hot-alloc" ~sub:"ref cell"
    (kern (rooted "let on_msg x = let i = ref x in i\n"))

let test_alloc_init_once_binding_clean () =
  (* An arity-0 binding runs once at module init; reading it from a hot
     function does not make its construction a per-event cost. *)
  check_clean "hot-alloc"
    (kern
       (rooted
          "let table = Hashtbl.create 7\n\
           let on_msg x = Hashtbl.find table x\n"))

let test_alloc_annotated_clean () =
  let src =
    Fmt.str
      "let on_msg x =\n\
      \  %s\n\
      \  Some x\n\
       let setup sim = Sim.register_handler sim on_msg\n"
      (ann "alloc-ok" "fixture: pretend it is amortized")
  in
  check_clean "hot-alloc" (kern src);
  (* ... and the annotation is attached, so stray-annot stays silent
     too. *)
  check_clean "stray-annot" (kern src)

let test_alloc_unjustified_annotation_fires () =
  check_fires "hot-alloc" ~sub:"no justification"
    (kern
       (Fmt.str
          "let on_msg x =\n\
          \  %s\n\
          \  Some x\n\
           let setup sim = Sim.register_handler sim on_msg\n"
          (ann_bare "alloc-ok")))

(* ---------------------------------------------------------------- *)
(* poly-compare *)

let test_poly_compare_fires () =
  check_fires "poly-compare" ~sub:"polymorphic compare"
    (kern (rooted "let on_msg a = compare a 0\n"))

let test_poly_boxed_equality_fires () =
  check_fires "poly-compare" ~sub:"boxed-looking"
    (kern (rooted "let on_msg x = x = None\n"))

let test_poly_bare_idents_clean () =
  (* [pid = pc]-style integer compares must never fire: bare idents are
     unknowable without typing and assumed immediate. *)
  check_clean "poly-compare" (kern (rooted "let on_msg a b = a = b\n"))

let test_poly_cold_function_clean () =
  check_clean "poly-compare" (kern "let order a = compare a 0\n")

(* ---------------------------------------------------------------- *)
(* the hot annotation as a root *)

let test_hot_annotation_roots_binding () =
  (* No registration in sight: the annotation alone pulls [pump] (and
     its callees) into the hot set. *)
  check_fires "hot-alloc" ~sub:"Kern.pump"
    (kern
       (Fmt.str "%s\nlet pump x = Some x\n"
          (ann "hot" "fixture: driven through a function pointer")))

let test_hot_annotation_unjustified_fires () =
  check_fires "stray-annot" ~sub:"no justification"
    (kern (Fmt.str "%s\nlet pump x = x\n" (ann_bare "hot")))

let test_hot_annotation_orphan_fires () =
  check_fires "stray-annot" ~sub:"not attached"
    (kern (Fmt.str "%s\n\nlet pump x = x\n" (ann "hot" "binds to nothing")))

let test_alloc_ok_gone_cold_fires () =
  (* The site it excuses is not in the hot set: report the stale
     annotation instead of keeping it silently. *)
  check_fires "stray-annot" ~sub:"gone cold"
    (kern (Fmt.str "%s\nlet build x = Some x\n" (ann "alloc-ok" "stale")))

(* ---------------------------------------------------------------- *)
(* suppression and unknown rules under the dbperf marker *)

let test_suppress_dbperf_line () =
  let r =
    Perf.analyze ~rules:(only "hot-alloc")
      (kern
         (Fmt.str
            "let on_msg x =\n\
            \  %s\n\
            \  Some x\n\
             let setup sim = Sim.register_handler sim on_msg\n"
            (Fmt.str "(* %s allow hot-alloc -- fixture *)" "dbperf:")))
  in
  Alcotest.(check (list string)) "suppressed" [] (rules_of r);
  Alcotest.(check int) "counted" 1 r.Perf.suppressed

let test_dbrace_marker_inert_for_dbperf () =
  check_fires "hot-alloc" ~sub:"Kern.on_msg"
    (kern
       (Fmt.str
          "let on_msg x =\n\
          \  %s\n\
          \  Some x\n\
           let setup sim = Sim.register_handler sim on_msg\n"
          (Fmt.str "(* %s allow hot-alloc *)" "dbrace:")))

let test_unknown_rule_warns () =
  let r =
    Perf.analyze
      (kern
         (Fmt.str "%s\nlet x = 1\n"
            (Fmt.str "(* %s allow no-such-rule *)" "dbperf:")))
  in
  Alcotest.(check (list string)) "pseudo-rule" [ "unknown-rule" ] (rules_of r)

(* ---------------------------------------------------------------- *)
(* the annotation scanner *)

let test_scan_annots () =
  let src =
    Fmt.str "let a = 1\n%s\nlet b = 2\n%s\n"
      (ann "alloc-ok" "because reasons")
      (ann_bare "hot")
  in
  Alcotest.(check (list (triple int string string)))
    "scan"
    [ (2, "alloc-ok", "because reasons"); (4, "hot", "") ]
    (List.map
       (fun (a : Perf.annot) -> (a.Perf.an_line, a.Perf.an_keyword, a.Perf.an_why))
       (Perf.scan_annots src))

(* ---------------------------------------------------------------- *)
(* pinned pre-fix fixtures: the real hot-path findings this PR fixed *)

(* Trimmed from lib/obs/logbucket.ml as it stood before the fix: the
   msb loop was a local [let rec], one closure per histogram
   observation.  [Stats.hist_observe] is a built-in root, so the
   fixture reaches it exactly the way the real sketch path does. *)
let test_pre_fix_logbucket_msb_caught () =
  let prog =
    Program.of_sources
      [
        ( "lib/obs/logbucket.ml",
          "let msb v =\n\
          \  let rec go v m = if v <= 1 then m else go (v lsr 1) (m + 1) in\n\
          \  go v 0\n\
           let index v = if v < 16 then v else msb v\n" );
        ("lib/sim/stats.ml", "let hist_observe h v = ignore h; Logbucket.index v\n");
      ]
  in
  let r = Perf.analyze ~rules:(only "hot-alloc") prog in
  Alcotest.(check bool)
    "the msb closure is caught" true
    (List.exists
       (fun m -> contains m "Logbucket.msb" && contains m "closure")
       (messages_of r))

let test_post_fix_logbucket_msb_clean () =
  check_clean "hot-alloc"
    (Program.of_sources
       [
         ( "lib/obs/logbucket.ml",
           "let rec msb_loop v m = if v <= 1 then m else msb_loop (v lsr 1) (m + 1)\n\
            let msb v = msb_loop v 0\n\
            let index v = if v < 16 then v else msb v\n" );
         ("lib/sim/stats.ml", "let hist_observe h v = ignore h; Logbucket.index v\n");
       ])

(* Trimmed from lib/dbtree/telemetry.ml before the fix: the arena
   doubling built its capacity with a local [let rec go] closure and an
   unannotated Array.make, both inside the built-in root
   [Telemetry.touch]. *)
let test_pre_fix_telemetry_touch_caught () =
  let r =
    Perf.analyze ~rules:(only "hot-alloc")
      (Program.of_sources
         [
           ( "lib/dbtree/telemetry.ml",
             "let touch t ~node =\n\
             \  let cap =\n\
             \    let rec go c = if node < c then c else go (2 * c) in\n\
             \    go 2\n\
             \  in\n\
             \  ignore (Array.make cap 0);\n\
             \  ignore t\n" );
         ])
  in
  Alcotest.(check (list string))
    "closure and arena growth both caught"
    [ "hot-alloc"; "hot-alloc" ] (rules_of r);
  Alcotest.(check bool)
    "one is the doubling closure" true
    (List.exists (fun m -> contains m "closure") (messages_of r));
  Alcotest.(check bool)
    "one is the Array build" true
    (List.exists (fun m -> contains m "Array build") (messages_of r))

(* lib/sim/stats.ml before the fix: [let tick c = incr c] where a bare
   [incr] resolves against the 2-argument [Stats.incr] defined below —
   flagged as a closure-allocating partial application.  The fix spells
   out [Stdlib.incr], which is never a repo binding. *)
let pre_fix_stats_tail =
  "let add c by = ignore c; ignore by\n\
   let incr ?(by = 1) t name = ignore by; ignore t; ignore name\n"

let test_pre_fix_stats_tick_caught () =
  check_fires "hot-alloc" ~sub:"partial application of Stats.incr"
    (Program.of_sources
       [ ("lib/sim/stats.ml", "let tick c = incr c\n" ^ pre_fix_stats_tail) ])

let test_post_fix_stats_tick_clean () =
  check_clean "hot-alloc"
    (Program.of_sources
       [
         ( "lib/sim/stats.ml",
           "let tick c = Stdlib.incr c\n" ^ pre_fix_stats_tail );
       ])

(* ---------------------------------------------------------------- *)
(* registry *)

let test_registry () =
  Alcotest.(check (list string))
    "dbperf registry"
    [ "hot-alloc"; "poly-compare"; "stray-annot" ]
    Perf.rule_names;
  List.iter
    (fun (ru : Perf.rule) ->
      Alcotest.(check bool)
        (ru.Perf.name ^ " documented")
        true
        (String.length ru.Perf.doc > 0))
    Perf.all_rules

(* ---------------------------------------------------------------- *)
(* full-tree gates: the repo itself must analyze clean, and the
   functions the dynamic Gc.minor_words proofs cover must be members of
   the statically hot-clean set (so the static gate really does stand
   behind the dynamic claim). *)

let gc_proven =
  [
    "Telemetry.touch";
    "Telemetry.observe_latency";
    "Telemetry.aas_begin";
    "Telemetry.aas_end";
    "Telemetry.scrape";
    "Series.scrape";
  ]

let test_repo_clean () =
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    let prog, errs = Program.load [ "lib"; "bin" ] in
    Alcotest.(check (list string)) "no parse errors" [] (List.map fst errs);
    let r = Perf.analyze prog in
    Alcotest.(check (list string))
      "zero unsuppressed dbperf violations in lib/ and bin/" []
      (List.map
         (fun (v : Rule.violation) ->
           Fmt.str "%s:%d %s" v.Rule.file v.Rule.line v.Rule.rule)
         r.Perf.violations)
  end

let test_gc_proven_statically_hot () =
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    let prog, _ = Program.load [ "lib"; "bin" ] in
    let ctx = Perf.make_ctx prog in
    let hot_ids = List.map (fun (n : Graph.node) -> n.Graph.id) ctx.Perf.hot in
    List.iter
      (fun id ->
        Alcotest.(check bool)
          (id ^ " is in the hot set")
          true (List.mem id hot_ids))
      gc_proven;
    (* The built-in roots double as the proof subjects: each proven hook
       is a root, not just a transitively reached node. *)
    List.iter
      (fun id ->
        Alcotest.(check bool)
          (id ^ " is a hot root")
          true (List.mem id ctx.Perf.roots))
      gc_proven
  end

let suite =
  [
    Alcotest.test_case "alloc: named handler fires" `Quick
      test_alloc_named_handler_fires;
    Alcotest.test_case "alloc: inline closure cut" `Quick
      test_alloc_inline_closure_cut;
    Alcotest.test_case "alloc: local binding cut" `Quick
      test_alloc_local_binding_cut;
    Alcotest.test_case "alloc: probe callback rooted" `Quick
      test_alloc_probe_callback_rooted;
    Alcotest.test_case "alloc: transitive callee fires" `Quick
      test_alloc_transitive_callee_fires;
    Alcotest.test_case "alloc: partial application fires" `Quick
      test_alloc_partial_application_fires;
    Alcotest.test_case "alloc: nested fun counts once" `Quick
      test_alloc_nested_fun_counts_once;
    Alcotest.test_case "alloc: cold function clean" `Quick
      test_alloc_cold_function_clean;
    Alcotest.test_case "alloc: safe local ref clean" `Quick
      test_alloc_safe_local_ref_clean;
    Alcotest.test_case "alloc: escaping ref fires" `Quick
      test_alloc_escaping_ref_fires;
    Alcotest.test_case "alloc: init-once binding clean" `Quick
      test_alloc_init_once_binding_clean;
    Alcotest.test_case "alloc: justified annotation clean" `Quick
      test_alloc_annotated_clean;
    Alcotest.test_case "alloc: unjustified annotation fires" `Quick
      test_alloc_unjustified_annotation_fires;
    Alcotest.test_case "poly: compare fires" `Quick test_poly_compare_fires;
    Alcotest.test_case "poly: boxed equality fires" `Quick
      test_poly_boxed_equality_fires;
    Alcotest.test_case "poly: bare idents clean" `Quick
      test_poly_bare_idents_clean;
    Alcotest.test_case "poly: cold function clean" `Quick
      test_poly_cold_function_clean;
    Alcotest.test_case "hot annotation roots binding" `Quick
      test_hot_annotation_roots_binding;
    Alcotest.test_case "hot annotation unjustified fires" `Quick
      test_hot_annotation_unjustified_fires;
    Alcotest.test_case "hot annotation orphan fires" `Quick
      test_hot_annotation_orphan_fires;
    Alcotest.test_case "alloc-ok gone cold fires" `Quick
      test_alloc_ok_gone_cold_fires;
    Alcotest.test_case "suppress: dbperf line marker" `Quick
      test_suppress_dbperf_line;
    Alcotest.test_case "suppress: dbrace marker inert" `Quick
      test_dbrace_marker_inert_for_dbperf;
    Alcotest.test_case "suppress: unknown rule warns" `Quick
      test_unknown_rule_warns;
    Alcotest.test_case "annotation scanner" `Quick test_scan_annots;
    Alcotest.test_case "pre-fix Logbucket.msb caught" `Quick
      test_pre_fix_logbucket_msb_caught;
    Alcotest.test_case "post-fix Logbucket.msb clean" `Quick
      test_post_fix_logbucket_msb_clean;
    Alcotest.test_case "pre-fix Telemetry.touch caught" `Quick
      test_pre_fix_telemetry_touch_caught;
    Alcotest.test_case "pre-fix Stats.tick caught" `Quick
      test_pre_fix_stats_tick_caught;
    Alcotest.test_case "post-fix Stats.tick clean" `Quick
      test_post_fix_stats_tick_clean;
    Alcotest.test_case "registry complete" `Quick test_registry;
    Alcotest.test_case "repo hot paths clean" `Quick test_repo_clean;
    Alcotest.test_case "Gc-proven hooks statically hot" `Quick
      test_gc_proven_statically_hot;
  ]
