(* The reliable-delivery sublayer: exactly-once in-order delivery over a
   channel that drops, duplicates and reorders — first at the frame level
   with a toy message type, then end-to-end with the protocol kernels and
   the §3 audits as the oracle. *)
open Dbtree_sim
open Dbtree_core

module TestMsg = struct
  type t = int

  let kind _ = "int"
  let size _ = 8
  let kind_id _ = 0
  let num_kinds = 1
  let kind_name _ = "int"
end

module TestNet = Net.Make (TestMsg)

let heavy_faults =
  {
    Net.no_faults with
    Net.drop_prob = 0.3;
    duplicate_prob = 0.3;
    delay_prob = 0.2;
    delay_ticks = 137;
  }

(* Two processors, staggered bidirectional traffic over a badly faulty
   channel: every payload must come out exactly once, in send order, in
   both directions. *)
let test_reliable_exactly_once_in_order () =
  let sim = Sim.create ~seed:42 () in
  let net =
    TestNet.create ~faults:heavy_faults ~transport:Net.Reliable sim ~procs:2
  in
  let got = [| []; [] |] in
  TestNet.set_handler net 0 (fun ~src:_ m -> got.(0) <- m :: got.(0));
  TestNet.set_handler net 1 (fun ~src:_ m -> got.(1) <- m :: got.(1));
  for i = 0 to 49 do
    Sim.schedule sim ~delay:(i * 7) (fun () ->
        TestNet.send net ~src:0 ~dst:1 i;
        if i mod 2 = 0 then TestNet.send net ~src:1 ~dst:0 (1000 + i))
  done;
  Sim.run sim;
  Alcotest.(check (list int))
    "forward direction exactly-once in-order"
    (List.init 50 Fun.id) (List.rev got.(1));
  Alcotest.(check (list int))
    "reverse direction exactly-once in-order"
    (List.init 25 (fun i -> 1000 + (2 * i)))
    (List.rev got.(0));
  let stats = Sim.stats sim in
  Alcotest.(check bool) "losses actually injected" true
    (Stats.get stats "net.fault.dropped" > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (Stats.get stats "net.rel.retx" > 0);
  Alcotest.(check bool) "duplicate frames were dropped" true
    (Stats.get stats "net.rel.dup_dropped" > 0)

(* With no reverse traffic at all, acknowledgements cannot piggyback: the
   delayed pure-ack path must carry the load and the sender must still
   stop retransmitting. *)
let test_reliable_pure_acks () =
  let sim = Sim.create ~seed:7 () in
  let net = TestNet.create ~transport:Net.Reliable sim ~procs:2 in
  let got = ref [] in
  TestNet.set_handler net 0 (fun ~src:_ _ -> ());
  TestNet.set_handler net 1 (fun ~src:_ m -> got := m :: !got);
  for i = 0 to 19 do
    TestNet.send net ~src:0 ~dst:1 i
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "all delivered in order" (List.init 20 Fun.id)
    (List.rev !got);
  let stats = Sim.stats sim in
  Alcotest.(check bool) "pure acks were sent" true
    (Stats.get stats "net.rel.acks" > 0);
  Alcotest.(check int) "no spurious retransmissions" 0
    (Stats.get stats "net.rel.retx")

(* A FIFO-violating late copy of a data frame is a duplicate by seqno; the
   receiver must drop it, not re-deliver. *)
let test_reliable_masks_reordering () =
  let sim = Sim.create ~seed:11 () in
  let faults =
    { Net.no_faults with Net.delay_prob = 1.0; delay_ticks = 400 }
  in
  let net = TestNet.create ~faults ~transport:Net.Reliable sim ~procs:2 in
  let got = ref [] in
  TestNet.set_handler net 0 (fun ~src:_ _ -> ());
  TestNet.set_handler net 1 (fun ~src:_ m -> got := m :: !got);
  for i = 0 to 9 do
    TestNet.send net ~src:0 ~dst:1 i
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "late copies deduplicated"
    (List.init 10 Fun.id) (List.rev !got)

let prop_reliable_channel =
  QCheck.Test.make ~count:40
    ~name:"reliable channel is exactly-once in-order under arbitrary faults"
    QCheck.(
      pair (pair small_nat small_nat)
        (pair
           (pair (int_bound 60) (int_bound 50))
           (pair (int_bound 50) (int_bound 1000))))
    (fun ((na, nb), ((drop, dup), (dly, seed))) ->
      let faults =
        {
          Net.no_faults with
          Net.drop_prob = float_of_int drop /. 100.0;
          duplicate_prob = float_of_int dup /. 100.0;
          delay_prob = float_of_int dly /. 100.0;
          delay_ticks = 1 + (seed mod 300);
        }
      in
      let sim = Sim.create ~seed () in
      let net =
        TestNet.create ~faults ~transport:Net.Reliable sim ~procs:2
      in
      let got = [| []; [] |] in
      TestNet.set_handler net 0 (fun ~src:_ m -> got.(0) <- m :: got.(0));
      TestNet.set_handler net 1 (fun ~src:_ m -> got.(1) <- m :: got.(1));
      for i = 0 to na - 1 do
        Sim.schedule sim ~delay:(i * 3) (fun () ->
            TestNet.send net ~src:0 ~dst:1 i)
      done;
      for i = 0 to nb - 1 do
        Sim.schedule sim ~delay:(i * 5) (fun () ->
            TestNet.send net ~src:1 ~dst:0 (10_000 + i))
      done;
      Sim.run sim;
      List.rev got.(1) = List.init na Fun.id
      && List.rev got.(0) = List.init nb (fun i -> 10_000 + i))

(* ------------------------------------------------------------------ *)
(* End-to-end: protocol kernels over a lossy wire.                     *)

let lossy =
  {
    Net.no_faults with
    Net.drop_prob = 0.05;
    duplicate_prob = 0.02;
    delay_prob = 0.02;
    delay_ticks = 150;
  }

let run_fixed ~transport =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:50_000 ~seed:3 ~faults:lossy
      ~transport ~replication:Config.All_procs ~discipline:Config.Semi ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  (match transport with
  | Net.Raw -> Opstate.set_tolerant cl.Cluster.ops
  | Net.Reliable -> ());
  for i = 1 to 300 do
    ignore (Fixed.insert t ~origin:(i mod 4) (i * 97) "v")
  done;
  Fixed.run t;
  (cl, Verify.check cl)

let test_raw_transport_loses_updates () =
  let cl, report = run_fixed ~transport:Net.Raw in
  Alcotest.(check bool) "drops were injected" true
    (Dbtree_sim.Stats.get (Cluster.stats cl) "net.fault.dropped" > 0);
  Alcotest.(check bool) "audit caught the damage" false (Verify.ok report);
  (* A dropped relay leaves a copy's history missing updates of M_n (a
     Compatible violation); a wholly-dropped insert leaves a missing key. *)
  let history_violations =
    match report.Verify.history with
    | None -> 0
    | Some h -> List.length h.Dbtree_history.Checker.violations
  in
  Alcotest.(check bool) "§3 history requirements violated" true
    (history_violations > 0);
  Alcotest.(check bool) "keys were lost outright" true
    (report.Verify.missing_keys <> [])

let test_reliable_transport_masks_loss () =
  let cl, report = run_fixed ~transport:Net.Reliable in
  let stats = Cluster.stats cl in
  Alcotest.(check bool) "drops were injected" true
    (Dbtree_sim.Stats.get stats "net.fault.dropped" > 0);
  Alcotest.(check bool) "retransmissions repaired them" true
    (Dbtree_sim.Stats.get stats "net.rel.retx" > 0);
  Alcotest.(check bool) "every §3 audit clean" true (Verify.ok report)

let test_variable_over_reliable () =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:50_000 ~seed:5 ~faults:lossy
      ~transport:Net.Reliable ~replication:Config.Path
      ~discipline:Config.Semi ()
  in
  let _, r = Dbtree_experiments.Common.run_variable ~count:200 cfg in
  Alcotest.(check string) "variable-copies verify clean" "ok"
    (Dbtree_experiments.Common.verified r)

let test_mobile_over_reliable () =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:50_000 ~seed:5 ~faults:lossy
      ~transport:Net.Reliable ~replication:Config.Path
      ~discipline:Config.Semi ~balance_period:400 ()
  in
  let _, r = Dbtree_experiments.Common.run_mobile ~count:200 cfg in
  Alcotest.(check string) "mobile-copies verify clean" "ok"
    (Dbtree_experiments.Common.verified r)

let test_lht_over_reliable () =
  let cfg =
    {
      Dbtree_lht.Lht.default_config with
      seed = 9;
      faults = lossy;
      transport = Net.Reliable;
    }
  in
  let t = Dbtree_lht.Lht.create cfg in
  for i = 1 to 250 do
    ignore (Dbtree_lht.Lht.insert t ~origin:(i mod 4) (i * 131) "v")
  done;
  Dbtree_lht.Lht.run t;
  let report = Dbtree_lht.Lht.verify t in
  Alcotest.(check bool) "hash table verify clean" true
    (Dbtree_lht.Lht.verified report);
  Alcotest.(check int) "every insert completed" 250
    (Dbtree_lht.Lht.completed t)

(* Reliable + certain loss can never terminate; the config layers must
   reject it rather than spin. *)
let test_total_loss_rejected () =
  Alcotest.check_raises "drop_prob = 1.0 with Reliable rejected"
    (Invalid_argument
       "Config: the reliable transport cannot terminate over a channel that \
        drops everything (drop_prob must be < 1)")
    (fun () ->
      ignore
        (Config.make ~transport:Net.Reliable
           ~faults:{ lossy with Net.drop_prob = 1.0 }
           ()))

(* ------------------------------------------------------------------ *)
(* E14 gate: the published table must show raw losing and reliable
   surviving — CI runs this via dune runtest. *)

let test_e14_verified_columns () =
  Dbtree_experiments.Table.set_capture true;
  Dbtree_experiments.E14_network_faults.run ~quick:true ();
  let tables = Dbtree_experiments.Table.captured () in
  Dbtree_experiments.Table.set_capture false;
  let table =
    match tables with
    | [ t ] -> t
    | _ -> Alcotest.fail "e14 must print exactly one table"
  in
  let rows = Dbtree_experiments.Table.rows table in
  Alcotest.(check int) "raw and reliable row per fault mix" 14
    (List.length rows);
  List.iter
    (fun row ->
      match (row, List.rev row) with
      | transport :: drop :: dup :: delay :: _, verified :: _ ->
        let faulty = drop <> "0.00" || dup <> "0.00" || delay <> "0.00" in
        let label =
          Printf.sprintf "%s drop=%s dup=%s delay=%s" transport drop dup delay
        in
        if transport = "reliable" || not faulty then
          Alcotest.(check string) (label ^ " verifies") "ok" verified
        else
          Alcotest.(check bool)
            (label ^ " must be caught (got " ^ verified ^ ")")
            true
            (verified = "FAIL" || verified = "CRASH")
      | _ -> Alcotest.fail "malformed e14 row")
    rows

let suite =
  [
    Alcotest.test_case "channel: exactly-once in-order under faults" `Quick
      test_reliable_exactly_once_in_order;
    Alcotest.test_case "channel: pure acks without reverse traffic" `Quick
      test_reliable_pure_acks;
    Alcotest.test_case "channel: reordering masked" `Quick
      test_reliable_masks_reordering;
    QCheck_alcotest.to_alcotest prop_reliable_channel;
    Alcotest.test_case "fixed: raw transport loses updates" `Quick
      test_raw_transport_loses_updates;
    Alcotest.test_case "fixed: reliable transport masks loss" `Quick
      test_reliable_transport_masks_loss;
    Alcotest.test_case "variable copies over reliable" `Quick
      test_variable_over_reliable;
    Alcotest.test_case "mobile copies over reliable" `Quick
      test_mobile_over_reliable;
    Alcotest.test_case "hash table over reliable" `Quick test_lht_over_reliable;
    Alcotest.test_case "config rejects reliable + total loss" `Quick
      test_total_loss_rejected;
    Alcotest.test_case "e14 gate: verified columns" `Quick
      test_e14_verified_columns;
  ]
