(* Million-op scale machinery: the domain-parallel cell map, the arena
   store against a hash-table reference model, and the packed-clock
   budget that million-event runs must stay inside. *)
open Dbtree_core
open Dbtree_sim
open Dbtree_blink

(* ---------------------------------------------------------------- *)
(* Par.map: deterministic merge, exception order, actual parallelism-
   agnostic results. *)

let test_par_map_order () =
  let xs = Array.init 200 (fun i -> i) in
  let f i = (i * i) + 1 in
  Alcotest.(check (array int))
    "4 domains ≡ Array.map" (Array.map f xs)
    (Par.map ~domains:4 f xs);
  Alcotest.(check (array int))
    "1 domain ≡ Array.map" (Array.map f xs)
    (Par.map ~domains:1 f xs);
  Alcotest.(check (array int)) "empty input" [||] (Par.map ~domains:4 f [||])

let test_par_map_exn_lowest () =
  let xs = Array.init 50 (fun i -> i) in
  match
    Par.map ~domains:3
      (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i)
      xs
  with
  | _ -> Alcotest.fail "expected a Failure"
  | exception Failure s ->
    (* indices 3, 10, 17, … fail; the lowest must win regardless of
       which domain hit which index first *)
    Alcotest.(check string) "lowest failing index raised" "3" s

(* Arbitrary failing subsets under arbitrary domain counts: whichever
   domain hits whichever cell first, the exception that surfaces is
   always the lowest failing index's, and a failure-free run matches the
   sequential map. *)
let prop_par_exn_lowest =
  QCheck.Test.make ~count:200 ~name:"par: lowest of many failing cells wins"
    (QCheck.make
       ~print:
         (Fmt.str "%a"
            (Fmt.Dump.pair
               (Fmt.Dump.pair Fmt.int (Fmt.Dump.list Fmt.int))
               Fmt.int))
       QCheck.Gen.(
         pair (pair (int_range 1 40) (small_list (int_bound 39))) (int_range 1 6)))
    (fun ((n, fails), domains) ->
      let fails = List.sort_uniq compare (List.filter (fun i -> i < n) fails) in
      let xs = Array.init n (fun i -> i) in
      let f i = if List.mem i fails then failwith (string_of_int i) else i * 2 in
      match Par.map ~domains f xs with
      | r -> fails = [] && r = Array.map (fun i -> i * 2) xs
      | exception Failure s -> fails <> [] && s = string_of_int (List.hd fails))

let test_par_domains_exceed_cells () =
  (* the domain count clamps to the cell count: no idle domain spawns,
     and results (and exceptions) are unchanged *)
  let xs = [| 10; 20; 30 |] in
  Alcotest.(check (array int))
    "8 domains over 3 cells" (Array.map succ xs)
    (Par.map ~domains:8 succ xs);
  Alcotest.(check (array int))
    "5 domains over 1 cell" [| 2 |]
    (Par.map ~domains:5 succ [| 1 |]);
  match Par.map ~domains:7 (fun i -> if i = 1 then failwith "x" else i) [| 0; 1 |] with
  | _ -> Alcotest.fail "expected a Failure"
  | exception Failure s -> Alcotest.(check string) "exn through the clamp" "x" s

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_parse_domains () =
  Alcotest.(check (result int string)) "plain" (Ok 4) (Par.parse_domains "4");
  Alcotest.(check (result int string))
    "whitespace trimmed" (Ok 8)
    (Par.parse_domains " 8\n");
  Alcotest.(check (result int string)) "zero clamps" (Ok 1) (Par.parse_domains "0");
  Alcotest.(check (result int string))
    "negative clamps" (Ok 1) (Par.parse_domains "-3");
  (match Par.parse_domains "many" with
  | Ok d -> Alcotest.failf "parsed %d from garbage" d
  | Error m ->
    Alcotest.(check bool) "error names the variable" true (contains m "DBTREE_DOMAINS"));
  Alcotest.(check int) "unset env means 1" 1 (Par.domains_of_env None);
  Alcotest.(check int) "garbage env means 1 (warned once on stderr)" 1
    (Par.domains_of_env (Some "garbage"));
  Alcotest.(check int) "valid env passes through" 6
    (Par.domains_of_env (Some "6"))

(* e17's cells through one domain and through several must render the
   exact same table: the domain count is an execution detail, never an
   output one. *)
let capture run =
  Dbtree_experiments.Table.set_capture true;
  run ();
  let tables = Dbtree_experiments.Table.captured () in
  Dbtree_experiments.Table.set_capture false;
  String.concat "\n" (List.map Dbtree_experiments.Table.render tables)

let test_e17_par_byte_identical () =
  let seq =
    capture (fun () -> Dbtree_experiments.E17_scale.run_with ~quick:true ~domains:1 ())
  in
  let par =
    capture (fun () -> Dbtree_experiments.E17_scale.run_with ~quick:true ~domains:2 ())
  in
  Alcotest.(check bool) "table non-empty" true (String.length seq > 0);
  Alcotest.(check string) "sequential ≡ 2 domains" seq par

(* ---------------------------------------------------------------- *)
(* Arena store vs a hash-table reference model: random op sequences
   must observe identically, and the arena walk must be ascending. *)

type sop =
  | Install of int
  | Remove of int
  | Learn of int * int list
  | Learn_if_absent of int * int list
  | Add_pending of int * int
  | Take_pending of int

let sop_gen =
  let open QCheck.Gen in
  (* ids beyond the arena's initial capacity, to exercise growth *)
  let id = int_bound 300 in
  let members = list_size (int_bound 3) (int_bound 7) in
  frequency
    [
      (3, map (fun i -> Install i) id);
      (1, map (fun i -> Remove i) id);
      (2, map2 (fun i ms -> Learn (i, ms)) id members);
      (2, map2 (fun i ms -> Learn_if_absent (i, ms)) id members);
      (2, map2 (fun i k -> Add_pending (i, k)) id (int_bound 1000));
      (1, map (fun i -> Take_pending i) id);
    ]

let pp_sop fmt = function
  | Install i -> Fmt.pf fmt "Install %d" i
  | Remove i -> Fmt.pf fmt "Remove %d" i
  | Learn (i, ms) -> Fmt.pf fmt "Learn (%d, %a)" i Fmt.(list int) ms
  | Learn_if_absent (i, ms) ->
    Fmt.pf fmt "Learn_if_absent (%d, %a)" i Fmt.(list int) ms
  | Add_pending (i, k) -> Fmt.pf fmt "Add_pending (%d, %d)" i k
  | Take_pending i -> Fmt.pf fmt "Take_pending %d" i

let mk_node id =
  Node.make ~id ~level:0 ~low:Bound.Neg_inf ~high:Bound.Pos_inf Entries.empty

(* The pre-arena implementation in miniature: three Hashtbls. *)
type reference = {
  r_copies : (int, unit) Hashtbl.t;
  r_where : (int, int list) Hashtbl.t;
  r_pending : (int, Msg.t list) Hashtbl.t;
}

let prop_store_matches_reference =
  QCheck.Test.make ~count:300 ~name:"store: arena ≡ hashtbl reference"
    (QCheck.make ~print:(Fmt.str "%a" (Fmt.Dump.list pp_sop))
       QCheck.Gen.(list_size (int_bound 120) sop_gen))
    (fun ops ->
      let s = Store.create ~pid:0 ~root:0 in
      let r =
        {
          r_copies = Hashtbl.create 16;
          r_where = Hashtbl.create 16;
          r_pending = Hashtbl.create 16;
        }
      in
      List.iter
        (fun op ->
          (match op with
          | Install id ->
            ignore
              (Store.install s ~node:(mk_node id) ~pc:0 ~members:[ 0; 1 ]);
            Hashtbl.replace r.r_copies id ();
            Hashtbl.replace r.r_where id [ 0; 1 ]
          | Remove id ->
            Store.remove s id;
            Hashtbl.remove r.r_copies id
          | Learn (id, ms) ->
            Store.learn s id ms;
            Hashtbl.replace r.r_where id ms
          | Learn_if_absent (id, ms) ->
            Store.learn_if_absent s id ms;
            if not (Hashtbl.mem r.r_where id) then
              Hashtbl.replace r.r_where id ms
          | Add_pending (id, k) ->
            let m = Msg.Split_start { node = k } in
            Store.add_pending s id m;
            Hashtbl.replace r.r_pending id
              (m :: Option.value (Hashtbl.find_opt r.r_pending id) ~default:[])
          | Take_pending id ->
            let got = Store.take_pending s id in
            let want =
              List.rev
                (Option.value (Hashtbl.find_opt r.r_pending id) ~default:[])
            in
            Hashtbl.remove r.r_pending id;
            if got <> want then
              QCheck.Test.fail_reportf "take_pending %d diverged" id);
          let id =
            match op with
            | Install i | Remove i
            | Learn (i, _) | Learn_if_absent (i, _)
            | Add_pending (i, _) | Take_pending i -> i
          in
          if Store.mem s id <> Hashtbl.mem r.r_copies id then
            QCheck.Test.fail_reportf "mem %d diverged" id;
          if Store.members_opt s id <> Hashtbl.find_opt r.r_where id then
            QCheck.Test.fail_reportf "members_opt %d diverged" id)
        ops;
      if Store.copy_count s <> Hashtbl.length r.r_copies then
        QCheck.Test.fail_reportf "copy_count diverged";
      (* the arena walk is ascending node id — exactly the reference's
         key set, sorted *)
      let walked = ref [] in
      Store.iter s (fun c -> walked := c.Store.node.Node.id :: !walked);
      let walked = List.rev !walked in
      let want =
        List.sort compare (Hashtbl.fold (fun k () a -> k :: a) r.r_copies [])
      in
      if walked <> want then QCheck.Test.fail_reportf "iter order diverged";
      true)

(* ---------------------------------------------------------------- *)
(* Packed-clock budget: the wheel consumes (time, seq) slots only for
   overflow insertions (delay beyond the 2048-tick window), so even a
   million-event run must use a vanishing fraction of the 2^31 seq
   budget — that is the regression this pin guards. *)

let test_million_events_within_budget () =
  let sim = Sim.create ~seed:7 () in
  let target = 1_000_000 in
  let n = ref 0 in
  let h =
    Sim.register_handler sim (fun a _ _ _ ->
        incr n;
        if !n < target then
          Sim.schedule_typed sim
            ~delay:(1 + (a mod 97))
            ~h:0 ~a:(a + 1) ~b:0 ~c:0 ~o:(Obj.repr 0))
  in
  Alcotest.(check int) "first handler id" 0 h;
  (* a sprinkle of beyond-window delays so the overflow path runs too *)
  for i = 1 to 32 do
    Sim.schedule sim ~delay:(Wheel.window + (i * 131)) (fun () -> ())
  done;
  Sim.schedule_typed sim ~delay:1 ~h:0 ~a:0 ~b:0 ~c:0 ~o:(Obj.repr 0);
  Sim.run sim;
  Alcotest.(check int) "all events ran" (target + 32)
    (Sim.events_processed sim);
  let consumed = Sim.seq_consumed sim in
  Alcotest.(check bool) "overflow seq stays tiny"
    true (consumed <= 32);
  Alcotest.(check bool) "far from the 2^31 budget" true
    (consumed < Evq.max_seq / 1024 && Sim.now sim < Evq.max_time / 16)

let suite =
  [
    Alcotest.test_case "par: map order" `Quick test_par_map_order;
    Alcotest.test_case "par: lowest exception wins" `Quick
      test_par_map_exn_lowest;
    QCheck_alcotest.to_alcotest prop_par_exn_lowest;
    Alcotest.test_case "par: domains exceed cells" `Quick
      test_par_domains_exceed_cells;
    Alcotest.test_case "par: DBTREE_DOMAINS parsing" `Quick test_parse_domains;
    Alcotest.test_case "par: e17 byte-identical across domains" `Quick
      test_e17_par_byte_identical;
    QCheck_alcotest.to_alcotest prop_store_matches_reference;
    Alcotest.test_case "packed clock: million events within budget" `Quick
      test_million_events_within_budget;
  ]
