type violation = {
  requirement : [ `Compatible | `Complete | `Ordered | `Exactly_once ];
  node : int option;
  message : string;
}

type report = {
  violations : violation list;
  nodes_checked : int;
  copies_checked : int;
  actions_checked : int;
}

let ok r = r.violations = []

open Registry

let uids_of_copy (c : copy) =
  List.fold_left
    (fun acc r -> Uid_set.add r.action.Action.uid acc)
    c.base c.records

let check_exactly_once violations (c : copy) =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let uid = r.action.Action.uid in
      if Hashtbl.mem seen uid || Uid_set.mem uid c.base then
        violations :=
          {
            requirement = `Exactly_once;
            node = Some c.node;
            message =
              Fmt.str "copy (n%d,p%d) performed update #%d twice" c.node c.pid
                uid;
          }
          :: !violations
      else Hashtbl.add seen uid ())
    c.records

let check_ordered violations (c : copy) =
  (* records are newest-first; walk oldest-first *)
  let per_class = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if r.effective then
        match Action.ordered_class r.action with
        | None -> ()
        | Some cls -> (
          let v = r.action.Action.version in
          match Hashtbl.find_opt per_class cls with
          | Some prev when prev > v ->
            violations :=
              {
                requirement = `Ordered;
                node = Some c.node;
                message =
                  Fmt.str
                    "copy (n%d,p%d): class %s applied version %d after %d"
                    c.node c.pid cls v prev;
              }
              :: !violations
          | Some _ | None -> Hashtbl.replace per_class cls v))
    (List.rev c.records)

let check t =
  let violations = ref [] in
  let nodes = all_nodes t in
  let copies_checked = ref 0 in
  let actions_checked = ref 0 in
  let all_performed = ref Uid_set.empty in
  List.iter
    (fun node ->
      let copies = copies_of t node in
      let m_n =
        List.fold_left
          (fun acc c -> Uid_set.union acc (uids_of_copy c))
          Uid_set.empty copies
      in
      all_performed := Uid_set.union !all_performed m_n;
      List.iter
        (fun c ->
          incr copies_checked;
          actions_checked := !actions_checked + List.length c.records;
          check_exactly_once violations c;
          check_ordered violations c;
          if c.live then begin
            let mine = uids_of_copy c in
            if not (Uid_set.equal mine m_n) then begin
              let missing = Uid_set.diff m_n mine in
              violations :=
                {
                  requirement = `Compatible;
                  node = Some node;
                  message =
                    Fmt.str
                      "copy (n%d,p%d) misses %d update(s) of M_n (e.g. #%d)"
                      node c.pid (Uid_set.cardinal missing)
                      (Uid_set.min_elt missing);
                }
                :: !violations
            end
          end)
        copies)
    nodes;
  let unplaced = Uid_set.diff (issued t) !all_performed in
  Uid_set.iter
    (fun uid ->
      violations :=
        {
          requirement = `Complete;
          node = None;
          message = Fmt.str "issued update #%d was never performed" uid;
        }
        :: !violations)
    unplaced;
  {
    violations = List.rev !violations;
    nodes_checked = List.length nodes;
    copies_checked = !copies_checked;
    actions_checked = !actions_checked;
  }

let pp_violation ppf v =
  let req =
    match v.requirement with
    | `Compatible -> "compatible"
    | `Complete -> "complete"
    | `Ordered -> "ordered"
    | `Exactly_once -> "exactly-once"
  in
  Fmt.pf ppf "[%s] %s" req v.message

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf
      "history OK: %d nodes, %d copies, %d recorded actions, 0 violations"
      r.nodes_checked r.copies_checked r.actions_checked
  else
    Fmt.pf ppf "history VIOLATIONS (%d):@,%a"
      (List.length r.violations)
      (Fmt.list ~sep:Fmt.cut pp_violation)
      r.violations
