(** Audits recorded histories against the paper's correctness criteria
    (§3.1): the compatible, complete, and ordered history requirements,
    plus an exactly-once sanity check on replica maintenance.

    These checks are what turn Theorems 1-4 into executable tests: every
    protocol run in the test suite and the experiment harness finishes by
    auditing its history registry. *)

type violation = {
  requirement : [ `Compatible | `Complete | `Ordered | `Exactly_once ];
  node : int option;
  message : string;
}

type report = {
  violations : violation list;
  nodes_checked : int;
  copies_checked : int;
  actions_checked : int;
}

val ok : report -> bool

val check : Registry.t -> report
(** Runs all requirement checks:

    - {b Compatible}: for every node, every live copy's backwards-extended
      uniform update set equals the node's full update set M_n (first
      condition of the Compatible History Requirement; value equality of
      the copies is checked by the protocol verifier, which owns the
      values).
    - {b Complete}: every issued update uid appears in some copy's
      history.
    - {b Ordered}: on every copy, the effective actions of each ordered
      class appear in non-decreasing version order.
    - {b Exactly-once}: no copy records the same update twice, nor an
      update already covered by its original value. *)

val pp_report : report Fmt.t
