type mode = Initial | Relayed

type kind =
  | Insert of { key : int }
  | Delete of { key : int }
  | Half_split of { sep : int; sibling : int }
  | Link_change of { which : [ `Left | `Right | `Child of int ]; target : int }
  | Join of { pid : int }
  | Unjoin of { pid : int }
  | Migrate of { to_pid : int }
  | Resize of { depth : int }

type t = { uid : int; node : int; mode : mode; kind : kind; version : int }

let is_update _ = true

let ordered_class a =
  match a.kind with
  | Link_change { which = `Left; _ } -> Some "link.left"
  | Link_change { which = `Right; _ } -> Some "link.right"
  | Link_change { which = `Child c; _ } -> Some (Fmt.str "link.child.%d" c)
  | Join _ | Unjoin _ | Migrate _ -> Some "membership"
  | Resize _ -> Some "resize"
  | Insert _ | Delete _ | Half_split _ -> None

let uniform a = { a with mode = Initial }

let pp_kind ppf = function
  | Insert { key } -> Fmt.pf ppf "insert(%d)" key
  | Delete { key } -> Fmt.pf ppf "delete(%d)" key
  | Half_split { sep; sibling } -> Fmt.pf ppf "half_split(sep=%d,sib=%d)" sep sibling
  | Link_change { which; target } ->
    let w =
      match which with
      | `Left -> "left"
      | `Right -> "right"
      | `Child c -> Fmt.str "child.%d" c
    in
    Fmt.pf ppf "link_change(%s->%d)" w target
  | Join { pid } -> Fmt.pf ppf "join(p%d)" pid
  | Unjoin { pid } -> Fmt.pf ppf "unjoin(p%d)" pid
  | Migrate { to_pid } -> Fmt.pf ppf "migrate(->p%d)" to_pid
  | Resize { depth } -> Fmt.pf ppf "resize(depth=%d)" depth

let pp ppf a =
  Fmt.pf ppf "%s#%d@@n%d:%a/v%d"
    (match a.mode with Initial -> "I" | Relayed -> "r")
    a.uid a.node pp_kind a.kind a.version
