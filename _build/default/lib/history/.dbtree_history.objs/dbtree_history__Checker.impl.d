lib/history/checker.ml: Action Fmt Hashtbl List Registry Uid_set
