lib/history/action.ml: Fmt
