lib/history/registry.ml: Action Fmt Hashtbl Int List Set
