lib/history/checker.mli: Fmt Registry
