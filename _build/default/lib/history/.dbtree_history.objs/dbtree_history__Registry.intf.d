lib/history/registry.mli: Action Set
