lib/history/action.mli: Fmt
