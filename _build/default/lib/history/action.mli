(** Actions of the paper's correctness model (§3).

    An *operation* (search, insert) executes as a sequence of *actions* on
    node copies.  An update action is performed *initially* on one copy and
    *relayed* to the others; initial and relayed executions of the same
    logical update share a unique id [uid], so that the uniform history
    U(H) — which erases the initial/relayed distinction — is just the
    multiset of uids.

    The [kind] taxonomy follows §4: inserts are lazy updates, half-splits
    are semi-synchronous (ordered through the primary copy), link-changes,
    joins, unjoins and migrations are the ordered / membership actions of
    §4.2-4.3. *)

type mode = Initial | Relayed

type kind =
  | Insert of { key : int }
      (** add an entry (leaf datum or child pointer under separator [key]) *)
  | Delete of { key : int }
  | Half_split of { sep : int; sibling : int }
  | Link_change of { which : [ `Left | `Right | `Child of int ]; target : int }
      (** re-point a link; ordered by the node version carried in
          [version] *)
  | Join of { pid : int }
  | Unjoin of { pid : int }
  | Migrate of { to_pid : int }
  | Resize of { depth : int }
      (** a replicated structure grew (e.g. hash-directory doubling);
          ordered by version like the membership actions *)

type t = {
  uid : int;  (** shared by the initial action and all its relays *)
  node : int;  (** logical node the action updates *)
  mode : mode;
  kind : kind;
  version : int;
      (** node version attached to the action (orders the ordered class;
          0 where irrelevant) *)
}

val is_update : kind -> bool
(** All kinds here are updates; searches are never recorded.  Provided for
    documentation symmetry. *)

val ordered_class : t -> string option
(** [Some tag] when the action belongs to an ordered class (§3: all
    actions of a class must appear in time order); the tag identifies the
    class, e.g. ["link.right"].  Link-changes, joins/unjoins and
    migrations are ordered via node versions; inserts are not. *)

val uniform : t -> t
(** The action with [mode = Initial]: the image under U(·). *)

val pp : t Fmt.t
