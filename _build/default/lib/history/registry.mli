(** Recorder for per-copy update histories (§3.1).

    Protocol code registers every copy it creates and records every update
    action it performs (or deliberately absorbs) on that copy; the
    {!Checker} then audits the recorded histories against the paper's
    three requirements.

    The model of a copy's history here is the pair (base, records): [base]
    is the set of update uids covered by the copy's *original value* — the
    backwards extension B_c of §3.1 — and [records] are the update actions
    performed on the copy afterwards.  A record may be marked
    non-[effective]: the action was absorbed without changing the value
    (an out-of-range relayed insert discarded after a split, or a stale
    link-change skipped under version ordering).  Absorbed actions still
    count in the uniform history — they are exactly the actions whose
    position the paper's proofs "rewrite". *)

type uid = int

module Uid_set : Set.S with type elt = int

type record = { action : Action.t; effective : bool; time : int }

type copy = {
  node : int;
  pid : int;
  mutable base : Uid_set.t;
  mutable records : record list;  (** newest first *)
  mutable live : bool;  (** false once the copy is deleted / unjoined *)
}

type t

val create : unit -> t

val fresh_uid : t -> uid
(** Allocate the uid for a new initial update action. *)

val note_issued : t -> uid -> unit
(** Declare that an update action with this uid has been issued as a
    subsequent action — the complete-history requirement demands it end up
    in some node's update set. *)

val new_copy : t -> node:int -> pid:int -> base:Uid_set.t -> unit
(** Register a copy created with an original value covering [base]. *)

val snapshot : t -> node:int -> pid:int -> Uid_set.t
(** [base ∪ recorded uids] of an existing copy — the base to give a new
    copy whose original value is this copy's current value. *)

val record :
  t -> node:int -> pid:int -> ?effective:bool -> time:int -> Action.t -> unit
(** Record one update action performed on a copy (default
    [effective:true]). *)

val retire_copy : t -> node:int -> pid:int -> unit
(** Mark a copy deleted (migration away, unjoin).  Its history is kept but
    exempted from end-of-computation value checks. *)

val copies_of : t -> int -> copy list
(** All registered copies (live and retired) of a node. *)

val live_copies_of : t -> int -> copy list
val all_nodes : t -> int list
val issued : t -> Uid_set.t
val find_copy : t -> node:int -> pid:int -> copy option
