(* E12 — §3/§4.2: the ordered-history requirement does real work.
   Migration storms generate competing link-change actions.  With version
   ordering, stale changes are absorbed (history rewritten) and the
   ordered-history audit passes; with the ablation (apply in arrival
   order), the audit reports violations and stale links can corrupt
   navigation. *)
open Dbtree_core
open Dbtree_sim

let id = "e12"
let title = "Ordered link-changes: version numbers vs arrival order"

let churn t cl rounds =
  (* Racing link-changes need the same leaf to migrate several times
     before its neighbors apply the first relink: chains of staggered
     migrations, no quiescing in between, under latency jitter. *)
  let rng = Rng.create 3 in
  let sim = cl.Cluster.sim in
  for _ = 1 to rounds do
    Array.iter
      (fun (store : Store.t) ->
        let leaves = ref [] in
        Store.iter store (fun c ->
            if Dbtree_blink.Node.is_leaf c.Store.node then
              leaves := c.Store.node.Dbtree_blink.Node.id :: !leaves);
        List.iteri
          (fun i id ->
            if i mod 3 = 0 then begin
              Mobile.migrate t ~node:id ~to_pid:(Rng.int rng 4);
              let hop delay =
                let dst = Rng.int rng 4 in
                Sim.schedule sim ~delay (fun () ->
                    Mobile.migrate t ~node:id ~to_pid:dst)
              in
              hop 45; hop 95; hop 150
            end)
          !leaves)
      cl.Cluster.stores;
    (* A corrupted link structure (the ablation) can cycle forever; bound
       the run and report the livelock instead of hanging. *)
    Mobile.run ~max_events:2_000_000 t
  done

let run ?(quick = false) () =
  let count = Common.scale quick 800 in
  let rounds = if quick then 3 else 8 in
  let table =
    Table.create ~title
      ~columns:
        [
          "link ordering"; "migrations"; "stale changes absorbed";
          "ordered violations"; "unreachable keys"; "livelock"; "verified";
        ]
  in
  List.iter
    (fun ordered_links ->
      let cfg =
        Config.make ~procs:4 ~capacity:4 ~key_space:100_000 ~seed:5
          ~ordered_links
          ~latency:
            { Dbtree_sim.Net.local_delay = 1; remote_base = 20; remote_jitter = 60 }
          ()
      in
      let t = Mobile.create cfg in
      let cl = Mobile.cluster t in
      let r =
        Common.load_and_search ~window:4 ~searches_per_proc:64
          ~key_space:50_000 ~api:(Mobile.api t) ~cluster:cl
          ~splits:(fun () -> Mobile.splits t)
          ~count ~seed:5 ()
      in
      let livelocked =
        try
          churn t cl rounds;
          false
        with Sim.Budget_exhausted -> true
      in
      let report = Verify.check cl in
      let ordered_violations =
        match report.Verify.history with
        | None -> 0
        | Some h ->
          List.length
            (List.filter
               (fun v -> v.Dbtree_history.Checker.requirement = `Ordered)
               h.Dbtree_history.Checker.violations)
      in
      ignore r;
      Table.add_row table
        [
          (if ordered_links then "version numbers" else "arrival order");
          Table.cell_i (Mobile.migrations t);
          Table.cell_i (Stats.get (Cluster.stats cl) "link_change.absorbed");
          Table.cell_i ordered_violations;
          Table.cell_i (List.length report.Verify.unreachable);
          (if livelocked then "YES" else "no");
          (if Verify.ok report && not livelocked then "ok" else "FAIL");
        ])
    [ true; false ];
  Table.add_note table
    "Version ordering absorbs stale link-changes (rewriting them into \
     their proper place); the ablation applies them blindly and the \
     ordered-history audit catches it.";
  Table.print table
