(* E13 — §5 future work: lazy updates for a distributed hash table.
   The paper closes by promising to "apply lazy updates to other
   distributed data structures, such as hash tables".  We build an
   extendible hash table whose directory is replicated on every processor
   and maintained by lazy (specificity-ordered) pointer updates, with
   directory doubling serialized through a primary copy, and compare it
   against the vigorous baseline that routes every directory update
   through the PC under an acknowledgement barrier. *)
open Dbtree_lht

let id = "e13"
let title = "Lazy hash-table directory maintenance ([5], Sec.5 future work)"

let run_one ~procs ~lazy_directory ~n ~seed =
  let cfg =
    {
      Lht.default_config with
      procs;
      bucket_capacity = 4;
      seed;
      lazy_directory;
    }
  in
  let t = Lht.create cfg in
  let rng = Dbtree_sim.Rng.create (seed + 1) in
  for i = 1 to n do
    ignore
      (Lht.insert t ~origin:(i mod procs)
         (Dbtree_sim.Rng.int rng 10_000_000)
         "v")
  done;
  Lht.run t;
  for origin = 0 to procs - 1 do
    for _ = 1 to 100 do
      ignore (Lht.search t ~origin (Dbtree_sim.Rng.int rng 10_000_000))
    done
  done;
  Lht.run t;
  t

let run ?(quick = false) () =
  let n = Common.scale quick 4_000 in
  let table =
    Table.create ~title
      ~columns:
        [
          "procs"; "directory"; "splits"; "doublings"; "depth"; "msgs/op";
          "stale ptr absorbed"; "chain chases"; "verified";
        ]
  in
  List.iter
    (fun procs ->
      List.iter
        (fun lazy_directory ->
          let t = run_one ~procs ~lazy_directory ~n ~seed:5 in
          let ops = max 1 (Lht.completed t) in
          let stats = Lht.stats t in
          Table.add_row table
            [
              Table.cell_i procs;
              (if lazy_directory then "lazy" else "eager");
              Table.cell_i (Lht.splits t);
              Table.cell_i (Lht.doublings t);
              Table.cell_i (Lht.depth t 0);
              Table.cell_f (float_of_int (Lht.messages t) /. float_of_int ops);
              Table.cell_i (Dbtree_sim.Stats.get stats "dir.update_absorbed");
              Table.cell_i (Dbtree_sim.Stats.get stats "op.chased");
              (if Lht.verified (Lht.verify t) then "ok" else "FAIL");
            ])
        [ true; false ])
    [ 2; 4; 8 ];
  Table.add_note table
    "Pointer updates are ordered by specificity (nested splits must not \
     be overwritten by stale coarser pointers) — the hash-table analogue \
     of the dB-tree's version-numbered link changes; doubling is the only \
     PC-serialized action.";
  Table.print table
