(* E16 — §5 future work: lazy node deletion (towards the dE-tree).
   The paper closes with "developing lazy updates algorithms for node
   merging and node deletion (for a dE-tree)".  This experiment exercises
   our single-copy instalment of that programme: an emptied leaf is
   absorbed by its left neighbor through ordered link-changes and its
   parent entry retired lazily — no synchronization, misdirected messages
   recover through the departed mark and a root-ward restart.  Interior
   merging (the replicated case) remains future work, as in the paper. *)
open Dbtree_core
open Dbtree_sim

let id = "e16"
let title = "Lazy leaf reclamation (dE-tree, Sec.5 future work)"

let run_one ~reclaim ~n ~delete_frac =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:1_000_000
      ~reclaim_empty_leaves:reclaim ()
  in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  let rng = Rng.create 7 in
  let keys = Dbtree_workload.Workload.unique_keys rng ~key_space:200_000 ~count:n in
  Array.iteri (fun i k -> ignore (Mobile.insert t ~origin:(i mod 4) k "v")) keys;
  Mobile.run t;
  let deletions = int_of_float (float_of_int n *. delete_frac) in
  for i = 0 to deletions - 1 do
    ignore (Mobile.remove t ~origin:(i mod 4) keys.(i))
  done;
  Mobile.run t;
  (t, cl)

let total_nodes (cl : Cluster.t) =
  Array.fold_left (fun acc s -> acc + Store.copy_count s) 0 cl.Cluster.stores

let run ?(quick = false) () =
  let n = Common.scale quick 2_000 in
  let table =
    Table.create ~title
      ~columns:
        [
          "delete frac"; "reclaim"; "nodes left"; "leaves freed";
          "recoveries"; "verified";
        ]
  in
  List.iter
    (fun delete_frac ->
      List.iter
        (fun reclaim ->
          let t, cl = run_one ~reclaim ~n ~delete_frac in
          ignore t;
          let stats = Cluster.stats cl in
          Table.add_row table
            [
              Table.cell_f delete_frac;
              (if reclaim then "on" else "off");
              Table.cell_i (total_nodes cl);
              Table.cell_i (Stats.get stats "reclaim.count");
              Table.cell_i (Stats.get stats "recover.count");
              (if Verify.ok (Verify.check cl) then "ok" else "FAIL");
            ])
        [ false; true ])
    [ 0.5; 0.9 ];
  Table.add_note table
    "Without reclamation, emptied leaves linger forever (free-at-empty \
     with no collector); with it, their space returns while the \
     structure keeps answering — the single-copy half of the dE-tree.";
  Table.print table
