(* E5 — Figure 5: synchronous vs semi-synchronous split ordering.
   The paper's analytical claims: the synchronous AAS costs 3|copies|
   messages per split and blocks initial inserts for its duration; the
   semi-synchronous rewrite costs |copies| messages (optimal) and never
   blocks.  We sweep the replication degree (= processors, under full
   replication) and measure both. *)
open Dbtree_core

let id = "e5"
let title = "Figure 5: sync vs semi-sync splits (messages, blocking)"

let coherence_msgs r d =
  match d with
  | Config.Sync ->
    Common.msgs_of_kind r "split_start"
    + Common.msgs_of_kind r "split_ack"
    + Common.msgs_of_kind r "split_end"
  | Config.Semi -> Common.msgs_of_kind r "relay_split"
  | Config.Naive | Config.Eager -> 0

let run ?(quick = false) () =
  let count = Common.scale quick 2_500 in
  let table =
    Table.create ~title
      ~columns:
        [
          "copies"; "protocol"; "splits"; "msgs/split"; "paper";
          "blocked updates"; "mean AAS ticks"; "insert latency"; "verified";
        ]
  in
  List.iter
    (fun procs ->
      List.iter
        (fun discipline ->
          let cfg =
            Config.make ~procs ~capacity:4 ~key_space:400_000 ~discipline
              ~replication:Config.All_procs ~seed:9 ()
          in
          let r = Common.run_fixed ~window:4 ~count cfg in
          let per_split =
            float_of_int (coherence_msgs r discipline)
            /. float_of_int (max 1 r.Common.splits)
          in
          let paper =
            match discipline with
            | Config.Sync -> Fmt.str "3c=%d" (3 * (procs - 1))
            | Config.Semi | Config.Naive | Config.Eager ->
              Fmt.str "c=%d" (procs - 1)
          in
          let aas =
            match
              Dbtree_sim.Stats.summary
                (Cluster.stats r.Common.cluster)
                "split.aas_time"
            with
            | Some s -> Table.cell_f (Dbtree_sim.Stats.mean s)
            | None -> "-"
          in
          Table.add_row table
            [
              Table.cell_i procs;
              Config.discipline_name discipline;
              Table.cell_i r.Common.splits;
              Table.cell_f per_split;
              paper;
              Table.cell_i (Common.stat r "split.blocked_updates");
              aas;
              Table.cell_f (Common.mean_latency r Opstate.Insert);
              Common.verified r;
            ])
        [ Config.Sync; Config.Semi ])
    [ 2; 4; 8; 16 ];
  Table.add_note table
    "'paper' = the predicted coherence messages per split with c = copies-1 \
     remote replicas (Sec.4.1.2: |copies| vs 3|copies|).";
  Table.print table
