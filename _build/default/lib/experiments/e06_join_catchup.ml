(* E6 — Figure 6: incomplete histories from joins racing inserts.
   A processor that joins a node's replication concurrently with updates
   can miss updates relayed by copies that did not yet know it.  The
   variable-copies protocol's version numbers let the PC re-relay exactly
   those updates (Theorem 4).  The ablation disables the catch-up rule and
   exhibits the anomaly. *)
open Dbtree_core
open Dbtree_sim

let id = "e6"
let title = "Figure 6: join/insert races and the version catch-up rule"

(* A migration-heavy run with slow links: join windows stay open long
   enough for relays to race them. *)
let run_one ~version_relays ~count ~seed =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:60_000 ~seed ~version_relays
      ~balance_period:40
      ~latency:{ Dbtree_sim.Net.local_delay = 1; remote_base = 60; remote_jitter = 30 }
      ()
  in
  let t = Variable.create cfg in
  let cl = Variable.cluster t in
  let r =
    Common.load_and_search ~window:8 ~searches_per_proc:32
      ~key_space:12_000 ~api:(Variable.api t) ~cluster:cl
      ~splits:(fun () -> Variable.splits t)
      ~count ~seed ()
  in
  (t, r)

let run ?(quick = false) () =
  let count = Common.scale quick 1_200 in
  let table =
    Table.create ~title
      ~columns:
        [
          "catch-up"; "seed"; "joins"; "catch-up relays";
          "incomplete copies"; "divergent nodes"; "verified";
        ]
  in
  let incomplete r =
    match r.Common.report.Verify.history with
    | None -> 0
    | Some h ->
      List.length
        (List.filter
           (fun v -> v.Dbtree_history.Checker.requirement = `Compatible)
           h.Dbtree_history.Checker.violations)
  in
  List.iter
    (fun seed ->
      List.iter
        (fun version_relays ->
          let t, r = run_one ~version_relays ~count ~seed in
          Table.add_row table
            [
              (if version_relays then "on" else "OFF");
              Table.cell_i seed;
              Table.cell_i (Variable.joins t);
              Table.cell_i (Stats.get (Cluster.stats r.Common.cluster) "relay.catchup");
              Table.cell_i (incomplete r);
              Table.cell_i (List.length r.Common.report.Verify.divergent_nodes);
              Common.verified r;
            ])
        [ true; false ])
    [ 2; 13; 29 ];
  Table.add_note table
    "With the rule OFF, copies that joined mid-update miss relays: \
     incomplete histories and (possibly) divergent or lost entries.";
  Table.print table
