(* E7 — §1/[1]: the replicated root removes the bottleneck.
   A search-heavy workload against (a) the dB-tree with its root on every
   processor and (b) the same tree with a single-copy root.  With one root
   copy, every operation funnels through one processor: throughput stops
   scaling and that processor's inbound share explodes. *)
open Dbtree_core

let id = "e7"
let title = "Root bottleneck: replicated root vs single-copy root"

let run ?(quick = false) () =
  let count = Common.scale quick 1_200 in
  let searches = Common.scale quick 400 in
  let table =
    Table.create ~title
      ~columns:
        [
          "procs"; "root"; "throughput ops/ktick"; "search latency";
          "hottest proc inbound %"; "verified";
        ]
  in
  List.iter
    (fun procs ->
      List.iter
        (fun single ->
          let cfg =
            Config.make ~procs ~capacity:8 ~key_space:400_000
              ~discipline:Config.Semi ~replication:Config.Path
              ~single_copy_root:single ~seed:21 ~record_history:false ()
          in
          let r =
            Common.run_fixed ~window:4 ~searches_per_proc:searches ~count cfg
          in
          let net = r.Common.cluster.Cluster.net in
          let inbound =
            List.init procs (fun p -> Cluster.Network.sent_to net p)
          in
          let total = max 1 (List.fold_left ( + ) 0 inbound) in
          let hottest = List.fold_left max 0 inbound in
          Table.add_row table
            [
              Table.cell_i procs;
              (if single then "single copy" else "replicated");
              Table.cell_f (Common.throughput r);
              Table.cell_f (Common.mean_latency r Opstate.Search);
              Table.cell_f (100.0 *. float_of_int hottest /. float_of_int total);
              Common.verified r;
            ])
        [ false; true ])
    [ 2; 4; 8; 16 ];
  Table.add_note table
    "With a replicated root every processor starts operations locally; \
     a single-copy root concentrates traffic on one processor (the [1] \
     observation motivating the dB-tree).";
  Table.print table
