(* E11 — §5/[11]: never-merge (free-at-empty) space utilization.
   The dB-tree never merges underfull nodes; [11] found that under mixed
   insert/delete traffic this costs little space.  We load a B-link tree,
   delete a sweep of fractions, keep inserting, and report leaf
   utilization — the shape: utilization degrades gracefully and recovers
   as fresh inserts refill the leaves. *)
open Dbtree_blink
open Dbtree_sim

let id = "e11"
let title = "Never-merge utilization under deletes ([11])"

let run ?(quick = false) () =
  let n = Common.scale quick 20_000 in
  let table =
    Table.create ~title
      ~columns:
        [
          "delete frac"; "leaves"; "util after deletes"; "util after refill";
          "util after compaction"; "invariants";
        ]
  in
  List.iter
    (fun frac ->
      let t = Btree.create ~capacity:8 () in
      let rng = Rng.create 13 in
      let keys = Rng.permutation rng n in
      Array.iter (fun k -> Btree.insert t (k + 1) "v") keys;
      let deletions = int_of_float (float_of_int n *. frac) in
      for i = 0 to deletions - 1 do
        ignore (Btree.delete t (keys.(i) + 1))
      done;
      let util_after = Btree.leaf_utilization t in
      let leaves_after = Btree.node_count t in
      (* refill with fresh keys *)
      for i = 0 to deletions - 1 do
        Btree.insert t (n + i + 1) "v"
      done;
      let refilled = Btree.leaf_utilization t in
      let compacted = Btree.compact t in
      let ok =
        match
          (Btree.check_invariants t, Btree.check_invariants compacted)
        with
        | Ok (), Ok () -> "ok"
        | _ -> "FAIL"
      in
      Table.add_row table
        [
          Table.cell_f frac;
          Table.cell_i leaves_after;
          Table.cell_f util_after;
          Table.cell_f refilled;
          Table.cell_f (Btree.leaf_utilization compacted);
          ok;
        ])
    [ 0.0; 0.25; 0.5; 0.75; 0.9 ];
  Table.add_note table
    "free-at-empty: deleted keys leave nodes in place; the structure stays \
     navigable and refills, matching [11]'s 'little loss in utilization'; \
     offline compaction (bulk rebuild) restores near-full packing.";
  Table.print table
