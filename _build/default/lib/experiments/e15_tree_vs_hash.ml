(* E15 — the two lazy structures side by side.
   Both the dB-tree and the lazy hash table serve the paper's motivating
   workload ("very large database systems require distributed storage ...
   for fast and efficient access").  Same processors, same keys, same
   entry points: point operations are cheaper on the hash table (depth-1
   directory hop vs a tree descent), while range queries are a single
   leaf-chain walk on the tree and would need a full scatter on a hash
   table — the classic dictionary trade-off, now with lazily maintained
   replicas on both sides. *)
open Dbtree_core
open Dbtree_sim

let id = "e15"
let title = "dB-tree vs lazy hash table on one workload"

let run ?(quick = false) () =
  let n = Common.scale quick 4_000 in
  let lookups = Common.scale quick 2_000 in
  let procs = 4 in
  let table =
    Table.create ~title
      ~columns:
        [
          "structure"; "load msgs/op"; "lookup msgs/op"; "range scan";
          "verified";
        ]
  in
  let rng = Rng.create 11 in
  let keys = Dbtree_workload.Workload.unique_keys rng ~key_space:1_000_000 ~count:n in
  (* ---- dB-tree ---- *)
  let cfg =
    Config.make ~procs ~capacity:8 ~key_space:1_000_000 ~record_history:false ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  Array.iteri
    (fun i k -> ignore (Fixed.insert t ~origin:(i mod procs) k "v"))
    keys;
  Fixed.run t;
  let load_msgs = Cluster.Network.remote_messages cl.Cluster.net in
  for i = 0 to lookups - 1 do
    ignore (Fixed.search t ~origin:(i mod procs) keys.(i mod n))
  done;
  Fixed.run t;
  let lookup_msgs = Cluster.Network.remote_messages cl.Cluster.net - load_msgs in
  (* a range scan is one chained walk *)
  let before_scan = Cluster.Network.remote_messages cl.Cluster.net in
  ignore (Fixed.scan t ~origin:0 ~lo:0 ~hi:700_000);
  Fixed.run t;
  let scan_msgs = Cluster.Network.remote_messages cl.Cluster.net - before_scan in
  Table.add_row table
    [
      "dB-tree (semi)";
      Table.cell_f (float_of_int load_msgs /. float_of_int n);
      Table.cell_f (float_of_int lookup_msgs /. float_of_int lookups);
      Fmt.str "%d msgs, one chained walk" scan_msgs;
      Common.verified
        {
          Common.cluster = cl;
          splits = Fixed.splits t;
          keys;
          report = Verify.check cl;
          elapsed = Cluster.now cl;
        };
    ];
  (* ---- hash table ---- *)
  let open Dbtree_lht in
  let hcfg =
    { Lht.default_config with procs; bucket_capacity = 8; record_history = false }
  in
  let h = Lht.create hcfg in
  Array.iteri (fun i k -> ignore (Lht.insert h ~origin:(i mod procs) k "v")) keys;
  Lht.run h;
  let hload = Lht.messages h in
  for i = 0 to lookups - 1 do
    ignore (Lht.search h ~origin:(i mod procs) keys.(i mod n))
  done;
  Lht.run h;
  let hlookup = Lht.messages h - hload in
  Table.add_row table
    [
      "lazy hash table";
      Table.cell_f (float_of_int hload /. float_of_int n);
      Table.cell_f (float_of_int hlookup /. float_of_int lookups);
      "n/a (would scatter to every bucket)";
      (if Lht.verified (Lht.verify h) then "ok" else "FAIL");
    ];
  Table.add_note table
    "Point lookups: one directory hop (hash) vs a root-to-leaf descent \
     (tree).  Ordered access: the tree walks its leaf chain; a hash table \
     has no order to exploit.";
  Table.print table
