(* E2 — Figure 2: the dB-tree replication policy.
   Under path replication the root lands on every processor, each leaf on
   one, interior nodes in between.  We grow trees on increasing cluster
   sizes and report copies per level plus the storage overhead and the
   fraction of navigation steps that stayed processor-local. *)
open Dbtree_core

let id = "e2"
let title = "Figure 2: dB-tree replication policy (copies per level)"

let run ?(quick = false) () =
  let count = Common.scale quick 2_000 in
  let table =
    Table.create ~title
      ~columns:
        [ "procs"; "level"; "nodes"; "copies"; "copies/node" ]
  in
  let summary =
    Table.create ~title:"E2b: replication overhead and navigation locality"
      ~columns:
        [ "procs"; "nodes"; "copies"; "overhead"; "local nav steps"; "verified" ]
  in
  List.iter
    (fun procs ->
      let cfg =
        Config.make ~procs ~capacity:8 ~key_space:200_000
          ~discipline:Config.Semi ~replication:Config.Path ~seed:3
          ~record_history:false ()
      in
      let r = Common.run_fixed ~count cfg in
      List.iter
        (fun (level, nodes, copies) ->
          Table.add_row table
            [
              Table.cell_i procs; Table.cell_i level; Table.cell_i nodes;
              Table.cell_i copies;
              Table.cell_f (float_of_int copies /. float_of_int nodes);
            ])
        r.Common.report.Verify.copies_per_level;
      let nodes = r.Common.report.Verify.nodes in
      let copies =
        List.fold_left
          (fun acc (_, _, c) -> acc + c)
          0 r.Common.report.Verify.copies_per_level
      in
      let hops = Common.stat r "route.hops" in
      let remote =
        Dbtree_sim.Stats.get_prefix (Cluster.stats r.Common.cluster)
          "net.msg.route."
      in
      Table.add_row summary
        [
          Table.cell_i procs; Table.cell_i nodes; Table.cell_i copies;
          Table.cell_f (float_of_int copies /. float_of_int nodes);
          Table.cell_f
            (100.0 *. float_of_int (hops - remote) /. float_of_int (max 1 hops));
          Common.verified r;
        ])
    [ 2; 4; 8; 16 ];
  Table.add_note table
    "Root replicated everywhere, leaves single-copy: the Figure 2 shape.";
  Table.print table;
  Table.print summary
