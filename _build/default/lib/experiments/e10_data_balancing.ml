(* E10 — §4.2/[14]: mobile nodes and leaf-level data balancing.
   A skewed insert stream piles leaves onto one processor.  With lazy
   migration the balancer spreads them; misnavigated messages recover via
   forwarding addresses (when kept) or B-link re-routing (always), and
   Theorem 3's ordered link-changes keep the structure sound. *)
open Dbtree_core
open Dbtree_sim

let id = "e10"
let title = "Mobile nodes: leaf data balancing under a skewed load"

let run_one ~balance_period ~forwarding ~count ~searches =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:100_000 ~seed:5
      ~balance_period ~forwarding ()
  in
  let t = Mobile.create cfg in
  let cl = Mobile.cluster t in
  (* keys confined to processor 0's slice: maximal skew *)
  let r =
    Common.load_and_search ~window:4 ~searches_per_proc:searches
      ~key_space:20_000 ~api:(Mobile.api t) ~cluster:cl
      ~splits:(fun () -> Mobile.splits t)
      ~count ~seed:5 ()
  in
  (t, r)

let spread counts =
  Array.fold_left max 0 counts - Array.fold_left min max_int counts

let run ?(quick = false) () =
  let count = Common.scale quick 1_200 in
  let searches = Common.scale quick 200 in
  let table =
    Table.create ~title
      ~columns:
        [
          "balancer"; "forwarding"; "migrations"; "leaf spread";
          "recoveries"; "fwd hops"; "search latency"; "verified";
        ]
  in
  List.iter
    (fun (balance_period, forwarding) ->
      let t, r = run_one ~balance_period ~forwarding ~count ~searches in
      let stats = Cluster.stats r.Common.cluster in
      Table.add_row table
        [
          (if balance_period = 0 then "off" else Fmt.str "every %d" balance_period);
          (if forwarding then "on" else "off");
          Table.cell_i (Mobile.migrations t);
          Table.cell_i (spread (Mobile.leaf_counts t));
          Table.cell_i (Stats.get stats "recover.count");
          Table.cell_i (Stats.get stats "recover.forwarded");
          Table.cell_f (Common.mean_latency r Opstate.Search);
          Common.verified r;
        ])
    [ (0, false); (100, false); (100, true); (40, true) ];
  Table.add_note table
    "All keys target one processor's slice; 'leaf spread' = max - min \
     leaves per processor after the run.";
  Table.print table
