(* E4 — Figure 4: the lost-insert problem.
   The naive lazy protocol — which discards out-of-range relayed updates
   at the primary copy instead of forwarding them — silently loses
   acknowledged inserts when splits race with inserts, while the copies
   still converge (the insidious part).  The semi-synchronous protocol's
   history rewriting repairs exactly these cases. *)
open Dbtree_core

let id = "e4"
let title = "Figure 4: lost inserts (naive) vs history rewriting (semi-sync)"

let run ?(quick = false) () =
  let count = Common.scale quick 2_000 in
  let table =
    Table.create ~title
      ~columns:
        [
          "procs"; "protocol"; "inserts"; "lost keys"; "lost %";
          "corrections"; "copies diverge"; "verified";
        ]
  in
  List.iter
    (fun procs ->
      List.iter
        (fun discipline ->
          let cfg =
            Config.make ~procs ~capacity:4 ~key_space:200_000 ~discipline
              ~replication:Config.All_procs ~seed:5 ()
          in
          let r = Common.run_fixed ~window:6 ~count cfg in
          let lost = List.length r.Common.report.Verify.missing_keys in
          Table.add_row table
            [
              Table.cell_i procs;
              Config.discipline_name discipline;
              Table.cell_i count;
              Table.cell_i lost;
              Table.cell_f (100.0 *. float_of_int lost /. float_of_int count);
              Table.cell_i (Common.stat r "semi.forwarded");
              (if r.Common.report.Verify.divergent_nodes = [] then "no"
               else "YES");
              Common.verified r;
            ])
        [ Config.Naive; Config.Semi ])
    [ 2; 4; 8 ];
  Table.add_note table
    "naive is EXPECTED to fail verification: it acknowledges inserts and \
     then loses them, yet its copies converge — only the key audit and the \
     Sec.3 history check expose the damage.";
  Table.print table
