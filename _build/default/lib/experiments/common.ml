open Dbtree_core
open Dbtree_workload
open Dbtree_sim

type run_result = {
  cluster : Cluster.t;
  splits : int;
  keys : int array;
  report : Verify.report;
  elapsed : int;
}

let scale quick n = if quick then max 1 (n / 4) else n

let load_and_search ?(window = 4) ?(searches_per_proc = 64)
    ?key_space ~api ~(cluster : Cluster.t) ~splits ~count ~seed () =
  let cfg = cluster.Cluster.config in
  let key_space = Option.value key_space ~default:cfg.Config.key_space in
  let procs = cfg.Config.procs in
  let rng = Rng.create (seed + 7) in
  let keys = Workload.unique_keys rng ~key_space ~count in
  let streams =
    Array.map (fun ks -> Workload.inserts ~keys:ks)
      (Workload.chunk keys ~parts:procs)
  in
  Driver.run_closed cluster api ~streams ~window;
  if searches_per_proc > 0 then begin
    let search_streams =
      Array.init procs (fun pid ->
          Workload.searches (Rng.create (seed + 100 + pid)) ~keys
            ~count:searches_per_proc)
    in
    Driver.run_closed cluster api ~streams:search_streams ~window
  end;
  let report = Verify.check cluster in
  {
    cluster;
    splits = splits ();
    keys;
    report;
    elapsed = Cluster.now cluster;
  }

let run_fixed ?window ?searches_per_proc ~count cfg =
  let t = Fixed.create cfg in
  load_and_search ?window ?searches_per_proc ~api:(Driver.fixed_api t)
    ~cluster:(Fixed.cluster t)
    ~splits:(fun () -> Fixed.splits t)
    ~count ~seed:cfg.Config.seed ()

let run_mobile ?window ?searches_per_proc ~count cfg =
  let t = Mobile.create cfg in
  let r =
    load_and_search ?window ?searches_per_proc ~api:(Mobile.api t)
      ~cluster:(Mobile.cluster t)
      ~splits:(fun () -> Mobile.splits t)
      ~count ~seed:cfg.Config.seed ()
  in
  (t, r)

let run_variable ?window ?searches_per_proc ~count cfg =
  let t = Variable.create cfg in
  let r =
    load_and_search ?window ?searches_per_proc ~api:(Variable.api t)
      ~cluster:(Variable.cluster t)
      ~splits:(fun () -> Variable.splits t)
      ~count ~seed:cfg.Config.seed ()
  in
  (t, r)

let msgs r = Cluster.Network.remote_messages r.cluster.Cluster.net
let stat r name = Stats.get (Cluster.stats r.cluster) name
let msgs_of_kind r kind = stat r ("net.msg." ^ kind)
let ops_completed r = Opstate.completed r.cluster.Cluster.ops

let throughput r =
  1000.0 *. float_of_int (ops_completed r) /. float_of_int (max 1 r.elapsed)

let mean_latency r kind = Opstate.mean_latency r.cluster.Cluster.ops kind
let verified r = if Verify.ok r.report then "ok" else "FAIL"
