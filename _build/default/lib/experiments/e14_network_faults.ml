(* E14 — the §4 network assumption, probed.
   "We assume that the network is reliable, delivering every message
   exactly once in order."  The protocols are built on that assumption;
   this experiment injects duplication and FIFO-violating delays and
   shows that (a) the damage is real — double-applied updates, diverging
   copies — and (b) the §3 audits detect it.  This is the assumption a
   production port would have to discharge with sequence numbers and
   retransmission. *)
open Dbtree_core

let id = "e14"
let title = "Network-assumption sensitivity (duplication / reordering)"

let run_one ~faults ~count ~seed =
  let cfg =
    Config.make ~procs:4 ~capacity:4 ~key_space:200_000 ~seed ~faults
      ~replication:Config.All_procs ~discipline:Config.Semi ()
  in
  let t = Fixed.create cfg in
  let cl = Fixed.cluster t in
  (* duplicated replies are part of the injected fault: count, don't abort *)
  Opstate.set_tolerant cl.Cluster.ops;
  let r =
    Common.load_and_search ~window:4 ~searches_per_proc:32
      ~api:(Driver.fixed_api t) ~cluster:cl
      ~splits:(fun () -> Fixed.splits t)
      ~count ~seed ()
  in
  r

let violations_of req (r : Common.run_result) =
  match r.Common.report.Verify.history with
  | None -> 0
  | Some h ->
    List.length
      (List.filter
         (fun v -> v.Dbtree_history.Checker.requirement = req)
         h.Dbtree_history.Checker.violations)

let run ?(quick = false) () =
  let count = Common.scale quick 1_500 in
  let table =
    Table.create ~title
      ~columns:
        [
          "dup prob"; "delay prob"; "injected"; "double applies";
          "divergent nodes"; "dup replies"; "verified";
        ]
  in
  List.iter
    (fun (duplicate_prob, delay_prob) ->
      let faults =
        { Dbtree_sim.Net.duplicate_prob; delay_prob; delay_ticks = 200 }
      in
      let r = run_one ~faults ~count ~seed:3 in
      let stats = Cluster.stats r.Common.cluster in
      let injected =
        Dbtree_sim.Stats.get stats "net.fault.duplicated"
        + Dbtree_sim.Stats.get stats "net.fault.delayed"
      in
      Table.add_row table
        [
          Table.cell_f duplicate_prob;
          Table.cell_f delay_prob;
          Table.cell_i injected;
          Table.cell_i (violations_of `Exactly_once r);
          Table.cell_i (List.length r.Common.report.Verify.divergent_nodes);
          Table.cell_i (Opstate.duplicate_completions r.Common.cluster.Cluster.ops);
          Common.verified r;
        ])
    [ (0.0, 0.0); (0.01, 0.0); (0.05, 0.0); (0.0, 0.02); (0.05, 0.02) ];
  Table.add_note table
    "Rows with injected faults are EXPECTED to fail: the paper's protocols \
     assume exactly-once FIFO delivery; the audits quantify what breaks \
     without it.";
  Table.print table
