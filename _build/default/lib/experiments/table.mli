(** Plain-text table rendering for experiment output. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
val add_note : t -> string -> unit
val cell_f : float -> string
(** Fixed two-decimal float cell. *)

val cell_i : int -> string
val print : t -> unit
(** Render to stdout: title, aligned header, rows, then notes. *)
