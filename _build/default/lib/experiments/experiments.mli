(** The experiment registry.

    Each experiment regenerates one figure or analytical claim of the
    paper (the paper has no measurement tables — see DESIGN.md §2); the
    mapping is documented per experiment module and in EXPERIMENTS.md. *)

type t = {
  id : string;  (** "e1" .. "e12" *)
  title : string;
  run : ?quick:bool -> unit -> unit;
}

val all : t list
val find : string -> t option
val run_all : ?quick:bool -> unit -> unit
