(** Shared machinery for the experiment runners. *)

open Dbtree_core

type run_result = {
  cluster : Cluster.t;
  splits : int;
  keys : int array;
  report : Verify.report;
  elapsed : int;  (** simulated ticks consumed by the run *)
}

val scale : bool -> int -> int
(** [scale quick n] shrinks a workload size in quick mode. *)

val load_and_search :
  ?window:int ->
  ?searches_per_proc:int ->
  ?key_space:int ->
  api:Driver.api ->
  cluster:Cluster.t ->
  splits:(unit -> int) ->
  count:int ->
  seed:int ->
  unit ->
  run_result
(** Closed-loop: load [count] unique keys split across the processors,
    then run searches from every processor, quiesce, verify. *)

val run_fixed :
  ?window:int -> ?searches_per_proc:int -> count:int -> Config.t -> run_result

val run_mobile :
  ?window:int -> ?searches_per_proc:int -> count:int -> Config.t ->
  Mobile.t * run_result

val run_variable :
  ?window:int -> ?searches_per_proc:int -> count:int -> Config.t ->
  Variable.t * run_result

val msgs : run_result -> int
val msgs_of_kind : run_result -> string -> int
val stat : run_result -> string -> int
val ops_completed : run_result -> int
val throughput : run_result -> float
(** Completed operations per 1000 simulated ticks. *)

val mean_latency : run_result -> Opstate.kind -> float
val verified : run_result -> string
(** ["ok"] or ["FAIL"], for table cells. *)
