lib/experiments/e09_piggyback.ml: Cluster Common Config Dbtree_core List Opstate Table
