lib/experiments/common.ml: Array Cluster Config Dbtree_core Dbtree_sim Dbtree_workload Driver Fixed Mobile Opstate Option Rng Stats Variable Verify Workload
