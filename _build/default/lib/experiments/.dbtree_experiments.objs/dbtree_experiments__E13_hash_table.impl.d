lib/experiments/e13_hash_table.ml: Common Dbtree_lht Dbtree_sim Lht List Table
