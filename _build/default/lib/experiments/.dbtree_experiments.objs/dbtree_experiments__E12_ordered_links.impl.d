lib/experiments/e12_ordered_links.ml: Array Cluster Common Config Dbtree_blink Dbtree_core Dbtree_history Dbtree_sim List Mobile Rng Sim Stats Store Table Verify
