lib/experiments/e14_network_faults.ml: Cluster Common Config Dbtree_core Dbtree_history Dbtree_sim Driver Fixed List Opstate Table Verify
