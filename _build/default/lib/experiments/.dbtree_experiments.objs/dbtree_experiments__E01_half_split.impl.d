lib/experiments/e01_half_split.ml: Array Bptree Btree Common Dbtree_blink Dbtree_sim List Rng Table
