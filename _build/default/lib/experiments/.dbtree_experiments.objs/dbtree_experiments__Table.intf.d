lib/experiments/table.mli:
