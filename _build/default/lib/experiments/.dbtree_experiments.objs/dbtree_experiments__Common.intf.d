lib/experiments/common.mli: Cluster Config Dbtree_core Driver Mobile Opstate Variable Verify
