lib/experiments/e03_concurrent_inserts.ml: Cluster Config Dbtree_core Dbtree_sim Dbtree_workload Driver Fixed Fmt List Stats Table Trace Verify Workload
