lib/experiments/e16_reclamation.ml: Array Cluster Common Config Dbtree_core Dbtree_sim Dbtree_workload List Mobile Rng Stats Store Table Verify
