lib/experiments/e06_join_catchup.ml: Cluster Common Config Dbtree_core Dbtree_history Dbtree_sim List Stats Table Variable Verify
