lib/experiments/table.ml: Fmt List String
