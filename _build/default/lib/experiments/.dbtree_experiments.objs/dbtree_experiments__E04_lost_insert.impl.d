lib/experiments/e04_lost_insert.ml: Common Config Dbtree_core List Table Verify
