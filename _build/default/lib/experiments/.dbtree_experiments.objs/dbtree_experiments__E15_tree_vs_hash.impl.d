lib/experiments/e15_tree_vs_hash.ml: Array Cluster Common Config Dbtree_core Dbtree_lht Dbtree_sim Dbtree_workload Fixed Fmt Lht Rng Table Verify
