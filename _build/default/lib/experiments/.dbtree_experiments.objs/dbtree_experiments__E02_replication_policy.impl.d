lib/experiments/e02_replication_policy.ml: Cluster Common Config Dbtree_core Dbtree_sim List Table Verify
