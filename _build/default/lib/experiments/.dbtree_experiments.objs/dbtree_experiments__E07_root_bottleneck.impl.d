lib/experiments/e07_root_bottleneck.ml: Cluster Common Config Dbtree_core List Opstate Table
