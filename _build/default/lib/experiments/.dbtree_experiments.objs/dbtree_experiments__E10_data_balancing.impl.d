lib/experiments/e10_data_balancing.ml: Array Cluster Common Config Dbtree_core Dbtree_sim Fmt List Mobile Opstate Stats Table
