lib/experiments/experiments.mli:
