lib/experiments/e11_never_merge.ml: Array Btree Common Dbtree_blink Dbtree_sim List Rng Table
