lib/experiments/e05_split_cost.ml: Cluster Common Config Dbtree_core Dbtree_sim Fmt List Opstate Table
