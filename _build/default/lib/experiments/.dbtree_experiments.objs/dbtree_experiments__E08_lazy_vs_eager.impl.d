lib/experiments/e08_lazy_vs_eager.ml: Cluster Common Config Dbtree_core List Opstate Table
