(* E1 — Figure 1: the half-split.
   The B-link tree's restructuring acts on one node at a time, while the
   classic B+ tree's split cascade is one multi-node atomic step.  We load
   both trees identically across a fan-out sweep and report the size of
   the largest atomic restructure, node accesses per operation, and split
   counts — the locality argument that makes the whole distributed design
   possible. *)
open Dbtree_blink
open Dbtree_sim

let id = "e1"
let title = "Figure 1: half-split vs classic B+ split (restructure locality)"

let run ?(quick = false) () =
  let n = Common.scale quick 20_000 in
  let table =
    Table.create ~title
      ~columns:
        [
          "fanout"; "order"; "tree"; "splits"; "max atomic span";
          "accesses/op"; "height";
        ]
  in
  let orders = [ ("random", true); ("sequential", false) ] in
  List.iter
    (fun capacity ->
      List.iter
        (fun (order_name, shuffled) ->
          let keys = Array.init n (fun i -> i + 1) in
          if shuffled then Rng.shuffle (Rng.create 17) keys;
          let bl = Btree.create ~capacity () in
          let bp = Bptree.create ~capacity () in
          Array.iter (fun k -> Btree.insert bl k "v") keys;
          Array.iter (fun k -> Bptree.insert bp k "v") keys;
          assert (Btree.to_list bl = Bptree.to_list bp);
          let bls = Btree.stats bl and bps = Bptree.stats bp in
          Table.add_row table
            [
              Table.cell_i capacity; order_name; "B-link (half-split)";
              Table.cell_i bls.Btree.splits;
              Table.cell_i bls.Btree.max_restructure_span;
              Table.cell_f (float_of_int bls.Btree.accesses /. float_of_int n);
              Table.cell_i (Btree.height bl);
            ];
          Table.add_row table
            [
              Table.cell_i capacity; order_name; "classic B+";
              Table.cell_i bps.Bptree.splits;
              Table.cell_i bps.Bptree.max_restructure_span;
              Table.cell_f (float_of_int bps.Bptree.accesses /. float_of_int n);
              Table.cell_i (Bptree.height bp);
            ])
        orders)
    [ 4; 8; 32 ];
  Table.add_note table
    "B-link restructures always touch exactly 1 node; the classic split \
     cascade must atomically modify a whole root-to-leaf path slice.";
  Table.print table
