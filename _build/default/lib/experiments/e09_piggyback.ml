(* E9 — §1.1: piggybacking lazy relays.
   "The lazy update can be piggybacked onto messages used for other
   purposes, greatly reducing the cost of replication management."  We
   batch relays per destination (up to B relays or a flush window) and
   measure the wire-message savings — correctness is untouched because
   semi-synchronous splits tolerate arbitrary relay delay. *)
open Dbtree_core

let id = "e9"
let title = "Relay piggybacking: wire messages vs batch size"

let run ?(quick = false) () =
  let count = Common.scale quick 2_000 in
  let table =
    Table.create ~title
      ~columns:
        [
          "batch"; "flush window"; "wire msgs"; "relay msgs"; "bytes";
          "insert latency"; "verified";
        ]
  in
  List.iter
    (fun (batch, window) ->
      let cfg =
        Config.make ~procs:4 ~capacity:4 ~key_space:400_000
          ~discipline:Config.Semi ~replication:Config.All_procs
          ~relay_batch:batch ~relay_flush_delay:window ~seed:11
          ~record_history:false ()
      in
      let r = Common.run_fixed ~count cfg in
      let relay_msgs =
        Common.msgs_of_kind r "relay_update" + Common.msgs_of_kind r "batch"
      in
      Table.add_row table
        [
          Table.cell_i batch;
          Table.cell_i window;
          Table.cell_i (Common.msgs r);
          Table.cell_i relay_msgs;
          Table.cell_i (Cluster.Network.bytes_sent r.Common.cluster.Cluster.net);
          Table.cell_f (Common.mean_latency r Opstate.Insert);
          Common.verified r;
        ])
    [ (1, 0); (2, 25); (4, 50); (8, 50); (16, 100) ];
  Table.add_note table
    "batch = 1 sends every relay alone; larger batches ride together \
     (coalesced into one wire message), trading a bounded relay delay for \
     message-count savings.";
  Table.print table
