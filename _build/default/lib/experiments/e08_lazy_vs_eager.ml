(* E8 — §1/§5: lazy updates vs vigorous (available-copies) replication.
   Same tree, same workload, three coherence strategies: the lazy
   semi-synchronous protocol, the synchronous-split variant, and the eager
   baseline that routes every update through the primary copy under a full
   acknowledgement barrier.  Lazy replication needs a fraction of the
   messages and completes updates in a fraction of the time. *)
open Dbtree_core

let id = "e8"
let title = "Lazy vs vigorous replica maintenance"

let run ?(quick = false) () =
  let count = Common.scale quick 2_000 in
  let table =
    Table.create ~title
      ~columns:
        [
          "procs"; "protocol"; "msgs/op"; "insert latency"; "p99 insert";
          "search latency"; "throughput ops/ktick"; "verified";
        ]
  in
  List.iter
    (fun procs ->
      List.iter
        (fun discipline ->
          let cfg =
            Config.make ~procs ~capacity:4 ~key_space:400_000 ~discipline
              ~replication:Config.All_procs ~seed:33 ~record_history:false ()
          in
          let r = Common.run_fixed ~window:4 ~count cfg in
          let ops = max 1 (Common.ops_completed r) in
          Table.add_row table
            [
              Table.cell_i procs;
              Config.discipline_name discipline;
              Table.cell_f (float_of_int (Common.msgs r) /. float_of_int ops);
              Table.cell_f (Common.mean_latency r Opstate.Insert);
              Table.cell_f
                (Opstate.latency_percentile r.Common.cluster.Cluster.ops
                   Opstate.Insert 0.99);
              Table.cell_f (Common.mean_latency r Opstate.Search);
              Table.cell_f (Common.throughput r);
              Common.verified r;
            ])
        [ Config.Semi; Config.Sync; Config.Eager ])
    [ 2; 4; 8 ];
  Table.add_note table
    "eager completes an update only after every copy acknowledges it; \
     lazy protocols answer immediately and relay in the background.";
  Table.print table
