(** Workload generation for the experiments.

    A workload is a per-processor stream of operations.  Key distributions
    cover the cases the experiments need: unique random keys (bulk loads
    that never overwrite), sequential runs (worst-case split locality),
    Zipf-skewed access (hot spots, for data balancing), and mixed
    read/write traffic over a loaded key set.

    All randomness comes from an explicit {!Dbtree_sim.Rng.t}. *)

open Dbtree_sim

type op = Search of int | Insert of int * string | Delete of int

val key_of : op -> int
val value_for : int -> string
(** Canonical value stored under a key (deterministic, self-describing). *)

(** A finite stream of operations. *)
type stream = unit -> op option

val of_list : op list -> stream
val empty : stream

val take : stream -> int -> op list
(** Drain up to [n] operations (for tests). *)

(** {2 Key distributions} *)

val unique_keys : Rng.t -> key_space:int -> count:int -> int array
(** [count] distinct keys drawn uniformly from [\[1, key_space)] (key 0 is
    avoided so the {!Dbtree_blink.Bound.min_sentinel} convention never gets
    near user data).  Raises if [count >= key_space - 1]. *)

val zipf : Rng.t -> n:int -> theta:float -> unit -> int
(** Zipf(θ) sampler over ranks [0..n-1] (0 hottest).  θ = 0 is uniform;
    θ ≈ 0.99 is the usual skewed benchmark setting. *)

(** {2 Streams} *)

val inserts : keys:int array -> stream
(** Insert each key once, in array order, with {!value_for} values. *)

val searches : Rng.t -> keys:int array -> count:int -> stream
(** [count] uniform point lookups over [keys]. *)

val mixed :
  Rng.t ->
  loaded:int array ->
  fresh:int array ->
  search_ratio:float ->
  count:int ->
  stream
(** [count] operations: with probability [search_ratio] a search over
    [loaded] (and previously inserted [fresh] keys), otherwise the next
    insert from [fresh] (falling back to searches when [fresh] runs out). *)

val skewed_searches :
  Rng.t -> keys:int array -> theta:float -> count:int -> stream
(** Zipf-skewed lookups: rank 0 = [keys.(0)] is hottest.  Drives the
    data-balancing experiments. *)

val per_proc : (int -> stream) -> procs:int -> stream array
(** [per_proc make ~procs] builds one stream per processor with [make pid]. *)

val chunk : 'a array -> parts:int -> 'a array array
(** Split an array into [parts] nearly equal consecutive chunks (some may
    be empty); used to deal a key set across processors. *)
