lib/workload/workload.mli: Dbtree_sim Rng
