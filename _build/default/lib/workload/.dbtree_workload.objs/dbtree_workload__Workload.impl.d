lib/workload/workload.ml: Array Dbtree_sim Float Fmt Hashtbl List Rng
