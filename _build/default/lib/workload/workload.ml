open Dbtree_sim

type op = Search of int | Insert of int * string | Delete of int

let key_of = function Search k | Insert (k, _) | Delete k -> k
let value_for k = Fmt.str "v%d" k

type stream = unit -> op option

let of_list ops =
  let remaining = ref ops in
  fun () ->
    match !remaining with
    | [] -> None
    | op :: rest ->
      remaining := rest;
      Some op

let empty () = None

let take stream n =
  let rec go n acc =
    if n = 0 then List.rev acc
    else match stream () with
      | None -> List.rev acc
      | Some op -> go (n - 1) (op :: acc)
  in
  go n []

let unique_keys rng ~key_space ~count =
  if count >= key_space - 1 then
    invalid_arg "Workload.unique_keys: count too large for key space";
  (* Sample without replacement via a hash set; fine while count is well
     below key_space (the experiments keep it under 10%). *)
  let seen = Hashtbl.create (2 * count) in
  let keys = Array.make count 0 in
  let filled = ref 0 in
  while !filled < count do
    let k = 1 + Rng.int rng (key_space - 1) in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      keys.(!filled) <- k;
      incr filled
    end
  done;
  keys

let zipf rng ~n ~theta =
  if n <= 0 then invalid_arg "Workload.zipf: n must be positive";
  if theta = 0.0 then fun () -> Rng.int rng n
  else begin
    (* Inverse-CDF over precomputed cumulative weights. *)
    let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
    let cumulative = Array.make n 0.0 in
    let total = ref 0.0 in
    Array.iteri
      (fun i w ->
        total := !total +. w;
        cumulative.(i) <- !total)
      weights;
    let total = !total in
    fun () ->
      let x = Rng.float rng total in
      (* binary search for the first cumulative weight >= x *)
      let rec go lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cumulative.(mid) < x then go (mid + 1) hi else go lo mid
      in
      go 0 (n - 1)
  end

let inserts ~keys =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length keys then None
    else begin
      let k = keys.(!i) in
      incr i;
      Some (Insert (k, value_for k))
    end

let searches rng ~keys ~count =
  if Array.length keys = 0 then invalid_arg "Workload.searches: no keys";
  let left = ref count in
  fun () ->
    if !left <= 0 then None
    else begin
      decr left;
      Some (Search (Rng.pick rng keys))
    end

let mixed rng ~loaded ~fresh ~search_ratio ~count =
  let next_fresh = ref 0 in
  let left = ref count in
  let searchable () =
    (* loaded keys plus the fresh keys already issued *)
    if !next_fresh = 0 then loaded
    else Array.append loaded (Array.sub fresh 0 !next_fresh)
  in
  fun () ->
    if !left <= 0 then None
    else begin
      decr left;
      let want_search =
        Rng.float rng 1.0 < search_ratio || !next_fresh >= Array.length fresh
      in
      if want_search then begin
        let pool = searchable () in
        if Array.length pool = 0 then
          (* nothing loaded yet: fall back to an insert *)
          if !next_fresh < Array.length fresh then begin
            let k = fresh.(!next_fresh) in
            incr next_fresh;
            Some (Insert (k, value_for k))
          end
          else None
        else Some (Search (Rng.pick rng pool))
      end
      else begin
        let k = fresh.(!next_fresh) in
        incr next_fresh;
        Some (Insert (k, value_for k))
      end
    end

let skewed_searches rng ~keys ~theta ~count =
  if Array.length keys = 0 then
    invalid_arg "Workload.skewed_searches: no keys";
  let sample = zipf rng ~n:(Array.length keys) ~theta in
  let left = ref count in
  fun () ->
    if !left <= 0 then None
    else begin
      decr left;
      Some (Search keys.(sample ()))
    end

let per_proc make ~procs = Array.init procs make

let chunk arr ~parts =
  if parts <= 0 then invalid_arg "Workload.chunk: parts must be positive";
  let n = Array.length arr in
  let base = n / parts and extra = n mod parts in
  let start = ref 0 in
  Array.init parts (fun i ->
      let len = base + if i < extra then 1 else 0 in
      let sub = Array.sub arr !start len in
      start := !start + len;
      sub)
