lib/lht/lht.ml: Array Dbtree_history Dbtree_sim Fmt Hashtbl Int64 List Net Option Rng Sim Stats String
