lib/lht/lht.mli: Dbtree_history Dbtree_sim Fmt
