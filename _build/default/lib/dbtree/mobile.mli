(** Single-copy mobile nodes (§4.2).

    Every node has exactly one copy, so copy histories are trivially
    compatible; the interesting machinery is node *mobility* for data
    balancing (Theorem 3):

    - nodes migrate between processors, leaving (optionally) a
      garbage-collectable forwarding address behind;
    - each node carries a version number, incremented by every migration
      and half-split;
    - link-change actions — issued by migrations and splits to a node's
      left neighbor, right neighbor, and parent — are the paper's *ordered*
      actions: a copy applies a link-change only if its version beats the
      link's recorded version, otherwise the action is absorbed (the
      history is "rewritten" with the stale change in its proper, earlier
      place);
    - a message arriving for a node its processor does not store recovers
      B-link-style: follow the forwarding address if one exists, otherwise
      re-route by key from a local node (or from the root, which is pinned
      to processor 0).

    The optional data balancer (config [balance_period]) periodically
    migrates a leaf from the most- to the least-loaded processor, the
    policy of [14]. *)

type t

val create : Config.t -> t
(** Bootstraps one leaf per partition slice (owned by the slice processor)
    under a root pinned at processor 0.  [replication] is ignored: every
    node is single-copy. *)

val cluster : t -> Cluster.t
val config : t -> Config.t

val insert : t -> origin:Msg.pid -> int -> Msg.value -> int
val search : t -> origin:Msg.pid -> int -> int
val remove : t -> origin:Msg.pid -> int -> int

val scan : t -> origin:Msg.pid -> lo:int -> hi:int -> int
(** Range scan along the leaf chain: the result is
    [Msg.Bindings] of all bindings with [lo <= key <= hi], in key order. *)

val migrate : t -> node:Msg.node_id -> to_pid:Msg.pid -> unit
(** Schedule the migration of a node (any non-root node) to [to_pid].
    No-op if the node has moved away or is already there when the event
    fires. *)

val gc_forwarding : t -> unit
(** Drop every forwarding address (§4.2: they are an optimization and can
    be garbage-collected at convenient intervals — correctness must
    survive this, which the tests check). *)

val run : ?max_events:int -> t -> unit
val api : t -> Driver.api

val splits : t -> int
val migrations : t -> int

val leaf_counts : t -> int array
(** Leaves currently owned per processor (the balancer's load measure). *)
