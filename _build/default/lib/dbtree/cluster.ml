open Dbtree_sim
module Network = Net.Make (Msg)
module Registry = Dbtree_history.Registry
module Action = Dbtree_history.Action

type t = {
  config : Config.t;
  sim : Sim.t;
  net : Network.t;
  stores : Store.t array;
  ops : Opstate.t;
  hist : Registry.t;
  trace : Trace.t;
  partition : Partition.t;
  mutable next_node_id : int;
  mutable next_uid : int;
}

let create (config : Config.t) =
  (match Config.validate config with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Cluster.create: " ^ e));
  let sim = Sim.create ~seed:config.seed () in
  let net =
    Network.create ~latency:config.latency ~faults:config.faults sim
      ~procs:config.procs
  in
  let stores =
    Array.init config.procs (fun pid -> Store.create ~pid ~root:(-1))
  in
  {
    config;
    sim;
    net;
    stores;
    ops = Opstate.create ();
    hist = Registry.create ();
    trace = Trace.create ~enabled:config.trace ();
    partition =
      Partition.create ~procs:config.procs ~key_space:config.key_space;
    next_node_id = 0;
    next_uid = 0;
  }

let store t pid = t.stores.(pid)
let stats t = Sim.stats t.sim
let now t = Sim.now t.sim

let fresh_node_id t =
  let id = t.next_node_id in
  t.next_node_id <- id + 1;
  id

let recording t = t.config.record_history

let fresh_uid t =
  let uid =
    if recording t then Registry.fresh_uid t.hist
    else begin
      let u = t.next_uid in
      t.next_uid <- u + 1;
      u
    end
  in
  if recording t then Registry.note_issued t.hist uid;
  uid

let members_for_range t ~low ~high =
  match t.config.replication with
  | Config.All_procs -> List.init t.config.procs (fun i -> i)
  | Config.Path -> Partition.members_of_range t.partition ~low ~high

let pc_of_members = function
  | [] -> invalid_arg "Cluster.pc_of_members: empty member list"
  | pc :: _ -> pc

let send t ~src ~dst msg = Network.send t.net ~src ~dst msg

let emit t f =
  if Trace.enabled t.trace then
    Trace.emit t.trace ~time:(Sim.now t.sim) (lazy (f ()))

let hist_new_copy t ~node ~pid ~base =
  if recording t then
    Registry.new_copy t.hist ~node ~pid
      ~base:(Registry.Uid_set.of_list base)

let hist_record t ~node ~pid ?(effective = true) ~mode ?(version = 0) ~uid
    kind =
  if recording t then
    Registry.record t.hist ~node ~pid ~effective ~time:(Sim.now t.sim)
      { Action.uid; node; mode; kind; version }

let hist_snapshot t ~node ~pid =
  if recording t then
    Registry.Uid_set.elements (Registry.snapshot t.hist ~node ~pid)
  else []

let hist_retire t ~node ~pid =
  if recording t then Registry.retire_copy t.hist ~node ~pid

let run ?(max_events = 50_000_000) t = Sim.run ~max_events t.sim
