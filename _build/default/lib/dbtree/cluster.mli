(** Shared cluster state: simulator, network, stores, registries.

    Every protocol variant drives one of these.  The cluster owns the
    deterministic id/uid allocators, the history instrumentation (a thin
    layer over {!Dbtree_history.Registry} that is a no-op when history
    recording is off), and the replication-policy computation. *)

open Dbtree_sim
open Dbtree_blink
module Network : module type of Net.Make (Msg)

type t = {
  config : Config.t;
  sim : Sim.t;
  net : Network.t;
  stores : Store.t array;
  ops : Opstate.t;
  hist : Dbtree_history.Registry.t;
  trace : Trace.t;
  partition : Partition.t;
  mutable next_node_id : int;
  mutable next_uid : int;
}

val create : Config.t -> t
(** Build the cluster skeleton (no tree yet; protocols bootstrap their own
    initial structure and install their handler). *)

val store : t -> Msg.pid -> Store.t
val stats : t -> Stats.t
val now : t -> int

val fresh_node_id : t -> Msg.node_id
val fresh_uid : t -> int
(** Allocate an update uid and, when recording, declare it issued. *)

val members_for_range : t -> low:Bound.t -> high:Bound.t -> Msg.pid list
(** The replication policy: where the copies of a node covering
    [\[low, high)] live. *)

val pc_of_members : Msg.pid list -> Msg.pid
(** The primary copy's processor: the first member. *)

val send : t -> src:Msg.pid -> dst:Msg.pid -> Msg.t -> unit
val emit : t -> (unit -> string) -> unit
(** Trace helper (lazy; no cost when tracing is off). *)

(** {2 History instrumentation} — all no-ops when
    [config.record_history = false]. *)

val recording : t -> bool

val hist_new_copy : t -> node:int -> pid:int -> base:int list -> unit

val hist_record :
  t ->
  node:int ->
  pid:int ->
  ?effective:bool ->
  mode:Dbtree_history.Action.mode ->
  ?version:int ->
  uid:int ->
  Dbtree_history.Action.kind ->
  unit

val hist_snapshot : t -> node:int -> pid:int -> int list
(** Uids covered by a copy's current value (for snapshot bases); [[]] when
    not recording. *)

val hist_retire : t -> node:int -> pid:int -> unit

val run : ?max_events:int -> t -> unit
(** Drain the simulation to quiescence. *)
