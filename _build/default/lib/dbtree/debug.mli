(** Human-readable dumps of a cluster's distributed state.

    For interactive debugging and for the examples: prints the logical
    tree level by level with each node's range, contents summary, links,
    version, and replica placement. *)

val pp_cluster : Cluster.t Fmt.t
(** The whole structure, one line per logical node, grouped by level
    (root first), with the copies' processors. *)

val pp_store : Store.t Fmt.t
(** One processor's local view: its root pointer and every copy it
    holds. *)

val tree_depth : Cluster.t -> int
(** Number of levels (from processor 0's root). *)
