open Dbtree_blink

type t = { procs : int; key_space : int }

let create ~procs ~key_space =
  if procs < 1 then invalid_arg "Partition.create: procs must be >= 1";
  if key_space < procs then
    invalid_arg "Partition.create: key_space must be >= procs";
  { procs; key_space }

let owner t k =
  if k < 0 then 0
  else if k >= t.key_space then t.procs - 1
  else k * t.procs / t.key_space

let low_owner t = function
  | Bound.Neg_inf -> 0
  | Bound.Key k -> owner t k
  | Bound.Pos_inf -> t.procs - 1

let high_owner t = function
  | Bound.Neg_inf -> 0
  | Bound.Key k -> owner t (k - 1) (* high is exclusive *)
  | Bound.Pos_inf -> t.procs - 1

let members_of_range t ~low ~high =
  let lo = low_owner t low and hi = high_owner t high in
  let hi = max lo hi in
  List.init (hi - lo + 1) (fun i -> lo + i)

let slice t p =
  let lo = p * t.key_space / t.procs in
  let hi = (p + 1) * t.key_space / t.procs in
  (lo, if p = t.procs - 1 then t.key_space else hi)
