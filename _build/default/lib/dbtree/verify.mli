(** Quiescent-state verification.

    After a run drains to quiescence, this module audits the whole cluster
    against the paper's correctness claims:

    - {b single-copy equivalence} (Compatible History Requirement,
      value half): all live copies of every node hold identical values;
    - {b no lost or phantom keys}: the leaf level contains exactly the
      keys the completed operations say it should (this is what the Naive
      ablation fails — the Figure 4 lost inserts);
    - {b reachability}: a fresh search from any processor finds every
      stored key (B-link navigability);
    - {b §3 history requirements} via {!Dbtree_history.Checker}, when the
      run recorded histories.

    The report also carries structural statistics (copies per level) used
    by experiment E2. *)

type report = {
  nodes : int;
  leaves : int;
  keys_found : int;
  divergent_nodes : (int * string) list;
  missing_keys : int list;  (** expected but absent — lost updates *)
  phantom_keys : int list;  (** present but never (still) inserted *)
  unreachable : (Msg.pid * int) list;
      (** (origin, key): stored but not found by a search from [origin] *)
  history : Dbtree_history.Checker.report option;
  copies_per_level : (int * int * int) list;
      (** (level, logical nodes, physical copies) — Figure 2's shape *)
}

val ok : report -> bool

val check : ?search_sample:int -> Cluster.t -> report
(** Audit the cluster.  [search_sample] bounds the number of keys probed
    per processor for the reachability check (default 64). *)

val pp : report Fmt.t
