(** Synchronous key-value facade over any dB-tree protocol.

    The protocol modules expose the asynchronous reality of the system
    (issue an operation, drain the simulation, read the result).  [Kv]
    wraps that in the blocking dictionary interface an application wants:
    each call issues the operation and runs the cluster to quiescence
    before returning.  Fine for tests, examples, and exploratory use;
    workloads that need overlapping operations should drive a protocol
    directly through {!Driver}.

    The [at] argument selects the processor the request enters through
    (a random one per call by default — every processor can serve any
    request; that is the point of the replicated index). *)

type t

type protocol =
  | Semi  (** fixed copies, semi-synchronous splits (the default) *)
  | Sync  (** fixed copies, synchronous (AAS) splits *)
  | Eager  (** the vigorous available-copies baseline *)
  | Mobile  (** single-copy mobile nodes *)
  | Variable  (** variable copies (join/unjoin + leaf migration) *)

val create : ?protocol:protocol -> Config.t -> t
(** The [discipline] and (for [Mobile]/[Variable]) replication fields of
    the config are overridden as the protocol demands. *)

val put : t -> ?at:Msg.pid -> int -> Msg.value -> unit
val get : t -> ?at:Msg.pid -> int -> Msg.value option
val delete : t -> ?at:Msg.pid -> int -> bool
(** [true] iff the key was present. *)

val range : ?at:Msg.pid -> t -> lo:int -> hi:int -> (int * Msg.value) list
(** All bindings with [lo <= key <= hi], in key order. *)

val mem : t -> ?at:Msg.pid -> int -> bool

val cluster : t -> Cluster.t
val verify : t -> Verify.report
(** Quiescent audit of the underlying cluster. *)
