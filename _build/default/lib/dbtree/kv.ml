type protocol = Semi | Sync | Eager | Mobile | Variable

(* Uniform view of a protocol: issue functions plus the cluster. *)
type backend = {
  cluster : Cluster.t;
  insert : origin:Msg.pid -> int -> Msg.value -> int;
  search : origin:Msg.pid -> int -> int;
  remove : origin:Msg.pid -> int -> int;
  scan : origin:Msg.pid -> lo:int -> hi:int -> int;
}

type t = { backend : backend; rng : Dbtree_sim.Rng.t }

let backend_of_fixed f =
  {
    cluster = Fixed.cluster f;
    insert = (fun ~origin k v -> Fixed.insert f ~origin k v);
    search = (fun ~origin k -> Fixed.search f ~origin k);
    remove = (fun ~origin k -> Fixed.remove f ~origin k);
    scan = (fun ~origin ~lo ~hi -> Fixed.scan f ~origin ~lo ~hi);
  }

let backend_of_mobile m =
  {
    cluster = Mobile.cluster m;
    insert = (fun ~origin k v -> Mobile.insert m ~origin k v);
    search = (fun ~origin k -> Mobile.search m ~origin k);
    remove = (fun ~origin k -> Mobile.remove m ~origin k);
    scan = (fun ~origin ~lo ~hi -> Mobile.scan m ~origin ~lo ~hi);
  }

let backend_of_variable v =
  {
    cluster = Variable.cluster v;
    insert = (fun ~origin k value -> Variable.insert v ~origin k value);
    search = (fun ~origin k -> Variable.search v ~origin k);
    remove = (fun ~origin k -> Variable.remove v ~origin k);
    scan = (fun ~origin ~lo ~hi -> Variable.scan v ~origin ~lo ~hi);
  }

let create ?(protocol = Semi) (cfg : Config.t) =
  let backend =
    match protocol with
    | Semi -> backend_of_fixed (Fixed.create { cfg with discipline = Config.Semi })
    | Sync -> backend_of_fixed (Fixed.create { cfg with discipline = Config.Sync })
    | Eager ->
      backend_of_fixed (Fixed.create { cfg with discipline = Config.Eager })
    | Mobile -> backend_of_mobile (Mobile.create cfg)
    | Variable -> backend_of_variable (Variable.create cfg)
  in
  { backend; rng = Dbtree_sim.Rng.create (cfg.Config.seed + 77) }

let cluster t = t.backend.cluster

let pick_origin t = function
  | Some at -> at
  | None -> Dbtree_sim.Rng.int t.rng t.backend.cluster.Cluster.config.Config.procs

let await t op =
  Cluster.run t.backend.cluster;
  match (Option.get (Opstate.find t.backend.cluster.Cluster.ops op)).Opstate.result with
  | Some result -> result
  | None -> Fmt.failwith "Kv: operation %d did not complete" op

let put t ?at key value =
  let origin = pick_origin t at in
  match await t (t.backend.insert ~origin key value) with
  | Msg.Inserted -> ()
  | _ -> Fmt.failwith "Kv.put: unexpected result"

let get t ?at key =
  let origin = pick_origin t at in
  match await t (t.backend.search ~origin key) with
  | Msg.Found v -> Some v
  | Msg.Absent -> None
  | Msg.Inserted | Msg.Removed _ | Msg.Bindings _ ->
    Fmt.failwith "Kv.get: unexpected result"

let delete t ?at key =
  let origin = pick_origin t at in
  match await t (t.backend.remove ~origin key) with
  | Msg.Removed present -> present
  | _ -> Fmt.failwith "Kv.delete: unexpected result"

let range ?at t ~lo ~hi =
  let origin = pick_origin t at in
  match await t (t.backend.scan ~origin ~lo ~hi) with
  | Msg.Bindings bs -> bs
  | _ -> Fmt.failwith "Kv.range: unexpected result"

let mem t ?at key = Option.is_some (get t ?at key)
let verify t = Verify.check t.backend.cluster
