lib/dbtree/store.ml: Dbtree_blink Fmt Hashtbl List Msg Node Option Queue
