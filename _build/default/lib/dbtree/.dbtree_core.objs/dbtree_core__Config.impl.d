lib/dbtree/config.ml: Dbtree_sim
