lib/dbtree/fixed.ml: Array Bound Cluster Config Dbtree_blink Dbtree_history Dbtree_sim Entries Fmt Hashtbl List Msg Node Opstate Partition Queue Rng Sim Stats Store
