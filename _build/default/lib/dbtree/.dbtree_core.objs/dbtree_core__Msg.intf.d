lib/dbtree/msg.mli: Bound Dbtree_blink Fmt Node
