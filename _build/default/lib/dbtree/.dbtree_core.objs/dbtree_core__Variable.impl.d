lib/dbtree/variable.ml: Array Bound Cluster Config Dbtree_blink Dbtree_history Dbtree_sim Driver Entries Fmt Fun Hashtbl List Msg Node Opstate Option Partition Rng Sim Stats Store
