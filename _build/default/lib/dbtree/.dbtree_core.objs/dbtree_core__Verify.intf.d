lib/dbtree/verify.mli: Cluster Dbtree_history Fmt Msg
