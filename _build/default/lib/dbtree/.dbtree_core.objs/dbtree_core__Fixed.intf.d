lib/dbtree/fixed.mli: Cluster Config Msg
