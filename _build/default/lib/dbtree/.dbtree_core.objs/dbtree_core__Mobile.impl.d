lib/dbtree/mobile.ml: Array Bound Cluster Config Dbtree_blink Dbtree_history Dbtree_sim Driver Entries Fmt Hashtbl List Msg Node Opstate Option Partition Sim Stats Store
