lib/dbtree/partition.ml: Bound Dbtree_blink List
