lib/dbtree/store.mli: Dbtree_blink Hashtbl Msg Node Queue
