lib/dbtree/driver.mli: Cluster Dbtree_workload Fixed Msg
