lib/dbtree/opstate.ml: Array Fmt Hashtbl List Msg Option
