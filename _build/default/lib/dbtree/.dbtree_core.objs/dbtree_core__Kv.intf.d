lib/dbtree/kv.mli: Cluster Config Msg Verify
