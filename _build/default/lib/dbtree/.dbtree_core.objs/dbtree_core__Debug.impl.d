lib/dbtree/debug.ml: Array Bound Cluster Dbtree_blink Fmt Hashtbl List Node Option Store
