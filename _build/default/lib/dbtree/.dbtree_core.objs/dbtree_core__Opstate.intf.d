lib/dbtree/opstate.mli: Hashtbl Msg
