lib/dbtree/config.mli: Dbtree_sim
