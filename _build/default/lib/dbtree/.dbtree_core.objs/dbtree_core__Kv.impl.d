lib/dbtree/kv.ml: Cluster Config Dbtree_sim Fixed Fmt Mobile Msg Opstate Option Variable Verify
