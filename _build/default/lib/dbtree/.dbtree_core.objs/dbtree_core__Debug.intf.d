lib/dbtree/debug.mli: Cluster Fmt Store
