lib/dbtree/cluster.mli: Bound Config Dbtree_blink Dbtree_history Dbtree_sim Msg Net Opstate Partition Sim Stats Store Trace
