lib/dbtree/variable.mli: Cluster Config Driver Msg
