lib/dbtree/msg.ml: Bound Dbtree_blink Entries Fmt List Node String
