lib/dbtree/verify.ml: Array Cluster Dbtree_blink Dbtree_history Entries Fmt Hashtbl List Msg Node Opstate Option Store String
