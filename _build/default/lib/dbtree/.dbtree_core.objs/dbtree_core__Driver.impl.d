lib/dbtree/driver.ml: Array Cluster Dbtree_sim Dbtree_workload Fixed Msg Opstate Workload
