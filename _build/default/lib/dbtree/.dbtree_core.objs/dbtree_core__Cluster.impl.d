lib/dbtree/cluster.ml: Array Config Dbtree_history Dbtree_sim List Msg Net Opstate Partition Sim Store Trace
