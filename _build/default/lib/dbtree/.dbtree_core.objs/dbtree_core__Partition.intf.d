lib/dbtree/partition.mli: Bound Dbtree_blink Msg
