lib/dbtree/mobile.mli: Cluster Config Driver Msg
