(** Fixed-position copies: the §4.1 dB-tree protocols.

    Every node has a fixed copy set chosen at creation (per the configured
    replication policy), a fixed primary copy (PC), and is maintained by
    one of four disciplines (see {!Config.discipline}):

    - [Sync] — synchronous splits through a split_start / ack / split_end
      AAS (§4.1.1, Theorem 1),
    - [Semi] — semi-synchronous splits with history rewriting (§4.1.2,
      Theorem 2),
    - [Naive] — [Semi] without the out-of-range forwarding correction;
      exhibits the Figure 4 lost-insert anomaly (ablation),
    - [Eager] — the vigorous available-copies baseline: updates serialized
      through the PC and acknowledged by every copy before the operation
      completes.

    Operations are asynchronous: {!insert} / {!search} / {!remove} enqueue
    work and return the operation id; {!run} drains the simulation, after
    which results are in [ (cluster t).ops ].  Use {!Driver} for whole
    workloads and {!Verify} for the end-of-computation audit. *)

type t

val create : Config.t -> t
(** Build the cluster and bootstrap the initial tree: one leaf per
    processor partition slice plus a root replicated per policy. *)

val cluster : t -> Cluster.t
val config : t -> Config.t

val insert : t -> origin:Msg.pid -> int -> Msg.value -> int
(** Issue an insert at processor [origin]; returns the operation id. *)

val search : t -> origin:Msg.pid -> int -> int
val remove : t -> origin:Msg.pid -> int -> int

val scan : t -> origin:Msg.pid -> lo:int -> hi:int -> int
(** Range scan along the leaf chain: the result is
    [Msg.Bindings] of all bindings with [lo <= key <= hi], in key order. *)

val run : ?max_events:int -> t -> unit
(** Drain the simulation to quiescence (all operations and all relayed
    maintenance complete, relay batches flushed). *)

val splits : t -> int
(** Number of half-splits performed (all levels). *)
