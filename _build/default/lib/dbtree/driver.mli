(** Workload drivers.

    Protocol-agnostic: each protocol exposes its operations as an {!api}
    record, and the driver feeds it a per-processor stream of workload
    operations, either closed-loop (a fixed number of outstanding
    operations per processor — the throughput-measurement mode) or
    open-loop (fixed arrival interval). *)

type api = {
  insert : origin:Msg.pid -> int -> Msg.value -> int;
  search : origin:Msg.pid -> int -> int;
  remove : origin:Msg.pid -> int -> int;
}

val fixed_api : Fixed.t -> api

val issue : api -> origin:Msg.pid -> Dbtree_workload.Workload.op -> unit

val run_closed :
  ?max_events:int ->
  Cluster.t ->
  api ->
  streams:Dbtree_workload.Workload.stream array ->
  window:int ->
  unit
(** Keep [window] operations outstanding per processor until every stream
    is drained, then run to quiescence.  One stream per processor. *)

val run_open :
  ?max_events:int ->
  Cluster.t ->
  api ->
  streams:Dbtree_workload.Workload.stream array ->
  interval:int ->
  unit
(** Issue one operation per processor every [interval] ticks. *)

val run_all :
  ?max_events:int ->
  Cluster.t ->
  api ->
  streams:Dbtree_workload.Workload.stream array ->
  unit
(** Issue everything at time zero (maximal concurrency; small tests). *)
