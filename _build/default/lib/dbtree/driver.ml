open Dbtree_workload

type api = {
  insert : origin:Msg.pid -> int -> Msg.value -> int;
  search : origin:Msg.pid -> int -> int;
  remove : origin:Msg.pid -> int -> int;
}

let fixed_api t =
  {
    insert = (fun ~origin k v -> Fixed.insert t ~origin k v);
    search = (fun ~origin k -> Fixed.search t ~origin k);
    remove = (fun ~origin k -> Fixed.remove t ~origin k);
  }

let issue api ~origin op =
  match op with
  | Workload.Insert (k, v) -> ignore (api.insert ~origin k v)
  | Workload.Search k -> ignore (api.search ~origin k)
  | Workload.Delete k -> ignore (api.remove ~origin k)

let check_streams (cl : Cluster.t) streams =
  if Array.length streams <> Array.length cl.Cluster.stores then
    invalid_arg "Driver: need exactly one stream per processor"

let run_closed ?max_events (cl : Cluster.t) api ~streams ~window =
  check_streams cl streams;
  Opstate.on_complete cl.Cluster.ops (fun r ->
      let origin = r.Opstate.origin in
      match streams.(origin) () with
      | Some op -> issue api ~origin op
      | None -> ());
  Array.iteri
    (fun pid stream ->
      let rec prime n =
        if n > 0 then
          match stream () with
          | Some op ->
            issue api ~origin:pid op;
            prime (n - 1)
          | None -> ()
      in
      prime window)
    streams;
  Cluster.run ?max_events cl

let run_open ?max_events (cl : Cluster.t) api ~streams ~interval =
  check_streams cl streams;
  let interval = max interval 1 in
  Array.iteri
    (fun pid stream ->
      let rec tick () =
        match stream () with
        | None -> ()
        | Some op ->
          issue api ~origin:pid op;
          Dbtree_sim.Sim.schedule cl.Cluster.sim ~delay:interval tick
      in
      Dbtree_sim.Sim.schedule cl.Cluster.sim ~delay:(1 + pid) tick)
    streams;
  Cluster.run ?max_events cl

let run_all ?max_events (cl : Cluster.t) api ~streams =
  check_streams cl streams;
  Array.iteri
    (fun pid stream ->
      let rec drain () =
        match stream () with
        | Some op ->
          issue api ~origin:pid op;
          drain ()
        | None -> ()
      in
      drain ())
    streams;
  Cluster.run ?max_events cl
