(** Static key-space partition used by the [Path] replication policy.

    The key space [\[0, key_space)] is divided into [procs] contiguous
    slices; processor [i] owns slice [i].  A leaf is owned by the
    processor of its slice, and an interior node is replicated on exactly
    the processors whose slices intersect its range — which yields the
    dB-tree shape of Figure 2: root everywhere, leaves on one processor,
    interior nodes at decreasing replication going down the tree. *)

open Dbtree_blink

type t

val create : procs:int -> key_space:int -> t

val owner : t -> int -> Msg.pid
(** Owner of a key; keys outside [\[0, key_space)] clamp to the edge
    slices. *)

val members_of_range : t -> low:Bound.t -> high:Bound.t -> Msg.pid list
(** Processors whose slice intersects [\[low, high)] — always a contiguous,
    non-empty interval of pids. *)

val slice : t -> Msg.pid -> int * int
(** [slice t p] is the inclusive-exclusive key interval owned by [p]. *)
