(** Variable copies (§4.3): the full never-merge dB-tree.

    The culminating protocol of the paper, combining the fixed-copies lazy
    machinery with node mobility:

    - {b leaves} are single-copy and migrate between processors for data
      balancing, exactly as in {!Mobile};
    - {b interior nodes} are replicated with semi-synchronous splits, and
      processors *join* and *unjoin* a node's replication as the
      path-replication rule dictates: a processor that receives a leaf
      joins the replication of every ancestor of that leaf; a processor
      whose last leaf under a node departs unjoins it (the primary copy
      never unjoins — the paper fixes each node's PC for good);
    - the {b root} is replicated everywhere and exempt from unjoins;
    - every join/unjoin (and split) increments the node's version at the
      PC and is relayed to all copies in version order.  A relayed lazy
      update carries the version its sender held; when it reaches the PC,
      the PC re-relays it to every member whose join version is newer —
      this is the Figure 6 catch-up rule that keeps late joiners'
      histories complete (Theorem 4).  Setting
      [Config.version_relays = false] disables the rule and reproduces the
      anomaly (experiment E6).

    Verification: at quiescence all live copies of every interior node are
    value-identical, every key is reachable from every processor, and the
    recorded histories satisfy the §3 requirements. *)

type t

val create : Config.t -> t
(** Bootstrap: one leaf per partition slice; a root replicated on every
    processor.  [replication] is ignored (membership is dynamic). *)

val cluster : t -> Cluster.t
val config : t -> Config.t

val insert : t -> origin:Msg.pid -> int -> Msg.value -> int
val search : t -> origin:Msg.pid -> int -> int
val remove : t -> origin:Msg.pid -> int -> int

val scan : t -> origin:Msg.pid -> lo:int -> hi:int -> int
(** Range scan along the leaf chain: the result is
    [Msg.Bindings] of all bindings with [lo <= key <= hi], in key order. *)

val migrate : t -> node:Msg.node_id -> to_pid:Msg.pid -> unit
(** Migrate a leaf to [to_pid]: the receiver joins the replication of the
    leaf's ancestors, the sender unjoins the ancestors it no longer needs.
    No-op on interior nodes or if the leaf has moved. *)

val run : ?max_events:int -> t -> unit
val api : t -> Driver.api

val splits : t -> int
val migrations : t -> int
val joins : t -> int
val unjoins : t -> int
val leaf_counts : t -> int array
