type key = int

type t = Neg_inf | Key of key | Pos_inf

let compare a b =
  match (a, b) with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | Key x, Key y -> Int.compare x y

let compare_key b k =
  match b with Neg_inf -> -1 | Pos_inf -> 1 | Key x -> Int.compare x k

let key_in_range ~low ~high k = compare_key low k <= 0 && compare_key high k > 0

let min_sentinel = min_int

let equal a b = compare a b = 0

let pp ppf = function
  | Neg_inf -> Fmt.string ppf "-inf"
  | Pos_inf -> Fmt.string ppf "+inf"
  | Key k -> Fmt.int ppf k
