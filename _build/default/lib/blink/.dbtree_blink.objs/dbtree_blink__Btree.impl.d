lib/blink/btree.ml: Bound Entries Fmt Hashtbl List Node Option Result
