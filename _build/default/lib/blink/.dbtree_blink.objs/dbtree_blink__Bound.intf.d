lib/blink/bound.mli: Fmt
