lib/blink/btree.mli: Node
