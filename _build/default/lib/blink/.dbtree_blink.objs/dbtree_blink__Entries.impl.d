lib/blink/entries.ml: Array Fmt
