lib/blink/bound.ml: Fmt Int
