lib/blink/node.ml: Bound Entries Fmt
