lib/blink/node.mli: Bound Entries Fmt
