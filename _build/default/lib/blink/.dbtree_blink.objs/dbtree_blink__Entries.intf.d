lib/blink/entries.mli: Fmt
