lib/blink/bptree.ml: Bound Entries Fmt Hashtbl List Node Option
