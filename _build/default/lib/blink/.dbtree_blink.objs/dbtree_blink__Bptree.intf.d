lib/blink/bptree.mli:
